(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, then times the key kernels with Bechamel.

   Sections:
   1. Section III example (Figs. 4-6): delay 3 -> 2 (retiming) -> 1
      (resynthesis).
   2. Table I: the 19-row benchmark suite under the three flows, with
      verification and comparison against the paper's qualitative
      expectations.
   3. Ablations: DC exploitation mode, post-restructuring retiming, and the
      regression guard (DESIGN.md, Section 5).
   4. Bechamel micro-benchmarks of the core kernels. *)

module N = Netlist.Network

let line = String.make 86 '='

let section title =
  Printf.printf "\n%s\n== %s\n%s\n%!" line title line

(* BENCH_*.json emission goes through the obs metrics registry: each section
   publishes its measurements as gauges/infos under a "bench.<section>"
   prefix, then dumps that namespace.  Histograms observed under the prefix
   (e.g. the containment probe distributions) ride along automatically. *)
let emit_bench ~file ~prefix ~title ~unit values =
  Obs.Metrics.enable ();
  Obs.Metrics.set_info (prefix ^ ".benchmark") title;
  Obs.Metrics.set_info (prefix ^ ".unit") unit;
  List.iter
    (fun (key, v) ->
      Obs.Metrics.set_gauge (Obs.Metrics.gauge (prefix ^ "." ^ key)) v)
    values;
  Obs.Export.write_file file (Obs.Export.metrics_json ~prefix ());
  Printf.printf "  -> %s\n" file

(* --- 1. Section III example ---------------------------------------------------- *)

let section3_example () =
  section "Section III example (Figs. 4-6): 3 -> 2 -> 1 gate delays";
  let net = Circuits.Paper_example.circuit () in
  let model = Sta.unit_delay in
  Printf.printf "original:      period %.1f, %d registers  (paper: 3 gate delays)\n"
    (Sta.clock_period net model) (N.num_latches net);
  (match Retiming.Minperiod.retime_min_period net ~model with
   | Ok (retimed, p) ->
     Printf.printf
       "retimed:       period %.1f, %d registers  (paper: 2 gate delays)\n" p
       (N.num_latches retimed)
   | Error f ->
     Printf.printf "retimed:       FAILED (%s)\n"
       (Retiming.Minperiod.failure_message f));
  let options =
    { Core.Resynth.default_options with
      Core.Resynth.model;
      remap = false }
  in
  let outcome = Core.Resynth.resynthesize ~options net in
  Printf.printf
    "resynthesized: period %.1f, %d registers  (paper: 1 gate delay)\n"
    (Sta.clock_period outcome.Core.Resynth.network model)
    (N.num_latches outcome.Core.Resynth.network);
  Printf.printf
    "  mechanism: %d stem splits, %d equivalence classes, %d forward moves, \
     %d cones simplified by DC_ret\n"
    outcome.Core.Resynth.stem_splits outcome.Core.Resynth.equivalence_classes
    outcome.Core.Resynth.forward_moves outcome.Core.Resynth.simplified_cones;
  Printf.printf "  sequential equivalence: %b\n"
    (Sim.Equiv.seq_equal_bdd net outcome.Core.Resynth.network)

(* --- 2. Table I ------------------------------------------------------------------ *)

let expectation_matches (e : Circuits.Suite.entry) (row : Core.Flow.row) =
  let retime_failed = row.Core.Flow.retimed.Core.Flow.stats = None in
  let resynth_declined = row.Core.Flow.resynthesized.Core.Flow.stats = None in
  match e.Circuits.Suite.expectation with
  | Circuits.Suite.Normal -> not resynth_declined
  | Circuits.Suite.Retiming_fails -> retime_failed
  | Circuits.Suite.Resynthesis_na | Circuits.Suite.Resynthesis_hurts ->
    resynth_declined

let table1 () =
  section "Table I: script.delay | +retiming+comb.opt | +resynthesis";
  let t0 = Unix.gettimeofday () in
  let rows = Report.Table.run_suite () in
  print_string (Report.Table.render rows);
  print_newline ();
  print_string (Report.Table.summary rows);
  (* expectation comparison *)
  Printf.printf "\npaper-vs-measured (qualitative expectations from the text):\n";
  List.iter2
    (fun (e : Circuits.Suite.entry) row ->
      Printf.printf "  %-8s expected=%-18s matched=%b  (%s)\n"
        e.Circuits.Suite.name
        (match e.Circuits.Suite.expectation with
         | Circuits.Suite.Normal -> "normal"
         | Circuits.Suite.Retiming_fails -> "retiming-fails"
         | Circuits.Suite.Resynthesis_na -> "resynthesis-n.a."
         | Circuits.Suite.Resynthesis_hurts -> "resynthesis-hurts")
        (expectation_matches e row)
        e.Circuits.Suite.comment)
    Circuits.Suite.entries rows;
  let verified =
    List.for_all
      (fun r ->
        r.Core.Flow.retimed.Core.Flow.verified
        && r.Core.Flow.resynthesized.Core.Flow.verified)
      rows
  in
  Printf.printf "\nall flow results verified sequentially equivalent: %b\n"
    verified;
  Printf.printf "table regenerated in %.1fs\n" (Unix.gettimeofday () -. t0);
  rows

(* --- 3. Ablations ------------------------------------------------------------------ *)

let ablations () =
  section "Ablations (DESIGN.md section 5)";
  let variants =
    [ ("dc-mode=substitution",
       { Core.Resynth.default_options with
         Core.Resynth.dc_mode = Core.Resynth.Substitution });
      ("no-post-retiming",
       { Core.Resynth.default_options with Core.Resynth.retime_post = false });
      ("no-guard",
       { Core.Resynth.default_options with
         Core.Resynth.guard_regression = false }) ]
  in
  List.iter
    (fun (name, options) ->
      let t0 = Unix.gettimeofday () in
      let rows =
        Report.Table.run_suite ~verify:false ~resynth_options:options ()
      in
      Printf.printf "\n--- %s (%.1fs)\n%s" name
        (Unix.gettimeofday () -. t0)
        (Report.Table.summary rows);
      if name = "no-guard" then begin
        let regressions =
          List.length
            (List.filter
               (fun r ->
                 match r.Core.Flow.resynthesized.Core.Flow.stats with
                 | Some s ->
                   s.Core.Flow.clk > r.Core.Flow.base.Core.Flow.clk +. 1e-9
                 | None -> false)
               rows)
        in
        Printf.printf
          "  unguarded clock regressions vs script.delay: %d rows (the \
           paper's s420/s510 phenomenon)\n"
          regressions
      end)
    variants

(* --- 3b. Extension: exact min-register retiming -------------------------------------- *)

(* Not part of the paper's evaluation, but the classical companion objective
   it cites ("retiming ... for register minimization under cycle-time
   constraints [2]").  Solved exactly by the min-cost-flow dual with the
   Leiserson-Saxe fanout-sharing mirror construction. *)
let min_register_extension () =
  section "Extension: exact min-register retiming (period-constrained)";
  let model = Sta.mapped_delay () in
  List.iter
    (fun name ->
      let entry = Circuits.Suite.find name in
      let net = entry.Circuits.Suite.build () in
      let mapped =
        Core.Flow.script_delay_flow net ~lib:Techmap.Genlib.mcnc_lite
      in
      let period = Sta.clock_period mapped model in
      match
        Retiming.Minregister.min_registers ~target_period:period mapped ~model
      with
      | Ok (retimed, count) ->
        let ok = Sim.Equiv.seq_equal mapped retimed in
        Printf.printf
          "  %-8s registers %3d -> %3d at period %.2f (verified %b)\n" name
          (N.num_latches mapped) count period ok
      | Error f ->
        Printf.printf "  %-8s failed: %s\n" name
          (Retiming.Minperiod.failure_message f))
    [ "s27"; "s208"; "s298"; "s344"; "s382"; "s400"; "s444"; "s526" ]

(* --- 3c. Incremental STA vs full reanalysis ------------------------------------------ *)

(* The scenario every optimization loop pays for: apply one local edit, ask
   for the clock period again.  The full engine re-analyzes the whole
   network; the incremental timer re-propagates only the edit's cone. *)
let sta_bench ?(emit_json = true) ~circuits () =
  section "Incremental STA vs full reanalysis (single-edit period re-queries)";
  let model = Sta.mapped_delay ~default:1.0 () in
  let bench_circuit name =
    let entry = Circuits.Suite.find name in
    let net = entry.Circuits.Suite.build () in
    let nodes = Array.of_list (N.logic_nodes net) in
    let nnodes = Array.length nodes in
    let slow =
      Some { N.gate_name = "slow"; gate_area = 1.0; gate_delay = 3.0 }
    in
    let fast =
      Some { N.gate_name = "fast"; gate_area = 1.0; gate_delay = 1.0 }
    in
    (* stride across the circuit so successive edits hit unrelated cones *)
    let edit i =
      let v = nodes.(i * 37 mod nnodes) in
      N.set_binding net v (if i land 1 = 0 then slow else fast)
    in
    let reps = if nnodes > 500 then 200 else 400 in
    let time_per_query body =
      (* warm-up pass, then the measured passes *)
      for i = 0 to 9 do body i done;
      let t0 = Unix.gettimeofday () in
      for i = 0 to reps - 1 do body i done;
      (Unix.gettimeofday () -. t0) /. float_of_int reps
    in
    let full_s =
      time_per_query (fun i ->
          edit i;
          ignore (Sta.clock_period net model))
    in
    let timer = Sta.Incremental.create net model in
    let incr_s =
      time_per_query (fun i ->
          edit i;
          ignore (Sta.Incremental.period timer))
    in
    (* both engines must agree after all those edits *)
    assert (Sta.Incremental.period timer = Sta.clock_period net model);
    let stats = Sta.Incremental.stats timer in
    let speedup = full_s /. incr_s in
    Printf.printf
      "  %-8s %5d gates  full %10.2f us/query  incremental %8.2f us/query  \
       speedup %6.1fx  (%d incremental syncs, %d full)\n%!"
      name nnodes (full_s *. 1e6) (incr_s *. 1e6) speedup
      stats.Sta.Incremental.incremental_syncs stats.Sta.Incremental.full_syncs;
    (name, nnodes, reps, full_s, incr_s, speedup)
  in
  let rows = List.map bench_circuit circuits in
  if emit_json then
    emit_bench ~file:"BENCH_sta.json" ~prefix:"bench.sta"
      ~title:"single-edit clock-period re-query" ~unit:"ns_per_query"
      (List.concat_map
         (fun (name, gates, reps, full_s, incr_s, speedup) ->
           [ (name ^ ".logic_nodes", float_of_int gates);
             (name ^ ".queries", float_of_int reps);
             (name ^ ".full_ns", full_s *. 1e9);
             (name ^ ".incremental_ns", incr_s *. 1e9);
             (name ^ ".speedup", speedup) ])
         rows);
  rows

(* --- 3d. Packed vs legacy cube kernel ------------------------------------------------ *)

(* The same workload runs against the packed kernel ({!Logic.Cube}) and the
   legacy one-variant-per-literal arrays ({!Logic.Cube_ref}), built from
   identical cube strings, with checksums compared so a representation bug
   cannot masquerade as a speedup. *)

module type CUBE_OPS = sig
  type t
  val of_string : string -> t
  val contains : t -> t -> bool
  val intersect : t -> t -> t option
  val distance : t -> t -> int
  val supercube : t -> t -> t
  val lit_count : t -> int
  val compare : t -> t -> int
end

module Cube_workload (C : CUBE_OPS) = struct
  let build strings = Array.map C.of_string strings

  (* Each pass returns an int checksum over the whole sweep. *)
  let contains_sweep cubes () =
    let count = ref 0 and n = Array.length cubes in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if C.contains cubes.(i) cubes.(j) then incr count
      done
    done;
    !count

  let intersect_sweep cubes () =
    let acc = ref 0 and n = Array.length cubes in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        match C.intersect cubes.(i) cubes.(j) with
        | Some c -> acc := !acc + C.lit_count c
        | None -> incr acc
      done
    done;
    !acc

  let distance_sweep cubes () =
    let acc = ref 0 and n = Array.length cubes in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        acc := !acc + C.distance cubes.(i) cubes.(j)
      done
    done;
    !acc

  let supercube_fold cubes () =
    let acc = ref cubes.(0) in
    for i = 1 to Array.length cubes - 1 do
      acc := C.supercube !acc cubes.(i)
    done;
    C.lit_count !acc

  let sort_pass cubes () =
    let copy = Array.copy cubes in
    Array.sort C.compare copy;
    C.lit_count copy.(0)

  let passes cubes =
    [ ("contains-sweep", contains_sweep cubes);
      ("intersect-sweep", intersect_sweep cubes);
      ("distance-sweep", distance_sweep cubes);
      ("supercube-fold", supercube_fold cubes);
      ("sort", sort_pass cubes) ]
end

module Packed_work = Cube_workload (Logic.Cube)
module Legacy_work = Cube_workload (Logic.Cube_ref)

let random_cube_strings st ~vars ~cubes =
  Array.init cubes (fun _ ->
      String.init vars (fun _ ->
          (* half don't-care keeps sweeps from degenerating to all-disjoint *)
          match Random.State.int st 4 with
          | 0 -> '0'
          | 1 -> '1'
          | _ -> '-'))

(* Adaptive timer: grow the repetition count until a pass takes [min_s]
   wall-clock, then report seconds per pass. *)
let time_pass ?(min_s = 0.2) f =
  ignore (f ());
  let rec calibrate reps =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do ignore (f ()) done;
    let dt = Unix.gettimeofday () -. t0 in
    if dt >= min_s then dt /. float_of_int reps else calibrate (reps * 4)
  in
  calibrate 1

let logic_bench ?(emit_json = true) ?(quick = false) () =
  section "Packed vs legacy cube kernel (identical random workloads)";
  let widths = if quick then [ 16; 64 ] else [ 16; 63; 128; 200 ] in
  let cubes = if quick then 96 else 192 in
  let min_s = if quick then 0.05 else 0.2 in
  let st = Random.State.make [| 0x5eed; 0xcbe |] in
  let results = ref [] in
  List.iter
    (fun vars ->
      let strings = random_cube_strings st ~vars ~cubes in
      let packed = Packed_work.build strings
      and legacy = Legacy_work.build strings in
      List.iter2
        (fun (name, packed_pass) (name', legacy_pass) ->
          assert (name = name');
          let packed_sum = packed_pass () and legacy_sum = legacy_pass () in
          if packed_sum <> legacy_sum then begin
            Printf.eprintf
              "logic bench: checksum mismatch on %s vars=%d (packed %d, \
               legacy %d)\n"
              name vars packed_sum legacy_sum;
            exit 1
          end;
          let legacy_s = time_pass ~min_s legacy_pass in
          let packed_s = time_pass ~min_s packed_pass in
          let speedup = legacy_s /. packed_s in
          Printf.printf
            "  %-16s vars=%-3d cubes=%d  legacy %10.1f us  packed %8.1f us  \
             speedup %6.2fx\n%!"
            name vars cubes (legacy_s *. 1e6) (packed_s *. 1e6) speedup;
          results := (name, vars, legacy_s, packed_s, speedup) :: !results)
        (Packed_work.passes packed) (Legacy_work.passes legacy))
    widths;
  let results = List.rev !results in
  let geomean =
    exp
      (List.fold_left (fun acc (_, _, _, _, s) -> acc +. log s) 0.0 results
      /. float_of_int (List.length results))
  in
  Printf.printf "  geometric-mean speedup: %.2fx\n" geomean;
  (* single-cube containment: classic all-pairs sweep vs the
     signature-bucketed candidate index, on covers big enough for the
     quadratic term to hurt.  Outputs must agree cube for cube; per-call
     probe counts are sampled from the logic.scc instrumentation into
     bench.logic histograms so BENCH_logic.json carries before/after. *)
  Obs.Metrics.enable ();
  let h_linear = Obs.Metrics.histogram "bench.logic.scc_probes_linear" in
  let h_indexed = Obs.Metrics.histogram "bench.logic.scc_probes_indexed" in
  let c_probes = Obs.Metrics.counter "logic.scc.pairs_probed" in
  let scc_sizes = if quick then [ 256 ] else [ 256; 1024; 2048 ] in
  let scc_results =
    List.map
      (fun k ->
        let vars = 24 in
        let strings = random_cube_strings st ~vars ~cubes:k in
        let f = Logic.Cover.of_strings vars (Array.to_list strings) in
        let probed algo h =
          let v0 = Obs.Metrics.counter_value c_probes in
          let r = Logic.Cover.single_cube_containment ~algo f in
          Obs.Metrics.observe h (Obs.Metrics.counter_value c_probes - v0);
          r
        in
        let lin = probed `Linear h_linear in
        let idx = probed `Indexed h_indexed in
        let same =
          Logic.Cover.size lin = Logic.Cover.size idx
          && List.for_all2
               (fun a b -> Logic.Cube.compare a b = 0)
               lin.Logic.Cover.cubes idx.Logic.Cover.cubes
        in
        if not same then begin
          Printf.eprintf
            "logic bench: linear and indexed containment disagree at \
             cubes=%d\n"
            k;
          exit 1
        end;
        let linear_s =
          time_pass ~min_s (fun () ->
              Logic.Cover.size
                (Logic.Cover.single_cube_containment ~algo:`Linear f))
        in
        let indexed_s =
          time_pass ~min_s (fun () ->
              Logic.Cover.size
                (Logic.Cover.single_cube_containment ~algo:`Indexed f))
        in
        let speedup = linear_s /. indexed_s in
        Printf.printf
          "  %-16s cubes=%-4d kept=%-4d linear %10.1f us  indexed %8.1f us  \
           speedup %6.2fx\n%!"
          "scc-index" k (Logic.Cover.size idx) (linear_s *. 1e6)
          (indexed_s *. 1e6) speedup;
        (k, linear_s, indexed_s, speedup))
      scc_sizes
  in
  if emit_json then
    emit_bench ~file:"BENCH_logic.json" ~prefix:"bench.logic"
      ~title:"packed vs legacy cube kernel + containment index"
      ~unit:"ns_per_pass"
      (("cubes_per_set", float_of_int cubes)
       :: ("geomean_speedup", geomean)
       :: (List.concat_map
             (fun (name, vars, legacy_s, packed_s, speedup) ->
               let key = Printf.sprintf "%s.vars%d" name vars in
               [ (key ^ ".legacy_ns", legacy_s *. 1e9);
                 (key ^ ".packed_ns", packed_s *. 1e9);
                 (key ^ ".speedup", speedup) ])
             results
          @ List.concat_map
              (fun (k, linear_s, indexed_s, speedup) ->
                let key = Printf.sprintf "scc.cubes%d" k in
                [ (key ^ ".linear_ns", linear_s *. 1e9);
                  (key ^ ".indexed_ns", indexed_s *. 1e9);
                  (key ^ ".speedup", speedup) ])
              scc_results));
  geomean

(* --- 3e. Serial vs domain-parallel Table I ------------------------------------------- *)

let suite_bench ?(emit_json = true) ?(verify = true) ?(verify_each = false)
    ?(eqcheck_each = false) ?names ?(jobs = 4) () =
  section
    (Printf.sprintf "Table I suite: serial vs %d-domain parallel run%s%s" jobs
       (if eqcheck_each then " (--eqcheck-each)" else "")
       (if verify_each then " (--verify-each)" else ""));
  let run jobs =
    let t0 = Unix.gettimeofday () in
    let rows, times =
      Report.Table.run_suite_timed ~verify ~verify_each ~eqcheck_each ?names
        ~jobs ()
    in
    let dt = Unix.gettimeofday () -. t0 in
    let out =
      Report.Table.render rows ^ Report.Table.summary rows
      ^ (if eqcheck_each then Report.Table.eqcheck_summary rows else "")
    in
    (out, dt, times)
  in
  let serial_out, serial_s, serial_times = run 1 in
  let parallel_out, parallel_s, _ = run jobs in
  if not (String.equal serial_out parallel_out) then begin
    Printf.eprintf
      "suite bench: --jobs 1 and --jobs %d outputs DIFFER — determinism bug\n"
      jobs;
    exit 1
  end;
  let speedup = serial_s /. parallel_s in
  let rows =
    match names with
    | Some ns -> List.length ns
    | None -> List.length Circuits.Suite.entries
  in
  (* Critical-path decomposition: with row-granular parallelism only, the
     slowest row lower-bounds the parallel wall clock no matter how many
     workers run.  The intra-row tasks (eqcheck boundary chain, verify rule
     groups, the two verification lanes, resynthesis cone evaluation) exist
     to break exactly that bound, so measure it: re-run just the slowest row
     serial vs [jobs]-worker and report how much of it decomposes. *)
  let slowest_row, slowest_row_s =
    List.fold_left
      (fun (bn, bs) (n, s) -> if s > bs then (n, s) else (bn, bs))
      ("", 0.0) serial_times
  in
  let slowest_row_share =
    100.0 *. slowest_row_s /. Float.max 1e-9 serial_s
  in
  let time_critical jobs =
    let t0 = Unix.gettimeofday () in
    ignore
      (Report.Table.run_suite ~verify ~verify_each ~eqcheck_each
         ~names:[ slowest_row ] ~jobs ());
    Unix.gettimeofday () -. t0
  in
  let critical_serial_s = time_critical 1 in
  let critical_intra_s = time_critical jobs in
  let critical_speedup =
    critical_serial_s /. Float.max 1e-9 critical_intra_s
  in
  Printf.printf
    "  %d rows, verify=%b: serial %.1fs, %d jobs %.1fs, speedup %.2fx \
     (output byte-identical)\n"
    rows verify serial_s jobs parallel_s speedup;
  Printf.printf
    "  slowest row: %s at %.2fs serial (%.0f%% of the suite's serial time)\n"
    slowest_row slowest_row_s slowest_row_share;
  Printf.printf
    "  critical row alone: serial %.2fs, %d jobs %.2fs — intra-row speedup \
     %.2fx\n"
    critical_serial_s jobs critical_intra_s critical_speedup;
  Printf.printf "  available cores (recommended_domain_count): %d\n"
    (Core.Parallel.cores ());
  if Core.Parallel.oversubscribed ~jobs then
    Printf.printf
      "  warning: %d jobs > %d cores — the parallel phase measures domain \
       scheduling overhead, not scaling\n"
      jobs (Core.Parallel.cores ());
  if emit_json then begin
    Obs.Metrics.enable ();
    Obs.Metrics.set_info "bench.suite.slowest_row" slowest_row;
    emit_bench ~file:"BENCH_suite.json" ~prefix:"bench.suite"
      ~title:"Table I suite, serial vs domain-parallel" ~unit:"s_per_run"
      [ ("rows", float_of_int rows);
        ("verify", if verify then 1.0 else 0.0);
        ("verify_each", if verify_each then 1.0 else 0.0);
        ("eqcheck_each", if eqcheck_each then 1.0 else 0.0);
        ("jobs", float_of_int jobs);
        ("cores", float_of_int (Core.Parallel.cores ()));
        ("jobs_exceed_cores",
         if Core.Parallel.oversubscribed ~jobs then 1.0 else 0.0);
        ("serial_s", serial_s);
        ("parallel_s", parallel_s);
        ("speedup", speedup);
        ("slowest_row_s", slowest_row_s);
        ("slowest_row_share_pct", slowest_row_share);
        ("critical_row_serial_s", critical_serial_s);
        ("critical_row_intra_s", critical_intra_s);
        ("critical_row_intra_speedup", critical_speedup);
        ("byte_identical", 1.0) ]
  end;
  speedup

(* --- 3f. Shared BDD manager ---------------------------------------------------------- *)

(* The domain-shared unique table dedups nodes across suite rows and eqcheck
   boundary checks: the same cone functions are rebuilt many times over a
   flow, and in shared mode every rebuild lands on the already-interned
   nodes.  Three phases over the same --eqcheck-each suite workload:
     A. shared table, serial          (the default configuration)
     B. shared table, [jobs] domains  (byte-identical output required)
     C. private per-scope tables, serial — the pre-shared-table architecture,
        via [Bdd.set_default_mode `Private] (byte-identical output required)
   The headline metric is the C/A node-allocation ratio: 1.5x means the
   shared table absorbs a third of all BDD node constructions. *)
let bdd_bench ?(emit_json = true) ?(quick = false) ?(jobs = 4) () =
  section
    "Shared BDD manager: node dedup + parallel determinism (--eqcheck-each)";
  let names =
    if quick then Some [ "s27"; "s208"; "s298"; "s344"; "s382"; "s400" ]
    else None
  in
  let render rows =
    Report.Table.render rows ^ Report.Table.summary rows
    ^ Report.Table.eqcheck_summary rows
  in
  let run jobs =
    let nodes0 = Bdd.total_allocated () in
    let bytes0 = Gc.allocated_bytes () in
    let t0 = Unix.gettimeofday () in
    let rows, times =
      Report.Table.run_suite_timed ~verify:false ~eqcheck_each:true ?names
        ~jobs ()
    in
    let dt = Unix.gettimeofday () -. t0 in
    let bytes = Gc.allocated_bytes () -. bytes0 in
    let nodes = Bdd.total_allocated () - nodes0 in
    (render rows, rows, dt, nodes, bytes, times)
  in
  let rows_n =
    match names with
    | Some ns -> List.length ns
    | None -> List.length Circuits.Suite.entries
  in
  let out_a, rows_a, a_s, a_nodes, a_bytes, a_times = run 1 in
  let proved, refuted, unknown =
    Eqcheck.counts (Report.Table.eqcheck_records rows_a)
  in
  if refuted > 0 then begin
    Printf.eprintf "bdd bench: %d Refuted pass verdicts on a real flow\n"
      refuted;
    exit 1
  end;
  if Core.Parallel.oversubscribed ~jobs then
    Printf.printf
      "  warning: %d jobs > %d cores — parallel phase measures scheduling, \
       not scaling\n"
      jobs (Core.Parallel.cores ());
  let out_b, _, b_s, _, _, _ = run jobs in
  if not (String.equal out_a out_b) then begin
    Printf.eprintf
      "bdd bench: --jobs 1 and --jobs %d outputs DIFFER — determinism bug\n"
      jobs;
    exit 1
  end;
  Bdd.set_default_mode `Private;
  let out_c, _, c_s, c_nodes, c_bytes, _ = run 1 in
  Bdd.set_default_mode `Shared;
  if not (String.equal out_a out_c) then begin
    Printf.eprintf
      "bdd bench: shared and private tables produce DIFFERENT output — \
       scope accounting bug\n";
    exit 1
  end;
  let node_ratio = float_of_int c_nodes /. float_of_int (max 1 a_nodes) in
  let word_ratio = c_bytes /. Float.max 1.0 a_bytes in
  let slowest_row, slowest_row_s =
    List.fold_left
      (fun (bn, bs) (n, s) -> if s > bs then (n, s) else (bn, bs))
      ("", 0.0) a_times
  in
  let slowest_row_share = 100.0 *. slowest_row_s /. Float.max 1e-9 a_s in
  Printf.printf
    "  %d rows, eqcheck-each, verdicts %d proved / %d refuted / %d unknown \
     (all three phases byte-identical)\n"
    rows_n proved refuted unknown;
  Printf.printf
    "  A shared serial:   %5.1fs  %9d nodes  %7.1f Mwords heap\n" a_s a_nodes
    (a_bytes /. 8e6);
  Printf.printf "  B shared %d jobs:   %5.1fs\n" jobs b_s;
  Printf.printf
    "  C private serial:  %5.1fs  %9d nodes  %7.1f Mwords heap\n" c_s c_nodes
    (c_bytes /. 8e6);
  Printf.printf
    "  dedup: %.2fx fewer BDD nodes allocated, %.2fx fewer heap words \
     (target >= 1.5x nodes)\n"
    node_ratio word_ratio;
  Printf.printf
    "  slowest row: %s at %.2fs serial (%.0f%% of phase A)\n" slowest_row
    slowest_row_s slowest_row_share;
  if emit_json then begin
    Obs.Metrics.enable ();
    Obs.Metrics.set_info "bench.bdd.slowest_row" slowest_row;
    emit_bench ~file:"BENCH_bdd.json" ~prefix:"bench.bdd"
      ~title:"shared vs private BDD tables on the --eqcheck-each suite"
      ~unit:"nodes_per_run"
      [ ("rows", float_of_int rows_n);
        ("jobs", float_of_int jobs);
        ("cores", float_of_int (Core.Parallel.cores ()));
        ("jobs_exceed_cores", if Core.Parallel.oversubscribed ~jobs then 1.0 else 0.0);
        ("shared_serial_s", a_s);
        ("shared_parallel_s", b_s);
        ("private_serial_s", c_s);
        ("shared_nodes", float_of_int a_nodes);
        ("private_nodes", float_of_int c_nodes);
        ("node_dedup_ratio", node_ratio);
        ("shared_heap_mwords", a_bytes /. 8e6);
        ("private_heap_mwords", c_bytes /. 8e6);
        ("heap_word_ratio", word_ratio);
        ("slowest_row_s", slowest_row_s);
        ("slowest_row_share_pct", slowest_row_share);
        ("proved", float_of_int proved);
        ("refuted", float_of_int refuted);
        ("unknown", float_of_int unknown);
        ("byte_identical", 1.0) ]
  end;
  node_ratio

(* --- 3g. Verifier overhead ----------------------------------------------------------- *)

(* Cost of --verify-each: the same suite subset with the checker off and on.
   Sequential-equivalence verification is disabled in both runs so the delta
   isolates the verifier (static rules + journal audit at every pass
   boundary). *)
let verifier_bench ?(emit_json = true) ?names () =
  section "Netlist verifier: --verify-each overhead (verify=false both runs)";
  let names =
    match names with
    | Some ns -> ns
    | None -> [ "s27"; "s208"; "s298"; "s344"; "s382"; "s400"; "s444"; "s526" ]
  in
  let run verify_each =
    let t0 = Unix.gettimeofday () in
    let rows =
      Report.Table.run_suite ~verify:false ~verify_each ~names ()
    in
    (rows, Unix.gettimeofday () -. t0)
  in
  (* warm-up, then best-of-3 alternating runs: sub-second suite subsets are
     dominated by allocator/GC noise otherwise *)
  ignore (run false);
  let best verify_each =
    let results = List.init 3 (fun _ -> run verify_each) in
    List.fold_left
      (fun (rows, t) (rows', t') -> if t' < t then (rows', t') else (rows, t))
      (List.hd results) (List.tl results)
  in
  let rows_off, off_s = best false in
  let rows_on, on_s = best true in
  if
    not
      (String.equal
         (Report.Table.render rows_off)
         (Report.Table.render rows_on))
  then begin
    Printf.eprintf
      "verifier bench: --verify-each changed the flow results — checker is \
       not observation-only\n";
    exit 1
  end;
  let overhead = (on_s -. off_s) /. off_s *. 100.0 in
  Printf.printf
    "  %d rows: checker off %.2fs, on %.2fs, overhead %+.1f%% (results \
     byte-identical)\n"
    (List.length names) off_s on_s overhead;
  if emit_json then
    emit_bench ~file:"BENCH_verify.json" ~prefix:"bench.verify"
      ~title:"--verify-each overhead on Table I subset" ~unit:"s_per_run"
      [ ("rows", float_of_int (List.length names));
        ("checker_off_s", off_s);
        ("checker_on_s", on_s);
        ("overhead_pct", overhead);
        ("byte_identical", 1.0) ];
  overhead

(* Cost of --eqcheck-each: the same suite subset with the semantic
   equivalence analyzer off and on (verify=false and verify_each=false in
   both runs so the delta isolates eqcheck).  Also records the verdict
   counts — the analyzer must report zero Refuted on real flows. *)
let eqcheck_bench ?(emit_json = true) ?names () =
  section
    "Semantic equivalence analyzer: --eqcheck-each overhead (verify=false \
     both runs)";
  let names =
    match names with
    | Some ns -> ns
    | None -> [ "s27"; "bbtas"; "ex2"; "s208"; "s298"; "s344" ]
  in
  let run eqcheck_each =
    let t0 = Unix.gettimeofday () in
    let rows = Report.Table.run_suite ~verify:false ~eqcheck_each ~names () in
    (rows, Unix.gettimeofday () -. t0)
  in
  ignore (run false);
  let best eqcheck_each =
    let results = List.init 3 (fun _ -> run eqcheck_each) in
    List.fold_left
      (fun (rows, t) (rows', t') -> if t' < t then (rows', t') else (rows, t))
      (List.hd results) (List.tl results)
  in
  let rows_off, off_s = best false in
  let rows_on, on_s = best true in
  if
    not
      (String.equal
         (Report.Table.render rows_off)
         (Report.Table.render rows_on))
  then begin
    Printf.eprintf
      "eqcheck bench: --eqcheck-each changed the flow results — analyzer is \
       not observation-only\n";
    exit 1
  end;
  let proved, refuted, unknown =
    Eqcheck.counts (Report.Table.eqcheck_records rows_on)
  in
  if refuted > 0 then begin
    Printf.eprintf "eqcheck bench: %d Refuted pass verdicts on a real flow\n"
      refuted;
    exit 1
  end;
  let overhead = (on_s -. off_s) /. off_s *. 100.0 in
  Printf.printf
    "  %d rows: analyzer off %.2fs, on %.2fs, overhead %+.1f%% (results \
     byte-identical)\n\
    \  verdicts: %d proved, %d refuted, %d unknown\n"
    (List.length names) off_s on_s overhead proved refuted unknown;
  if emit_json then
    emit_bench ~file:"BENCH_eqcheck.json" ~prefix:"bench.eqcheck"
      ~title:"--eqcheck-each overhead on Table I subset" ~unit:"s_per_run"
      [ ("rows", float_of_int (List.length names));
        ("analyzer_off_s", off_s);
        ("analyzer_on_s", on_s);
        ("overhead_pct", overhead);
        ("byte_identical", 1.0);
        ("proved", float_of_int proved);
        ("refuted", float_of_int refuted);
        ("unknown", float_of_int unknown) ];
  overhead

(* --- serve round-trip --------------------------------------------------------------- *)

(* Cold vs warm request through the in-process serving engine: the same
   benchmark twice on one engine.  The first request parses/builds the
   circuit into the engine's pristine cache and populates the shared BDD
   unique table; the second copies the cached network and rebuilds its BDDs
   onto already-interned nodes.  The two result payloads must be
   byte-identical — warmth may only change latency and allocation, never
   output. *)
let serve_bench ?(emit_json = true) () =
  section "serve: cold vs warm round-trip (in-process engine, jobs 2)";
  Obs.Metrics.enable ();
  let counter_delta name delta =
    match List.assoc_opt name delta with
    | Some (Obs.Metrics.Counter n) -> n
    | _ -> 0
  in
  let cold, warm =
    Core.Parallel.run ~jobs:2 (fun () ->
        let eng = Serve.Engine.create () in
        let round id =
          let snap = Obs.Metrics.snapshot () in
          let bdd0 = Bdd.total_allocated () in
          let t0 = Unix.gettimeofday () in
          let reply =
            Serve.Engine.submit eng ~id:(Some id)
              (Serve.Protocol.Benchmark "s27")
              Serve.Protocol.default_submit_options
          in
          (match Serve.Json.mem_bool "ok" reply with
           | Some true -> ()
           | _ -> failwith ("serve bench: submit rejected: "
                            ^ Serve.Json.to_string reply));
          Serve.Engine.drain eng;
          let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
          let delta = Obs.Metrics.delta snap in
          let payload =
            match Serve.Json.member "result" (Serve.Engine.result eng id) with
            | Some p -> Serve.Json.to_string p
            | None -> failwith "serve bench: request did not complete"
          in
          ( payload,
            ms,
            Bdd.total_allocated () - bdd0,
            counter_delta "serve.cache.hits" delta,
            counter_delta "serve.cache.misses" delta )
        in
        let cold = round "cold" in
        (cold, round "warm"))
  in
  let p_cold, cold_ms, cold_bdd, cold_hits, cold_misses = cold in
  let p_warm, warm_ms, warm_bdd, warm_hits, warm_misses = warm in
  let identical = p_cold = p_warm in
  Printf.printf
    "  cold: %7.1f ms  %8d BDD nodes allocated  cache %d hit / %d miss\n"
    cold_ms cold_bdd cold_hits cold_misses;
  Printf.printf
    "  warm: %7.1f ms  %8d BDD nodes allocated  cache %d hit / %d miss\n"
    warm_ms warm_bdd warm_hits warm_misses;
  Printf.printf "  result payloads byte-identical: %b\n" identical;
  if not identical then
    failwith "serve bench: warm result diverged from cold result";
  if emit_json then
    emit_bench ~file:"BENCH_serve.json" ~prefix:"bench.serve"
      ~title:"daemon engine round-trip: cold vs warm request (s27)"
      ~unit:"ms"
      [ ("cold_ms", cold_ms);
        ("warm_ms", warm_ms);
        ("speedup", if warm_ms > 0.0 then cold_ms /. warm_ms else 0.0);
        ("cold_bdd_allocated", float_of_int cold_bdd);
        ("warm_bdd_allocated", float_of_int warm_bdd);
        ("cold_cache_hits", float_of_int cold_hits);
        ("cold_cache_misses", float_of_int cold_misses);
        ("warm_cache_hits", float_of_int warm_hits);
        ("warm_cache_misses", float_of_int warm_misses);
        ("byte_identical", if identical then 1.0 else 0.0) ]

(* --- 4. Bechamel kernels ------------------------------------------------------------ *)

let bechamel_kernels () =
  section "Kernel timings (Bechamel, ols on monotonic clock)";
  let open Bechamel in
  let paper_net = Circuits.Paper_example.circuit () in
  let s27 = Circuits.S27.circuit () in
  let s298 = (Circuits.Suite.find "s298").Circuits.Suite.build () in
  let mapped_s298 =
    Core.Flow.script_delay_flow s298 ~lib:Techmap.Genlib.mcnc_lite
  in
  let mapped_s27 =
    Core.Flow.script_delay_flow s27 ~lib:Techmap.Genlib.mcnc_lite
  in
  let big_cover =
    let f = Logic.Cover.of_strings 8 [ "1111----"; "----1111"; "11--11--" ] in
    Logic.Cover.union f (Logic.Cover.complement f)
  in
  let tests =
    Test.make_grouped ~name:"kernels"
      [ Test.make ~name:"figure:resynthesize-paper-example"
          (Staged.stage (fun () ->
               let options =
                 { Core.Resynth.default_options with
                   Core.Resynth.model = Sta.unit_delay;
                   remap = false }
               in
               ignore (Core.Resynth.resynthesize ~options paper_net)));
        Test.make ~name:"table1:flow-script-delay-s27"
          (Staged.stage (fun () ->
               ignore
                 (Core.Flow.script_delay_flow s27 ~lib:Techmap.Genlib.mcnc_lite)));
        Test.make ~name:"table1:flow-retiming-s27"
          (Staged.stage (fun () ->
               ignore
                 (Core.Flow.retiming_flow mapped_s27 ~lib:Techmap.Genlib.mcnc_lite)));
        Test.make ~name:"table1:flow-resynthesis-s298"
          (Staged.stage (fun () ->
               ignore (Core.Flow.resynthesis_flow mapped_s298)));
        Test.make ~name:"kernel:espresso-minimize"
          (Staged.stage (fun () -> ignore (Logic.Minimize.minimize big_cover)));
        Test.make ~name:"kernel:bdd-reachability-s27"
          (Staged.stage (fun () ->
               ignore (Dontcare.Reach.unreachable_states s27)));
        Test.make ~name:"kernel:min-period-retiming-s298"
          (Staged.stage (fun () ->
               ignore
                 (Retiming.Minperiod.retime_min_period mapped_s298
                    ~model:(Sta.mapped_delay ()))));
        Test.make ~name:"kernel:tech-mapping-s27"
          (Staged.stage (fun () ->
               ignore
                 (Techmap.Mapper.map s27 ~lib:Techmap.Genlib.mcnc_lite
                    ~objective:Techmap.Mapper.Min_delay)));
        (* full vs incremental STA on the suite's largest circuit: one
           binding edit followed by a period re-query *)
        (let s5378 = (Circuits.Suite.find "s5378").Circuits.Suite.build () in
         let model = Sta.mapped_delay ~default:1.0 () in
         let nodes = Array.of_list (N.logic_nodes s5378) in
         let counter = ref 0 in
         let edit () =
           incr counter;
           let v = nodes.(!counter * 37 mod Array.length nodes) in
           N.set_binding s5378 v
             (Some
                { N.gate_name = "g";
                  gate_area = 1.0;
                  gate_delay = (if !counter land 1 = 0 then 3.0 else 1.0) })
         in
         Test.make ~name:"sta:full-reanalysis-edit-s5378"
           (Staged.stage (fun () ->
                edit ();
                ignore (Sta.clock_period s5378 model))));
        (let s5378 = (Circuits.Suite.find "s5378").Circuits.Suite.build () in
         let model = Sta.mapped_delay ~default:1.0 () in
         let nodes = Array.of_list (N.logic_nodes s5378) in
         let timer = Sta.Incremental.create s5378 model in
         let counter = ref 0 in
         let edit () =
           incr counter;
           let v = nodes.(!counter * 37 mod Array.length nodes) in
           N.set_binding s5378 v
             (Some
                { N.gate_name = "g";
                  gate_area = 1.0;
                  gate_delay = (if !counter land 1 = 0 then 3.0 else 1.0) })
         in
         Test.make ~name:"sta:incremental-requery-edit-s5378"
           (Staged.stage (fun () ->
                edit ();
                ignore (Sta.Incremental.period timer)))) ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name est acc ->
        let ns =
          match Analyze.OLS.estimates est with
          | Some (x :: _) -> x
          | Some [] | None -> nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (name, ns) ->
      let pretty =
        if ns > 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
        else Printf.sprintf "%8.2f us" (ns /. 1e3)
      in
      Printf.printf "  %-42s %s/run\n" name pretty)
    rows

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let smoke = List.mem "--smoke" args in
  let sta_only = List.mem "--sta" args in
  let logic_only = List.mem "--logic" args in
  let suite_only = List.mem "--suite" args in
  let verifier_only = List.mem "--verifier" args in
  let eqcheck_only = List.mem "--eqcheck" args in
  let bdd_only = List.mem "--bdd" args in
  let serve_only = List.mem "--serve" args in
  let eqcheck_each = List.mem "--eqcheck-each" args in
  let verify_each = List.mem "--verify-each" args in
  let quick = List.mem "--quick" args in
  (* value of a "--flag v" pair, if present *)
  let arg_value flag =
    let rec find = function
      | f :: v :: _ when f = flag -> Some v
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  let names =
    Option.map (String.split_on_char ',') (arg_value "--names")
  in
  let jobs =
    match Option.map int_of_string (arg_value "--jobs") with
    | Some j when j >= 1 -> j
    | Some _ -> 4
    | None -> 4
  in
  let trace = arg_value "--trace" in
  let trace_format =
    match arg_value "--trace-format" with
    | None | Some "chrome" -> `Chrome
    | Some "json" -> `Json
    | Some _ ->
      prerr_endline "bench: --trace-format expects chrome or json";
      exit 2
  in
  let metrics = List.mem "--metrics" args in
  let metrics_json = arg_value "--metrics-json" in
  if trace <> None then Obs.Trace.enable ();
  if metrics || metrics_json <> None || trace <> None then
    Obs.Metrics.enable ();
  Printf.printf
    "Retiming-induced state register equivalence: evaluation harness%s\n"
    (if smoke then " (smoke)"
     else if sta_only then " (sta)"
     else if logic_only then " (logic)"
     else if suite_only then " (suite)"
     else if verifier_only then " (verifier)"
     else if eqcheck_only then " (eqcheck)"
     else if bdd_only then " (bdd)"
     else if serve_only then " (serve)"
     else "");
  if sta_only then
    ignore (sta_bench ~circuits:[ "s641"; "s1196"; "s1238"; "s5378" ] ())
  else if logic_only then ignore (logic_bench ~quick ())
  else if suite_only then
    ignore
      (suite_bench ~verify:(not quick) ~verify_each ~eqcheck_each ?names
         ~jobs ())
  else if verifier_only then ignore (verifier_bench ?names ())
  else if eqcheck_only then ignore (eqcheck_bench ?names ())
  else if bdd_only then ignore (bdd_bench ~quick ~jobs ())
  else if serve_only then serve_bench ()
  else if smoke then begin
    (* CI-sized pass: the Section III example end to end plus the STA
       comparison on a small circuit; no JSON, no Bechamel quotas *)
    section3_example ();
    ignore (sta_bench ~emit_json:false ~circuits:[ "s298"; "s641" ] ());
    ignore (logic_bench ~emit_json:false ~quick:true ());
    Printf.printf "\nsmoke ok.\n"
  end
  else begin
    section3_example ();
    ignore (table1 ());
    ablations ();
    min_register_extension ();
    ignore (sta_bench ~circuits:[ "s641"; "s1196"; "s1238"; "s5378" ] ());
    ignore (logic_bench ());
    ignore (suite_bench ~jobs ());
    ignore (verifier_bench ());
    ignore (eqcheck_bench ());
    ignore (bdd_bench ~jobs ());
    serve_bench ();
    bechamel_kernels ();
    Printf.printf "\ndone.\n"
  end;
  (match trace with
   | Some file ->
     let contents =
       match trace_format with
       | `Chrome -> Obs.Export.chrome_json ()
       | `Json -> Obs.Export.spans_json ()
     in
     Obs.Export.write_file file contents;
     Printf.printf "trace: %d spans written to %s\n"
       (List.length (Obs.Trace.spans ()))
       file
   | None -> ());
  (match metrics_json with
   | Some file ->
     Bdd.publish_stats ();
     Techmap.publish_stats ();
     Obs.Export.write_file file (Obs.Export.metrics_json ());
     Printf.printf "metrics: written to %s\n" file
   | None -> ());
  if metrics then begin
    Bdd.publish_stats ();
    Techmap.publish_stats ();
    print_string (Obs.Export.text_summary ())
  end
