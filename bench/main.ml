(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, then times the key kernels with Bechamel.

   Sections:
   1. Section III example (Figs. 4-6): delay 3 -> 2 (retiming) -> 1
      (resynthesis).
   2. Table I: the 19-row benchmark suite under the three flows, with
      verification and comparison against the paper's qualitative
      expectations.
   3. Ablations: DC exploitation mode, post-restructuring retiming, and the
      regression guard (DESIGN.md, Section 5).
   4. Bechamel micro-benchmarks of the core kernels. *)

module N = Netlist.Network

let line = String.make 86 '='

let section title =
  Printf.printf "\n%s\n== %s\n%s\n%!" line title line

(* --- 1. Section III example ---------------------------------------------------- *)

let section3_example () =
  section "Section III example (Figs. 4-6): 3 -> 2 -> 1 gate delays";
  let net = Circuits.Paper_example.circuit () in
  let model = Sta.unit_delay in
  Printf.printf "original:      period %.1f, %d registers  (paper: 3 gate delays)\n"
    (Sta.clock_period net model) (N.num_latches net);
  (match Retiming.Minperiod.retime_min_period net ~model with
   | Ok (retimed, p) ->
     Printf.printf
       "retimed:       period %.1f, %d registers  (paper: 2 gate delays)\n" p
       (N.num_latches retimed)
   | Error f ->
     Printf.printf "retimed:       FAILED (%s)\n"
       (Retiming.Minperiod.failure_message f));
  let options =
    { Core.Resynth.default_options with
      Core.Resynth.model;
      remap = false }
  in
  let outcome = Core.Resynth.resynthesize ~options net in
  Printf.printf
    "resynthesized: period %.1f, %d registers  (paper: 1 gate delay)\n"
    (Sta.clock_period outcome.Core.Resynth.network model)
    (N.num_latches outcome.Core.Resynth.network);
  Printf.printf
    "  mechanism: %d stem splits, %d equivalence classes, %d forward moves, \
     %d cones simplified by DC_ret\n"
    outcome.Core.Resynth.stem_splits outcome.Core.Resynth.equivalence_classes
    outcome.Core.Resynth.forward_moves outcome.Core.Resynth.simplified_cones;
  Printf.printf "  sequential equivalence: %b\n"
    (Sim.Equiv.seq_equal_bdd net outcome.Core.Resynth.network)

(* --- 2. Table I ------------------------------------------------------------------ *)

let expectation_matches (e : Circuits.Suite.entry) (row : Core.Flow.row) =
  let retime_failed = row.Core.Flow.retimed.Core.Flow.stats = None in
  let resynth_declined = row.Core.Flow.resynthesized.Core.Flow.stats = None in
  match e.Circuits.Suite.expectation with
  | Circuits.Suite.Normal -> not resynth_declined
  | Circuits.Suite.Retiming_fails -> retime_failed
  | Circuits.Suite.Resynthesis_na | Circuits.Suite.Resynthesis_hurts ->
    resynth_declined

let table1 () =
  section "Table I: script.delay | +retiming+comb.opt | +resynthesis";
  let t0 = Unix.gettimeofday () in
  let rows = Report.Table.run_suite () in
  print_string (Report.Table.render rows);
  print_newline ();
  print_string (Report.Table.summary rows);
  (* expectation comparison *)
  Printf.printf "\npaper-vs-measured (qualitative expectations from the text):\n";
  List.iter2
    (fun (e : Circuits.Suite.entry) row ->
      Printf.printf "  %-8s expected=%-18s matched=%b  (%s)\n"
        e.Circuits.Suite.name
        (match e.Circuits.Suite.expectation with
         | Circuits.Suite.Normal -> "normal"
         | Circuits.Suite.Retiming_fails -> "retiming-fails"
         | Circuits.Suite.Resynthesis_na -> "resynthesis-n.a."
         | Circuits.Suite.Resynthesis_hurts -> "resynthesis-hurts")
        (expectation_matches e row)
        e.Circuits.Suite.comment)
    Circuits.Suite.entries rows;
  let verified =
    List.for_all
      (fun r ->
        r.Core.Flow.retimed.Core.Flow.verified
        && r.Core.Flow.resynthesized.Core.Flow.verified)
      rows
  in
  Printf.printf "\nall flow results verified sequentially equivalent: %b\n"
    verified;
  Printf.printf "table regenerated in %.1fs\n" (Unix.gettimeofday () -. t0);
  rows

(* --- 3. Ablations ------------------------------------------------------------------ *)

let ablations () =
  section "Ablations (DESIGN.md section 5)";
  let variants =
    [ ("dc-mode=substitution",
       { Core.Resynth.default_options with
         Core.Resynth.dc_mode = Core.Resynth.Substitution });
      ("no-post-retiming",
       { Core.Resynth.default_options with Core.Resynth.retime_post = false });
      ("no-guard",
       { Core.Resynth.default_options with
         Core.Resynth.guard_regression = false }) ]
  in
  List.iter
    (fun (name, options) ->
      let t0 = Unix.gettimeofday () in
      let rows =
        Report.Table.run_suite ~verify:false ~resynth_options:options ()
      in
      Printf.printf "\n--- %s (%.1fs)\n%s" name
        (Unix.gettimeofday () -. t0)
        (Report.Table.summary rows);
      if name = "no-guard" then begin
        let regressions =
          List.length
            (List.filter
               (fun r ->
                 match r.Core.Flow.resynthesized.Core.Flow.stats with
                 | Some s ->
                   s.Core.Flow.clk > r.Core.Flow.base.Core.Flow.clk +. 1e-9
                 | None -> false)
               rows)
        in
        Printf.printf
          "  unguarded clock regressions vs script.delay: %d rows (the \
           paper's s420/s510 phenomenon)\n"
          regressions
      end)
    variants

(* --- 3b. Extension: exact min-register retiming -------------------------------------- *)

(* Not part of the paper's evaluation, but the classical companion objective
   it cites ("retiming ... for register minimization under cycle-time
   constraints [2]").  Solved exactly by the min-cost-flow dual with the
   Leiserson-Saxe fanout-sharing mirror construction. *)
let min_register_extension () =
  section "Extension: exact min-register retiming (period-constrained)";
  let model = Sta.mapped_delay () in
  List.iter
    (fun name ->
      let entry = Circuits.Suite.find name in
      let net = entry.Circuits.Suite.build () in
      let mapped =
        Core.Flow.script_delay_flow net ~lib:Techmap.Genlib.mcnc_lite
      in
      let period = Sta.clock_period mapped model in
      match
        Retiming.Minregister.min_registers ~target_period:period mapped ~model
      with
      | Ok (retimed, count) ->
        let ok = Sim.Equiv.seq_equal mapped retimed in
        Printf.printf
          "  %-8s registers %3d -> %3d at period %.2f (verified %b)\n" name
          (N.num_latches mapped) count period ok
      | Error f ->
        Printf.printf "  %-8s failed: %s\n" name
          (Retiming.Minperiod.failure_message f))
    [ "s27"; "s208"; "s298"; "s344"; "s382"; "s400"; "s444"; "s526" ]

(* --- 3c. Incremental STA vs full reanalysis ------------------------------------------ *)

(* The scenario every optimization loop pays for: apply one local edit, ask
   for the clock period again.  The full engine re-analyzes the whole
   network; the incremental timer re-propagates only the edit's cone. *)
let sta_bench ?(emit_json = true) ~circuits () =
  section "Incremental STA vs full reanalysis (single-edit period re-queries)";
  let model = Sta.mapped_delay ~default:1.0 () in
  let bench_circuit name =
    let entry = Circuits.Suite.find name in
    let net = entry.Circuits.Suite.build () in
    let nodes = Array.of_list (N.logic_nodes net) in
    let nnodes = Array.length nodes in
    let slow =
      Some { N.gate_name = "slow"; gate_area = 1.0; gate_delay = 3.0 }
    in
    let fast =
      Some { N.gate_name = "fast"; gate_area = 1.0; gate_delay = 1.0 }
    in
    (* stride across the circuit so successive edits hit unrelated cones *)
    let edit i =
      let v = nodes.(i * 37 mod nnodes) in
      N.set_binding net v (if i land 1 = 0 then slow else fast)
    in
    let reps = if nnodes > 500 then 200 else 400 in
    let time_per_query body =
      (* warm-up pass, then the measured passes *)
      for i = 0 to 9 do body i done;
      let t0 = Unix.gettimeofday () in
      for i = 0 to reps - 1 do body i done;
      (Unix.gettimeofday () -. t0) /. float_of_int reps
    in
    let full_s =
      time_per_query (fun i ->
          edit i;
          ignore (Sta.clock_period net model))
    in
    let timer = Sta.Incremental.create net model in
    let incr_s =
      time_per_query (fun i ->
          edit i;
          ignore (Sta.Incremental.period timer))
    in
    (* both engines must agree after all those edits *)
    assert (Sta.Incremental.period timer = Sta.clock_period net model);
    let stats = Sta.Incremental.stats timer in
    let speedup = full_s /. incr_s in
    Printf.printf
      "  %-8s %5d gates  full %10.2f us/query  incremental %8.2f us/query  \
       speedup %6.1fx  (%d incremental syncs, %d full)\n%!"
      name nnodes (full_s *. 1e6) (incr_s *. 1e6) speedup
      stats.Sta.Incremental.incremental_syncs stats.Sta.Incremental.full_syncs;
    (name, nnodes, reps, full_s, incr_s, speedup)
  in
  let rows = List.map bench_circuit circuits in
  if emit_json then begin
    let oc = open_out "BENCH_sta.json" in
    Printf.fprintf oc
      "{\n  \"benchmark\": \"single-edit clock-period re-query\",\n\
      \  \"unit\": \"ns_per_query\",\n  \"circuits\": [\n";
    List.iteri
      (fun i (name, gates, reps, full_s, incr_s, speedup) ->
        Printf.fprintf oc
          "    { \"name\": \"%s\", \"logic_nodes\": %d, \"queries\": %d,\n\
          \      \"full_ns\": %.1f, \"incremental_ns\": %.1f, \
           \"speedup\": %.2f }%s\n"
          name gates reps (full_s *. 1e9) (incr_s *. 1e9) speedup
          (if i = List.length rows - 1 then "" else ","))
      rows;
    Printf.fprintf oc "  ]\n}\n";
    close_out oc;
    Printf.printf "  -> BENCH_sta.json\n"
  end;
  rows

(* --- 4. Bechamel kernels ------------------------------------------------------------ *)

let bechamel_kernels () =
  section "Kernel timings (Bechamel, ols on monotonic clock)";
  let open Bechamel in
  let paper_net = Circuits.Paper_example.circuit () in
  let s27 = Circuits.S27.circuit () in
  let s298 = (Circuits.Suite.find "s298").Circuits.Suite.build () in
  let mapped_s298 =
    Core.Flow.script_delay_flow s298 ~lib:Techmap.Genlib.mcnc_lite
  in
  let mapped_s27 =
    Core.Flow.script_delay_flow s27 ~lib:Techmap.Genlib.mcnc_lite
  in
  let big_cover =
    let f = Logic.Cover.of_strings 8 [ "1111----"; "----1111"; "11--11--" ] in
    Logic.Cover.union f (Logic.Cover.complement f)
  in
  let tests =
    Test.make_grouped ~name:"kernels"
      [ Test.make ~name:"figure:resynthesize-paper-example"
          (Staged.stage (fun () ->
               let options =
                 { Core.Resynth.default_options with
                   Core.Resynth.model = Sta.unit_delay;
                   remap = false }
               in
               ignore (Core.Resynth.resynthesize ~options paper_net)));
        Test.make ~name:"table1:flow-script-delay-s27"
          (Staged.stage (fun () ->
               ignore
                 (Core.Flow.script_delay_flow s27 ~lib:Techmap.Genlib.mcnc_lite)));
        Test.make ~name:"table1:flow-retiming-s27"
          (Staged.stage (fun () ->
               ignore
                 (Core.Flow.retiming_flow mapped_s27 ~lib:Techmap.Genlib.mcnc_lite)));
        Test.make ~name:"table1:flow-resynthesis-s298"
          (Staged.stage (fun () ->
               ignore (Core.Flow.resynthesis_flow mapped_s298)));
        Test.make ~name:"kernel:espresso-minimize"
          (Staged.stage (fun () -> ignore (Logic.Minimize.minimize big_cover)));
        Test.make ~name:"kernel:bdd-reachability-s27"
          (Staged.stage (fun () ->
               ignore (Dontcare.Reach.unreachable_states s27)));
        Test.make ~name:"kernel:min-period-retiming-s298"
          (Staged.stage (fun () ->
               ignore
                 (Retiming.Minperiod.retime_min_period mapped_s298
                    ~model:(Sta.mapped_delay ()))));
        Test.make ~name:"kernel:tech-mapping-s27"
          (Staged.stage (fun () ->
               ignore
                 (Techmap.Mapper.map s27 ~lib:Techmap.Genlib.mcnc_lite
                    ~objective:Techmap.Mapper.Min_delay)));
        (* full vs incremental STA on the suite's largest circuit: one
           binding edit followed by a period re-query *)
        (let s5378 = (Circuits.Suite.find "s5378").Circuits.Suite.build () in
         let model = Sta.mapped_delay ~default:1.0 () in
         let nodes = Array.of_list (N.logic_nodes s5378) in
         let counter = ref 0 in
         let edit () =
           incr counter;
           let v = nodes.(!counter * 37 mod Array.length nodes) in
           N.set_binding s5378 v
             (Some
                { N.gate_name = "g";
                  gate_area = 1.0;
                  gate_delay = (if !counter land 1 = 0 then 3.0 else 1.0) })
         in
         Test.make ~name:"sta:full-reanalysis-edit-s5378"
           (Staged.stage (fun () ->
                edit ();
                ignore (Sta.clock_period s5378 model))));
        (let s5378 = (Circuits.Suite.find "s5378").Circuits.Suite.build () in
         let model = Sta.mapped_delay ~default:1.0 () in
         let nodes = Array.of_list (N.logic_nodes s5378) in
         let timer = Sta.Incremental.create s5378 model in
         let counter = ref 0 in
         let edit () =
           incr counter;
           let v = nodes.(!counter * 37 mod Array.length nodes) in
           N.set_binding s5378 v
             (Some
                { N.gate_name = "g";
                  gate_area = 1.0;
                  gate_delay = (if !counter land 1 = 0 then 3.0 else 1.0) })
         in
         Test.make ~name:"sta:incremental-requery-edit-s5378"
           (Staged.stage (fun () ->
                edit ();
                ignore (Sta.Incremental.period timer)))) ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name est acc ->
        let ns =
          match Analyze.OLS.estimates est with
          | Some (x :: _) -> x
          | Some [] | None -> nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (name, ns) ->
      let pretty =
        if ns > 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
        else Printf.sprintf "%8.2f us" (ns /. 1e3)
      in
      Printf.printf "  %-42s %s/run\n" name pretty)
    rows

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let smoke = List.mem "--smoke" args in
  let sta_only = List.mem "--sta" args in
  Printf.printf
    "Retiming-induced state register equivalence: evaluation harness%s\n"
    (if smoke then " (smoke)" else if sta_only then " (sta)" else "");
  if sta_only then
    ignore (sta_bench ~circuits:[ "s641"; "s1196"; "s1238"; "s5378" ] ())
  else if smoke then begin
    (* CI-sized pass: the Section III example end to end plus the STA
       comparison on a small circuit; no JSON, no Bechamel quotas *)
    section3_example ();
    ignore (sta_bench ~emit_json:false ~circuits:[ "s298"; "s641" ] ());
    Printf.printf "\nsmoke ok.\n"
  end
  else begin
    section3_example ();
    ignore (table1 ());
    ablations ();
    min_register_extension ();
    ignore (sta_bench ~circuits:[ "s641"; "s1196"; "s1238"; "s5378" ] ());
    bechamel_kernels ();
    Printf.printf "\ndone.\n"
  end
