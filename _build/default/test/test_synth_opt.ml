(* Tests for the script.delay stand-in: node simplification, elimination
   (collapse), and the full pipeline. *)

module N = Netlist.Network

let and_cover = Logic.Cover.of_strings 2 [ "11" ]
let or_cover = Logic.Cover.of_strings 2 [ "1-"; "-1" ]

let profile =
  { Circuits.Generators.default_profile with ngates = 12; nlatch = 3; npi = 3 }

let test_simplify_nodes () =
  let net = N.create () in
  let a = N.add_input net "a" and b = N.add_input net "b" in
  (* ab + ab' + a'b = a + b: 6 literals down to 2 *)
  let g =
    N.add_logic net ~name:"g"
      (Logic.Cover.of_strings 2 [ "11"; "10"; "01" ])
      [ a; b ]
  in
  N.set_output net "o" g;
  let improved = Synth_opt.Script.simplify_nodes net in
  Alcotest.(check bool) "improved" true (improved >= 1);
  Alcotest.(check bool) "now or" true
    (Logic.Cover.equivalent (N.cover_of g) or_cover)

let test_collapse_into () =
  (* g = a AND b; h = g OR c.  Collapsing g into h gives h = ab + c. *)
  let net = N.create () in
  let a = N.add_input net "a" and b = N.add_input net "b"
  and c = N.add_input net "c" in
  let g = N.add_logic net ~name:"g" and_cover [ a; b ] in
  let h = N.add_logic net ~name:"h" or_cover [ g; c ] in
  N.set_output net "o" h;
  Synth_opt.Script.collapse_into net ~producer:g ~consumer:h;
  N.check net;
  Alcotest.(check int) "3 fanins" 3 (Array.length h.N.fanins);
  let expected = Logic.Cover.of_strings 3 [ "11-"; "--1" ] in
  (* fanin order: b, a? order depends on construction; compare by function *)
  let tt_of cover = Logic.Truthtab.of_cover cover in
  let perms_match =
    (* evaluate against eval_comb semantics instead of guessing order *)
    let eval av bv cv =
      N.eval_comb net
        (fun id ->
          let n = N.node net id in
          match n.N.name with
          | "a" -> av
          | "b" -> bv
          | "c" -> cv
          | _ -> assert false)
        h.N.id
    in
    eval true true false && eval false false true
    && (not (eval true false false))
    && not (eval false true false)
  in
  ignore (tt_of expected);
  Alcotest.(check bool) "function correct" true perms_match

let test_collapse_negative_phase () =
  (* h = NOT g where g = a AND b: collapse must complement correctly *)
  let net = N.create () in
  let a = N.add_input net "a" and b = N.add_input net "b" in
  let g = N.add_logic net ~name:"g" and_cover [ a; b ] in
  let h = N.add_logic net ~name:"h" (Logic.Cover.of_strings 1 [ "0" ]) [ g ] in
  N.set_output net "o" h;
  Synth_opt.Script.collapse_into net ~producer:g ~consumer:h;
  let eval av bv =
    N.eval_comb net
      (fun id ->
        let n = N.node net id in
        if n.N.name = "a" then av else bv)
      h.N.id
  in
  Alcotest.(check bool) "nand 11" false (eval true true);
  Alcotest.(check bool) "nand 01" true (eval false true)

let test_eliminate () =
  (* A chain of one-fanout small nodes collapses. *)
  let net = N.create () in
  let a = N.add_input net "a" and b = N.add_input net "b"
  and c = N.add_input net "c" in
  let g1 = N.add_logic net ~name:"g1" and_cover [ a; b ] in
  let g2 = N.add_logic net ~name:"g2" or_cover [ g1; c ] in
  N.set_output net "o" g2;
  let eliminated = Synth_opt.Script.eliminate net in
  Alcotest.(check bool) "eliminated g1" true (eliminated >= 1);
  N.check net

let prop_collapse_sound =
  QCheck.Test.make ~count:50 ~name:"eliminate preserves behaviour"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let net = Circuits.Generators.random_sequential ~seed profile in
      N.sweep net;
      let before = N.copy net in
      ignore (Synth_opt.Script.eliminate net);
      N.check net;
      Sim.Equiv.seq_equal_bdd before net)

let prop_simplify_sound =
  QCheck.Test.make ~count:50 ~name:"simplify_nodes preserves behaviour"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let net = Circuits.Generators.random_sequential ~seed profile in
      N.sweep net;
      let before = N.copy net in
      ignore (Synth_opt.Script.simplify_nodes net);
      Sim.Equiv.seq_equal_bdd before net)

let prop_script_delay_sound =
  QCheck.Test.make ~count:30 ~name:"script_delay output is mapped + equivalent"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let net = Circuits.Generators.random_sequential ~seed profile in
      N.sweep net;
      let mapped = Synth_opt.Script.script_delay net ~lib:Techmap.Genlib.mcnc_lite in
      N.check mapped;
      List.for_all (fun n -> n.N.binding <> None) (N.logic_nodes mapped)
      && Sim.Equiv.seq_equal_bdd net mapped)

let prop_script_delay_no_worse_depth =
  QCheck.Test.make ~count:30
    ~name:"script_delay unit-depth no worse than naive mapping"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let net = Circuits.Generators.random_sequential ~seed profile in
      N.sweep net;
      let naive =
        Techmap.Mapper.map net ~lib:Techmap.Genlib.mcnc_lite
          ~objective:Techmap.Mapper.Min_delay
      in
      let optimized =
        Synth_opt.Script.script_delay net ~lib:Techmap.Genlib.mcnc_lite
      in
      let model = Sta.mapped_delay () in
      Sta.clock_period optimized model
      <= (Sta.clock_period naive model *. 1.5) +. 1e-9)

(* --- shared-divisor extraction ------------------------------------------------ *)

let test_extract_shared_kernel () =
  (* f1 = a*c + b*c, f2 = a*d + b*d: the kernel (a + b) is shared; after
     extraction both nodes use one new (a + b) node. *)
  let net = N.create () in
  let a = N.add_input net "a" and b = N.add_input net "b" in
  let c = N.add_input net "c" and d = N.add_input net "d" in
  let f1 =
    N.add_logic net ~name:"f1"
      (Logic.Cover.of_strings 3 [ "1-1"; "-11" ])
      [ a; b; c ]
  in
  let f2 =
    N.add_logic net ~name:"f2"
      (Logic.Cover.of_strings 3 [ "1-1"; "-11" ])
      [ a; b; d ]
  in
  N.set_output net "o1" f1;
  N.set_output net "o2" f2;
  let before = N.copy net in
  let before_lits = N.lit_count net in
  let extracted = Synth_opt.Extract.extract_divisors net in
  N.check net;
  Alcotest.(check bool) "extracted something" true (extracted >= 1);
  Alcotest.(check bool) "fewer literals" true (N.lit_count net < before_lits);
  Alcotest.(check bool) "behaviour preserved" true
    (Sim.Equiv.comb_equal_exhaustive before net)

let test_extract_common_cube () =
  (* The cube a*b appears in three functions: sharing it saves 3 literals at
     a cost of 2, so extraction is profitable.  (With only two users the
     value is exactly zero and the extractor must decline - also checked.) *)
  let net = N.create () in
  let a = N.add_input net "a" and b = N.add_input net "b" in
  let c = N.add_input net "c" and d = N.add_input net "d" in
  let e = N.add_input net "e" in
  let cube3 = Logic.Cover.of_strings 3 [ "111" ] in
  let f1 = N.add_logic net ~name:"f1" cube3 [ a; b; c ] in
  let f2 = N.add_logic net ~name:"f2" cube3 [ a; b; d ] in
  N.set_output net "o1" f1;
  N.set_output net "o2" f2;
  Alcotest.(check int) "two users: zero value, declined" 0
    (Synth_opt.Extract.extract_divisors (N.copy net));
  let f3 = N.add_logic net ~name:"f3" cube3 [ a; b; e ] in
  N.set_output net "o3" f3;
  let before = N.copy net in
  let extracted = Synth_opt.Extract.extract_divisors net in
  Alcotest.(check bool) "three users: extracted" true (extracted >= 1);
  Alcotest.(check bool) "behaviour preserved" true
    (Sim.Equiv.comb_equal_exhaustive before net)

let prop_extract_sound =
  QCheck.Test.make ~count:40 ~name:"divisor extraction preserves behaviour"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let net = Circuits.Generators.random_sequential ~seed profile in
      N.sweep net;
      let before = N.copy net in
      ignore (Synth_opt.Extract.extract_divisors net);
      N.check net;
      Sim.Equiv.seq_equal_bdd before net)

let prop_extract_never_grows =
  QCheck.Test.make ~count:40 ~name:"divisor extraction never grows literals"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let net = Circuits.Generators.random_sequential ~seed profile in
      N.sweep net;
      let before = N.lit_count net in
      ignore (Synth_opt.Extract.extract_divisors net);
      N.lit_count net <= before)

(* --- SAT-based redundancy removal ------------------------------------------------ *)

let test_redundancy_network_level () =
  (* y = a*b; z = y + a*b*d.  The cube a*b*d is covered by y at the network
     level, which per-node minimization cannot see. *)
  let net = N.create () in
  let a = N.add_input net "a" and b = N.add_input net "b" in
  let d = N.add_input net "d" in
  let y = N.add_logic net ~name:"y" and_cover [ a; b ] in
  let z =
    N.add_logic net ~name:"z"
      (Logic.Cover.of_strings 4 [ "1---"; "-111" ])
      [ y; a; b; d ]
  in
  N.set_output net "o" z;
  let before = N.copy net in
  Alcotest.(check int) "per-node minimization finds nothing" 0
    (Synth_opt.Script.simplify_nodes (N.copy net));
  let removed = Synth_opt.Redundancy.remove net in
  Alcotest.(check bool) "something removed" true (removed >= 1);
  N.check net;
  Alcotest.(check bool) "behaviour preserved" true
    (Sim.Equiv.comb_equal_exhaustive before net);
  (* z should now be just a buffer of y (or y's function) *)
  Alcotest.(check bool) "z simplified" true
    (match N.node_opt net z.N.id with
     | Some z -> Logic.Cover.lit_count (N.cover_of z) <= 2
     | None -> true)

let prop_redundancy_sound =
  QCheck.Test.make ~count:25 ~name:"redundancy removal preserves behaviour"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let net = Circuits.Generators.random_sequential ~seed profile in
      N.sweep net;
      let before = N.copy net in
      ignore (Synth_opt.Redundancy.remove net);
      N.check net;
      Sim.Equiv.seq_equal_bdd before net)

let prop_redundancy_never_grows =
  QCheck.Test.make ~count:25 ~name:"redundancy removal never grows literals"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let net = Circuits.Generators.random_sequential ~seed profile in
      N.sweep net;
      let before = N.lit_count net in
      ignore (Synth_opt.Redundancy.remove net);
      N.lit_count net <= before)

(* --- structural hashing --------------------------------------------------------- *)

let test_strash_merges_twins () =
  let net = N.create () in
  let a = N.add_input net "a" and b = N.add_input net "b" in
  let g1 = N.add_logic net ~name:"g1" and_cover [ a; b ] in
  let g2 = N.add_logic net ~name:"g2" and_cover [ a; b ] in
  let h = N.add_logic net ~name:"h" or_cover [ g1; g2 ] in
  N.set_output net "o" h;
  let merged = Netlist.Strash.run net in
  Alcotest.(check int) "one merge" 1 merged;
  N.check net

let prop_strash_sound =
  QCheck.Test.make ~count:40 ~name:"structural hashing preserves behaviour"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let net = Circuits.Generators.random_sequential ~seed profile in
      N.sweep net;
      let before = N.copy net in
      ignore (Netlist.Strash.run net);
      N.check net;
      Sim.Equiv.seq_equal_bdd before net)

let prop_script_area_sound =
  QCheck.Test.make ~count:25 ~name:"script_area output is mapped + equivalent"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let net = Circuits.Generators.random_sequential ~seed profile in
      N.sweep net;
      let mapped = Synth_opt.Script.script_area net ~lib:Techmap.Genlib.mcnc_lite in
      N.check mapped;
      Sim.Equiv.seq_equal_bdd net mapped)

let () =
  Alcotest.run "synth_opt"
    [ ( "basic",
        [ Alcotest.test_case "simplify nodes" `Quick test_simplify_nodes;
          Alcotest.test_case "collapse into" `Quick test_collapse_into;
          Alcotest.test_case "collapse negative phase" `Quick
            test_collapse_negative_phase;
          Alcotest.test_case "eliminate" `Quick test_eliminate;
          Alcotest.test_case "extract shared kernel" `Quick
            test_extract_shared_kernel;
          Alcotest.test_case "extract common cube" `Quick
            test_extract_common_cube;
          Alcotest.test_case "strash merges twins" `Quick
            test_strash_merges_twins;
          Alcotest.test_case "network-level redundancy" `Quick
            test_redundancy_network_level ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [ prop_collapse_sound; prop_simplify_sound; prop_script_delay_sound;
            prop_script_delay_no_worse_depth; prop_extract_sound;
            prop_extract_never_grows; prop_strash_sound;
            prop_script_area_sound; prop_redundancy_sound;
            prop_redundancy_never_grows ] ) ]
