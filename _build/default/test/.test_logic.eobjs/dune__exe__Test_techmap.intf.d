test/test_techmap.mli:
