test/test_sta.ml: Alcotest Array Circuits List Logic Netlist QCheck QCheck_alcotest Sta
