test/test_dontcare.mli:
