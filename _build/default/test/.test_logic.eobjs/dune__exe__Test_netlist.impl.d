test/test_netlist.ml: Alcotest Array Circuits List Logic Netlist QCheck QCheck_alcotest Sim String
