test/test_bdd.ml: Alcotest Array Bdd Format List Logic QCheck QCheck_alcotest
