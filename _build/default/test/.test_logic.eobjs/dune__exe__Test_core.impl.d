test/test_core.ml: Alcotest Circuits Core List Logic Netlist Printf QCheck QCheck_alcotest Sim Sta Synth_opt Techmap
