test/test_report.ml: Alcotest Core List Report String
