test/test_techmap.ml: Alcotest Array Circuits List Logic Netlist QCheck QCheck_alcotest Sim Sta Techmap
