test/test_dontcare.ml: Alcotest Array Circuits Dontcare List Logic Netlist Printf QCheck QCheck_alcotest Retiming Sim
