test/test_sat.ml: Alcotest Array List Printf QCheck QCheck_alcotest Sat_lite String
