test/test_netlist.mli:
