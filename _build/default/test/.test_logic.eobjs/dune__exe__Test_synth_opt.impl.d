test/test_synth_opt.ml: Alcotest Array Circuits List Logic Netlist QCheck QCheck_alcotest Sim Sta Synth_opt Techmap
