test/test_retiming.mli:
