test/test_sta.mli:
