test/test_report.mli:
