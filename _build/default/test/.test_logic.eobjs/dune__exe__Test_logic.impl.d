test/test_logic.ml: Alcotest Array Format Fun List Logic QCheck QCheck_alcotest
