test/test_synth_opt.mli:
