test/test_retiming.ml: Alcotest Circuits List Logic Netlist QCheck QCheck_alcotest Random Retiming Sim Sta
