test/test_circuits.ml: Alcotest Array Circuits Core List Logic Netlist Printf QCheck QCheck_alcotest Random Retiming Sim Sta String
