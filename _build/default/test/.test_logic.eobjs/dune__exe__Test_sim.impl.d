test/test_sim.ml: Alcotest Circuits List Logic Netlist QCheck QCheck_alcotest Retiming Sim String
