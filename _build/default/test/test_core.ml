(* Tests for the paper's resynthesis algorithm and the Table I flows. *)

module N = Netlist.Network
module R = Core.Resynth

let inv_cover = Logic.Cover.of_strings 1 [ "0" ]

let feedback_profile =
  { Circuits.Generators.default_profile with
    ngates = 14;
    nlatch = 4;
    npi = 3;
    stem_bias = 0.6;
    feedback = true }

let pipeline_profile = { feedback_profile with feedback = false; stem_bias = 0.0 }

let mapped_of_seed ?(profile = feedback_profile) seed =
  let net = Circuits.Generators.random_sequential ~seed profile in
  N.sweep net;
  Synth_opt.Script.script_delay net ~lib:Techmap.Genlib.mcnc_lite

let test_fanout_free_path () =
  (* path g1 -> g2 where g1 also feeds g3: g1 must be duplicated *)
  let net = N.create () in
  let a = N.add_input net "a" and b = N.add_input net "b" in
  let g1 = N.add_logic net ~name:"g1" (Logic.Cover.of_strings 2 [ "11" ]) [ a; b ] in
  let g2 = N.add_logic net ~name:"g2" inv_cover [ g1 ] in
  let g3 = N.add_logic net ~name:"g3" inv_cover [ g1 ] in
  N.set_output net "o1" g2;
  N.set_output net "o2" g3;
  let before = N.copy net in
  let dups = R.make_path_fanout_free net [ g1; g2 ] in
  Alcotest.(check int) "one duplication" 1 dups;
  N.check net;
  Alcotest.(check int) "g1 single fanout now" 1 (List.length g1.N.fanouts);
  Alcotest.(check bool) "behaviour preserved" true
    (Sim.Equiv.seq_equal_bdd before net)

let test_not_applicable_without_stems () =
  (* A pipeline without multi-fanout registers: the paper's technique must
     decline (Section IV). *)
  let mapped = mapped_of_seed ~profile:pipeline_profile 3 in
  let outcome = R.resynthesize mapped in
  Alcotest.(check bool) "not applied" false outcome.R.applied;
  Alcotest.(check bool) "reason mentions registers or gates" true
    (outcome.R.note <> "")

let test_applied_shape () =
  (* find a seed where the technique applies, and check the bookkeeping *)
  let rec hunt seed =
    if seed > 80 then Alcotest.fail "no applicable seed found"
    else begin
      let mapped = mapped_of_seed seed in
      let outcome = R.resynthesize mapped in
      if outcome.R.applied then begin
        Alcotest.(check bool) "splits counted" true (outcome.R.stem_splits > 0);
        Alcotest.(check bool) "classes recorded" true
          (outcome.R.equivalence_classes > 0);
        Alcotest.(check bool) "engine ran" true (outcome.R.forward_moves > 0)
      end
      else hunt (seed + 1)
    end
  in
  hunt 0

let prop_resynthesis_sound =
  QCheck.Test.make ~count:25 ~name:"resynthesis preserves behaviour"
    QCheck.(int_range 0 2_000)
    (fun seed ->
      let mapped = mapped_of_seed seed in
      let outcome = R.resynthesize mapped in
      N.check outcome.R.network;
      (not outcome.R.applied) || Sim.Equiv.seq_equal mapped outcome.R.network)

let prop_resynthesis_guard =
  QCheck.Test.make ~count:25 ~name:"guard never lets the period regress"
    QCheck.(int_range 0 2_000)
    (fun seed ->
      let mapped = mapped_of_seed seed in
      let model = Sta.mapped_delay () in
      let before = Sta.clock_period mapped model in
      let outcome = R.resynthesize mapped in
      Sta.clock_period outcome.R.network model <= before +. 1e-9)

let prop_substitution_mode_sound =
  QCheck.Test.make ~count:20 ~name:"substitution dc-mode is sound"
    QCheck.(int_range 0 2_000)
    (fun seed ->
      let mapped = mapped_of_seed seed in
      let options = { R.default_options with R.dc_mode = R.Substitution } in
      let outcome = R.resynthesize ~options mapped in
      (not outcome.R.applied) || Sim.Equiv.seq_equal mapped outcome.R.network)

let prop_unguarded_still_sound =
  QCheck.Test.make ~count:20 ~name:"unguarded resynthesis is still equivalent"
    QCheck.(int_range 0 2_000)
    (fun seed ->
      let mapped = mapped_of_seed seed in
      let options = { R.default_options with R.guard_regression = false } in
      let outcome = R.resynthesize ~options mapped in
      (not outcome.R.applied) || Sim.Equiv.seq_equal mapped outcome.R.network)

(* --- flows --------------------------------------------------------------------- *)

let test_flow_row () =
  let net = Circuits.Generators.random_sequential ~seed:11 feedback_profile in
  N.sweep net;
  let row = Core.Flow.run_all ~name:"t11" net in
  Alcotest.(check bool) "base regs sane" true (row.Core.Flow.base.Core.Flow.regs >= 0);
  Alcotest.(check bool) "base clk positive" true
    (row.Core.Flow.base.Core.Flow.clk > 0.0);
  Alcotest.(check bool) "retimed verified" true row.Core.Flow.retimed.Core.Flow.verified;
  Alcotest.(check bool) "resynth verified" true
    row.Core.Flow.resynthesized.Core.Flow.verified

let prop_flows_verified =
  QCheck.Test.make ~count:15 ~name:"all flows verify on random circuits"
    QCheck.(int_range 0 1_000)
    (fun seed ->
      let net = Circuits.Generators.random_sequential ~seed feedback_profile in
      N.sweep net;
      let row = Core.Flow.run_all ~name:(Printf.sprintf "s%d" seed) net in
      row.Core.Flow.retimed.Core.Flow.verified
      && row.Core.Flow.resynthesized.Core.Flow.verified)

let () =
  Alcotest.run "core"
    [ ( "resynth",
        [ Alcotest.test_case "fanout-free path" `Quick test_fanout_free_path;
          Alcotest.test_case "declines without stems" `Quick
            test_not_applicable_without_stems;
          Alcotest.test_case "bookkeeping when applied" `Quick
            test_applied_shape ] );
      ( "flows", [ Alcotest.test_case "row shape" `Quick test_flow_row ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [ prop_resynthesis_sound; prop_resynthesis_guard;
            prop_substitution_mode_sound; prop_unguarded_still_sound;
            prop_flows_verified ] ) ]
