(* Benchmark-circuit tests: the Section III paper example reproduces the
   published delay sequence; FSMs are complete and deterministic; s27 matches
   its published behaviour; the Table I suite builds and validates. *)

module N = Netlist.Network

let test_paper_example_original_delay () =
  let net = Circuits.Paper_example.circuit () in
  Alcotest.(check (float 1e-9)) "3 gate delays"
    Circuits.Paper_example.expected_original_delay
    (Sta.clock_period net Sta.unit_delay)

let test_paper_example_retimed_delay () =
  let net = Circuits.Paper_example.circuit () in
  match Retiming.Minperiod.retime_min_period net ~model:Sta.unit_delay with
  | Ok (retimed, period) ->
    Alcotest.(check (float 1e-9)) "2 gate delays"
      Circuits.Paper_example.expected_retimed_delay period;
    Alcotest.(check bool) "equivalent" true (Sim.Equiv.seq_equal_bdd net retimed)
  | Error f -> Alcotest.fail (Retiming.Minperiod.failure_message f)

let test_paper_example_resynthesized_delay () =
  let net = Circuits.Paper_example.circuit () in
  let options =
    { Core.Resynth.default_options with
      Core.Resynth.model = Sta.unit_delay;
      remap = false }
  in
  let outcome = Core.Resynth.resynthesize ~options net in
  Alcotest.(check bool) "applied" true outcome.Core.Resynth.applied;
  Alcotest.(check bool) "dc simplification fired" true
    (outcome.Core.Resynth.simplified_cones >= 1);
  Alcotest.(check (float 1e-9)) "1 gate delay"
    Circuits.Paper_example.expected_resynthesized_delay
    (Sta.clock_period outcome.Core.Resynth.network Sta.unit_delay);
  Alcotest.(check bool) "equivalent" true
    (Sim.Equiv.seq_equal_bdd net outcome.Core.Resynth.network);
  Alcotest.(check bool) "no more registers than retiming would use" true
    (N.num_latches outcome.Core.Resynth.network <= 4)

let test_paper_example_substitution_mode () =
  let net = Circuits.Paper_example.circuit () in
  let options =
    { Core.Resynth.default_options with
      Core.Resynth.model = Sta.unit_delay;
      remap = false;
      dc_mode = Core.Resynth.Substitution }
  in
  let outcome = Core.Resynth.resynthesize ~options net in
  Alcotest.(check bool) "applied" true outcome.Core.Resynth.applied;
  Alcotest.(check (float 1e-9)) "1 gate delay" 1.0
    (Sta.clock_period outcome.Core.Resynth.network Sta.unit_delay);
  Alcotest.(check bool) "equivalent" true
    (Sim.Equiv.seq_equal_bdd net outcome.Core.Resynth.network)

(* --- FSM generator ------------------------------------------------------------ *)

let prop_fsm_complete =
  QCheck.Test.make ~count:30 ~name:"generated FSMs are deterministic+complete"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let m =
        Circuits.Fsm.random ~seed ~name:"m" ~nstates:7 ~ninputs:3 ~noutputs:2 ()
      in
      Circuits.Fsm.check_complete m)

let test_fsm_state_bits () =
  let m name nstates =
    Circuits.Fsm.random ~seed:1 ~name ~nstates ~ninputs:2 ~noutputs:1 ()
  in
  Alcotest.(check int) "6 states -> 3 bits" 3
    (Circuits.Fsm.state_bits (m "a" 6));
  Alcotest.(check int) "2 states -> 1 bit" 1 (Circuits.Fsm.state_bits (m "b" 2));
  Alcotest.(check int) "48 states -> 6 bits" 6
    (Circuits.Fsm.state_bits (m "c" 48))

let prop_fsm_network_matches_table =
  QCheck.Test.make ~count:15 ~name:"FSM network simulates the transition table"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let m =
        Circuits.Fsm.random ~seed ~name:"m" ~nstates:5 ~ninputs:2 ~noutputs:2 ()
      in
      let net = Circuits.Fsm.to_network m in
      (* walk 30 random steps, tracking the abstract state alongside *)
      let rng = Random.State.make [| seed + 7 |] in
      let state = ref (Sim.Simulate.binary_initial_state net) in
      let abstract = ref 0 in
      let ok = ref true in
      for _ = 1 to 30 do
        let point =
          Array.init m.Circuits.Fsm.ninputs (fun _ -> Random.State.bool rng)
        in
        let pi name =
          (* input names are in<i> *)
          let i = int_of_string (String.sub name 2 (String.length name - 2)) in
          point.(i)
        in
        let t =
          List.find
            (fun t ->
              t.Circuits.Fsm.from_state = !abstract
              && Logic.Cube.eval t.Circuits.Fsm.input_cube point)
            m.Circuits.Fsm.transitions
        in
        let state', outs = Sim.Simulate.step net ~pi ~state:!state in
        List.iteri
          (fun o expected ->
            match List.assoc_opt (Printf.sprintf "out%d" o) outs with
            | Some got -> if got <> expected then ok := false
            | None -> ok := false)
          (Array.to_list t.Circuits.Fsm.outputs);
        state := state';
        abstract := t.Circuits.Fsm.to_state
      done;
      !ok)

(* --- KISS2 ----------------------------------------------------------------------- *)

let sample_kiss =
  {|# a 3-state controller
.i 2
.o 1
.p 6
.s 3
.r idle
0- idle idle 0
1- idle work 0
-0 work work 1
-1 work done 1
-- done idle 0
|}

let test_kiss_parse () =
  let k = Circuits.Kiss.parse_string sample_kiss in
  Alcotest.(check int) "inputs" 2 k.Circuits.Kiss.ninputs;
  Alcotest.(check int) "outputs" 1 k.Circuits.Kiss.noutputs;
  Alcotest.(check (list string)) "states" [ "idle"; "work"; "done" ]
    k.Circuits.Kiss.states;
  Alcotest.(check string) "reset" "idle" k.Circuits.Kiss.reset;
  Alcotest.(check int) "terms" 5 (List.length k.Circuits.Kiss.terms)

let test_kiss_roundtrip () =
  let k = Circuits.Kiss.parse_string sample_kiss in
  let k2 = Circuits.Kiss.parse_string (Circuits.Kiss.to_string k) in
  Alcotest.(check int) "same terms" (List.length k.Circuits.Kiss.terms)
    (List.length k2.Circuits.Kiss.terms);
  Alcotest.(check string) "same reset" k.Circuits.Kiss.reset k2.Circuits.Kiss.reset

let test_kiss_to_network () =
  let k = Circuits.Kiss.parse_string sample_kiss in
  let net = Circuits.Kiss.to_network ~name:"ctl" k in
  N.check net;
  (* walk the machine: idle --(1-)--> work --(-1)--> done --> idle *)
  let state = Sim.Simulate.binary_initial_state net in
  let pi_of bits name =
    let i = int_of_string (String.sub name 2 (String.length name - 2)) in
    List.nth bits i
  in
  let s1, o1 = Sim.Simulate.step net ~pi:(pi_of [ true; false ]) ~state in
  Alcotest.(check bool) "idle emits 0" false (List.assoc "out0" o1);
  let s2, o2 = Sim.Simulate.step net ~pi:(pi_of [ false; true ]) ~state:s1 in
  Alcotest.(check bool) "work emits 1" true (List.assoc "out0" o2);
  let _, o3 = Sim.Simulate.step net ~pi:(pi_of [ false; false ]) ~state:s2 in
  Alcotest.(check bool) "done emits 0" false (List.assoc "out0" o3)

let prop_kiss_fsm_roundtrip =
  QCheck.Test.make ~count:25 ~name:"fsm -> kiss -> fsm preserves the network"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let m =
        Circuits.Fsm.random ~seed ~name:"m" ~nstates:6 ~ninputs:3 ~noutputs:2 ()
      in
      let k = Circuits.Kiss.of_fsm m in
      let back = Circuits.Kiss.to_fsm ~name:"m" k in
      let a = Circuits.Fsm.to_network m and b = Circuits.Fsm.to_network back in
      Sim.Equiv.seq_equal_bdd a b)

let test_kiss_errors () =
  Alcotest.(check bool) "missing headers rejected" true
    (try ignore (Circuits.Kiss.parse_string "0- a b 1\n"); false
     with Failure _ -> true);
  Alcotest.(check bool) "bad width rejected" true
    (try
       ignore (Circuits.Kiss.parse_string ".i 2\n.o 1\n0 a b 1\n");
       false
     with Failure _ -> true)

(* --- s27 ------------------------------------------------------------------------ *)

let test_s27_shape () =
  let net = Circuits.S27.circuit () in
  N.check net;
  Alcotest.(check int) "4 inputs" 4 (List.length (N.inputs net));
  Alcotest.(check int) "1 output" 1 (List.length (N.outputs net));
  Alcotest.(check int) "3 flip-flops" 3 (N.num_latches net);
  Alcotest.(check int) "10 gates" 10 (N.num_logic net)

let test_s27_behaviour () =
  (* First cycles with all inputs 0 from the all-zero state:
     G14=1, G12=NOR(0,0)=1, G8=AND(1,0)=0, G15=1, G16=0, G9=NAND(0,1)=1,
     G11=NOR(0,1)=0, G17=NOT(0)=1. *)
  let net = Circuits.S27.circuit () in
  let state = Sim.Simulate.binary_initial_state net in
  let _, outs = Sim.Simulate.step net ~pi:(fun _ -> false) ~state in
  Alcotest.(check bool) "G17 = 1" true (List.assoc "G17" outs)

let test_s27_output_depends_on_inputs () =
  (* With G3=1 from the zero state: G16=1, G12=1 so G15=1, hence G9=0 and
     G11=NOR(0,0)=1, making G17=0 — whereas all-zero inputs give G17=1. *)
  let net = Circuits.S27.circuit () in
  let state = Sim.Simulate.binary_initial_state net in
  let _, outs0 = Sim.Simulate.step net ~pi:(fun _ -> false) ~state in
  let _, outs1 = Sim.Simulate.step net ~pi:(fun n -> n = "G3") ~state in
  Alcotest.(check bool) "G17 with G3=0" true (List.assoc "G17" outs0);
  Alcotest.(check bool) "G17 with G3=1" false (List.assoc "G17" outs1)

(* --- suite ----------------------------------------------------------------------- *)

let test_suite_entries () =
  Alcotest.(check int) "21 rows" 21 (List.length Circuits.Suite.entries);
  let names = List.map (fun e -> e.Circuits.Suite.name) Circuits.Suite.entries in
  Alcotest.(check bool) "unique names" true
    (List.length (List.sort_uniq compare names) = List.length names)

let test_suite_builds () =
  (* build and validate every entry's network (cheap; flows are exercised by
     the benchmark harness) *)
  List.iter
    (fun e ->
      let net = e.Circuits.Suite.build () in
      N.check net;
      if N.num_latches net = 0 then
        Alcotest.failf "%s has no registers" e.Circuits.Suite.name)
    Circuits.Suite.entries

let test_suite_find () =
  let e = Circuits.Suite.find "s27" in
  Alcotest.(check string) "found" "s27" e.Circuits.Suite.name;
  Alcotest.check_raises "unknown"
    (Invalid_argument "Suite.find: unknown benchmark nope") (fun () ->
      ignore (Circuits.Suite.find "nope"))

let test_suite_deterministic () =
  let e = Circuits.Suite.find "s298" in
  let a = e.Circuits.Suite.build () and b = e.Circuits.Suite.build () in
  Alcotest.(check bool) "same circuit each build" true
    (Sim.Equiv.seq_equal_random ~seed:5 ~vectors:8 ~length:64 a b)

let () =
  Alcotest.run "circuits"
    [ ( "paper-example",
        [ Alcotest.test_case "original delay 3" `Quick
            test_paper_example_original_delay;
          Alcotest.test_case "retimed delay 2" `Quick
            test_paper_example_retimed_delay;
          Alcotest.test_case "resynthesized delay 1" `Quick
            test_paper_example_resynthesized_delay;
          Alcotest.test_case "substitution mode" `Quick
            test_paper_example_substitution_mode ] );
      ( "fsm",
        [ Alcotest.test_case "state bits" `Quick test_fsm_state_bits ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_fsm_complete; prop_fsm_network_matches_table ] );
      ( "kiss",
        [ Alcotest.test_case "parse" `Quick test_kiss_parse;
          Alcotest.test_case "roundtrip" `Quick test_kiss_roundtrip;
          Alcotest.test_case "to network" `Quick test_kiss_to_network;
          Alcotest.test_case "errors" `Quick test_kiss_errors;
          QCheck_alcotest.to_alcotest prop_kiss_fsm_roundtrip ] );
      ( "s27",
        [ Alcotest.test_case "shape" `Quick test_s27_shape;
          Alcotest.test_case "first cycle" `Quick test_s27_behaviour;
          Alcotest.test_case "input sensitivity" `Quick
            test_s27_output_depends_on_inputs ] );
      ( "suite",
        [ Alcotest.test_case "entries" `Quick test_suite_entries;
          Alcotest.test_case "builds" `Quick test_suite_builds;
          Alcotest.test_case "find" `Quick test_suite_find;
          Alcotest.test_case "deterministic" `Quick test_suite_deterministic ]
      ) ]
