(* Don't-care machinery tests: equivalence classes, cone collapsing,
   reachability-based external DCs. *)

module N = Netlist.Network
module C = Dontcare.Classes

let and_cover = Logic.Cover.of_strings 2 [ "11" ]
let xor_cover = Logic.Cover.of_strings 2 [ "10"; "01" ]
let inv_cover = Logic.Cover.of_strings 1 [ "0" ]

let fresh_latches net n =
  let a = N.add_input net "a" in
  List.init n (fun i -> N.add_latch net ~name:(Printf.sprintf "l%d" i) N.I0 a)

let test_classes_basic () =
  let net = N.create () in
  match fresh_latches net 4 with
  | [ l0; l1; l2; l3 ] ->
    let t = C.create () in
    C.declare_equal t l0 l1;
    C.declare_equal t l2 l3;
    Alcotest.(check bool) "0~1" true (C.are_equal t l0 l1);
    Alcotest.(check bool) "0!~2" false (C.are_equal t l0 l2);
    Alcotest.(check bool) "self" true (C.are_equal t l0 l0);
    Alcotest.(check int) "two classes" 2 (List.length (C.classes t));
    C.declare_equal t l1 l2;
    Alcotest.(check int) "merged" 1 (List.length (C.classes t));
    Alcotest.(check bool) "0~3 transitively" true (C.are_equal t l0 l3)
  | _ -> assert false

let test_dc_cover () =
  let net = N.create () in
  match fresh_latches net 3 with
  | [ l0; l1; l2 ] ->
    let t = C.create () in
    C.declare_class t [ l0; l1 ];
    ignore l2;
    (* variables: l0 -> 0, l1 -> 1, l2 -> 2 *)
    let var_of_latch id =
      if id = l0.N.id then Some 0
      else if id = l1.N.id then Some 1
      else if id = l2.N.id then Some 2
      else None
    in
    let dc = C.dc_cover t ~nvars:3 ~var_of_latch in
    let expected = Logic.Cover.of_strings 3 [ "10-"; "01-" ] in
    Alcotest.(check bool) "xor shape" true (Logic.Cover.equivalent dc expected)
  | _ -> assert false

let test_dc_cover_partial_leaves () =
  let net = N.create () in
  match fresh_latches net 2 with
  | [ l0; l1 ] ->
    let t = C.create () in
    C.declare_class t [ l0; l1 ];
    (* only l0 appears in the cone: no usable DC *)
    let var_of_latch id = if id = l0.N.id then Some 0 else None in
    let dc = C.dc_cover t ~nvars:1 ~var_of_latch in
    Alcotest.(check bool) "empty" true (Logic.Cover.is_empty dc)
  | _ -> assert false

let test_drop_dead () =
  let net = N.create () in
  match fresh_latches net 3 with
  | [ l0; l1; l2 ] ->
    let t = C.create () in
    C.declare_class t [ l0; l1; l2 ];
    C.drop_dead t ~alive:(fun id -> id <> l1.N.id);
    Alcotest.(check bool) "survivors equal" true (C.are_equal t l0 l2);
    Alcotest.(check int) "one class" 1 (List.length (C.classes t))
  | _ -> assert false

(* --- cone collapse ------------------------------------------------------------ *)

let test_collapse_simple () =
  (* root = (a AND r) XOR b, collapsed over leaves {a, r, b} *)
  let net = N.create () in
  let a = N.add_input net "a" and b = N.add_input net "b" in
  let r = N.add_latch net ~name:"r" N.I0 a in
  let g1 = N.add_logic net ~name:"g1" and_cover [ a; r ] in
  let g2 = N.add_logic net ~name:"g2" xor_cover [ g1; b ] in
  N.set_output net "o" g2;
  let collapsed = Dontcare.Cone.collapse net g2 in
  Alcotest.(check int) "3 leaves" 3 (Array.length collapsed.Dontcare.Cone.leaves);
  (* check semantics against direct evaluation *)
  let leaves = collapsed.Dontcare.Cone.leaves in
  let ok = ref true in
  for bits = 0 to 7 do
    let value_of_leaf id =
      let idx = ref (-1) in
      Array.iteri (fun i l -> if l.N.id = id then idx := i) leaves;
      bits land (1 lsl !idx) <> 0
    in
    let direct = N.eval_comb net value_of_leaf g2.N.id in
    let point = Array.init 3 (fun i -> bits land (1 lsl i) <> 0) in
    let via_cover = Logic.Cover.eval collapsed.Dontcare.Cone.cover point in
    if direct <> via_cover then ok := false
  done;
  Alcotest.(check bool) "collapse preserves function" true !ok

let test_collapse_too_wide () =
  let net = N.create () in
  let inputs = List.init 6 (fun i -> N.add_input net (Printf.sprintf "i%d" i)) in
  let rec build = function
    | [ x ] -> x
    | x :: y :: rest -> build (N.add_logic net and_cover [ x; y ] :: rest)
    | [] -> assert false
  in
  let root = build inputs in
  N.set_output net "o" root;
  match Dontcare.Cone.collapse ~max_leaves:4 net root with
  | exception Dontcare.Cone.Cone_too_wide 6 -> ()
  | exception Dontcare.Cone.Cone_too_wide n ->
    Alcotest.failf "wrong width %d" n
  | _ -> Alcotest.fail "expected Cone_too_wide"

let prop_collapse_rebuild_roundtrip =
  QCheck.Test.make ~count:40 ~name:"collapse+rebuild preserves behaviour"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let net =
        Circuits.Generators.random_sequential ~seed
          { Circuits.Generators.default_profile with
            ngates = 10;
            nlatch = 3;
            npi = 3 }
      in
      N.sweep net;
      let before = N.copy net in
      (* rebuild every latch-data cone with its own collapsed cover; rebuilds
         sweep the network, so re-check each latch is still alive *)
      List.iter
        (fun l ->
          match N.node_opt net l.N.id with
          | None -> ()
          | Some l when not (N.is_latch l) -> ()
          | Some l ->
          let data = N.latch_data net l in
          if N.is_logic data then
            match Dontcare.Cone.collapse ~max_leaves:12 net data with
            | exception Dontcare.Cone.Cone_too_wide _ -> ()
            | collapsed ->
              Dontcare.Cone.rebuild net collapsed
                collapsed.Dontcare.Cone.cover)
        (N.latches net);
      N.check net;
      Sim.Equiv.seq_equal_bdd before net)

(* --- reachability -------------------------------------------------------------- *)

(* 2-bit counter with synchronous reset: all 4 states reachable *)
let counter2 () =
  let net = N.create ~name:"counter2" () in
  let rst = N.add_input net "rst" in
  let b0 = N.add_latch net ~name:"b0" N.I0 rst in
  let b1 = N.add_latch net ~name:"b1" N.I0 rst in
  let n0 =
    N.add_logic net ~name:"n0" (Logic.Cover.of_strings 2 [ "00" ]) [ rst; b0 ]
  in
  let x = N.add_logic net ~name:"x" xor_cover [ b1; b0 ] in
  let n1 =
    N.add_logic net ~name:"n1" (Logic.Cover.of_strings 2 [ "01" ]) [ rst; x ]
  in
  N.replace_fanin net b0 ~old_fanin:rst ~new_fanin:n0;
  N.replace_fanin net b1 ~old_fanin:rst ~new_fanin:n1;
  N.set_output net "c0" b0;
  N.set_output net "c1" b1;
  net

(* one-hot ring counter over 3 latches: only 3 of 8 states reachable *)
let ring3 () =
  let net = N.create ~name:"ring3" () in
  let a = N.add_input net "en" in
  ignore a;
  let l0 = N.add_latch net ~name:"h0" N.I1 a in
  let l1 = N.add_latch net ~name:"h1" N.I0 a in
  let l2 = N.add_latch net ~name:"h2" N.I0 a in
  let buf l = N.add_logic net (Logic.Cover.of_strings 1 [ "1" ]) [ l ] in
  N.replace_fanin net l1 ~old_fanin:a ~new_fanin:(buf l0);
  N.replace_fanin net l2 ~old_fanin:a ~new_fanin:(buf l1);
  N.replace_fanin net l0 ~old_fanin:a ~new_fanin:(buf l2);
  N.set_output net "o" l2;
  net

let test_reach_counter () =
  let r = Dontcare.Reach.unreachable_states (counter2 ()) in
  Alcotest.(check (float 0.01)) "4 reachable" 4.0 r.Dontcare.Reach.num_reachable;
  Alcotest.(check bool) "no unreachable" true
    (Logic.Cover.is_empty
       (Logic.Minimize.minimize r.Dontcare.Reach.unreachable))

let test_reach_ring () =
  let r = Dontcare.Reach.unreachable_states (ring3 ()) in
  Alcotest.(check (float 0.01)) "3 reachable" 3.0 r.Dontcare.Reach.num_reachable;
  (* state 000 is unreachable *)
  Alcotest.(check bool) "000 unreachable" true
    (Logic.Cover.eval r.Dontcare.Reach.unreachable [| false; false; false |]);
  Alcotest.(check bool) "100 reachable" true
    (Logic.Cover.eval r.Dontcare.Reach.reachable [| true; false; false |])

let test_reach_too_large () =
  let net = counter2 () in
  match Dontcare.Reach.unreachable_states ~max_latches:1 net with
  | exception Dontcare.Reach.Too_large _ -> ()
  | _ -> Alcotest.fail "expected Too_large"

let test_simplify_with_unreachable_sound () =
  let net = ring3 () in
  let before = N.copy net in
  ignore (Dontcare.Reach.simplify_with_unreachable net);
  N.check net;
  Alcotest.(check bool) "behaviour preserved" true
    (Sim.Equiv.seq_equal_bdd before net)

let prop_simplify_unreachable_sound =
  QCheck.Test.make ~count:30 ~name:"unreachable-DC simplification is sound"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let net =
        Circuits.Generators.random_sequential ~seed
          { Circuits.Generators.default_profile with
            ngates = 12;
            nlatch = 4;
            npi = 2 }
      in
      N.sweep net;
      let before = N.copy net in
      ignore (Dontcare.Reach.simplify_with_unreachable net);
      N.check net;
      Sim.Equiv.seq_equal_bdd before net)

(* The paper's core claim in miniature: splitting a register across its
   fanout stem makes the "copies disagree" states unreachable. *)
let test_split_states_unreachable () =
  let net = N.create () in
  let a = N.add_input net "a" in
  let r = N.add_latch net ~name:"r" N.I0 a in
  let g1 = N.add_logic net ~name:"g1" inv_cover [ r ] in
  let g2 = N.add_logic net ~name:"g2" inv_cover [ r ] in
  N.set_output net "o1" g1;
  N.set_output net "o2" g2;
  let copies = Retiming.Moves.split_stem net r in
  Alcotest.(check int) "two copies" 2 (List.length copies);
  let reach = Dontcare.Reach.unreachable_states net in
  (* both latches share data and init: states 01 and 10 are unreachable *)
  Alcotest.(check (float 0.01)) "2 reachable of 4" 2.0
    reach.Dontcare.Reach.num_reachable;
  Alcotest.(check bool) "01 unreachable" true
    (Logic.Cover.eval reach.Dontcare.Reach.unreachable [| false; true |]);
  Alcotest.(check bool) "10 unreachable" true
    (Logic.Cover.eval reach.Dontcare.Reach.unreachable [| true; false |])

let () =
  Alcotest.run "dontcare"
    [ ( "classes",
        [ Alcotest.test_case "union-find" `Quick test_classes_basic;
          Alcotest.test_case "dc cover" `Quick test_dc_cover;
          Alcotest.test_case "partial leaves" `Quick
            test_dc_cover_partial_leaves;
          Alcotest.test_case "drop dead" `Quick test_drop_dead ] );
      ( "cone",
        [ Alcotest.test_case "collapse simple" `Quick test_collapse_simple;
          Alcotest.test_case "too wide" `Quick test_collapse_too_wide ] );
      ( "reach",
        [ Alcotest.test_case "counter fully reachable" `Quick
            test_reach_counter;
          Alcotest.test_case "ring partially reachable" `Quick test_reach_ring;
          Alcotest.test_case "effort cap" `Quick test_reach_too_large;
          Alcotest.test_case "simplification sound" `Quick
            test_simplify_with_unreachable_sound;
          Alcotest.test_case "split states unreachable" `Quick
            test_split_states_unreachable ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [ prop_collapse_rebuild_roundtrip; prop_simplify_unreachable_sound ]
      ) ]
