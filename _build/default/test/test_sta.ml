(* Static timing analysis tests on hand-built circuits. *)

module N = Netlist.Network

let and_cover = Logic.Cover.of_strings 2 [ "11" ]
let inv_cover = Logic.Cover.of_strings 1 [ "0" ]

(* chain: in -> g1 -> g2 -> g3 -> out, plus a short side path *)
let chain_circuit () =
  let net = N.create ~name:"chain" () in
  let a = N.add_input net "a" and b = N.add_input net "b" in
  let g1 = N.add_logic net ~name:"g1" and_cover [ a; b ] in
  let g2 = N.add_logic net ~name:"g2" inv_cover [ g1 ] in
  let g3 = N.add_logic net ~name:"g3" and_cover [ g2; b ] in
  let side = N.add_logic net ~name:"side" inv_cover [ a ] in
  N.set_output net "o" g3;
  N.set_output net "s" side;
  net

let test_unit_delay_period () =
  let net = chain_circuit () in
  Alcotest.(check (float 1e-9)) "period 3" 3.0
    (Sta.clock_period net Sta.unit_delay)

let test_critical_path () =
  let net = chain_circuit () in
  let path = Sta.critical_path net Sta.unit_delay in
  Alcotest.(check (list string)) "path g1 g2 g3"
    [ "g1"; "g2"; "g3" ]
    (List.map (fun n -> n.N.name) path)

let test_sequential_period () =
  (* r -> g1 -> g2 -> r (latch data): period = 2 *)
  let net = N.create ~name:"seq" () in
  let a = N.add_input net "a" in
  let r = N.add_latch net ~name:"r" N.I0 a in
  let g1 = N.add_logic net ~name:"g1" and_cover [ r; a ] in
  let g2 = N.add_logic net ~name:"g2" inv_cover [ g1 ] in
  N.replace_fanin net r ~old_fanin:a ~new_fanin:g2;
  N.set_output net "o" r;
  Alcotest.(check (float 1e-9)) "period 2" 2.0
    (Sta.clock_period net Sta.unit_delay);
  let path = Sta.critical_path net Sta.unit_delay in
  Alcotest.(check (list string)) "path" [ "g1"; "g2" ]
    (List.map (fun n -> n.N.name) path)

let test_mapped_delay () =
  let net = chain_circuit () in
  let g1 = match N.find_by_name net "g1" with Some n -> n | None -> assert false in
  N.set_binding g1
    (Some { N.gate_name = "and2"; gate_area = 3.0; gate_delay = 2.5 });
  let model = Sta.mapped_delay ~default:1.0 () in
  Alcotest.(check (float 1e-9)) "period with binding" 4.5
    (Sta.clock_period net model)

let test_slack () =
  let net = chain_circuit () in
  let slacks = Sta.slack net Sta.unit_delay ~required:3.0 in
  let g3 = match N.find_by_name net "g3" with Some n -> n | None -> assert false in
  let side = match N.find_by_name net "side" with Some n -> n | None -> assert false in
  Alcotest.(check (float 1e-9)) "critical slack 0" 0.0 slacks.(g3.N.id);
  Alcotest.(check (float 1e-9)) "side slack 2" 2.0 slacks.(side.N.id)

let test_no_logic () =
  let net = N.create () in
  let a = N.add_input net "a" in
  N.set_output net "o" a;
  Alcotest.(check (float 1e-9)) "period 0" 0.0
    (Sta.clock_period net Sta.unit_delay);
  Alcotest.(check (list string)) "no path" []
    (List.map (fun n -> n.N.name) (Sta.critical_path net Sta.unit_delay))

let prop_critical_path_matches_period =
  QCheck.Test.make ~count:50 ~name:"critical path length equals unit period"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let net =
        Circuits.Generators.random_sequential ~seed
          { Circuits.Generators.default_profile with ngates = 25; nlatch = 4 }
      in
      let period = Sta.clock_period net Sta.unit_delay in
      let path = Sta.critical_path net Sta.unit_delay in
      abs_float (float_of_int (List.length path) -. period) < 1e-9)

let prop_path_is_connected =
  QCheck.Test.make ~count:50 ~name:"critical path nodes form a chain"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let net =
        Circuits.Generators.random_sequential ~seed
          { Circuits.Generators.default_profile with ngates = 25; nlatch = 4 }
      in
      let path = Sta.critical_path net Sta.unit_delay in
      let rec chained = function
        | [] | [ _ ] -> true
        | a :: b :: rest ->
          Array.exists (fun f -> f = a.N.id) b.N.fanins && chained (b :: rest)
      in
      chained path)

let () =
  Alcotest.run "sta"
    [ ( "basic",
        [ Alcotest.test_case "unit period" `Quick test_unit_delay_period;
          Alcotest.test_case "critical path" `Quick test_critical_path;
          Alcotest.test_case "sequential period" `Quick test_sequential_period;
          Alcotest.test_case "mapped delay" `Quick test_mapped_delay;
          Alcotest.test_case "slack" `Quick test_slack;
          Alcotest.test_case "no logic" `Quick test_no_logic ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [ prop_critical_path_matches_period; prop_path_is_connected ] ) ]
