(* SAT solver tests: hand instances, pigeonhole unsatisfiability, random
   3-CNF cross-checked against brute-force enumeration, incremental use with
   assumptions. *)

let lit v phase = if phase then v + 1 else -(v + 1)

let brute_force nvars clauses =
  let point = Array.make nvars false in
  let clause_sat c =
    List.exists
      (fun d ->
        let v = abs d - 1 in
        if d > 0 then point.(v) else not point.(v))
      c
  in
  let rec enum v = (v = nvars && List.for_all clause_sat clauses)
                   || (v < nvars
                       && (point.(v) <- false;
                           enum (v + 1)
                           ||
                           (point.(v) <- true;
                            enum (v + 1))))
  in
  enum 0

let build nvars clauses =
  let s = Sat_lite.create () in
  for _ = 1 to nvars do
    ignore (Sat_lite.new_var s)
  done;
  List.iter (Sat_lite.add_clause s) clauses;
  s

let model_satisfies model clauses =
  List.for_all
    (fun c ->
      List.exists
        (fun d ->
          let v = abs d - 1 in
          if d > 0 then model.(v) else not model.(v))
        c)
    clauses

let test_trivial_sat () =
  let clauses = [ [ lit 0 true; lit 1 true ]; [ lit 0 false ] ] in
  let s = build 2 clauses in
  (match Sat_lite.solve s with
   | Sat m ->
     Alcotest.(check bool) "model valid" true (model_satisfies m clauses);
     Alcotest.(check bool) "x0 false" false m.(0);
     Alcotest.(check bool) "x1 true" true m.(1)
   | Unsat | Unknown -> Alcotest.fail "expected sat")

let test_trivial_unsat () =
  let s = build 1 [ [ lit 0 true ]; [ lit 0 false ] ] in
  (match Sat_lite.solve s with
   | Unsat -> ()
   | Sat _ | Unknown -> Alcotest.fail "expected unsat")

let test_empty_clause () =
  let s = build 1 [ [] ] in
  match Sat_lite.solve s with
  | Unsat -> ()
  | Sat _ | Unknown -> Alcotest.fail "expected unsat"

let test_xor_chain () =
  (* x0 xor x1 xor x2 = 1 as CNF; satisfiable. *)
  let clauses =
    [ [ lit 0 true; lit 1 true; lit 2 true ];
      [ lit 0 true; lit 1 false; lit 2 false ];
      [ lit 0 false; lit 1 true; lit 2 false ];
      [ lit 0 false; lit 1 false; lit 2 true ] ]
  in
  let s = build 3 clauses in
  match Sat_lite.solve s with
  | Sat m ->
    Alcotest.(check bool) "odd parity" true (m.(0) <> m.(1) <> m.(2));
    Alcotest.(check bool) "model valid" true (model_satisfies m clauses)
  | Unsat | Unknown -> Alcotest.fail "expected sat"

let pigeonhole holes =
  (* holes+1 pigeons into [holes] holes: classic unsat family.
     var (p, h) = p * holes + h. *)
  let pigeons = holes + 1 in
  let v p h = (p * holes) + h in
  let clauses = ref [] in
  for p = 0 to pigeons - 1 do
    clauses := List.init holes (fun h -> lit (v p h) true) :: !clauses
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        clauses := [ lit (v p1 h) false; lit (v p2 h) false ] :: !clauses
      done
    done
  done;
  (pigeons * holes, !clauses)

let test_pigeonhole () =
  let nvars, clauses = pigeonhole 5 in
  let s = build nvars clauses in
  match Sat_lite.solve s with
  | Unsat -> ()
  | Sat _ -> Alcotest.fail "pigeonhole cannot be sat"
  | Unknown -> Alcotest.fail "budget too small for php(5)"

let test_assumptions () =
  let s = build 2 [ [ lit 0 true; lit 1 true ] ] in
  (match Sat_lite.solve ~assumptions:[ lit 0 false; lit 1 false ] s with
   | Unsat -> ()
   | Sat _ | Unknown -> Alcotest.fail "assumptions force unsat");
  (* Same solver is reusable without the assumptions. *)
  match Sat_lite.solve s with
  | Sat m -> Alcotest.(check bool) "sat again" true (m.(0) || m.(1))
  | Unsat | Unknown -> Alcotest.fail "expected sat"

let gen_3cnf =
  QCheck.Gen.(
    let clause nvars =
      list_size (return 3)
        (pair (int_range 0 (nvars - 1)) bool >|= fun (v, ph) -> lit v ph)
    in
    int_range 3 8 >>= fun nvars ->
    list_size (int_range 1 25) (clause nvars) >|= fun clauses ->
    (nvars, clauses))

let prop_agrees_with_brute_force =
  QCheck.Test.make ~count:300 ~name:"solver agrees with brute force"
    (QCheck.make
       ~print:(fun (n, cs) ->
         Printf.sprintf "n=%d %s" n
           (String.concat " & "
              (List.map
                 (fun c -> String.concat "|" (List.map string_of_int c))
                 cs)))
       gen_3cnf)
    (fun (nvars, clauses) ->
      let s = build nvars clauses in
      match Sat_lite.solve s with
      | Sat m -> model_satisfies m clauses
      | Unsat -> not (brute_force nvars clauses)
      | Unknown -> false)

let () =
  Alcotest.run "sat_lite"
    [ ( "basic",
        [ Alcotest.test_case "trivial sat" `Quick test_trivial_sat;
          Alcotest.test_case "trivial unsat" `Quick test_trivial_unsat;
          Alcotest.test_case "empty clause" `Quick test_empty_clause;
          Alcotest.test_case "xor chain" `Quick test_xor_chain;
          Alcotest.test_case "pigeonhole 6/5" `Slow test_pigeonhole;
          Alcotest.test_case "assumptions" `Quick test_assumptions ] );
      ("props", [ QCheck_alcotest.to_alcotest prop_agrees_with_brute_force ]) ]
