(* Retiming tests: atomic moves, initial-state computation, Leiserson-Saxe
   min-period retiming, constrained min-area.  Every transformation is
   checked for sequential equivalence. *)

module N = Netlist.Network
module M = Retiming.Moves

let and_cover = Logic.Cover.of_strings 2 [ "11" ]
let or_cover = Logic.Cover.of_strings 2 [ "1-"; "-1" ]
let inv_cover = Logic.Cover.of_strings 1 [ "0" ]
let xor_cover = Logic.Cover.of_strings 2 [ "10"; "01" ]

(* r1 -> g1 -> g2 -> r2 -> r1 feedback loop with two registers in a row:
   retiming can push one register between g1 and g2 (period 2 -> 1). *)
let two_register_loop () =
  let net = N.create ~name:"loop2" () in
  let a = N.add_input net "a" in
  let r1 = N.add_latch net ~name:"r1" N.I0 a in
  let g1 = N.add_logic net ~name:"g1" and_cover [ r1; a ] in
  let g2 = N.add_logic net ~name:"g2" xor_cover [ g1; a ] in
  let r2 = N.add_latch net ~name:"r2" N.I0 g2 in
  N.replace_fanin net r1 ~old_fanin:a ~new_fanin:r2;
  N.set_output net "o" r1;
  N.check net;
  net

let test_forward_move_init () =
  (* g = AND of two latches with inits 1,1 -> new latch init 1 *)
  let net = N.create () in
  let a = N.add_input net "a" and b = N.add_input net "b" in
  let r1 = N.add_latch net ~name:"r1" N.I1 a in
  let r2 = N.add_latch net ~name:"r2" N.I1 b in
  let g = N.add_logic net ~name:"g" and_cover [ r1; r2 ] in
  N.set_output net "o" g;
  let before = N.copy net in
  (match M.forward_across_node net g with
   | Ok latch ->
     Alcotest.(check bool) "init 1" true (N.latch_init latch = N.I1);
     Alcotest.(check int) "one latch now" 1 (N.num_latches net);
     N.check net;
     Alcotest.(check bool) "behaviour preserved" true
       (Sim.Equiv.seq_equal_bdd before net)
   | Error e -> Alcotest.fail (M.error_message e))

let test_forward_move_init_and0 () =
  let net = N.create () in
  let a = N.add_input net "a" and b = N.add_input net "b" in
  let r1 = N.add_latch net ~name:"r1" N.I1 a in
  let r2 = N.add_latch net ~name:"r2" N.I0 b in
  let g = N.add_logic net ~name:"g" and_cover [ r1; r2 ] in
  N.set_output net "o" g;
  match M.forward_across_node net g with
  | Ok latch -> Alcotest.(check bool) "init 0" true (N.latch_init latch = N.I0)
  | Error e -> Alcotest.fail (M.error_message e)

let test_forward_move_x_init () =
  (* AND(1, x) = x; AND(0, x) = 0 under 3-valued evaluation *)
  let net = N.create () in
  let a = N.add_input net "a" and b = N.add_input net "b" in
  let r1 = N.add_latch net ~name:"r1" N.Ix a in
  let r2 = N.add_latch net ~name:"r2" N.I0 b in
  let g = N.add_logic net ~name:"g" and_cover [ r1; r2 ] in
  N.set_output net "o" g;
  match M.forward_across_node net g with
  | Ok latch ->
    Alcotest.(check bool) "0 dominates x" true (N.latch_init latch = N.I0)
  | Error e -> Alcotest.fail (M.error_message e)

let test_forward_requires_all_latches () =
  let net = N.create () in
  let a = N.add_input net "a" in
  let r = N.add_latch net ~name:"r" N.I0 a in
  let g = N.add_logic net ~name:"g" and_cover [ r; a ] in
  N.set_output net "o" g;
  Alcotest.(check bool) "not retimable" false (M.is_forward_retimable net g);
  match M.forward_across_node net g with
  | Error (M.Not_retimable _) -> ()
  | Ok _ | Error (M.No_initial_state _) -> Alcotest.fail "expected failure"

let test_forward_self_loop () =
  (* v reads its own latched output: toggle-style; register must remain on
     the loop. *)
  let net = N.create () in
  let a = N.add_input net "a" in
  let r = N.add_latch net ~name:"r" N.I0 a in
  let g = N.add_logic net ~name:"g" inv_cover [ r ] in
  N.replace_fanin net r ~old_fanin:a ~new_fanin:g;
  N.set_output net "o" g;
  let before = N.copy net in
  (* g's only fanin is the latch: forward retimable *)
  match M.forward_across_node net g with
  | Ok _ ->
    N.check net;
    Alcotest.(check int) "still one latch" 1 (N.num_latches net);
    Alcotest.(check bool) "behaviour preserved" true
      (Sim.Equiv.seq_equal_bdd before net)
  | Error e -> Alcotest.fail (M.error_message e)

let test_backward_move () =
  (* latch after an AND gate, init 1: preimage must be (1,1) *)
  let net = N.create () in
  let a = N.add_input net "a" and b = N.add_input net "b" in
  let g = N.add_logic net ~name:"g" and_cover [ a; b ] in
  let r = N.add_latch net ~name:"r" N.I1 g in
  N.set_output net "o" r;
  let before = N.copy net in
  (match M.backward_across_node net g with
   | Ok latches ->
     Alcotest.(check int) "two new latches" 2 (List.length latches);
     List.iter
       (fun l ->
         Alcotest.(check bool) "init 1" true (N.latch_init l = N.I1))
       latches;
     N.check net;
     Alcotest.(check bool) "behaviour preserved" true
       (Sim.Equiv.seq_equal_bdd before net)
   | Error e -> Alcotest.fail (M.error_message e))

let test_backward_move_no_preimage () =
  (* constant-0 node with latch init 1: no preimage *)
  let net = N.create () in
  let a = N.add_input net "a" in
  let g =
    N.add_logic net ~name:"g" (Logic.Cover.of_strings 2 [ "10"; "01" ]) [ a; a ]
  in
  (* xor(a, a) = 0 *)
  let r = N.add_latch net ~name:"r" N.I1 g in
  N.set_output net "o" r;
  match M.backward_across_node net g with
  | Error (M.No_initial_state _) -> ()
  | Ok _ -> Alcotest.fail "xor(a,a)=0 cannot have initial value 1"
  | Error (M.Not_retimable m) -> Alcotest.fail m

let test_backward_needs_uniform_inits () =
  let net = N.create () in
  let a = N.add_input net "a" in
  let g = N.add_logic net ~name:"g" inv_cover [ a ] in
  let _r1 = N.add_latch net ~name:"r1" N.I0 g in
  let _r2 = N.add_latch net ~name:"r2" N.I1 g in
  Alcotest.(check bool) "different inits block backward move" false
    (M.is_backward_retimable net g)

let test_split_stem () =
  let net = N.create () in
  let a = N.add_input net "a" in
  let r = N.add_latch net ~name:"r" N.I1 a in
  let g1 = N.add_logic net ~name:"g1" inv_cover [ r ] in
  let g2 = N.add_logic net ~name:"g2" inv_cover [ r ] in
  N.set_output net "o1" g1;
  N.set_output net "o2" g2;
  let before = N.copy net in
  let copies = M.split_stem net r in
  Alcotest.(check int) "two copies" 2 (List.length copies);
  List.iter
    (fun c -> Alcotest.(check bool) "same init" true (N.latch_init c = N.I1))
    copies;
  N.check net;
  Alcotest.(check int) "two latches now" 2 (N.num_latches net);
  Alcotest.(check bool) "behaviour preserved" true
    (Sim.Equiv.seq_equal_bdd before net);
  (* and merging them back restores the register count *)
  (match M.merge_siblings net copies with
   | Ok _ ->
     Alcotest.(check int) "merged back" 1 (N.num_latches net);
     Alcotest.(check bool) "still equivalent" true
       (Sim.Equiv.seq_equal_bdd before net)
   | Error e -> Alcotest.fail (M.error_message e))

let test_merge_rejects_mixed_inits () =
  let net = N.create () in
  let a = N.add_input net "a" in
  let r1 = N.add_latch net ~name:"r1" N.I0 a in
  let r2 = N.add_latch net ~name:"r2" N.I1 a in
  let g = N.add_logic net ~name:"g" and_cover [ r1; r2 ] in
  N.set_output net "o" g;
  match M.merge_siblings net [ r1; r2 ] with
  | Error (M.Not_retimable _) -> ()
  | Ok _ -> Alcotest.fail "mixed inits must not merge"
  | Error (M.No_initial_state m) -> Alcotest.fail m

(* --- min-period retiming ---------------------------------------------------- *)

let test_min_period_loop () =
  let net = two_register_loop () in
  Alcotest.(check (float 1e-9)) "initial period 2" 2.0
    (Sta.clock_period net Sta.unit_delay);
  (match Retiming.Minperiod.min_feasible_period net Sta.unit_delay with
   | Ok p -> Alcotest.(check (float 1e-9)) "feasible period 1" 1.0 p
   | Error f -> Alcotest.fail (Retiming.Minperiod.failure_message f));
  match Retiming.Minperiod.retime_min_period net ~model:Sta.unit_delay with
  | Ok (retimed, period) ->
    Alcotest.(check (float 1e-9)) "achieved 1" 1.0 period;
    Alcotest.(check (float 1e-9)) "measured 1" 1.0
      (Sta.clock_period retimed Sta.unit_delay);
    N.check retimed;
    Alcotest.(check bool) "behaviour preserved" true
      (Sim.Equiv.seq_equal_bdd net retimed)
  | Error f -> Alcotest.fail (Retiming.Minperiod.failure_message f)

let test_retime_infeasible_target () =
  let net = two_register_loop () in
  match Retiming.Minperiod.retime net ~model:Sta.unit_delay ~target:0.5 with
  | Error Retiming.Minperiod.Infeasible -> ()
  | Ok _ -> Alcotest.fail "0.5 is below the loop bound"
  | Error f -> Alcotest.fail (Retiming.Minperiod.failure_message f)

let test_retime_pipeline () =
  (* a -> g1 -> g2 -> g3 -> r -> out: moving the register into the middle of
     the 3-gate chain balances the pipeline (period 3 -> 2). *)
  let net = N.create ~name:"pipe" () in
  let a = N.add_input net "a" and b = N.add_input net "b" in
  let g1 = N.add_logic net ~name:"g1" and_cover [ a; b ] in
  let g2 = N.add_logic net ~name:"g2" or_cover [ g1; b ] in
  let g3 = N.add_logic net ~name:"g3" inv_cover [ g2 ] in
  let r = N.add_latch net ~name:"r" N.I0 g3 in
  N.set_output net "o" r;
  Alcotest.(check (float 1e-9)) "period 3" 3.0
    (Sta.clock_period net Sta.unit_delay);
  match Retiming.Minperiod.retime_min_period net ~model:Sta.unit_delay with
  | Ok (retimed, period) ->
    Alcotest.(check (float 1e-9)) "period 2" 2.0 period;
    Alcotest.(check bool) "behaviour preserved" true
      (Sim.Equiv.seq_equal_bdd net retimed)
  | Error f -> Alcotest.fail (Retiming.Minperiod.failure_message f)

let test_retime_cannot_improve_single_register_pipeline () =
  (* One register, 2-gate stage on each side of any placement: retiming
     cannot beat the current period; the tool must say so. *)
  let net = N.create ~name:"pipe1" () in
  let a = N.add_input net "a" and b = N.add_input net "b" in
  let g1 = N.add_logic net ~name:"g1" and_cover [ a; b ] in
  let g2 = N.add_logic net ~name:"g2" or_cover [ g1; b ] in
  let r = N.add_latch net ~name:"r" N.I0 g2 in
  let g3 = N.add_logic net ~name:"g3" inv_cover [ r ] in
  N.set_output net "o" g3;
  match Retiming.Minperiod.retime_min_period net ~model:Sta.unit_delay with
  | Error Retiming.Minperiod.Infeasible -> ()
  | Ok (_, p) -> Alcotest.failf "unexpected improvement to %.1f" p
  | Error f -> Alcotest.fail (Retiming.Minperiod.failure_message f)

let seq_profile =
  { Circuits.Generators.default_profile with ngates = 14; nlatch = 4; npi = 3 }

let prop_retime_preserves_behaviour =
  QCheck.Test.make ~count:40 ~name:"min-period retiming preserves behaviour"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let net = Circuits.Generators.random_sequential ~seed seq_profile in
      N.sweep net;
      match Retiming.Minperiod.retime_min_period net ~model:Sta.unit_delay with
      | Ok (retimed, period) ->
        N.check retimed;
        Sta.clock_period retimed Sta.unit_delay <= period +. 1e-9
        && Sim.Equiv.seq_equal_bdd net retimed
      | Error _ -> true)

let prop_retime_improves_period =
  QCheck.Test.make ~count:40 ~name:"successful retiming reduces the period"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let net = Circuits.Generators.random_sequential ~seed seq_profile in
      N.sweep net;
      let before = Sta.clock_period net Sta.unit_delay in
      match Retiming.Minperiod.retime_min_period net ~model:Sta.unit_delay with
      | Ok (retimed, _) ->
        Sta.clock_period retimed Sta.unit_delay < before -. 1e-9
      | Error _ -> true)

let prop_random_moves_preserve_behaviour =
  QCheck.Test.make ~count:40 ~name:"random atomic moves preserve behaviour"
    QCheck.(pair (int_range 0 5_000) (int_range 0 1_000))
    (fun (seed, move_seed) ->
      let net = Circuits.Generators.random_sequential ~seed seq_profile in
      N.sweep net;
      let before = N.copy net in
      let rng = Random.State.make [| move_seed |] in
      for _ = 1 to 6 do
        let nodes = N.logic_nodes net in
        if nodes <> [] then begin
          let v = List.nth nodes (Random.State.int rng (List.length nodes)) in
          match Random.State.int rng 3 with
          | 0 ->
            if M.is_forward_retimable net v then
              ignore (M.forward_across_node net v)
          | 1 ->
            if M.is_backward_retimable net v then
              ignore (M.backward_across_node net v)
          | _ ->
            (match N.latches net with
             | [] -> ()
             | l :: _ -> ignore (M.split_stem net l))
        end
      done;
      N.check net;
      Sim.Equiv.seq_equal_bdd before net)

(* --- min-area ---------------------------------------------------------------- *)

let test_minarea_merges_copies () =
  let net = N.create () in
  let a = N.add_input net "a" in
  let r1 = N.add_latch net ~name:"r1" N.I1 a in
  let r2 = N.add_latch net ~name:"r2" N.I1 a in
  let g = N.add_logic net ~name:"g" and_cover [ r1; r2 ] in
  N.set_output net "o" g;
  let eliminated =
    Retiming.Minarea.minimize_registers net ~model:Sta.unit_delay
      ~max_period:10.0
  in
  Alcotest.(check bool) "at least one register saved" true (eliminated >= 1);
  N.check net

let prop_minarea_sound =
  QCheck.Test.make ~count:30
    ~name:"min-area retiming preserves behaviour and period"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let net = Circuits.Generators.random_sequential ~seed seq_profile in
      N.sweep net;
      let before = N.copy net in
      let period = Sta.clock_period net Sta.unit_delay in
      let latches_before = N.num_latches net in
      ignore
        (Retiming.Minarea.minimize_registers net ~model:Sta.unit_delay
           ~max_period:period);
      N.check net;
      N.num_latches net <= latches_before
      && Sta.clock_period net Sta.unit_delay <= period +. 1e-9
      && Sim.Equiv.seq_equal_bdd before net)

let prop_feas_agrees_with_wd =
  QCheck.Test.make ~count:60
    ~name:"FEAS and W/D min-period algorithms agree"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let net = Circuits.Generators.random_sequential ~seed seq_profile in
      N.sweep net;
      let a = Retiming.Minperiod.min_feasible_period net Sta.unit_delay in
      let b = Retiming.Minperiod.min_feasible_period_feas net Sta.unit_delay in
      match a, b with
      | Ok x, Ok y -> abs_float (x -. y) < 1e-9
      | Error Retiming.Minperiod.Infeasible, Error Retiming.Minperiod.Infeasible
        ->
        true
      | _, _ -> false)

(* --- exact min-register retiming ---------------------------------------------- *)

let test_minregister_fanout_merge () =
  (* a -> g -> {L1 -> o1, L2 -> o2}: two registers on the two fanout edges
     of g can become one register before g (backward move), halving the
     count. *)
  let net = N.create () in
  let a = N.add_input net "a" in
  let g = N.add_logic net ~name:"g" inv_cover [ a ] in
  let l1 = N.add_latch net ~name:"l1" N.I1 g in
  let l2 = N.add_latch net ~name:"l2" N.I1 g in
  N.set_output net "o1" l1;
  N.set_output net "o2" l2;
  match Retiming.Minregister.min_registers net ~model:Sta.unit_delay with
  | Ok (retimed, count) ->
    Alcotest.(check int) "one register" 1 count;
    N.check retimed;
    Alcotest.(check bool) "behaviour preserved" true
      (Sim.Equiv.seq_equal_bdd net retimed)
  | Error f -> Alcotest.fail (Retiming.Minperiod.failure_message f)

let test_minregister_respects_period () =
  (* Same circuit: merging the registers backward puts both gate delays on
     one register-to-output path; with a period bound of 1 the merge is
     forbidden and both registers stay. *)
  let net = N.create () in
  let a = N.add_input net "a" in
  let g = N.add_logic net ~name:"g" inv_cover [ a ] in
  let g2 = N.add_logic net ~name:"g2" inv_cover [ g ] in
  let l1 = N.add_latch net ~name:"l1" N.I1 g2 in
  let l2 = N.add_latch net ~name:"l2" N.I1 g2 in
  let c1 = N.add_logic net ~name:"c1" inv_cover [ l1 ] in
  let c2 = N.add_logic net ~name:"c2" inv_cover [ l2 ] in
  N.set_output net "o1" c1;
  N.set_output net "o2" c2;
  (* unconstrained: can pull the two registers backward across g2 (one
     register) *)
  (match Retiming.Minregister.min_registers net ~model:Sta.unit_delay with
   | Ok (retimed, count) ->
     Alcotest.(check bool) "saves a register" true (count <= 1);
     Alcotest.(check bool) "equivalent" true
       (Sim.Equiv.seq_equal_bdd net retimed)
   | Error f -> Alcotest.fail (Retiming.Minperiod.failure_message f));
  (* with the period capped at the current value, the result must still
     meet it *)
  let period = Sta.clock_period net Sta.unit_delay in
  match
    Retiming.Minregister.min_registers ~target_period:period net
      ~model:Sta.unit_delay
  with
  | Ok (retimed, _) ->
    Alcotest.(check bool) "period respected" true
      (Sta.clock_period retimed Sta.unit_delay <= period +. 1e-9)
  | Error f -> Alcotest.fail (Retiming.Minperiod.failure_message f)

let test_minregister_infeasible_period () =
  let net = two_register_loop () in
  match
    Retiming.Minregister.min_registers ~target_period:0.5 net
      ~model:Sta.unit_delay
  with
  | Error Retiming.Minperiod.Infeasible -> ()
  | Ok _ -> Alcotest.fail "period 0.5 is infeasible"
  | Error f -> Alcotest.fail (Retiming.Minperiod.failure_message f)

let prop_minregister_sound =
  QCheck.Test.make ~count:30
    ~name:"exact min-register retiming preserves behaviour"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let net = Circuits.Generators.random_sequential ~seed seq_profile in
      N.sweep net;
      match Retiming.Minregister.min_registers net ~model:Sta.unit_delay with
      | Ok (retimed, _) ->
        N.check retimed;
        Sim.Equiv.seq_equal_bdd net retimed
      | Error _ -> true)

let prop_minregister_never_grows =
  QCheck.Test.make ~count:30
    ~name:"exact min-register retiming never grows the register count"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let net = Circuits.Generators.random_sequential ~seed seq_profile in
      N.sweep net;
      let before =
        let merged = N.copy net in
        ignore (Retiming.Minarea.merge_all_siblings merged);
        N.num_latches merged
      in
      match Retiming.Minregister.min_registers net ~model:Sta.unit_delay with
      | Ok (_, count) -> count <= before
      | Error _ -> true)

let prop_minregister_period_bound_holds =
  QCheck.Test.make ~count:30
    ~name:"min-register with period bound meets the bound"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let net = Circuits.Generators.random_sequential ~seed seq_profile in
      N.sweep net;
      let period = Sta.clock_period net Sta.unit_delay in
      match
        Retiming.Minregister.min_registers ~target_period:period net
          ~model:Sta.unit_delay
      with
      | Ok (retimed, _) ->
        Sta.clock_period retimed Sta.unit_delay <= period +. 1e-9
        && Sim.Equiv.seq_equal_bdd net retimed
      | Error _ -> true)

let () =
  Alcotest.run "retiming"
    [ ( "moves",
        [ Alcotest.test_case "forward init and(1,1)" `Quick
            test_forward_move_init;
          Alcotest.test_case "forward init and(1,0)" `Quick
            test_forward_move_init_and0;
          Alcotest.test_case "forward init with x" `Quick
            test_forward_move_x_init;
          Alcotest.test_case "forward needs all latches" `Quick
            test_forward_requires_all_latches;
          Alcotest.test_case "forward self loop" `Quick test_forward_self_loop;
          Alcotest.test_case "backward with preimage" `Quick test_backward_move;
          Alcotest.test_case "backward without preimage" `Quick
            test_backward_move_no_preimage;
          Alcotest.test_case "backward uniform inits" `Quick
            test_backward_needs_uniform_inits;
          Alcotest.test_case "split and merge stem" `Quick test_split_stem;
          Alcotest.test_case "merge rejects mixed inits" `Quick
            test_merge_rejects_mixed_inits ] );
      ( "minperiod",
        [ Alcotest.test_case "two-register loop" `Quick test_min_period_loop;
          Alcotest.test_case "infeasible target" `Quick
            test_retime_infeasible_target;
          Alcotest.test_case "pipeline" `Quick test_retime_pipeline;
          Alcotest.test_case "single-register pipeline" `Quick
            test_retime_cannot_improve_single_register_pipeline ] );
      ( "minarea",
        [ Alcotest.test_case "merges equivalent copies" `Quick
            test_minarea_merges_copies ] );
      ( "minregister",
        [ Alcotest.test_case "fanout merge" `Quick test_minregister_fanout_merge;
          Alcotest.test_case "respects period" `Quick
            test_minregister_respects_period;
          Alcotest.test_case "infeasible period" `Quick
            test_minregister_infeasible_period ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [ prop_retime_preserves_behaviour; prop_retime_improves_period;
            prop_random_moves_preserve_behaviour; prop_minarea_sound;
            prop_minregister_sound; prop_minregister_never_grows;
            prop_minregister_period_bound_holds; prop_feas_agrees_with_wd ] ) ]
