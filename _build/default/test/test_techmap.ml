(* Technology library and mapper tests. *)

module N = Netlist.Network
module G = Techmap.Genlib

let test_patterns_match_covers () =
  List.iter
    (fun gate ->
      let from_pattern =
        G.pattern_cover gate.G.ninputs gate.G.pattern
      in
      if not (Logic.Cover.equivalent from_pattern gate.G.cover) then
        Alcotest.failf "gate %s: pattern and cover disagree" gate.G.gate_name)
    G.mcnc_lite.G.gates

let test_library_lookup () =
  let inv = G.find G.mcnc_lite "inv" in
  Alcotest.(check int) "inv arity" 1 inv.G.ninputs;
  Alcotest.check_raises "unknown gate"
    (Invalid_argument "Genlib.find: unknown gate foo") (fun () ->
      ignore (G.find G.mcnc_lite "foo"))

let subject_is_nand_inv net =
  let nand2 = Logic.Cover.of_strings 2 [ "0-"; "-0" ] in
  let inv = Logic.Cover.of_strings 1 [ "0" ] in
  List.for_all
    (fun n ->
      let c = N.cover_of n in
      Logic.Cover.equivalent c nand2 || Logic.Cover.equivalent c inv)
    (N.logic_nodes net)

let prop_subject_graph =
  QCheck.Test.make ~count:40 ~name:"subject graph is NAND2/INV and equivalent"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let net =
        Circuits.Generators.random_sequential ~seed
          { Circuits.Generators.default_profile with
            ngates = 12;
            nlatch = 3;
            npi = 3 }
      in
      N.sweep net;
      let subject = Techmap.Mapper.subject_graph net in
      N.check subject;
      subject_is_nand_inv subject && Sim.Equiv.seq_equal_bdd net subject)

let prop_mapping_preserves_function =
  QCheck.Test.make ~count:40 ~name:"mapping preserves behaviour (delay obj)"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let net =
        Circuits.Generators.random_sequential ~seed
          { Circuits.Generators.default_profile with
            ngates = 12;
            nlatch = 3;
            npi = 3 }
      in
      N.sweep net;
      let mapped =
        Techmap.Mapper.map net ~lib:G.mcnc_lite ~objective:Techmap.Mapper.Min_delay
      in
      N.check mapped;
      Sim.Equiv.seq_equal_bdd net mapped)

let prop_mapping_area_preserves_function =
  QCheck.Test.make ~count:40 ~name:"mapping preserves behaviour (area obj)"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let net =
        Circuits.Generators.random_sequential ~seed
          { Circuits.Generators.default_profile with
            ngates = 12;
            nlatch = 3;
            npi = 3 }
      in
      N.sweep net;
      let mapped =
        Techmap.Mapper.map net ~lib:G.mcnc_lite ~objective:Techmap.Mapper.Min_area
      in
      Sim.Equiv.seq_equal_bdd net mapped)

let prop_all_logic_bound =
  QCheck.Test.make ~count:30 ~name:"every mapped logic node carries a binding"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let net =
        Circuits.Generators.random_sequential ~seed
          { Circuits.Generators.default_profile with ngates = 12; nlatch = 2 }
      in
      N.sweep net;
      let mapped =
        Techmap.Mapper.map net ~lib:G.mcnc_lite ~objective:Techmap.Mapper.Min_delay
      in
      List.for_all (fun n -> n.N.binding <> None) (N.logic_nodes mapped))

(* Tree covering cannot guarantee that the area objective beats the delay
   objective globally (boundary sharing is assumed, not optimized), but it
   does guarantee it never does worse than the trivial NAND2/INV cover, and
   that the delay objective minimizes the period within the covering space. *)
let prop_area_not_worse_than_trivial =
  QCheck.Test.make ~count:30
    ~name:"area objective beats trivial NAND2/INV cover"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let net =
        Circuits.Generators.random_sequential ~seed
          { Circuits.Generators.default_profile with ngates = 15; nlatch = 2 }
      in
      N.sweep net;
      let subject = Techmap.Mapper.subject_graph net in
      let trivial_area =
        List.fold_left
          (fun acc n ->
            acc +. if Array.length n.N.fanins = 2 then 2.0 else 1.0)
          (float_of_int (N.num_latches subject) *. G.mcnc_lite.G.latch_area)
          (N.logic_nodes subject)
      in
      let by_area =
        Techmap.Mapper.map net ~lib:G.mcnc_lite ~objective:Techmap.Mapper.Min_area
      in
      Techmap.Mapper.mapped_area by_area ~lib:G.mcnc_lite <= trivial_area +. 1e-9)

let prop_delay_objective_minimizes_period =
  QCheck.Test.make ~count:30
    ~name:"delay objective period <= area objective period"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let net =
        Circuits.Generators.random_sequential ~seed
          { Circuits.Generators.default_profile with ngates = 15; nlatch = 2 }
      in
      N.sweep net;
      let period objective =
        let mapped = Techmap.Mapper.map net ~lib:G.mcnc_lite ~objective in
        Sta.clock_period mapped (Sta.mapped_delay ())
      in
      period Techmap.Mapper.Min_delay
      <= period Techmap.Mapper.Min_area +. 1e-9)

let test_map_simple_and () =
  let net = N.create () in
  let a = N.add_input net "a" and b = N.add_input net "b" in
  let g =
    N.add_logic net ~name:"g" (Logic.Cover.of_strings 2 [ "11" ]) [ a; b ]
  in
  N.set_output net "o" g;
  let mapped =
    Techmap.Mapper.map net ~lib:G.mcnc_lite ~objective:Techmap.Mapper.Min_area
  in
  (* cheapest implementation of a single AND2 is the and2 cell *)
  let names =
    List.map
      (fun n -> match n.N.binding with Some b -> b.N.gate_name | None -> "?")
      (N.logic_nodes mapped)
  in
  Alcotest.(check (list string)) "single and2" [ "and2" ] names

let test_map_xor_uses_xor_cell () =
  let net = N.create () in
  let a = N.add_input net "a" and b = N.add_input net "b" in
  let g =
    N.add_logic net ~name:"g" (Logic.Cover.of_strings 2 [ "10"; "01" ]) [ a; b ]
  in
  N.set_output net "o" g;
  let mapped =
    Techmap.Mapper.map net ~lib:G.mcnc_lite ~objective:Techmap.Mapper.Min_area
  in
  let names =
    List.map
      (fun n -> match n.N.binding with Some b -> b.N.gate_name | None -> "?")
      (N.logic_nodes mapped)
    |> List.sort compare
  in
  Alcotest.(check (list string)) "xor2 match" [ "xor2" ] names

(* --- genlib text format -------------------------------------------------------- *)

let sample_genlib =
  {|# a tiny library
GATE inv   1.0 O=!a;      PIN * INV 1 999 1.0 0.0 1.0 0.0
GATE nand2 2.0 O=!(a*b);  PIN * INV 1 999 1.0 0.0 1.0 0.0
GATE aoi21 3.0 O=!(a*b+c); PIN * INV 1 999 1.4 0.0 1.4 0.0
GATE xor2  5.0 O=a*!b+!a*b; PIN * INV 1 999 1.9 0.0 1.9 0.0
GATE and3  4.0 O=a*b*c;   PIN * INV 1 999 1.6 0.0 1.6 0.0
|}

let test_genlib_parse () =
  let lib = Techmap.Genlib_io.parse_string sample_genlib in
  Alcotest.(check int) "5 gates" 5 (List.length lib.G.gates);
  let aoi = G.find lib "aoi21" in
  Alcotest.(check int) "aoi arity" 3 aoi.G.ninputs;
  Alcotest.(check (float 1e-9)) "aoi delay" 1.4 aoi.G.delay;
  (* the parsed function must equal (ab + c)' *)
  let expected = Logic.Cover.of_strings 3 [ "0-0"; "-00" ] in
  Alcotest.(check bool) "aoi function" true
    (Logic.Cover.equivalent aoi.G.cover expected);
  (* the derived pattern is already checked internally; double-check here *)
  List.iter
    (fun g ->
      Alcotest.(check bool)
        (g.G.gate_name ^ " pattern matches cover")
        true
        (Logic.Cover.equivalent (G.pattern_cover g.G.ninputs g.G.pattern) g.G.cover))
    lib.G.gates

let test_genlib_roundtrip () =
  let lib = Techmap.Genlib_io.parse_string sample_genlib in
  let lib2 = Techmap.Genlib_io.parse_string (Techmap.Genlib_io.to_string lib) in
  List.iter2
    (fun a b ->
      Alcotest.(check string) "name" a.G.gate_name b.G.gate_name;
      Alcotest.(check (float 1e-9)) "area" a.G.area b.G.area;
      Alcotest.(check bool) "function" true
        (Logic.Cover.equivalent a.G.cover b.G.cover))
    lib.G.gates lib2.G.gates

let test_genlib_builtin_roundtrip () =
  let lib2 =
    Techmap.Genlib_io.parse_string (Techmap.Genlib_io.to_string G.mcnc_lite)
  in
  Alcotest.(check int) "gate count preserved" (List.length G.mcnc_lite.G.gates)
    (List.length lib2.G.gates)

let test_genlib_map_with_parsed_library () =
  (* Mapping with a parsed library must work end to end. *)
  let lib = Techmap.Genlib_io.parse_string sample_genlib in
  let net = N.create () in
  let a = N.add_input net "a" and b = N.add_input net "b" in
  let c = N.add_input net "c" in
  let g =
    N.add_logic net ~name:"g"
      (Logic.Cover.of_strings 3 [ "11-"; "--1" ])
      [ a; b; c ]
  in
  N.set_output net "o" g;
  let mapped = Techmap.Mapper.map net ~lib ~objective:Techmap.Mapper.Min_area in
  N.check mapped;
  Alcotest.(check bool) "all bound" true
    (List.for_all (fun n -> n.N.binding <> None) (N.logic_nodes mapped));
  Alcotest.(check bool) "equivalent" true
    (Sim.Equiv.comb_equal_exhaustive net mapped)

let test_genlib_rejects_garbage () =
  Alcotest.(check bool) "no gates" true
    (try ignore (Techmap.Genlib_io.parse_string "nothing here"); false
     with Failure _ -> true);
  Alcotest.(check bool) "bad expression" true
    (try ignore (Techmap.Genlib_io.parse_string "GATE g 1.0 O=a+*b;"); false
     with Failure _ -> true)

let () =
  Alcotest.run "techmap"
    [ ( "library",
        [ Alcotest.test_case "patterns match covers" `Quick
            test_patterns_match_covers;
          Alcotest.test_case "lookup" `Quick test_library_lookup ] );
      ( "genlib-io",
        [ Alcotest.test_case "parse" `Quick test_genlib_parse;
          Alcotest.test_case "roundtrip" `Quick test_genlib_roundtrip;
          Alcotest.test_case "builtin roundtrip" `Quick
            test_genlib_builtin_roundtrip;
          Alcotest.test_case "map with parsed library" `Quick
            test_genlib_map_with_parsed_library;
          Alcotest.test_case "rejects garbage" `Quick
            test_genlib_rejects_garbage ] );
      ( "mapper",
        [ Alcotest.test_case "single and2" `Quick test_map_simple_and;
          Alcotest.test_case "xor cell" `Quick test_map_xor_uses_xor_cell ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [ prop_subject_graph; prop_mapping_preserves_function;
            prop_mapping_area_preserves_function; prop_all_logic_bound;
            prop_area_not_worse_than_trivial;
            prop_delay_objective_minimizes_period ] ) ]
