(* A tour of the retiming substrate (the paper's Section II).

   Demonstrates:
   - forward retiming across a node and the f(inits) initial-state rule;
   - backward retiming and initial-state preimages, including the failure
     case the paper exploits to explain why SIS retiming gives up;
   - retiming across a fanout stem: register replication with preserved
     initial states, and why the resulting "disagreeing" states are
     unreachable;
   - Leiserson-Saxe min-period retiming on a two-register loop.

   Run with:  dune exec examples/retiming_tour.exe *)

module N = Netlist.Network
module M = Retiming.Moves

let and_c = Logic.Cover.of_strings 2 [ "11" ]
let xor_c = Logic.Cover.of_strings 2 [ "10"; "01" ]
let inv_c = Logic.Cover.of_strings 1 [ "0" ]

let init_str = function N.I0 -> "0" | N.I1 -> "1" | N.Ix -> "x"

let () =
  print_endline "== 1. Forward retiming across a node (Fig. 1) ==";
  let net = N.create () in
  let a = N.add_input net "a" and b = N.add_input net "b" in
  let r1 = N.add_latch net ~name:"r1" N.I1 a in
  let r2 = N.add_latch net ~name:"r2" N.I1 b in
  let g = N.add_logic net ~name:"g" and_c [ r1; r2 ] in
  N.set_output net "o" g;
  Printf.printf "before: AND fed by registers with initial values 1 and 1\n";
  (match M.forward_across_node net g with
   | Ok latch ->
     Printf.printf
       "after:  one register at the AND's output, initial value %s = AND(1,1)\n"
       (init_str (N.latch_init latch))
   | Error e -> print_endline (M.error_message e));

  print_endline "\n== 2. Backward retiming and initial-state preimages ==";
  let net = N.create () in
  let a = N.add_input net "a" and b = N.add_input net "b" in
  let g = N.add_logic net ~name:"g" and_c [ a; b ] in
  let r = N.add_latch net ~name:"r" N.I1 g in
  N.set_output net "o" r;
  (match M.backward_across_node net g with
   | Ok latches ->
     Printf.printf
       "register(init 1) behind AND moves to the inputs: new inits = %s\n"
       (String.concat ","
          (List.map (fun l -> init_str (N.latch_init l)) latches))
   | Error e -> print_endline (M.error_message e));
  (* the failure case: no preimage *)
  let net = N.create () in
  let a = N.add_input net "a" in
  let g = N.add_logic net ~name:"g" xor_c [ a; a ] in
  let _r = N.add_latch net ~name:"r" N.I1 g in
  N.set_output net "o" a;
  (match M.backward_across_node net g with
   | Ok _ -> print_endline "unexpectedly succeeded"
   | Error e ->
     Printf.printf
       "xor(a,a)=0 with a register initialized to 1 cannot move backwards:\n  %s\n"
       (M.error_message e));

  print_endline "\n== 3. Retiming across a fanout stem (Fig. 2 / Fig. 3) ==";
  let net = N.create () in
  let a = N.add_input net "a" in
  let r = N.add_latch net ~name:"r" N.I0 a in
  let g1 = N.add_logic net ~name:"g1" inv_c [ r ] in
  let g2 = N.add_logic net ~name:"g2" inv_c [ r ] in
  N.set_output net "o1" g1;
  N.set_output net "o2" g2;
  let before = N.copy net in
  let copies = M.split_stem net r in
  Printf.printf "register r split into %d copies with equal initial values\n"
    (List.length copies);
  Printf.printf "behaviour preserved: %b\n" (Sim.Equiv.seq_equal_bdd before net);
  let reach = Dontcare.Reach.unreachable_states net in
  Printf.printf
    "reachable states: %.0f of 4 - the states where the copies disagree are \
     invalid,\nwhich is exactly the retiming-induced don't-care DC_ret = r' \
     XOR r''\n"
    reach.Dontcare.Reach.num_reachable;

  print_endline "\n== 4. Leiserson-Saxe min-period retiming ==";
  let net = N.create () in
  let a = N.add_input net "a" in
  let r1 = N.add_latch net ~name:"r1" N.I0 a in
  let g1 = N.add_logic net ~name:"g1" and_c [ r1; a ] in
  let g2 = N.add_logic net ~name:"g2" xor_c [ g1; a ] in
  let r2 = N.add_latch net ~name:"r2" N.I0 g2 in
  N.replace_fanin net r1 ~old_fanin:a ~new_fanin:r2;
  N.set_output net "o" r1;
  Printf.printf "two registers back-to-back on a 2-gate loop: period %.1f\n"
    (Sta.clock_period net Sta.unit_delay);
  (match Retiming.Minperiod.retime_min_period net ~model:Sta.unit_delay with
   | Ok (retimed, p) ->
     Printf.printf
       "after min-period retiming: period %.1f (one register between the \
        gates)\nequivalent: %b\n"
       p
       (Sim.Equiv.seq_equal_bdd net retimed)
   | Error f -> print_endline (Retiming.Minperiod.failure_message f))
