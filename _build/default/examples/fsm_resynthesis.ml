(* Resynthesizing a finite-state controller.

   Builds a 10-state Mealy controller (the size class of MCNC's bbara), maps
   it for delay, and pushes it through the three evaluation flows, printing
   the Table-I-style comparison and what the resynthesis machinery did.

   Run with:  dune exec examples/fsm_resynthesis.exe *)

module N = Netlist.Network

let () =
  let machine =
    Circuits.Fsm.random ~seed:2058 ~name:"controller" ~nstates:10 ~ninputs:3
      ~noutputs:2 ()
  in
  Printf.printf "controller: %d states, %d inputs, %d outputs, %d transitions\n"
    machine.Circuits.Fsm.nstates machine.Circuits.Fsm.ninputs
    machine.Circuits.Fsm.noutputs
    (List.length machine.Circuits.Fsm.transitions);
  Printf.printf "transition table is complete and deterministic: %b\n\n"
    (Circuits.Fsm.check_complete machine);

  let net = Circuits.Fsm.to_network machine in
  Printf.printf "synthesized (binary state encoding): %s\n\n"
    (N.stats_string net);

  let row = Core.Flow.run_all ~name:"controller" net in
  print_string (Report.Table.render [ row ]);

  (match row.Core.Flow.resynth_outcome with
   | Some o when o.Core.Resynth.applied ->
     Printf.printf
       "\nresynthesis internals: split %d register stem(s) feeding the \
        critical path,\n  inducing %d equivalence class(es); the retiming \
        engine made %d forward move(s);\n  %d collapsed cone(s) were \
        simplified with the retiming-induced don't-cares.\n"
       o.Core.Resynth.stem_splits o.Core.Resynth.equivalence_classes
       o.Core.Resynth.forward_moves o.Core.Resynth.simplified_cones
   | Some o -> Printf.printf "\nresynthesis declined: %s\n" o.Core.Resynth.note
   | None -> print_newline ());

  Printf.printf
    "\nBoth transformed circuits were checked sequentially equivalent to the \
     mapped input\n(retimed: %b, resynthesized: %b).\n"
    row.Core.Flow.retimed.Core.Flow.verified
    row.Core.Flow.resynthesized.Core.Flow.verified
