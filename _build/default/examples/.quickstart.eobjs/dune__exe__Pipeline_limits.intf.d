examples/pipeline_limits.mli:
