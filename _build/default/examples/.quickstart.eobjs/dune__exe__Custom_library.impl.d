examples/custom_library.ml: Circuits Core List Netlist Printf Sim Sta Synth_opt Techmap
