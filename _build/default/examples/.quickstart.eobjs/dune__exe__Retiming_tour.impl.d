examples/retiming_tour.ml: Dontcare List Logic Netlist Printf Retiming Sim Sta String
