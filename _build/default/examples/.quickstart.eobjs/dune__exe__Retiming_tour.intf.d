examples/retiming_tour.mli:
