examples/fsm_resynthesis.mli:
