examples/fsm_resynthesis.ml: Circuits Core List Netlist Printf Report
