examples/pipeline_limits.ml: Circuits Core Netlist Printf Sta Techmap
