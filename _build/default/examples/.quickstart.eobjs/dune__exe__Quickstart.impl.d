examples/quickstart.ml: Circuits Core Format List Netlist Printf Retiming Sim Sta String
