examples/quickstart.mli:
