(* Using a custom gate library.

   The technology substrate reads genlib-format libraries; this example
   defines a richer standard-cell set (faster XORs, an OAI22, a 4-input
   NAND), maps s27 with it, and compares period/area against the built-in
   mcnc_lite library.  It then runs the paper's resynthesis under the
   custom library.

   Run with:  dune exec examples/custom_library.exe *)

module N = Netlist.Network

let custom_genlib =
  {|# a slightly faster, richer cell library
GATE inv    0.9 O=!a;            PIN * INV 1 999 0.8 0.0 0.8 0.0
GATE nand2  1.8 O=!(a*b);        PIN * INV 1 999 0.9 0.0 0.9 0.0
GATE nand3  2.7 O=!(a*b*c);      PIN * INV 1 999 1.1 0.0 1.1 0.0
GATE nand4  3.6 O=!(a*b*c*d);    PIN * INV 1 999 1.3 0.0 1.3 0.0
GATE nor2   1.8 O=!(a+b);        PIN * INV 1 999 1.0 0.0 1.0 0.0
GATE and2   2.6 O=a*b;           PIN * INV 1 999 1.2 0.0 1.2 0.0
GATE or2    2.6 O=a+b;           PIN * INV 1 999 1.2 0.0 1.2 0.0
GATE aoi21  2.8 O=!(a*b+c);      PIN * INV 1 999 1.3 0.0 1.3 0.0
GATE oai21  2.8 O=!((a+b)*c);    PIN * INV 1 999 1.3 0.0 1.3 0.0
GATE oai22  3.4 O=!((a+b)*(c+d)); PIN * INV 1 999 1.5 0.0 1.5 0.0
GATE xor2   4.2 O=a*!b+!a*b;     PIN * INV 1 999 1.5 0.0 1.5 0.0
GATE xnor2  4.2 O=a*b+!a*!b;     PIN * INV 1 999 1.5 0.0 1.5 0.0
|}

let report name lib net =
  let mapped = Synth_opt.Script.script_delay net ~lib in
  let model = Sta.mapped_delay () in
  Printf.printf "%-12s period %.2f | area %6.1f | gates %d\n" name
    (Sta.clock_period mapped model)
    (Techmap.Mapper.mapped_area mapped ~lib)
    (N.num_logic mapped);
  mapped

let () =
  let lib = Techmap.Genlib_io.parse_string ~name:"custom" custom_genlib in
  Printf.printf "parsed custom library: %d gates\n\n"
    (List.length lib.Techmap.Genlib.gates);

  let s27 = Circuits.S27.circuit () in
  print_endline "mapping s27 with both libraries:";
  let _ = report "mcnc_lite" Techmap.Genlib.mcnc_lite s27 in
  let mapped = report "custom" lib s27 in

  print_endline "\nresynthesis under the custom library:";
  let options = { Core.Resynth.default_options with Core.Resynth.lib } in
  let outcome = Core.Resynth.resynthesize ~options mapped in
  if outcome.Core.Resynth.applied then begin
    let model = Sta.mapped_delay () in
    Printf.printf
      "applied: period %.2f -> %.2f, registers %d -> %d (verified %b)\n"
      (Sta.clock_period mapped model)
      (Sta.clock_period outcome.Core.Resynth.network model)
      (N.num_latches mapped)
      (N.num_latches outcome.Core.Resynth.network)
      (Sim.Equiv.seq_equal mapped outcome.Core.Resynth.network)
  end
  else Printf.printf "declined: %s\n" outcome.Core.Resynth.note;

  (* the library writer round-trips *)
  let text = Techmap.Genlib_io.to_string lib in
  let reparsed = Techmap.Genlib_io.parse_string text in
  Printf.printf "\nlibrary printer round-trip: %d gates preserved\n"
    (List.length reparsed.Techmap.Genlib.gates)
