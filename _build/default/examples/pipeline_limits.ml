(* Section IV's negative result: the technique needs feedback.

   "Fully combinational I/O paths and pipelined circuits would not benefit
   from our technique" — the retiming-induced don't-cares come from register
   copies whose values re-enter the logic through feedback loops.  This
   example builds (a) a feed-forward pipeline and (b) a feedback circuit of
   the same size, and shows resynthesis declining on the former and engaging
   on the latter.

   Run with:  dune exec examples/pipeline_limits.exe *)

module N = Netlist.Network

let try_resynthesis label net =
  Printf.printf "== %s: %s\n" label (N.stats_string net);
  let mapped = Core.Flow.script_delay_flow net ~lib:Techmap.Genlib.mcnc_lite in
  let model = Sta.mapped_delay () in
  Printf.printf "   mapped period: %.2f\n" (Sta.clock_period mapped model);
  let outcome = Core.Resynth.resynthesize mapped in
  if outcome.Core.Resynth.applied then
    Printf.printf
      "   resynthesis APPLIED: period %.2f (splits %d, classes %d, moves %d)\n\n"
      (Sta.clock_period outcome.Core.Resynth.network model)
      outcome.Core.Resynth.stem_splits
      outcome.Core.Resynth.equivalence_classes
      outcome.Core.Resynth.forward_moves
  else Printf.printf "   resynthesis DECLINED: %s\n\n" outcome.Core.Resynth.note

let () =
  (* (a) a pipeline: registers flow strictly forward, no feedback, and each
     register has a single fanout - no stems to split *)
  let pipeline =
    Circuits.Generators.random_sequential ~seed:404
      { Circuits.Generators.default_profile with
        npi = 4;
        npo = 2;
        nlatch = 4;
        ngates = 16;
        feedback = false;
        stem_bias = 0.0 }
  in
  N.set_name_of_model pipeline "pipeline";
  N.sweep pipeline;
  try_resynthesis "feed-forward pipeline" pipeline;

  (* (b) same size class with FSM-style feedback and shared state registers *)
  let feedback =
    Circuits.Generators.random_sequential ~seed:404
      { Circuits.Generators.default_profile with
        npi = 4;
        npo = 2;
        nlatch = 4;
        ngates = 16;
        feedback = true;
        stem_bias = 0.6 }
  in
  N.set_name_of_model feedback "feedback";
  N.sweep feedback;
  try_resynthesis "feedback (FSM-style) circuit" feedback;

  print_endline
    "The paper's conclusion (Section IV): the equivalence relations only pay \
     off when\nfeedback loops let the copies' values correlate with the logic \
     being simplified."
