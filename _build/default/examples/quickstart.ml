(* Quickstart: the paper's Section III walkthrough.

   A small sequential circuit whose critical path is three 2-input gates.
   Conventional min-delay retiming reaches 2 gate delays; the paper's
   resynthesis (gate duplication + fanout-stem retiming + retiming engine +
   DC_ret simplification) reaches a single gate delay.

   Run with:  dune exec examples/quickstart.exe *)

module N = Netlist.Network

let show label net =
  Printf.printf "%-14s period %.1f | %d registers | %d gates\n" label
    (Sta.clock_period net Sta.unit_delay)
    (N.num_latches net) (N.num_logic net)

let () =
  print_endline "== The Section III circuit (Fig. 4a) ==";
  let net = Circuits.Paper_example.circuit () in
  show "original" net;
  let path = Sta.critical_path net Sta.unit_delay in
  Printf.printf "critical path: %s\n\n"
    (String.concat " -> " (List.map (fun n -> n.N.name) path));

  print_endline "== Conventional min-delay retiming (Fig. 4b) ==";
  (match Retiming.Minperiod.retime_min_period net ~model:Sta.unit_delay with
   | Ok (retimed, _) ->
     show "retimed" retimed;
     Printf.printf "equivalent to original: %b\n\n"
       (Sim.Equiv.seq_equal_bdd net retimed)
   | Error f ->
     Printf.printf "retiming failed: %s\n\n"
       (Retiming.Minperiod.failure_message f));

  print_endline "== The paper's resynthesis (Figs. 5-6) ==";
  let options =
    { Core.Resynth.default_options with
      Core.Resynth.model = Sta.unit_delay;
      remap = false }
  in
  let outcome = Core.Resynth.resynthesize ~options net in
  show "resynthesized" outcome.Core.Resynth.network;
  Printf.printf
    "mechanism: %d register(s) split across fanout stems, %d equivalence \
     class(es),\n           %d forward retiming moves, %d cone(s) simplified \
     using DC_ret\n"
    outcome.Core.Resynth.stem_splits outcome.Core.Resynth.equivalence_classes
    outcome.Core.Resynth.forward_moves outcome.Core.Resynth.simplified_cones;
  Printf.printf "equivalent to original: %b\n"
    (Sim.Equiv.seq_equal_bdd net outcome.Core.Resynth.network);

  print_endline "\nfinal netlist:";
  Format.printf "%a@." N.pp outcome.Core.Resynth.network
