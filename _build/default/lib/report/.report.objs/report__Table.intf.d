lib/report/table.mli: Core
