lib/report/table.ml: Buffer Circuits Core List Printf String
