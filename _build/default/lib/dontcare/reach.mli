(** Unreachable-state external don't-cares via implicit state enumeration
    (BDD reachability), the paper's baseline technique [23][24][25][26].

    The paper notes this is computationally prohibitive for large circuits;
    {!unreachable_states} therefore takes an effort cap and raises
    {!Too_large} beyond it, letting flows fall back gracefully. *)

exception Too_large of string

type result = {
  latch_order : Netlist.Network.node list;  (** variable order used *)
  reachable : Logic.Cover.t;   (** over latch variables in [latch_order] *)
  unreachable : Logic.Cover.t;
  num_reachable : float;
}

val unreachable_states :
  ?max_latches:int -> ?max_bdd_nodes:int -> Netlist.Network.t -> result
(** Fixpoint image computation from the initial state.  [Ix] initial values
    range over both binary values. *)

val simplify_with_unreachable :
  ?max_latches:int -> ?max_leaves:int -> Netlist.Network.t -> int
(** Simplify every latch data cone and primary-output cone using the
    unreachable-state DC set (restricted to the latch leaves of each cone).
    Returns the number of cones rebuilt; 0 when reachability is too large. *)
