(** Retiming-induced register-equivalence classes.

    Splitting a register across its fanout stem produces copies constrained
    to be equal at all times of valid operation (paper, Section II).  This
    module tracks those classes (a union-find over latch node ids) and turns
    them into don't-care covers ([ri XOR rj] terms, the paper's DC_ret) over
    a caller-supplied variable numbering. *)

type t

val create : unit -> t

val declare_equal : t -> Netlist.Network.node -> Netlist.Network.node -> unit
(** Both nodes must be latches. *)

val declare_class : t -> Netlist.Network.node list -> unit

val are_equal : t -> Netlist.Network.node -> Netlist.Network.node -> bool

val representative : t -> Netlist.Network.node -> int
(** Canonical latch id of the node's class (its own id if never declared). *)

val classes : t -> int list list
(** Non-trivial classes as lists of latch ids. *)

val dc_cover : t -> nvars:int -> var_of_latch:(int -> int option) -> Logic.Cover.t
(** The DC_ret cover: for every pair of equivalent latches that both map to a
    variable, the two cubes of [ri XOR rj].  Latches without a variable
    (outside the cone of interest) contribute nothing. *)

val drop_dead : t -> alive:(int -> bool) -> unit
(** Forget latches that no longer exist in the network. *)
