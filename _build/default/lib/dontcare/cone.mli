(** Collapsing combinational cones to SOPs over their leaves, and rebuilding
    simplified nodes.  This is the workhorse behind "simplify the next-state
    logic of the retimed register using DC_ret" (paper, Algorithm 1) and
    behind the baseline's external-don't-care simplification. *)

type collapsed = {
  root : Netlist.Network.node;
  leaves : Netlist.Network.node array;  (** leaf order = variable order *)
  cover : Logic.Cover.t;                (** root function over the leaves *)
}

exception Cone_too_wide of int

val collapse :
  ?max_leaves:int -> Netlist.Network.t -> Netlist.Network.node -> collapsed
(** Collapse the combinational cone of a logic node down to its latch, input
    and constant leaves (constants are folded, not treated as leaves).
    Raises {!Cone_too_wide} beyond [max_leaves] (default 14). *)

val rebuild :
  Netlist.Network.t -> collapsed -> Logic.Cover.t -> unit
(** Replace the root node's function by a new cover over the collapsed
    leaves, then sweep the network (the old cone interior dies if unused). *)

val simplify_root :
  ?max_leaves:int ->
  dc_for:(leaves:Netlist.Network.node array -> Logic.Cover.t) ->
  Netlist.Network.t -> Netlist.Network.node -> bool
(** Collapse, minimize with the don't-care cover supplied by [dc_for] (over
    the same leaf numbering), and rebuild if the result is cheaper (fewer
    literals) than the collapsed cover.  Returns whether a rebuild happened.
    Cones that are too wide are left untouched. *)
