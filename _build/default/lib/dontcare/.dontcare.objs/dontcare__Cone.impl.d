lib/dontcare/cone.ml: Array Bdd Hashtbl List Logic Netlist
