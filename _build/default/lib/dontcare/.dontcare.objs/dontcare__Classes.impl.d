lib/dontcare/classes.ml: Array Hashtbl List Logic Netlist
