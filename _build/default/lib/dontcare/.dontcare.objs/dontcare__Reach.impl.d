lib/dontcare/reach.ml: Array Bdd Cone Fun Hashtbl List Logic Netlist Printf
