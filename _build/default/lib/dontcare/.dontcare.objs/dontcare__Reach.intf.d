lib/dontcare/reach.mli: Logic Netlist
