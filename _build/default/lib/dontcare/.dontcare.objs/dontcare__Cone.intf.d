lib/dontcare/cone.mli: Logic Netlist
