lib/dontcare/classes.mli: Logic Netlist
