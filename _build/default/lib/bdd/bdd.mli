(** Reduced ordered binary decision diagrams with hash-consing.

    A {!man} owns the unique table and operation caches; {!t} values are node
    handles valid only within their manager.  The variable order is the
    natural integer order on variable indices. *)

type man

type t = private int
(** Node handle; structural equality of functions is handle equality. *)

val create : ?cache_size:int -> unit -> man

val bfalse : t
val btrue : t

val var : man -> int -> t
(** BDD of the single positive variable [i] ([i >= 0]). *)

val nvar : man -> int -> t

val bnot : man -> t -> t
val band : man -> t -> t -> t
val bor : man -> t -> t -> t
val bxor : man -> t -> t -> t
val bxnor : man -> t -> t -> t
val bimp : man -> t -> t -> t
val ite : man -> t -> t -> t -> t

val equal : t -> t -> bool
val is_true : t -> bool
val is_false : t -> bool

val cofactor : man -> t -> int -> bool -> t
(** Cofactor with respect to variable [i]. *)

val exists : man -> int list -> t -> t
(** Existential quantification over a set of variables. *)

val forall : man -> int list -> t -> t

val and_exists : man -> int list -> t -> t -> t
(** Relational product: [exists vars (a AND b)], computed without building the
    full conjunction. *)

val compose : man -> t -> int -> t -> t
(** [compose m f i g] substitutes [g] for variable [i] in [f]. *)

val rename : man -> t -> (int -> int) -> t
(** Variable renaming; the mapping must be strictly monotone on the support
    for correctness (checked by assertion on adjacent levels). *)

val support : man -> t -> int list
(** Variables the function depends on, ascending. *)

val size : man -> t -> int
(** Number of distinct internal nodes reachable from the handle. *)

val sat_count : man -> nvars:int -> t -> float
(** Number of satisfying assignments over [nvars] variables. *)

val any_sat : man -> t -> (int * bool) list
(** Some satisfying partial assignment; raises [Not_found] on [bfalse]. *)

val eval : man -> t -> (int -> bool) -> bool

val of_cover : man -> Logic.Cover.t -> t

exception Cover_too_large

val to_cover : ?max_cubes:int -> man -> nvars:int -> t -> Logic.Cover.t
(** One cube per 1-path of the diagram (a disjoint cover).  Every variable in
    the support must be below [nvars].  Raises {!Cover_too_large} when the
    path count exceeds [max_cubes]. *)

val node_count : man -> int
(** Total allocated nodes (diagnostics). *)
