(** Algebraic factoring of SOP covers into expression trees.

    Used to decompose node functions into 2-input gates and to rebuild
    structure after don't-care simplification. *)

type expr =
  | Const of bool
  | Lit of int * bool  (** variable index, phase ([true] = positive literal) *)
  | And of expr list
  | Or of expr list

val eval : expr -> bool array -> bool

val to_cover : int -> expr -> Cover.t
(** Flatten an expression back to an SOP over [n] variables (for checks). *)

val literal_count : expr -> int

val pp : Format.formatter -> expr -> unit

val divide_by_cube : Cover.t -> Cube.t -> Cover.t * Cover.t
(** Weak division [f / c]: quotient and remainder, [f = c*q + r]
    algebraically. *)

val divide : Cover.t -> Cover.t -> Cover.t * Cover.t
(** Weak division by a multi-cube divisor. *)

val cube_free : Cover.t -> bool
(** No literal common to all cubes. *)

val kernels : Cover.t -> (Cube.t * Cover.t) list
(** All (co-kernel, kernel) pairs, including the cover itself when it is
    cube-free (with the universe co-kernel). *)

val quick_factor : Cover.t -> expr
(** Literal-based recursive factoring (SIS [quick_factor] analogue). *)

val good_factor : Cover.t -> expr
(** Kernel-based factoring; falls back to {!quick_factor} on covers without
    useful kernels. *)
