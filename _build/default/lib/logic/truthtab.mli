(** Dense truth tables for functions of up to 20 variables.

    Bit [i] of the table is the function value on the point whose variable [v]
    equals bit [v] of [i].  Used as a reference semantics in tests and for
    small-node manipulations. *)

type t

val nvars : t -> int

val create : int -> (bool array -> bool) -> t

val of_cover : Cover.t -> t

val to_cover : t -> Cover.t
(** Minterm-canonical cover (one cube per ON point). *)

val const : int -> bool -> t

val var : int -> int -> t

val get : t -> int -> bool
(** Value on the minterm with the given index. *)

val eval : t -> bool array -> bool

val equal : t -> t -> bool

val count_ones : t -> int

val band : t -> t -> t
val bor : t -> t -> t
val bxor : t -> t -> t
val bnot : t -> t

val cofactor : t -> int -> bool -> t

val depends_on : t -> int -> bool
