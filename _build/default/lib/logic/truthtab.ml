type t = { n : int; bits : Bytes.t }

let nvars t = t.n

let size_bytes n = max 1 ((1 lsl n) / 8 + if (1 lsl n) mod 8 = 0 then 0 else 1)

let get t i = Char.code (Bytes.get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set bits i value =
  let byte = Char.code (Bytes.get bits (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  let byte = if value then byte lor mask else byte land lnot mask in
  Bytes.set bits (i lsr 3) (Char.chr byte)

let point_of_index n i = Array.init n (fun v -> i land (1 lsl v) <> 0)

let create n f =
  assert (n <= 20);
  let bits = Bytes.make (size_bytes n) '\000' in
  for i = 0 to (1 lsl n) - 1 do
    set bits i (f (point_of_index n i))
  done;
  { n; bits }

let of_cover cover = create cover.Cover.nvars (Cover.eval cover)

let to_cover t =
  let cubes = ref [] in
  for i = (1 lsl t.n) - 1 downto 0 do
    if get t i then cubes := Cube.minterm t.n (point_of_index t.n i) :: !cubes
  done;
  Cover.make t.n !cubes

let const n value = create n (fun _ -> value)

let var n v = create n (fun point -> point.(v))

let eval t point =
  let idx = ref 0 in
  for v = 0 to t.n - 1 do
    if point.(v) then idx := !idx lor (1 lsl v)
  done;
  get t !idx

let equal a b = a.n = b.n && Bytes.equal a.bits b.bits

let count_ones t =
  let count = ref 0 in
  for i = 0 to (1 lsl t.n) - 1 do
    if get t i then incr count
  done;
  !count

let map2 op a b =
  assert (a.n = b.n);
  let bits = Bytes.make (Bytes.length a.bits) '\000' in
  for i = 0 to Bytes.length bits - 1 do
    Bytes.set bits i
      (Char.chr (op (Char.code (Bytes.get a.bits i)) (Char.code (Bytes.get b.bits i))))
  done;
  { a with bits }

let band = map2 ( land )
let bor = map2 ( lor )
let bxor = map2 ( lxor )

let bnot a =
  let out = create a.n (fun _ -> false) in
  for i = 0 to (1 lsl a.n) - 1 do
    set out.bits i (not (get a i))
  done;
  out

let cofactor t v value =
  create t.n (fun point ->
      let p = Array.copy point in
      p.(v) <- value;
      eval t p)

let depends_on t v = not (equal (cofactor t v true) (cofactor t v false))
