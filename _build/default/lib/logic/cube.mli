(** Cubes: products of literals over a fixed set of Boolean variables.

    A cube assigns to each variable one of three values: the variable appears
    as a negative literal ({!Zero}), as a positive literal ({!One}), or not at
    all ({!Both}, i.e. the cube does not depend on it).  A cube denotes the
    set of minterms consistent with its literals. *)

type lit = Zero | One | Both

type t = lit array
(** Cubes are fixed-width literal arrays; index = variable number.  Treat
    values as immutable: every exported operation returns a fresh cube. *)

val universe : int -> t
(** [universe n] is the full cube over [n] variables (tautology product). *)

val of_string : string -> t
(** [of_string "01-"] parses a cube: ['0'] negative, ['1'] positive, ['-']
    absent.  Raises [Invalid_argument] on other characters. *)

val to_string : t -> string

val minterm : int -> bool array -> t
(** [minterm n point] is the cube containing exactly [point]. *)

val nvars : t -> int

val lit_count : t -> int
(** Number of variables appearing as literals (non-[Both] positions). *)

val is_minterm : t -> bool

val equal : t -> t -> bool

val compare : t -> t -> int

val contains : t -> t -> bool
(** [contains a b] is true when every minterm of [b] is in [a] (single-cube
    containment: [a]'s literals are a subset of [b]'s). *)

val intersect : t -> t -> t option
(** Product of two cubes; [None] when they are disjoint (opposing literals). *)

val distance : t -> t -> int
(** Number of variables on which the cubes have opposing literals.  Zero means
    they intersect; one means consensus exists. *)

val consensus : t -> t -> t option
(** Consensus on the single conflicting variable, when [distance] is 1. *)

val supercube : t -> t -> t
(** Smallest cube containing both arguments. *)

val cofactor : t -> int -> lit -> t option
(** [cofactor c v value] is the cofactor of [c] with respect to the literal
    [v=value]; [None] if [c] has the opposing literal.  [value] must not be
    [Both]. *)

val eval : t -> bool array -> bool
(** Membership of a minterm, given as a point. *)

val raise_var : t -> int -> t
(** Copy with variable [v] raised to [Both]. *)

val set_var : t -> int -> lit -> t
(** Copy with variable [v] set to the given literal. *)

val depends_on : t -> int -> bool

val pp : Format.formatter -> t -> unit
