lib/logic/factor.mli: Cover Cube Format
