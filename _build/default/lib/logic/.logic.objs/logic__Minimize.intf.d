lib/logic/minimize.mli: Cover
