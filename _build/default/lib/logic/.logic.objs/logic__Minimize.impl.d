lib/logic/minimize.ml: Array Cover Cube List Set
