lib/logic/truthtab.ml: Array Bytes Char Cover Cube
