lib/logic/truthtab.mli: Cover
