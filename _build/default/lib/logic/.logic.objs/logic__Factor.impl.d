lib/logic/factor.ml: Array Cover Cube Format Hashtbl List Set
