lib/logic/cover.ml: Array Cube Format Fun List
