lib/logic/cube.ml: Array Format Printf Stdlib String
