(** Two-level minimization with don't-cares (espresso-lite).

    Implements the classical expand / irredundant / reduce loop over an
    ON-set cover [f] and a DC-set cover [dc].  The result covers exactly the
    minterms of [f] outside [dc], may absorb any minterm of [dc], and never
    intersects the OFF-set. *)

val expand : off:Cover.t -> Cover.t -> Cover.t
(** Raise each cube's literals greedily as long as the expanded cube stays
    disjoint from [off]; then drop single-cube-contained cubes. *)

val irredundant : dc:Cover.t -> Cover.t -> Cover.t
(** Remove cubes covered by the rest of the cover plus [dc]. *)

val reduce : dc:Cover.t -> Cover.t -> Cover.t
(** Shrink each cube to the supercube of its essential part. *)

val minimize : ?dc:Cover.t -> Cover.t -> Cover.t
(** Full loop until the (cube count, literal count) cost stops improving. *)

val minimize_exact_small : ?dc:Cover.t -> Cover.t -> Cover.t
(** Quine–McCluskey style exact minimization for small variable counts
    (<= 10); used by tests as a reference and by node remapping when cheap. *)
