(** Finite-state-machine benchmarks.

    The MCNC FSM benchmarks (bbtas, bbara, planet, ex2, ex6...) are state
    transition tables.  We cannot redistribute the originals, so this module
    generates deterministic, completely-specified Mealy machines of matching
    size class and synthesizes them into networks with binary state encoding
    — real FSM circuits with feedback and multi-fanout state registers, the
    structure the paper's technique feeds on (see DESIGN.md). *)

type transition = {
  from_state : int;
  input_cube : Logic.Cube.t;   (** over the machine's inputs *)
  to_state : int;
  outputs : bool array;
}

type t = {
  name : string;
  nstates : int;
  ninputs : int;
  noutputs : int;
  transitions : transition list;
}

val random :
  ?max_depth:int ->
  seed:int -> name:string -> nstates:int -> ninputs:int -> noutputs:int ->
  unit -> t
(** Deterministic and complete: for every state the input cubes partition
    the input space (generated as a random decision tree of depth at most
    [max_depth], default 2 — real MCNC controllers branch on one or two
    inputs per state). *)

val check_complete : t -> bool
(** Every (state, input point) is matched by exactly one transition. *)

val state_bits : t -> int

val to_network : t -> Netlist.Network.t
(** Binary state encoding; latches initialized to state 0's code; one SOP
    node per next-state bit and per output. *)
