(** The ISCAS'89 benchmark s27, hardcoded from its published netlist
    (4 inputs, 1 output, 3 flip-flops, 10 gates + 2 inverters).
    The one benchmark small and public enough to reproduce verbatim. *)

val circuit : unit -> Netlist.Network.t
