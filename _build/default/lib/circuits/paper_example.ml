module N = Netlist.Network

let and_cover = Logic.Cover.of_strings 2 [ "11" ]
let or_cover = Logic.Cover.of_strings 2 [ "1-"; "-1" ]

(* Next-state equations (all registers initialized to 0):
     Y1 = a * y1                (gate ga: self-feedback)
     Y2 = y1 + b                (gate gb: reads y1)
     Y3 = (y1*y2 + y3) * (y1*y2)   via the path g1 = y1*y2, g2 = g1 + y3,
                                    g3 = g2 * g1  (g1 has two fanouts)
   Output: o = y3.

   Critical path g1 -> g2 -> g3 has 3 gate delays.  The best conventional
   retiming is 2 (the g2/g3/y3 feedback cycle holds one register over two
   gates of delay).  Resynthesis collapses Y3 to a*y1 after exploiting
   y1-copy equivalence, reaching 1 gate delay. *)
let circuit () =
  let net = N.create ~name:"paper_example" () in
  let a = N.add_input net "a" in
  let b = N.add_input net "b" in
  let y1 = N.add_latch net ~name:"y1" N.I0 a in
  let y2 = N.add_latch net ~name:"y2" N.I0 a in
  let y3 = N.add_latch net ~name:"y3" N.I0 a in
  let ga = N.add_logic net ~name:"ga" and_cover [ a; y1 ] in
  let gb = N.add_logic net ~name:"gb" or_cover [ y1; b ] in
  let g1 = N.add_logic net ~name:"g1" and_cover [ y1; y2 ] in
  let g2 = N.add_logic net ~name:"g2" or_cover [ g1; y3 ] in
  let g3 = N.add_logic net ~name:"g3" and_cover [ g2; g1 ] in
  N.replace_fanin net y1 ~old_fanin:a ~new_fanin:ga;
  N.replace_fanin net y2 ~old_fanin:a ~new_fanin:gb;
  N.replace_fanin net y3 ~old_fanin:a ~new_fanin:g3;
  N.set_output net "o" y3;
  N.check net;
  net

let expected_original_delay = 3.0
let expected_retimed_delay = 2.0
let expected_resynthesized_delay = 1.0
