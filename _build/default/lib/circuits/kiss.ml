type term = {
  input : Logic.Cube.t;
  current : string;
  next : string;
  output : string;
}

type t = {
  ninputs : int;
  noutputs : int;
  states : string list;
  reset : string;
  terms : term list;
}

let parse_string text =
  let lines = String.split_on_char '\n' text in
  let ninputs = ref (-1) and noutputs = ref (-1) in
  let reset = ref None in
  let terms = ref [] in
  let states = ref [] in
  let note_state s = if not (List.mem s !states) then states := s :: !states in
  List.iteri
    (fun lineno line ->
      let fail msg = failwith (Printf.sprintf "kiss:%d: %s" (lineno + 1) msg) in
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let tokens =
        String.split_on_char ' ' line
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun s -> s <> "")
      in
      match tokens with
      | [] -> ()
      | ".i" :: [ n ] -> ninputs := int_of_string n
      | ".o" :: [ n ] -> noutputs := int_of_string n
      | ".p" :: _ | ".s" :: _ -> () (* verified after parsing *)
      | ".r" :: [ s ] -> reset := Some s
      | ".e" :: _ | ".end" :: _ -> ()
      | [ input; current; next; output ] ->
        if !ninputs < 0 || !noutputs < 0 then
          fail "transition before .i/.o headers";
        if String.length input <> !ninputs then fail "input cube width";
        if String.length output <> !noutputs then fail "output width";
        String.iter
          (fun c -> if c <> '0' && c <> '1' && c <> '-' then fail "bad output bit")
          output;
        let cube =
          try Logic.Cube.of_string input
          with Invalid_argument m -> fail m
        in
        note_state current;
        note_state next;
        terms := { input = cube; current; next; output } :: !terms
      | w :: _ -> fail ("unexpected token " ^ w))
    lines;
  if !ninputs < 0 || !noutputs < 0 then failwith "kiss: missing .i/.o";
  let terms = List.rev !terms in
  let states = List.rev !states in
  let reset =
    match !reset, states with
    | Some r, _ ->
      if not (List.mem r states) then failwith "kiss: unknown reset state";
      r
    | None, first :: _ -> first
    | None, [] -> failwith "kiss: no transitions"
  in
  { ninputs = !ninputs; noutputs = !noutputs; states; reset; terms }

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string text

let to_string t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf ".i %d\n.o %d\n" t.ninputs t.noutputs);
  Buffer.add_string buf (Printf.sprintf ".p %d\n" (List.length t.terms));
  Buffer.add_string buf (Printf.sprintf ".s %d\n" (List.length t.states));
  Buffer.add_string buf (Printf.sprintf ".r %s\n" t.reset);
  List.iter
    (fun term ->
      Buffer.add_string buf
        (Printf.sprintf "%s %s %s %s\n"
           (Logic.Cube.to_string term.input)
           term.current term.next term.output))
    t.terms;
  Buffer.add_string buf ".e\n";
  Buffer.contents buf

let write_file path t =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

let to_fsm ~name t =
  (* reset state first so the all-zeros initial code selects it *)
  let ordered = t.reset :: List.filter (fun s -> s <> t.reset) t.states in
  let index s =
    let rec find i = function
      | [] -> failwith ("kiss: unknown state " ^ s)
      | x :: rest -> if x = s then i else find (i + 1) rest
    in
    find 0 ordered
  in
  let transitions =
    List.map
      (fun term ->
        { Fsm.from_state = index term.current;
          input_cube = term.input;
          to_state = index term.next;
          outputs =
            Array.init (String.length term.output) (fun i ->
                term.output.[i] = '1') })
      t.terms
  in
  { Fsm.name;
    nstates = List.length ordered;
    ninputs = t.ninputs;
    noutputs = t.noutputs;
    transitions }

let of_fsm (m : Fsm.t) =
  let state i = Printf.sprintf "st%d" i in
  let terms =
    List.map
      (fun tr ->
        { input = tr.Fsm.input_cube;
          current = state tr.Fsm.from_state;
          next = state tr.Fsm.to_state;
          output =
            String.init (Array.length tr.Fsm.outputs) (fun i ->
                if tr.Fsm.outputs.(i) then '1' else '0') })
      m.Fsm.transitions
  in
  { ninputs = m.Fsm.ninputs;
    noutputs = m.Fsm.noutputs;
    states = List.init m.Fsm.nstates state;
    reset = state 0;
    terms }

let to_network ~name t = Fsm.to_network (to_fsm ~name t)
