lib/circuits/suite.mli: Netlist
