lib/circuits/generators.ml: Array Fun List Logic Netlist Printf Random
