lib/circuits/paper_example.mli: Netlist
