lib/circuits/kiss.ml: Array Buffer Fsm List Logic Printf String
