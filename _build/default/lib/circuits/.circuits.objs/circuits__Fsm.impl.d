lib/circuits/fsm.ml: Array Fun List Logic Netlist Printf Random
