lib/circuits/fsm.mli: Logic Netlist
