lib/circuits/generators.mli: Netlist
