lib/circuits/kiss.mli: Fsm Logic Netlist
