lib/circuits/paper_example.ml: Logic Netlist
