lib/circuits/s27.mli: Netlist
