lib/circuits/suite.ml: Fsm Generators List Netlist S27
