lib/circuits/s27.ml: Logic Netlist
