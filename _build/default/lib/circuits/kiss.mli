(** KISS2 state-transition-table reader/writer (the MCNC FSM benchmark
    format: [.i/.o/.p/.s/.r] headers and
    [input-cube current-state next-state output-bits] lines).

    Output bits may be ['-'] in KISS2; {!to_fsm} completes them to 0 (a
    legal implementation choice, noted in DESIGN.md). *)

type term = {
  input : Logic.Cube.t;
  current : string;
  next : string;
  output : string;  (** characters '0' | '1' | '-' *)
}

type t = {
  ninputs : int;
  noutputs : int;
  states : string list;  (** in order of first appearance *)
  reset : string;
  terms : term list;
}

val parse_string : string -> t
(** Raises [Failure] with a line-numbered message on malformed input. *)

val parse_file : string -> t

val to_string : t -> string

val write_file : string -> t -> unit

val to_fsm : name:string -> t -> Fsm.t
(** States are numbered with the reset state first (so the synthesized
    network initializes into it). *)

val of_fsm : Fsm.t -> t

val to_network : name:string -> t -> Netlist.Network.t
(** [Fsm.to_network] of {!to_fsm}. *)
