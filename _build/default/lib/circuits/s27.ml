module N = Netlist.Network

let not_c = Logic.Cover.of_strings 1 [ "0" ]
let and_c = Logic.Cover.of_strings 2 [ "11" ]
let or_c = Logic.Cover.of_strings 2 [ "1-"; "-1" ]
let nand_c = Logic.Cover.of_strings 2 [ "0-"; "-0" ]
let nor_c = Logic.Cover.of_strings 2 [ "00" ]

(* ISCAS'89 s27:
     G5 = DFF(G10)   G6 = DFF(G11)   G7 = DFF(G13)
     G14 = NOT(G0)       G17 = NOT(G11)
     G8  = AND(G14, G6)  G15 = OR(G12, G8)   G16 = OR(G3, G8)
     G9  = NAND(G16, G15)
     G10 = NOR(G14, G11) G11 = NOR(G5, G9)
     G12 = NOR(G1, G7)   G13 = NAND(G2, G12)
   All flip-flops initialize to 0. *)
let circuit () =
  let net = N.create ~name:"s27" () in
  let g0 = N.add_input net "G0" in
  let g1 = N.add_input net "G1" in
  let g2 = N.add_input net "G2" in
  let g3 = N.add_input net "G3" in
  let g5 = N.add_latch net ~name:"G5" N.I0 g0 in
  let g6 = N.add_latch net ~name:"G6" N.I0 g0 in
  let g7 = N.add_latch net ~name:"G7" N.I0 g0 in
  let g14 = N.add_logic net ~name:"G14" not_c [ g0 ] in
  let g12 = N.add_logic net ~name:"G12" nor_c [ g1; g7 ] in
  let g8 = N.add_logic net ~name:"G8" and_c [ g14; g6 ] in
  let g15 = N.add_logic net ~name:"G15" or_c [ g12; g8 ] in
  let g16 = N.add_logic net ~name:"G16" or_c [ g3; g8 ] in
  let g9 = N.add_logic net ~name:"G9" nand_c [ g16; g15 ] in
  let g11 = N.add_logic net ~name:"G11" nor_c [ g5; g9 ] in
  let g10 = N.add_logic net ~name:"G10" nor_c [ g14; g11 ] in
  let g13 = N.add_logic net ~name:"G13" nand_c [ g2; g12 ] in
  let g17 = N.add_logic net ~name:"G17" not_c [ g11 ] in
  N.replace_fanin net g5 ~old_fanin:g0 ~new_fanin:g10;
  N.replace_fanin net g6 ~old_fanin:g0 ~new_fanin:g11;
  N.replace_fanin net g7 ~old_fanin:g0 ~new_fanin:g13;
  N.set_output net "G17" g17;
  N.check net;
  net
