(** The Section III walkthrough circuit (Figs. 4-6 of the paper),
    reconstructed: an optimized sequential circuit whose critical path is 3
    two-input gates.  Conventional min-delay retiming reaches 2 gate delays;
    the paper's resynthesis — gate duplication, fanout-stem retiming of the
    state registers, forward retiming across the path, and DC_ret
    simplification — reaches a single gate delay.

    The published equations are not recoverable from the archival scan, so
    the circuit here is engineered to exercise the identical mechanism: a
    multi-fanout gate on the critical path (forcing duplication), state
    registers with multiple fanouts (the stems to split), feedback through
    the state registers (so the collapsed next-state cone sees two members
    of an equivalence class), and an absorption-style simplification enabled
    by the retiming-induced don't-cares. *)

val circuit : unit -> Netlist.Network.t
(** Unit-delay view; 3 registers, critical path of 3 gates. *)

val expected_original_delay : float
(** 3.0 *)

val expected_retimed_delay : float
(** 2.0 *)

val expected_resynthesized_delay : float
(** 1.0 *)
