(** Deterministic random sequential circuit generators.

    Used by tests (behaviour-preservation properties need arbitrary circuits)
    and by the benchmark suite (synthetic stand-ins for MCNC/ISCAS'89
    netlists; see DESIGN.md for the substitution rationale). *)

type profile = {
  npi : int;
  npo : int;
  nlatch : int;
  ngates : int;
  max_fanin : int;  (** 2..4 *)
  feedback : bool;
      (** when true, latch data inputs are drawn from the whole circuit
          (FSM-style feedback); when false the circuit is a pipeline *)
  stem_bias : float;
      (** probability weight pushing latch outputs to acquire multiple
          fanouts (the resource the paper's technique exploits) *)
}

val default_profile : profile

val random_sequential : seed:int -> profile -> Netlist.Network.t
(** All latches get binary initial values.  Every output is driven; the
    network passes [Network.check]. *)

val random_combinational : seed:int -> npi:int -> npo:int -> ngates:int -> Netlist.Network.t
