(** Structural Verilog writer.

    Emits a synthesizable module: one [assign] per logic node (sum-of-
    products expression over its fanins), one [always @(posedge clk)] block
    for the registers, and an [initial] block loading the declared initial
    values ([x] initial values are left unassigned).  A [clk] port is added;
    signal names are sanitized to Verilog identifiers. *)

val to_string : Network.t -> string

val write_file : string -> Network.t -> unit
