let canonical_key net n =
  let cover = Network.cover_of n in
  let cubes =
    List.sort_uniq compare (List.map Logic.Cube.to_string cover.Logic.Cover.cubes)
  in
  ignore net;
  String.concat "|" cubes
  ^ "@"
  ^ String.concat ","
      (List.map string_of_int (Array.to_list n.Network.fanins))

let run net =
  let eliminated = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    let table = Hashtbl.create 256 in
    List.iter
      (fun n ->
        match Network.node_opt net n.Network.id with
        | Some n when Network.is_logic n ->
          let key = canonical_key net n in
          (match Hashtbl.find_opt table key with
           | None -> Hashtbl.add table key n
           | Some representative ->
             Network.transfer_fanouts net ~from:n ~to_:representative;
             Network.delete net n;
             incr eliminated;
             changed := true)
        | Some _ | None -> ())
      (Network.topo_combinational net)
  done;
  !eliminated
