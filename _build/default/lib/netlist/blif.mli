(** BLIF reader and writer for the subset used by the tool: [.model],
    [.inputs], [.outputs], [.names] with cover lines, [.latch] (with optional
    initial value), [.end].  Comments ([#]) and line continuations ([\])
    are handled. *)

val parse_string : string -> Network.t
(** Raises [Failure] with a line-numbered message on malformed input. *)

val parse_file : string -> Network.t

val to_string : Network.t -> string

val write_file : string -> Network.t -> unit
