(** Structural hashing: merge logic nodes that compute the same SOP over the
    same fanins (up to cube order).  Run after duplication-heavy passes
    (the resynthesis algorithm duplicates gates along the critical path; the
    copies frequently become identical again after simplification). *)

val run : Network.t -> int
(** Merge identical nodes to a fixpoint; returns the number of nodes
    eliminated. *)
