lib/netlist/strash.mli: Network
