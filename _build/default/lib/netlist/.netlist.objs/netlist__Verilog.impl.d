lib/netlist/verilog.ml: Array Buffer Hashtbl List Logic Network Printf String
