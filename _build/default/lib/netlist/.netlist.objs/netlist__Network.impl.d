lib/netlist/network.ml: Array Format Hashtbl List Logic Printf String
