lib/netlist/strash.ml: Array Hashtbl List Logic Network String
