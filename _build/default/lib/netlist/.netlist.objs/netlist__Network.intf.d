lib/netlist/network.mli: Format Logic
