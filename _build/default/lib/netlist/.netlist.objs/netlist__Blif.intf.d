lib/netlist/blif.mli: Network
