lib/netlist/blif.ml: Buffer Hashtbl List Logic Network Printf String
