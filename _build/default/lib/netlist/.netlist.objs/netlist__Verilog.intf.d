lib/netlist/verilog.mli: Network
