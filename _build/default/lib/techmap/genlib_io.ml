(* --- expression AST and parser ------------------------------------------------- *)

type expr =
  | Const of bool
  | Var of string
  | Not of expr
  | And of expr * expr
  | Or of expr * expr

type token =
  | Tident of string
  | Tbang
  | Tstar
  | Tplus
  | Tlparen
  | Trparen

let tokenize s =
  let tokens = ref [] in
  let i = ref 0 in
  let n = String.length s in
  while !i < n do
    (match s.[!i] with
     | ' ' | '\t' -> ()
     | '!' -> tokens := Tbang :: !tokens
     | '*' -> tokens := Tstar :: !tokens
     | '+' -> tokens := Tplus :: !tokens
     | '(' -> tokens := Tlparen :: !tokens
     | ')' -> tokens := Trparen :: !tokens
     | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' ->
       let start = !i in
       while
         !i + 1 < n
         && (match s.[!i + 1] with
             | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
             | _ -> false)
       do
         incr i
       done;
       tokens := Tident (String.sub s start (!i - start + 1)) :: !tokens
     | c -> failwith (Printf.sprintf "genlib: bad character %c in expression" c));
    incr i
  done;
  List.rev !tokens

(* Grammar: expr is a sum of terms; a term is a product of factors joined by
   star or by juxtaposition (some genlib dialects write [ab] for [a*b]);
   a factor is a negation, a parenthesized expr, or an identifier. *)
let parse_expr tokens =
  let stream = ref tokens in
  let peek () = match !stream with [] -> None | t :: _ -> Some t in
  let advance () = match !stream with [] -> () | _ :: rest -> stream := rest in
  let rec expr () =
    let left = term () in
    match peek () with
    | Some Tplus ->
      advance ();
      Or (left, expr ())
    | Some (Tident _ | Tbang | Tstar | Tlparen | Trparen) | None -> left
  and term () =
    let left = factor () in
    match peek () with
    | Some Tstar ->
      advance ();
      And (left, term ())
    | Some (Tident _ | Tbang | Tlparen) ->
      (* juxtaposition *)
      And (left, term ())
    | Some (Tplus | Trparen) | None -> left
  and factor () =
    match peek () with
    | Some Tbang ->
      advance ();
      Not (factor ())
    | Some Tlparen ->
      advance ();
      let e = expr () in
      (match peek () with
       | Some Trparen -> advance (); e
       | _ -> failwith "genlib: missing )")
    | Some (Tident "CONST0") -> advance (); Const false
    | Some (Tident "CONST1") -> advance (); Const true
    | Some (Tident name) -> advance (); Var name
    | Some (Tstar | Tplus | Trparen) | None ->
      failwith "genlib: expected a factor"
  in
  let e = expr () in
  if !stream <> [] then failwith "genlib: trailing tokens in expression";
  e

(* Input pins are ordered alphabetically (the format carries no pin order;
   alphabetical ordering makes printing and re-parsing stable). *)
let rec vars_of acc = function
  | Const _ -> acc
  | Var v -> if List.mem v acc then acc else v :: acc
  | Not e -> vars_of acc e
  | And (a, b) | Or (a, b) -> vars_of (vars_of acc a) b

let sorted_vars e = List.sort compare (vars_of [] e)

let rec eval_expr env = function
  | Const b -> b
  | Var v -> List.assoc v env
  | Not e -> not (eval_expr env e)
  | And (a, b) -> eval_expr env a && eval_expr env b
  | Or (a, b) -> eval_expr env a || eval_expr env b

(* --- pattern derivation ---------------------------------------------------------- *)

(* Build a NAND2/INV pattern with polarity tracking so no useless double
   inverters appear; [Inv (Inv p)] would never match a subject graph. *)
let pattern_of_expr var_index e =
  let rec go = function
    (* returns (pattern, inverted) *)
    | Const _ -> failwith "genlib: constant gate functions are not mappable"
    | Var v -> (Genlib.Leaf (List.assoc v var_index), false)
    | Not e ->
      let p, inv = go e in
      (p, not inv)
    | And (a, b) ->
      let pa = positive (go a) and pb = positive (go b) in
      (Genlib.Nand (pa, pb), true)
    | Or (a, b) ->
      let pa = negative (go a) and pb = negative (go b) in
      (Genlib.Nand (pa, pb), false)
  and positive (p, inv) = if inv then Genlib.Inv p else p
  and negative (p, inv) = if inv then p else Genlib.Inv p in
  positive (go e)

(* --- gate lines ------------------------------------------------------------------- *)

let parse_gate_body ~name ~area ~expr_text ~pin_delays =
  let e = parse_expr (tokenize expr_text) in
  let vars = sorted_vars e in
  let ninputs = List.length vars in
  if ninputs = 0 then failwith ("genlib: gate " ^ name ^ " has no inputs");
  if ninputs > 6 then failwith ("genlib: gate " ^ name ^ " has too many inputs");
  let var_index = List.mapi (fun i v -> (v, i)) vars in
  let tt =
    Logic.Truthtab.create ninputs (fun point ->
        eval_expr (List.map (fun (v, i) -> (v, point.(i))) var_index) e)
  in
  let cover = Logic.Minimize.minimize (Logic.Truthtab.to_cover tt) in
  let pattern = pattern_of_expr var_index e in
  let derived = Genlib.pattern_cover ninputs pattern in
  if not (Logic.Cover.equivalent derived cover) then
    failwith ("genlib: internal pattern mismatch for gate " ^ name);
  let delay = List.fold_left max 0.0 pin_delays in
  let delay = if delay = 0.0 then 1.0 else delay in
  { Genlib.gate_name = name; area; delay; ninputs; cover; pattern }

let parse_string ?(name = "genlib") ?(latch_area = 8.0) ?(latch_setup = 0.2)
    text =
  (* Join the text and split on the GATE keyword so a gate's PIN lines stay
     with it regardless of line breaks. *)
  let no_comments =
    String.split_on_char '\n' text
    |> List.map (fun line ->
           match String.index_opt line '#' with
           | Some i -> String.sub line 0 i
           | None -> line)
    |> String.concat "\n"
  in
  let chunks =
    (* split at "GATE" keywords on token boundaries; text before the first
       keyword is dropped (headers/blank space) *)
    let word = "GATE" in
    let n = String.length no_comments and w = String.length word in
    let is_boundary i =
      i < 0 || i >= n
      || (match no_comments.[i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    in
    let starts = ref [] in
    for i = 0 to n - w do
      if String.sub no_comments i w = word && is_boundary (i - 1)
         && is_boundary (i + w)
      then starts := i :: !starts
    done;
    let starts = List.rev !starts in
    let rec cut = function
      | [] -> []
      | [ s ] -> [ String.sub no_comments (s + w) (n - s - w) ]
      | s :: (s2 :: _ as rest) ->
        String.sub no_comments (s + w) (s2 - s - w) :: cut rest
    in
    cut starts
  in
  let gates =
    List.filter_map
      (fun chunk ->
        let chunk = String.trim chunk in
        if chunk = "" then None
        else begin
          (* NAME AREA OUT=EXPR ; PIN ... *)
          match String.index_opt chunk '=' with
          | None -> failwith "genlib: GATE line without '='"
          | Some eq ->
            let semi =
              match String.index_from_opt chunk eq ';' with
              | Some i -> i
              | None -> failwith "genlib: GATE expression missing ';'"
            in
            let head = String.sub chunk 0 eq in
            let head_tokens =
              String.split_on_char ' ' head
              |> List.concat_map (String.split_on_char '\t')
              |> List.concat_map (String.split_on_char '\n')
              |> List.filter (fun s -> s <> "")
            in
            let gate_name, area =
              match head_tokens with
              | [ n; a; _out ] -> (n, float_of_string a)
              | _ -> failwith "genlib: malformed GATE header"
            in
            let expr_text = String.sub chunk (eq + 1) (semi - eq - 1) in
            (* PIN lines: capture block delays (fields 5 and 7 after PIN) *)
            let rest = String.sub chunk (semi + 1) (String.length chunk - semi - 1) in
            let pin_delays =
              String.split_on_char '\n' rest
              |> List.concat_map (fun line ->
                     let toks =
                       String.split_on_char ' ' line
                       |> List.concat_map (String.split_on_char '\t')
                       |> List.filter (fun s -> s <> "")
                     in
                     match toks with
                     | "PIN" :: _ :: _ :: _ :: _ :: rise :: _ :: fall :: _ ->
                       [ float_of_string rise; float_of_string fall ]
                     | "PIN" :: _ -> failwith "genlib: malformed PIN line"
                     | _ -> [])
            in
            Some (parse_gate_body ~name:gate_name ~area ~expr_text ~pin_delays)
        end)
      chunks
  in
  if gates = [] then failwith "genlib: no gates";
  { Genlib.lib_name = name; gates; latch_area; latch_setup }

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string ~name:(Filename.basename path) text

(* --- printing ---------------------------------------------------------------------- *)

let expr_string_of_cover cover =
  let factored = Logic.Factor.good_factor cover in
  let var i = String.make 1 (Char.chr (Char.code 'a' + i)) in
  let rec print = function
    | Logic.Factor.Const true -> "CONST1"
    | Logic.Factor.Const false -> "CONST0"
    | Logic.Factor.Lit (v, true) -> var v
    | Logic.Factor.Lit (v, false) -> "!" ^ var v
    | Logic.Factor.And es -> String.concat "*" (List.map atom es)
    | Logic.Factor.Or es -> String.concat "+" (List.map print es)
  and atom e =
    match e with
    | Logic.Factor.Or (_ :: _ :: _) -> "(" ^ print e ^ ")"
    | Logic.Factor.Or _ | Logic.Factor.Const _ | Logic.Factor.Lit _
    | Logic.Factor.And _ ->
      print e
  in
  print factored

let to_string lib =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "# library %s\n" lib.Genlib.lib_name);
  List.iter
    (fun g ->
      Buffer.add_string buf
        (Printf.sprintf "GATE %s %.2f O=%s;\n  PIN * INV 1 999 %.2f 0.0 %.2f 0.0\n"
           g.Genlib.gate_name g.Genlib.area
           (expr_string_of_cover g.Genlib.cover)
           g.Genlib.delay g.Genlib.delay))
    lib.Genlib.gates;
  Buffer.contents buf

let write_file path lib =
  let oc = open_out path in
  output_string oc (to_string lib);
  close_out oc
