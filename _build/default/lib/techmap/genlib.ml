type pattern =
  | Leaf of int
  | Inv of pattern
  | Nand of pattern * pattern

type gate = {
  gate_name : string;
  area : float;
  delay : float;
  ninputs : int;
  cover : Logic.Cover.t;
  pattern : pattern;
}

type t = {
  lib_name : string;
  gates : gate list;
  latch_area : float;
  latch_setup : float;
}

let rec eval_pattern p point =
  match p with
  | Leaf i -> point.(i)
  | Inv q -> not (eval_pattern q point)
  | Nand (a, b) -> not (eval_pattern a point && eval_pattern b point)

let pattern_cover n p =
  Logic.Truthtab.to_cover (Logic.Truthtab.create n (eval_pattern p))

let mk name area delay ninputs cover_strings pattern =
  { gate_name = name;
    area;
    delay;
    ninputs;
    cover = Logic.Cover.of_strings ninputs cover_strings;
    pattern }

let l0 = Leaf 0
let l1 = Leaf 1
let l2 = Leaf 2
let l3 = Leaf 3

(* and2 as a pattern fragment *)
let pand a b = Inv (Nand (a, b))
let por a b = Nand (Inv a, Inv b)

let mcnc_lite =
  let gates =
    [ mk "inv" 1.0 1.0 1 [ "0" ] (Inv l0);
      mk "buf" 2.0 1.0 1 [ "1" ] (Inv (Inv l0));
      mk "nand2" 2.0 1.0 2 [ "0-"; "-0" ] (Nand (l0, l1));
      mk "nand3" 3.0 1.2 3
        [ "0--"; "-0-"; "--0" ]
        (Nand (l0, pand l1 l2));
      mk "nand4" 4.0 1.4 4
        [ "0---"; "-0--"; "--0-"; "---0" ]
        (Nand (pand l0 l1, pand l2 l3));
      mk "nor2" 2.0 1.1 2 [ "00" ] (Inv (por l0 l1));
      mk "nor3" 3.0 1.4 3 [ "000" ] (Inv (por l0 (por l1 l2)));
      mk "and2" 3.0 1.3 2 [ "11" ] (pand l0 l1);
      mk "or2" 3.0 1.3 2 [ "1-"; "-1" ] (por l0 l1);
      (* aoi21 = (x0*x1 + x2)' = x0'x2' + x1'x2' *)
      mk "aoi21" 3.0 1.4 3 [ "0-0"; "-00" ]
        (Inv (Nand (Nand (l0, l1), Inv l2)));
      (* oai21 = ((x0+x1)*x2)' = x0'x1' + x2' *)
      mk "oai21" 3.0 1.4 3 [ "00-"; "--0" ] (Nand (por l0 l1, l2));
      mk "xor2" 5.0 1.9 2 [ "10"; "01" ]
        (Nand (Nand (l0, Inv l1), Nand (Inv l0, l1)));
      mk "xnor2" 5.0 1.9 2 [ "11"; "00" ]
        (Nand (Nand (l0, l1), Nand (Inv l0, Inv l1))) ]
  in
  { lib_name = "mcnc_lite"; gates; latch_area = 8.0; latch_setup = 0.2 }

let find lib name =
  match List.find_opt (fun g -> g.gate_name = name) lib.gates with
  | Some g -> g
  | None -> invalid_arg ("Genlib.find: unknown gate " ^ name)
