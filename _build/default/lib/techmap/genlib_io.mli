(** Reader/writer for the genlib gate-library text format:

    {v
    GATE nand2  2.0  O=!(a*b);   PIN * INV 1 999 1.0 0.0 1.0 0.0
    GATE aoi21  3.0  O=!(a*b+c); PIN * INV 1 999 1.4 0.0 1.4 0.0
    v}

    Expressions use [!] (negation), [*] (and), [+] (or), parentheses, and
    the constants [CONST0]/[CONST1].  Input pins are numbered
    alphabetically (the format carries no pin order).  Each gate's delay is the largest block delay over its
    PIN lines (the library model is load-independent).  Matching patterns
    are derived automatically from the parsed expression by NAND2/INV
    decomposition and are checked against the parsed function. *)

val parse_string :
  ?name:string -> ?latch_area:float -> ?latch_setup:float -> string -> Genlib.t
(** Raises [Failure] with a line-numbered message on malformed input, and on
    gates whose derived pattern does not compute the parsed function (an
    internal consistency failure). *)

val parse_file : string -> Genlib.t

val to_string : Genlib.t -> string
(** Gates are printed with factored expressions reconstructed from their
    covers; a parse/print round-trip preserves every gate's function, area
    and delay. *)

val write_file : string -> Genlib.t -> unit
