(** Gate library in the genlib spirit: each gate has an area, a pin-to-pin
    delay (load-independent), a function as an SOP over its inputs, and a
    NAND2/INV pattern tree used for matching.

    Pattern leaves are numbered; a leaf number may repeat (XOR-class gates),
    in which case a match must bind the repeats to the same subject node. *)

type pattern =
  | Leaf of int
  | Inv of pattern
  | Nand of pattern * pattern

type gate = {
  gate_name : string;
  area : float;
  delay : float;
  ninputs : int;
  cover : Logic.Cover.t;  (** over the [ninputs] leaf variables *)
  pattern : pattern;
}

type t = {
  lib_name : string;
  gates : gate list;
  latch_area : float;
  latch_setup : float;  (** added to every latch data-input arrival *)
}

val pattern_cover : int -> pattern -> Logic.Cover.t
(** Function computed by a pattern over [n] leaf variables (for checks). *)

val mcnc_lite : t
(** The built-in library: INV, BUF, NAND2-4, NOR2-3, AND2, OR2, AOI21,
    OAI21, XOR2, XNOR2 plus a D flip-flop.  Area and delay values follow the
    relative ordering of the MCNC library. *)

val find : t -> string -> gate
