lib/techmap/genlib.ml: Array List Logic
