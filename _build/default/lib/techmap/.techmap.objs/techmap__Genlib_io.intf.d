lib/techmap/genlib_io.mli: Genlib
