lib/techmap/mapper.ml: Array Genlib Hashtbl Lazy List Logic Netlist Printf Sta
