lib/techmap/genlib.mli: Logic
