lib/techmap/mapper.mli: Genlib Netlist Sta
