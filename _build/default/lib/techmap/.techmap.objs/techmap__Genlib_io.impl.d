lib/techmap/genlib_io.ml: Array Buffer Char Filename Genlib List Logic Printf String
