(** A small CDCL SAT solver (two-watched literals, 1-UIP learning, VSIDS-like
    activities).  Used for combinational equivalence checking of netlist
    cones via Tseitin encoding.

    Literals use the DIMACS convention: variable [v] (0-based) appears
    positively as [v + 1] and negatively as [-(v + 1)]. *)

type t

type result =
  | Sat of bool array  (** model indexed by variable *)
  | Unsat
  | Unknown  (** conflict budget exhausted *)

val create : unit -> t

val new_var : t -> int
(** Allocate a fresh variable; returns its 0-based index. *)

val nvars : t -> int

val add_clause : t -> int list -> unit
(** Add a clause of DIMACS literals.  Adding the empty clause makes the
    instance trivially unsatisfiable. *)

val solve : ?conflict_limit:int -> ?assumptions:int list -> t -> result
(** Solve under optional assumptions.  The solver can be reused: learned
    clauses persist, assumptions do not. *)
