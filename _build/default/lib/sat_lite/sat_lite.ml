(* Internal literal encoding: lit = 2*var + (1 if negated).  [neg l] flips the
   low bit.  Clauses are int arrays of internal literals; the first two
   positions are the watched literals. *)

type result =
  | Sat of bool array
  | Unsat
  | Unknown

type t = {
  mutable nvars : int;
  mutable clauses : int array array;
  mutable nclauses : int;
  mutable watches : int list array;      (* per internal literal *)
  mutable assign : int array;            (* per var: -1 unset, 0 false, 1 true *)
  mutable level : int array;             (* per var *)
  mutable reason : int array;            (* per var: clause index or -1 *)
  mutable activity : float array;
  mutable phase : bool array;            (* phase saving *)
  mutable trail : int array;             (* internal literals *)
  mutable trail_size : int;
  mutable trail_lim : int list;          (* stack of trail sizes at decisions *)
  mutable var_inc : float;
  mutable empty_clause : bool;
}

let lit_of_dimacs d =
  assert (d <> 0);
  if d > 0 then 2 * (d - 1) else (2 * (-d - 1)) + 1

let var_of_lit l = l lsr 1
let is_neg l = l land 1 = 1
let neg l = l lxor 1

let create () =
  { nvars = 0;
    clauses = Array.make 64 [||];
    nclauses = 0;
    watches = Array.make 16 [];
    assign = Array.make 8 (-1);
    level = Array.make 8 0;
    reason = Array.make 8 (-1);
    activity = Array.make 8 0.0;
    phase = Array.make 8 false;
    trail = Array.make 8 0;
    trail_size = 0;
    trail_lim = [];
    var_inc = 1.0;
    empty_clause = false }

let grow_arrays s =
  let cap = Array.length s.assign in
  let resize a fill =
    let b = Array.make (2 * cap) fill in
    Array.blit a 0 b 0 cap;
    b
  in
  s.assign <- resize s.assign (-1);
  s.level <- resize s.level 0;
  s.reason <- resize s.reason (-1);
  s.activity <- resize s.activity 0.0;
  s.phase <- resize s.phase false;
  s.trail <- resize s.trail 0;
  let wb = Array.make (4 * cap) [] in
  Array.blit s.watches 0 wb 0 (Array.length s.watches);
  s.watches <- wb

let new_var s =
  let v = s.nvars in
  s.nvars <- v + 1;
  if s.nvars > Array.length s.assign then grow_arrays s;
  v

let nvars s = s.nvars

let value_of_lit s l =
  let a = s.assign.(var_of_lit l) in
  if a < 0 then -1 else if is_neg l then 1 - a else a

let enqueue s l reason =
  let v = var_of_lit l in
  s.assign.(v) <- (if is_neg l then 0 else 1);
  s.level.(v) <- List.length s.trail_lim;
  s.reason.(v) <- reason;
  s.trail.(s.trail_size) <- l;
  s.trail_size <- s.trail_size + 1

let add_clause_internal s lits =
  match lits with
  | [||] -> s.empty_clause <- true; -1
  | _ ->
    if s.nclauses >= Array.length s.clauses then begin
      let b = Array.make (2 * Array.length s.clauses) [||] in
      Array.blit s.clauses 0 b 0 s.nclauses;
      s.clauses <- b
    end;
    let idx = s.nclauses in
    s.clauses.(idx) <- lits;
    s.nclauses <- idx + 1;
    if Array.length lits >= 2 then begin
      s.watches.(lits.(0)) <- idx :: s.watches.(lits.(0));
      s.watches.(lits.(1)) <- idx :: s.watches.(lits.(1))
    end;
    idx

let add_clause s dimacs =
  (* Simplify: drop duplicate literals; detect tautologies. *)
  let lits = List.map lit_of_dimacs dimacs in
  let lits = List.sort_uniq compare lits in
  let tautology = List.exists (fun l -> List.mem (neg l) lits) lits in
  if not tautology then begin
    List.iter (fun l -> assert (var_of_lit l < s.nvars)) lits;
    match lits with
    | [] -> s.empty_clause <- true
    | [ l ] ->
      (* Unit clauses are asserted at level 0 rather than watched. *)
      assert (s.trail_lim = []);
      (match value_of_lit s l with
       | 1 -> ()
       | 0 -> s.empty_clause <- true
       | _ -> enqueue s l (-1))
    | _ :: _ :: _ -> ignore (add_clause_internal s (Array.of_list lits))
  end

(* Unit propagation over the watched-literal scheme.  Returns the index of a
   conflicting clause or -1. *)
let propagate s qhead =
  let conflict = ref (-1) in
  let q = ref qhead in
  while !conflict < 0 && !q < s.trail_size do
    let l = s.trail.(!q) in
    incr q;
    let falsified = neg l in
    let old_watchers = s.watches.(falsified) in
    s.watches.(falsified) <- [];
    let rec process = function
      | [] -> ()
      | ci :: rest ->
        if !conflict >= 0 then
          (* conflict found: keep remaining watchers untouched *)
          s.watches.(falsified) <- ci :: rest @ s.watches.(falsified)
        else begin
          let c = s.clauses.(ci) in
          (* Ensure the falsified literal is at position 1. *)
          if c.(0) = falsified then begin
            c.(0) <- c.(1);
            c.(1) <- falsified
          end;
          if value_of_lit s c.(0) = 1 then begin
            (* clause already satisfied; keep watching *)
            s.watches.(falsified) <- ci :: s.watches.(falsified);
            process rest
          end
          else begin
            (* look for a new watch *)
            let n = Array.length c in
            let rec find i =
              if i >= n then -1
              else if value_of_lit s c.(i) <> 0 then i
              else find (i + 1)
            in
            let i = find 2 in
            if i >= 0 then begin
              let w = c.(i) in
              c.(i) <- c.(1);
              c.(1) <- w;
              s.watches.(w) <- ci :: s.watches.(w);
              process rest
            end
            else begin
              (* unit or conflict *)
              s.watches.(falsified) <- ci :: s.watches.(falsified);
              match value_of_lit s c.(0) with
              | -1 -> enqueue s c.(0) ci; process rest
              | 0 -> conflict := ci; process rest
              | _ -> process rest
            end
          end
        end
    in
    process old_watchers
  done;
  (!conflict, !q)

let bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end

(* First-UIP conflict analysis.  Returns (learned clause, backjump level). *)
let analyze s conflict_clause =
  let current_level = List.length s.trail_lim in
  let seen = Array.make s.nvars false in
  let learned = ref [] in
  let counter = ref 0 in
  let asserting = ref (-1) in
  let index = ref (s.trail_size - 1) in
  let handle_reason lits skip_lit =
    Array.iter
      (fun l ->
        if l <> skip_lit then begin
          let v = var_of_lit l in
          if (not seen.(v)) && s.level.(v) > 0 then begin
            seen.(v) <- true;
            bump s v;
            if s.level.(v) >= current_level then incr counter
            else learned := l :: !learned
          end
        end)
      lits
  in
  handle_reason s.clauses.(conflict_clause) (-1);
  let continue = ref true in
  while !continue do
    (* find next seen literal on the trail *)
    while not seen.(var_of_lit s.trail.(!index)) do decr index done;
    let l = s.trail.(!index) in
    let v = var_of_lit l in
    seen.(v) <- false;
    decr counter;
    if !counter = 0 then begin
      asserting := neg l;
      continue := false
    end
    else begin
      let r = s.reason.(v) in
      assert (r >= 0);
      handle_reason s.clauses.(r) l;
      decr index
    end
  done;
  let learned_lits = !asserting :: !learned in
  let backjump =
    List.fold_left
      (fun acc l ->
        if l = !asserting then acc else max acc s.level.(var_of_lit l))
      0 !learned
  in
  (Array.of_list learned_lits, backjump)

let backtrack s target_level =
  let rec pop_levels lims =
    match lims with
    | [] -> []
    | limit :: rest ->
      if List.length lims > target_level then begin
        (* undo assignments above this limit *)
        while s.trail_size > limit do
          s.trail_size <- s.trail_size - 1;
          let l = s.trail.(s.trail_size) in
          let v = var_of_lit l in
          s.phase.(v) <- s.assign.(v) = 1;
          s.assign.(v) <- -1;
          s.reason.(v) <- -1
        done;
        pop_levels rest
      end
      else lims
  in
  s.trail_lim <- pop_levels s.trail_lim

let pick_branch s =
  let best = ref (-1) and best_act = ref neg_infinity in
  for v = 0 to s.nvars - 1 do
    if s.assign.(v) < 0 && s.activity.(v) > !best_act then begin
      best := v;
      best_act := s.activity.(v)
    end
  done;
  !best

let solve ?(conflict_limit = 200_000) ?(assumptions = []) s =
  if s.empty_clause then Unsat
  else begin
    (* Reset to level 0. *)
    backtrack s 0;
    let conflicts = ref 0 in
    let qhead = ref 0 in
    let result = ref None in
    let assumption_lits = List.map lit_of_dimacs assumptions in
    (try
       while !result = None do
         let conflict, q = propagate s !qhead in
         qhead := q;
         if conflict >= 0 then begin
           incr conflicts;
           if !conflicts > conflict_limit then result := Some Unknown
           else if List.length s.trail_lim = 0 then result := Some Unsat
           else begin
             let learned, backjump = analyze s conflict in
             backtrack s backjump;
             qhead := s.trail_size;
             s.var_inc <- s.var_inc /. 0.95;
             if Array.length learned = 1 then begin
               if value_of_lit s learned.(0) = 0 then result := Some Unsat
               else if value_of_lit s learned.(0) = -1 then
                 enqueue s learned.(0) (-1)
             end
             else begin
               (* position the asserting literal and a highest-level literal
                  in the watch slots *)
               let best = ref 1 in
               for i = 2 to Array.length learned - 1 do
                 if s.level.(var_of_lit learned.(i))
                    > s.level.(var_of_lit learned.(!best))
                 then best := i
               done;
               let w = learned.(1) in
               learned.(1) <- learned.(!best);
               learned.(!best) <- w;
               let ci = add_clause_internal s learned in
               enqueue s learned.(0) ci
             end
           end
         end
         else begin
           (* decide: first pending assumption, else activity *)
           let pending =
             List.find_opt (fun l -> value_of_lit s l <> 1) assumption_lits
           in
           match pending with
           | Some l when value_of_lit s l = 0 -> result := Some Unsat
           | Some l ->
             s.trail_lim <- s.trail_size :: s.trail_lim;
             enqueue s l (-1)
           | None ->
             let v = pick_branch s in
             if v < 0 then begin
               let model = Array.init s.nvars (fun i -> s.assign.(i) = 1) in
               result := Some (Sat model)
             end
             else begin
               s.trail_lim <- s.trail_size :: s.trail_lim;
               let l = if s.phase.(v) then 2 * v else (2 * v) + 1 in
               enqueue s l (-1)
             end
         end
       done
     with Stack_overflow -> result := Some Unknown);
    backtrack s 0;
    match !result with Some r -> r | None -> Unknown
  end
