lib/core/resynth.mli: Netlist Sta Techmap
