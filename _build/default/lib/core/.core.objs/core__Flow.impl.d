lib/core/flow.ml: Dontcare Netlist Resynth Retiming Sim Sta Synth_opt Techmap
