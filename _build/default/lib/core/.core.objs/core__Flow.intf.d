lib/core/flow.mli: Netlist Resynth Techmap
