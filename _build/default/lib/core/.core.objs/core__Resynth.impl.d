lib/core/resynth.ml: Array Dontcare Fun Hashtbl List Logic Netlist Printf Retiming Sta Techmap
