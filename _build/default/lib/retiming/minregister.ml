module N = Netlist.Network
module G = Minperiod.Internal

let big = max_int / 4

(* Exact min-register retiming with register sharing along fanout stems,
   via the Leiserson-Saxe mirror-vertex construction:

   For each vertex [u] with fanout edges (v_i, w_i) and w^ = max w_i, add a
   mirror vertex m_u with constraint edges
       r(u)   - r(m_u) <= w^          (the costed edge)
       r(v_i) - r(m_u) <= w^ - w_i
   so that, at the optimum, w^ + r(m_u) - r(u) = max_i (w_i + r(v_i) - r(u))
   = the number of registers the retimed net needs with sharing.  The
   objective sums exactly the costed mirror edges; legality and period
   constraints live on the original edges.

   The LP dual of this difference-constraint program is a transshipment
   problem solved by min-cost flow; the optimal retiming labels are the
   negated potentials of the final residual network. *)
let min_registers ?(max_vertices = 400) ?target_period net ~model =
  let g = G.build_graph net model in
  if g.G.nv > max_vertices then Error (Minperiod.Too_large g.G.nv)
  else begin
    (* group fanout edges by source *)
    let by_source = Hashtbl.create 64 in
    List.iter
      (fun (u, v, w) ->
        let existing =
          match Hashtbl.find_opt by_source u with Some l -> l | None -> []
        in
        Hashtbl.replace by_source u ((v, w) :: existing))
      g.G.edges;
    let sources =
      List.sort compare (Hashtbl.fold (fun u _ acc -> u :: acc) by_source [])
    in
    let mirror = Hashtbl.create 64 in
    List.iteri (fun i u -> Hashtbl.add mirror u (g.G.nv + i)) sources;
    let total_vertices = g.G.nv + List.length sources in
    (* constraints (x, y, bound) meaning r(x) - r(y) <= bound *)
    let constraints = ref [] in
    List.iter (fun (u, v, w) -> constraints := (u, v, w) :: !constraints) g.G.edges;
    (match target_period with
     | None -> ()
     | Some period ->
       let w, d = G.wd_matrices g in
       for u = 0 to g.G.nv - 1 do
         for v = 0 to g.G.nv - 1 do
           if d.(u).(v) > period +. 1e-9 && w.(u).(v) < big then
             constraints := (u, v, w.(u).(v) - 1) :: !constraints
         done
       done);
    (* mirror constraints and the costed edges *)
    let costed = ref [] in
    List.iter
      (fun u ->
        let fanouts = Hashtbl.find by_source u in
        let w_hat = List.fold_left (fun acc (_, w) -> max acc w) 0 fanouts in
        let m = Hashtbl.find mirror u in
        constraints := (u, m, w_hat) :: !constraints;
        List.iter
          (fun (v, w) -> constraints := (v, m, w_hat - w) :: !constraints)
          fanouts;
        costed := (u, m) :: !costed)
      sources;
    (* feasibility: Bellman-Ford on the constraint system *)
    let feasible =
      let r = Array.make total_vertices 0 in
      let changed = ref true and iterations = ref 0 in
      while !changed && !iterations <= total_vertices + 2 do
        changed := false;
        incr iterations;
        List.iter
          (fun (u, v, c) ->
            if r.(u) > r.(v) + c then begin
              r.(u) <- r.(v) + c;
              changed := true
            end)
          !constraints
      done;
      not !changed
    in
    if not feasible then Error Minperiod.Infeasible
    else begin
      (* Objective coefficients: +1 on r(m), -1 on r(u) per costed edge.
         The dual transshipment requires out-minus-in flow = -coefficient,
         so each u is a unit source and each m a unit sink. *)
      let divergence = Array.make total_vertices 0 in
      List.iter
        (fun (u, m) ->
          divergence.(u) <- divergence.(u) + 1;
          divergence.(m) <- divergence.(m) - 1)
        !costed;
      let source = total_vertices and sink = total_vertices + 1 in
      let flow = Mcmf.create (total_vertices + 2) in
      List.iter
        (fun (u, v, bound) ->
          Mcmf.add_edge flow ~src:u ~dst:v ~capacity:big ~cost:bound)
        !constraints;
      Array.iteri
        (fun v a ->
          if a > 0 then Mcmf.add_edge flow ~src:source ~dst:v ~capacity:a ~cost:0
          else if a < 0 then
            Mcmf.add_edge flow ~src:v ~dst:sink ~capacity:(-a) ~cost:0)
        divergence;
      let pushed, _ = Mcmf.max_flow_min_cost flow ~source ~sink in
      let supply =
        Array.fold_left (fun acc a -> if a > 0 then acc + a else acc) 0 divergence
      in
      if pushed < supply then Error Minperiod.Infeasible
      else begin
        let potentials = Mcmf.potentials flow in
        let r =
          Array.init g.G.nv (fun v -> -potentials.(v) + potentials.(0))
        in
        let copy = N.copy net in
        match G.realize copy g r with
        | Error e -> Error e
        | Ok () ->
          N.sweep copy;
          (* recover fanout-stem register sharing structurally *)
          ignore (Minarea.merge_all_siblings copy);
          (* The realization can exceed the model optimum when backward
             moves choose initial-state preimages that keep siblings from
             merging; never return something worse than the input with its
             own siblings merged. *)
          let baseline = N.copy net in
          ignore (Minarea.merge_all_siblings baseline);
          if N.num_latches copy <= N.num_latches baseline then
            Ok (copy, N.num_latches copy)
          else Ok (baseline, N.num_latches baseline)
      end
    end
  end
