lib/retiming/minarea.ml: Array Hashtbl List Moves Netlist Result Sta
