lib/retiming/minregister.ml: Array Hashtbl List Mcmf Minarea Minperiod Netlist
