lib/retiming/moves.ml: Array Hashtbl List Logic Netlist Printf Sim
