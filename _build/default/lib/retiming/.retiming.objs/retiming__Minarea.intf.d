lib/retiming/minarea.mli: Netlist Sta
