lib/retiming/moves.mli: Netlist
