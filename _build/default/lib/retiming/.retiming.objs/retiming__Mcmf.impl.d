lib/retiming/mcmf.ml: Array Fun List Queue
