lib/retiming/minperiod.ml: Array Buffer Hashtbl List Moves Netlist Printf Queue Sta
