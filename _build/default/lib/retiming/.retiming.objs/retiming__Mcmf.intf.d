lib/retiming/mcmf.mli:
