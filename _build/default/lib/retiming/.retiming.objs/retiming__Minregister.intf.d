lib/retiming/minregister.mli: Minperiod Netlist Sta
