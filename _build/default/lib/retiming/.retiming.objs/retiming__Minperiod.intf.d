lib/retiming/minperiod.mli: Netlist Sta
