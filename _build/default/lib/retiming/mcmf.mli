(** Minimum-cost flow by successive shortest augmenting paths (SPFA, so
    negative arc costs are fine as long as there is no negative cycle).
    Used by the exact min-register retiming: the LP dual of the
    difference-constraint program is a transshipment problem, and the final
    shortest-path labels are the optimal retiming labels. *)

type t

val create : int -> t
(** [create n] makes a flow network on nodes [0 .. n-1]. *)

val add_edge : t -> src:int -> dst:int -> capacity:int -> cost:int -> unit

val max_flow_min_cost : t -> source:int -> sink:int -> int * int
(** Pushes as much flow as possible from [source] to [sink] at minimum cost;
    returns [(flow, cost)]. *)

val potentials : t -> int array
(** Shortest-path labels by cost in the final residual network, computed
    from a virtual all-nodes source (Bellman-Ford with all distances started
    at 0), so every residual arc [u -> v] satisfies
    [p.(v) <= p.(u) + cost].  Valid after {!max_flow_min_cost}; these are
    optimal dual potentials of the underlying LP. *)
