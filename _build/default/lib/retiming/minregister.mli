(** Exact minimum-register retiming (Leiserson–Saxe OPT: minimize the total
    register count, optionally subject to a clock-period bound), solved via
    the min-cost-flow dual of the difference-constraint LP.

    The register-count objective is the classical unshared one
    (Σ_e w_r(e)); registers shared along fanout stems are recovered by a
    sibling-merge pass after realization, as SIS did.  Realization by atomic
    moves can fail on initial states like any retiming here. *)

val min_registers :
  ?max_vertices:int ->
  ?target_period:float ->
  Netlist.Network.t ->
  model:Sta.model ->
  (Netlist.Network.t * int, Minperiod.failure) result
(** Returns the retimed copy and its register count.  With [target_period],
    only retimings meeting the period are considered ([Infeasible] when the
    bound is below the graph's minimum). *)
