(* Adjacency as arrays of arc records; every arc stores its reverse twin. *)
type arc = {
  dst : int;
  mutable cap : int;
  cost : int;
  twin : int;  (* index of the reverse arc in [arcs.(dst)] *)
}

type t = {
  n : int;
  arcs : arc array array;           (* grown copy-on-add; modest sizes *)
  mutable out_count : int array;
}

let create n =
  { n; arcs = Array.make n [||]; out_count = Array.make n 0 }

let push_arc t node arc =
  let old = t.arcs.(node) in
  let count = t.out_count.(node) in
  if count >= Array.length old then begin
    let grown = Array.make (max 4 (2 * Array.length old)) arc in
    Array.blit old 0 grown 0 count;
    t.arcs.(node) <- grown
  end;
  t.arcs.(node).(count) <- arc;
  t.out_count.(node) <- count + 1

let add_edge t ~src ~dst ~capacity ~cost =
  let fwd_index = t.out_count.(src) in
  let rev_index = t.out_count.(dst) in
  push_arc t src { dst; cap = capacity; cost; twin = rev_index };
  push_arc t dst { dst = src; cap = 0; cost = -cost; twin = fwd_index }

let big = max_int / 4

(* SPFA shortest path by cost over residual arcs; returns parent arcs.
   [sources] seeds the queue; seeding every node emulates a virtual source
   with 0-cost arcs to all nodes. *)
let spfa t ~sources =
  let dist = Array.make t.n big in
  let parent = Array.make t.n (-1, -1) in
  let in_queue = Array.make t.n false in
  let queue = Queue.create () in
  List.iter
    (fun s ->
      dist.(s) <- 0;
      Queue.push s queue;
      in_queue.(s) <- true)
    sources;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    in_queue.(u) <- false;
    for i = 0 to t.out_count.(u) - 1 do
      let a = t.arcs.(u).(i) in
      if a.cap > 0 && dist.(u) + a.cost < dist.(a.dst) then begin
        dist.(a.dst) <- dist.(u) + a.cost;
        parent.(a.dst) <- (u, i);
        if not in_queue.(a.dst) then begin
          Queue.push a.dst queue;
          in_queue.(a.dst) <- true
        end
      end
    done
  done;
  (dist, parent)

let max_flow_min_cost t ~source ~sink =
  let flow = ref 0 and cost = ref 0 in
  let continue = ref true in
  while !continue do
    let dist, parent = spfa t ~sources:[ source ] in
    if dist.(sink) >= big then continue := false
    else begin
      (* bottleneck along the path *)
      let rec bottleneck v acc =
        if v = source then acc
        else begin
          let u, i = parent.(v) in
          bottleneck u (min acc t.arcs.(u).(i).cap)
        end
      in
      let push = bottleneck sink big in
      let rec apply v =
        if v <> source then begin
          let u, i = parent.(v) in
          let a = t.arcs.(u).(i) in
          a.cap <- a.cap - push;
          let r = t.arcs.(a.dst).(a.twin) in
          r.cap <- r.cap + push;
          cost := !cost + (push * a.cost);
          apply u
        end
      in
      apply sink;
      flow := !flow + push
    end
  done;
  (!flow, !cost)

let potentials t =
  let dist, _ = spfa t ~sources:(List.init t.n Fun.id) in
  dist
