(** SAT-based redundancy removal.

    Per-node minimization cannot see network-level redundancy (a literal that
    is irredundant in its own cover but never observable given the rest of
    the logic).  This pass tries, for every literal of every cube of every
    logic node, whether raising it — and for every cube whether dropping
    it — preserves the network's combinational function at the register/PO
    boundary, checked with a SAT miter.  Accepted changes are exactly the
    classical untestable stuck-at faults. *)

val remove :
  ?conflict_limit:int -> ?max_nodes:int -> Netlist.Network.t -> int
(** Mutates the network; returns the number of literals and cubes removed.
    Networks with more than [max_nodes] logic nodes (default 300) are left
    untouched (each candidate costs one SAT call). *)
