module N = Netlist.Network

(* One SAT call: is the network with [node]'s cover replaced by [candidate]
   equivalent to the original at every PO and latch-data endpoint? *)
let change_is_redundant ~conflict_limit net node candidate =
  let trial = N.copy net in
  let trial_node = N.node trial node.N.id in
  N.set_cover trial trial_node candidate;
  match Sim.Equiv.comb_equal_sat ~conflict_limit net trial with
  | equal -> equal
  | exception Sim.Equiv.Too_large _ -> false

let remove ?(conflict_limit = 100_000) ?(max_nodes = 300) net =
  if List.length (N.logic_nodes net) > max_nodes then 0
  else begin
    let removed = ref 0 in
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun n ->
          match N.node_opt net n.N.id with
          | Some n when N.is_logic n ->
            (* try dropping whole cubes first, then raising literals *)
            let try_candidate candidate gain =
              if
                (not (Logic.Cover.is_empty candidate))
                && change_is_redundant ~conflict_limit net n candidate
              then begin
                N.set_cover net n candidate;
                removed := !removed + gain;
                changed := true;
                true
              end
              else false
            in
            let cover () = N.cover_of n in
            (* cube dropping *)
            let rec drop_cubes i =
              let c = cover () in
              if i < Logic.Cover.size c && Logic.Cover.size c > 1 then begin
                let cubes = c.Logic.Cover.cubes in
                let without =
                  List.filteri (fun j _ -> j <> i) cubes
                in
                let gain = Logic.Cube.lit_count (List.nth cubes i) in
                if
                  try_candidate
                    (Logic.Cover.make c.Logic.Cover.nvars without)
                    gain
                then drop_cubes i (* same index now holds the next cube *)
                else drop_cubes (i + 1)
              end
            in
            drop_cubes 0;
            (* literal raising *)
            let rec raise_literals i v =
              let c = cover () in
              if i < Logic.Cover.size c then begin
                if v >= c.Logic.Cover.nvars then raise_literals (i + 1) 0
                else begin
                  let cube = List.nth c.Logic.Cover.cubes i in
                  if
                    Logic.Cube.depends_on cube v
                    && Logic.Cube.lit_count cube > 1
                  then begin
                    let raised =
                      List.mapi
                        (fun j cb ->
                          if j = i then Logic.Cube.raise_var cb v else cb)
                        c.Logic.Cover.cubes
                    in
                    ignore
                      (try_candidate
                         (Logic.Cover.make c.Logic.Cover.nvars raised)
                         1)
                  end;
                  raise_literals i (v + 1)
                end
              end
            in
            raise_literals 0 0
          | Some _ | None -> ())
        (N.logic_nodes net)
    done;
    N.sweep net;
    !removed
  end
