(** Combinational optimization pipeline standing in for SIS [script.delay]
    (see DESIGN.md for the substitution rationale).

    The pipeline: sweep, per-node espresso-lite simplification, literal-saving
    eliminations, then algebraic decomposition with balanced trees and
    delay-oriented technology mapping (both inside {!Techmap.Mapper.map}). *)

val simplify_nodes : Netlist.Network.t -> int
(** Minimize every logic node's SOP in place (no don't-cares).  Returns the
    number of nodes improved. *)

val collapse_into :
  Netlist.Network.t -> producer:Netlist.Network.node -> consumer:Netlist.Network.node -> unit
(** Substitute a logic node's function into one consumer (SIS collapse). *)

val eliminate : ?threshold:int -> ?max_support:int -> Netlist.Network.t -> int
(** Collapse nodes whose elimination does not increase the literal count by
    more than [threshold] (default 0).  Returns nodes eliminated. *)

val script_delay : Netlist.Network.t -> lib:Techmap.Genlib.t -> Netlist.Network.t
(** Full delay script: returns a fresh mapped network (input untouched). *)

val script_area : Netlist.Network.t -> lib:Techmap.Genlib.t -> Netlist.Network.t
(** Like {!script_delay} but with shared-divisor extraction
    ({!Extract.extract_divisors}), structural hashing and an area-oriented
    mapping objective. *)

val unmapped_optimize : Netlist.Network.t -> unit
(** The technology-independent part only (sweep, simplify, eliminate),
    mutating the network. *)
