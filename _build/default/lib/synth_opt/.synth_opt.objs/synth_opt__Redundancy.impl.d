lib/synth_opt/redundancy.ml: List Logic Netlist Sim
