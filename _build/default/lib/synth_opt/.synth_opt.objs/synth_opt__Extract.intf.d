lib/synth_opt/extract.mli: Netlist
