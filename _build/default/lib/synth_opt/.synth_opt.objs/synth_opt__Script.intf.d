lib/synth_opt/script.mli: Netlist Techmap
