lib/synth_opt/script.ml: Array Extract Hashtbl List Logic Netlist Techmap
