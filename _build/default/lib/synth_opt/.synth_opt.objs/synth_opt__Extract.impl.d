lib/synth_opt/extract.ml: Array Fun Hashtbl List Logic Netlist Printf String
