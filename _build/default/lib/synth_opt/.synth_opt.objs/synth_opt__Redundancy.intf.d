lib/synth_opt/redundancy.mli: Netlist
