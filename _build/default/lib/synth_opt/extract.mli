(** Shared-divisor extraction across nodes (SIS [fx]/[gkx] in miniature).

    Enumerates kernels and multi-literal cubes of every logic node, scores
    each distinct divisor by the literals saved if it were implemented once
    and substituted everywhere it divides, greedily extracts the best one as
    a new node, and repeats.  Used by the area script; the delay script
    skips it (extraction adds logic levels). *)

val extract_divisors :
  ?max_iterations:int -> ?max_node_cubes:int -> Netlist.Network.t -> int
(** Returns the number of divisors extracted.  Nodes with more than
    [max_node_cubes] cubes (default 24) are skipped when enumerating
    kernels (kernel counts explode on large covers). *)
