(** Static timing analysis over a {!Netlist.Network.t}.

    Timing start points are primary inputs, constants and latch outputs;
    end points are primary outputs and latch data inputs.  The clock period
    of a sequential circuit is the maximum end-point arrival time. *)

type model = Netlist.Network.node -> float
(** Delay contributed by one logic node (sources and latches contribute 0). *)

val unit_delay : model
(** Every logic node costs 1.0. *)

val mapped_delay : ?default:float -> unit -> model
(** Delay from the technology binding; unbound logic nodes cost [default]
    (1.0). *)

type timing = {
  arrival : float array;       (** indexed by node id; -infinity if unused *)
  period : float;              (** max end-point arrival *)
  critical_end : int;          (** node id of the worst end point *)
}

val analyze : Netlist.Network.t -> model -> timing

val clock_period : Netlist.Network.t -> model -> float

val critical_path : Netlist.Network.t -> model -> Netlist.Network.node list
(** Logic nodes of one worst path, ordered from (closest to) inputs to the
    path's end point.  Empty when the network has no logic. *)

val slack : Netlist.Network.t -> model -> required:float -> float array
(** Per-node slack against a required time at every end point. *)
