module N = Netlist.Network

type model = N.node -> float

let unit_delay (n : N.node) =
  match n.N.kind with
  | N.Logic _ -> 1.0
  | N.Input | N.Const _ | N.Latch _ -> 0.0

let mapped_delay ?(default = 1.0) () (n : N.node) =
  match n.N.kind with
  | N.Logic _ ->
    (match n.N.binding with Some b -> b.N.gate_delay | None -> default)
  | N.Input | N.Const _ | N.Latch _ -> 0.0

type timing = {
  arrival : float array;
  period : float;
  critical_end : int;
}

let node_capacity net =
  List.fold_left (fun acc n -> max acc n.N.id) 0 (N.all_nodes net) + 1

let analyze net model =
  let arrival = Array.make (node_capacity net) neg_infinity in
  List.iter
    (fun n ->
      match n.N.kind with
      | N.Input | N.Const _ | N.Latch _ -> arrival.(n.N.id) <- 0.0
      | N.Logic _ -> ())
    (N.all_nodes net);
  List.iter
    (fun n ->
      let worst =
        Array.fold_left
          (fun acc f -> max acc arrival.(f))
          0.0 n.N.fanins
      in
      arrival.(n.N.id) <- worst +. model n)
    (N.topo_combinational net);
  (* end points: PO drivers and latch data inputs *)
  let period = ref 0.0 and critical_end = ref (-1) in
  let consider id =
    if !critical_end < 0 || arrival.(id) > arrival.(!critical_end) then
      critical_end := id;
    if arrival.(id) > !period then period := arrival.(id)
  in
  List.iter (fun (_, n) -> consider n.N.id) (N.outputs net);
  List.iter (fun l -> consider (N.latch_data net l).N.id) (N.latches net);
  { arrival; period = !period; critical_end = !critical_end }

let clock_period net model = (analyze net model).period

let critical_path net model =
  let t = analyze net model in
  if t.critical_end < 0 then []
  else begin
    let rec walk id acc =
      let n = N.node net id in
      match n.N.kind with
      | N.Input | N.Const _ | N.Latch _ -> acc
      | N.Logic _ ->
        let acc = n :: acc in
        if Array.length n.N.fanins = 0 then acc
        else begin
          let best = ref n.N.fanins.(0) in
          Array.iter
            (fun f -> if t.arrival.(f) > t.arrival.(!best) then best := f)
            n.N.fanins;
          walk !best acc
        end
    in
    walk t.critical_end []
  end

let slack net model ~required =
  let t = analyze net model in
  let cap = Array.length t.arrival in
  let required_at = Array.make cap infinity in
  let set_req id r = if r < required_at.(id) then required_at.(id) <- r in
  List.iter (fun (_, n) -> set_req n.N.id required) (N.outputs net);
  List.iter
    (fun l -> set_req (N.latch_data net l).N.id required)
    (N.latches net);
  let rev_topo = List.rev (N.topo_combinational net) in
  List.iter
    (fun n ->
      let req = required_at.(n.N.id) in
      let fanin_req = req -. model n in
      Array.iter (fun f -> set_req f fanin_req) n.N.fanins)
    rev_topo;
  Array.init cap (fun id ->
      if t.arrival.(id) = neg_infinity then infinity
      else required_at.(id) -. t.arrival.(id))
