module N = Netlist.Network

(* VCD identifier codes: printable ASCII starting at '!' *)
let code i =
  let base = 94 and start = 33 in
  let rec go i acc =
    let acc = String.make 1 (Char.chr (start + (i mod base))) ^ acc in
    if i < base then acc else go ((i / base) - 1) acc
  in
  go i ""

let dump ?(timescale = "1ns") net ~vectors =
  let buf = Buffer.create 2048 in
  let signals =
    List.map (fun n -> (n.N.name, `Input n)) (N.inputs net)
    @ List.map (fun l -> (l.N.name, `Latch l)) (N.latches net)
    @ List.map (fun (po, d) -> (po, `Output d)) (N.outputs net)
  in
  Buffer.add_string buf "$date generated $end\n";
  Buffer.add_string buf
    (Printf.sprintf "$timescale %s $end\n$scope module %s $end\n" timescale
       (N.model_name net));
  List.iteri
    (fun i (name, _) ->
      Buffer.add_string buf
        (Printf.sprintf "$var wire 1 %s %s $end\n" (code i) name))
    signals;
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  let previous = Array.make (List.length signals) None in
  let state = ref (Simulate.binary_initial_state net) in
  List.iteri
    (fun t pi ->
      let values = Simulate.eval_all net ~pi:(fun name -> pi name) ~state:!state in
      Buffer.add_string buf (Printf.sprintf "#%d\n" t);
      List.iteri
        (fun i (_, kind) ->
          let v =
            match kind with
            | `Input n -> values.(n.N.id)
            | `Latch l -> values.(l.N.id)
            | `Output d -> values.(d.N.id)
          in
          if previous.(i) <> Some v then begin
            Buffer.add_string buf
              (Printf.sprintf "%d%s\n" (if v then 1 else 0) (code i));
            previous.(i) <- Some v
          end)
        signals;
      (* advance the clock *)
      let next, _ = Simulate.step net ~pi ~state:!state in
      state := next)
    vectors;
  Buffer.add_string buf (Printf.sprintf "#%d\n" (List.length vectors));
  Buffer.contents buf

let write_file ?timescale path net ~vectors =
  let oc = open_out path in
  output_string oc (dump ?timescale net ~vectors);
  close_out oc
