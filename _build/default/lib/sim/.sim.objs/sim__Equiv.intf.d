lib/sim/equiv.mli: Netlist Sat_lite
