lib/sim/equiv.ml: Array Bdd Fun Hashtbl List Logic Netlist Random Sat_lite Simulate
