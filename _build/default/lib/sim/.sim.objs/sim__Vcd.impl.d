lib/sim/vcd.ml: Array Buffer Char List Netlist Printf Simulate String
