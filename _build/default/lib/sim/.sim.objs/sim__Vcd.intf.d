lib/sim/vcd.mli: Netlist
