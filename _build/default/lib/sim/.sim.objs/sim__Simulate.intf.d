lib/sim/simulate.mli: Netlist
