lib/sim/simulate.ml: Array List Logic Netlist Printf Random
