(** VCD (value-change-dump) waveform writer driven by the 2-valued
    simulator: apply a sequence of input vectors from the initial state and
    record every primary input, register and primary output. *)

val dump :
  ?timescale:string ->
  Netlist.Network.t ->
  vectors:(string -> bool) list ->
  string
(** One VCD timestep per clock cycle.  Requires binary initial values. *)

val write_file :
  ?timescale:string ->
  string -> Netlist.Network.t -> vectors:(string -> bool) list -> unit
