(** Sequential simulation of networks: 2-valued and conservative 3-valued. *)

type tri = T0 | T1 | Tx

val tri_of_bool : bool -> tri
val tri_equal : tri -> tri -> bool

type state = (int * bool) list
(** Latch node id -> current value. *)

type tri_state = (int * tri) list

val initial_state : Netlist.Network.t -> tri_state
(** From the declared latch initial values ([Ix] maps to [Tx]). *)

val binary_initial_state : Netlist.Network.t -> state
(** Requires every latch to have a binary initial value; raises [Failure]
    otherwise. *)

val eval_all : Netlist.Network.t -> pi:(string -> bool) -> state:state -> bool array
(** Combinational values of every node id for one cycle (latch positions hold
    the current state). *)

val step :
  Netlist.Network.t -> pi:(string -> bool) -> state:state -> state * (string * bool) list
(** One clock cycle: returns the next state and the primary output values. *)

val run :
  Netlist.Network.t ->
  state ->
  (string -> bool) list ->
  state * (string * bool) list list
(** Apply a sequence of input vectors; returns final state and per-cycle
    outputs. *)

val eval_all3 :
  Netlist.Network.t -> pi:(string -> tri) -> state:tri_state -> tri array
(** Conservative 3-valued evaluation. *)

val step3 :
  Netlist.Network.t ->
  pi:(string -> tri) ->
  state:tri_state ->
  tri_state * (string * tri) list

val synchronizing_sequence :
  ?max_len:int -> ?attempts:int -> seed:int -> Netlist.Network.t ->
  (string -> bool) list option
(** Search (randomly, structurally — by 3-valued simulation from the all-X
    state) for an input sequence that drives every latch to a binary value.
    Returns the sequence of input vectors when found. *)
