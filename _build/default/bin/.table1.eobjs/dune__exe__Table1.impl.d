bin/table1.ml: Printf Report Unix
