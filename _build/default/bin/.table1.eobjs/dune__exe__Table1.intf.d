bin/table1.mli:
