(* Command-line interface to the resynthesis system.

     resynth stats CIRCUIT.blif
     resynth run --flow=resynth CIRCUIT.blif -o OUT.blif [--no-verify]
     resynth dump-bench s298 -o s298.blif
     resynth table1 [--circuits ex2,s27,...]
*)

module N = Netlist.Network

let load_lib = function
  | None -> Techmap.Genlib.mcnc_lite
  | Some path -> Techmap.Genlib_io.parse_file path

let load path =
  try Ok (Netlist.Blif.parse_file path) with
  | Failure msg -> Error msg
  | Sys_error msg -> Error msg

let print_stats ~lib label net =
  let model = Sta.mapped_delay ~default:1.0 () in
  Printf.printf "%-14s %s | period %.2f | area %.1f\n" label
    (N.stats_string net)
    (Sta.clock_period net model)
    (Techmap.Mapper.mapped_area net ~lib)

(* --- stats --------------------------------------------------------------- *)

let stats_cmd path =
  let lib = Techmap.Genlib.mcnc_lite in
  match load path with
  | Error msg -> prerr_endline msg; 1
  | Ok net ->
    print_stats ~lib "input" net;
    let path_nodes = Sta.critical_path net (Sta.mapped_delay ()) in
    Printf.printf "critical path: %s\n"
      (String.concat " -> " (List.map (fun n -> n.N.name) path_nodes));
    0

(* --- run ------------------------------------------------------------------ *)

type flow = Base | Retime | Resynth

let run_cmd flow path output verify lib_path =
  let lib = load_lib lib_path in
  match load path with
  | Error msg -> prerr_endline msg; 1
  | Ok net ->
    print_stats ~lib "input" net;
    let mapped = Core.Flow.script_delay_flow net ~lib in
    print_stats ~lib "script.delay" mapped;
    let result =
      match flow with
      | Base -> Ok mapped
      | Retime ->
        (match Core.Flow.retiming_flow mapped ~lib with
         | Ok r -> Ok r
         | Error msg -> Error ("retiming: " ^ msg))
      | Resynth ->
        let options = { Core.Resynth.default_options with Core.Resynth.lib } in
        (match Core.Flow.resynthesis_flow ~options mapped with
         | Ok (r, outcome) ->
           Printf.printf
             "resynthesis: %d stem splits, %d classes, %d moves, %d cones \
              simplified\n"
             outcome.Core.Resynth.stem_splits
             outcome.Core.Resynth.equivalence_classes
             outcome.Core.Resynth.forward_moves
             outcome.Core.Resynth.simplified_cones;
           Ok r
         | Error msg -> Error ("resynthesis: " ^ msg))
    in
    (match result with
     | Error msg -> prerr_endline msg; 1
     | Ok final ->
       print_stats ~lib "result" final;
       if verify then begin
         let ok = Sim.Equiv.seq_equal net final in
         Printf.printf "sequentially equivalent to input: %b\n" ok;
         if not ok then exit 2
       end;
       (match output with
        | Some out when Filename.check_suffix out ".v" ->
          Netlist.Verilog.write_file out final;
          Printf.printf "wrote %s (structural Verilog)\n" out
        | Some out ->
          Netlist.Blif.write_file out final;
          Printf.printf "wrote %s\n" out
        | None -> ());
       0)

(* --- dump-bench ------------------------------------------------------------ *)

let dump_cmd name output =
  match Circuits.Suite.find name with
  | exception Invalid_argument msg -> prerr_endline msg; 1
  | entry ->
    let net = entry.Circuits.Suite.build () in
    let out =
      match output with Some o -> o | None -> name ^ ".blif"
    in
    Netlist.Blif.write_file out net;
    Printf.printf "wrote %s (%s)\n" out (N.stats_string net);
    0

(* --- verify ------------------------------------------------------------------ *)

let verify_cmd path_a path_b =
  match load path_a, load path_b with
  | Error m, _ | _, Error m -> prerr_endline m; 1
  | Ok a, Ok b ->
    let verdict =
      try Sim.Equiv.seq_equal a b
      with Failure _ -> Sim.Equiv.seq_equal_random ~seed:7 a b
    in
    Printf.printf "%s and %s: %s\n" path_a path_b
      (if verdict then "sequentially equivalent"
       else "NOT equivalent");
    if verdict then 0 else 3

(* --- table1 ----------------------------------------------------------------- *)

let table_cmd circuits =
  let names =
    match circuits with
    | [] -> None
    | _ :: _ -> Some circuits
  in
  let rows = Report.Table.run_suite ?names () in
  print_string (Report.Table.render rows);
  print_newline ();
  print_string (Report.Table.summary rows);
  0

(* --- cmdliner wiring ---------------------------------------------------------- *)

open Cmdliner

let path_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"CIRCUIT.blif")

let output_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT.blif")

let stats_t = Term.(const stats_cmd $ path_arg)

let flow_arg =
  let flows = [ ("base", Base); ("retime", Retime); ("resynth", Resynth) ] in
  Arg.(value & opt (enum flows) Resynth & info [ "flow" ] ~docv:"FLOW")

let verify_arg =
  Arg.(value & flag & info [ "no-verify" ] ~doc:"Skip equivalence checking.")

let lib_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "lib" ] ~docv:"LIB.genlib" ~doc:"Gate library (genlib format).")

let run_t =
  Term.(
    const (fun flow path output no_verify lib_path ->
        run_cmd flow path output (not no_verify) lib_path)
    $ flow_arg $ path_arg $ output_arg $ verify_arg $ lib_arg)

let name_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH")

let dump_t = Term.(const dump_cmd $ name_arg $ output_arg)

let circuits_arg =
  Arg.(value & opt (list string) [] & info [ "circuits" ] ~docv:"NAMES")

let table_t = Term.(const table_cmd $ circuits_arg)

let verify_t =
  let a = Arg.(required & pos 0 (some file) None & info [] ~docv:"A.blif") in
  let b = Arg.(required & pos 1 (some file) None & info [] ~docv:"B.blif") in
  Term.(const verify_cmd $ a $ b)

(* --- gen-fsm ------------------------------------------------------------------ *)

let gen_fsm_cmd seed nstates ninputs noutputs output =
  let machine =
    Circuits.Fsm.random ~seed ~name:"fsm" ~nstates ~ninputs ~noutputs ()
  in
  let kiss = Circuits.Kiss.of_fsm machine in
  (match output with
   | Some path when Filename.check_suffix path ".blif" ->
     Netlist.Blif.write_file path (Circuits.Fsm.to_network machine);
     Printf.printf "wrote %s\n" path
   | Some path ->
     Circuits.Kiss.write_file path kiss;
     Printf.printf "wrote %s\n" path
   | None -> print_string (Circuits.Kiss.to_string kiss));
  0

let gen_fsm_t =
  let seed = Arg.(value & opt int 1 & info [ "seed" ]) in
  let nstates = Arg.(value & opt int 8 & info [ "states" ]) in
  let ninputs = Arg.(value & opt int 2 & info [ "inputs" ]) in
  let noutputs = Arg.(value & opt int 2 & info [ "outputs" ]) in
  Term.(const gen_fsm_cmd $ seed $ nstates $ ninputs $ noutputs $ output_arg)

let cmds =
  [ Cmd.v (Cmd.info "stats" ~doc:"Print circuit statistics and critical path")
      stats_t;
    Cmd.v
      (Cmd.info "run"
         ~doc:
           "Run a flow (base = script.delay, retime = +retiming+comb.opt, \
            resynth = the paper's technique) on a BLIF circuit")
      run_t;
    Cmd.v (Cmd.info "dump-bench" ~doc:"Write a suite benchmark as BLIF") dump_t;
    Cmd.v
      (Cmd.info "gen-fsm"
         ~doc:
           "Generate a random complete FSM; write KISS2 (default) or BLIF \
            (-o x.blif)")
      gen_fsm_t;
    Cmd.v
      (Cmd.info "verify"
         ~doc:
           "Check two BLIF circuits for sequential equivalence from their \
            initial states")
      verify_t;
    Cmd.v (Cmd.info "table1" ~doc:"Regenerate Table I") table_t ]

let () =
  let doc = "performance-driven resynthesis via register equivalence" in
  exit (Cmd.eval' (Cmd.group (Cmd.info "resynth" ~doc) cmds))
