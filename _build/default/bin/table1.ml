(* Standalone Table I regeneration (also part of bench/main.exe). *)

let () =
  let t0 = Unix.gettimeofday () in
  let rows = Report.Table.run_suite () in
  print_string (Report.Table.render rows);
  print_newline ();
  print_string (Report.Table.summary rows);
  Printf.printf "regenerated in %.1fs\n" (Unix.gettimeofday () -. t0)
