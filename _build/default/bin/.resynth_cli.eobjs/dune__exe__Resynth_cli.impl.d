bin/resynth_cli.ml: Arg Circuits Cmd Cmdliner Core Filename List Netlist Printf Report Sim Sta String Techmap Term
