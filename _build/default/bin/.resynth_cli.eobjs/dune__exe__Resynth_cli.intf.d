bin/resynth_cli.mli:
