(** Technology mapping by tree covering on a NAND2/INV subject graph.

    The classical SIS flow: decompose every logic node into 2-input NANDs and
    inverters (using algebraic factoring, with balanced trees for delay),
    break the subject DAG into trees at multi-fanout points, and cover each
    tree by library patterns with dynamic programming. *)

type objective = Min_delay | Min_area

val subject_graph : Netlist.Network.t -> Netlist.Network.t
(** Fresh network in which every logic node is a 2-input NAND or an inverter
    (structurally hashed); IO, latches and initial values are preserved. *)

val map : Netlist.Network.t -> lib:Genlib.t -> objective:objective -> Netlist.Network.t
(** Full mapping: subject graph + tree covering.  Every logic node of the
    result carries a {!Netlist.Network.binding}. *)

val mapped_area : Netlist.Network.t -> lib:Genlib.t -> float
(** Total area: bound gates plus latches (unbound logic counts as NAND2). *)

val mapped_delay_model : lib:Genlib.t -> Sta.model
(** Delay model reading gate bindings, adding the library latch setup on
    latch data pins is the caller's concern (the STA treats latch inputs as
    plain end points). *)

val publish_stats : unit -> unit
(** Export aggregated mapping statistics as [techmap.*] gauges in the obs
    metrics registry (total bound cells, total mapped area).  Per-cell
    instantiation counts ([techmap.cell.<gate>]) and map/remap outcome
    counters ([techmap.maps.min_delay], [techmap.maps.min_area],
    [techmap.unmappable]) are registered directly as counters and need no
    publishing step.  Call before [--metrics-json] export. *)
