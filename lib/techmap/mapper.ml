module N = Netlist.Network

type objective = Min_delay | Min_area

let nand2_cover = Logic.Cover.of_strings 2 [ "0-"; "-0" ]
let inv_cover = Logic.Cover.of_strings 1 [ "0" ]

(* --- subject graph -------------------------------------------------------- *)

(* Build a NAND2/INV network.  Signals are (node, inverted) pairs; a
   structural hash shares identical NANDs and inverters. *)
type subject_builder = {
  out : N.t;
  hash : (string, N.node) Hashtbl.t;
}

let sb_inv sb a =
  let key = Printf.sprintf "i%d" a.N.id in
  match Hashtbl.find_opt sb.hash key with
  | Some n -> n
  | None ->
    let n = N.add_logic sb.out inv_cover [ a ] in
    Hashtbl.add sb.hash key n;
    n

let sb_nand sb a b =
  let x, y = if a.N.id <= b.N.id then (a, b) else (b, a) in
  let key = Printf.sprintf "n%d,%d" x.N.id y.N.id in
  match Hashtbl.find_opt sb.hash key with
  | Some n -> n
  | None ->
    let n = N.add_logic sb.out nand2_cover [ x; y ] in
    Hashtbl.add sb.hash key n;
    n

(* Signal with polarity: force to positive polarity inserting an inverter. *)
let as_pos sb (node, inverted) = if inverted then sb_inv sb node else node

let as_neg sb (node, inverted) = if inverted then node else sb_inv sb node

(* Balanced reduction keeps subject-graph depth logarithmic. *)
let rec balanced_reduce f = function
  | [] -> invalid_arg "balanced_reduce: empty"
  | [ x ] -> x
  | items ->
    let rec pair = function
      | [] -> []
      | [ x ] -> [ x ]
      | x :: y :: rest -> f x y :: pair rest
    in
    balanced_reduce f (pair items)

(* AND of signals -> signal: and(a, b) = (nand(a, b), inverted) *)
let sig_and sb a b = (sb_nand sb (as_pos sb a) (as_pos sb b), true)

(* OR via De Morgan: or(a, b) = nand(a', b') *)
let sig_or sb a b = (sb_nand sb (as_neg sb a) (as_neg sb b), false)

let rec expr_to_subject sb env expr =
  match expr with
  | Logic.Factor.Const b -> `Const b
  | Logic.Factor.Lit (v, phase) -> `Sig (env.(v), not phase)
  | Logic.Factor.And es ->
    let parts = List.map (expr_to_subject sb env) es in
    if List.exists (fun p -> p = `Const false) parts then `Const false
    else begin
      let signals = signals_of_parts parts in
      match signals with
      | [] -> `Const true
      | _ :: _ ->
        let s = balanced_reduce (sig_and sb) signals in
        `Sig s
    end
  | Logic.Factor.Or es ->
    let parts = List.map (expr_to_subject sb env) es in
    if List.exists (fun p -> p = `Const true) parts then `Const true
    else begin
      let signals = signals_of_parts parts in
      match signals with
      | [] -> `Const false
      | _ :: _ -> `Sig (balanced_reduce (sig_or sb) signals)
    end

(* Order operands so that register outputs pair with each other in the
   balanced tree: gates reading two registers are exactly what retiming-based
   optimization (and the resynthesis technique downstream) can move across. *)
and signals_of_parts parts =
  let signals =
    List.filter_map
      (function `Sig (n, inv) -> Some (n, inv) | `Const _ -> None)
      parts
  in
  let is_reg (n, _) =
    match n.N.kind with
    | N.Latch _ -> true
    | N.Input | N.Const _ | N.Logic _ -> false
  in
  let regs, others = List.partition is_reg signals in
  regs @ others

let subject_graph net =
  let out = N.create ~name:(N.model_name net) () in
  let sb = { out; hash = Hashtbl.create 256 } in
  let mapping = Hashtbl.create 256 in (* old id -> new node *)
  (* inputs *)
  List.iter
    (fun n -> Hashtbl.add mapping n.N.id (N.add_input out n.N.name))
    (N.inputs net);
  (* placeholder latches so feedback resolves: create with dummy const data,
     rewire after logic is built *)
  let const0 = lazy (N.add_const out false) in
  List.iter
    (fun l ->
      let placeholder =
        N.add_latch out ~name:l.N.name (N.latch_init l) (Lazy.force const0)
      in
      Hashtbl.add mapping l.N.id placeholder)
    (N.latches net);
  List.iter
    (fun n ->
      match n.N.kind with
      | N.Const b -> Hashtbl.add mapping n.N.id (N.add_const out b)
      | N.Input | N.Latch _ | N.Logic _ -> ())
    (N.all_nodes net);
  (* logic in topological order *)
  List.iter
    (fun n ->
      let env =
        Array.map (fun f -> Hashtbl.find mapping f) n.N.fanins
      in
      let expr = Logic.Factor.good_factor (N.cover_of n) in
      let result =
        match expr_to_subject sb env expr with
        | `Const b -> N.add_const out b
        | `Sig s -> as_pos sb s
      in
      Hashtbl.add mapping n.N.id result)
    (N.topo_combinational net);
  (* rewire latch data inputs *)
  List.iter
    (fun l ->
      let new_latch = Hashtbl.find mapping l.N.id in
      let data = Hashtbl.find mapping (N.latch_data net l).N.id in
      N.replace_fanin out new_latch
        ~old_fanin:(N.latch_data out new_latch)
        ~new_fanin:data)
    (N.latches net);
  (* outputs *)
  List.iter
    (fun (name, driver) ->
      N.set_output out name (Hashtbl.find mapping driver.N.id))
    (N.outputs net);
  N.sweep out;
  out

(* --- tree covering -------------------------------------------------------- *)

type match_result = {
  gate : Genlib.gate;
  leaves : N.node array;  (** subject nodes bound to pattern leaves *)
}

(* A subject node is a tree boundary when it is not a single-fanout logic
   node: PIs, constants, latches and multi-fanout logic nodes. *)
let fanout_count net n =
  List.length n.N.fanouts + (if N.drives_output net n then 1 else 0)

let is_boundary net n =
  match n.N.kind with
  | N.Input | N.Const _ | N.Latch _ -> true
  | N.Logic _ -> fanout_count net n <> 1

let node_is_inv n =
  match n.N.kind with
  | N.Logic c ->
    Array.length n.N.fanins = 1 && Logic.Cover.equivalent c inv_cover
  | N.Input | N.Const _ | N.Latch _ -> false

let node_is_nand n =
  match n.N.kind with
  | N.Logic c -> Array.length n.N.fanins = 2 && Logic.Cover.equivalent c nand2_cover
  | N.Input | N.Const _ | N.Latch _ -> false

(* Try to match [pattern] rooted at subject node [n].  Interior pattern
   positions may only consume single-fanout logic nodes (except the root).
   Returns all leaf bindings (there may be several for commutative NANDs; we
   return the list and let the DP pick the best). *)
let matches net gate n =
  let results = ref [] in
  let rec go pattern node is_root bindings k =
    (* k: continuation taking updated bindings *)
    match pattern with
    | Genlib.Leaf i ->
      (match bindings.(i) with
       | Some bound -> if bound == node then k bindings
       | None ->
         let b = Array.copy bindings in
         b.(i) <- Some node;
         k b)
    | Genlib.Inv p ->
      if node_is_inv node && (is_root || not (is_boundary net node)) then
        go p (N.node net node.N.fanins.(0)) false bindings k
    | Genlib.Nand (p1, p2) ->
      if node_is_nand node && (is_root || not (is_boundary net node)) then begin
        let a = N.node net node.N.fanins.(0)
        and b = N.node net node.N.fanins.(1) in
        go p1 a false bindings (fun bnd -> go p2 b false bnd k);
        go p1 b false bindings (fun bnd -> go p2 a false bnd k)
      end
  in
  let empty = Array.make gate.Genlib.ninputs None in
  go gate.Genlib.pattern n true empty (fun bindings ->
      let leaves =
        Array.map
          (function Some x -> x | None -> raise Exit)
          bindings
      in
      results := { gate; leaves } :: !results);
  !results

exception Unmappable of string

let cover_tree net lib objective =
  (* DP over topological order: best match and cost per logic node. *)
  let cap = List.fold_left (fun acc n -> max acc n.N.id) 0 (N.all_nodes net) + 1 in
  let best : match_result option array = Array.make cap None in
  (* (primary, gate count) compared lexicographically: the secondary component
     breaks ties toward matches that consume more subject nodes. *)
  let cost = Array.make cap (infinity, infinity) in
  let node_cost n =
    match n.N.kind with
    | N.Input | N.Const _ | N.Latch _ -> (0.0, 0.0)
    | N.Logic _ -> cost.(n.N.id)
  in
  let leaf_cost n =
    match objective with
    | Min_delay -> node_cost n
    | Min_area ->
      (* Tree covering: boundaries pay their own area once, as tree roots. *)
      if is_boundary net n then (0.0, 0.0) else node_cost n
  in
  List.iter
    (fun n ->
      let candidates =
        List.concat_map (fun g -> try matches net g n with Exit -> []) lib.Genlib.gates
      in
      List.iter
        (fun m ->
          let leaf_costs = Array.map leaf_cost m.leaves in
          let gates =
            Array.fold_left (fun acc (_, g) -> acc +. g) 1.0 leaf_costs
          in
          let primary =
            match objective with
            | Min_delay ->
              m.gate.Genlib.delay
              +. Array.fold_left (fun acc (p, _) -> max acc p) 0.0 leaf_costs
            | Min_area ->
              m.gate.Genlib.area
              +. Array.fold_left (fun acc (p, _) -> acc +. p) 0.0 leaf_costs
          in
          if (primary, gates) < cost.(n.N.id) then begin
            cost.(n.N.id) <- (primary, gates);
            best.(n.N.id) <- Some m
          end)
        candidates;
      if best.(n.N.id) = None then begin
        Obs.Metrics.incr (Obs.Metrics.counter "techmap.unmappable");
        raise (Unmappable (Printf.sprintf "no match at subject node %s" n.N.name))
      end)
    (N.topo_combinational net);
  best

(* --- mapping statistics --------------------------------------------------- *)

(* Aggregated over every [map] call in the process; counter updates are
   atomic and commute, so totals are identical at any [--jobs N].  Per-cell
   instantiation counts live directly in the obs registry
   ([techmap.cell.<gate>]); the float area total is kept here in milli-units
   and turned into a gauge by [publish_stats]. *)
let m_maps_delay = Obs.Metrics.counter "techmap.maps.min_delay"
let m_maps_area = Obs.Metrics.counter "techmap.maps.min_area"
let total_cells = Atomic.make 0
let total_area_milli = Atomic.make 0

let record_stats out ~lib ~objective =
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.incr
      (match objective with
       | Min_delay -> m_maps_delay
       | Min_area -> m_maps_area);
    List.iter
      (fun n ->
        match n.N.binding with
        | Some b ->
          Obs.Metrics.incr (Obs.Metrics.counter ("techmap.cell." ^ b.N.gate_name));
          Atomic.incr total_cells
        | None -> ())
      (N.all_nodes out);
    let area = N.area out ~latch_area:lib.Genlib.latch_area ~default_gate_area:2.0 in
    ignore
      (Atomic.fetch_and_add total_area_milli
         (int_of_float (Float.round (area *. 1000.))))
  end

let publish_stats () =
  Obs.Metrics.set_gauge
    (Obs.Metrics.gauge "techmap.mapped_cells")
    (float_of_int (Atomic.get total_cells));
  Obs.Metrics.set_gauge
    (Obs.Metrics.gauge "techmap.mapped_area_total")
    (float_of_int (Atomic.get total_area_milli) /. 1000.)

let map net ~lib ~objective =
  let subject = subject_graph net in
  let best = cover_tree subject lib objective in
  let out = N.create ~name:(N.model_name subject) () in
  let mapping = Hashtbl.create 256 in
  List.iter
    (fun n -> Hashtbl.add mapping n.N.id (N.add_input out n.N.name))
    (N.inputs subject);
  let const0 = lazy (N.add_const out false) in
  List.iter
    (fun l ->
      let nl = N.add_latch out ~name:l.N.name (N.latch_init l) (Lazy.force const0) in
      N.set_binding out nl
        (Some { N.gate_name = "dff"; gate_area = lib.Genlib.latch_area;
                gate_delay = 0.0 });
      Hashtbl.add mapping l.N.id nl)
    (N.latches subject);
  List.iter
    (fun n ->
      match n.N.kind with
      | N.Const b -> Hashtbl.add mapping n.N.id (N.add_const out b)
      | N.Input | N.Latch _ | N.Logic _ -> ())
    (N.all_nodes subject);
  (* instantiate gates for needed boundary roots, recursively *)
  let rec realize n =
    match Hashtbl.find_opt mapping n.N.id with
    | Some mapped -> mapped
    | None ->
      (match n.N.kind with
       | N.Input | N.Const _ | N.Latch _ ->
         failwith "Mapper.map: source not pre-registered"
       | N.Logic _ ->
         (match best.(n.N.id) with
          | None -> failwith "Mapper.map: uncovered node"
          | Some m ->
            let fanins =
              Array.to_list (Array.map realize m.leaves)
            in
            let g = m.gate in
            let node =
              N.add_logic out ~name:n.N.name g.Genlib.cover fanins
            in
            N.set_binding out node
              (Some { N.gate_name = g.Genlib.gate_name;
                      gate_area = g.Genlib.area;
                      gate_delay = g.Genlib.delay });
            Hashtbl.add mapping n.N.id node;
            node))
  in
  List.iter
    (fun (name, driver) -> N.set_output out name (realize driver))
    (N.outputs subject);
  List.iter
    (fun l ->
      let data = realize (N.latch_data subject l) in
      let nl = Hashtbl.find mapping l.N.id in
      N.replace_fanin out nl ~old_fanin:(N.latch_data out nl) ~new_fanin:data)
    (N.latches subject);
  N.sweep out;
  record_stats out ~lib ~objective;
  out

let mapped_area net ~lib =
  N.area net ~latch_area:lib.Genlib.latch_area ~default_gate_area:2.0

let mapped_delay_model ~lib:_ = Sta.mapped_delay ~default:1.0 ()
