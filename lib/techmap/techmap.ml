(* Library root: re-exports the submodules and hosts the library-level
   statistics entry point ([Techmap.publish_stats]) so binaries don't need
   to know which submodule aggregates them. *)

module Genlib = Genlib
module Genlib_io = Genlib_io
module Mapper = Mapper

let publish_stats = Mapper.publish_stats
