(* Hash-consed ROBDD package over a domain-shared unique table.

   Nodes live in a process-wide (or, in [`Private] mode, per-table) store of
   fixed-size blocks; handles are integer indices and indices 0 and 1 are the
   terminals.  The unique table is striped: a node's hash picks one of
   [nstripes] independently locked open-addressing sub-tables, so concurrent
   domains only contend when they cons into the same stripe at the same
   moment.  Lookups are optimistic and lock-free: published entries are
   write-once, so a probe verifies the (var, low, high) key by value and any
   torn or stale observation degrades to the locked path, never to a wrong
   answer.  Insertion (and stripe growth) always happens under the stripe
   lock, which also makes every lock-holder see fully initialised entries.

   A [man] is no longer a table: it is a *scope* — a lightweight accounting
   handle onto a table.  [create ()] opens a scope on the shared table;
   [create ~mode:`Private ()] builds a fresh table of its own (used by the
   differential tests and the bench baseline).  Each scope tracks the set of
   distinct nodes its operations consed, so [node_count] reports exactly what
   a fresh private manager would have allocated for the same operation
   sequence — node budgets (eqcheck, dontcare) therefore trip identically
   whether the table is cold or warm, serial or parallel.  To keep that
   guarantee, ITE/exists cache entries are stamped with the owning scope and
   ignored by other scopes: sharing happens in the unique table (structure),
   not in the computed caches (work).

   Per-domain state (ITE cache, exists cache, op counters) hangs off a
   [Domain.DLS] key owned by the table, so hot operations never touch a lock
   or another domain's cache lines. *)

type t = int

let bfalse : t = 0
let btrue : t = 1

let terminal_var = max_int

(* --- node store: fixed-size blocks, write-once slots ------------------------- *)

let block_bits = 16
let block_size = 1 lsl block_bits
let block_mask = block_size - 1
let max_blocks = 2048 (* 2048 * 65536 = 134M nodes per table *)

(* Node and slot storage lives in [Bigarray]s, i.e. outside the OCaml heap.
   The store only grows over a process lifetime (the shared table never
   frees a node), and hundreds of MB of live int arrays on the managed heap
   would be re-scanned by every major GC cycle; bigarray payloads are
   opaque to the GC.  Fields are interleaved per node — [var; low; high] at
   offsets 3o..3o+2 — so one traversal step touches one cache line. *)
type ba = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type block = ba

let ba_make n fill : ba =
  let a = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
  Bigarray.Array1.fill a fill;
  a

(* sentinel for "no block yet"; recognised by physical equality *)
let dummy_block : block = ba_make 0 0

let make_block () : block = ba_make (block_size * 3) (-2)

(* --- stripes ------------------------------------------------------------------ *)

let nstripes = 64
let stripe_shift = 33 (* stripe index bits disjoint from small slot masks *)

type stripe = {
  s_lock : Sanitize.Lock.t;
  (* interleaved open-addressing slots, stride 4: [v; low; high; id] per
     slot, all fields -1 filled.  id >= 0 marks an occupied slot.  Keeping
     the key inline means a probe step touches one cache line and never
     dereferences the node store.  Slots are write-once within an array
     (key fields first, [published] fence, id last), so a lock-free reader
     that sees non-fill values sees the true key. *)
  mutable s_slots : ba;
  mutable s_count : int;
  mutable s_grows : int;
  mutable s_contended : int;
}

(* --- per-domain caches -------------------------------------------------------- *)

type dcache = {
  c_f : int array;
  c_g : int array;
  c_h : int array;
  c_r : int array;
  c_u : int array; (* owning scope uid of each entry; 0 = empty *)
  c_mask : int;
  (* direct-mapped front cache of the unique table, interleaved stride 4:
     [v; low; high; id].  The (v, low, high) -> id mapping is immutable
     (nodes are never freed or renumbered), so entries never need
     invalidation and no scope stamp is required: a hit is globally valid.
     Its point is locality — the shared table's slot arrays grow to
     hundreds of MB across a long run and every probe into them misses
     cache, while this stays cache-resident per domain. *)
  c_cons : int array;
  c_cons_mask : int;
  exists_cache : (int, int) Hashtbl.t;
  mutable exists_vars : int list;
  mutable exists_owner : int;
  (* monotone op counters, summed racily for stats *)
  mutable d_ite_hits : int;
  mutable d_ite_misses : int;
  mutable d_mk_calls : int;
  mutable d_unique_hits : int;
}

let make_dcache cache_size =
  let rec next_pow2 n k = if k >= n then k else next_pow2 n (k * 2) in
  let ccap = next_pow2 (max 1024 cache_size) 1024 in
  { c_f = Array.make ccap 0;
    c_g = Array.make ccap 0;
    c_h = Array.make ccap 0;
    c_r = Array.make ccap 0;
    c_u = Array.make ccap 0;
    c_mask = ccap - 1;
    c_cons = Array.make (ccap * 4) (-1);
    c_cons_mask = ccap - 1;
    exists_cache = Hashtbl.create 256;
    exists_vars = [];
    exists_owner = 0;
    d_ite_hits = 0;
    d_ite_misses = 0;
    d_mk_calls = 0;
    d_unique_hits = 0 }

(* --- tables ------------------------------------------------------------------- *)

type table = {
  t_uid : int;
  stripes : stripe array;
  (* authoritative block directory: CAS-installed, so a writer that binds a
     block through here acquires the -2 array fill before storing fields *)
  blocks_sync : block Atomic.t array;
  (* plain mirror of [blocks_sync] for lock-free readers: every element goes
     [dummy_block] -> installed block, and all mirror writers store the same
     pointer, so the race is benign (OCaml rules out torn pointer reads).  A
     reader that observes a stale [dummy_block], or a field still showing the
     -2 fill, degrades to the [published]-synced retry path. *)
  blocks : block array;
  next_id : int Atomic.t;
  (* bumped (a full RMW fence) after node fields are written and before the
     id is published into a stripe slot; readers spin on it when they observe
     a not-yet-visible field *)
  published : int Atomic.t;
  dls : dcache Domain.DLS.key;
  t_caches : dcache list ref; (* every dcache ever created for this table *)
  t_caches_lock : Sanitize.Lock.t;
}

(* process-wide monotone stats, across all tables — commutative atomic
   counters: increments from any domain interleave freely, only totals are
   read, and none is an input to any result *)
let g_allocated = Atomic.make 0
let g_tables = Atomic.make 0
let g_scopes = Atomic.make 0
(* scope uids; 0 is the "no owner" cache stamp *)
let g_uid = Atomic.make 1

(* Lock ranks: the cache registry lock (taken once per domain per table,
   from DLS init) ranks below the stripe locks; neither is ever held while
   acquiring the other, and both rank above the scheduler locks. *)
let order_caches = 30
let order_stripe = 40

let initial_stripe_slots = 64

let make_table ~cache_size () =
  (* uid first: stripe locks carry it in their sanitizer names *)
  let uid = Atomic.fetch_and_add g_uid 1 in
  let caches = ref [] in
  let caches_lock =
    Sanitize.Lock.create ~order:order_caches
      ~name:(Printf.sprintf "bdd.%d.caches" uid)
  in
  let dls =
    Domain.DLS.new_key (fun () ->
        let c = make_dcache cache_size in
        Sanitize.Lock.lock caches_lock;
        caches := c :: !caches;
        Sanitize.Lock.unlock caches_lock;
        c)
  in
  let t =
    { t_uid = uid;
      stripes =
        Array.init nstripes (fun i ->
            { s_lock =
                Sanitize.Lock.create ~order:order_stripe
                  ~name:(Printf.sprintf "bdd.%d.stripe.%d" uid i);
              s_slots = ba_make (initial_stripe_slots * 4) (-1);
              s_count = 0;
              s_grows = 0;
              s_contended = 0 });
      blocks_sync = Array.init max_blocks (fun _ -> Atomic.make dummy_block);
      blocks = Array.make max_blocks dummy_block;
      next_id = Atomic.make 2;
      published = Atomic.make 0;
      dls;
      t_caches = caches;
      t_caches_lock = caches_lock }
  in
  (* terminals live in block 0; install it eagerly *)
  let b0 = make_block () in
  Atomic.set t.blocks_sync.(0) b0;
  t.blocks.(0) <- b0;
  Atomic.incr g_tables;
  t

(* The process-wide shared table, built at module initialisation (before any
   domain can be spawned, so the binding itself is race-free). *)
let shared_table = make_table ~cache_size:(1 lsl 16) ()

type mode = [ `Shared | `Private ]

let g_default_mode : mode Atomic.t = Atomic.make `Shared

let set_default_mode m = Atomic.set g_default_mode m
let default_mode () = Atomic.get g_default_mode

(* --- scopes ------------------------------------------------------------------- *)

type man = {
  table : table;
  uid : int; (* root scope uid, shared by sub-scopes for cache stamping *)
  parent : man option;
  (* open-addressing set of node ids consed through this scope; slot 0 is
     empty (valid ids are >= 2) *)
  mutable seen : int array;
  mutable seen_mask : int;
  mutable seen_n : int;
  (* direct-mapped positive filter over [seen]: filter.(h id) = id implies
     id is in [seen].  The set itself grows to megabytes on big builds, so
     its probes miss cache; re-consing the same nodes has strong temporal
     locality, and this L1-resident front absorbs most of those probes. *)
  filter : int array;
}

let filter_bits = 9
let filter_mask = (1 lsl filter_bits) - 1

let make_scope ~table ~uid ~parent =
  Atomic.incr g_scopes;
  let cap = 256 in
  { table;
    uid;
    parent;
    seen = Array.make cap 0;
    seen_mask = cap - 1;
    seen_n = 0;
    filter = Array.make (filter_mask + 1) 0 }

let create ?(cache_size = 1 lsl 14) ?mode () =
  let mode = match mode with Some m -> m | None -> Atomic.get g_default_mode in
  let table =
    match mode with
    | `Shared -> shared_table
    | `Private -> make_table ~cache_size ()
  in
  make_scope ~table ~uid:(Atomic.fetch_and_add g_uid 1) ~parent:None

let sub_scope man =
  make_scope ~table:man.table ~uid:man.uid ~parent:(Some man)

let is_shared man = man.table == shared_table
let same_table a b = a.table == b.table

(* --- scope accounting --------------------------------------------------------- *)

let seen_grow man =
  let old = man.seen in
  let cap = 2 * Array.length old in
  let fresh = Array.make cap 0 in
  let mask = cap - 1 in
  Array.iter
    (fun id ->
      if id <> 0 then begin
        let s = ref ((id * 0x9E3779B1) land mask) in
        while fresh.(!s) <> 0 do
          s := (!s + 1) land mask
        done;
        fresh.(!s) <- id
      end)
    old;
  man.seen <- fresh;
  man.seen_mask <- mask

(* top-level tail loop so the hot path allocates nothing: returns the free
   slot for [id], or -1 when [id] is already present *)
let rec seen_probe seen mask id s =
  let cur = Array.unsafe_get seen s in
  if cur = id then -1
  else if cur = 0 then s
  else seen_probe seen mask id ((s + 1) land mask)

(* returns [true] iff [id] was not in the set yet *)
let seen_add man id =
  let mask = man.seen_mask in
  let s = seen_probe man.seen mask id ((id * 0x9E3779B1) land mask) in
  if s < 0 then false
  else begin
    Array.unsafe_set man.seen s id;
    man.seen_n <- man.seen_n + 1;
    if 3 * man.seen_n >= 2 * (mask + 1) then seen_grow man;
    true
  end

(* A child scope's seen set is always a subset of its parent's (both are
   charged together below), so a hit in the child — filter or set — means
   the whole parent chain already has the id. *)
let rec scope_add man id =
  let fs = (id * 0x9E3779B1) land filter_mask in
  if Array.unsafe_get man.filter fs <> id then begin
    Array.unsafe_set man.filter fs id;
    if seen_add man id then
      match man.parent with Some p -> scope_add p id | None -> ()
  end

let node_count man = 2 + man.seen_n

let adopt dst src =
  if dst.table != src.table then
    invalid_arg "Bdd.adopt: scopes belong to different tables";
  Array.iter (fun id -> if id <> 0 then scope_add dst id) src.seen

(* --- node field access -------------------------------------------------------- *)

(* Fields are write-once: a racy read returns either the initial fill (-2) or
   the final value.  Observing the fill means the publishing domain's writes
   are not yet visible here; syncing on [published] (an atomic the writer
   RMW'd after its field writes) and retrying is enough. *)

(* The cold path of the three field readers below: sync on [published] (an
   atomic the writer RMW'd between writing the fields and publishing the id)
   and retry.  The retry bound turns a broken publication invariant into a
   diagnosable crash instead of a silent livelock; a legitimate wait (writer
   preempted mid-publish) resolves in a handful of iterations. *)
let rec wait_field t read f spins =
  if spins > 100_000_000 then
    failwith
      (Printf.sprintf "Bdd: stuck reading node %d (next_id=%d)" f
         (Atomic.get t.next_id));
  Domain.cpu_relax ();
  (* acquire on [published] pairs with the writer's RMW, making the field
     writes visible; the block itself is read through the CAS-installed
     authoritative directory and mirrored for future fast-path reads *)
  (* lint-waive: mm/naked-atomic-get — this IS the documented sync-retry
     protocol the rule points at: the get is the acquire half of the
     writer's RMW fence, and the field read below is validated by value. *)
  ignore (Atomic.get t.published);
  let bi = f lsr block_bits in
  let b = Atomic.get t.blocks_sync.(bi) in
  if b == dummy_block then wait_field t read f (spins + 1)
  else begin
    if t.blocks.(bi) == dummy_block then t.blocks.(bi) <- b;
    let v = read b (f land block_mask) in
    if v >= -1 then begin
      if Sanitize.enabled () then Sanitize.Pub.read ~table:t.t_uid ~id:f;
      v
    end
    else wait_field t read f (spins + 1)
  end

(* Handles stay below the capacity check in [insert_locked], so the block
   index is always in bounds; the inner offset is masked to the block size. *)
let read_var b o = Bigarray.Array1.get b (o * 3)
let read_low b o = Bigarray.Array1.get b ((o * 3) + 1)
let read_high b o = Bigarray.Array1.get b ((o * 3) + 2)

let var_of_id t f =
  let b = Array.unsafe_get t.blocks (f lsr block_bits) in
  if b != dummy_block then begin
    let v = Bigarray.Array1.unsafe_get b ((f land block_mask) * 3) in
    if v >= -1 then v else wait_field t read_var f 0
  end
  else wait_field t read_var f 0

let low_of_id t f =
  let b = Array.unsafe_get t.blocks (f lsr block_bits) in
  if b != dummy_block then begin
    let v = Bigarray.Array1.unsafe_get b (((f land block_mask) * 3) + 1) in
    if v >= -1 then v else wait_field t read_low f 0
  end
  else wait_field t read_low f 0

let high_of_id t f =
  let b = Array.unsafe_get t.blocks (f lsr block_bits) in
  if b != dummy_block then begin
    let v = Bigarray.Array1.unsafe_get b (((f land block_mask) * 3) + 2) in
    if v >= -1 then v else wait_field t read_high f 0
  end
  else wait_field t read_high f 0

let var_of man f = if f < 2 then terminal_var else var_of_id man.table f

(* --- hashing ------------------------------------------------------------------- *)

(* Fibonacci-style multiplicative mix of a packed triple; the three odd
   constants keep var/low/high from cancelling in the xor. *)
let hash3 v low high =
  let h = (v * 0x9E3779B1) lxor (low * 0x85EBCA77) lxor (high * 0xC2B2AE3D) in
  h lxor (h lsr 17)

(* --- unique table ------------------------------------------------------------- *)

let dcache_of t = Domain.DLS.get t.dls

(* Optimistic probe without the stripe lock.  A non-negative result is
   always a correct find: slots are write-once and the inline key was
   verified by value, so any torn or stale observation shows a -1 fill and
   mismatches.  Anything uncertain (empty slot, over-long chain on a
   possibly stale array) answers -1, meaning "take the stripe lock". *)
let rec probe_loop slots mask v low high s steps =
  if steps > mask then -1
  else begin
    let idx = s * 4 in
    let id = Bigarray.Array1.unsafe_get slots (idx + 3) in
    if id < 0 then -1
    else if
      Bigarray.Array1.unsafe_get slots idx = v
      && Bigarray.Array1.unsafe_get slots (idx + 1) = low
      && Bigarray.Array1.unsafe_get slots (idx + 2) = high
    then id
    else probe_loop slots mask v low high ((s + 1) land mask) (steps + 1)
  end

let probe_lockfree st v low high h3 =
  let slots = st.s_slots in
  let mask = (Bigarray.Array1.dim slots lsr 2) - 1 in
  probe_loop slots mask v low high (h3 land mask) 0

let grow_stripe st =
  let old = st.s_slots in
  let oldn = Bigarray.Array1.dim old lsr 2 in
  let cap = 2 * oldn in
  let fresh = ba_make (cap * 4) (-1) in
  let mask = cap - 1 in
  for i = 0 to oldn - 1 do
    let idx = i * 4 in
    let id = Bigarray.Array1.get old (idx + 3) in
    if id >= 0 then begin
      let v = Bigarray.Array1.get old idx
      and l = Bigarray.Array1.get old (idx + 1)
      and h = Bigarray.Array1.get old (idx + 2) in
      let s = ref (hash3 v l h land mask) in
      while Bigarray.Array1.get fresh ((!s * 4) + 3) >= 0 do
        s := (!s + 1) land mask
      done;
      let fi = !s * 4 in
      Bigarray.Array1.set fresh fi v;
      Bigarray.Array1.set fresh (fi + 1) l;
      Bigarray.Array1.set fresh (fi + 2) h;
      Bigarray.Array1.set fresh (fi + 3) id
    end
  done;
  st.s_slots <- fresh;
  st.s_grows <- st.s_grows + 1

let rec insert_loop t c st slots mask v low high s =
  let idx = s * 4 in
  let id = Bigarray.Array1.get slots (idx + 3) in
  if id < 0 then begin
    let id = Atomic.fetch_and_add t.next_id 1 in
    let bi = id lsr block_bits in
    if bi >= max_blocks then begin
      Sanitize.Lock.unlock st.s_lock;
      failwith "Bdd: node capacity exceeded"
    end;
    (* bind the block via the CAS-installed directory: whether this thread
       installs or loses the race, the acquire orders the -2 fill before
       the field stores below; then mirror for lock-free readers *)
    if Atomic.get t.blocks_sync.(bi) == dummy_block then
      ignore
        (Atomic.compare_and_set t.blocks_sync.(bi) dummy_block (make_block ()));
    let b = Atomic.get t.blocks_sync.(bi) in
    if t.blocks.(bi) == dummy_block then t.blocks.(bi) <- b;
    let o = (id land block_mask) * 3 in
    Bigarray.Array1.set b o v;
    Bigarray.Array1.set b (o + 1) low;
    Bigarray.Array1.set b (o + 2) high;
    Bigarray.Array1.set slots idx v;
    Bigarray.Array1.set slots (idx + 1) low;
    Bigarray.Array1.set slots (idx + 2) high;
    if Sanitize.enabled () then Sanitize.Pub.wrote ~table:t.t_uid ~id;
    (* full fence: the field and key writes above become visible to any
       domain that subsequently syncs on [published] (or takes this
       stripe's lock) before the id below publishes the slot *)
    Atomic.incr t.published;
    if Sanitize.enabled () then Sanitize.Pub.fenced ~table:t.t_uid ~id;
    Bigarray.Array1.set slots (idx + 3) id;
    if Sanitize.enabled () then Sanitize.Pub.published ~table:t.t_uid ~id;
    st.s_count <- st.s_count + 1;
    Atomic.incr g_allocated;
    id
  end
  else if
    Bigarray.Array1.get slots idx = v
    && Bigarray.Array1.get slots (idx + 1) = low
    && Bigarray.Array1.get slots (idx + 2) = high
  then begin
    c.d_unique_hits <- c.d_unique_hits + 1;
    id
  end
  else insert_loop t c st slots mask v low high ((s + 1) land mask)

(* Returns the node id; counts a unique-table hit on [c] itself so the hot
   path stays allocation-free. *)
let insert_locked t c st v low high h3 =
  if not (Sanitize.Lock.try_lock st.s_lock) then begin
    Sanitize.Lock.lock st.s_lock;
    st.s_contended <- st.s_contended + 1
  end;
  (* grow at 2/3 load so probe chains stay short *)
  if 3 * (st.s_count + 1) >= 2 * (Bigarray.Array1.dim st.s_slots lsr 2) then
    grow_stripe st;
  let slots = st.s_slots in
  let mask = (Bigarray.Array1.dim slots lsr 2) - 1 in
  let id = insert_loop t c st slots mask v low high (h3 land mask) in
  Sanitize.Lock.unlock st.s_lock;
  id

let cons man c v low high =
  c.d_mk_calls <- c.d_mk_calls + 1;
  let h3 = hash3 v low high in
  let ci = (h3 land c.c_cons_mask) * 4 in
  let cc = c.c_cons in
  if
    Array.unsafe_get cc ci = v
    && Array.unsafe_get cc (ci + 1) = low
    && Array.unsafe_get cc (ci + 2) = high
  then begin
    let id = Array.unsafe_get cc (ci + 3) in
    c.d_unique_hits <- c.d_unique_hits + 1;
    scope_add man id;
    id
  end
  else begin
    let t = man.table in
    let st =
      Array.unsafe_get t.stripes ((h3 lsr stripe_shift) land (nstripes - 1))
    in
    let id = probe_lockfree st v low high h3 in
    let id =
      if id >= 0 then begin
        (* the lock-free probe trusted a published slot: tell the checker
           this domain will now read node [id]'s fields unfenced *)
        if Sanitize.enabled () then Sanitize.Pub.read ~table:t.t_uid ~id;
        c.d_unique_hits <- c.d_unique_hits + 1;
        id
      end
      else insert_locked t c st v low high h3
    in
    Array.unsafe_set cc ci v;
    Array.unsafe_set cc (ci + 1) low;
    Array.unsafe_set cc (ci + 2) high;
    Array.unsafe_set cc (ci + 3) id;
    scope_add man id;
    id
  end

let mk_c man c v low high = if low = high then low else cons man c v low high

let mk man v low high = mk_c man (dcache_of man.table) v low high

let var man i =
  assert (i >= 0);
  mk man i bfalse btrue

let nvar man i = mk man i btrue bfalse

let is_true f = f = btrue
let is_false f = f = bfalse
let equal (a : t) (b : t) = a = b

(* --- ITE with per-domain, scope-stamped memoisation --------------------------- *)

(* Cache entries are only valid for the scope (uid) that wrote them: a hit
   from another scope would skip consing nodes this scope has not charged
   yet, making [node_count] — and therefore every consumer's node budget —
   depend on what ran before.  Structure is still shared through the unique
   table; only the memoised *work* is per-scope. *)
let rec ite_rec man c f g h =
  if f = btrue then g
  else if f = bfalse then h
  else if g = h then g
  else if g = btrue && h = bfalse then f
  else begin
    let slot = hash3 f g h land c.c_mask in
    if
      c.c_u.(slot) = man.uid
      && c.c_f.(slot) = f
      && c.c_g.(slot) = g
      && c.c_h.(slot) = h
    then begin
      if Sanitize.enabled () then
        Sanitize.Dls.cache_hit ~entry_uid:c.c_u.(slot) ~scope_uid:man.uid;
      c.d_ite_hits <- c.d_ite_hits + 1;
      c.c_r.(slot)
    end
    else begin
      c.d_ite_misses <- c.d_ite_misses + 1;
      let t = man.table in
      let vf = var_of_id t f in
      let vg = if g < 2 then terminal_var else var_of_id t g in
      let vh = if h < 2 then terminal_var else var_of_id t h in
      let v = min vf (min vg vh) in
      (* cofactors written out so the miss path allocates no closure *)
      let ft = if vf = v then high_of_id t f else f in
      let gt = if vg = v then high_of_id t g else g in
      let ht = if vh = v then high_of_id t h else h in
      let hi = ite_rec man c ft gt ht in
      let fe = if vf = v then low_of_id t f else f in
      let ge = if vg = v then low_of_id t g else g in
      let he = if vh = v then low_of_id t h else h in
      let lo = ite_rec man c fe ge he in
      let r = mk_c man c v lo hi in
      c.c_f.(slot) <- f;
      c.c_g.(slot) <- g;
      c.c_h.(slot) <- h;
      c.c_r.(slot) <- r;
      c.c_u.(slot) <- man.uid;
      r
    end
  end

let ite man f g h = ite_rec man (dcache_of man.table) f g h

let bnot man f = ite man f bfalse btrue
let band man f g = ite man f g bfalse
let bor man f g = ite man f btrue g
let bxor man f g = ite man f (bnot man g) g
let bxnor man f g = ite man f g (bnot man g)
let bimp man f g = ite man f g btrue

let cofactor man f i value =
  let t = man.table in
  let c = dcache_of t in
  let rec go f =
    let v = var_of man f in
    if v > i then f
    else if v = i then (if value then high_of_id t f else low_of_id t f)
    else begin
      let hi = go (high_of_id t f) in
      let lo = go (low_of_id t f) in
      mk_c man c v lo hi
    end
  in
  go f

(* Existential quantification over a variable set.  The per-domain cache is
   keyed on the node only, so it is cleared whenever the variable set or the
   owning scope changes. *)
let quantify man ~universal vars f =
  let vars = List.sort_uniq compare vars in
  let c = dcache_of man.table in
  let key = if universal then -1 :: vars else vars in
  if c.exists_owner <> man.uid || c.exists_vars <> key then begin
    Hashtbl.clear c.exists_cache;
    c.exists_vars <- key;
    c.exists_owner <- man.uid
  end;
  let t = man.table in
  let in_set v = List.mem v vars in
  let rec go f =
    if f < 2 then f
    else begin
      let v = var_of_id t f in
      if List.for_all (fun x -> x < v) vars then f
      else
        match Hashtbl.find_opt c.exists_cache f with
        | Some r ->
          if Sanitize.enabled () then
            Sanitize.Dls.cache_hit ~entry_uid:c.exists_owner
              ~scope_uid:man.uid;
          r
        | None ->
          let lo = go (low_of_id t f) and hi = go (high_of_id t f) in
          let r =
            if in_set v then
              if universal then ite_rec man c lo hi bfalse
              else ite_rec man c lo btrue hi
            else mk_c man c v lo hi
          in
          Hashtbl.add c.exists_cache f r;
          r
    end
  in
  go f

let exists man vars f = quantify man ~universal:false vars f
let forall man vars f = quantify man ~universal:true vars f

(* Relational product exists vars (a AND b) computed in one recursion; cached
   in a local table per call. *)
let and_exists man vars a b =
  let vars = List.sort_uniq compare vars in
  let in_set v = List.mem v vars in
  let t = man.table in
  let c = dcache_of t in
  let cache = Hashtbl.create 1024 in
  let rec go a b =
    if a = bfalse || b = bfalse then bfalse
    else if a = btrue && b = btrue then btrue
    else if a = btrue then exists man vars b
    else if b = btrue then exists man vars a
    else begin
      let key = if a <= b then (a, b) else (b, a) in
      match Hashtbl.find_opt cache key with
      | Some r -> r
      | None ->
        let va = var_of man a and vb = var_of man b in
        let v = min va vb in
        let cof x vx side =
          if vx = v then
            if side then high_of_id t x else low_of_id t x
          else x
        in
        let lo = go (cof a va false) (cof b vb false) in
        let r =
          if in_set v then
            if lo = btrue then btrue
            else ite_rec man c lo btrue (go (cof a va true) (cof b vb true))
          else begin
            let hi = go (cof a va true) (cof b vb true) in
            mk_c man c v lo hi
          end
        in
        Hashtbl.add cache key r;
        r
    end
  in
  go a b

let compose man f i g =
  (* Shannon: f[g/i] = ite(g, f_i, f_i') *)
  let hi = cofactor man f i true and lo = cofactor man f i false in
  ite man g hi lo

let rename man f mapping =
  let t = man.table in
  let c = dcache_of t in
  let cache = Hashtbl.create 256 in
  let rec go f =
    if f < 2 then f
    else
      match Hashtbl.find_opt cache f with
      | Some r -> r
      | None ->
        let v = var_of_id t f in
        let lo = go (low_of_id t f) and hi = go (high_of_id t f) in
        let v' = mapping v in
        (* Monotonicity on the support keeps levels ordered; build via ite on
           the renamed variable to stay safe even if levels collide. *)
        let r = ite_rec man c (mk_c man c v' bfalse btrue) hi lo in
        Hashtbl.add cache f r;
        r
  in
  go f

let support man f =
  let t = man.table in
  let seen = Hashtbl.create 64 in
  let vars = Hashtbl.create 16 in
  let rec go f =
    if f >= 2 && not (Hashtbl.mem seen f) then begin
      Hashtbl.add seen f ();
      Hashtbl.replace vars (var_of_id t f) ();
      go (low_of_id t f);
      go (high_of_id t f)
    end
  in
  go f;
  List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) vars [])

let size man f =
  let t = man.table in
  let seen = Hashtbl.create 64 in
  let count = ref 0 in
  let rec go f =
    if f >= 2 && not (Hashtbl.mem seen f) then begin
      Hashtbl.add seen f ();
      incr count;
      go (low_of_id t f);
      go (high_of_id t f)
    end
  in
  go f;
  !count

let sat_count man ~nvars f =
  let t = man.table in
  let cache = Hashtbl.create 256 in
  let rec go f =
    (* number of solutions over variables strictly below terminal, weighted
       at the end for skipped levels *)
    if f = bfalse then (0.0, nvars)
    else if f = btrue then (1.0, nvars)
    else
      match Hashtbl.find_opt cache f with
      | Some r -> r
      | None ->
        let v = var_of_id t f in
        let lo, lov = go (low_of_id t f) in
        let hi, hiv = go (high_of_id t f) in
        let lo = lo *. (2.0 ** float_of_int (lov - v - 1)) in
        let hi = hi *. (2.0 ** float_of_int (hiv - v - 1)) in
        let r = (lo +. hi, v) in
        Hashtbl.add cache f r;
        r
  in
  let total, top = go f in
  total *. (2.0 ** float_of_int top)

let any_sat man f =
  if f = bfalse then raise Not_found;
  let t = man.table in
  let rec go f acc =
    if f = btrue then List.rev acc
    else begin
      let v = var_of_id t f in
      if high_of_id t f <> bfalse then go (high_of_id t f) ((v, true) :: acc)
      else go (low_of_id t f) ((v, false) :: acc)
    end
  in
  go f []

let eval man f assign =
  let t = man.table in
  let rec go f =
    if f = btrue then true
    else if f = bfalse then false
    else if assign (var_of_id t f) then go (high_of_id t f)
    else go (low_of_id t f)
  in
  go f

let of_cover man cover =
  let cube_bdd c =
    let acc = ref btrue in
    Logic.Cube.iteri
      (fun v l ->
        match l with
        | Logic.Cube.One -> acc := band man !acc (var man v)
        | Logic.Cube.Zero -> acc := band man !acc (nvar man v)
        | Logic.Cube.Both -> ())
      c;
    !acc
  in
  List.fold_left
    (fun acc c -> bor man acc (cube_bdd c))
    bfalse cover.Logic.Cover.cubes

exception Cover_too_large

let to_cover ?(max_cubes = max_int) man ~nvars f =
  let t = man.table in
  let cubes = ref [] in
  let count = ref 0 in
  let rec go f prefix =
    if f = btrue then begin
      incr count;
      if !count > max_cubes then raise Cover_too_large;
      cubes := prefix :: !cubes
    end
    else if f <> bfalse then begin
      let v = var_of_id t f in
      assert (v < nvars);
      go (high_of_id t f) ((v, Logic.Cube.One) :: prefix);
      go (low_of_id t f) ((v, Logic.Cube.Zero) :: prefix)
    end
  in
  go f [];
  let cube_of assignments =
    let c = Logic.Cube.universe nvars in
    List.iter (fun (v, l) -> Logic.Cube.set c v l) assignments;
    c
  in
  Logic.Cover.make nvars (List.map cube_of !cubes)

(* --- statistics ---------------------------------------------------------------- *)

type stats = {
  shared_nodes : int;
  shared_capacity : int;
  shared_load_pct : float;
  ite_hits : int;
  ite_misses : int;
  mk_calls : int;
  unique_hits : int;
  stripe_contention : int;
  stripe_grows : int;
  tables_created : int;
  scopes_opened : int;
  nodes_allocated_total : int;
}

let stats () =
  let t = shared_table in
  let capacity = ref 0
  and load = ref 0
  and contention = ref 0
  and grows = ref 0 in
  Array.iter
    (fun st ->
      capacity := !capacity + (Bigarray.Array1.dim st.s_slots lsr 2);
      load := !load + st.s_count;
      (* lint-waive: typed/lock-discipline -- racy monitoring read;
         stats () is offline-only and tolerates a stale count *)
      contention := !contention + st.s_contended;
      grows := !grows + st.s_grows)
    t.stripes;
  let hits = ref 0 and misses = ref 0 and mk = ref 0 and uhits = ref 0 in
  List.iter
    (fun c ->
      hits := !hits + c.d_ite_hits;
      misses := !misses + c.d_ite_misses;
      mk := !mk + c.d_mk_calls;
      uhits := !uhits + c.d_unique_hits)
    !(t.t_caches);
  { shared_nodes = Atomic.get t.next_id - 2;
    shared_capacity = !capacity;
    shared_load_pct =
      (if !capacity = 0 then 0.0
       else 100.0 *. float_of_int !load /. float_of_int !capacity);
    ite_hits = !hits;
    ite_misses = !misses;
    mk_calls = !mk;
    unique_hits = !uhits;
    stripe_contention = !contention;
    stripe_grows = !grows;
    tables_created = Atomic.get g_tables;
    scopes_opened = Atomic.get g_scopes;
    nodes_allocated_total = Atomic.get g_allocated }

let total_allocated () = Atomic.get g_allocated

let publish_stats () =
  let s = stats () in
  let g name v = Obs.Metrics.set_gauge (Obs.Metrics.gauge name) v in
  let f = float_of_int in
  g "bdd.shared.nodes" (f s.shared_nodes);
  g "bdd.shared.capacity" (f s.shared_capacity);
  g "bdd.shared.load_pct" s.shared_load_pct;
  g "bdd.ite.hits" (f s.ite_hits);
  g "bdd.ite.misses" (f s.ite_misses);
  g "bdd.ite.hit_pct"
    (let total = s.ite_hits + s.ite_misses in
     if total = 0 then 0.0 else 100.0 *. f s.ite_hits /. f total);
  g "bdd.mk.calls" (f s.mk_calls);
  g "bdd.mk.unique_hits" (f s.unique_hits);
  g "bdd.stripe.contention" (f s.stripe_contention);
  g "bdd.stripe.grows" (f s.stripe_grows);
  g "bdd.tables" (f s.tables_created);
  g "bdd.scopes" (f s.scopes_opened);
  g "bdd.nodes_allocated_total" (f s.nodes_allocated_total)
