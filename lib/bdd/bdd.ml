(* Hash-consed ROBDD package.  Nodes are stored in growable parallel arrays;
   handles are integer indices.  Indices 0 and 1 are the terminals. *)

type t = int

let bfalse : t = 0
let btrue : t = 1

(* The unique table is open-addressing with linear probing over parallel int
   arrays — the (var, low, high) key lives in three flat arrays instead of an
   allocated tuple, and the hash is an integer mix rather than the polymorphic
   hash.  The ITE memo is a bounded direct-mapped computed table (overwrite on
   collision), so the reachability fixpoint never churns tuple keys through a
   growing Hashtbl. *)
type man = {
  mutable var_of : int array;   (* variable level of each node *)
  mutable low_of : int array;
  mutable high_of : int array;
  mutable next_id : int;
  (* unique table: u_id.(slot) = -1 marks an empty slot *)
  mutable u_var : int array;
  mutable u_low : int array;
  mutable u_high : int array;
  mutable u_id : int array;
  mutable u_count : int;
  mutable u_mask : int;         (* capacity - 1; capacity is a power of 2 *)
  (* direct-mapped ITE cache: c_f.(slot) = -1 marks an empty slot *)
  c_f : int array;
  c_g : int array;
  c_h : int array;
  c_r : int array;
  c_mask : int;
  exists_cache : (int, int) Hashtbl.t;            (* scoped per-call via clear *)
  mutable exists_vars : int list;
}

let terminal_var = max_int

(* Fibonacci-style multiplicative mix of a packed triple; the three odd
   constants keep var/low/high from cancelling in the xor. *)
let hash3 v low high =
  let h = (v * 0x9E3779B1) lxor (low * 0x85EBCA77) lxor (high * 0xC2B2AE3D) in
  h lxor (h lsr 17)

let rec next_pow2 n k = if k >= n then k else next_pow2 n (k * 2)

let create ?(cache_size = 1 lsl 14) () =
  let cap = 1024 in
  let ccap = next_pow2 (max 1024 cache_size) 1024 in
  { var_of = Array.make cap terminal_var;
    low_of = Array.make cap (-1);
    high_of = Array.make cap (-1);
    next_id = 2;
    u_var = Array.make (2 * cap) 0;
    u_low = Array.make (2 * cap) 0;
    u_high = Array.make (2 * cap) 0;
    u_id = Array.make (2 * cap) (-1);
    u_count = 0;
    u_mask = (2 * cap) - 1;
    c_f = Array.make ccap (-1);
    c_g = Array.make ccap 0;
    c_h = Array.make ccap 0;
    c_r = Array.make ccap 0;
    c_mask = ccap - 1;
    exists_cache = Hashtbl.create 256;
    exists_vars = [] }

let grow man =
  let cap = Array.length man.var_of in
  let resize a fill =
    let b = Array.make (2 * cap) fill in
    Array.blit a 0 b 0 cap;
    b
  in
  man.var_of <- resize man.var_of terminal_var;
  man.low_of <- resize man.low_of (-1);
  man.high_of <- resize man.high_of (-1)

let rehash_unique man =
  let cap = (man.u_mask + 1) * 2 in
  let u_var = Array.make cap 0
  and u_low = Array.make cap 0
  and u_high = Array.make cap 0
  and u_id = Array.make cap (-1) in
  let mask = cap - 1 in
  for i = 0 to man.u_mask do
    let id = man.u_id.(i) in
    if id >= 0 then begin
      let s = ref (hash3 man.u_var.(i) man.u_low.(i) man.u_high.(i) land mask) in
      while u_id.(!s) >= 0 do
        s := (!s + 1) land mask
      done;
      u_var.(!s) <- man.u_var.(i);
      u_low.(!s) <- man.u_low.(i);
      u_high.(!s) <- man.u_high.(i);
      u_id.(!s) <- id
    end
  done;
  man.u_var <- u_var;
  man.u_low <- u_low;
  man.u_high <- u_high;
  man.u_id <- u_id;
  man.u_mask <- mask

let mk man v low high =
  if low = high then low
  else begin
    (* grow at 2/3 load so probe chains stay short *)
    if 3 * man.u_count >= 2 * (man.u_mask + 1) then rehash_unique man;
    let mask = man.u_mask in
    let s = ref (hash3 v low high land mask) in
    let found = ref (-2) in
    while !found = -2 do
      let id = man.u_id.(!s) in
      if id < 0 then found := -1
      else if man.u_var.(!s) = v && man.u_low.(!s) = low && man.u_high.(!s) = high
      then found := id
      else s := (!s + 1) land mask
    done;
    if !found >= 0 then !found
    else begin
      if man.next_id >= Array.length man.var_of then grow man;
      let id = man.next_id in
      man.next_id <- id + 1;
      man.var_of.(id) <- v;
      man.low_of.(id) <- low;
      man.high_of.(id) <- high;
      man.u_var.(!s) <- v;
      man.u_low.(!s) <- low;
      man.u_high.(!s) <- high;
      man.u_id.(!s) <- id;
      man.u_count <- man.u_count + 1;
      id
    end
  end

let var man i =
  assert (i >= 0);
  mk man i bfalse btrue

let nvar man i = mk man i btrue bfalse

let var_of man f = if f < 2 then terminal_var else man.var_of.(f)

let is_true f = f = btrue
let is_false f = f = bfalse
let equal (a : t) (b : t) = a = b

(* ITE with standard cofactor recursion and memoization. *)
let rec ite man f g h =
  if f = btrue then g
  else if f = bfalse then h
  else if g = h then g
  else if g = btrue && h = bfalse then f
  else begin
    let slot = hash3 f g h land man.c_mask in
    if man.c_f.(slot) = f && man.c_g.(slot) = g && man.c_h.(slot) = h then
      man.c_r.(slot)
    else begin
      let v =
        min (var_of man f) (min (var_of man g) (var_of man h))
      in
      let cof x side =
        if var_of man x = v then
          if side then man.high_of.(x) else man.low_of.(x)
        else x
      in
      let hi = ite man (cof f true) (cof g true) (cof h true) in
      let lo = ite man (cof f false) (cof g false) (cof h false) in
      let r = mk man v lo hi in
      man.c_f.(slot) <- f;
      man.c_g.(slot) <- g;
      man.c_h.(slot) <- h;
      man.c_r.(slot) <- r;
      r
    end
  end

let bnot man f = ite man f bfalse btrue
let band man f g = ite man f g bfalse
let bor man f g = ite man f btrue g
let bxor man f g = ite man f (bnot man g) g
let bxnor man f g = ite man f g (bnot man g)
let bimp man f g = ite man f g btrue

let rec cofactor man f i value =
  let v = var_of man f in
  if v > i then f
  else if v = i then (if value then man.high_of.(f) else man.low_of.(f))
  else begin
    let hi = cofactor man man.high_of.(f) i value in
    let lo = cofactor man man.low_of.(f) i value in
    mk man v lo hi
  end

(* Existential quantification over a variable set.  The cache is keyed on the
   node only, so it is cleared whenever the variable set changes. *)
let quantify man ~universal vars f =
  let vars = List.sort_uniq compare vars in
  if man.exists_vars <> (if universal then (-1) :: vars else vars) then begin
    Hashtbl.clear man.exists_cache;
    man.exists_vars <- (if universal then (-1) :: vars else vars)
  end;
  let in_set v = List.mem v vars in
  let rec go f =
    if f < 2 then f
    else begin
      let v = man.var_of.(f) in
      if List.for_all (fun x -> x < v) vars then f
      else
        match Hashtbl.find_opt man.exists_cache f with
        | Some r -> r
        | None ->
          let lo = go man.low_of.(f) and hi = go man.high_of.(f) in
          let r =
            if in_set v then
              if universal then band man lo hi else bor man lo hi
            else mk man v lo hi
          in
          Hashtbl.add man.exists_cache f r;
          r
    end
  in
  go f

let exists man vars f = quantify man ~universal:false vars f
let forall man vars f = quantify man ~universal:true vars f

(* Relational product exists vars (a AND b) computed in one recursion; cached
   in a local table per call. *)
let and_exists man vars a b =
  let vars = List.sort_uniq compare vars in
  let in_set v = List.mem v vars in
  let cache = Hashtbl.create 1024 in
  let rec go a b =
    if a = bfalse || b = bfalse then bfalse
    else if a = btrue && b = btrue then btrue
    else if a = btrue then exists man vars b
    else if b = btrue then exists man vars a
    else begin
      let key = if a <= b then (a, b) else (b, a) in
      match Hashtbl.find_opt cache key with
      | Some r -> r
      | None ->
        let v = min (var_of man a) (var_of man b) in
        let cof x side =
          if var_of man x = v then
            if side then man.high_of.(x) else man.low_of.(x)
          else x
        in
        let lo = go (cof a false) (cof b false) in
        let r =
          if in_set v then
            if lo = btrue then btrue
            else bor man lo (go (cof a true) (cof b true))
          else begin
            let hi = go (cof a true) (cof b true) in
            mk man v lo hi
          end
        in
        Hashtbl.add cache key r;
        r
    end
  in
  go a b

let compose man f i g =
  (* Shannon: f[g/i] = ite(g, f_i, f_i') *)
  let hi = cofactor man f i true and lo = cofactor man f i false in
  ite man g hi lo

let rename man f mapping =
  let cache = Hashtbl.create 256 in
  let rec go f =
    if f < 2 then f
    else
      match Hashtbl.find_opt cache f with
      | Some r -> r
      | None ->
        let v = man.var_of.(f) in
        let lo = go man.low_of.(f) and hi = go man.high_of.(f) in
        let v' = mapping v in
        (* Monotonicity on the support keeps levels ordered; build via ite on
           the renamed variable to stay safe even if levels collide. *)
        let r = ite man (var man v') hi lo in
        Hashtbl.add cache f r;
        r
  in
  go f

let support man f =
  let seen = Hashtbl.create 64 in
  let vars = Hashtbl.create 16 in
  let rec go f =
    if f >= 2 && not (Hashtbl.mem seen f) then begin
      Hashtbl.add seen f ();
      Hashtbl.replace vars man.var_of.(f) ();
      go man.low_of.(f);
      go man.high_of.(f)
    end
  in
  go f;
  List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) vars [])

let size man f =
  let seen = Hashtbl.create 64 in
  let count = ref 0 in
  let rec go f =
    if f >= 2 && not (Hashtbl.mem seen f) then begin
      Hashtbl.add seen f ();
      incr count;
      go man.low_of.(f);
      go man.high_of.(f)
    end
  in
  go f;
  !count

let sat_count man ~nvars f =
  let cache = Hashtbl.create 256 in
  let rec go f =
    (* number of solutions over variables strictly below terminal, weighted
       at the end for skipped levels *)
    if f = bfalse then (0.0, nvars)
    else if f = btrue then (1.0, nvars)
    else
      match Hashtbl.find_opt cache f with
      | Some r -> r
      | None ->
        let v = man.var_of.(f) in
        let lo, lov = go man.low_of.(f) in
        let hi, hiv = go man.high_of.(f) in
        let lo = lo *. (2.0 ** float_of_int (lov - v - 1)) in
        let hi = hi *. (2.0 ** float_of_int (hiv - v - 1)) in
        let r = (lo +. hi, v) in
        Hashtbl.add cache f r;
        r
  in
  let total, top = go f in
  total *. (2.0 ** float_of_int top)

let any_sat man f =
  if f = bfalse then raise Not_found;
  let rec go f acc =
    if f = btrue then List.rev acc
    else begin
      let v = man.var_of.(f) in
      if man.high_of.(f) <> bfalse then go man.high_of.(f) ((v, true) :: acc)
      else go man.low_of.(f) ((v, false) :: acc)
    end
  in
  go f []

let eval man f assign =
  let rec go f =
    if f = btrue then true
    else if f = bfalse then false
    else if assign man.var_of.(f) then go man.high_of.(f)
    else go man.low_of.(f)
  in
  go f

let of_cover man cover =
  let cube_bdd c =
    let acc = ref btrue in
    Logic.Cube.iteri
      (fun v l ->
        match l with
        | Logic.Cube.One -> acc := band man !acc (var man v)
        | Logic.Cube.Zero -> acc := band man !acc (nvar man v)
        | Logic.Cube.Both -> ())
      c;
    !acc
  in
  List.fold_left
    (fun acc c -> bor man acc (cube_bdd c))
    bfalse cover.Logic.Cover.cubes

exception Cover_too_large

let to_cover ?(max_cubes = max_int) man ~nvars f =
  let cubes = ref [] in
  let count = ref 0 in
  let rec go f prefix =
    if f = btrue then begin
      incr count;
      if !count > max_cubes then raise Cover_too_large;
      cubes := prefix :: !cubes
    end
    else if f <> bfalse then begin
      let v = man.var_of.(f) in
      assert (v < nvars);
      go man.high_of.(f) ((v, Logic.Cube.One) :: prefix);
      go man.low_of.(f) ((v, Logic.Cube.Zero) :: prefix)
    end
  in
  go f [];
  let cube_of assignments =
    let c = Logic.Cube.universe nvars in
    List.iter (fun (v, l) -> Logic.Cube.set c v l) assignments;
    c
  in
  Logic.Cover.make nvars (List.map cube_of !cubes)

let node_count man = man.next_id
