(** Reduced ordered binary decision diagrams with hash-consing over a
    domain-shared unique table.

    Nodes live in a process-wide striped unique table (or a private one, see
    {!create}); {!t} values are node handles valid for any scope on the same
    table, and structural equality of functions is handle equality.  A {!man}
    is a {e scope}: a lightweight accounting handle that tracks which distinct
    nodes its own operations consed, so {!node_count} reports exactly what a
    fresh private manager would have allocated for the same operation
    sequence — consumers' node budgets behave identically whether the shared
    table is cold or warm, serial or parallel.  The variable order is the
    natural integer order on variable indices.

    Thread-safety: scopes are single-domain objects, but any number of
    domains may each use their own scopes on the shared table concurrently.
    Lookups are lock-free; insertions take one of 64 stripe locks. *)

type man
(** A scope onto a node table. *)

type t = private int
(** Node handle; structural equality of functions is handle equality (within
    one table). *)

type mode = [ `Shared | `Private ]

val create : ?cache_size:int -> ?mode:mode -> unit -> man
(** Open a scope.  [`Shared] (the default, see {!set_default_mode}) attaches
    to the process-wide table; [`Private] builds a fresh table of its own
    (differential testing, benchmarking baselines).  [cache_size] sizes the
    per-domain ITE cache of a private table and is ignored for the shared
    one. *)

val set_default_mode : mode -> unit
(** Mode used by [create] when [?mode] is omitted.  Initially [`Shared]. *)

val default_mode : unit -> mode

val sub_scope : man -> man
(** A child scope on the same table: nodes consed through the child are also
    charged to the parent, so the parent's {!node_count} stays cumulative
    while the child isolates the charge of one sub-computation. *)

val adopt : man -> man -> unit
(** [adopt dst src] charges every node recorded in [src] to [dst] (and its
    parents), as if [dst] had consed them itself.  Used to keep budgets exact
    when previously built values are reused instead of rebuilt.  Both scopes
    must share a table. *)

val is_shared : man -> bool

val same_table : man -> man -> bool
(** Whether two scopes point at the same underlying table (always true for
    two [`Shared] scopes; false between distinct [`Private] managers).
    Handles recorded under one table are meaningless under another. *)

val bfalse : t
val btrue : t

val var : man -> int -> t
(** BDD of the single positive variable [i] ([i >= 0]). *)

val nvar : man -> int -> t

val bnot : man -> t -> t
val band : man -> t -> t -> t
val bor : man -> t -> t -> t
val bxor : man -> t -> t -> t
val bxnor : man -> t -> t -> t
val bimp : man -> t -> t -> t
val ite : man -> t -> t -> t -> t

val equal : t -> t -> bool
val is_true : t -> bool
val is_false : t -> bool

val cofactor : man -> t -> int -> bool -> t
(** Cofactor with respect to variable [i]. *)

val exists : man -> int list -> t -> t
(** Existential quantification over a set of variables. *)

val forall : man -> int list -> t -> t

val and_exists : man -> int list -> t -> t -> t
(** Relational product: [exists vars (a AND b)], computed without building the
    full conjunction. *)

val compose : man -> t -> int -> t -> t
(** [compose m f i g] substitutes [g] for variable [i] in [f]. *)

val rename : man -> t -> (int -> int) -> t
(** Variable renaming; the mapping must be strictly monotone on the support
    for correctness (checked by assertion on adjacent levels). *)

val support : man -> t -> int list
(** Variables the function depends on, ascending. *)

val size : man -> t -> int
(** Number of distinct internal nodes reachable from the handle. *)

val sat_count : man -> nvars:int -> t -> float
(** Number of satisfying assignments over [nvars] variables. *)

val any_sat : man -> t -> (int * bool) list
(** Some satisfying partial assignment; raises [Not_found] on [bfalse]. *)

val eval : man -> t -> (int -> bool) -> bool

val of_cover : man -> Logic.Cover.t -> t

exception Cover_too_large

val to_cover : ?max_cubes:int -> man -> nvars:int -> t -> Logic.Cover.t
(** One cube per 1-path of the diagram (a disjoint cover).  Every variable in
    the support must be below [nvars].  Raises {!Cover_too_large} when the
    path count exceeds [max_cubes]. *)

val node_count : man -> int
(** Distinct nodes consed through this scope, terminals included — equal to
    what a fresh per-check manager would report, independent of table warmth.
    Node budgets should use this. *)

(** {2 Statistics} *)

type stats = {
  shared_nodes : int;  (** nodes in the shared table *)
  shared_capacity : int;  (** total unique-table slots across stripes *)
  shared_load_pct : float;
  ite_hits : int;
  ite_misses : int;
  mk_calls : int;
  unique_hits : int;  (** cons calls answered by an existing node *)
  stripe_contention : int;  (** lock acquisitions that had to wait *)
  stripe_grows : int;  (** stripe rehash events *)
  tables_created : int;  (** including private ones *)
  scopes_opened : int;
  nodes_allocated_total : int;  (** across all tables, process-wide *)
}

val stats : unit -> stats
(** Snapshot of shared-table and process-wide counters.  Per-domain op
    counters are read racily (monotone, may lag). *)

val total_allocated : unit -> int
(** Nodes ever allocated across all tables (shared and private); monotone.
    Deltas of this measure allocation work of a code region. *)

val publish_stats : unit -> unit
(** Export {!stats} into the [Obs.Metrics] registry as [bdd.*] gauges. *)
