module N = Netlist.Network

let simplify_nodes net =
  let improved = ref 0 in
  List.iter
    (fun n ->
      let c = N.cover_of n in
      let m = Logic.Minimize.minimize c in
      if
        Logic.Cover.lit_count m < Logic.Cover.lit_count c
        || Logic.Cover.size m < Logic.Cover.size c
      then begin
        N.set_cover net n m;
        incr improved
      end)
    (N.logic_nodes net);
  !improved

(* Substitute [producer]'s SOP into [consumer].  The combined fanin list is
   consumer's fanins with producer replaced by producer's fanins (dedup). *)
let collapse_into net ~producer ~consumer =
  assert (N.is_logic producer && N.is_logic consumer);
  let pc = N.cover_of producer and cc = N.cover_of consumer in
  (* Build the merged fanin list and index maps. *)
  let merged = ref [] in
  let index_of = Hashtbl.create 8 in
  let add id =
    if not (Hashtbl.mem index_of id) then begin
      Hashtbl.add index_of id (List.length !merged);
      merged := id :: !merged
    end
  in
  Array.iter (fun f -> if f <> producer.N.id then add f) consumer.N.fanins;
  Array.iter add producer.N.fanins;
  let merged = List.rev !merged in
  let nvars = List.length merged in
  (* producer function over merged variables *)
  let p_map = Array.map (fun f -> Hashtbl.find index_of f) producer.N.fanins in
  let p_pos = Logic.Cover.rename pc nvars p_map in
  let p_neg = Logic.Cover.complement p_pos in
  (* Consumer cubes: the literal on the producer position distributes over
     p_pos/p_neg; the remaining literals translate to merged variables.
     Conflicting literals (same signal read in both phases) void the cube. *)
  let exception Empty_cube in
  let result = ref (Logic.Cover.empty nvars) in
  List.iter
    (fun cube ->
      match
        let base = Logic.Cube.universe nvars in
        let producer_lit = ref Logic.Cube.Both in
        Logic.Cube.iteri
          (fun i l ->
            if l <> Logic.Cube.Both then begin
              let fid = consumer.N.fanins.(i) in
              if fid = producer.N.id then begin
                if !producer_lit = Logic.Cube.Both then producer_lit := l
                else if !producer_lit <> l then raise Empty_cube
              end
              else begin
                let v = Hashtbl.find index_of fid in
                if Logic.Cube.get base v = Logic.Cube.Both then
                  Logic.Cube.set base v l
                else if Logic.Cube.get base v <> l then raise Empty_cube
              end
            end)
          cube;
        (base, !producer_lit)
      with
      | exception Empty_cube -> ()
      | base, producer_lit ->
        let base_cover = Logic.Cover.make nvars [ base ] in
        let contribution =
          match producer_lit with
          | Logic.Cube.Both -> base_cover
          | Logic.Cube.One -> Logic.Cover.intersect base_cover p_pos
          | Logic.Cube.Zero -> Logic.Cover.intersect base_cover p_neg
        in
        result := Logic.Cover.union !result contribution)
    cc.Logic.Cover.cubes;
  let simplified = Logic.Cover.single_cube_containment !result in
  N.set_function net consumer simplified (List.map (N.node net) merged)

(* Literal value of eliminating a node (negative = saves literals). *)
let elimination_value n =
  let lits = Logic.Cover.lit_count (N.cover_of n) in
  let fanout_count = List.length n.N.fanouts in
  ((lits - 1) * fanout_count) - lits

let eliminate ?(threshold = 0) ?(max_support = 12) net =
  let eliminated = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun n ->
        match N.node_opt net n.N.id with
        | None -> ()
        | Some n ->
          if
            N.is_logic n
            && (not (N.drives_output net n))
            && n.N.fanouts <> []
            && List.for_all (fun c -> N.is_logic (N.node net c)) n.N.fanouts
            && elimination_value n <= threshold
          then begin
            (* support cap: merged support of each consumer stays small *)
            let consumers = List.sort_uniq compare n.N.fanouts in
            let support_ok =
              List.for_all
                (fun cid ->
                  let c = N.node net cid in
                  let merged = Hashtbl.create 8 in
                  Array.iter (fun f -> Hashtbl.replace merged f ()) c.N.fanins;
                  Hashtbl.remove merged n.N.id;
                  Array.iter (fun f -> Hashtbl.replace merged f ()) n.N.fanins;
                  Hashtbl.length merged <= max_support)
                consumers
            in
            if support_ok then begin
              List.iter
                (fun cid ->
                  collapse_into net ~producer:n ~consumer:(N.node net cid))
                consumers;
              if n.N.fanouts = [] then begin
                N.delete net n;
                incr eliminated;
                changed := true
              end
            end
          end)
      (N.logic_nodes net)
  done;
  !eliminated

let unmapped_optimize net =
  N.sweep net;
  ignore (simplify_nodes net);
  ignore (eliminate net);
  ignore (simplify_nodes net);
  N.sweep net

let script_delay net ~lib =
  let work = N.copy net in
  unmapped_optimize work;
  Techmap.Mapper.map work ~lib ~objective:Techmap.Mapper.Min_delay

let script_area net ~lib =
  let work = N.copy net in
  unmapped_optimize work;
  ignore (Extract.extract_divisors work);
  ignore (simplify_nodes work);
  ignore (Netlist.Strash.run work);
  Techmap.Mapper.map work ~lib ~objective:Techmap.Mapper.Min_area
