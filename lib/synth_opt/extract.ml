module N = Netlist.Network

(* A divisor independent of any node's local variable numbering: cubes as
   sorted (fanin node id, phase) literal lists. *)
type global_cube = (int * Logic.Cube.lit) list

type global_divisor = global_cube list

let global_of_cover net n (cover : Logic.Cover.t) : global_divisor =
  ignore net;
  List.map
    (fun cube ->
      let lits = ref [] in
      Logic.Cube.iteri
        (fun v l ->
          if l <> Logic.Cube.Both then lits := (n.N.fanins.(v), l) :: !lits)
        cube;
      List.sort compare !lits)
    cover.Logic.Cover.cubes
  |> List.sort compare

let key_of_divisor (d : global_divisor) =
  String.concat "|"
    (List.map
       (fun cube ->
         String.concat ","
           (List.map
              (fun (id, l) ->
                Printf.sprintf "%d%c" id
                  (match l with
                   | Logic.Cube.One -> '+'
                   | Logic.Cube.Zero -> '-'
                   | Logic.Cube.Both -> '?'))
              cube))
       d)

let support_of_divisor (d : global_divisor) =
  List.sort_uniq compare (List.concat_map (fun c -> List.map fst c) d)

let lit_count_of_divisor (d : global_divisor) =
  List.fold_left (fun acc c -> acc + List.length c) 0 d

(* Express a global divisor in a node's local variable space; None when some
   support signal is not a fanin of the node. *)
let localize net n (d : global_divisor) =
  ignore net;
  let var_of = Hashtbl.create 8 in
  Array.iteri
    (fun v fid ->
      if not (Hashtbl.mem var_of fid) then Hashtbl.add var_of fid v)
    n.N.fanins;
  let nvars = Array.length n.N.fanins in
  let cube_of c =
    let out = Logic.Cube.universe nvars in
    let ok = ref true in
    List.iter
      (fun (fid, l) ->
        match Hashtbl.find_opt var_of fid with
        | Some v ->
          if Logic.Cube.get out v = Logic.Cube.Both then Logic.Cube.set out v l
          else if Logic.Cube.get out v <> l then ok := false
        | None -> ok := false)
      c;
    if !ok then Some out else None
  in
  let cubes = List.map cube_of d in
  if List.for_all (fun c -> c <> None) cubes then
    Some (Logic.Cover.make nvars (List.filter_map Fun.id cubes))
  else None

(* Literals saved by substituting divisor [d] into node [n] (0 if it does not
   divide). *)
let node_saving net n d =
  match localize net n d with
  | None -> 0
  | Some local ->
    let f = N.cover_of n in
    let q, r = Logic.Factor.divide f local in
    if Logic.Cover.is_empty q then 0
    else begin
      let before = Logic.Cover.lit_count f in
      let after =
        Logic.Cover.lit_count q + Logic.Cover.size q + Logic.Cover.lit_count r
      in
      max 0 (before - after)
    end

(* Candidate divisors of one node: its kernels (multi-cube) and the
   multi-literal prefixes of its cubes (common-cube extraction). *)
let candidates_of_node net n ~max_node_cubes =
  let f = N.cover_of n in
  if Logic.Cover.size f > max_node_cubes then []
  else begin
    let kernels =
      Logic.Factor.kernels f
      |> List.filter (fun (_, k) -> Logic.Cover.size k >= 2)
      |> List.map (fun (_, k) -> global_of_cover net n k)
    in
    let cube_divisors =
      (* pairs of literals occurring together within a cube *)
      List.concat_map
        (fun cube ->
          let lits = ref [] in
          Logic.Cube.iteri
            (fun v l ->
              if l <> Logic.Cube.Both then lits := (n.N.fanins.(v), l) :: !lits)
            cube;
          let lits = List.sort compare !lits in
          let rec pairs = function
            | [] | [ _ ] -> []
            | x :: rest -> List.map (fun y -> [ [ x; y ] ]) rest @ pairs rest
          in
          pairs lits)
        f.Logic.Cover.cubes
    in
    kernels @ cube_divisors
  end

let extract_one net ~max_node_cubes =
  (* score every distinct candidate against every node *)
  let nodes = N.logic_nodes net in
  let seen = Hashtbl.create 256 in
  List.iter
    (fun n ->
      List.iter
        (fun d ->
          let key = key_of_divisor d in
          if not (Hashtbl.mem seen key) then Hashtbl.add seen key d)
        (candidates_of_node net n ~max_node_cubes))
    nodes;
  let best = ref None in
  (* lint-waive: nondet/hashtbl-order — value ties keep the first candidate
     in table order, which is fixed for a fixed insertion sequence
     (unseeded hashing, candidates inserted in deterministic node order)
     and pinned by the suite results. *)
  Hashtbl.iter
    (fun _ d ->
      if lit_count_of_divisor d >= 2 then begin
        let support = support_of_divisor d in
        let users =
          List.filter
            (fun n -> (not (List.mem n.N.id support)) && node_saving net n d > 0)
            nodes
        in
        if List.length users >= 2 then begin
          let value =
            List.fold_left (fun acc n -> acc + node_saving net n d) 0 users
            - lit_count_of_divisor d
          in
          match !best with
          | Some (_, _, best_value) when best_value >= value -> ()
          | Some _ | None ->
            if value > 0 then best := Some (d, users, value)
        end
      end)
    seen;
  match !best with
  | None -> false
  | Some (d, users, _) ->
    (* implement the divisor once *)
    let support = support_of_divisor d in
    let var_of = Hashtbl.create 8 in
    List.iteri (fun v fid -> Hashtbl.add var_of fid v) support;
    let nvars = List.length support in
    let divisor_cover =
      Logic.Cover.make nvars
        (List.map
           (fun c ->
             let out = Logic.Cube.universe nvars in
             List.iter
               (fun (fid, l) -> Logic.Cube.set out (Hashtbl.find var_of fid) l)
               c;
             out)
           d)
    in
    let divisor_node =
      N.add_logic net divisor_cover (List.map (N.node net) support)
    in
    (* substitute into every user *)
    List.iter
      (fun n ->
        match N.node_opt net n.N.id with
        | None -> ()
        | Some n ->
          (match localize net n d with
           | None -> ()
           | Some local ->
             let f = N.cover_of n in
             let q, r = Logic.Factor.divide f local in
             if not (Logic.Cover.is_empty q) then begin
               let old_arity = Array.length n.N.fanins in
               let nvars' = old_arity + 1 in
               let widen cube extra =
                 let out = Logic.Cube.universe nvars' in
                 Logic.Cube.iteri (fun v l -> Logic.Cube.set out v l) cube;
                 Logic.Cube.set out old_arity extra;
                 out
               in
               let cubes =
                 List.map (fun c -> widen c Logic.Cube.One) q.Logic.Cover.cubes
                 @ List.map (fun c -> widen c Logic.Cube.Both) r.Logic.Cover.cubes
               in
               let fanins =
                 List.map (N.node net) (Array.to_list n.N.fanins)
                 @ [ divisor_node ]
               in
               N.set_function net n (Logic.Cover.make nvars' cubes) fanins
             end))
      users;
    true

let extract_divisors ?(max_iterations = 50) ?(max_node_cubes = 24) net =
  let count = ref 0 in
  while !count < max_iterations && extract_one net ~max_node_cubes do
    incr count
  done;
  N.sweep net;
  !count
