(* Typed-AST isolation analyzer over compiler-libs typedtrees.

   Loads [.cmt] files (the repo builds with [-bin-annot]; dune emits them
   for every module) and runs interprocedural dataflow rules with real
   binding and scope resolution — the semantic upgrade over the substring
   lint in [Sanlint], whose token rules can neither follow a closure
   capture nor tell which lock guards which field.  Four rule families:

   - [typed/capture-escape] — a thunk passed to the scheduler
     ([Sched.fork] / [Core.Parallel.fork]/[map]/[map_list]) whose closure
     captures a [ref], [Hashtbl.t] or [Buffer.t] binding from an enclosing
     scope, or writes a mutable record field of a captured value, without
     routing through [Atomic], a [Mutex]-guarded section, [Domain.DLS] or
     the obs/sanitize registries.  This is the per-request-isolation proof
     the resynthesis daemon needs: no forked task may reach
     unsynchronized mutable state.
   - [typed/lock-discipline] — consistent-lock-set inference (RacerD
     style): every access to a shared mutable location (module-level
     [ref]/[Hashtbl]/[Buffer] values, mutable record fields keyed by
     [Type.field]) collects the lock set held at the access, seeded from
     [Sanitize.Lock.lock], [Mutex.lock] and [Mutex.protect] sites.  A
     location that is locked at one access must share a common lock at
     every access; an empty intersection (wrong lock, or no lock on some
     path) is a finding.
   - [typed/module-escape] — module-level mutable state reachable from
     the flow entry points ([Flow.run_all], [Report.Table.run_suite*],
     the [bin/] executables, future daemon handlers) with no registered
     synchronization wrapper: not [Atomic]/[Mutex]/[Condition]/
     [Domain.DLS], not inside the sanctioned registries (lib/obs,
     lib/sanitize), and not consistently lock-guarded per the
     lock-discipline inference.
   - [typed/blocking-in-task] — [Mutex.lock], [Condition.wait],
     [Sanitize.Lock.lock]/[wait], [Unix] blocking calls or [Thread.delay]
     syntactically reachable inside a forked task body (directly or
     through same-unit helpers): the no-help fork-join scheduler parks a
     whole worker for the duration, so a blocked task stalls the pool.

   Soundness posture: the analyzer prefers silence to noise.  It is
   intraprocedural plus one same-unit hop (thunks resolved to local
   definitions, blocking calls chased through same-unit helpers), does
   not expand type aliases without an environment, treats lambdas it
   cannot see called as unreachable, and identifies locks by access path
   (per-field, per-global) rather than by instance.  Every deliberate gap
   is documented in DESIGN.md §15.  Findings reuse the [Verify]/
   [Sanitize] report shape and the shared justified-waiver discipline of
   [Lint_common]. *)

type finding = Sanitize.finding = {
  rule_id : string;
  severity : Sanitize.severity;
  sites : string list;
  message : string;
}

let rule_ids =
  [ "typed/blocking-in-task"; "typed/capture-escape";
    "typed/lock-discipline"; "typed/module-escape" ]

type config = {
  source_root : string;
  entry_points : string list;
  entry_path_prefixes : string list;
  sanctioned_path_fragments : string list;
}

let default_config =
  { source_root = ".";
    entry_points =
      [ "Flow.run_all"; "Table.run_suite"; "Table.run_suite_timed" ];
    entry_path_prefixes = [ "bin/" ];
    sanctioned_path_fragments = [ "lib/obs"; "lib/sanitize" ] }

(* --- name plumbing ---------------------------------------------------------------- *)

(* "Core__Flow" (wrapped-library mangling) -> "Core.Flow" *)
let norm_name s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && s.[!i] = '_' && s.[!i + 1] = '_' then begin
      Buffer.add_char b '.';
      i := !i + 2
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.contents b

let ends_with ~suffix s =
  let ls = String.length s and lx = String.length suffix in
  ls >= lx && String.sub s (ls - lx) lx = suffix

let starts_with ~prefix s =
  let ls = String.length s and lx = String.length prefix in
  ls >= lx && String.sub s 0 lx = prefix

(* dotted-path suffix: "Core.Parallel.fork" matches "Parallel.fork" and
   "fork" only at component boundaries *)
let dotted_suffix name cand =
  name = cand || ends_with ~suffix:("." ^ cand) name

let loc_site (loc : Location.t) fallback_file =
  let p = loc.loc_start in
  let f = if p.pos_fname = "" then fallback_file else p.pos_fname in
  Printf.sprintf "%s:%d" f p.pos_lnum

(* --- type classification ---------------------------------------------------------- *)

let head_tycon (ty : Types.type_expr) =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> Some (norm_name (Path.name p))
  | _ -> None

(* mutable containers whose capture by a forked thunk is a finding *)
let capture_mutable_tycons = [ "Stdlib.ref"; "ref"; "Hashtbl.t"; "Buffer.t" ]

(* additionally hazardous as module-level shared state *)
let global_mutable_tycons =
  capture_mutable_tycons @ [ "Queue.t"; "Stack.t"; "bytes" ]

(* synchronization wrappers: state routed through these is sanctioned *)
let sync_tycons =
  [ "Atomic.t"; "Mutex.t"; "Condition.t"; "Semaphore.Counting.t";
    "Semaphore.Binary.t"; "Lock.t"; "DLS.key" ]

let tycon_in ty cands =
  match ty with
  | None -> false
  | Some t -> List.exists (fun c -> dotted_suffix t c) cands

(* --- call-site classification ----------------------------------------------------- *)

(* fork sites: the scheduler entry points that move a closure to another
   domain.  [Sched] is the engine; [Parallel] its [Core] re-export (and
   the stub modules tests compile mutants against). *)
let fork_fns =
  [ "Sched.fork"; "Parallel.fork"; "Sched.map"; "Parallel.map";
    "Sched.map_list"; "Parallel.map_list" ]

let lock_fns = [ "Mutex.lock"; "Lock.lock" ]
let unlock_fns = [ "Mutex.unlock"; "Lock.unlock" ]
let trylock_fns = [ "Mutex.try_lock"; "Lock.try_lock" ]
let protect_fns = [ "Mutex.protect" ]

(* calls that park the calling worker: taking a contended mutex, waiting a
   condition, or any OS-blocking Unix/Thread primitive *)
let blocking_fns =
  [ "Mutex.lock"; "Lock.lock"; "Condition.wait"; "Lock.wait";
    "Thread.delay"; "Thread.join"; "Unix.sleep"; "Unix.sleepf";
    "Unix.select"; "Unix.wait"; "Unix.waitpid"; "Unix.system";
    "Unix.read"; "Unix.write"; "Unix.accept"; "Unix.connect";
    "Unix.recv"; "Unix.send"; "Stdlib.input_line"; "Stdlib.really_input";
    "Stdlib.read_line" ]

(* accesses to shared mutable containers: (dotted suffix, is_write) *)
let container_access_fns =
  [ ("Stdlib.!", false); ("Stdlib.:=", true); ("Stdlib.incr", true);
    ("Stdlib.decr", true);
    ("Hashtbl.find", false); ("Hashtbl.find_opt", false);
    ("Hashtbl.find_all", false); ("Hashtbl.mem", false);
    ("Hashtbl.length", false); ("Hashtbl.iter", false);
    ("Hashtbl.fold", false); ("Hashtbl.to_seq", false);
    ("Hashtbl.add", true); ("Hashtbl.replace", true);
    ("Hashtbl.remove", true); ("Hashtbl.clear", true);
    ("Hashtbl.reset", true); ("Hashtbl.filter_map_inplace", true);
    ("Buffer.contents", false); ("Buffer.length", false);
    ("Buffer.nth", false); ("Buffer.to_bytes", false);
    ("Buffer.add_string", true); ("Buffer.add_char", true);
    ("Buffer.add_bytes", true); ("Buffer.add_buffer", true);
    ("Buffer.add_substring", true); ("Buffer.clear", true);
    ("Buffer.reset", true);
    ("Queue.push", true); ("Queue.add", true); ("Queue.pop", true);
    ("Queue.take", true); ("Queue.clear", true); ("Queue.peek", false);
    ("Queue.length", false); ("Queue.is_empty", false);
    ("Stack.push", true); ("Stack.pop", true); ("Stack.clear", true);
    ("Stack.top", false); ("Stack.length", false) ]

(* registry modules: mutable state reached through them is the sanctioned
   synchronized-and-commutative kind *)
let registry_path_prefixes = [ "Obs."; "Sanitize." ]

(* --- per-unit scan state ---------------------------------------------------------- *)

type access = {
  a_key : string;           (* abstract location *)
  a_locks : string list;    (* lock names held (sorted, deduped) *)
  a_site : string;          (* "file:line" *)
  a_write : bool;
}

type global = {
  g_key : string;           (* qualified "Mod.name" *)
  g_kind : string;          (* e.g. "Hashtbl.t" *)
  g_site : string;
}

type raw_finding = {
  rf_rule : string;
  rf_sites : string list;   (* primary first *)
  rf_message : string;
}

type unit_info = {
  u_modname : string;       (* normalized *)
  u_source : string;        (* as recorded in the cmt, e.g. "lib/x/y.ml" *)
  u_imports : string list;  (* normalized unit names *)
  mutable u_entry : bool;
  u_sanctioned : bool;
  mutable u_accesses : access list;
  mutable u_globals : global list;
  mutable u_raw : raw_finding list;
}

type scan_ctx = {
  cfg : config;
  unit_ : unit_info;
  toplevel : (string, Typedtree.expression) Hashtbl.t;
      (* toplevel value name -> bound expression *)
  top_order : string list ref;  (* declaration order, for determinism *)
  blocking : (string, (string * string) list ref) Hashtbl.t;
      (* toplevel fn -> direct blocking calls (name, site) *)
  calls : (string, (string * string) list ref) Hashtbl.t;
      (* toplevel fn -> same-unit toplevel references (name, site) *)
  forks : (string * string * Typedtree.expression) list ref;
      (* fork fn name, fork site, thunk expression *)
}

open Typedtree

(* the identifier a [let] pattern binds — a type-constrained binding
   ([let x : t = e]) elaborates to [Tpat_alias], not [Tpat_var] *)
let pat_ident (p : pattern) =
  match p.pat_desc with
  | Tpat_var (id, _) -> Some id
  | Tpat_alias (_, id, _) -> Some id
  | _ -> None

let qualify ctx (p : Path.t) =
  match p with
  | Path.Pident i ->
    let n = Ident.name i in
    if Hashtbl.mem ctx.toplevel n then ctx.unit_.u_modname ^ "." ^ n else n
  | _ -> norm_name (Path.name p)

(* the abstract name of a lock expression: per-global or per-field (access
   path), deliberately not per-instance — two functions locking a [lock]
   field of the same record type count as the same discipline *)
let rec lock_expr_name ctx (e : expression) =
  match e.exp_desc with
  | Texp_ident (Path.Pident i, _, _) ->
    if Hashtbl.mem ctx.toplevel (Ident.name i) then
      ctx.unit_.u_modname ^ "." ^ Ident.name i
    else Ident.name i
  | Texp_ident (p, _, _) -> norm_name (Path.name p)
  | Texp_field (b, _, lbl) -> (
    match head_tycon b.exp_type with
    | Some t -> t ^ "." ^ lbl.Types.lbl_name
    | None -> "<field>." ^ lbl.Types.lbl_name)
  | Texp_open (_, b) -> lock_expr_name ctx b
  | _ -> "<lock>"

(* shared-location key for the first argument of a container access:
   module-level values only (unit toplevel or an external dotted path) *)
let shared_arg_key ctx (e : expression) =
  match e.exp_desc with
  | Texp_ident (Path.Pident i, _, _)
    when Hashtbl.mem ctx.toplevel (Ident.name i) ->
    Some (ctx.unit_.u_modname ^ "." ^ Ident.name i)
  | Texp_ident ((Path.Pdot _ as p), _, _) -> Some (norm_name (Path.name p))
  | _ -> None

let field_key (base : expression) (lbl : Types.label_description) =
  match head_tycon base.exp_type with
  | Some t -> Some (t ^ "." ^ lbl.Types.lbl_name)
  | None -> None

let callee_name ctx (f : expression) =
  match f.exp_desc with
  | Texp_ident (p, _, _) -> Some (qualify ctx p)
  | _ -> None

let first_nolabel_arg args =
  List.find_map
    (function Asttypes.Nolabel, Some a -> Some a | _ -> None)
    args

let record_access ctx ~key ~locks ~site ~write =
  let locks = List.sort_uniq compare locks in
  ctx.unit_.u_accesses <-
    { a_key = key; a_locks = locks; a_site = site; a_write = write }
    :: ctx.unit_.u_accesses

(* --- main per-unit walk ------------------------------------------------------------ *)

(* Walk one toplevel binding's expression, threading a mutable lock set
   through the control flow the typedtree exposes (sequences and lets run
   left to right under the default iterator, which is exactly source
   order), recording shared-location accesses, fork sites, blocking calls
   and same-unit call edges. *)
let walk_toplevel ctx ~fn_name (root : expression) =
  let src = ctx.unit_.u_source in
  let ls = ref [] in
  let owned = Hashtbl.create 8 in  (* idents bound to fresh record literals *)
  let blocking =
    match Hashtbl.find_opt ctx.blocking fn_name with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.replace ctx.blocking fn_name r;
      r
  in
  let calls =
    match Hashtbl.find_opt ctx.calls fn_name with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.replace ctx.calls fn_name r;
      r
  in
  let saved f =
    let s = !ls in
    f ();
    ls := s
  in
  let rec base_ident (e : expression) =
    match e.exp_desc with
    | Texp_ident (p, _, _) -> Some p
    | Texp_field (b, _, _) -> base_ident b
    | Texp_open (_, b) -> base_ident b
    | _ -> None
  in
  let it =
    let open Tast_iterator in
    let expr sub (e : expression) =
      match e.exp_desc with
      | Texp_function _ ->
        (* a lambda body runs when (and where) the closure is called, not
           here: locks held at the definition site do not apply *)
        saved (fun () ->
            ls := [];
            default_iterator.expr sub e)
      | Texp_ifthenelse (c, t, eo) ->
        sub.expr sub c;
        (* [if Lock.try_lock m then ...]: the then-branch holds m *)
        let extra =
          match c.exp_desc with
          | Texp_apply (f, args) -> (
            match callee_name ctx f with
            | Some n when List.exists (dotted_suffix n) trylock_fns -> (
              match first_nolabel_arg args with
              | Some m -> [ lock_expr_name ctx m ]
              | None -> [])
            | _ -> [])
          | _ -> []
        in
        saved (fun () ->
            ls := extra @ !ls;
            sub.expr sub t);
        (match eo with
         | Some e2 -> saved (fun () -> sub.expr sub e2)
         | None -> ())
      | Texp_match (scrut, cases, _) ->
        sub.expr sub scrut;
        List.iter (fun c -> saved (fun () -> sub.case sub c)) cases
      | Texp_try (b, cases) ->
        saved (fun () -> sub.expr sub b);
        List.iter (fun c -> saved (fun () -> sub.case sub c)) cases
      | Texp_while (c, b) ->
        sub.expr sub c;
        saved (fun () -> sub.expr sub b)
      | Texp_for (_, _, lo, hi, _, b) ->
        sub.expr sub lo;
        sub.expr sub hi;
        saved (fun () -> sub.expr sub b)
      | Texp_let (_, vbs, body) ->
        List.iter
          (fun vb ->
            (match (pat_ident vb.vb_pat, vb.vb_expr.exp_desc) with
             | Some id, Texp_record _ ->
               Hashtbl.replace owned (Ident.unique_name id) ()
             | _ -> ());
            sub.value_binding sub vb)
          vbs;
        sub.expr sub body
      | Texp_setfield (b, _, lbl, v) ->
        (match base_ident b with
         | Some (Path.Pident i)
           when Hashtbl.mem owned (Ident.unique_name i) ->
           () (* freshly built in this function: owned, not yet shared *)
         | _ -> (
           match field_key b lbl with
           | Some key ->
             record_access ctx ~key ~locks:!ls
               ~site:(loc_site e.exp_loc src) ~write:true
           | None -> ()));
        sub.expr sub b;
        sub.expr sub v
      | Texp_field (b, _, lbl) ->
        (if lbl.Types.lbl_mut = Asttypes.Mutable then
           match base_ident b with
           | Some (Path.Pident i)
             when Hashtbl.mem owned (Ident.unique_name i) ->
             ()
           | _ -> (
             match field_key b lbl with
             | Some key ->
               record_access ctx ~key ~locks:!ls
                 ~site:(loc_site e.exp_loc src) ~write:false
             | None -> ()));
        sub.expr sub b
      | Texp_ident (Path.Pident i, _, _)
        when Hashtbl.mem ctx.toplevel (Ident.name i) ->
        calls :=
          (Ident.name i, loc_site e.exp_loc src) :: !calls
      | Texp_apply (f, args) ->
        (match callee_name ctx f with
         | Some name ->
           let is set = List.exists (dotted_suffix name) set in
           (* lock-set transitions *)
           (if is lock_fns then
              match first_nolabel_arg args with
              | Some m -> ls := lock_expr_name ctx m :: !ls
              | None -> ()
            else if is unlock_fns then
              match first_nolabel_arg args with
              | Some m ->
                let n = lock_expr_name ctx m in
                ls := List.filter (fun x -> x <> n) !ls
              | None -> ());
           (* blocking-call inventory for rule 4 *)
           if is blocking_fns then
             blocking := (name, loc_site e.exp_loc src) :: !blocking;
           (* fork-site inventory for rules 1 and 4 *)
           if is fork_fns then (
             match first_nolabel_arg args with
             | Some thunk ->
               ctx.forks :=
                 (name, loc_site e.exp_loc src, thunk) :: !(ctx.forks)
             | None -> ());
           (* container accesses on shared values *)
           List.iter
             (fun (fn, write) ->
               if dotted_suffix name fn then
                 match first_nolabel_arg args with
                 | Some a -> (
                   match shared_arg_key ctx a with
                   | Some key ->
                     record_access ctx ~key ~locks:!ls
                       ~site:(loc_site e.exp_loc src) ~write
                   | None -> ())
                 | None -> ())
             container_access_fns;
           (* [Mutex.protect m (fun () -> body)]: body holds m.  Visit the
              protected lambda's cases directly so the function-resets-
              lockset rule above does not erase the guard. *)
           if is protect_fns then (
             match args with
             | (_, Some m) :: rest -> (
               let fn_arg = first_nolabel_arg rest in
               sub.expr sub f;
               sub.expr sub m;
               match fn_arg with
               | Some { exp_desc = Texp_function { cases; _ }; _ } ->
                 saved (fun () ->
                     ls := lock_expr_name ctx m :: !ls;
                     List.iter (sub.case sub) cases)
               | Some other -> sub.expr sub other
               | None -> ())
             | _ -> default_iterator.expr sub e)
           else default_iterator.expr sub e
         | None -> default_iterator.expr sub e)
      | _ -> default_iterator.expr sub e
    in
    { default_iterator with expr }
  in
  it.expr it root

(* --- capture / blocking analysis of forked thunks ---------------------------------- *)

(* Free-variable walk of a thunk: every ident bound inside the thunk
   (params, lets, match cases) is recorded before its scope is visited, so
   an unbound occurrence is a capture from an enclosing scope (or a
   module-level value). *)
let analyze_thunk ctx ~fork_name ~fork_site (thunk : expression) =
  let src = ctx.unit_.u_source in
  let bound = Hashtbl.create 32 in
  let ls = ref [] in
  let found = ref [] in
  let add_finding rf =
    if
      not
        (List.exists
           (fun f -> f.rf_rule = rf.rf_rule && f.rf_sites = rf.rf_sites)
           !found)
    then found := rf :: !found
  in
  let exempt_registry name =
    List.exists (fun p -> starts_with ~prefix:p name) registry_path_prefixes
  in
  let rec base_ident (e : expression) =
    match e.exp_desc with
    | Texp_ident (p, _, _) -> Some p
    | Texp_field (b, _, _) -> base_ident b
    | Texp_open (_, b) -> base_ident b
    | _ -> None
  in
  let is_bound = function
    | Path.Pident i -> Hashtbl.mem bound (Ident.unique_name i)
    | _ -> false
  in
  let it =
    let open Tast_iterator in
    let pat : type k. iterator -> k general_pattern -> unit =
     fun sub p ->
      (match p.pat_desc with
       | Tpat_var (id, _) -> Hashtbl.replace bound (Ident.unique_name id) ()
       | Tpat_alias (_, id, _) ->
         Hashtbl.replace bound (Ident.unique_name id) ()
       | _ -> ());
      default_iterator.pat sub p
    in
    let expr sub (e : expression) =
      match e.exp_desc with
      | Texp_ident (p, _, _) ->
        if not (is_bound p) then begin
          let name = qualify ctx p in
          let ty = head_tycon e.exp_type in
          if
            tycon_in ty capture_mutable_tycons
            && (not (exempt_registry name))
            && !ls = []
          then
            add_finding
              { rf_rule = "typed/capture-escape";
                rf_sites = [ loc_site e.exp_loc src; fork_site ];
                rf_message =
                  Printf.sprintf
                    "thunk forked via %s at %s captures `%s` : %s from an \
                     enclosing scope; a forked task may only reach mutable \
                     state through Atomic, a Mutex-guarded section, \
                     Domain.DLS or the obs/sanitize registries"
                    fork_name fork_site name
                    (match ty with Some t -> t | None -> "?") }
        end
      | Texp_setfield (b, _, lbl, v) ->
        (match base_ident b with
         | Some p when (not (is_bound p)) && !ls = [] ->
           let name = qualify ctx p in
           if not (exempt_registry name) then
             add_finding
               { rf_rule = "typed/capture-escape";
                 rf_sites = [ loc_site e.exp_loc src; fork_site ];
                 rf_message =
                   Printf.sprintf
                     "thunk forked via %s at %s writes mutable field `%s` \
                      of captured `%s`; racing writes from tasks need an \
                      Atomic or a lock-guarded accessor"
                     fork_name fork_site lbl.Types.lbl_name name }
         | _ -> ());
        sub.expr sub b;
        sub.expr sub v
      | Texp_apply (f, args) -> (
        match
          match f.exp_desc with
          | Texp_ident (p, _, _) -> Some (qualify ctx p)
          | _ -> None
        with
        | Some name ->
          let is set = List.exists (dotted_suffix name) set in
          if is blocking_fns then
            add_finding
              { rf_rule = "typed/blocking-in-task";
                rf_sites = [ loc_site e.exp_loc src; fork_site ];
                rf_message =
                  Printf.sprintf
                    "thunk forked via %s at %s calls blocking `%s`: the \
                     no-help scheduler parks the whole worker, stalling \
                     the pool"
                    fork_name fork_site name };
          if is protect_fns then (
            match args with
            | (_, Some m) :: rest -> (
              sub.expr sub f;
              sub.expr sub m;
              match first_nolabel_arg rest with
              | Some { exp_desc = Texp_function { cases; _ }; _ } ->
                let s = !ls in
                ls := "m" :: !ls;
                List.iter (sub.case sub) cases;
                ls := s
              | Some other -> sub.expr sub other
              | None -> ())
            | _ -> default_iterator.expr sub e)
          else begin
            (if is lock_fns then ls := "m" :: !ls
             else if is unlock_fns then
               ls := (match !ls with _ :: t -> t | [] -> []));
            default_iterator.expr sub e
          end
        | None -> default_iterator.expr sub e)
      | _ -> default_iterator.expr sub e
    in
    { default_iterator with expr; pat }
  in
  (* resolve an ident thunk to its same-unit definition (one hop) *)
  let target =
    match thunk.exp_desc with
    | Texp_ident (Path.Pident i, _, _) -> (
      match Hashtbl.find_opt ctx.toplevel (Ident.name i) with
      | Some def -> Some def
      | None -> None)
    | Texp_function _ -> Some thunk
    | _ -> None
  in
  (match target with Some e -> it.expr it e | None -> ());
  (* blocking calls reachable through same-unit helpers the thunk names *)
  let summaries = Hashtbl.create 16 in
  let rec summary seen fn =
    if List.mem fn seen then None
    else
      match Hashtbl.find_opt summaries fn with
      | Some s -> s
      | None ->
        let s =
          match Hashtbl.find_opt ctx.blocking fn with
          | Some { contents = (bname, bsite) :: _ } ->
            Some [ (bname, bsite) ]
          | _ -> (
            match Hashtbl.find_opt ctx.calls fn with
            | Some { contents = cs } ->
              List.find_map
                (fun (callee, csite) ->
                  match summary (fn :: seen) callee with
                  | Some chain ->
                    Some (("call " ^ callee, csite) :: chain)
                  | None -> None)
                (List.sort_uniq compare cs)
            | None -> None)
        in
        Hashtbl.replace summaries fn s;
        s
  in
  (match target with
   | Some e ->
     let callees = ref [] in
     let it2 =
       let open Tast_iterator in
       let expr sub (x : expression) =
         (match x.exp_desc with
          | Texp_ident (Path.Pident i, _, _)
            when Hashtbl.mem ctx.toplevel (Ident.name i) ->
            callees := (Ident.name i, loc_site x.exp_loc src) :: !callees
          | _ -> ());
         default_iterator.expr sub x
       in
       { default_iterator with expr }
     in
     it2.expr it2 e;
     List.iter
       (fun (callee, csite) ->
         match summary [] callee with
         | Some chain ->
           let steps =
             List.map (fun (n, s) -> Printf.sprintf "%s at %s" n s) chain
           in
           add_finding
             { rf_rule = "typed/blocking-in-task";
               rf_sites = [ csite; fork_site ];
               rf_message =
                 Printf.sprintf
                   "thunk forked via %s at %s reaches a blocking call \
                    through %s: %s"
                   fork_name fork_site callee
                   (String.concat " -> " steps) }
         | None -> ())
       (List.sort_uniq compare !callees)
   | None -> ());
  List.rev !found

(* --- toplevel mutable-state classification ----------------------------------------- *)

let classify_global ctx (vb : value_binding) =
  match pat_ident vb.vb_pat with
  | Some id -> (
    let name = Ident.name id in
    let key = ctx.unit_.u_modname ^ "." ^ name in
    let ty = head_tycon vb.vb_expr.exp_type in
    if tycon_in ty sync_tycons then None
    else if tycon_in ty global_mutable_tycons then
      Some
        { g_key = key;
          g_kind = (match ty with Some t -> t | None -> "?");
          g_site = loc_site vb.vb_pat.pat_loc ctx.unit_.u_source }
    else
      match vb.vb_expr.exp_desc with
      | Texp_record { fields; _ }
        when Array.exists
               (fun (l, _) -> l.Types.lbl_mut = Asttypes.Mutable)
               fields ->
        Some
          { g_key = key;
            g_kind = "record with mutable fields";
            g_site = loc_site vb.vb_pat.pat_loc ctx.unit_.u_source }
      | _ -> None)
  | _ -> None

(* --- unit scan --------------------------------------------------------------------- *)

let scan_unit cfg (cmt : Cmt_format.cmt_infos) =
  match cmt.cmt_annots with
  | Cmt_format.Implementation str ->
    let source =
      match cmt.cmt_sourcefile with
      | Some s -> s
      | None -> cmt.cmt_modname ^ ".ml"
    in
    let modname = norm_name cmt.cmt_modname in
    let sanctioned =
      List.exists
        (fun frag -> Lint_common.contains source frag)
        cfg.sanctioned_path_fragments
    in
    let unit_ =
      { u_modname = modname;
        u_source = source;
        u_imports =
          List.sort_uniq compare
            (List.map (fun (n, _) -> norm_name n) cmt.cmt_imports);
        u_entry =
          List.exists
            (fun p -> starts_with ~prefix:p source)
            cfg.entry_path_prefixes;
        u_sanctioned = sanctioned;
        u_accesses = [];
        u_globals = [];
        u_raw = [] }
    in
    let ctx =
      { cfg;
        unit_;
        toplevel = Hashtbl.create 64;
        top_order = ref [];
        blocking = Hashtbl.create 16;
        calls = Hashtbl.create 16;
        forks = ref [] }
    in
    (* pass 0: toplevel bindings (so [qualify] resolves unit-local names) *)
    List.iter
      (fun item ->
        match item.str_desc with
        | Tstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              match pat_ident vb.vb_pat with
              | Some id ->
                let n = Ident.name id in
                if not (Hashtbl.mem ctx.toplevel n) then
                  ctx.top_order := n :: !(ctx.top_order);
                Hashtbl.replace ctx.toplevel n vb.vb_expr
              | None -> ())
            vbs
        | _ -> ())
      str.str_items;
    (* entry points by qualified value name *)
    let entry_by_name =
      List.exists
        (fun n ->
          List.exists
            (fun ep -> dotted_suffix (modname ^ "." ^ n) ep)
            cfg.entry_points)
        !(ctx.top_order)
    in
    unit_.u_entry <- unit_.u_entry || entry_by_name;
    (* pass 1: walk every toplevel binding *)
    let anon = ref 0 in
    List.iter
      (fun item ->
        match item.str_desc with
        | Tstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              let fn_name =
                match pat_ident vb.vb_pat with
                | Some id -> Ident.name id
                | None ->
                  incr anon;
                  Printf.sprintf "<init:%d>" !anon
              in
              (match classify_global ctx vb with
               | Some g -> unit_.u_globals <- g :: unit_.u_globals
               | None -> ());
              walk_toplevel ctx ~fn_name vb.vb_expr)
            vbs
        | Tstr_eval (e, _) ->
          incr anon;
          walk_toplevel ctx
            ~fn_name:(Printf.sprintf "<init:%d>" !anon)
            e
        | _ -> ())
      str.str_items;
    (* pass 2: capture/escape + blocking analysis of every fork site *)
    List.iter
      (fun (fork_name, fork_site, thunk) ->
        let fs = analyze_thunk ctx ~fork_name ~fork_site thunk in
        unit_.u_raw <- fs @ unit_.u_raw)
      (List.rev !(ctx.forks));
    Some unit_
  | _ -> None

(* --- cross-unit analysis ----------------------------------------------------------- *)

let intersect a b = List.filter (fun x -> List.mem x b) a

(* lock-discipline verdicts over the merged access lists *)
let lock_discipline_findings units =
  let by_key = Hashtbl.create 64 in
  List.iter
    (fun u ->
      if not u.u_sanctioned then
        List.iter
          (fun a ->
            let cur =
              match Hashtbl.find_opt by_key a.a_key with
              | Some l -> l
              | None -> []
            in
            Hashtbl.replace by_key a.a_key (a :: cur))
          u.u_accesses)
    units;
  let keys =
    List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) by_key [])
  in
  List.filter_map
    (fun key ->
      let accs = Hashtbl.find by_key key in
      let seeded = List.exists (fun a -> a.a_locks <> []) accs in
      if not seeded then None
      else
        let inter =
          List.fold_left
            (fun acc a ->
              match acc with
              | None -> Some a.a_locks
              | Some l -> Some (intersect l a.a_locks))
            None accs
        in
        match inter with
        | Some [] ->
          let offending =
            List.sort compare
              (List.filter_map
                 (fun a ->
                   if a.a_locks = [] then Some a.a_site else None)
                 accs)
          in
          let locked_example =
            match List.find_opt (fun a -> a.a_locks <> []) accs with
            | Some a ->
              Printf.sprintf "{%s} at %s" (String.concat "," a.a_locks)
                a.a_site
            | None -> "?"
          in
          let sites =
            match offending with
            | [] ->
              (* no unlocked access: disjoint nonempty lock sets *)
              List.sort_uniq compare (List.map (fun a -> a.a_site) accs)
            | o -> o
          in
          Some
            { rf_rule = "typed/lock-discipline";
              rf_sites = sites;
              rf_message =
                Printf.sprintf
                  "shared mutable location `%s` is lock-guarded (%s) but \
                   accessed under %s lock set elsewhere: every access \
                   must share a common lock"
                  key locked_example
                  (if offending = [] then "a disjoint" else "an empty") }
        | _ -> None)
    keys

let module_escape_findings cfg units rule2_keys =
  let by_name = Hashtbl.create 64 in
  List.iter (fun u -> Hashtbl.replace by_name u.u_modname u) units;
  (* unit-level reachability from the entry units over cmt imports *)
  let reachable = Hashtbl.create 64 in
  let rec visit via name =
    match Hashtbl.find_opt by_name name with
    | Some u ->
      if not (Hashtbl.mem reachable name) then begin
        Hashtbl.replace reachable name via;
        List.iter (visit via) u.u_imports
      end
    | None -> ()
  in
  List.iter (fun u -> if u.u_entry then visit u.u_modname u.u_modname) units;
  (* locksets observed per global key, merged across units *)
  let guard = Hashtbl.create 64 in
  List.iter
    (fun u ->
      List.iter
        (fun a ->
          let cur =
            match Hashtbl.find_opt guard a.a_key with
            | Some l -> l
            | None -> []
          in
          Hashtbl.replace guard a.a_key (a.a_locks :: cur))
        u.u_accesses)
    units;
  let consistently_guarded key =
    match Hashtbl.find_opt guard key with
    | Some (l0 :: rest) ->
      List.fold_left intersect l0 rest <> []
    | _ -> false
  in
  List.concat_map
    (fun u ->
      if u.u_sanctioned then []
      else
        match Hashtbl.find_opt reachable u.u_modname with
        | None -> []
        | Some via ->
          List.filter_map
            (fun g ->
              if List.mem g.g_key rule2_keys then
                None (* rule 2 already diagnosed the inconsistency *)
              else if consistently_guarded g.g_key then None
              else
                Some
                  { rf_rule = "typed/module-escape";
                    rf_sites = [ g.g_site ];
                    rf_message =
                      Printf.sprintf
                        "module-level mutable state `%s` (%s) is reachable \
                         from flow entry point%s without a synchronization \
                         wrapper: route it through Atomic, a consistently \
                         held lock, Domain.DLS, or the obs/sanitize \
                         registries"
                        g.g_key g.g_kind
                        (if via = u.u_modname then ""
                         else " via " ^ via) })
            (List.sort compare u.u_globals))
    (List.sort (fun a b -> compare a.u_modname b.u_modname) units)
  |> fun fs ->
  ignore cfg;
  fs

(* --- waiver application ------------------------------------------------------------ *)

type result = {
  findings : finding list;
  files_scanned : int;
  rules_fired : (string * int) list;
  waivers_honored : int;
  suppressed : (string * string * string) list;
      (** file-level suppressions: (path, rule, waiver-path) *)
}

let finding_of_raw rf =
  { rule_id = rf.rf_rule;
    severity = Sanitize.Error;
    sites = rf.rf_sites;
    message = rf.rf_message }

(* in-source waivers of the scanned units' sources, cached per file *)
let source_waivers cfg =
  let cache = Hashtbl.create 16 in
  fun path ->
    match Hashtbl.find_opt cache path with
    | Some ws -> ws
    | None ->
      let full = Filename.concat cfg.source_root path in
      let ws =
        match
          if Sys.file_exists full then (
            let ic = open_in_bin full in
            let n = in_channel_length ic in
            let s = really_input_string ic n in
            close_in ic;
            Some s)
          else None
        with
        | Some content ->
          let raw, code = Lint_common.strip_lines content in
          fst (Lint_common.line_waivers ~path raw code)
        | None -> []
      in
      Hashtbl.replace cache path ws;
      ws

let site_file_line site =
  match String.rindex_opt site ':' with
  | Some i -> (
    let f = String.sub site 0 i in
    match
      int_of_string_opt
        (String.sub site (i + 1) (String.length site - i - 1))
    with
    | Some l -> Some (f, l)
    | None -> None)
  | None -> None

let scan_cmt_files ?(config = default_config) ?(waivers = []) paths =
  let cfg = config in
  let units =
    List.filter_map
      (fun path ->
        match
          try Some (Cmt_format.read_cmt path) with _ -> None
        with
        | Some cmt -> scan_unit cfg cmt
        | None -> None)
      (List.sort compare paths)
  in
  (* dedupe by source (an exe and a lib can compile the same module) *)
  let units =
    let seen = Hashtbl.create 32 in
    List.filter
      (fun u ->
        if Hashtbl.mem seen u.u_source then false
        else begin
          Hashtbl.replace seen u.u_source ();
          true
        end)
      units
  in
  let raw_rule2 = lock_discipline_findings units in
  let rule2_keys =
    List.filter_map
      (fun rf ->
        (* the key is rendered inside backquotes in the message *)
        match String.index_opt rf.rf_message '`' with
        | Some i -> (
          match String.index_from_opt rf.rf_message (i + 1) '`' with
          | Some j ->
            Some (String.sub rf.rf_message (i + 1) (j - i - 1))
          | None -> None)
        | None -> None)
      raw_rule2
  in
  let raw =
    List.concat_map (fun u -> List.rev u.u_raw) units
    @ raw_rule2
    @ module_escape_findings cfg units rule2_keys
  in
  let fired = Hashtbl.create 8 in
  List.iter
    (fun rf ->
      let c =
        match Hashtbl.find_opt fired rf.rf_rule with
        | Some c -> c
        | None -> 0
      in
      Hashtbl.replace fired rf.rf_rule (c + 1))
    raw;
  (* waiver application: a finding is suppressed when any of its sites is
     covered by a justified in-source waiver for the rule, or when a
     file-level waiver's path fragment matches a site's file *)
  let lookup = source_waivers cfg in
  let used_line_waivers = ref [] in
  let suppressed = ref [] in
  let honored = ref 0 in
  let survives rf =
    (* evaluate every site against every waiver (no short-circuit): a
       waiver covering any site of a suppressed finding counts as used *)
    let line_waived = ref false in
    List.iter
      (fun site ->
        match site_file_line site with
        | Some (f, l) ->
          List.iter
            (fun w ->
              if
                w.Lint_common.lw_rule = rf.rf_rule
                && List.mem l w.Lint_common.lw_covers
              then begin
                if not (List.memq (f, w) !used_line_waivers) then
                  used_line_waivers := (f, w) :: !used_line_waivers;
                incr honored;
                line_waived := true
              end)
            (lookup f)
        | None -> ())
      rf.rf_sites;
    let line_waived = !line_waived in
    if line_waived then false
    else
      let file_waived =
        List.exists
          (fun w ->
            w.Lint_common.w_rule = rf.rf_rule
            && List.exists
                 (fun site ->
                   match site_file_line site with
                   | Some (f, _) ->
                     if Lint_common.contains f w.Lint_common.w_path then begin
                       suppressed :=
                         (f, w.Lint_common.w_rule, w.Lint_common.w_path)
                         :: !suppressed;
                       incr honored;
                       true
                     end
                     else false
                   | None -> false)
                 rf.rf_sites)
          waivers
      in
      not file_waived
  in
  let surviving = List.filter survives raw in
  (* stale in-source typed waivers: ours to judge — any typed/* waiver in
     a scanned unit's source that suppressed nothing must go *)
  let stale =
    List.concat_map
      (fun u ->
        let ws = lookup u.u_source in
        List.filter_map
          (fun w ->
            if
              List.mem w.Lint_common.lw_rule rule_ids
              && not
                   (List.exists
                      (fun (f, w') -> f = u.u_source && w' == w)
                      !used_line_waivers)
            then
              Some
                { rf_rule = "lint/waiver-unused";
                  rf_sites =
                    [ Printf.sprintf "%s:%d" u.u_source
                        w.Lint_common.lw_line ];
                  rf_message =
                    Printf.sprintf
                      "waiver for %s suppresses nothing — remove it"
                      w.Lint_common.lw_rule }
            else None)
          ws)
      units
  in
  let findings =
    List.sort_uniq compare
      (List.map finding_of_raw (surviving @ stale))
  in
  { findings;
    files_scanned = List.length units;
    rules_fired =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) fired []);
    waivers_honored = !honored;
    suppressed = List.sort_uniq compare !suppressed }

(* --- metrics ----------------------------------------------------------------------- *)

let publish_stats r =
  let set name v =
    Obs.Metrics.set_gauge (Obs.Metrics.gauge name) (float_of_int v)
  in
  set "typedlint.files_scanned" r.files_scanned;
  set "typedlint.findings" (List.length r.findings);
  set "typedlint.waivers_honored" r.waivers_honored;
  set "typedlint.rules_fired"
    (List.fold_left (fun a (_, c) -> a + c) 0 r.rules_fired);
  List.iter
    (fun (rule, c) -> set ("typedlint.fired." ^ rule) c)
    r.rules_fired
