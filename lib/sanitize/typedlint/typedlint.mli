(** Typed-AST isolation analyzer (the sanitizer's semantic head).

    Loads compiler-libs [.cmt] files (the repo builds with [-bin-annot])
    and runs interprocedural dataflow rules with real binding and scope
    resolution — the semantic upgrade over the substring lint in
    {!Sanlint}.  Rule families (all [Error] severity; findings reuse the
    {!Sanitize.finding} shape and the shared waiver discipline of
    {!Lint_common}):

    - [typed/capture-escape] — a thunk passed to [Sched.fork] /
      [Core.Parallel.fork]/[map]/[map_list] whose closure captures a
      [ref], [Hashtbl.t] or [Buffer.t] from an enclosing scope, or writes
      a mutable record field of a captured value, without routing through
      [Atomic], a [Mutex]-guarded section, [Domain.DLS] or the
      obs/sanitize registries.
    - [typed/lock-discipline] — consistent-lock-set inference: every
      access to a shared mutable location (module-level containers,
      mutable record fields keyed as [Type.field]) collects the lock set
      held at the access, seeded from [Sanitize.Lock.lock], [Mutex.lock]
      and [Mutex.protect] sites.  A location locked at one access must
      share a common lock at every access.
    - [typed/module-escape] — module-level mutable state reachable from
      the flow entry points ([Flow.run_all], [Report.Table.run_suite*],
      the [bin/] executables) with no synchronization wrapper and no
      consistent lock guard.
    - [typed/blocking-in-task] — [Mutex.lock], [Condition.wait], [Unix]
      blocking calls or [Thread.delay] syntactically reachable inside a
      forked task body, directly or through same-unit helpers: the
      no-help fork-join scheduler parks a whole worker.

    The analyzer is deliberately conservative (silence over noise): it is
    intraprocedural plus one same-unit hop, identifies locks by access
    path rather than instance, and treats lambdas it cannot see called as
    unreachable.  DESIGN.md §15 documents every deliberate gap. *)

type finding = Sanitize.finding = {
  rule_id : string;
  severity : Sanitize.severity;
  sites : string list;
      (** primary site first; context sites (the fork site) after *)
  message : string;
}

val rule_ids : string list
(** The four [typed/*] rule ids, sorted.  [scan_cmt_files] can also emit
    [lint/waiver-unused] for stale in-source [typed/*] waivers. *)

type config = {
  source_root : string;
      (** directory the cmt-recorded source paths are relative to (the
          build root); in-source waivers are read from here *)
  entry_points : string list;
      (** dotted suffixes of qualified toplevel value names that mark a
          unit as a flow entry *)
  entry_path_prefixes : string list;
      (** source-path prefixes whose units are entries (executables) *)
  sanctioned_path_fragments : string list;
      (** source-path fragments whose units hold sanctioned synchronized
          registries (their internals are exempt) *)
}

val default_config : config
(** Entries [Flow.run_all] / [Table.run_suite] / [Table.run_suite_timed]
    plus everything under [bin/]; sanctioned registries [lib/obs] and
    [lib/sanitize]; source root ["."]. *)

type result = {
  findings : finding list;  (** post-waiver, sorted and deduped *)
  files_scanned : int;      (** distinct implementation units analyzed *)
  rules_fired : (string * int) list;
      (** pre-waiver fired counts per rule id, sorted *)
  waivers_honored : int;    (** suppressions applied (line + file) *)
  suppressed : (string * string * string) list;
      (** file-level suppressions as [(path, rule_id, waiver_path)] — feed
          to {!Lint_common.used_waivers} for staleness checking *)
}

val scan_cmt_files :
  ?config:config -> ?waivers:Lint_common.waiver list -> string list -> result
(** Analyze the given [.cmt] files (interface-only and unreadable files
    are skipped; units are deduped by recorded source file, sorted for
    determinism).  [waivers] are [LINT_WAIVERS] entries; in-source
    [lint-waive] markers are read from each unit's source under
    [config.source_root].  Stale in-source [typed/*] waivers come back as
    [lint/waiver-unused] findings — this head owns their staleness, the
    substring head owns justification and known-rule checks. *)

val publish_stats : result -> unit
(** Publish [typedlint.*] gauges (files scanned, findings, rules fired —
    total and per rule — waivers honored) through the {!Obs.Metrics}
    registry; a no-op unless metrics are enabled. *)
