(* Static nondeterminism & memory-model lint (substring head).

   Pattern rules over comment- and string-stripped source lines; the
   stripper and the justified-waiver machinery live in [Lint_common],
   shared with the typed-AST analyzer.  Rules here only ever see real
   code, which keeps them simple substring checks — deterministic, fast,
   and dependency-free.

   The former mm/mutable-global substring rule is retired: its semantic
   replacement is the typed analyzer's typed/module-escape, which resolves
   real bindings instead of guessing from allocation tokens. *)

type finding = Sanitize.finding = {
  rule_id : string;
  severity : Sanitize.severity;
  sites : string list;
  message : string;
}

type waiver = Lint_common.waiver = {
  w_rule : string;
  w_path : string;
  w_reason : string;
}

let contains = Lint_common.contains
let contains_from = Lint_common.contains_from
let parse_waivers = Lint_common.parse_waivers
let used_waivers = Lint_common.used_waivers

(* --- rules ------------------------------------------------------------------------ *)

(* [Random.] uses that are not [Random.State] (explicitly seeded state is
   deterministic; the ambient generator is not). *)
let has_ambient_random code =
  let rec go from =
    match contains_from code from "Random." with
    | -1 -> false
    | at ->
      if contains_from code (at + 7) "State" = at + 7 then go (at + 7)
      else true
  in
  go 0

type rule = {
  r_id : string;
  r_applies : path:string -> bool;
  r_hit : string -> bool;  (* on the code-only line *)
  r_message : string;
}

let rules =
  [ { r_id = "nondet/hashtbl-order";
      r_applies = (fun ~path:_ -> true);
      r_hit =
        (fun code ->
          List.exists (contains code)
            [ "Hashtbl.iter"; "Hashtbl.fold"; "Hashtbl.to_seq" ]
          && not (contains code "sort"));
      r_message =
        "unordered Hashtbl iteration: hash order is an implementation \
         detail (and changes under OCAMLRUNPARAM=R); sort the result or \
         waive with the downstream normalization argument" };
    { r_id = "nondet/wall-clock";
      r_applies = (fun ~path:_ -> true);
      r_hit =
        (fun code ->
          List.exists (contains code)
            [ "Unix.gettimeofday"; "Unix.time "; "Unix.time()";
              "Unix.time ()"; "Sys.time" ]);
      r_message =
        "wall-clock read: results must not depend on when they were \
         computed; timing that feeds only measurement output must be \
         waived as such" };
    { r_id = "nondet/ambient-random";
      r_applies = (fun ~path:_ -> true);
      r_hit = has_ambient_random;
      r_message =
        "ambient Random.* generator: global RNG state makes results \
         depend on call interleaving; use an explicitly seeded \
         Random.State" };
    { r_id = "nondet/domain-id";
      r_applies = (fun ~path:_ -> true);
      r_hit = (fun code -> contains code "Domain.self");
      r_message =
        "Domain.self in code: domain identity varies with scheduling and \
         must never reach a result path" };
    { r_id = "mm/physical-eq-key";
      r_applies = (fun ~path:_ -> true);
      r_hit =
        (fun code ->
          contains code "Obj.repr" || contains code "Obj.magic"
          || (contains code "Hashtbl." && contains code "=="));
      r_message =
        "physical-equality / address-dependent key: object identity is \
         not a stable program input (moving GC, re-parsing) and poisons \
         memo tables" };
    { r_id = "mm/naked-atomic-get";
      r_applies = (fun ~path:_ -> true);
      r_hit =
        (fun code ->
          contains code "Atomic.get" && contains code ".published");
      r_message =
        "naked Atomic.get of a fence-protected field: .published is the \
         publication fence and may only be read as part of the documented \
         sync-retry protocol" }
  ]

let rule_ids =
  List.sort compare
    (Lint_common.meta_rule_ids @ List.map (fun r -> r.r_id) rules)

(* --- file scan -------------------------------------------------------------------- *)

let scan_file ?(foreign_rules = []) ?(waivers = []) ~path content =
  let raw_lines, code_lines = Lint_common.strip_lines content in
  let lws, waiver_probs =
    Lint_common.line_waivers ~path raw_lines code_lines
  in
  let known w = List.mem w rule_ids || List.mem w foreign_rules in
  let waiver_probs =
    waiver_probs
    @ List.filter_map
        (fun w ->
          if known w.Lint_common.lw_rule then None
          else
            Some
              { rule_id = "lint/waiver-unknown-rule";
                severity = Sanitize.Error;
                sites = [ Printf.sprintf "%s:%d" path w.Lint_common.lw_line ];
                message =
                  Printf.sprintf "waiver names unknown rule %S"
                    w.Lint_common.lw_rule })
        lws
  in
  let findings = ref [] and file_suppressed = ref [] in
  let used_lws = ref [] in
  Array.iteri
    (fun i code ->
      let lineno = i + 1 in
      List.iter
        (fun r ->
          if r.r_applies ~path && r.r_hit code then
            match
              List.find_opt
                (fun w ->
                  w.Lint_common.lw_rule = r.r_id
                  && List.mem lineno w.Lint_common.lw_covers)
                lws
            with
            | Some w ->
              if not (List.memq w !used_lws) then used_lws := w :: !used_lws
            | None -> (
              match
                List.find_opt
                  (fun w ->
                    w.w_rule = r.r_id && contains path w.w_path)
                  waivers
              with
              | Some w ->
                file_suppressed :=
                  (path, w.w_rule, w.w_path) :: !file_suppressed
              | None ->
                findings :=
                  { rule_id = r.r_id;
                    severity = Sanitize.Error;
                    sites = [ Printf.sprintf "%s:%d" path lineno ];
                    message = r.r_message }
                  :: !findings))
        rules)
    code_lines;
  (* an in-source waiver that suppressed nothing is stale — waivers may
     only shrink, never linger past the code they excused.  Waivers naming
     a foreign rule (the typed analyzer's) are not ours to judge: that
     head checks their staleness itself. *)
  let stale =
    List.filter_map
      (fun w ->
        if
          (not (List.mem w.Lint_common.lw_rule rule_ids))
          || List.memq w !used_lws
        then None
        else
          Some
            { rule_id = "lint/waiver-unused";
              severity = Sanitize.Error;
              sites = [ Printf.sprintf "%s:%d" path w.Lint_common.lw_line ];
              message =
                Printf.sprintf
                  "waiver for %s suppresses nothing — remove it"
                  w.Lint_common.lw_rule })
      lws
  in
  let out =
    List.sort
      (fun a b -> compare (a.rule_id, a.sites) (b.rule_id, b.sites))
      (waiver_probs @ stale @ !findings)
  in
  (out, !file_suppressed)
