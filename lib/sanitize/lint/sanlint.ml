(* Static nondeterminism & memory-model lint.

   Pattern rules over comment- and string-stripped source lines.  The
   stripper is a faithful-enough OCaml lexer subset: nested (* *) comments
   (including strings inside comments, which the real lexer also balances),
   double-quoted strings with escapes, {| |} quoted strings, and char
   literals (so '"' does not open a string).  Rules then only ever see real
   code, which keeps them simple substring checks — deterministic, fast,
   and dependency-free.

   Waivers are part of the report contract: every suppression must carry a
   justification (in the source next to the site, or in LINT_WAIVERS next
   to the path), and a suppression that stops matching anything is itself
   reported, so the waiver set can only shrink. *)

type finding = Sanitize.finding = {
  rule_id : string;
  severity : Sanitize.severity;
  sites : string list;
  message : string;
}

type waiver = {
  w_rule : string;
  w_path : string;
  w_reason : string;
}

(* --- tiny string helpers -------------------------------------------------------- *)

let contains_from hay start needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then -1
    else if String.sub hay i nn = needle then i
    else go (i + 1)
  in
  if nn = 0 then -1 else go start

let contains hay needle = contains_from hay 0 needle >= 0

let trim = String.trim

(* --- comment / string stripping -------------------------------------------------- *)

type lex_state =
  | Code
  | Comment of int  (* nesting depth *)
  | Str of int      (* a string; payload = comment depth to return to,
                       0 meaning code *)
  | Quoted of int   (* a {|...|} quoted string, same payload *)

(* Strip one line under [st]; returns the code-only text (non-code bytes
   replaced by spaces, so column positions survive) and the state at end of
   line. *)
let strip_line st line =
  let n = String.length line in
  let out = Bytes.make n ' ' in
  let rec go st i =
    if i >= n then st
    else
      match st with
      | Code ->
        if i + 1 < n && line.[i] = '(' && line.[i + 1] = '*' then
          go (Comment 1) (i + 2)
        else if line.[i] = '"' then go (Str 0) (i + 1)
        else if i + 1 < n && line.[i] = '{' && line.[i + 1] = '|' then
          go (Quoted 0) (i + 2)
        else if
          (* char literal: '\n' / 'x' — must not open a string on '"' *)
          line.[i] = '\''
          && ((i + 2 < n && line.[i + 1] <> '\\' && line.[i + 2] = '\'')
              || (i + 3 < n && line.[i + 1] = '\\' && line.[i + 3] = '\''))
        then begin
          (* keep the quotes' width but blank the payload *)
          let len = if line.[i + 1] = '\\' then 4 else 3 in
          go Code (i + len)
        end
        else begin
          Bytes.set out i line.[i];
          go Code (i + 1)
        end
      | Comment d ->
        if i + 1 < n && line.[i] = '(' && line.[i + 1] = '*' then
          go (Comment (d + 1)) (i + 2)
        else if i + 1 < n && line.[i] = '*' && line.[i + 1] = ')' then
          go (if d = 1 then Code else Comment (d - 1)) (i + 2)
        else if line.[i] = '"' then go (Str d) (i + 1)
        else go (Comment d) (i + 1)
      | Str back ->
        if line.[i] = '\\' then go st (i + 2)
        else if line.[i] = '"' then
          go (if back = 0 then Code else Comment back) (i + 1)
        else go st (i + 1)
      | Quoted back ->
        if i + 1 < n && line.[i] = '|' && line.[i + 1] = '}' then
          go (if back = 0 then Code else Comment back) (i + 2)
        else go st (i + 1)
  in
  let st' = go st 0 in
  (Bytes.to_string out, st')

(* --- waiver parsing -------------------------------------------------------------- *)

let min_reason_len = 10

(* built by concatenation so this very definition does not read as a
   waiver when the lint scans its own source *)
let waiver_marker = "lint-waive" ^ ":"

type line_waiver = {
  lw_line : int;  (* the marker's own line *)
  lw_rule : string;
  lw_covers : int list;  (* lines the waiver suppresses *)
}

(* How far below its marker a standalone waiver comment may reach while
   looking for the code line it covers (a justification that wraps over a
   few comment lines still lands on the site directly below it). *)
let cover_lookahead = 6

(* in-source waivers: each lint-waive comment, the lines it covers, plus
   findings for malformed ones.  A marker sharing its line with code
   covers exactly that line; a standalone comment covers every line down
   to (and including) the first following code line. *)
let line_waivers ~path raw_lines code_lines =
  let waivers = ref [] and probs = ref [] in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      match contains_from line 0 waiver_marker with
      | -1 -> ()
      | at ->
        let rest =
          trim
            (String.sub line
               (at + String.length waiver_marker)
               (String.length line - at - String.length waiver_marker))
        in
        let rule, reason =
          match String.index_opt rest ' ' with
          | None -> (rest, "")
          | Some sp ->
            ( String.sub rest 0 sp,
              trim (String.sub rest sp (String.length rest - sp)) )
        in
        (* strip a leading em-dash / dash / colon separator *)
        let reason =
          let r = reason in
          let drop p =
            String.length r >= String.length p
            && String.sub r 0 (String.length p) = p
          in
          if drop "\xe2\x80\x94" then
            trim (String.sub r 3 (String.length r - 3))
          else if drop "--" then trim (String.sub r 2 (String.length r - 2))
          else if drop "-" || drop ":" then
            trim (String.sub r 1 (String.length r - 1))
          else r
        in
        if String.length reason < min_reason_len then
          probs :=
            { rule_id = "lint/waiver-unjustified";
              severity = Sanitize.Error;
              sites = [ Printf.sprintf "%s:%d" path lineno ];
              message =
                Printf.sprintf
                  "waiver for %s carries no justification (need >= %d chars \
                   explaining why the site is legitimate)"
                  rule min_reason_len }
            :: !probs
        else begin
          let n = Array.length code_lines in
          let has_code j = j <= n && trim code_lines.(j - 1) <> "" in
          let covers =
            if has_code lineno then [ lineno ]
            else begin
              let rec down j acc =
                if j > n || j > lineno + cover_lookahead then List.rev acc
                else if has_code j then List.rev (j :: acc)
                else down (j + 1) (j :: acc)
              in
              down (lineno + 1) [ lineno ]
            end
          in
          waivers :=
            { lw_line = lineno; lw_rule = rule; lw_covers = covers }
            :: !waivers
        end)
    raw_lines;
  (List.rev !waivers, List.rev !probs)

let parse_waivers body =
  let probs = ref [] and ws = ref [] in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = trim line in
      if line <> "" && line.[0] <> '#' then begin
        let parts =
          String.split_on_char ' ' line
          |> List.filter (fun s -> s <> "")
        in
        match parts with
        | rule :: path :: (_ :: _ as reason_words)
          when String.length (String.concat " " reason_words)
               >= min_reason_len ->
          ws :=
            { w_rule = rule;
              w_path = path;
              w_reason = String.concat " " reason_words }
            :: !ws
        | _ ->
          probs :=
            { rule_id = "lint/waiver-unjustified";
              severity = Sanitize.Error;
              sites = [ Printf.sprintf "LINT_WAIVERS:%d" lineno ];
              message =
                Printf.sprintf
                  "expected '<rule-id> <path-substring> <justification >= \
                   %d chars>', got %S"
                  min_reason_len line }
            :: !probs
      end)
    (String.split_on_char '\n' body);
  (List.rev !ws, List.rev !probs)

(* --- rules ------------------------------------------------------------------------ *)

(* [Random.] uses that are not [Random.State] (explicitly seeded state is
   deterministic; the ambient generator is not). *)
let has_ambient_random code =
  let rec go from =
    match contains_from code from "Random." with
    | -1 -> false
    | at ->
      if contains_from code (at + 7) "State" = at + 7 then go (at + 7)
      else true
  in
  go 0

(* a top-level [let name = ...] binding mutable state.  A binding with
   parameters before the [=] is a function — its body allocates per call,
   which is exactly the fix this rule pushes toward — so only plain value
   bindings (optionally type-annotated) count. *)
let is_mutable_global code =
  String.length code > 4
  && String.sub code 0 4 = "let "
  && (match code.[4] with 'a' .. 'z' | '_' -> true | _ -> false)
  && (match String.index_opt code '=' with
     | None -> false
     | Some eq -> (
       let words =
         String.split_on_char ' ' (String.sub code 0 eq)
         |> List.filter (fun w -> w <> "")
       in
       match words with
       | "let" :: _name :: rest -> (
         match rest with
         | [] -> true
         | w :: _ -> String.length w > 0 && w.[0] = ':')
       | _ -> false))
  && List.exists (contains code)
       [ "= ref "; "= ref("; "Atomic.make"; "Hashtbl.create";
         "Buffer.create"; "Bytes.create"; "Queue.create"; "Stack.create";
         "Array.make"; "Array.create" ]
  && not
       (List.exists (contains code)
          [ "Obs.Metrics."; "Mutex.create"; "Condition.create";
            "Domain.DLS"; "Sanitize.Lock." ])

type rule = {
  r_id : string;
  r_applies : path:string -> bool;
  r_hit : string -> bool;  (* on the code-only line *)
  r_message : string;
}

(* Module-level mutable state is sanctioned inside the two registries that
   exist to hold it (and are themselves synchronized and commutative). *)
let sanctioned_state_dirs = [ "lib/obs"; "lib/sanitize" ]

let rules =
  [ { r_id = "nondet/hashtbl-order";
      r_applies = (fun ~path:_ -> true);
      r_hit =
        (fun code ->
          List.exists (contains code)
            [ "Hashtbl.iter"; "Hashtbl.fold"; "Hashtbl.to_seq" ]
          && not (contains code "sort"));
      r_message =
        "unordered Hashtbl iteration: hash order is an implementation \
         detail (and changes under OCAMLRUNPARAM=R); sort the result or \
         waive with the downstream normalization argument" };
    { r_id = "nondet/wall-clock";
      r_applies = (fun ~path:_ -> true);
      r_hit =
        (fun code ->
          List.exists (contains code)
            [ "Unix.gettimeofday"; "Unix.time "; "Unix.time()";
              "Unix.time ()"; "Sys.time" ]);
      r_message =
        "wall-clock read: results must not depend on when they were \
         computed; timing that feeds only measurement output must be \
         waived as such" };
    { r_id = "nondet/ambient-random";
      r_applies = (fun ~path:_ -> true);
      r_hit = has_ambient_random;
      r_message =
        "ambient Random.* generator: global RNG state makes results \
         depend on call interleaving; use an explicitly seeded \
         Random.State" };
    { r_id = "nondet/domain-id";
      r_applies = (fun ~path:_ -> true);
      r_hit = (fun code -> contains code "Domain.self");
      r_message =
        "Domain.self in code: domain identity varies with scheduling and \
         must never reach a result path" };
    { r_id = "mm/physical-eq-key";
      r_applies = (fun ~path:_ -> true);
      r_hit =
        (fun code ->
          contains code "Obj.repr" || contains code "Obj.magic"
          || (contains code "Hashtbl." && contains code "=="));
      r_message =
        "physical-equality / address-dependent key: object identity is \
         not a stable program input (moving GC, re-parsing) and poisons \
         memo tables" };
    { r_id = "mm/naked-atomic-get";
      r_applies = (fun ~path:_ -> true);
      r_hit =
        (fun code ->
          contains code "Atomic.get" && contains code ".published");
      r_message =
        "naked Atomic.get of a fence-protected field: .published is the \
         publication fence and may only be read as part of the documented \
         sync-retry protocol" };
    { r_id = "mm/mutable-global";
      r_applies =
        (fun ~path ->
          not
            (List.exists
               (fun d -> contains path d)
               sanctioned_state_dirs));
      r_hit = is_mutable_global;
      r_message =
        "module-level mutable state outside the sanctioned registries: \
         process-wide state shared across domains needs an explicit \
         synchronization argument — add it and waive, or move it into a \
         registry" }
  ]

let rule_ids =
  List.sort compare
    ("lint/waiver-unjustified" :: "lint/waiver-unused"
    :: "lint/waiver-unknown-rule"
    :: List.map (fun r -> r.r_id) rules)

(* --- file scan -------------------------------------------------------------------- *)

let scan_file ?(waivers = []) ~path content =
  let raw_lines = String.split_on_char '\n' content in
  let code_lines =
    let st = ref Code in
    Array.of_list
      (List.map
         (fun raw ->
           let code, st' = strip_line !st raw in
           st := st';
           code)
         raw_lines)
  in
  let lws, waiver_probs = line_waivers ~path raw_lines code_lines in
  let waiver_probs =
    waiver_probs
    @ List.filter_map
        (fun w ->
          if List.mem w.lw_rule rule_ids then None
          else
            Some
              { rule_id = "lint/waiver-unknown-rule";
                severity = Sanitize.Error;
                sites = [ Printf.sprintf "%s:%d" path w.lw_line ];
                message =
                  Printf.sprintf "waiver names unknown rule %S" w.lw_rule })
        lws
  in
  let findings = ref [] and file_suppressed = ref [] in
  let used_lws = ref [] in
  Array.iteri
    (fun i code ->
      let lineno = i + 1 in
      List.iter
        (fun r ->
          if r.r_applies ~path && r.r_hit code then
            match
              List.find_opt
                (fun w ->
                  w.lw_rule = r.r_id && List.mem lineno w.lw_covers)
                lws
            with
            | Some w ->
              if not (List.memq w !used_lws) then used_lws := w :: !used_lws
            | None -> (
              match
                List.find_opt
                  (fun w ->
                    w.w_rule = r.r_id && contains path w.w_path)
                  waivers
              with
              | Some w ->
                file_suppressed :=
                  (path, w.w_rule, w.w_path) :: !file_suppressed
              | None ->
                findings :=
                  { rule_id = r.r_id;
                    severity = Sanitize.Error;
                    sites = [ Printf.sprintf "%s:%d" path lineno ];
                    message = r.r_message }
                  :: !findings))
        rules)
    code_lines;
  (* an in-source waiver that suppressed nothing is stale — waivers may
     only shrink, never linger past the code they excused *)
  let stale =
    List.filter_map
      (fun w ->
        if (not (List.mem w.lw_rule rule_ids)) || List.memq w !used_lws
        then None
        else
          Some
            { rule_id = "lint/waiver-unused";
              severity = Sanitize.Error;
              sites = [ Printf.sprintf "%s:%d" path w.lw_line ];
              message =
                Printf.sprintf
                  "waiver for %s suppresses nothing — remove it" w.lw_rule })
      lws
  in
  let out =
    List.sort
      (fun a b -> compare (a.rule_id, a.sites) (b.rule_id, b.sites))
      (waiver_probs @ stale @ !findings)
  in
  (out, !file_suppressed)

let used_waivers ~waivers suppressed =
  List.filter
    (fun w ->
      List.exists
        (fun (_, rule, wpath) -> rule = w.w_rule && wpath = w.w_path)
        suppressed)
    waivers
