(* Shared plumbing for the two static lint heads (the substring lint in
   [Sanlint] and the typed-AST analyzer in [Typedlint]): the OCaml
   lexer-subset comment/string stripper, and the justified-waiver
   machinery (in-source [lint-waive] markers and the LINT_WAIVERS file).

   The stripper is a faithful-enough OCaml lexer subset: nested (* *)
   comments — including strings, {| |} / {id| |id} quoted strings and
   char literals *inside* comments, all of which the real lexer also
   balances — double-quoted strings with escapes, quoted strings with
   identifier delimiters, and char literals (so '"' does not open a
   string, in code or in a comment). *)

type finding = Sanitize.finding = {
  rule_id : string;
  severity : Sanitize.severity;
  sites : string list;
  message : string;
}

(* --- tiny string helpers -------------------------------------------------------- *)

let contains_from hay start needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then -1
    else if String.sub hay i nn = needle then i
    else go (i + 1)
  in
  if nn = 0 then -1 else go start

let contains hay needle = contains_from hay 0 needle >= 0

let trim = String.trim

(* --- comment / string stripping -------------------------------------------------- *)

type lex_state =
  | Code
  | Comment of int  (* nesting depth *)
  | Str of int      (* a string; payload = comment depth to return to,
                       0 meaning code *)
  | Quoted of int * string
      (* a {id|...|id} quoted string: comment depth to return to, plus the
         delimiter identifier (empty for plain {|...|}) *)

(* A char literal starting at [i] (where [line.[i] = '\'']): returns the
   index just past its closing quote, or None if the shape is not a
   literal (identifier primes, type variables, prose apostrophes).
   Handles 'x', '\n', '\\', '\'', '\"', '\123', '\xHH', '\o123'. *)
let char_literal_end line i =
  let n = String.length line in
  if i + 2 < n && line.[i + 1] <> '\\' && line.[i + 1] <> '\''
     && line.[i + 2] = '\''
  then Some (i + 3)
  else if i + 1 < n && line.[i + 1] = '\\' then begin
    (* escaped form: the closing quote is the first quote at or after
       i+3 within the longest escape ('\o123' -> 7 chars total) *)
    let rec find j =
      if j >= n || j > i + 6 then None
      else if line.[j] = '\'' then Some (j + 1)
      else find (j + 1)
    in
    find (i + 3)
  end
  else None

(* A quoted-string opener at [i] (where [line.[i] = '{']): returns the
   delimiter identifier and the index just past the opening '|'. *)
let quoted_open line i =
  let n = String.length line in
  let rec skip j =
    if j < n
       && (match line.[j] with 'a' .. 'z' | '_' -> true | _ -> false)
    then skip (j + 1)
    else j
  in
  let j = skip (i + 1) in
  if j < n && line.[j] = '|' then Some (String.sub line (i + 1) (j - i - 1), j + 1)
  else None

(* Does the quoted-string closer [|id}] start at [i]
   (where [line.[i] = '|'])? *)
let quoted_close line i id =
  let n = String.length line and k = String.length id in
  i + k + 1 < n
  && String.sub line (i + 1) k = id
  && line.[i + k + 1] = '}'

(* Strip one line under [st]; returns the code-only text (non-code bytes
   replaced by spaces, so column positions survive) and the state at end of
   line. *)
let strip_line st line =
  let n = String.length line in
  let out = Bytes.make n ' ' in
  let rec go st i =
    if i >= n then st
    else
      match st with
      | Code -> (
        if i + 1 < n && line.[i] = '(' && line.[i + 1] = '*' then
          go (Comment 1) (i + 2)
        else if line.[i] = '"' then go (Str 0) (i + 1)
        else if line.[i] = '{' then
          match quoted_open line i with
          | Some (id, next) -> go (Quoted (0, id)) next
          | None ->
            Bytes.set out i line.[i];
            go Code (i + 1)
        else if line.[i] = '\'' then
          match char_literal_end line i with
          | Some next -> go Code next (* blank the payload, keep width *)
          | None ->
            Bytes.set out i line.[i];
            go Code (i + 1)
        else begin
          Bytes.set out i line.[i];
          go Code (i + 1)
        end)
      | Comment d -> (
        if i + 1 < n && line.[i] = '(' && line.[i + 1] = '*' then
          go (Comment (d + 1)) (i + 2)
        else if i + 1 < n && line.[i] = '*' && line.[i + 1] = ')' then
          go (if d = 1 then Code else Comment (d - 1)) (i + 2)
        else if line.[i] = '"' then go (Str d) (i + 1)
        else if line.[i] = '{' then
          match quoted_open line i with
          | Some (id, next) -> go (Quoted (d, id)) next
          | None -> go (Comment d) (i + 1)
        else if line.[i] = '\'' then
          (* the real lexer skips char literals inside comments, so
             (* '"' *) and (* '\"' *) never open a string *)
          match char_literal_end line i with
          | Some next -> go (Comment d) next
          | None -> go (Comment d) (i + 1)
        else go (Comment d) (i + 1))
      | Str back ->
        if line.[i] = '\\' then go st (i + 2)
        else if line.[i] = '"' then
          go (if back = 0 then Code else Comment back) (i + 1)
        else go st (i + 1)
      | Quoted (back, id) ->
        if line.[i] = '|' && quoted_close line i id then
          go
            (if back = 0 then Code else Comment back)
            (i + String.length id + 2)
        else go st (i + 1)
  in
  let st' = go st 0 in
  (Bytes.to_string out, st')

let strip_lines content =
  let raw_lines = String.split_on_char '\n' content in
  let st = ref Code in
  let code =
    Array.of_list
      (List.map
         (fun raw ->
           let code, st' = strip_line !st raw in
           st := st';
           code)
         raw_lines)
  in
  (raw_lines, code)

(* --- waiver parsing -------------------------------------------------------------- *)

let min_reason_len = 10

(* built by concatenation so this very definition does not read as a
   waiver when the lint scans its own source *)
let waiver_marker = "lint-waive" ^ ":"

type line_waiver = {
  lw_line : int;  (* the marker's own line *)
  lw_rule : string;
  lw_covers : int list;  (* lines the waiver suppresses *)
}

(* How far below its marker a standalone waiver comment may reach while
   looking for the code line it covers (a justification that wraps over a
   few comment lines still lands on the site directly below it). *)
let cover_lookahead = 6

(* in-source waivers: each lint-waive comment, the lines it covers, plus
   findings for malformed ones.  A marker sharing its line with code
   covers exactly that line; a standalone comment covers every line down
   to (and including) the first following code line. *)
let line_waivers ~path raw_lines code_lines =
  let waivers = ref [] and probs = ref [] in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      match contains_from line 0 waiver_marker with
      | -1 -> ()
      | at ->
        let rest =
          trim
            (String.sub line
               (at + String.length waiver_marker)
               (String.length line - at - String.length waiver_marker))
        in
        let rule, reason =
          match String.index_opt rest ' ' with
          | None -> (rest, "")
          | Some sp ->
            ( String.sub rest 0 sp,
              trim (String.sub rest sp (String.length rest - sp)) )
        in
        (* strip a leading em-dash / dash / colon separator *)
        let reason =
          let r = reason in
          let drop p =
            String.length r >= String.length p
            && String.sub r 0 (String.length p) = p
          in
          if drop "\xe2\x80\x94" then
            trim (String.sub r 3 (String.length r - 3))
          else if drop "--" then trim (String.sub r 2 (String.length r - 2))
          else if drop "-" || drop ":" then
            trim (String.sub r 1 (String.length r - 1))
          else r
        in
        if String.length reason < min_reason_len then
          probs :=
            { rule_id = "lint/waiver-unjustified";
              severity = Sanitize.Error;
              sites = [ Printf.sprintf "%s:%d" path lineno ];
              message =
                Printf.sprintf
                  "waiver for %s carries no justification (need >= %d chars \
                   explaining why the site is legitimate)"
                  rule min_reason_len }
            :: !probs
        else begin
          let n = Array.length code_lines in
          let has_code j = j <= n && trim code_lines.(j - 1) <> "" in
          let covers =
            if has_code lineno then [ lineno ]
            else begin
              let rec down j acc =
                if j > n || j > lineno + cover_lookahead then List.rev acc
                else if has_code j then List.rev (j :: acc)
                else down (j + 1) (j :: acc)
              in
              down (lineno + 1) [ lineno ]
            end
          in
          waivers :=
            { lw_line = lineno; lw_rule = rule; lw_covers = covers }
            :: !waivers
        end)
    raw_lines;
  (List.rev !waivers, List.rev !probs)

type waiver = {
  w_rule : string;
  w_path : string;
  w_reason : string;
}

let parse_waivers body =
  let probs = ref [] and ws = ref [] in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = trim line in
      if line <> "" && line.[0] <> '#' then begin
        let parts =
          String.split_on_char ' ' line
          |> List.filter (fun s -> s <> "")
        in
        match parts with
        | rule :: path :: (_ :: _ as reason_words)
          when String.length (String.concat " " reason_words)
               >= min_reason_len ->
          ws :=
            { w_rule = rule;
              w_path = path;
              w_reason = String.concat " " reason_words }
            :: !ws
        | _ ->
          probs :=
            { rule_id = "lint/waiver-unjustified";
              severity = Sanitize.Error;
              sites = [ Printf.sprintf "LINT_WAIVERS:%d" lineno ];
              message =
                Printf.sprintf
                  "expected '<rule-id> <path-substring> <justification >= \
                   %d chars>', got %S"
                  min_reason_len line }
            :: !probs
      end)
    (String.split_on_char '\n' body);
  (List.rev !ws, List.rev !probs)

let used_waivers ~waivers suppressed =
  List.filter
    (fun w ->
      List.exists
        (fun (_, rule, wpath) -> rule = w.w_rule && wpath = w.w_path)
        suppressed)
    waivers

(* the three meta rules both heads can emit about waivers themselves *)
let meta_rule_ids =
  [ "lint/waiver-unjustified"; "lint/waiver-unknown-rule";
    "lint/waiver-unused" ]
