(** Shared plumbing for the two static lint heads — the substring lint
    ({!Sanlint}) and the typed-AST analyzer ([Typedlint]): the OCaml
    lexer-subset comment/string stripper and the justified-waiver
    machinery (in-source [lint-waive] markers plus the [LINT_WAIVERS]
    file).  Both heads report findings in the {!Sanitize.finding} shape
    and share one waiver discipline: every suppression carries a
    justification, and a suppression that stops matching anything is
    itself a finding, so the waiver set can only shrink. *)

type finding = Sanitize.finding = {
  rule_id : string;
  severity : Sanitize.severity;
  sites : string list;
  message : string;
}

val contains : string -> string -> bool
(** [contains hay needle] — substring test ([false] for the empty
    needle). *)

val contains_from : string -> int -> string -> int
(** First index [>= start] where [needle] occurs, or [-1]. *)

(** {1 Comment / string stripping}

    A faithful-enough OCaml lexer subset: nested [(* *)] comments
    (including strings, [{| |}] / [{id| |id}] quoted strings and char
    literals {e inside} comments, which the real lexer also balances),
    double-quoted strings with escapes, quoted strings with identifier
    delimiters, and char literals (so ['"'] opens no string, in code or
    in a comment). *)

type lex_state =
  | Code
  | Comment of int  (** nesting depth *)
  | Str of int      (** comment depth to return to; 0 = code *)
  | Quoted of int * string
      (** comment depth to return to, delimiter identifier *)

val strip_line : lex_state -> string -> string * lex_state
(** Strip one line under the given state; non-code bytes are replaced by
    spaces so column positions survive.  Returns the code-only text and
    the state at end of line. *)

val strip_lines : string -> string list * string array
(** Strip a whole file: returns the raw lines and the code-only lines. *)

(** {1 Waivers} *)

val min_reason_len : int
(** Minimum justification length for any waiver. *)

type line_waiver = {
  lw_line : int;       (** the marker's own line *)
  lw_rule : string;
  lw_covers : int list;  (** lines the waiver suppresses *)
}

val line_waivers :
  path:string -> string list -> string array -> line_waiver list * finding list
(** [line_waivers ~path raw_lines code_lines] finds every in-source
    [(* lint-waive: <rule> — <justification> *)] marker: a marker sharing
    its line with code covers exactly that line; a standalone comment
    covers every line down to (and including) the first following code
    line.  Unjustified markers come back as [lint/waiver-unjustified]
    findings. *)

type waiver = {
  w_rule : string;
  w_path : string;  (** substring matched against the scanned path *)
  w_reason : string;
}

val parse_waivers : string -> waiver list * finding list
(** Parse a [LINT_WAIVERS] file body (one waiver per line, [#]-comments
    and blank lines ignored).  Malformed or unjustified lines come back
    as findings. *)

val used_waivers :
  waivers:waiver list -> (string * string * string) list -> waiver list
(** Which file waivers produced at least one suppression
    ([(path, rule_id, waiver_path)] records) — the complement flags stale
    [LINT_WAIVERS] entries. *)

val meta_rule_ids : string list
(** The waiver-discipline rules both heads can emit:
    [lint/waiver-unjustified], [lint/waiver-unknown-rule],
    [lint/waiver-unused]. *)
