(** Static nondeterminism & memory-model lint (the sanitizer's substring
    head).

    A small pattern rule engine over OCaml source: each file is stripped of
    comments and string literals (see {!Lint_common}), then every rule
    scans the remaining code lines for constructs that make flow output
    scheduling- or address-dependent, or that sidestep the documented
    memory-model protocols.  Rules (all [Error] severity; ids reuse the
    [Verify] / {!Sanitize} diagnostic shape):

    - [nondet/hashtbl-order] — [Hashtbl.iter]/[fold]/[to_seq]: unordered
      iteration feeding anything downstream.  Lines that sort on the spot
      (contain ["sort"]) are exempt.
    - [nondet/wall-clock] — [Unix.gettimeofday]/[Unix.time]/[Sys.time]
      reaching code (results must not depend on when they were computed).
    - [nondet/ambient-random] — the ambient [Random.*] generator (seeded
      [Random.State] values are deterministic and exempt).
    - [nondet/domain-id] — [Domain.self]: domain identity in result paths
      varies with scheduling.
    - [mm/physical-eq-key] — [Obj.repr]/[Obj.magic], or [==] used inside a
      [Hashtbl] call: address-dependent keys break across moving GC and
      are not stable program inputs.
    - [mm/naked-atomic-get] — [Atomic.get] of a field documented as
      fence-protected ([.published]): reading it without the paired
      protocol is a memory-model hazard.

    The former [mm/mutable-global] substring rule is {e retired}: the
    typed analyzer's [typed/module-escape] resolves real bindings, guard
    locks and reachability instead of guessing from allocation tokens.

    Waivers follow the shared discipline of {!Lint_common}: a finding is
    suppressed by a justified in-source comment
    [(* lint-waive: <rule-id> — <justification> *)] trailing the offending
    line or standing directly above it, or by a [LINT_WAIVERS] file line
    [<rule-id> <path-substring> <justification>].  A waiver without a
    justification is itself a finding ([lint/waiver-unjustified]), and so
    is any waiver that suppresses nothing ([lint/waiver-unused]). *)

type finding = Sanitize.finding = {
  rule_id : string;
  severity : Sanitize.severity;
  sites : string list;  (** [["file:line"]] *)
  message : string;
}

val rule_ids : string list
(** Every rule id this head can emit, sorted (includes the shared
    waiver-discipline meta rules). *)

type waiver = Lint_common.waiver = {
  w_rule : string;
  w_path : string;      (** substring matched against the scanned path *)
  w_reason : string;
}

val parse_waivers : string -> waiver list * finding list
(** Re-export of {!Lint_common.parse_waivers}. *)

val scan_file :
  ?foreign_rules:string list ->
  ?waivers:waiver list ->
  path:string ->
  string ->
  finding list * (string * string * string) list
(** Lint one file's contents.  Returns the surviving findings (sorted by
    rule then site) and, for each finding a file-level waiver suppressed,
    a [(path, rule_id, waiver_path)] record.  [path] appears in sites and
    is matched against file-level waivers; in-source line waivers suppress
    silently (their justification lives at the site).

    [foreign_rules] names rule ids owned by another lint head (the typed
    analyzer): waivers naming them are neither unknown-rule findings nor
    checked for staleness here — their owner judges them. *)

val used_waivers :
  waivers:waiver list -> (string * string * string) list -> waiver list
(** Re-export of {!Lint_common.used_waivers}. *)
