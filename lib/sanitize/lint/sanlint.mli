(** Static nondeterminism & memory-model lint (the sanitizer's second head).

    A small pattern rule engine over OCaml source: each file is stripped of
    comments and string literals, then every rule scans the remaining code
    lines for constructs that make flow output scheduling- or
    address-dependent, or that sidestep the documented memory-model
    protocols.  Rules (all [Error] severity; ids reuse the [Verify] /
    {!Sanitize} diagnostic shape):

    - [nondet/hashtbl-order] — [Hashtbl.iter]/[fold]/[to_seq]: unordered
      iteration feeding anything downstream.  Lines that sort on the spot
      (contain ["sort"]) are exempt.
    - [nondet/wall-clock] — [Unix.gettimeofday]/[Unix.time]/[Sys.time]
      reaching code (results must not depend on when they were computed).
    - [nondet/ambient-random] — the ambient [Random.*] generator (seeded
      [Random.State] values are deterministic and exempt).
    - [nondet/domain-id] — [Domain.self]: domain identity in result paths
      varies with scheduling.
    - [mm/physical-eq-key] — [Obj.repr]/[Obj.magic], or [==] used inside a
      [Hashtbl] call: address-dependent keys break across moving GC and
      are not stable program inputs.
    - [mm/naked-atomic-get] — [Atomic.get] of a field documented as
      fence-protected ([.published]): reading it without the paired
      protocol is a memory-model hazard.
    - [mm/mutable-global] — module-level mutable state ([ref],
      [Atomic.make], [Hashtbl.create], ...) outside the sanctioned
      registries ([lib/obs], [lib/sanitize]); ad-hoc process-wide state is
      where cross-domain races breed.  Synchronization primitives
      ([Mutex.create], [Condition.create]), [Domain.DLS] keys and
      [Obs.Metrics] instruments are exempt by design.

    Waivers: a finding is suppressed by a justified in-source comment
    [(* lint-waive: <rule-id> — <justification> *)] trailing the offending
    line, or standing directly above it (a standalone waiver comment
    covers every line down to the first following code line, so a wrapped
    justification still reaches its site), or by a [LINT_WAIVERS] file
    line [<rule-id> <path-substring> <justification>].  A waiver without a
    justification is itself a finding ([lint/waiver-unjustified]), and so
    is any waiver — in-source or file-level — that suppresses nothing
    ([lint/waiver-unused]). *)

type finding = Sanitize.finding = {
  rule_id : string;
  severity : Sanitize.severity;
  sites : string list;  (** [["file:line"]] *)
  message : string;
}

val rule_ids : string list
(** Every rule id the engine can emit, sorted. *)

type waiver = {
  w_rule : string;
  w_path : string;      (** substring matched against the scanned path *)
  w_reason : string;
}

val parse_waivers : string -> waiver list * finding list
(** Parse a [LINT_WAIVERS] file body (one waiver per line,
    [#]-comments and blank lines ignored).  Malformed or unjustified lines
    come back as findings. *)

val scan_file :
  ?waivers:waiver list ->
  path:string ->
  string ->
  finding list * (string * string * string) list
(** Lint one file's contents.  Returns the surviving findings (sorted by
    rule then site) and, for each finding a file-level waiver suppressed,
    a [(path, rule_id, waiver_path)] record.  [path] appears in sites and
    is matched against file-level waivers; in-source line waivers suppress
    silently (their justification lives at the site). *)

val used_waivers :
  waivers:waiver list -> (string * string * string) list -> waiver list
(** Which file waivers produced at least one suppression — the complement
    flags stale [LINT_WAIVERS] entries. *)
