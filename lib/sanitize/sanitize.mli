(** Concurrency & determinism sanitizer: thin instrumented shims over the
    synchronization primitives that [lib/sched] and [lib/bdd] build their
    hand-argued OCaml 5 memory-model invariants on.

    The shims are zero-cost when disabled — every event entry point is one
    atomic load and a branch, the same budget as [Obs] — and are enabled by
    the [SANITIZE] environment variable (any non-empty value other than
    ["0"]) or programmatically ({!enable}, wired to [table1 --sanitize]).
    When enabled they record per-domain event streams and check four
    dynamic rules online:

    - {b [lock/cycle]} — lock-order acyclicity across every {!Lock} shim
      (the 64 BDD stripe locks, the scheduler deque and wake locks, the BDD
      cache-registry lock).  Nested acquisitions build a lock graph whose
      edges carry the acquiring call stack; any cycle is reported with the
      backtrace of every edge on it.
    - {b [pub/...]} — the write-once publication protocol of the shared BDD
      node store: fields written, {e then} the publication counter fenced,
      {e then} the id published into a unique-table slot.  A slot published
      without an intervening fence is [pub/unfenced-publish]; a reader that
      obtains an id whose publication never reached the fence is
      [pub/unfenced-read]; a second field write to the same node is
      [pub/double-write].
    - {b [future/...]} — single-claim scheduler futures: a future claimed
      twice is [future/double-claim]; a completion by a domain that never
      claimed it is [future/foreign-done].
    - {b [dls/cross-scope-hit]} — [Domain.DLS] cache scope-stamp
      discipline: a memo-cache hit whose recorded owner scope differs from
      the current scope leaked work (and node-accounting charge) across
      scopes, breaking warmth-independent budgets.

    Checks only {e observe}; they never change the instrumented program's
    results, so a sanitized run stays byte-identical to an uninstrumented
    one.  Checks are also conservative about the memory model they police:
    before reporting a publication-order violation the checker re-reads the
    protocol state under the sanitizer's own mutex with bounded backoff, so
    a plain-field read that merely raced a writer's (correct) fence can
    never produce a false positive.

    Findings reuse the [Verify] report shape ([{rule_id; severity; sites;
    message}], same text and JSON rendering) and the event tallies are
    published as [sanitize.*] counters in the [Obs] metrics registry. *)

type severity = Error | Warning

type finding = {
  rule_id : string;  (** e.g. ["pub/unfenced-publish"] *)
  severity : severity;
  sites : string list;
      (** offending sites — lock names, [table:id] node coordinates,
          future ids, scope uids — ascending *)
  message : string;
}

val enabled : unit -> bool
(** One atomic load; every shim event gates on it. *)

val enable : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Drop all recorded findings and protocol state (lock graph, publication
    state machines, future claims).  The enabled flag is left unchanged. *)

val findings : unit -> finding list
(** Every finding recorded so far, deduplicated, errors first, then sorted
    by [(rule_id, sites)] — deterministic regardless of event timing. *)

val render : finding list -> string
(** One line per finding: [severity[rule_id] sites a,b: message] — the
    [Verify.render] shape. *)

val render_json : finding list -> string
(** The same list as a JSON array of objects (the [Verify.render_json]
    shape, with [sites] in place of [node_ids]). *)

val publish_stats : unit -> unit
(** Export [sanitize.*] gauges (event and finding tallies) into the [Obs]
    metrics registry. *)

(** Instrumented mutex shim.  Wraps a real [Mutex.t]; when the sanitizer is
    enabled, acquisitions maintain a per-domain held set and feed the
    global lock graph checked for cycles ([lock/cycle]). *)
module Lock : sig
  type t

  val create : order:int -> name:string -> t
  (** [order] is the lock's documented rank (informational, rendered in
      reports); [name] identifies it in findings. *)

  val lock : t -> unit
  val try_lock : t -> bool
  val unlock : t -> unit

  val wait : Condition.t -> t -> unit
  (** [Condition.wait] on the shimmed mutex (the lock is treated as held
      throughout, matching the caller's view). *)
end

(** Publication-protocol events for a write-once node store.  [table]
    identifies the store (the BDD table uid), [id] the node.  The legal
    per-node order is [wrote] -> [fenced] -> [published], after which any
    number of [read]s may observe the id.  Ids never seen by [wrote]
    (consed before the sanitizer was enabled) are exempt: rules fire only
    on positively observed protocol breaks. *)
module Pub : sig
  val wrote : table:int -> id:int -> unit
  (** Node fields written to the store (pre-fence). *)

  val fenced : table:int -> id:int -> unit
  (** The publication counter was bumped (the release fence) covering
      [id]. *)

  val published : table:int -> id:int -> unit
  (** [id] was made discoverable (stored into a unique-table slot).
      Reports [pub/unfenced-publish] if the fence was skipped. *)

  val read : table:int -> id:int -> unit
  (** A reader obtained [id] from a published slot and will trust its
      fields.  Reports [pub/unfenced-read] if [id]'s publication is known
      to have skipped the fence. *)
end

(** Single-claim future events.  Future uids come from {!Future.fresh};
    uid 0 is the "untracked" sentinel and is ignored by every event. *)
module Future : sig
  val fresh : unit -> int
  (** A new nonzero future uid. *)

  val claimed : fut:int -> unit
  (** The calling domain won the [Pending -> Running] CAS.  A second claim
      of the same future is [future/double-claim]. *)

  val completed : fut:int -> unit
  (** The calling domain stored [Done].  Reports [future/foreign-done]
      unless it is the recorded claimant. *)

  val claimed_by : fut:int -> domain:int -> unit
  (** {!claimed} with an explicit domain id — for driving the checker from
      deterministic single-domain tests. *)

  val completed_by : fut:int -> domain:int -> unit
end

(** [Domain.DLS] cache scope-stamp events. *)
module Dls : sig
  val cache_hit : entry_uid:int -> scope_uid:int -> unit
  (** A memo-cache hit: [entry_uid] is the stamp stored with the entry,
      [scope_uid] the scope consuming it.  A mismatch is
      [dls/cross-scope-hit]. *)
end
