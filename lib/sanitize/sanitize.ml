(* Concurrency & determinism sanitizer (dynamic head).

   The scheduler (lib/sched) and the domain-shared BDD table (lib/bdd) are
   correct only under hand-argued OCaml 5 memory-model invariants: stripe
   and deque locks are never nested into a cycle, node fields are published
   write-once behind a fence, futures are claimed exactly once, DLS memo
   caches never leak entries across scopes.  No existing tool checks any of
   that, so this module does: the instrumented code reports events through
   the shims below, and each rule is checked online against a small state
   machine.

   Cost model: every entry point starts with [if not (enabled ()) then ()]
   — one atomic load and a branch, like Obs — so the shims stay permanently
   compiled into the hot paths.  When enabled, the rare events (lock
   acquisitions, node publications, future claims) take the sanitizer
   mutex; the frequent ones (node reads, cache hits) are checked with plain
   loads against write-once state and only lock on an *apparent*
   violation.

   False-positive discipline: the checker polices a relaxed memory model,
   so its own observations can race the protocol it checks.  Two design
   rules keep it sound:
   - state only ever strengthens (unknown -> wrote -> fenced -> published),
     and rules fire only on positively observed breaks — an id the
     sanitizer never saw written (consed before enabling, or by an
     uninstrumented path) is exempt;
   - before reporting a publication-order violation observed through a
     plain read, the checker re-reads under its own mutex with bounded
     backoff ([confirm_retries]); a racy-but-correct writer resolves in a
     handful of iterations, while a genuinely dropped fence stays broken
     forever and is reported.

   Findings reuse the Verify report shape; tallies publish as sanitize.*
   metrics. *)

type severity = Error | Warning

type finding = {
  rule_id : string;
  severity : severity;
  sites : string list;
  message : string;
}

(* --- enable gate --------------------------------------------------------------- *)

let on = Atomic.make false

let enabled () = Atomic.get on
let enable () = Atomic.set on true
let disable () = Atomic.set on false

(* SANITIZE=1 in the environment arms the sanitizer before any flow code
   runs, covering binaries that grew no --sanitize flag. *)
let () =
  match Sys.getenv_opt "SANITIZE" with
  | Some s when s <> "" && s <> "0" -> enable ()
  | Some _ | None -> ()

(* --- metrics -------------------------------------------------------------------- *)

let m_lock_acquires = Obs.Metrics.counter "sanitize.lock.acquires"
let m_lock_edges = Obs.Metrics.counter "sanitize.lock.edges"
let m_pub_writes = Obs.Metrics.counter "sanitize.pub.writes"
let m_pub_reads = Obs.Metrics.counter "sanitize.pub.reads"
let m_future_claims = Obs.Metrics.counter "sanitize.future.claims"
let m_dls_hits = Obs.Metrics.counter "sanitize.dls.hits"
let m_findings = Obs.Metrics.counter "sanitize.findings"

(* --- findings ------------------------------------------------------------------- *)

(* All mutable checker state below is guarded by [state_lock] (a raw mutex:
   the sanitizer must not instrument itself).  Findings are deduplicated on
   (rule_id, sites) so a hot loop hitting the same broken site reports it
   once. *)
let state_lock = Mutex.create ()

let max_findings = 200

let findings_tbl : (string * string list, finding) Hashtbl.t =
  Hashtbl.create 16

let locked f =
  Mutex.lock state_lock;
  match f () with
  | v ->
    Mutex.unlock state_lock;
    v
  | exception e ->
    Mutex.unlock state_lock;
    raise e

(* must be called with [state_lock] held *)
let record_locked fdg =
  let key = (fdg.rule_id, fdg.sites) in
  if
    (not (Hashtbl.mem findings_tbl key))
    && Hashtbl.length findings_tbl < max_findings
  then begin
    Hashtbl.add findings_tbl key fdg;
    Obs.Metrics.incr m_findings
  end

let record fdg = locked (fun () -> record_locked fdg)

let findings () =
  let all =
    locked (fun () ->
        (* lint-waive: nondet/hashtbl-order — the fold result is fully sorted
           on (severity, rule_id, sites) below, so hash order is dead. *)
        Hashtbl.fold (fun _ f acc -> f :: acc) findings_tbl [])
  in
  let rank = function Error -> 0 | Warning -> 1 in
  List.sort
    (fun a b ->
      compare
        (rank a.severity, a.rule_id, a.sites)
        (rank b.severity, b.rule_id, b.sites))
    all

let severity_string = function Error -> "error" | Warning -> "warning"

let render fs =
  String.concat "\n"
    (List.map
       (fun f ->
         Printf.sprintf "%s[%s] sites %s: %s"
           (severity_string f.severity)
           f.rule_id
           (String.concat "," f.sites)
           f.message)
       fs)

let render_json fs =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i f ->
      Buffer.add_string buf
        (Printf.sprintf
           "  { \"rule_id\": %S, \"severity\": %S, \"sites\": [%s], \
            \"message\": %S }%s\n"
           f.rule_id
           (severity_string f.severity)
           (String.concat ", "
              (List.map (fun s -> Printf.sprintf "%S" s) f.sites))
           f.message
           (if i = List.length fs - 1 then "" else ",")))
    fs;
  Buffer.add_string buf "]";
  Buffer.contents buf

(* --- rule 1: lock-order acyclicity ---------------------------------------------- *)

module Lock = struct
  type t = {
    real : Mutex.t;
    uid : int;
    name : string;
    order : int;
  }

  let next_uid = Atomic.make 1

  (* uid -> name, for rendering cycles *)
  let names : (int, string) Hashtbl.t = Hashtbl.create 64

  (* held-lock uids of the current domain, innermost first *)
  let held_key : int list ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref [])

  (* lock graph: (from uid, to uid) -> acquiring backtrace.  Edges only
     appear on *nested* acquisition, which the instrumented code never does
     on its hot paths, so this table stays tiny. *)
  let edges : (int * int, string) Hashtbl.t = Hashtbl.create 16

  let create ~order ~name =
    let uid = Atomic.fetch_and_add next_uid 1 in
    locked (fun () -> Hashtbl.replace names uid name);
    { real = Mutex.create (); uid; name; order }

  let name_of uid =
    match Hashtbl.find_opt names uid with
    | Some n -> n
    | None -> Printf.sprintf "lock#%d" uid

  (* Cycle through the just-added edge [u -> v]: path from v back to u over
     the edge set.  Called with [state_lock] held. *)
  let find_cycle u v =
    let visited = Hashtbl.create 16 in
    let rec dfs path node =
      if node = u then Some (List.rev (node :: path))
      else if Hashtbl.mem visited node then None
      else begin
        Hashtbl.add visited node ();
        (* lint-waive: nondet/hashtbl-order — the reachability answer is
           independent of edge enumeration order; the reported cycle is one
           witness among equals. *)
        Hashtbl.fold
          (fun (a, b) _ acc ->
            match acc with
            | Some _ -> acc
            | None -> if a = node then dfs (node :: path) b else None)
          edges None
      end
    in
    dfs [] v

  let add_edge hu vu =
    locked (fun () ->
        if not (Hashtbl.mem edges (hu, vu)) then begin
          let bt =
            Printexc.raw_backtrace_to_string (Printexc.get_callstack 16)
          in
          Hashtbl.replace edges (hu, vu) bt;
          Obs.Metrics.incr m_lock_edges;
          match find_cycle hu vu with
          | None -> ()
          | Some cycle ->
            (* [cycle] runs vu -> ... -> hu; prepending hu closes it over
               the new edge, so consecutive pairs are exactly its edges *)
            let cycle_names = List.map name_of cycle in
            let cycle_edges =
              let rec pairs = function
                | a :: (b :: _ as rest) -> (a, b) :: pairs rest
                | [ _ ] | [] -> []
              in
              pairs (hu :: cycle)
            in
            let backtraces =
              String.concat "\n"
                (List.map
                   (fun (a, b) ->
                     Printf.sprintf "  edge %s -> %s acquired at:\n%s"
                       (name_of a) (name_of b)
                       (match Hashtbl.find_opt edges (a, b) with
                        | Some s -> s
                        | None -> "    <no backtrace>"))
                   cycle_edges)
            in
            record_locked
              { rule_id = "lock/cycle";
                severity = Error;
                sites = List.sort compare cycle_names;
                message =
                  Printf.sprintf
                    "lock-order cycle %s: a domain holding one end while \
                     another holds the other deadlocks\n%s"
                    (String.concat " -> " (name_of hu :: cycle_names))
                    backtraces }
        end)

  let note_acquired t =
    Obs.Metrics.incr m_lock_acquires;
    let held = Domain.DLS.get held_key in
    List.iter (fun hu -> if hu <> t.uid then add_edge hu t.uid) !held;
    held := t.uid :: !held

  let note_released t =
    let held = Domain.DLS.get held_key in
    held := List.filter (fun u -> u <> t.uid) !held

  let lock t =
    Mutex.lock t.real;
    if enabled () then note_acquired t

  let try_lock t =
    let got = Mutex.try_lock t.real in
    if got && enabled () then note_acquired t;
    got

  let unlock t =
    if enabled () then note_released t;
    Mutex.unlock t.real

  (* The condition atomically releases and reacquires [t.real]; from the
     caller's (and the discipline's) point of view the lock is held for the
     whole wait, so the held set is left untouched. *)
  let wait cond t = Condition.wait cond t.real
end

(* --- rule 2: write-once publication --------------------------------------------- *)

module Pub = struct
  (* Per-(table, id) protocol state, one byte per node:
     0 = unknown (never observed), 1 = wrote, 2 = fenced, 3 = published.
     State only strengthens, and all transitions happen under [state_lock];
     the read fast path peeks at the byte with a plain load and escalates
     to the locked, retrying path only when it does not see >= fenced. *)
  let st_wrote = Char.chr 1
  let st_fenced = Char.chr 2
  let st_published = Char.chr 3

  (* table uid -> flag bytes; the outer array is swapped whole on growth so
     lock-free readers always traverse a consistent snapshot *)
  let stores : Bytes.t Atomic.t option array Atomic.t = Atomic.make [||]

  let site table id = Printf.sprintf "%d:%d" table id

  (* with [state_lock] held: the store for [table], grown to cover [id] *)
  let store_locked table id =
    let arr = Atomic.get stores in
    let arr =
      if table < Array.length arr then arr
      else begin
        let fresh = Array.make (max 16 ((table + 1) * 2)) None in
        Array.blit arr 0 fresh 0 (Array.length arr);
        Atomic.set stores fresh;
        fresh
      end
    in
    let cell =
      match arr.(table) with
      | Some c -> c
      | None ->
        let c = Atomic.make (Bytes.make 1024 '\000') in
        arr.(table) <- Some c;
        c
    in
    let b = Atomic.get cell in
    if id < Bytes.length b then b
    else begin
      let fresh = Bytes.make (max (2 * Bytes.length b) (id + 1)) '\000' in
      Bytes.blit b 0 fresh 0 (Bytes.length b);
      Atomic.set cell fresh;
      fresh
    end

  let get_state_locked table id =
    let b = store_locked table id in
    Char.code (Bytes.get b id)

  let set_state_locked table id st =
    let b = store_locked table id in
    Bytes.set b id st

  let wrote ~table ~id =
    if enabled () then begin
      Obs.Metrics.incr m_pub_writes;
      locked (fun () ->
          if get_state_locked table id <> 0 then
            record_locked
              { rule_id = "pub/double-write";
                severity = Error;
                sites = [ site table id ];
                message =
                  "node fields written twice: the store is write-once and \
                   readers validate against the first value" }
          else set_state_locked table id st_wrote)
    end

  let fenced ~table ~id =
    if enabled () then
      locked (fun () ->
          (* state only strengthens; state 0 means the write event predated
             enabling, which we adopt *)
          if get_state_locked table id < 2 then
            set_state_locked table id st_fenced)

  let published ~table ~id =
    if enabled () then
      locked (fun () ->
          match get_state_locked table id with
          | 1 ->
            record_locked
              { rule_id = "pub/unfenced-publish";
                severity = Error;
                sites = [ site table id ];
                message =
                  "node id published into a unique-table slot without \
                   fencing the publication counter: a concurrent reader \
                   may observe the id before its fields" }
          | _ -> set_state_locked table id st_published)

  (* Bounded confirmation: a plain-load observation below the fence may be
     stale (the sanitizer itself reads racily); re-check under the mutex
     with backoff before believing it.  A correct writer fences within
     nanoseconds; a dropped fence never resolves and is reported. *)
  let confirm_retries = 50_000

  let rec confirm_read table id tries =
    let st = locked (fun () -> get_state_locked table id) in
    if st >= 2 || st = 0 then ()
    else if tries < confirm_retries then begin
      Domain.cpu_relax ();
      confirm_read table id (tries + 1)
    end
    else
      record
        { rule_id = "pub/unfenced-read";
          severity = Error;
          sites = [ site table id ];
          message =
            "reader trusted a node id whose publication never fenced the \
             publication counter: its field reads are unordered against \
             the writer" }

  let read ~table ~id =
    if enabled () then begin
      Obs.Metrics.incr m_pub_reads;
      let ok =
        (* lock-free peek; anything not >= fenced escalates *)
        let arr = Atomic.get stores in
        table < Array.length arr
        &&
        match Array.unsafe_get arr table with
        | None -> false
        | Some cell ->
          let b = Atomic.get cell in
          id < Bytes.length b && Char.code (Bytes.unsafe_get b id) >= 2
      in
      if not ok then begin
        (* state 0 (unseen id) is legal — resolved inside confirm_read *)
        confirm_read table id 0
      end
    end
end

(* --- rule 3: single-claim futures ----------------------------------------------- *)

module Future = struct
  type status = Claimed of int

  let next = Atomic.make 1

  let claims : (int, status) Hashtbl.t = Hashtbl.create 64

  let fresh () = Atomic.fetch_and_add next 1

  let claimed_by ~fut ~domain =
    if enabled () && fut <> 0 then begin
      Obs.Metrics.incr m_future_claims;
      locked (fun () ->
          match Hashtbl.find_opt claims fut with
          | Some (Claimed d) ->
            record_locked
              { rule_id = "future/double-claim";
                severity = Error;
                sites = [ string_of_int fut ];
                message =
                  Printf.sprintf
                    "future claimed to Running twice (domains %d and %d): \
                     only the Pending -> Running CAS may claim, exactly \
                     once"
                    d domain }
          | None -> Hashtbl.replace claims fut (Claimed domain))
    end

  let completed_by ~fut ~domain =
    if enabled () && fut <> 0 then
      locked (fun () ->
          match Hashtbl.find_opt claims fut with
          | Some (Claimed d) when d = domain ->
            (* claim discharged; drop the entry to bound the table *)
            Hashtbl.remove claims fut
          | Some (Claimed d) ->
            record_locked
              { rule_id = "future/foreign-done";
                severity = Error;
                sites = [ string_of_int fut ];
                message =
                  Printf.sprintf
                    "future completed (Done) by domain %d but claimed by \
                     domain %d: only the claimant may publish the result"
                    domain d }
          | None ->
            record_locked
              { rule_id = "future/foreign-done";
                severity = Error;
                sites = [ string_of_int fut ];
                message =
                  Printf.sprintf
                    "future completed (Done) by domain %d without any \
                     recorded claim: Done must be written by the claimant \
                     after its Pending -> Running CAS"
                    domain })

  (* lint-waive: nondet/domain-id — the claimant identity feeds only the
     sanitizer's claim ledger and diagnostics, never flow results. *)
  let claimed ~fut = claimed_by ~fut ~domain:(Domain.self () :> int)

  (* lint-waive: nondet/domain-id — same: diagnostics only. *)
  let completed ~fut = completed_by ~fut ~domain:(Domain.self () :> int)
end

(* --- rule 4: DLS cache scope stamps --------------------------------------------- *)

module Dls = struct
  let cache_hit ~entry_uid ~scope_uid =
    if enabled () then begin
      Obs.Metrics.incr m_dls_hits;
      if entry_uid <> scope_uid then
        record
          { rule_id = "dls/cross-scope-hit";
            severity = Error;
            sites =
              [ Printf.sprintf "entry:%d" entry_uid;
                Printf.sprintf "scope:%d" scope_uid ];
            message =
              "DLS memo-cache entry stamped by one scope served a hit to \
               another: node-accounting charges leak across scopes and \
               budgets stop being warmth-independent" }
    end
end

(* --- reset / stats --------------------------------------------------------------- *)

let reset () =
  locked (fun () ->
      Hashtbl.reset findings_tbl;
      Hashtbl.reset Lock.edges;
      Hashtbl.reset Future.claims;
      Atomic.set Pub.stores [||])

let publish_stats () =
  let g name v =
    Obs.Metrics.set_gauge (Obs.Metrics.gauge name) (float_of_int v)
  in
  g "sanitize.enabled" (if enabled () then 1 else 0);
  g "sanitize.findings.total" (List.length (findings ()));
  g "sanitize.lock.graph_edges" (locked (fun () -> Hashtbl.length Lock.edges))
