(** The Table I benchmark suite.

    One entry per row of the paper's Table I.  s27 is the published netlist;
    the FSM rows are generated machines of matching size class; the other
    ISCAS'89 rows are generated sequential netlists of matching size class
    (see DESIGN.md for the substitution rationale).  [expectation] records
    what the paper's text says happened on that row, for the experiment
    report. *)

type expectation =
  | Normal           (** both transformations apply *)
  | Retiming_fails   (** SIS retiming could not improve or lost init states *)
  | Resynthesis_na   (** no multi-fanout registers on the critical path *)
  | Resynthesis_hurts  (** DC_ret gave no simplification; guard territory *)

type entry = {
  name : string;
  build : unit -> Netlist.Network.t;
  expectation : expectation;
  comment : string;
}

val entries : entry list
(** The 21 rows, in the paper's order (the table rows plus s1196 and
    s5378, which the paper's text discusses). *)

val names : string list
(** Benchmark names, in suite order. *)

val find : string -> entry
(** Raises [Invalid_argument] on an unknown name; callers taking
    user-supplied names should validate with {!unknown_names} first. *)

val unknown_names : string list -> string list
(** The subset of the argument that names no suite entry. *)
