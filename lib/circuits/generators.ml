module N = Netlist.Network

type profile = {
  npi : int;
  npo : int;
  nlatch : int;
  ngates : int;
  max_fanin : int;
  feedback : bool;
  stem_bias : float;
}

let default_profile =
  { npi = 4;
    npo = 2;
    nlatch = 3;
    ngates = 12;
    max_fanin = 3;
    feedback = true;
    stem_bias = 0.5 }

(* Random non-constant cover over [k] fanins: 1-3 random cubes, each with at
   least one literal; reject covers that are constant. *)
let rec random_cover rng k =
  let ncubes = 1 + Random.State.int rng 3 in
  let cube () =
    let c = Logic.Cube.universe k in
    let nlits = 1 + Random.State.int rng k in
    for _ = 1 to nlits do
      let v = Random.State.int rng k in
      Logic.Cube.set c v
        (if Random.State.bool rng then Logic.Cube.One else Logic.Cube.Zero)
    done;
    c
  in
  let cover = Logic.Cover.make k (List.init ncubes (fun _ -> cube ())) in
  if Logic.Cover.is_tautology cover || Logic.Cover.is_empty cover then
    random_cover rng k
  else cover

let pick rng items =
  let arr = Array.of_list items in
  arr.(Random.State.int rng (Array.length arr))

let random_sequential ~seed profile =
  let rng = Random.State.make [| seed |] in
  let net = N.create ~name:(Printf.sprintf "rand%d" seed) () in
  let pis =
    List.init profile.npi (fun i ->
        N.add_input net (Printf.sprintf "in%d" i))
  in
  (* Latches first, with placeholder data (a PI), rewired after gates exist;
     this permits FSM-style feedback. *)
  let placeholder = List.nth pis 0 in
  let latches =
    List.init profile.nlatch (fun i ->
        N.add_latch net
          ~name:(Printf.sprintf "r%d" i)
          (if Random.State.bool rng then N.I1 else N.I0)
          placeholder)
  in
  (* Gates in layers: each gate draws fanins from earlier gates, PIs and
     latch outputs.  stem_bias resamples a fanin to be a latch output, giving
     latches multiple fanouts. *)
  let gates = ref [] in
  for i = 0 to profile.ngates - 1 do
    let sources = pis @ latches @ !gates in
    let k = 2 + Random.State.int rng (max 1 (profile.max_fanin - 1)) in
    let fanin () =
      if latches <> [] && Random.State.float rng 1.0 < profile.stem_bias then
        pick rng latches
      else pick rng sources
    in
    (* distinct fanins *)
    let rec distinct acc n =
      if n = 0 then acc
      else begin
        let f = fanin () in
        if List.memq f acc then distinct acc n
        else distinct (f :: acc) (n - 1)
      end
    in
    let fanins = distinct [] (min k (List.length sources)) in
    let k = List.length fanins in
    let cover = random_cover rng k in
    let g = N.add_logic net ~name:(Printf.sprintf "g%d" i) cover fanins in
    gates := g :: !gates
  done;
  let all_gates = !gates in
  (* Rewire latch data. *)
  List.iter
    (fun l ->
      let candidates =
        if profile.feedback then all_gates @ pis else pis @ all_gates
      in
      let data =
        if profile.feedback && all_gates <> [] then pick rng all_gates
        else pick rng candidates
      in
      N.replace_fanin net l ~old_fanin:(N.latch_data net l) ~new_fanin:data)
    latches;
  (* Outputs from distinct gates when possible. *)
  let out_sources = if all_gates <> [] then all_gates else pis in
  List.iteri
    (fun i _ ->
      N.set_output net (Printf.sprintf "out%d" i) (pick rng out_sources))
    (List.init profile.npo Fun.id);
  (* Some generated gates may be dangling; keep the network tidy but do not
     sweep away latches (they self-justify as state). *)
  N.check net;
  net

let random_combinational ~seed ~npi ~npo ~ngates =
  let profile =
    { npi; npo; nlatch = 0; ngates; max_fanin = 3; feedback = false;
      stem_bias = 0.0 }
  in
  random_sequential ~seed profile
