type expectation =
  | Normal
  | Retiming_fails
  | Resynthesis_na
  | Resynthesis_hurts

type entry = {
  name : string;
  build : unit -> Netlist.Network.t;
  expectation : expectation;
  comment : string;
}

let fsm ?max_depth ~seed ~nstates ~ninputs ~noutputs name () =
  Fsm.to_network (Fsm.random ?max_depth ~seed ~name ~nstates ~ninputs ~noutputs ())

let gen ~seed ~npi ~npo ~nlatch ~ngates ?(stem_bias = 0.5) ?(feedback = true)
    name () =
  let profile =
    { Generators.npi; npo; nlatch; ngates; max_fanin = 3; feedback; stem_bias }
  in
  let net = Generators.random_sequential ~seed profile in
  Netlist.Network.set_name_of_model net name;
  Netlist.Network.sweep net;
  net

(* Size classes follow the published benchmark statistics (PI/PO/FF counts);
   gate counts are pre-optimization and approximate. *)
let entries =
  [ { name = "ex2";
      build = fsm ~seed:102 ~nstates:19 ~ninputs:2 ~noutputs:2 "ex2";
      expectation = Normal;
      comment = "MCNC FSM, 19 states" };
    { name = "ex6";
      build = fsm ~seed:106 ~nstates:8 ~ninputs:5 ~noutputs:8 "ex6";
      expectation = Retiming_fails;
      comment = "MCNC FSM, 8 states; paper: retiming unable to improve" };
    { name = "bbtas";
      build = fsm ~seed:110 ~nstates:6 ~ninputs:2 ~noutputs:2 "bbtas";
      expectation = Retiming_fails;
      comment = "MCNC FSM, 6 states; paper: retiming unable to improve" };
    { name = "bbara";
      build = fsm ~seed:114 ~nstates:10 ~ninputs:4 ~noutputs:2 "bbara";
      expectation = Normal;
      comment = "MCNC FSM, 10 states" };
    { name = "planet";
      build = fsm ~max_depth:1 ~seed:118 ~nstates:48 ~ninputs:7 ~noutputs:19 "planet";
      expectation = Normal;
      comment = "MCNC FSM, 48 states" };
    { name = "s27";
      build = S27.circuit;
      expectation = Normal;
      comment = "ISCAS'89, published netlist (verbatim)" };
    { name = "s208";
      build = gen ~seed:208 ~npi:10 ~npo:1 ~nlatch:8 ~ngates:60 "s208";
      expectation = Normal;
      comment = "ISCAS'89 size class: 10 PI / 1 PO / 8 FF" };
    { name = "s298";
      build = gen ~seed:298 ~npi:3 ~npo:6 ~nlatch:14 ~ngates:80 "s298";
      expectation = Normal;
      comment = "ISCAS'89 size class: 3/6/14" };
    { name = "s344";
      build = gen ~seed:344 ~npi:9 ~npo:11 ~nlatch:15 ~ngates:100 "s344";
      expectation = Retiming_fails;
      comment = "paper: retiming unable to preserve initial states" };
    { name = "s349";
      build = gen ~seed:349 ~npi:9 ~npo:11 ~nlatch:15 ~ngates:100 "s349";
      expectation = Normal;
      comment = "ISCAS'89 size class: 9/11/15" };
    { name = "s382";
      build = gen ~seed:382 ~npi:3 ~npo:6 ~nlatch:21 ~ngates:100 "s382";
      expectation = Retiming_fails;
      comment = "paper: retiming unable to improve" };
    { name = "s386";
      build = gen ~seed:386 ~npi:7 ~npo:7 ~nlatch:6 ~ngates:100 "s386";
      expectation = Retiming_fails;
      comment = "paper: retiming unable to improve" };
    { name = "s400";
      build = gen ~seed:400 ~npi:3 ~npo:6 ~nlatch:21 ~ngates:105 "s400";
      expectation = Retiming_fails;
      comment = "paper: retiming unable to improve" };
    { name = "s420";
      build = gen ~seed:420 ~npi:18 ~npo:1 ~nlatch:16 ~ngates:120 "s420";
      expectation = Resynthesis_hurts;
      comment = "paper: DC_ret gave no simplification; delay regressed" };
    { name = "s444";
      build = gen ~seed:444 ~npi:3 ~npo:6 ~nlatch:21 ~ngates:115 "s444";
      expectation = Normal;
      comment = "ISCAS'89 size class: 3/6/21" };
    { name = "s510";
      build = gen ~seed:510 ~npi:19 ~npo:7 ~nlatch:6 ~ngates:130 "s510";
      expectation = Resynthesis_hurts;
      comment = "paper: DC_ret gave no simplification; delay regressed" };
    { name = "s526";
      build = gen ~seed:526 ~npi:3 ~npo:6 ~nlatch:21 ~ngates:120 "s526";
      expectation = Normal;
      comment = "ISCAS'89 size class: 3/6/21" };
    { name = "s641";
      build =
        gen ~seed:641 ~npi:15 ~npo:12 ~nlatch:19 ~ngates:200 ~stem_bias:0.0
          "s641";
      expectation = Resynthesis_na;
      comment = "paper: no multiple-fanout registers feed the critical path" };
    { name = "s1196";
      build =
        gen ~seed:1196 ~npi:14 ~npo:14 ~nlatch:18 ~ngates:280 ~stem_bias:0.0
          "s1196";
      expectation = Retiming_fails;
      comment = "paper: retiming unable to improve" };
    { name = "s1238";
      build =
        gen ~seed:1238 ~npi:14 ~npo:14 ~nlatch:18 ~ngates:300 ~stem_bias:0.0
          "s1238";
      expectation = Resynthesis_na;
      comment = "paper: no multiple-fanout registers feed the critical path" };
    { name = "s5378";
      build =
        gen ~seed:5378 ~npi:35 ~npo:45 ~nlatch:150 ~ngates:1600
          ~stem_bias:0.15 "s5378";
      expectation = Resynthesis_na;
      comment =
        "paper: listed among both the retiming failures and the circuits \
         the technique could not help; implicit state enumeration is \
         prohibitive at this size (the BDD effort cap falls back to random \
         co-simulation)" } ]

let names = List.map (fun e -> e.name) entries

let find name =
  match List.find_opt (fun e -> e.name = name) entries with
  | Some e -> e
  | None -> invalid_arg ("Suite.find: unknown benchmark " ^ name)

let unknown_names requested =
  List.filter (fun n -> not (List.mem n names)) requested
