module N = Netlist.Network

type transition = {
  from_state : int;
  input_cube : Logic.Cube.t;
  to_state : int;
  outputs : bool array;
}

type t = {
  name : string;
  nstates : int;
  ninputs : int;
  noutputs : int;
  transitions : transition list;
}

(* A random shallow decision tree over the inputs yields a deterministic,
   complete partition of the input space into cubes. *)
let random ?(max_depth = 2) ~seed ~name ~nstates ~ninputs ~noutputs () =
  let rng = Random.State.make [| seed |] in
  let transitions = ref [] in
  let leaf state cube =
    let to_state = Random.State.int rng nstates in
    let outputs = Array.init noutputs (fun _ -> Random.State.bool rng) in
    transitions :=
      { from_state = state; input_cube = cube; to_state; outputs }
      :: !transitions
  in
  let max_depth = min max_depth ninputs in
  let rec grow state cube depth available =
    let should_split =
      depth < max_depth && available <> [] && Random.State.int rng 100 < 60
    in
    if not should_split then leaf state cube
    else begin
      let v = List.nth available (Random.State.int rng (List.length available)) in
      let rest = List.filter (fun x -> x <> v) available in
      grow state (Logic.Cube.set_var cube v Logic.Cube.Zero) (depth + 1) rest;
      grow state (Logic.Cube.set_var cube v Logic.Cube.One) (depth + 1) rest
    end
  in
  for state = 0 to nstates - 1 do
    grow state (Logic.Cube.universe ninputs) 0 (List.init ninputs Fun.id)
  done;
  { name; nstates; ninputs; noutputs; transitions = List.rev !transitions }

let check_complete m =
  let points = 1 lsl m.ninputs in
  let ok = ref true in
  for state = 0 to m.nstates - 1 do
    for bits = 0 to points - 1 do
      let point = Array.init m.ninputs (fun v -> bits land (1 lsl v) <> 0) in
      let matching =
        List.filter
          (fun t -> t.from_state = state && Logic.Cube.eval t.input_cube point)
          m.transitions
      in
      if List.length matching <> 1 then ok := false
    done
  done;
  !ok

let state_bits m =
  let rec bits n acc = if n <= 1 then max acc 1 else bits ((n + 1) / 2) (acc + 1) in
  bits m.nstates 0

let to_network m =
  let nbits = state_bits m in
  let net = N.create ~name:m.name () in
  let inputs =
    List.init m.ninputs (fun i -> N.add_input net (Printf.sprintf "in%d" i))
  in
  (* latches initialized to state 0 = all zeros; placeholder data rewired *)
  let placeholder = match inputs with x :: _ -> x | [] -> N.add_const net false in
  let state_latches =
    List.init nbits (fun j ->
        N.add_latch net ~name:(Printf.sprintf "st%d" j) N.I0 placeholder)
  in
  (* variable order for transition products: state bits then inputs *)
  let nvars = nbits + m.ninputs in
  let product t =
    let cube = Logic.Cube.universe nvars in
    for j = 0 to nbits - 1 do
      Logic.Cube.set cube j
        (if t.from_state land (1 lsl j) <> 0 then Logic.Cube.One
         else Logic.Cube.Zero)
    done;
    Logic.Cube.iteri
      (fun v l -> if l <> Logic.Cube.Both then Logic.Cube.set cube (nbits + v) l)
      t.input_cube;
    cube
  in
  let fanins = state_latches @ inputs in
  let cover_of_pred pred =
    let cubes =
      List.filter_map
        (fun t -> if pred t then Some (product t) else None)
        m.transitions
    in
    Logic.Cover.single_cube_containment (Logic.Cover.make nvars cubes)
  in
  (* next-state logic *)
  List.iteri
    (fun j latch ->
      let cover = cover_of_pred (fun t -> t.to_state land (1 lsl j) <> 0) in
      let node =
        N.add_logic net ~name:(Printf.sprintf "ns%d" j) cover fanins
      in
      N.replace_fanin net latch ~old_fanin:placeholder ~new_fanin:node)
    state_latches;
  (* outputs *)
  for o = 0 to m.noutputs - 1 do
    let cover = cover_of_pred (fun t -> t.outputs.(o)) in
    let node = N.add_logic net ~name:(Printf.sprintf "of%d" o) cover fanins in
    N.set_output net (Printf.sprintf "out%d" o) node
  done;
  N.sweep net;
  N.check net;
  net
