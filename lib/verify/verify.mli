(** Rule-based static verifier for {!Netlist.Network.t}.

    Every phase of the resynthesis pipeline is a destructive in-place rewrite
    of the network; the end-to-end simulation diff in the Table I runner
    reports {e that} a flow broke, never {e which pass} broke it or {e how}.
    This module checks the network's structural and semantic invariants
    between passes and reports located, structured diagnostics.

    Rule groups (each independently toggleable through [?rules]):
    - {!Graph} — fanin/fanout lists are exact multiset inverses, no edges to
      deleted or out-of-range ids, [Cover.nvars] equals the fanin count
      (and every cube matches it), latches have exactly one fanin, sources
      have none, primary outputs and the input list reference live nodes,
      output names are unique;
    - {!Loop} — no combinational cycles: an SCC sweep over the latch-broken
      logic graph (forbidden by the network contract but otherwise only
      detected when {!Netlist.Network.topo_combinational} happens to run);
    - {!Retiming} — caller-supplied register-equivalence classes (the
      resynthesis engine's DC_ret bookkeeping) stay well-formed: live class
      members are latches, share their initial value, and drive structurally
      isomorphic input cones (compared by a memoized structural hash with
      latch leaves canonicalized to class representatives);
    - {!Binding} — technology bindings appear only on logic nodes (gates)
      and latches (the mapper's register cell), never on inputs or
      constants, and carry finite, non-negative area and delay.

    A fifth check, the {!Audit} mode, is dynamic rather than rule-based: it
    snapshots the network, replays a pass, and diffs
    {!Netlist.Network.journal_since} against a from-scratch structural diff
    to catch unjournaled mutations that would silently corrupt incremental
    observers such as [Sta.Incremental] — the race-detector analog for the
    timing engine.

    The verifier never raises on malformed input; every entry point below
    that does raise ({!expect_clean}, {!audited}, {!debug_check}) raises only
    {!Verification_failed}, carrying the pass name and rendered diagnostics. *)

type severity = Error | Warning

type rule =
  | Graph      (** structural graph integrity *)
  | Loop       (** combinational-loop detection *)
  | Retiming   (** register-equivalence class soundness *)
  | Binding    (** technology-binding sanity *)

val all_rules : rule list

val rule_name : rule -> string
(** ["graph"], ["loop"], ["retiming"], ["binding"] — the prefix of every
    {!diagnostic.rule_id} the rule group emits. *)

val rule_of_name : string -> rule option

type diagnostic = {
  rule_id : string;    (** e.g. ["graph/edge-asymmetric"] *)
  severity : severity;
  node_ids : int list; (** offending node ids, ascending *)
  message : string;
}

val run :
  ?rules:rule list ->
  ?equiv_classes:int list list ->
  Netlist.Network.t ->
  diagnostic list
(** Run the selected rule groups (default: {!all_rules}) and return every
    diagnostic found, errors first.  [equiv_classes] supplies the
    retiming-induced register-equivalence classes checked by {!Retiming}
    (latch ids per class; dead ids are tolerated — merge-back legitimately
    consumes class members).  Never raises, even on badly corrupted
    networks. *)

val errors : diagnostic list -> diagnostic list
(** The [Error]-severity subset. *)

val render : diagnostic list -> string
(** One line per diagnostic: [severity[rule_id] nodes a,b: message]. *)

val render_json : diagnostic list -> string
(** The same list as a JSON array of objects. *)

val merge_legal :
  equiv_classes:int list list -> int list -> diagnostic list
(** Min-area merge-back legality: the latch ids about to be merged into one
    register must not straddle two distinct register-equivalence classes —
    otherwise don't-care cubes already used to simplify logic would refer to
    registers that no longer track their class.  Returns a
    [retiming/merge-back] error diagnostic when the group is illegal, [[]]
    when it is fine (including ids outside every class). *)

exception Verification_failed of string
(** Raised by {!expect_clean}, {!audited} and {!debug_check}; the payload
    names the circuit and pass and embeds {!render} output. *)

val expect_clean :
  ?rules:rule list ->
  ?equiv_classes:int list list ->
  label:string ->
  pass:string ->
  Netlist.Network.t ->
  unit
(** {!run}, then raise {!Verification_failed} if any [Error] diagnostic was
    produced.  [label] names the circuit or flow, [pass] the pass just
    executed. *)

(** Journal-audit mode: catch mutations that bypass the change journal. *)
module Audit : sig
  type snapshot

  val snapshot : Netlist.Network.t -> snapshot
  (** Deep-copies the network and records a journal cursor. *)

  val diff : snapshot -> Netlist.Network.t -> diagnostic list
  (** Compare the network against the snapshot: every node whose kind,
      fanins, fanout multiset or binding changed — and every creation or
      deletion — must appear in [journal_since] the snapshot's cursor,
      else a [journal/unjournaled] error is reported ([journal/outputs] for
      an output-list change without an [outputs_revision] bump).  Name
      changes are exempt: [set_name] is unjournaled by design (names carry
      no timing or structural meaning).  {!Netlist.Network.restore} journals
      its diff, so rejected-move rollbacks are audited like ordinary edits;
      only journal compaction still invalidates the cursor, in which case the
      audit is vacuous and returns [] — observers fall back to a full resync
      there, so no corruption can hide. *)
end

val audited :
  ?rules:rule list ->
  ?equiv_classes:int list list ->
  label:string ->
  pass:string ->
  Netlist.Network.t ->
  (unit -> 'a) ->
  'a
(** Run an in-place pass under the journal audit: snapshot, run the thunk,
    then {!Audit.diff} plus the static rules; raises {!Verification_failed}
    on any error.  Exceptions from the thunk propagate unaudited. *)

(** {1 Pass instrumentation}

    A record of checking callbacks threaded through the flow drivers
    ([Core.Flow], [Core.Resynth]); {!no_instrument} is free of cost so the
    default path stays unchanged.  [checkpoint pass classes net] runs the
    static rules after a pass that produced a fresh network; [audited] wraps
    an in-place pass under the journal audit.  Both receive the current
    register-equivalence classes ([[]] when none apply). *)
type instrument = {
  checkpoint : string -> int list list -> Netlist.Network.t -> unit;
  audited :
    'a. string -> int list list -> Netlist.Network.t -> (unit -> 'a) -> 'a;
}

val no_instrument : instrument

val instrument : label:string -> instrument

val compose : instrument -> instrument -> instrument
(** Run two instruments at every boundary: checkpoints fire in order, audited
    passes nest (the first argument's audit wraps the second's). *)

(** {1 Debug assertions}

    Structural checks at the exits of the retiming and resynthesis editing
    kernels ([Moves], [Minarea], [Resynth]).  Off by default; enabled by
    {!set_debug} or the [VERIFY_DEBUG] environment variable (any non-empty
    value other than ["0"]).  When disabled, {!debug_check} is one load and
    a branch. *)

val set_debug : bool -> unit
val debug_enabled : unit -> bool

val debug_check : label:string -> Netlist.Network.t -> unit
(** When debugging is enabled, {!expect_clean} with the static rules
    ([pass] = ["debug-assert"]). *)
