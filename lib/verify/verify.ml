module N = Netlist.Network

type severity = Error | Warning

type rule = Graph | Loop | Retiming | Binding

let all_rules = [ Graph; Loop; Retiming; Binding ]

let rule_name = function
  | Graph -> "graph"
  | Loop -> "loop"
  | Retiming -> "retiming"
  | Binding -> "binding"

let rule_of_name = function
  | "graph" -> Some Graph
  | "loop" -> Some Loop
  | "retiming" -> Some Retiming
  | "binding" -> Some Binding
  | _ -> None

type diagnostic = {
  rule_id : string;
  severity : severity;
  node_ids : int list;
  message : string;
}

let diag ?(severity = Error) rule_id node_ids message =
  { rule_id; severity; node_ids = List.sort_uniq compare node_ids; message }

(* --- rule group: graph integrity ------------------------------------------- *)

let count_in_array x a =
  Array.fold_left (fun acc y -> if y = x then acc + 1 else acc) 0 a

let count_in_list x l =
  List.fold_left (fun acc y -> if y = x then acc + 1 else acc) 0 l

let check_graph net out =
  let emit d = out := d :: !out in
  let live = N.all_nodes net in
  let cap = N.capacity net in
  let alive id = id >= 0 && id < cap && N.node_opt net id <> None in
  List.iter
    (fun n ->
      let id = n.N.id in
      (* node registered under its own id *)
      (match N.node_opt net id with
       | Some n' when n' == n -> ()
       | Some _ | None ->
         emit
           (diag "graph/node-id" [ id ]
              (Printf.sprintf "node %s#%d is not stored under its id" n.N.name
                 id)));
      (* fanin edges: in range, live, and mirrored by the producer's fanouts *)
      let distinct_fanins =
        List.sort_uniq compare (Array.to_list n.N.fanins)
      in
      List.iter
        (fun f ->
          if not (alive f) then
            emit
              (diag "graph/fanin-dangling" [ id ]
                 (Printf.sprintf "%s#%d reads deleted or out-of-range node %d"
                    n.N.name id f))
          else begin
            let producer = N.node net f in
            let in_fanins = count_in_array f n.N.fanins in
            let in_fanouts = count_in_list id producer.N.fanouts in
            if in_fanins <> in_fanouts then
              emit
                (diag "graph/edge-asymmetric" [ f; id ]
                   (Printf.sprintf
                      "edge %s#%d -> %s#%d: %d fanin slot(s) vs %d fanout \
                       entry(ies)"
                      producer.N.name f n.N.name id in_fanins in_fanouts))
          end)
        distinct_fanins;
      (* fanout entries: live, and mirrored by the consumer's fanins (the
         consumer-side sweep above only covers consumers that list us) *)
      List.iter
        (fun c ->
          if not (alive c) then
            emit
              (diag "graph/fanout-dangling" [ id ]
                 (Printf.sprintf
                    "%s#%d lists deleted or out-of-range consumer %d" n.N.name
                    id c))
          else begin
            let consumer = N.node net c in
            if count_in_array id consumer.N.fanins = 0 then
              emit
                (diag "graph/edge-asymmetric" [ id; c ]
                   (Printf.sprintf
                      "%s#%d lists consumer %s#%d which does not read it"
                      n.N.name id consumer.N.name c))
          end)
        (List.sort_uniq compare n.N.fanouts);
      (* arity and cover-shape invariants per kind *)
      (match n.N.kind with
       | N.Logic c ->
         let width = c.Logic.Cover.nvars in
         if width <> Array.length n.N.fanins then
           emit
             (diag "graph/cover-arity" [ id ]
                (Printf.sprintf "%s#%d: cover over %d vars but %d fanins"
                   n.N.name id width (Array.length n.N.fanins)));
         List.iter
           (fun cube ->
             if Logic.Cube.nvars cube <> width then
               emit
                 (diag "graph/cube-width" [ id ]
                    (Printf.sprintf
                       "%s#%d: cube of width %d in a cover over %d vars"
                       n.N.name id (Logic.Cube.nvars cube) width)))
           c.Logic.Cover.cubes
       | N.Latch _ ->
         if Array.length n.N.fanins <> 1 then
           emit
             (diag "graph/latch-arity" [ id ]
                (Printf.sprintf "latch %s#%d has %d fanins (wants exactly 1)"
                   n.N.name id (Array.length n.N.fanins)))
       | N.Input | N.Const _ ->
         if Array.length n.N.fanins <> 0 then
           emit
             (diag "graph/source-arity" [ id ]
                (Printf.sprintf "source %s#%d has %d fanins" n.N.name id
                   (Array.length n.N.fanins))));
      if n.N.name = "" then
        emit
          (diag ~severity:Warning "graph/name-empty" [ id ]
             (Printf.sprintf "node #%d has an empty name" id)))
    live;
  (* primary outputs reference live nodes, names unique *)
  let seen_output = Hashtbl.create 16 in
  List.iter
    (fun (name, id) ->
      if not (alive id) then
        emit
          (diag "graph/output-dangling" [ id ]
             (Printf.sprintf "primary output %s driven by dead node %d" name
                id));
      if Hashtbl.mem seen_output name then
        emit
          (diag "graph/output-duplicate" [ id ]
             (Printf.sprintf "primary output %s declared twice" name))
      else Hashtbl.add seen_output name ())
    (N.output_ids net);
  (* the input list and the Input nodes agree *)
  let listed = Hashtbl.create 16 in
  List.iter
    (fun id ->
      Hashtbl.replace listed id ();
      match N.node_opt net id with
      | Some n when N.is_input n -> ()
      | Some n ->
        emit
          (diag "graph/input-list" [ id ]
             (Printf.sprintf "input list entry %s#%d is not an Input node"
                n.N.name id))
      | None ->
        emit
          (diag "graph/input-list" [ id ]
             (Printf.sprintf "input list references dead node %d" id)))
    (N.input_ids net);
  List.iter
    (fun n ->
      if N.is_input n && not (Hashtbl.mem listed n.N.id) then
        emit
          (diag "graph/input-list" [ n.N.id ]
             (Printf.sprintf "Input node %s#%d missing from the input list"
                n.N.name n.N.id)))
    live

(* --- rule group: combinational loops --------------------------------------- *)

(* Tarjan over the live logic nodes with latch/input/const boundaries removed;
   every SCC of size > 1, and every logic node reading itself, is a
   combinational cycle.  Defensive: dangling fanins are simply skipped (the
   graph rules report them). *)
let check_loops net out =
  let cap = N.capacity net in
  if cap > 0 then begin
    let index = Array.make cap (-1) in
    let low = Array.make cap 0 in
    let on_stack = Array.make cap false in
    let stack = ref [] in
    let counter = ref 0 in
    let logic_fanins n =
      Array.to_list n.N.fanins
      |> List.filter_map (fun f ->
             if f >= 0 && f < cap then
               match N.node_opt net f with
               | Some m when N.is_logic m -> Some m
               | Some _ | None -> None
             else None)
    in
    let rec strong n =
      let id = n.N.id in
      index.(id) <- !counter;
      low.(id) <- !counter;
      incr counter;
      stack := id :: !stack;
      on_stack.(id) <- true;
      List.iter
        (fun m ->
          if index.(m.N.id) < 0 then begin
            strong m;
            low.(id) <- min low.(id) low.(m.N.id)
          end
          else if on_stack.(m.N.id) then
            low.(id) <- min low.(id) index.(m.N.id))
        (logic_fanins n);
      if low.(id) = index.(id) then begin
        let rec pop acc =
          match !stack with
          | [] -> acc
          | x :: rest ->
            stack := rest;
            on_stack.(x) <- false;
            if x = id then x :: acc else pop (x :: acc)
        in
        let scc = pop [] in
        let is_cycle =
          match scc with
          | [ only ] -> count_in_array only n.N.fanins > 0 && only = id
          | _ :: _ :: _ -> true
          | [] -> false
        in
        if is_cycle then
          out :=
            diag "loop/combinational-cycle" scc
              (Printf.sprintf "combinational cycle through %d logic node(s)"
                 (List.length scc))
            :: !out
      end
    in
    List.iter
      (fun n -> if index.(n.N.id) < 0 then strong n)
      (N.logic_nodes net)
  end

(* --- rule group: retiming / register-equivalence soundness ------------------ *)

(* Structural hash of a combinational cone, memoized per node; latch leaves
   are canonicalized to their class representative so that classes whose
   members read different-but-equivalent registers still compare equal.
   Cycles (reported by the loop rule) hash to a sentinel instead of
   diverging. *)
let cone_signature net ~canon memo root_id =
  let rec go id =
    match Hashtbl.find_opt memo id with
    | Some s -> s
    | None ->
      Hashtbl.add memo id (Hashtbl.hash "in-progress");
      let s =
        match N.node_opt net id with
        | None -> Hashtbl.hash ("dead", id)
        | Some n -> (
          match n.N.kind with
          | N.Input -> Hashtbl.hash ("input", id)
          | N.Const b -> Hashtbl.hash ("const", b)
          | N.Latch _ -> Hashtbl.hash ("latch", canon id)
          | N.Logic c ->
            let cubes =
              List.sort compare
                (List.map Logic.Cube.to_string c.Logic.Cover.cubes)
            in
            Hashtbl.hash
              (cubes, List.map go (Array.to_list n.N.fanins)))
      in
      Hashtbl.replace memo id s;
      s
  in
  go root_id

let init_string = function
  | N.I0 -> "0"
  | N.I1 -> "1"
  | N.Ix -> "x"

let check_retiming net equiv_classes out =
  let emit d = out := d :: !out in
  (* class representative for leaf canonicalization: min latch id per class *)
  let rep = Hashtbl.create 16 in
  List.iter
    (fun cls ->
      match List.sort compare cls with
      | [] -> ()
      | least :: _ ->
        List.iter (fun id -> Hashtbl.replace rep id least) cls)
    equiv_classes;
  let canon id = match Hashtbl.find_opt rep id with Some r -> r | None -> id in
  let memo = Hashtbl.create 256 in
  List.iter
    (fun cls ->
      (* merge-back and sweeping legitimately consume class members; only the
         survivors are constrained *)
      let live =
        List.filter_map (fun id -> N.node_opt net id)
          (List.sort_uniq compare cls)
      in
      let latches, others = List.partition N.is_latch live in
      List.iter
        (fun n ->
          emit
            (diag "retiming/class-not-latch" [ n.N.id ]
               (Printf.sprintf
                  "equivalence-class member %s#%d is not a latch" n.N.name
                  n.N.id)))
        others;
      match latches with
      | [] | [ _ ] -> ()
      | first :: rest ->
        List.iter
          (fun l ->
            if N.latch_init l <> N.latch_init first then
              emit
                (diag "retiming/init-mismatch"
                   [ first.N.id; l.N.id ]
                   (Printf.sprintf
                      "equivalent latches %s#%d (init %s) and %s#%d (init %s) \
                       disagree"
                      first.N.name first.N.id
                      (init_string (N.latch_init first))
                      l.N.name l.N.id
                      (init_string (N.latch_init l)))))
          rest;
        (* replicated copies must drive isomorphic input cones *)
        let sig_of l =
          match Array.length l.N.fanins with
          | 1 -> Some (cone_signature net ~canon memo l.N.fanins.(0))
          | _ -> None (* latch-arity rule reports this *)
        in
        (match sig_of first with
         | None -> ()
         | Some s0 ->
           List.iter
             (fun l ->
               match sig_of l with
               | Some s when s <> s0 ->
                 emit
                   (diag "retiming/cone-mismatch" [ first.N.id; l.N.id ]
                      (Printf.sprintf
                         "equivalent latches %s#%d and %s#%d have \
                          non-isomorphic driver cones"
                         first.N.name first.N.id l.N.name l.N.id))
               | Some _ | None -> ())
             rest))
    equiv_classes

(* A min-area merge may only collapse sibling latches whose DC_ret classes
   permit it: a merge group that straddles two distinct classes would leave
   don't-care cubes referring to registers that no longer track their class,
   so the simplifications justified by those cubes become unsound.  Groups
   entirely inside one class (or touching at most one class plus class-free
   latches) are fine. *)
let merge_legal ~equiv_classes ids =
  let class_of = Hashtbl.create 16 in
  List.iteri
    (fun ci cls -> List.iter (fun id -> Hashtbl.replace class_of id ci) cls)
    equiv_classes;
  let hit =
    List.sort_uniq compare
      (List.filter_map (fun id -> Hashtbl.find_opt class_of id) ids)
  in
  match hit with
  | [] | [ _ ] -> []
  | _ :: _ :: _ ->
    [ diag "retiming/merge-back" ids
        (Printf.sprintf
           "merge group of %d latch(es) straddles %d distinct \
            register-equivalence classes"
           (List.length ids) (List.length hit)) ]

(* --- rule group: binding sanity --------------------------------------------- *)

let check_bindings net out =
  let emit d = out := d :: !out in
  List.iter
    (fun n ->
      match n.N.binding with
      | None -> ()
      | Some b ->
        (* logic nodes carry gate bindings; latches carry the register cell
           (the mapper's "dff").  Sources must stay unbound. *)
        if not (N.is_logic n || N.is_latch n) then
          emit
            (diag "binding/on-source" [ n.N.id ]
               (Printf.sprintf "source node %s#%d carries binding %s"
                  n.N.name n.N.id b.N.gate_name));
        let bad_float x = not (x >= 0.0) || x <> x || x = infinity in
        if bad_float b.N.gate_area then
          emit
            (diag "binding/area" [ n.N.id ]
               (Printf.sprintf "%s#%d: gate %s has invalid area %g" n.N.name
                  n.N.id b.N.gate_name b.N.gate_area));
        if bad_float b.N.gate_delay then
          emit
            (diag "binding/delay" [ n.N.id ]
               (Printf.sprintf "%s#%d: gate %s has invalid delay %g" n.N.name
                  n.N.id b.N.gate_name b.N.gate_delay)))
    (N.all_nodes net)

(* --- driver ------------------------------------------------------------------ *)

let m_runs = Obs.Metrics.counter "verify.runs"

(* One counter per rule group ("graph/..." -> verify.fired.graph); the journal
   group comes from Audit.diff rather than [run]. *)
let fired_counters =
  List.map
    (fun g -> (g, Obs.Metrics.counter ("verify.fired." ^ g)))
    [ "graph"; "loop"; "retiming"; "binding"; "journal" ]

let record_fired diags =
  if Obs.Metrics.enabled () then
    List.iter
      (fun d ->
        let group =
          match String.index_opt d.rule_id '/' with
          | Some i -> String.sub d.rule_id 0 i
          | None -> d.rule_id
        in
        match List.assoc_opt group fired_counters with
        | Some c -> Obs.Metrics.incr c
        | None -> ())
      diags

let run ?(rules = all_rules) ?(equiv_classes = []) net =
  Obs.Metrics.incr m_runs;
  let want r = List.mem r rules in
  (* The rule groups are independent and only read [net] (every memo they
     use is function-local, and none touches the lazily cached topo order),
     so each runs as a scheduler task.  Joining in the fixed group order
     reproduces the serial append order that feeds the final stable sort. *)
  let group enabled f =
    Sched.fork (fun () ->
        if not enabled then []
        else begin
          let out = ref [] in
          f out;
          List.rev !out
        end)
  in
  let groups =
    [ group (want Graph) (check_graph net);
      group (want Loop) (check_loops net);
      group
        (want Retiming && equiv_classes <> [])
        (check_retiming net equiv_classes);
      group (want Binding) (check_bindings net) ]
  in
  let out = List.concat_map Sched.join groups in
  record_fired out;
  let severity_rank = function Error -> 0 | Warning -> 1 in
  List.stable_sort
    (fun a b ->
      match compare (severity_rank a.severity) (severity_rank b.severity) with
      | 0 -> compare (a.rule_id, a.node_ids) (b.rule_id, b.node_ids)
      | c -> c)
    out

let errors diags = List.filter (fun d -> d.severity = Error) diags

let severity_string = function Error -> "error" | Warning -> "warning"

let render diags =
  String.concat "\n"
    (List.map
       (fun d ->
         Printf.sprintf "%s[%s] nodes %s: %s"
           (severity_string d.severity)
           d.rule_id
           (String.concat "," (List.map string_of_int d.node_ids))
           d.message)
       diags)

let render_json diags =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i d ->
      Buffer.add_string buf
        (Printf.sprintf
           "  { \"rule_id\": %S, \"severity\": %S, \"node_ids\": [%s], \
            \"message\": %S }%s\n"
           d.rule_id
           (severity_string d.severity)
           (String.concat ", " (List.map string_of_int d.node_ids))
           d.message
           (if i = List.length diags - 1 then "" else ",")))
    diags;
  Buffer.add_string buf "]";
  Buffer.contents buf

exception Verification_failed of string

let fail_if_errors ~label ~pass diags =
  match errors diags with
  | [] -> ()
  | errs ->
    raise
      (Verification_failed
         (Printf.sprintf "%s: verifier failed after pass '%s' (%d error(s)):\n%s"
            label pass (List.length errs) (render errs)))

let expect_clean ?rules ?equiv_classes ~label ~pass net =
  fail_if_errors ~label ~pass (run ?rules ?equiv_classes net)

(* --- journal audit ------------------------------------------------------------ *)

module Audit = struct
  type snapshot = {
    before : N.t;
    cursor : N.cursor;
    outputs_rev : int;
  }

  let snapshot net =
    { before = N.copy net;
      cursor = N.journal_mark net;
      outputs_rev = N.outputs_revision net }

  let node_changed a b =
    a.N.kind <> b.N.kind
    || a.N.fanins <> b.N.fanins
    || List.sort compare a.N.fanouts <> List.sort compare b.N.fanouts
    || a.N.binding <> b.N.binding

  let diff snap net =
    match N.journal_since net snap.cursor with
    | None ->
      (* the cursor was invalidated (journal compaction): incremental
         observers resynchronize from scratch, so nothing can hide.
         [Network.restore] journals its diff, so rollbacks no longer land
         here and rejected-move reverts are audited like ordinary edits. *)
      []
    | Some journaled_ids ->
      let journaled = Hashtbl.create 64 in
      List.iter (fun id -> Hashtbl.replace journaled id ()) journaled_ids;
      let out = ref [] in
      let cap = max (N.capacity snap.before) (N.capacity net) in
      for id = 0 to cap - 1 do
        if not (Hashtbl.mem journaled id) then begin
          let describe what name =
            out :=
              diag "journal/unjournaled" [ id ]
                (Printf.sprintf "node %s#%d was %s without a journal entry"
                   name id what)
              :: !out
          in
          match N.node_opt snap.before id, N.node_opt net id with
          | None, None -> ()
          | Some a, None -> describe "deleted" a.N.name
          | None, Some b -> describe "created" b.N.name
          | Some a, Some b ->
            if node_changed a b then describe "mutated" b.N.name
        end
      done;
      if
        N.output_ids snap.before <> N.output_ids net
        && N.outputs_revision net = snap.outputs_rev
      then
        out :=
          diag "journal/outputs" []
            "primary-output list changed without an outputs_revision bump"
          :: !out;
      let diags = List.rev !out in
      record_fired diags;
      diags
end

let audited ?rules ?equiv_classes ~label ~pass net f =
  let snap = Audit.snapshot net in
  let result = f () in
  let diags = Audit.diff snap net @ run ?rules ?equiv_classes net in
  fail_if_errors ~label ~pass diags;
  result

(* --- pass instrumentation ------------------------------------------------------ *)

type instrument = {
  checkpoint : string -> int list list -> Netlist.Network.t -> unit;
  audited :
    'a. string -> int list list -> Netlist.Network.t -> (unit -> 'a) -> 'a;
}

let no_instrument =
  { checkpoint = (fun _ _ _ -> ()); audited = (fun _ _ _ f -> f ()) }

let compose a b =
  { checkpoint =
      (fun pass classes net ->
        a.checkpoint pass classes net;
        b.checkpoint pass classes net);
    audited =
      (fun pass classes net f ->
        a.audited pass classes net (fun () -> b.audited pass classes net f)) }

let instrument ~label =
  { checkpoint =
      (fun pass equiv_classes net ->
        expect_clean ~equiv_classes ~label ~pass net);
    audited =
      (fun pass equiv_classes net f ->
        audited ~equiv_classes ~label ~pass net f) }

(* --- debug assertions ----------------------------------------------------------- *)

let debug_flag =
  Atomic.make
    (match Sys.getenv_opt "VERIFY_DEBUG" with
     | Some "" | Some "0" | None -> false
     | Some _ -> true)

let set_debug b = Atomic.set debug_flag b

let debug_enabled () = Atomic.get debug_flag

let debug_check ~label net =
  if Atomic.get debug_flag then expect_clean ~label ~pass:"debug-assert" net
