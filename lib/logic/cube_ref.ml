(* Legacy cube representation: one variant per literal, element-wise loops.
   Kept verbatim as the reference implementation for differential testing of
   the packed kernel in {!Cube}, and as the baseline side of the
   [bench --logic] minimization microbenchmark.  Not used by the flow. *)

type lit = Cube.lit = Zero | One | Both

type t = lit array

let universe n = Array.make n Both

let of_string s =
  let lit_of_char = function
    | '0' -> Zero
    | '1' -> One
    | '-' -> Both
    | c -> invalid_arg (Printf.sprintf "Cube_ref.of_string: bad character %c" c)
  in
  Array.init (String.length s) (fun i -> lit_of_char s.[i])

let to_string c =
  let char_of_lit = function Zero -> '0' | One -> '1' | Both -> '-' in
  String.init (Array.length c) (fun i -> char_of_lit c.(i))

let minterm n point =
  assert (Array.length point = n);
  Array.init n (fun i -> if point.(i) then One else Zero)

let nvars = Array.length

let lit_count c =
  Array.fold_left (fun acc l -> if l = Both then acc else acc + 1) 0 c

let is_minterm c = lit_count c = nvars c

let equal (a : t) (b : t) = a = b

let compare (a : t) (b : t) = Stdlib.compare a b

let contains a b =
  let n = Array.length a in
  let rec loop i =
    if i >= n then true
    else
      match a.(i), b.(i) with
      | Both, _ -> loop (i + 1)
      | One, One | Zero, Zero -> loop (i + 1)
      | One, (Zero | Both) | Zero, (One | Both) -> false
  in
  Array.length b = n && loop 0

let intersect a b =
  let n = Array.length a in
  let out = Array.make n Both in
  let rec loop i =
    if i >= n then Some out
    else
      match a.(i), b.(i) with
      | Zero, One | One, Zero -> None
      | Both, l | l, Both -> out.(i) <- l; loop (i + 1)
      | One, One -> out.(i) <- One; loop (i + 1)
      | Zero, Zero -> out.(i) <- Zero; loop (i + 1)
  in
  loop 0

let intersects a b = intersect a b <> None

let distance a b =
  let d = ref 0 in
  for i = 0 to Array.length a - 1 do
    match a.(i), b.(i) with
    | Zero, One | One, Zero -> incr d
    | Zero, (Zero | Both) | One, (One | Both) | Both, (Zero | One | Both) -> ()
  done;
  !d

let consensus a b =
  if distance a b <> 1 then None
  else begin
    let n = Array.length a in
    let out = Array.make n Both in
    for i = 0 to n - 1 do
      match a.(i), b.(i) with
      | Zero, One | One, Zero -> out.(i) <- Both
      | Both, l | l, Both -> out.(i) <- l
      | One, One -> out.(i) <- One
      | Zero, Zero -> out.(i) <- Zero
    done;
    Some out
  end

let supercube a b =
  Array.init (Array.length a) (fun i ->
      match a.(i), b.(i) with
      | One, One -> One
      | Zero, Zero -> Zero
      | One, (Zero | Both) | Zero, (One | Both) | Both, (Zero | One | Both) ->
        Both)

let cofactor c v value =
  assert (value <> Both);
  match c.(v), value with
  | Both, _ -> Some (Array.copy c)
  | One, One | Zero, Zero ->
    let out = Array.copy c in
    out.(v) <- Both;
    Some out
  | One, Zero | Zero, One -> None
  | (Zero | One), Both -> assert false

let cube_cofactor c d =
  if not (intersects c d) then None
  else begin
    let out = Array.copy c in
    Array.iteri (fun v l -> if l <> Both then out.(v) <- Both) d;
    Some out
  end

let eval c point =
  let n = Array.length c in
  let rec loop i =
    if i >= n then true
    else
      match c.(i) with
      | Both -> loop (i + 1)
      | One -> point.(i) && loop (i + 1)
      | Zero -> (not point.(i)) && loop (i + 1)
  in
  loop 0

let raise_var c v =
  let out = Array.copy c in
  out.(v) <- Both;
  out

let set_var c v l =
  let out = Array.copy c in
  out.(v) <- l;
  out

let get (c : t) v = c.(v)

let set (c : t) v l = c.(v) <- l

let copy = Array.copy

let depends_on c v = c.(v) <> Both

let to_packed (c : t) = Cube.of_lits c

let of_packed c = Cube.to_lits c

let pp fmt c = Format.pp_print_string fmt (to_string c)
