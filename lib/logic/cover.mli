(** Sum-of-products covers over a fixed variable count.

    A cover is a list of {!Cube.t} over the same [nvars]; it denotes the union
    of its cubes.  Covers are immutable values. *)

type t = { nvars : int; cubes : Cube.t list }

val make : int -> Cube.t list -> t
(** [make n cubes] checks that every cube has width [n]. *)

val empty : int -> t
(** The constant-0 function (no cubes). *)

val tautology_cover : int -> t
(** The constant-1 function (one universe cube). *)

val of_strings : int -> string list -> t
(** Parse cubes with {!Cube.of_string}. *)

val var : int -> int -> t
(** [var n v] is the single positive literal [v] over [n] variables. *)

val nvar : int -> int -> t
(** [nvar n v] is the single negative literal [v]. *)

val size : t -> int
(** Cube count. *)

val lit_count : t -> int
(** Total literal count, the SIS cost measure. *)

val is_empty : t -> bool

val eval : t -> bool array -> bool

val cofactor : t -> int -> Cube.lit -> t
(** Shannon cofactor with respect to a literal. *)

val cube_cofactor : t -> Cube.t -> t
(** Generalized cofactor of the cover with respect to a cube. *)

val union : t -> t -> t

val intersect : t -> t -> t

val complement : t -> t
(** Complement by unate-recursive Shannon expansion. *)

val sharp : t -> t -> t
(** [sharp a b] is [a] minus [b] (set difference), as a cover. *)

val is_tautology : t -> bool
(** Unate-recursive tautology check. *)

val covers_cube : t -> Cube.t -> bool
(** [covers_cube f c] is true when every minterm of [c] is in [f]. *)

val covers : t -> t -> bool
(** [covers f g]: [g] implies [f]. *)

val equivalent : t -> t -> bool

val depends_on : t -> int -> bool
(** Syntactic dependence: some cube has a literal on the variable. *)

val support : t -> int list
(** Variables with a literal in some cube, ascending. *)

val single_cube_containment : ?algo:[ `Auto | `Linear | `Indexed ] -> t -> t
(** Remove cubes contained in another single cube of the cover.

    [`Linear] is the classic all-pairs sweep with O(1) signature and
    literal-count prefilters; [`Indexed] buckets candidate container cubes
    under their rarest zero signature bit so a query only scans buckets
    selected by its own zero bits — sub-quadratic on the large covers the
    s5378-class flows produce.  [`Auto] (default) picks by cover size.  Both
    compute the same result set (containment is transitive, and cubes of
    equal literal count never contain each other, so removal is
    order-independent). *)

val minterms : t -> bool array list
(** All satisfying points (exponential; for tests on small covers). *)

val rename : t -> int -> int array -> t
(** [rename f n' map] rewrites [f] onto [n'] variables, sending old variable
    [v] to [map.(v)] (which must be a valid new index). *)

val pp : Format.formatter -> t -> unit
