(** Cubes: products of literals over a fixed set of Boolean variables.

    A cube assigns to each variable one of three values: the variable appears
    as a negative literal ({!Zero}), as a positive literal ({!One}), or not at
    all ({!Both}, i.e. the cube does not depend on it).  A cube denotes the
    set of minterms consistent with its literals.

    The representation packs two bits per literal into native [int] words
    (espresso positional-cube encoding), so containment, intersection,
    distance and supercube run word-parallel.  The legacy one-variant-per-
    literal array implementation survives as {!Cube_ref} for differential
    testing. *)

type lit = Zero | One | Both

type t
(** Fixed-width packed cube.  Operations returning [t] allocate a fresh cube;
    the only mutating entry point is {!set} (plus in-place use of {!copy}),
    intended for builders and for scratch cubes in inner loops. *)

val universe : int -> t
(** [universe n] is the full cube over [n] variables (tautology product). *)

val of_string : string -> t
(** [of_string "01-"] parses a cube: ['0'] negative, ['1'] positive, ['-']
    absent.  Raises [Invalid_argument] on other characters. *)

val to_string : t -> string

val minterm : int -> bool array -> t
(** [minterm n point] is the cube containing exactly [point]. *)

val of_lits : lit array -> t
(** Build a cube from one literal per variable. *)

val to_lits : t -> lit array

val nvars : t -> int

val get : t -> int -> lit
(** Literal of variable [v]. *)

val set : t -> int -> lit -> unit
(** In-place update of one literal.  Use on freshly built or {!copy}ed cubes
    only: shared cubes must be treated as immutable. *)

val copy : t -> t

val iteri : (int -> lit -> unit) -> t -> unit
(** [iteri f c] applies [f v (get c v)] for every variable in order. *)

val lit_count : t -> int
(** Number of variables appearing as literals (non-[Both] positions). *)

val is_minterm : t -> bool

val equal : t -> t -> bool

val compare : t -> t -> int
(** Lexicographic by variable with [Zero < One < Both] — the same order the
    legacy array representation induced under [Stdlib.compare]. *)

val contains : t -> t -> bool
(** [contains a b] is true when every minterm of [b] is in [a] (single-cube
    containment: [a]'s literals are a subset of [b]'s). *)

val intersects : t -> t -> bool
(** [intersects a b] iff the cubes share a minterm; allocation-free
    equivalent of [intersect a b <> None]. *)

val intersect : t -> t -> t option
(** Product of two cubes; [None] when they are disjoint (opposing literals). *)

val distance : t -> t -> int
(** Number of variables on which the cubes have opposing literals.  Zero means
    they intersect; one means consensus exists. *)

val consensus : t -> t -> t option
(** Consensus on the single conflicting variable, when [distance] is 1. *)

val supercube : t -> t -> t
(** Smallest cube containing both arguments. *)

val cofactor : t -> int -> lit -> t option
(** [cofactor c v value] is the cofactor of [c] with respect to the literal
    [v=value]; [None] if [c] has the opposing literal.  [value] must not be
    [Both]. *)

val cube_cofactor : t -> t -> t option
(** [cube_cofactor c d] is the cofactor of [c] against the whole cube [d]:
    [None] when they are disjoint, otherwise [c] with every variable bound by
    [d] raised.  Word-parallel. *)

val eval : t -> bool array -> bool
(** Membership of a minterm, given as a point. *)

val raise_var : t -> int -> t
(** Copy with variable [v] raised to [Both]. *)

val set_var : t -> int -> lit -> t
(** Copy with variable [v] set to the given literal. *)

val depends_on : t -> int -> bool

val signature : t -> int
(** OR-fold of the packed words.  Wordwise subset implies signature subset:
    [contains a b] can only hold when
    [signature b land lnot (signature a) = 0], giving a one-word prefilter
    for containment sweeps. *)

val pp : Format.formatter -> t -> unit
