type expr =
  | Const of bool
  | Lit of int * bool
  | And of expr list
  | Or of expr list

let rec eval expr point =
  match expr with
  | Const b -> b
  | Lit (v, phase) -> if phase then point.(v) else not point.(v)
  | And es -> List.for_all (fun e -> eval e point) es
  | Or es -> List.exists (fun e -> eval e point) es

let rec to_cover n expr =
  match expr with
  | Const false -> Cover.empty n
  | Const true -> Cover.tautology_cover n
  | Lit (v, true) -> Cover.var n v
  | Lit (v, false) -> Cover.nvar n v
  | And es ->
    List.fold_left
      (fun acc e -> Cover.intersect acc (to_cover n e))
      (Cover.tautology_cover n) es
  | Or es ->
    List.fold_left
      (fun acc e -> Cover.union acc (to_cover n e))
      (Cover.empty n) es

let rec literal_count = function
  | Const _ -> 0
  | Lit _ -> 1
  | And es | Or es -> List.fold_left (fun acc e -> acc + literal_count e) 0 es

let rec pp fmt = function
  | Const b -> Format.pp_print_string fmt (if b then "1" else "0")
  | Lit (v, true) -> Format.fprintf fmt "x%d" v
  | Lit (v, false) -> Format.fprintf fmt "x%d'" v
  | And es ->
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "*")
      pp_atom fmt es
  | Or es ->
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " + ")
      pp fmt es

and pp_atom fmt e =
  match e with
  | Or (_ :: _ :: _) -> Format.fprintf fmt "(%a)" pp e
  | Or _ | Const _ | Lit _ | And _ -> pp fmt e

let divide_by_cube f c =
  let quotient = ref [] and remainder = ref [] in
  let strip cube =
    (* The cube is divisible by [c] iff it carries every literal of [c];
       removing them is exactly the cube cofactor against [c]. *)
    if Cube.contains c cube then
      match Cube.cube_cofactor cube c with
      | Some out -> quotient := out :: !quotient
      | None -> assert false (* containment implies intersection *)
    else remainder := cube :: !remainder
  in
  List.iter strip f.Cover.cubes;
  ( Cover.make f.Cover.nvars (List.rev !quotient),
    Cover.make f.Cover.nvars (List.rev !remainder) )

let divide f d =
  match d.Cover.cubes with
  | [] -> (Cover.empty f.Cover.nvars, f)
  | first :: rest ->
    (* Weak division: Q = intersection over divisor cubes of per-cube
       quotients; R = f - d*Q. *)
    let module CS = Set.Make (struct
      type t = Cube.t
      let compare = Cube.compare
    end) in
    let q0, _ = divide_by_cube f first in
    let q =
      List.fold_left
        (fun acc dc ->
          let qi, _ = divide_by_cube f dc in
          CS.inter acc (CS.of_list qi.Cover.cubes))
        (CS.of_list q0.Cover.cubes)
        rest
    in
    let q = Cover.make f.Cover.nvars (CS.elements q) in
    if Cover.is_empty q then (q, f)
    else begin
      (* algebraic product d*q, then remainder = cubes of f not produced *)
      let product =
        List.concat_map
          (fun dc ->
            List.filter_map (fun qc -> Cube.intersect dc qc) q.Cover.cubes)
          d.Cover.cubes
      in
      let product_set = CS.of_list product in
      let r =
        List.filter (fun c -> not (CS.mem c product_set)) f.Cover.cubes
      in
      (q, Cover.make f.Cover.nvars r)
    end

let common_cube f =
  match f.Cover.cubes with
  | [] -> None
  | first :: rest ->
    let acc = List.fold_left Cube.supercube first rest in
    if Cube.lit_count acc = 0 then None else Some acc

let cube_free f = common_cube f = None && Cover.size f > 1

let make_cube_free f =
  match common_cube f with
  | None -> f
  | Some c ->
    let q, _ = divide_by_cube f c in
    q

(* Recursive kernel enumeration (Brayton-McMullen).  For each variable with
   two or more occurrences, cofactor out the largest common cube and recurse;
   collect cube-free quotients as kernels with their co-kernels. *)
let kernels f =
  let n = f.Cover.nvars in
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let add co_kernel kernel =
    let key = List.sort Cube.compare kernel.Cover.cubes in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      out := (co_kernel, kernel) :: !out
    end
  in
  let rec kern g co_kernel from_var =
    if cube_free g then add co_kernel g;
    for v = from_var to n - 1 do
      List.iter
        (fun phase ->
          let lit_cube = Cube.set_var (Cube.universe n) v phase in
          let with_lit =
            List.filter
              (fun c -> Cube.get c v = phase)
              g.Cover.cubes
          in
          if List.length with_lit >= 2 then begin
            let sub = Cover.make n with_lit in
            let q, _ = divide_by_cube sub lit_cube in
            let common =
              match common_cube q with
              | None -> lit_cube
              | Some c ->
                (match Cube.intersect c lit_cube with
                 | Some x -> x
                 | None -> lit_cube)
            in
            let q = make_cube_free q in
            if Cover.size q >= 2 then begin
              let ck =
                match Cube.intersect co_kernel common with
                | Some x -> x
                | None -> common
              in
              add ck q;
              kern q ck (v + 1)
            end
          end)
        [ Cube.One; Cube.Zero ]
    done
  in
  kern (make_cube_free f) (Cube.universe n) 0;
  if cube_free f then add (Cube.universe n) f;
  !out

let cube_to_expr c =
  let lits = ref [] in
  Cube.iteri
    (fun v l ->
      match l with
      | Cube.One -> lits := Lit (v, true) :: !lits
      | Cube.Zero -> lits := Lit (v, false) :: !lits
      | Cube.Both -> ())
    c;
  match !lits with
  | [] -> Const true
  | [ one ] -> one
  | several -> And (List.rev several)

let smart_or = function
  | [] -> Const false
  | [ one ] -> one
  | several -> Or several

let smart_and = function
  | [] -> Const true
  | [ one ] -> one
  | several -> And several

let best_literal f =
  let n = f.Cover.nvars in
  let best = ref None and best_count = ref 1 in
  for v = 0 to n - 1 do
    List.iter
      (fun phase ->
        let count =
          List.length (List.filter (fun c -> Cube.get c v = phase) f.Cover.cubes)
        in
        if count > !best_count then begin
          best := Some (v, phase);
          best_count := count
        end)
      [ Cube.One; Cube.Zero ]
  done;
  !best

let rec quick_factor f =
  match f.Cover.cubes with
  | [] -> Const false
  | [ c ] -> cube_to_expr c
  | _ :: _ :: _ ->
    if List.exists (fun c -> Cube.lit_count c = 0) f.Cover.cubes then Const true
    else begin
      match best_literal f with
      | None -> smart_or (List.map cube_to_expr f.Cover.cubes)
      | Some (v, phase) ->
        let n = f.Cover.nvars in
        let lit_cube = Cube.set_var (Cube.universe n) v phase in
        let q, r = divide_by_cube f lit_cube in
        let q_expr = quick_factor q in
        let head = smart_and [ Lit (v, phase = Cube.One); q_expr ] in
        if Cover.is_empty r then head
        else smart_or [ head; quick_factor r ]
    end

let kernel_value f (_ck, k) =
  let q, _ = divide f k in
  Cover.size q * (Cover.lit_count k - 1)

let rec good_factor f =
  match f.Cover.cubes with
  | [] -> Const false
  | [ c ] -> cube_to_expr c
  | _ :: _ :: _ ->
    if List.exists (fun c -> Cube.lit_count c = 0) f.Cover.cubes then Const true
    else begin
      let candidates =
        kernels f
        |> List.filter (fun (_, k) -> Cover.size k >= 2 && Cover.size k < Cover.size f)
      in
      match candidates with
      | [] -> quick_factor f
      | _ :: _ ->
        let best =
          List.fold_left
            (fun acc cand ->
              match acc with
              | None -> Some (cand, kernel_value f cand)
              | Some (_, v) ->
                let v' = kernel_value f cand in
                if v' > v then Some (cand, v') else acc)
            None candidates
        in
        (match best with
         | None -> quick_factor f
         | Some ((_, k), value) when value > 0 ->
           let q, r = divide f k in
           if Cover.is_empty q then quick_factor f
           else begin
             let head = smart_and [ good_factor q; good_factor k ] in
             if Cover.is_empty r then head else smart_or [ head; good_factor r ]
           end
         | Some _ -> quick_factor f)
    end
