let cost f = (Cover.size f, Cover.lit_count f)

(* A cube is feasible iff it does not intersect the OFF-set. *)
let feasible ~(off : Cover.t) cube =
  not (List.exists (fun c -> Cube.intersects c cube) off.Cover.cubes)

let expand_cube ~off cube =
  let n = Cube.nvars cube in
  (* One scratch cube for the whole expansion: each probe raises a variable
     in place and restores it when the raised cube hits the OFF-set. *)
  let current = Cube.copy cube in
  (* Greedy: try variables in order of how constrained they are; a simple
     left-to-right pass repeated until fixpoint is adequate at our sizes. *)
  let changed = ref true in
  while !changed do
    changed := false;
    for v = 0 to n - 1 do
      let saved = Cube.get current v in
      if saved <> Cube.Both then begin
        Cube.set current v Cube.Both;
        if feasible ~off current then changed := true
        else Cube.set current v saved
      end
    done
  done;
  current

let expand ~off f =
  let cubes = List.map (expand_cube ~off) f.Cover.cubes in
  Cover.single_cube_containment { f with Cover.cubes }

(* Both passes below repeatedly need "every cube but the current one, plus
   the DC set" as a cover.  The cubes are already width-checked, so the
   scratch cover is assembled by consing straight onto the DC list — no
   [Cover.make] re-validation, one list spine per probe. *)
let others_with ~dc kept rest =
  { dc with Cover.cubes = List.rev_append kept (List.rev_append rest dc.Cover.cubes) }

let irredundant ~dc f =
  let rec loop kept = function
    | [] -> List.rev kept
    | c :: rest ->
      if Cover.covers_cube (others_with ~dc kept rest) c then loop kept rest
      else loop (c :: kept) rest
  in
  { f with Cover.cubes = loop [] f.Cover.cubes }

let reduce ~dc f =
  let reduce_cube kept rest c =
    (* Essential part of [c]: minterms of [c] not covered by the rest of the
       cover nor the DC set.  Replace [c] by the supercube of that part. *)
    let essential =
      Cover.sharp { f with Cover.cubes = [ c ] } (others_with ~dc kept rest)
    in
    match essential.Cover.cubes with
    | [] -> None (* fully redundant *)
    | first :: more -> Some (List.fold_left Cube.supercube first more)
  in
  let rec loop kept = function
    | [] -> List.rev kept
    | c :: rest ->
      (match reduce_cube kept rest c with
       | None -> loop kept rest
       | Some c' -> loop (c' :: kept) rest)
  in
  { f with Cover.cubes = loop [] f.Cover.cubes }

let minimize ?dc f =
  let dc = match dc with Some d -> d | None -> Cover.empty f.Cover.nvars in
  if Cover.is_empty f then f
  else begin
    let off = Cover.complement (Cover.union f dc) in
    let rec loop best =
      let candidate = best |> expand ~off |> irredundant ~dc |> reduce ~dc in
      let candidate = expand ~off candidate |> irredundant ~dc in
      if cost candidate < cost best then loop candidate else best
    in
    let start = expand ~off f |> irredundant ~dc in
    loop start
  end

(* --- Exact minimization for small supports (Quine-McCluskey + greedy/exact
   covering) --------------------------------------------------------------- *)

let all_minterms_of f dc =
  let n = f.Cover.nvars in
  let on = ref [] and care = ref [] in
  let point = Array.make n false in
  let rec enum v =
    if v = n then begin
      let in_f = Cover.eval f point and in_dc = Cover.eval dc point in
      if in_f || in_dc then care := Array.copy point :: !care;
      if in_f && not in_dc then on := Array.copy point :: !on
    end
    else begin
      point.(v) <- false;
      enum (v + 1);
      point.(v) <- true;
      enum (v + 1)
    end
  in
  enum 0;
  (List.rev !on, List.rev !care)

let prime_implicants n care_points =
  (* Iterative consensus over minterm cubes restricted to the care set. *)
  let module CS = Set.Make (struct
    type t = Cube.t
    let compare = Cube.compare
  end) in
  let care = Cover.make n (List.map (Cube.minterm n) care_points) in
  let start = CS.of_list (List.map (Cube.minterm n) care_points) in
  let rec grow current =
    let next = ref CS.empty and merged = ref CS.empty in
    let items = CS.elements current in
    List.iteri
      (fun i a ->
        List.iteri
          (fun j b ->
            if j > i && Cube.distance a b = 1 then
              match Cube.consensus a b with
              | Some c when Cube.contains c a && Cube.contains c b ->
                (* adjacent merge (a, b differ in exactly one variable) *)
                if Cover.covers_cube care c then begin
                  next := CS.add c !next;
                  merged := CS.add a (CS.add b !merged)
                end
              | Some _ | None -> ())
          items)
      items;
    let primes = CS.diff current !merged in
    if CS.is_empty !next then primes else CS.union primes (grow !next)
  in
  CS.elements (grow start)

let minimize_exact_small ?dc f =
  let n = f.Cover.nvars in
  assert (n <= 12);
  let dc = match dc with Some d -> d | None -> Cover.empty n in
  let on, care = all_minterms_of f dc in
  if on = [] then Cover.empty n
  else if care = [] then Cover.empty n
  else begin
    let primes = prime_implicants n care in
    (* Greedy set cover of ON minterms by primes, preferring big cubes. *)
    let uncovered = ref on and chosen = ref [] in
    let primes =
      List.sort (fun a b -> compare (Cube.lit_count a) (Cube.lit_count b)) primes
    in
    (* Essential primes first. *)
    List.iter
      (fun m ->
        let covering = List.filter (fun p -> Cube.eval p m) primes in
        match covering with
        | [ only ] when not (List.memq only !chosen) -> chosen := only :: !chosen
        | [] | [ _ ] | _ :: _ :: _ -> ())
      on;
    uncovered :=
      List.filter (fun m -> not (List.exists (fun p -> Cube.eval p m) !chosen)) !uncovered;
    while !uncovered <> [] do
      let best = ref None and best_gain = ref (-1) in
      List.iter
        (fun p ->
          if not (List.memq p !chosen) then begin
            let gain =
              List.length (List.filter (fun m -> Cube.eval p m) !uncovered)
            in
            if gain > !best_gain then begin
              best := Some p;
              best_gain := gain
            end
          end)
        primes;
      match !best with
      | Some p ->
        chosen := p :: !chosen;
        uncovered := List.filter (fun m -> not (Cube.eval p m)) !uncovered
      | None -> failwith "minimize_exact_small: cover construction failed"
    done;
    Cover.single_cube_containment (Cover.make n !chosen)
  end
