(* Bit-packed cubes: 2 bits per literal, 31 literals per word.

   Field encoding (espresso positional notation):
     Zero -> 01   (only the 0 value of the variable is allowed)
     One  -> 10   (only the 1 value)
     Both -> 11   (variable absent from the product)
   00 never appears in a well-formed cube; it marks an empty intersection.

   Invariants:
   - [w] has [(n + 30) / 31] words;
   - fields beyond position [n] in the last word are kept at 11, so every
     word-parallel operation (AND, OR, subset tests) treats the tail as
     "absent" without masking. *)

type lit = Zero | One | Both

type t = { n : int; w : int array }

let vars_per_word = 31

(* 01 repeated in every field: bits 0, 2, 4, ... 60. *)
let mask01 = 0x1555_5555_5555_5555

(* 11 in every field = the 62 low bits = max_int on 64-bit OCaml. *)
let all_both = (mask01 lsl 1) lor mask01

let nwords n = (n + vars_per_word - 1) / vars_per_word

let code_of_lit = function Zero -> 1 | One -> 2 | Both -> 3

let lit_of_code = function 1 -> Zero | 2 -> One | _ -> Both

let universe n = { n; w = Array.make (nwords n) all_both }

let nvars c = c.n

let get c v =
  lit_of_code ((c.w.(v / vars_per_word) lsr (2 * (v mod vars_per_word))) land 3)

let set c v l =
  let i = v / vars_per_word and s = 2 * (v mod vars_per_word) in
  c.w.(i) <- c.w.(i) land lnot (3 lsl s) lor (code_of_lit l lsl s)

let copy c = { c with w = Array.copy c.w }

let of_lits lits =
  let c = universe (Array.length lits) in
  Array.iteri (fun v l -> if l <> Both then set c v l) lits;
  c

let to_lits c = Array.init c.n (get c)

let iteri f c =
  for v = 0 to c.n - 1 do
    f v (get c v)
  done

let of_string s =
  let c = universe (String.length s) in
  String.iteri
    (fun v ch ->
      match ch with
      | '0' -> set c v Zero
      | '1' -> set c v One
      | '-' -> ()
      | _ -> invalid_arg (Printf.sprintf "Cube.of_string: bad character %c" ch))
    s;
  c

let to_string c =
  String.init c.n (fun v ->
      match get c v with Zero -> '0' | One -> '1' | Both -> '-')

let minterm n point =
  assert (Array.length point = n);
  let c = universe n in
  for v = 0 to n - 1 do
    set c v (if point.(v) then One else Zero)
  done;
  c

let popcount x =
  let x = x - ((x lsr 1) land 0x5555_5555_5555_5555) in
  let x = (x land 0x3333_3333_3333_3333) + ((x lsr 2) land 0x3333_3333_3333_3333) in
  let x = (x + (x lsr 4)) land 0x0F0F_0F0F_0F0F_0F0F in
  (x * 0x0101_0101_0101_0101) lsr 56

(* Index of the lowest set bit; [x] must be non-zero. *)
let ntz x = popcount (x land (-x) - 1)

let lit_count c =
  (* Fields holding 11 (Both) across all words, including the constant-11
     tail, leave exactly the bound literals. *)
  let both = ref 0 in
  for i = 0 to Array.length c.w - 1 do
    let x = c.w.(i) in
    both := !both + popcount (x land (x lsr 1) land mask01)
  done;
  Array.length c.w * vars_per_word - !both

let is_minterm c = lit_count c = c.n

let equal a b =
  a.n = b.n
  &&
  let rec loop i = i < 0 || (a.w.(i) = b.w.(i) && loop (i - 1)) in
  loop (Array.length a.w - 1)

(* Same order as the legacy element-wise [Stdlib.compare] on lit arrays:
   lexicographic by variable with Zero < One < Both (the field codes 1 < 2 < 3
   preserve that rank). *)
let compare a b =
  if a.n <> b.n then Stdlib.compare a.n b.n
  else begin
    let words = Array.length a.w in
    let rec loop i =
      if i >= words then 0
      else if a.w.(i) = b.w.(i) then loop (i + 1)
      else begin
        let s = ntz (a.w.(i) lxor b.w.(i)) land lnot 1 in
        Stdlib.compare ((a.w.(i) lsr s) land 3) ((b.w.(i) lsr s) land 3)
      end
    in
    loop 0
  end

let contains a b =
  a.n = b.n
  &&
  (* [a] contains [b] iff every allowed value of [b] is allowed by [a]. *)
  let rec loop i = i < 0 || (b.w.(i) land lnot a.w.(i) = 0 && loop (i - 1)) in
  loop (Array.length a.w - 1)

let intersects a b =
  let rec loop i =
    i < 0
    ||
    let x = a.w.(i) land b.w.(i) in
    (x lor (x lsr 1)) land mask01 = mask01 && loop (i - 1)
  in
  loop (Array.length a.w - 1)

let intersect a b =
  if intersects a b then
    Some { n = a.n; w = Array.init (Array.length a.w) (fun i -> a.w.(i) land b.w.(i)) }
  else None

let distance a b =
  let d = ref 0 in
  for i = 0 to Array.length a.w - 1 do
    let x = a.w.(i) land b.w.(i) in
    d := !d + popcount (lnot (x lor (x lsr 1)) land mask01)
  done;
  !d

let consensus a b =
  if distance a b <> 1 then None
  else begin
    let out =
      { n = a.n;
        w = Array.init (Array.length a.w) (fun i -> a.w.(i) land b.w.(i)) }
    in
    (* raise the single conflicting variable *)
    let rec fix i =
      let x = out.w.(i) in
      let empty = lnot (x lor (x lsr 1)) land mask01 in
      if empty = 0 then fix (i + 1)
      else out.w.(i) <- x lor (empty lor (empty lsl 1))
    in
    fix 0;
    Some out
  end

let supercube a b =
  { n = a.n; w = Array.init (Array.length a.w) (fun i -> a.w.(i) lor b.w.(i)) }

let cofactor c v value =
  assert (value <> Both);
  let i = v / vars_per_word and s = 2 * (v mod vars_per_word) in
  if (c.w.(i) lsr s) land code_of_lit value = 0 then None
  else begin
    let out = copy c in
    set out v Both;
    Some out
  end

(* Cofactor of [c] against a whole cube: [None] when disjoint, otherwise [c]
   with every variable bound by [d] raised.  One OR per word. *)
let cube_cofactor c d =
  if not (intersects c d) then None
  else
    Some
      { n = c.n;
        w =
          Array.init (Array.length c.w) (fun i ->
              let bound = lnot (d.w.(i) land (d.w.(i) lsr 1)) land mask01 in
              c.w.(i) lor (bound lor (bound lsl 1))) }

let eval c point =
  let rec loop v =
    v >= c.n
    ||
    let f = (c.w.(v / vars_per_word) lsr (2 * (v mod vars_per_word))) land 3 in
    (f = 3 || (f = 2) = point.(v)) && loop (v + 1)
  in
  loop 0

let raise_var c v =
  let out = copy c in
  set out v Both;
  out

let set_var c v l =
  let out = copy c in
  set out v l;
  out

let depends_on c v =
  (c.w.(v / vars_per_word) lsr (2 * (v mod vars_per_word))) land 3 <> 3

(* OR-fold of the words: wordwise subset implies signature subset, so
   [contains a b] requires [signature b land lnot (signature a) = 0] — a
   one-word prefilter for cover containment sweeps. *)
let signature c = Array.fold_left ( lor ) 0 c.w

let pp fmt c = Format.pp_print_string fmt (to_string c)
