type t = { nvars : int; cubes : Cube.t list }

let make nvars cubes =
  List.iter (fun c -> assert (Cube.nvars c = nvars)) cubes;
  { nvars; cubes }

let empty nvars = { nvars; cubes = [] }

let tautology_cover nvars = { nvars; cubes = [ Cube.universe nvars ] }

let of_strings nvars strings =
  make nvars (List.map Cube.of_string strings)

let var nvars v = { nvars; cubes = [ Cube.set_var (Cube.universe nvars) v Cube.One ] }

let nvar nvars v = { nvars; cubes = [ Cube.set_var (Cube.universe nvars) v Cube.Zero ] }

let size f = List.length f.cubes

let lit_count f = List.fold_left (fun acc c -> acc + Cube.lit_count c) 0 f.cubes

let is_empty f = f.cubes = []

let eval f point = List.exists (fun c -> Cube.eval c point) f.cubes

let cofactor f v value =
  let cubes = List.filter_map (fun c -> Cube.cofactor c v value) f.cubes in
  { f with cubes }

let cube_cofactor f cube =
  (* Cofactor of each cube of [f] against [cube]: drop disjoint cubes and
     raise the variables bound by [cube] — word-parallel per cube. *)
  { f with cubes = List.filter_map (fun c -> Cube.cube_cofactor c cube) f.cubes }

let union a b =
  assert (a.nvars = b.nvars);
  { a with cubes = a.cubes @ b.cubes }

(* Metrics published once per sweep (locally accumulated in the loops, so the
   kernel itself stays branch-free on the probe path). *)
let m_scc_calls = Obs.Metrics.counter "logic.scc.calls"
let m_scc_probes = Obs.Metrics.counter "logic.scc.pairs_probed"
let m_scc_prefilter = Obs.Metrics.counter "logic.scc.prefilter_rejects"
let m_scc_contains = Obs.Metrics.counter "logic.scc.contains_calls"
let m_scc_size = Obs.Metrics.histogram "logic.scc.cover_size"

(* How many signature bit positions exist; shifts must stay < Sys.int_size. *)
let sig_bits = Sys.int_size - 1

let single_cube_containment ?(algo = `Auto) f =
  (* Deduplicate first so identical cubes do not protect each other. *)
  let dedup = Array.of_list (List.sort_uniq Cube.compare f.cubes) in
  let k = Array.length dedup in
  if k <= 1 then { f with cubes = Array.to_list dedup }
  else begin
    (* Signature and literal-count prefilters: [contains d c] requires
       [sig c land lnot (sig d) = 0] and [lit_count d < lit_count c] (strict,
       because distinct cubes of equal literal count cannot contain each
       other).  Both reject in O(1) before the word sweep. *)
    let sigs = Array.map Cube.signature dedup in
    let counts = Array.map Cube.lit_count dedup in
    let probes = ref 0 and prefilter = ref 0 and contains = ref 0 in
    let probe i j =
      (* does [j] strictly cover [i]? *)
      incr probes;
      if
        counts.(j) < counts.(i)
        && sigs.(i) land lnot sigs.(j) = 0
      then begin
        incr contains;
        Cube.contains dedup.(j) dedup.(i)
      end
      else begin
        incr prefilter;
        false
      end
    in
    let covered =
      let use_index =
        (* measured crossover (bench --logic): the index loses slightly at
           256 cubes and wins 2.5-4.5x at 1024-2048 *)
        match algo with `Auto -> k > 512 | `Indexed -> true | `Linear -> false
      in
      if not use_index then begin
        let covered i =
          let rec loop j =
            j < k && ((j <> i && probe i j) || loop (j + 1))
          in
          loop 0
        in
        Array.init k covered
      end
      else begin
        (* Containment needs [sig d] to be a bitwise SUPERSET of [sig c]
           (packed fields: Both = 11 absorbs literals), so every zero bit of
           the container is a zero bit of the containee.  Index each cube
           under its globally rarest zero bit; a query then scans only the
           buckets of its own zero bits.  Cubes are visited in ascending
           literal count so the index never holds a cube that the strict
           count prefilter would not reject anyway. *)
        let zero_freq = Array.make sig_bits 0 in
        for i = 0 to k - 1 do
          for b = 0 to sig_bits - 1 do
            if sigs.(i) land (1 lsl b) = 0 then
              zero_freq.(b) <- zero_freq.(b) + 1
          done
        done;
        let buckets = Array.make sig_bits [] in
        let saturated = ref [] in
        let insert j =
          let s = sigs.(j) in
          let best = ref (-1) and best_freq = ref max_int in
          for b = 0 to sig_bits - 1 do
            if s land (1 lsl b) = 0 && zero_freq.(b) < !best_freq then begin
              best := b;
              best_freq := zero_freq.(b)
            end
          done;
          if !best < 0 then saturated := j :: !saturated
          else buckets.(!best) <- j :: buckets.(!best)
        in
        let covered = Array.make k false in
        let query i =
          let s = sigs.(i) in
          let found = ref false in
          let scan js =
            List.iter (fun j -> if (not !found) && probe i j then found := true) js
          in
          scan !saturated;
          let b = ref 0 in
          while (not !found) && !b < sig_bits do
            if s land (1 lsl !b) = 0 then scan buckets.(!b);
            incr b
          done;
          !found
        in
        let order = Array.init k Fun.id in
        Array.sort
          (fun a b ->
            let c = compare counts.(a) counts.(b) in
            if c <> 0 then c else compare a b)
          order;
        (* flush pending inserts whenever the literal count strictly grows;
           equal-count cubes cannot contain each other, so whether the group
           is indexed during its own queries is immaterial *)
        let pending = ref [] and pending_count = ref (-1) in
        Array.iter
          (fun i ->
            if counts.(i) > !pending_count then begin
              List.iter insert !pending;
              pending := [];
              pending_count := counts.(i)
            end;
            covered.(i) <- query i;
            pending := i :: !pending)
          order;
        covered
      end
    in
    let out = ref [] in
    for i = k - 1 downto 0 do
      if not covered.(i) then out := dedup.(i) :: !out
    done;
    if Obs.Metrics.enabled () then begin
      Obs.Metrics.incr m_scc_calls;
      Obs.Metrics.observe m_scc_size k;
      Obs.Metrics.add m_scc_probes !probes;
      Obs.Metrics.add m_scc_prefilter !prefilter;
      Obs.Metrics.add m_scc_contains !contains
    end;
    { f with cubes = !out }
  end

let depends_on f v = List.exists (fun c -> Cube.depends_on c v) f.cubes

let support f =
  let rec loop v acc =
    if v < 0 then acc
    else loop (v - 1) (if depends_on f v then v :: acc else acc)
  in
  loop (f.nvars - 1) []

(* Pick the best splitting variable: the most binate one (appears in both
   phases in many cubes); fall back to the most frequent variable. *)
let binate_select f =
  let n = f.nvars in
  let pos = Array.make n 0 and neg = Array.make n 0 in
  let count c =
    Cube.iteri
      (fun v l ->
        match l with
        | Cube.One -> pos.(v) <- pos.(v) + 1
        | Cube.Zero -> neg.(v) <- neg.(v) + 1
        | Cube.Both -> ())
      c
  in
  List.iter count f.cubes;
  let best = ref (-1) and best_key = ref (-1, -1) in
  for v = 0 to n - 1 do
    if pos.(v) + neg.(v) > 0 then begin
      let key = (min pos.(v) neg.(v), pos.(v) + neg.(v)) in
      if key > !best_key then begin
        best := v;
        best_key := key
      end
    end
  done;
  !best

let rec is_tautology f =
  if List.exists (fun c -> Cube.lit_count c = 0) f.cubes then true
  else if f.cubes = [] then false
  else begin
    let v = binate_select f in
    if v < 0 then false (* no literals and no universe cube *)
    else
      (* Unate shortcut: if [v] is unate we can drop it only when it is the
         sole remaining test; splitting is always sound, so just split. *)
      is_tautology (cofactor f v Cube.One)
      && is_tautology (cofactor f v Cube.Zero)
  end

let covers_cube f c = is_tautology (cube_cofactor f c)

let covers f g = List.for_all (covers_cube f) g.cubes

let intersect a b =
  assert (a.nvars = b.nvars);
  let cubes =
    List.concat_map
      (fun ca -> List.filter_map (fun cb -> Cube.intersect ca cb) b.cubes)
      a.cubes
  in
  single_cube_containment { a with cubes }

(* Complement by Shannon expansion:
   not f = x' * not(f_x') + x * not(f_x).  Terminal cases: empty cover and
   covers containing the universe cube.  A single-cube complement is computed
   directly by De Morgan. *)
let rec complement f =
  if f.cubes = [] then tautology_cover f.nvars
  else if List.exists (fun c -> Cube.lit_count c = 0) f.cubes then empty f.nvars
  else
    match f.cubes with
    | [] -> assert false (* handled above *)
    | [ c ] ->
      let cubes = ref [] in
      Cube.iteri
        (fun v l ->
          match l with
          | Cube.Both -> ()
          | Cube.One ->
            cubes := Cube.set_var (Cube.universe f.nvars) v Cube.Zero :: !cubes
          | Cube.Zero ->
            cubes := Cube.set_var (Cube.universe f.nvars) v Cube.One :: !cubes)
        c;
      { f with cubes = List.rev !cubes }
    | _ :: _ :: _ ->
      let v = binate_select f in
      assert (v >= 0);
      let attach value g =
        let lit_cube = Cube.set_var (Cube.universe f.nvars) v value in
        { f with
          cubes =
            List.filter_map (fun c -> Cube.intersect lit_cube c) g.cubes }
      in
      let hi = complement (cofactor f v Cube.One) in
      let lo = complement (cofactor f v Cube.Zero) in
      single_cube_containment (union (attach Cube.One hi) (attach Cube.Zero lo))

let sharp a b =
  if b.cubes = [] then a
  else intersect a (complement b)

let equivalent a b = covers a b && covers b a

let minterms f =
  let n = f.nvars in
  let out = ref [] in
  let point = Array.make n false in
  let rec enum v =
    if v = n then begin
      if eval f point then out := Array.copy point :: !out
    end
    else begin
      point.(v) <- false;
      enum (v + 1);
      point.(v) <- true;
      enum (v + 1)
    end
  in
  enum 0;
  List.rev !out

let rename f nvars' map =
  let rename_cube c =
    let out = Cube.universe nvars' in
    Cube.iteri
      (fun v l -> if l <> Cube.Both then Cube.set out map.(v) l)
      c;
    out
  in
  { nvars = nvars'; cubes = List.map rename_cube f.cubes }

let pp fmt f =
  if f.cubes = [] then Format.pp_print_string fmt "<0>"
  else
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " + ")
      Cube.pp fmt f.cubes
