(* Deterministic fork-join task scheduler over OCaml 5 domains.

   v1 (PR 2) was a flat parallel [map]: one atomic claim counter, one domain
   per worker, results in a slot array.  That parallelizes the suite at row
   granularity only — wall-clock is floored by the slowest row, and the
   domain-shared BDD table (PR 6) is never exercised *inside* a row.  v2 is
   a general fork/join scheduler with work-stealing deques; [map] survives
   as a thin wrapper with its slot-ordered, lowest-index-failure semantics
   intact, and flow internals (eqcheck boundaries, verify rule groups,
   verification lanes, resynth cone minimization) fork nested tasks that any
   idle worker can steal.

   Determinism argument (DESIGN.md §13):
   - A future is an [Atomic] holding [Pending f | Running | Done result].
     Exactly one runner claims it by CAS [Pending -> Running]; the result is
     published with a plain [Atomic.set] (seq-cst, so the joiner's read of
     [Done] orders after every write the task made).
   - [join] returns the stored value (or re-raises the stored exception with
     its original backtrace) — the *value* never depends on which domain ran
     the task or when.
   - Callers fork only tasks whose side effects commute (atomic metrics
     counters, per-scope BDD accounting) or that are explicitly chained by
     joining their predecessor, and join in program order.  Hence output is
     byte-identical for any [--jobs N] at any nesting depth.
   - With no pool active (jobs=1, or fork outside [run]), [fork] executes the
     task inline at fork time: program order *is* serial order, so the serial
     run is literally the jobs=1 run.

   Steal protocol: per-worker deques under a mutex (contention is negligible
   against flow-sized tasks; no Chase-Lev subtleties).  Owners push/pop at
   the bottom (LIFO, keeps the working set warm), thieves take from the top
   (FIFO, steals the oldest = usually biggest task).  A claimed-elsewhere
   task left in a deque is skipped when popped.  Idle workers sleep on a
   condition variable — on an oversubscribed 1-core box extra workers park
   instead of burning the only core. *)

let cores () = Domain.recommended_domain_count ()

let default_jobs () = max 1 (cores ())

(* More workers than cores measures scheduling overhead, not scaling;
   benchmark reporters use this to flag misleading speedup numbers. *)
let oversubscribed ~jobs = jobs > cores ()

exception Worker_failure of int * exn

(* Scheduler observability: counts vary with [jobs] and scheduling (steals,
   inline forks, parks), so they are excluded from determinism comparisons —
   see [Bench] / CI, which compare only semantic metrics. *)
let m_forked = Obs.Metrics.counter "parallel.tasks.forked"
let m_inline = Obs.Metrics.counter "parallel.tasks.inline"
let m_steals = Obs.Metrics.counter "parallel.steals"
let m_waits = Obs.Metrics.counter "parallel.joins.waited"
let m_pools = Obs.Metrics.counter "parallel.pools"
let m_parked = Obs.Metrics.counter "parallel.sleepers.parked"
let m_woken = Obs.Metrics.counter "parallel.sleepers.woken"

type 'a state =
  | Pending of (unit -> 'a)
  | Running
  | Done of ('a, exn * Printexc.raw_backtrace) result

(* [sid] is the sanitizer's future uid (0 = untracked, when the sanitizer
   was disabled at fork time).  It rides along so the single-claim checker
   can pair the claiming CAS with the completing [Done] store. *)
type 'a future = {
  cell : 'a state Atomic.t;
  sid : int;
}

type task = Task : 'a future -> task

(* Claim and execute a task.  Returns false if someone else already claimed
   it (stale deque entry).  The CAS is the only way [Pending] becomes
   [Running], so a task body runs exactly once. *)
let try_run (Task fut) =
  match Atomic.get fut.cell with
  | Running | Done _ -> false
  | Pending f as st ->
    if Atomic.compare_and_set fut.cell st Running then begin
      if fut.sid <> 0 then Sanitize.Future.claimed ~fut:fut.sid;
      let r =
        match f () with
        | v -> Ok v
        | exception e -> Error (e, Printexc.get_raw_backtrace ())
      in
      Atomic.set fut.cell (Done r);
      if fut.sid <> 0 then Sanitize.Future.completed ~fut:fut.sid;
      true
    end
    else false

type deque = {
  lock : Sanitize.Lock.t;
  mutable buf : task array; (* circular, power-of-two capacity *)
  mutable head : int; (* next slot thieves take from (top) *)
  mutable tail : int; (* next slot the owner pushes to (bottom) *)
}

type pool = {
  deques : deque array;
  quit : bool Atomic.t;
  pending : int Atomic.t; (* queued-but-unpopped tasks, for the sleep check *)
  sleepers : int Atomic.t;
  wake_lock : Sanitize.Lock.t;
  wake : Condition.t;
  mutable domains : unit Domain.t array;
}

let dummy_task = Task { cell = Atomic.make Running; sid = 0 }

(* Lock ranks (documented order: wake < deque — though sched never nests
   them; both rank below the BDD stripe/cache locks, which BDD operations
   inside a task may take while a deque lock is *not* held). *)
let order_wake = 10
let order_deque = 20

let make_deque i =
  { lock =
      Sanitize.Lock.create ~order:order_deque
        ~name:(Printf.sprintf "sched.deque.%d" i);
    buf = Array.make 64 dummy_task;
    head = 0;
    tail = 0 }

(* Ambient scheduler context: which pool this domain works for, and its
   worker index (deque slot).  [None] outside [run] and on foreign domains —
   there [fork] executes inline. *)
let ctx_key : (pool * int) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let wake_sleepers pool =
  if Atomic.get pool.sleepers > 0 then begin
    Sanitize.Lock.lock pool.wake_lock;
    Condition.broadcast pool.wake;
    Sanitize.Lock.unlock pool.wake_lock
  end

let grow d =
  let cap = Array.length d.buf in (* lint-waive: typed/lock-discipline -- sole caller push_bottom holds d.lock across grow *)
  let buf' = Array.make (2 * cap) dummy_task in
  for i = d.head to d.tail - 1 do (* lint-waive: typed/lock-discipline -- sole caller push_bottom holds d.lock across grow *)
    buf'.(i land ((2 * cap) - 1)) <- d.buf.(i land (cap - 1)) (* lint-waive: typed/lock-discipline -- sole caller push_bottom holds d.lock across grow *)
  done;
  d.buf <- buf' (* lint-waive: typed/lock-discipline -- sole caller push_bottom holds d.lock across grow *)

let push_bottom pool d t =
  Sanitize.Lock.lock d.lock;
  if d.tail - d.head = Array.length d.buf then grow d;
  d.buf.(d.tail land (Array.length d.buf - 1)) <- t;
  d.tail <- d.tail + 1;
  Sanitize.Lock.unlock d.lock;
  Atomic.incr pool.pending;
  (* [pending] is bumped before the sleeper check, and a parking worker
     re-checks [pending] after registering in [sleepers] (both seq-cst), so
     either we see the sleeper and broadcast or it sees the task: no lost
     wakeup. *)
  wake_sleepers pool

let pop_bottom pool d =
  Sanitize.Lock.lock d.lock;
  let r =
    if d.tail > d.head then begin
      d.tail <- d.tail - 1;
      Some d.buf.(d.tail land (Array.length d.buf - 1))
    end
    else None
  in
  Sanitize.Lock.unlock d.lock;
  if r <> None then Atomic.decr pool.pending;
  r

let steal_top pool d =
  Sanitize.Lock.lock d.lock;
  let r =
    if d.tail > d.head then begin
      let t = d.buf.(d.head land (Array.length d.buf - 1)) in
      d.head <- d.head + 1;
      Some t
    end
    else None
  in
  Sanitize.Lock.unlock d.lock;
  if r <> None then Atomic.decr pool.pending;
  r

(* Own deque first (bottom: newest, cache-warm), then scan the others
   cyclically from [wid + 1] and steal from the top (oldest). *)
let find_task pool wid =
  match pop_bottom pool pool.deques.(wid) with
  | Some _ as t -> t
  | None ->
    let n = Array.length pool.deques in
    let rec scan k =
      if k = n then None
      else
        let j = (wid + k) mod n in
        match steal_top pool pool.deques.(j) with
        | Some _ as t ->
          Obs.Metrics.incr m_steals;
          t
        | None -> scan (k + 1)
    in
    scan 1

(* Park until a task is pushed or the pool shuts down.  See [push_bottom]
   for the no-lost-wakeup argument. *)
let park pool =
  Sanitize.Lock.lock pool.wake_lock;
  Atomic.incr pool.sleepers;
  if Atomic.get pool.pending = 0 && not (Atomic.get pool.quit) then begin
    Obs.Metrics.incr m_parked;
    Sanitize.Lock.wait pool.wake pool.wake_lock;
    Obs.Metrics.incr m_woken
  end;
  Atomic.decr pool.sleepers;
  Sanitize.Lock.unlock pool.wake_lock

let worker_loop pool wid =
  Domain.DLS.set ctx_key (Some (pool, wid));
  let rec loop () =
    if not (Atomic.get pool.quit) then begin
      (match find_task pool wid with
       | Some t -> ignore (try_run t)
       | None -> park pool);
      loop ()
    end
  in
  loop ()

let fork f =
  let sid = if Sanitize.enabled () then Sanitize.Future.fresh () else 0 in
  let fut = { cell = Atomic.make (Pending f); sid } in
  (match Domain.DLS.get ctx_key with
   | Some (pool, wid) ->
     Obs.Metrics.incr m_forked;
     push_bottom pool pool.deques.(wid) (Task fut)
   | None ->
     (* No pool: run right now.  Program order = serial order, which is what
        makes jobs=1 byte-identical by construction. *)
     Obs.Metrics.incr m_inline;
     ignore (try_run (Task fut)));
  fut

(* A join claims a [Pending] future and runs it inline — that is a real
   dependency, so the thread's stack only ever holds tasks it needs.  While
   the future runs on another domain the joiner *waits* (brief spins, then
   an escalating micro-sleep so an oversubscribed box lets the owning
   domain finish); it deliberately does NOT "help" by running unrelated
   queued tasks.  Helping would stack a fresh task on top of a suspended
   one, and with chained futures (eqcheck boundary checks join their
   predecessor) two domains can each end up waiting for a task suspended
   under the other's helper frame: deadlock.  Without helping, every
   thread's wait-for edge follows a real task dependency, and since a task
   can only join futures forked before it, that graph is acyclic. *)
let rec await fut spins =
  match Atomic.get fut.cell with
  | Done r -> r
  | Pending _ ->
    ignore (try_run (Task fut));
    await fut 0
  | Running ->
    if spins = 0 then Obs.Metrics.incr m_waits;
    Domain.cpu_relax ();
    if spins >= 100 then Unix.sleepf (Float.min 1e-3 (5e-5 *. float spins));
    await fut (spins + 1)

let join_result fut = await fut 0

let join fut =
  match join_result fut with
  | Ok v -> v
  | Error (e, bt) -> Printexc.raise_with_backtrace e bt

let make_pool jobs =
  { deques = Array.init jobs make_deque;
    quit = Atomic.make false;
    pending = Atomic.make 0;
    sleepers = Atomic.make 0;
    wake_lock = Sanitize.Lock.create ~order:order_wake ~name:"sched.wake";
    wake = Condition.create ();
    domains = [||] }

let run ?jobs f =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  match Domain.DLS.get ctx_key with
  | Some _ -> f () (* nested [run]: reuse the ambient pool *)
  | None ->
    if jobs = 1 then f ()
    else begin
      Obs.Metrics.incr m_pools;
      let pool = make_pool jobs in
      pool.domains <-
        Array.init (jobs - 1) (fun i ->
            let wid = i + 1 in
            Domain.spawn (fun () ->
                (* one span per worker: on a Chrome trace each domain is a
                   distinct track holding the spans of the tasks it ran *)
                Obs.Trace.span ~cat:"parallel" "worker" (fun () ->
                    worker_loop pool wid)));
      Domain.DLS.set ctx_key (Some (pool, 0));
      let finish () =
        Domain.DLS.set ctx_key None;
        Atomic.set pool.quit true;
        Sanitize.Lock.lock pool.wake_lock;
        Condition.broadcast pool.wake;
        Sanitize.Lock.unlock pool.wake_lock;
        Array.iter Domain.join pool.domains
      in
      match f () with
      | v ->
        finish ();
        v
      | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        finish ();
        Printexc.raise_with_backtrace e bt
    end

(* [map ~jobs f items]: apply [f] to every element under a [jobs]-worker
   pool.  Results are returned in item order; if any [f] raises, the
   exception of the lowest-indexed failing item is re-raised (wrapped in
   [Worker_failure], carrying the original backtrace) — also
   deterministically, because futures are joined in slot order.  Unlike v1,
   [jobs] is not clamped to the item count: extra workers steal the *nested*
   tasks items fork (intra-row parallelism). *)
let map ?jobs f items =
  let n = Array.length items in
  if n = 0 then [||]
  else
    run ?jobs (fun () ->
        let futs = Array.map (fun x -> fork (fun () -> f x)) items in
        Array.mapi
          (fun i fut ->
            match join_result fut with
            | Ok v -> v
            | Error (e, bt) ->
              Printexc.raise_with_backtrace (Worker_failure (i, e)) bt)
          futs)

let map_list ?jobs f items = Array.to_list (map ?jobs f (Array.of_list items))
