(** Deterministic fork-join task scheduler over OCaml 5 domains.

    Work-stealing deques, nested [fork]/[join] futures, and a [map] wrapper
    preserving the slot-ordered / lowest-index-failure semantics of the
    original flat parallel map.  Joined values never depend on scheduling:
    output is byte-identical for any [--jobs N] at any nesting depth
    (DESIGN.md §13 has the full argument). *)

val cores : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val default_jobs : unit -> int
(** [max 1 (cores ())]. *)

val oversubscribed : jobs:int -> bool
(** [jobs > cores ()]: more workers than cores measures scheduling overhead,
    not scaling; benchmark reporters flag such runs. *)

exception Worker_failure of int * exn
(** Raised by {!map} with the item index and original exception of the
    lowest-indexed failing item.  The original backtrace is preserved
    (re-raised with [Printexc.raise_with_backtrace]). *)

type 'a future
(** A task handle.  Created [Pending], claimed exactly once (by a worker, a
    thief, or the joiner itself), resolved to a value or an exception with
    its captured backtrace. *)

val fork : (unit -> 'a) -> 'a future
(** Queue [f] on the current worker's deque.  Outside any pool (jobs=1, or a
    foreign domain) [f] runs inline immediately, so program order is serial
    order and the serial run is the jobs=1 run by construction. *)

val join : 'a future -> 'a
(** Wait for the task's value.  A [Pending] task is claimed and run inline
    by the joiner; while the task runs elsewhere the joiner waits (it never
    runs unrelated tasks while blocked — see the deadlock note in
    [sched.ml]).  Re-raises the task's exception with its original
    backtrace.  Safe to join the same future from several places. *)

val join_result : 'a future -> ('a, exn * Printexc.raw_backtrace) result
(** Like {!join} but reifies failure instead of raising. *)

val run : ?jobs:int -> (unit -> 'a) -> 'a
(** [run ~jobs f] creates a pool of [jobs] workers (the calling domain is
    worker 0; [jobs - 1] domains are spawned), runs [f] inside it so that
    {!fork} distributes work, then shuts the pool down.  [jobs <= 1] runs
    [f] directly with no pool.  Nested [run] calls reuse the ambient pool. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** Apply [f] to every element under a [jobs]-worker pool ([default_jobs ()]
    when omitted).  Results are in item order; on failure the
    lowest-indexed failing item's exception is raised as {!Worker_failure}.
    [jobs] is not clamped to the item count — extra workers steal tasks the
    items fork (intra-row parallelism). *)

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over lists. *)
