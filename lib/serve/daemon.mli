(** The wire: a single-process event loop around {!Engine}.

    One [Unix.select] loop on the calling domain accepts connections and
    speaks the newline-delimited JSON protocol; accepted jobs are forked
    onto the ambient {!Core.Parallel} pool, so {!run} wraps the loop in
    [Core.Parallel.run ~jobs] and the event loop itself is worker 0 (it
    never joins, so the other workers do all flow work; with [jobs = 1]
    each job runs inline at its submit, which keeps the protocol exact but
    serializes the daemon).

    Daemon-level ops the engine does not own:
    - [{"op":"metrics"}] — the {!Obs.Export.prometheus_text} registry as a
      JSON string body; a raw [GET /metrics] request line gets the same
      body as a plain HTTP response (then the connection closes);
    - [{"op":"stream-spans"}] — the connection becomes a span stream: one
      {!Obs.Export.span_json} line per completed span, written through a
      nonblocking fd (a full kernel buffer drops spans and counts them on
      [serve.stream.dropped] rather than stalling a worker);
    - [{"op":"shutdown","drain":bool}] — stop accepting; with [drain]
      (default) join every in-flight job before returning.

    Shutdown leaves the process alive: {!run} simply returns, after
    flushing streaming sinks and closing every fd (and unlinking a Unix
    socket path). *)

type endpoint =
  | Unix_socket of string
  | Tcp of string * int

val endpoint_to_string : endpoint -> string

val run :
  ?config:Engine.config ->
  ?jobs:int ->
  ?stream_trace:string ->
  ?stop:bool Atomic.t ->
  ?ready:(unit -> unit) ->
  endpoint ->
  unit
(** Serve until a shutdown op arrives or [stop] is set (checked a few times
    a second; a [stop] shutdown drains).  [jobs] (default 2) sizes the pool.
    [stream_trace] appends every completed span to FILE as JSON lines,
    flushed per span — tracing is enabled and span buffering turned off, so
    a long-lived daemon does not accumulate spans in memory.  [ready] runs
    once, right after the socket starts listening. *)
