type conn = {
  ic : in_channel;
  oc : out_channel;
  fd : Unix.file_descr;
}

let connect endpoint =
  let fd, addr =
    match endpoint with
    | Daemon.Unix_socket path ->
      (Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0, Unix.ADDR_UNIX path)
    | Daemon.Tcp (host, port) ->
      let inet =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      (Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0,
       Unix.ADDR_INET (inet, port))
  in
  Unix.connect fd addr;
  { ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd; fd }

let close conn = try Unix.close conn.fd with Unix.Unix_error _ -> ()

let request_line conn line =
  match
    output_string conn.oc line;
    output_char conn.oc '\n';
    flush conn.oc;
    input_line conn.ic
  with
  | reply -> Json.parse reply
  | exception End_of_file -> Error "connection closed by daemon"
  | exception Sys_error msg -> Error msg

let request conn doc = request_line conn (Json.to_string doc)

let read_line conn =
  match input_line conn.ic with
  | line -> Some line
  | exception (End_of_file | Sys_error _) -> None

let terminal_states = [ "done"; "failed"; "cancelled"; "timed-out" ]

let wait ?(poll_s = 0.02) conn ~id =
  let status_doc = Json.Obj [ ("op", Json.Str "status"); ("id", Json.Str id) ] in
  let rec poll () =
    match request conn status_doc with
    | Error _ as e -> e
    | Ok reply ->
      (match Json.mem_str "state" reply with
       | Some state when List.mem state terminal_states ->
         request conn
           (Json.Obj [ ("op", Json.Str "result"); ("id", Json.Str id) ])
       | Some _ ->
         Unix.sleepf poll_s;
         poll ()
       | None ->
         Error ("status reply without a state: " ^ Json.to_string reply))
  in
  poll ()

let submit_and_wait ?poll_s conn doc =
  match request conn doc with
  | Error _ as e -> e
  | Ok reply ->
    (match (Json.mem_bool "ok" reply, Json.mem_str "id" reply) with
     | Some true, Some id -> wait ?poll_s conn ~id
     | _, _ -> Ok reply)
