module J = Json

type config = {
  queue_capacity : int;
  max_netlist_bytes : int;
  default_timeout_s : float option;
  retry_after_ms : int;
}

let default_config =
  { queue_capacity = 8;
    max_netlist_bytes = 4 * 1024 * 1024;
    default_timeout_s = None;
    retry_after_ms = 100 }

(* cooperative interruption, raised from the pass-boundary instrument *)
exception Cancelled
exception Deadline_exceeded

type job_state =
  | Queued
  | Running
  | Completed of J.t
  | Failed of string * string  (* protocol error code, detail *)
  | Cancelled_s
  | Timed_out_s

type job_source =
  | Net of {
      key : string;  (* warm-cache key *)
      name : string;
      build : unit -> Netlist.Network.t;
      opts : Protocol.submit_options;
    }
  | Held of bool Atomic.t

type job = {
  id : string;
  source : job_source;
  state : job_state Atomic.t;
  cancel : bool Atomic.t;
  passes : int Atomic.t;  (* pass-boundary crossings seen by the guard *)
  diag : J.t Atomic.t;    (* set once, when the job reaches a terminal state *)
}

type t = {
  config : config;
  lock : Mutex.t;  (* guards [jobs], [nets] and [futures] *)
  jobs : (string, job) Hashtbl.t;
  nets : (string, Netlist.Network.t) Hashtbl.t;  (* pristine, never mutated *)
  futures : unit Core.Parallel.future list ref;
  inflight : int Atomic.t;  (* queued + running *)
  next_id : int Atomic.t;
  lib : Techmap.Genlib.t;   (* warmed parsed cell library *)
}

(* --- metrics ------------------------------------------------------------------------ *)

let m_requests = Obs.Metrics.counter "serve.requests"
let m_accepted = Obs.Metrics.counter "serve.jobs.accepted"
let m_rejected = Obs.Metrics.counter "serve.jobs.rejected"
let m_completed = Obs.Metrics.counter "serve.jobs.completed"
let m_failed = Obs.Metrics.counter "serve.jobs.failed"
let m_cancelled = Obs.Metrics.counter "serve.jobs.cancelled"
let m_timed_out = Obs.Metrics.counter "serve.jobs.timeout"
let m_cache_hits = Obs.Metrics.counter "serve.cache.hits"
let m_cache_misses = Obs.Metrics.counter "serve.cache.misses"
let g_inflight = Obs.Metrics.gauge "serve.inflight"

(* --- construction ------------------------------------------------------------------- *)

let create ?(config = default_config) () =
  { config;
    lock = Mutex.create ();
    jobs = Hashtbl.create 64;
    nets = Hashtbl.create 16;
    futures = ref [];
    inflight = Atomic.make 0;
    next_id = Atomic.make 1;
    lib = Techmap.Genlib.mcnc_lite }

let config eng = eng.config

let inflight eng = Atomic.get eng.inflight

(* --- job execution ------------------------------------------------------------------ *)

let rec root_cause = function
  | Core.Parallel.Worker_failure (_, e) -> root_cause e
  | e -> e

(* The pass-boundary guard: composed before the flow's own instruments, so a
   cancel or blown deadline stops the request before any verifier work runs.
   Raising here unwinds the job task (possibly through nested forked lanes,
   whose [Worker_failure] wrappers [root_cause] strips); every network the
   flow touched is the job's private copy, so shared state stays clean. *)
let guard job ~cancel_after ~deadline =
  let check () =
    let crossed = 1 + Atomic.fetch_and_add job.passes 1 in
    (match cancel_after with
     | Some k when crossed >= k -> Atomic.set job.cancel true
     | Some _ | None -> ());
    if Atomic.get job.cancel then raise Cancelled;
    match deadline with
    | Some d ->
      (* lint-waive: nondet/wall-clock — deadline check; timeouts are inherently wall-clock and never reach the result payload *)
      if Unix.gettimeofday () > d then raise Deadline_exceeded
    | None -> ()
  in
  { Verify.checkpoint = (fun _ _ _ -> check ());
    audited = (fun _ _ _ f -> check (); f ()) }

(* Pristine networks are cached across requests; each request works on its
   own copy.  Both the cache lookup and the copy run under the engine lock:
   [Netlist.Network.copy] reads the source's lazily cached topological
   order, so two unserialized copies of the same pristine net would race. *)
let checkout eng key build =
  Mutex.protect eng.lock (fun () ->
      let pristine =
        match Hashtbl.find_opt eng.nets key with
        | Some net ->
          Obs.Metrics.incr m_cache_hits;
          net
        | None ->
          let net = build () in
          Obs.Metrics.incr m_cache_misses;
          Hashtbl.replace eng.nets key net;
          net
      in
      Netlist.Network.copy pristine)

let stats_json (s : Core.Flow.stats) =
  J.Obj
    [ ("regs", J.Int s.Core.Flow.regs);
      ("clk", J.Float s.Core.Flow.clk);
      ("area", J.Float s.Core.Flow.area) ]

let attempt_json (a : Core.Flow.attempt) =
  J.Obj
    [ ( "stats",
        match a.Core.Flow.stats with
        | Some s -> stats_json s
        | None -> J.Null );
      ("note", J.Str a.Core.Flow.note);
      ("verified", J.Bool a.Core.Flow.verified) ]

(* The deterministic result payload: everything here is a pure function of
   the submitted netlist and options.  [row] is the Table I line rendered by
   the one-shot [table1] binary, byte for byte — the CI smoke test compares
   the two directly. *)
let payload_of_row (row : Core.Flow.row) =
  let proved, refuted, unknown = Eqcheck.counts row.Core.Flow.eqcheck in
  J.Obj
    [ ("row", J.Str (Report.Table.row_to_string row));
      ("circuit", J.Str row.Core.Flow.circuit);
      ("base", stats_json row.Core.Flow.base);
      ("retimed", attempt_json row.Core.Flow.retimed);
      ("resynthesized", attempt_json row.Core.Flow.resynthesized);
      ( "resynthesis",
        match row.Core.Flow.resynth_outcome with
        | Some o ->
          J.Obj
            [ ("applied", J.Bool o.Core.Resynth.applied);
              ("stem_splits", J.Int o.Core.Resynth.stem_splits);
              ("classes", J.Int o.Core.Resynth.equivalence_classes);
              ("moves", J.Int o.Core.Resynth.forward_moves);
              ("simplified_cones", J.Int o.Core.Resynth.simplified_cones) ]
        | None -> J.Null );
      ( "eqcheck",
        J.Obj
          [ ("proved", J.Int proved);
            ("refuted", J.Int refuted);
            ("unknown", J.Int unknown) ] );
      ("verify_diags", J.Int (List.length row.Core.Flow.verify_diags)) ]

let metric_value_json = function
  | Obs.Metrics.Counter i -> J.Int i
  | Obs.Metrics.Gauge f -> J.Float f
  | Obs.Metrics.Histogram h ->
    J.Obj
      [ ("count", J.Int h.Obs.Metrics.count);
        ("sum", J.Int h.Obs.Metrics.sum);
        ("max", J.Int h.Obs.Metrics.max_value) ]
  | Obs.Metrics.Info s -> J.Str s

(* Everything nondeterministic about a request — wall time and the metrics
   window — lands here, never in the result payload. *)
let diag_json job ~t0 snap =
  (* lint-waive: nondet/wall-clock — elapsed time feeds only the diagnostics op *)
  let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  J.Obj
    [ ("elapsed_ms", J.Float elapsed_ms);
      ("passes", J.Int (Atomic.get job.passes));
      ( "metrics",
        J.Obj
          (List.map
             (fun (name, v) -> (name, metric_value_json v))
             (Obs.Metrics.delta snap)) ) ]

let finish eng job state counter =
  Atomic.set job.state state;
  Obs.Metrics.incr counter;
  let left = Atomic.fetch_and_add eng.inflight (-1) - 1 in
  Obs.Metrics.set_gauge g_inflight (float_of_int left)

let run_job eng job =
  Atomic.set job.state Running;
  (* lint-waive: nondet/wall-clock — job start time feeds deadlines and diagnostics only *)
  let t0 = Unix.gettimeofday () in
  let snap = Obs.Metrics.snapshot () in
  match job.source with
  | Held release ->
    while not (Atomic.get release || Atomic.get job.cancel) do
      Domain.cpu_relax ()
    done;
    Atomic.set job.diag (diag_json job ~t0 snap);
    if Atomic.get release then
      finish eng job (Completed (J.Obj [ ("held", J.Bool true) ])) m_completed
    else finish eng job Cancelled_s m_cancelled
  | Net { key; name; build; opts } ->
    let deadline =
      match opts.Protocol.timeout_s with
      | Some s -> Some (t0 +. s)
      | None ->
        (match eng.config.default_timeout_s with
         | Some s -> Some (t0 +. s)
         | None -> None)
    in
    let ins =
      guard job ~cancel_after:opts.Protocol.cancel_after_passes ~deadline
    in
    (try
       let net =
         Obs.Trace.span ~cat:"serve"
           ~args:[ ("request", Obs.Trace.Str job.id) ]
           ("serve/checkout/" ^ name)
           (fun () -> checkout eng key build)
       in
       let row =
         Obs.Trace.span ~cat:"serve"
           ~args:[ ("request", Obs.Trace.Str job.id) ]
           ("serve/flow/" ^ name)
           (fun () ->
             Core.Flow.run_all ~verify:opts.Protocol.verify
               ~verify_each:opts.Protocol.verify_each
               ~eqcheck_each:opts.Protocol.eqcheck_each ~ins ~lib:eng.lib
               ~name net)
       in
       let payload = payload_of_row row in
       Atomic.set job.diag (diag_json job ~t0 snap);
       finish eng job (Completed payload) m_completed
     with e ->
       Atomic.set job.diag (diag_json job ~t0 snap);
       (match root_cause e with
        | Cancelled -> finish eng job Cancelled_s m_cancelled
        | Deadline_exceeded -> finish eng job Timed_out_s m_timed_out
        | Verify.Verification_failed msg ->
          finish eng job (Failed ("verify-failed", msg)) m_failed
        | e ->
          finish eng job (Failed ("flow-error", Printexc.to_string e))
            m_failed))

(* --- admission ---------------------------------------------------------------------- *)

let register_and_fork eng ~id source =
  let id =
    match id with
    | Some id -> id
    | None -> Printf.sprintf "r-%d" (Atomic.fetch_and_add eng.next_id 1)
  in
  let job =
    { id;
      source;
      state = Atomic.make Queued;
      cancel = Atomic.make false;
      passes = Atomic.make 0;
      diag = Atomic.make (J.Obj []) }
  in
  let fresh =
    Mutex.protect eng.lock (fun () ->
        if Hashtbl.mem eng.jobs id then false
        else begin
          Hashtbl.replace eng.jobs id job;
          true
        end)
  in
  if not fresh then
    Protocol.error ~code:"duplicate-id"
      ~detail:(Printf.sprintf "request id %S already exists" id)
  else begin
    Obs.Metrics.incr m_accepted;
    let now = Atomic.fetch_and_add eng.inflight 1 + 1 in
    Obs.Metrics.set_gauge g_inflight (float_of_int now);
    let fut = Core.Parallel.fork (fun () -> run_job eng job) in
    Mutex.protect eng.lock (fun () -> eng.futures := fut :: !(eng.futures));
    Protocol.ok [ ("id", J.Str id); ("state", J.Str "queued") ]
  end

let reject_if_full eng k =
  Obs.Metrics.incr m_requests;
  if Atomic.get eng.inflight >= eng.config.queue_capacity then begin
    Obs.Metrics.incr m_rejected;
    Protocol.error_retry ~code:"queue-full"
      ~detail:
        (Printf.sprintf "%d requests in flight (capacity %d)"
           (Atomic.get eng.inflight) eng.config.queue_capacity)
      ~retry_after_ms:eng.config.retry_after_ms
  end
  else k ()

let submit eng ~id source opts =
  reject_if_full eng @@ fun () ->
  match source with
  | Protocol.Benchmark name ->
    (match Circuits.Suite.unknown_names [ name ] with
     | [] ->
       register_and_fork eng ~id
         (Net
            { key = "bench:" ^ name;
              name;
              build = (fun () -> (Circuits.Suite.find name).Circuits.Suite.build ());
              opts })
     | _ ->
       Obs.Metrics.incr m_rejected;
       Protocol.error ~code:"unknown-benchmark"
         ~detail:
           (Printf.sprintf "no suite entry %S; valid names: %s" name
              (String.concat ", " Circuits.Suite.names)))
  | Protocol.Blif text ->
    (* parse once now for a synchronous structured error; the job's build
       re-parses into the warm cache, so repeat submissions hit it *)
    (match Netlist.Blif.parse_string text with
     | exception Failure msg ->
       Obs.Metrics.incr m_rejected;
       Protocol.error ~code:"parse-error" ~detail:msg
     | parsed ->
       let name = Netlist.Network.model_name parsed in
       let key = "blif:" ^ Digest.to_hex (Digest.string text) in
       register_and_fork eng ~id
         (Net
            { key;
              name;
              build = (fun () -> Netlist.Blif.parse_string text);
              opts }))

let submit_held eng ~id ~release =
  reject_if_full eng @@ fun () -> register_and_fork eng ~id (Held release)

(* --- inspection --------------------------------------------------------------------- *)

let find_job eng id =
  Mutex.protect eng.lock (fun () -> Hashtbl.find_opt eng.jobs id)

let state_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Completed _ -> "done"
  | Failed _ -> "failed"
  | Cancelled_s -> "cancelled"
  | Timed_out_s -> "timed-out"

let with_job eng id k =
  Obs.Metrics.incr m_requests;
  match find_job eng id with
  | None ->
    Protocol.error ~code:"unknown-id"
      ~detail:(Printf.sprintf "no request with id %S" id)
  | Some job -> k job

let status eng id =
  with_job eng id @@ fun job ->
  Protocol.ok
    [ ("id", J.Str id); ("state", J.Str (state_name (Atomic.get job.state))) ]

let result eng id =
  with_job eng id @@ fun job ->
  match Atomic.get job.state with
  | Completed payload -> Protocol.ok [ ("id", J.Str id); ("result", payload) ]
  | Failed (code, detail) -> Protocol.error ~code ~detail
  | Cancelled_s ->
    Protocol.error ~code:"cancelled" ~detail:"the request was cancelled"
  | Timed_out_s ->
    Protocol.error ~code:"timeout" ~detail:"the request exceeded its deadline"
  | (Queued | Running) as s ->
    Protocol.error ~code:"not-ready"
      ~detail:("the request is " ^ state_name s)

let diagnostics eng id =
  with_job eng id @@ fun job ->
  Protocol.ok
    [ ("id", J.Str id);
      ("state", J.Str (state_name (Atomic.get job.state)));
      ("diagnostics", Atomic.get job.diag) ]

let cancel eng id =
  with_job eng id @@ fun job ->
  Atomic.set job.cancel true;
  Protocol.ok
    [ ("id", J.Str id);
      ("state", J.Str (state_name (Atomic.get job.state)));
      ("cancel_requested", J.Bool true) ]

let ping _eng =
  Obs.Metrics.incr m_requests;
  Protocol.ok [ ("pong", J.Bool true) ]

let drain eng =
  let pending = Mutex.protect eng.lock (fun () -> !(eng.futures)) in
  (* tasks never leak exceptions (run_job catches everything), but a drain
     during shutdown must not die on principle either *)
  List.iter (fun f -> ignore (Core.Parallel.join_result f)) (List.rev pending)

let handle eng = function
  | Protocol.Ping -> Some (ping eng)
  | Protocol.Submit { id; source; opts } -> Some (submit eng ~id source opts)
  | Protocol.Status id -> Some (status eng id)
  | Protocol.Result id -> Some (result eng id)
  | Protocol.Diagnostics id -> Some (diagnostics eng id)
  | Protocol.Cancel id -> Some (cancel eng id)
  | Protocol.Metrics | Protocol.Stream_spans | Protocol.Shutdown _ -> None
