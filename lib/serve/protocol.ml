type submit_options = {
  verify : bool;
  verify_each : bool;
  eqcheck_each : bool;
  timeout_s : float option;
  cancel_after_passes : int option;
}

let default_submit_options =
  { verify = true;
    verify_each = false;
    eqcheck_each = false;
    timeout_s = None;
    cancel_after_passes = None }

type source =
  | Benchmark of string
  | Blif of string

type request =
  | Ping
  | Submit of {
      id : string option;
      source : source;
      opts : submit_options;
    }
  | Status of string
  | Result of string
  | Diagnostics of string
  | Cancel of string
  | Metrics
  | Stream_spans
  | Shutdown of { drain : bool }

let error ~code ~detail =
  Json.Obj
    [ ("ok", Json.Bool false);
      ("error", Json.Str code);
      ("detail", Json.Str detail) ]

let error_retry ~code ~detail ~retry_after_ms =
  Json.Obj
    [ ("ok", Json.Bool false);
      ("error", Json.Str code);
      ("detail", Json.Str detail);
      ("retry_after_ms", Json.Int retry_after_ms) ]

let ok fields = Json.Obj (("ok", Json.Bool true) :: fields)

let required_id j =
  match Json.mem_str "id" j with
  | Some id when id <> "" -> Ok id
  | Some _ -> Error ("bad-request", "empty request id")
  | None -> Error ("bad-request", "missing \"id\" field")

let submit_of_json ~max_netlist_bytes j =
  let id =
    match Json.mem_str "id" j with
    | Some "" -> None
    | other -> other
  in
  let opts =
    let d = default_submit_options in
    { verify = Option.value ~default:d.verify (Json.mem_bool "verify" j);
      verify_each =
        Option.value ~default:d.verify_each (Json.mem_bool "verify_each" j);
      eqcheck_each =
        Option.value ~default:d.eqcheck_each (Json.mem_bool "eqcheck_each" j);
      timeout_s = Json.mem_float "timeout_s" j;
      cancel_after_passes = Json.mem_int "cancel_after_passes" j }
  in
  match opts.timeout_s with
  | Some t when t <= 0.0 ->
    Error ("bad-request", "\"timeout_s\" must be positive")
  | _ ->
    (match (Json.mem_str "benchmark" j, Json.mem_str "netlist" j) with
     | Some _, Some _ ->
       Error
         ("bad-request", "\"benchmark\" and \"netlist\" are mutually exclusive")
     | Some name, None ->
       if name = "" then Error ("bad-request", "empty \"benchmark\" name")
       else Ok (Submit { id; source = Benchmark name; opts })
     | None, Some text ->
       if String.length text > max_netlist_bytes then
         Error
           ( "netlist-too-large",
             Printf.sprintf "netlist is %d bytes; the limit is %d"
               (String.length text) max_netlist_bytes )
       else if text = "" then Error ("bad-request", "empty \"netlist\"")
       else Ok (Submit { id; source = Blif text; opts })
     | None, None ->
       Error ("bad-request", "submit needs \"benchmark\" or \"netlist\""))

let request_of_json ~max_netlist_bytes j =
  match Json.mem_str "op" j with
  | None -> Error ("bad-request", "missing \"op\" field")
  | Some op ->
    (match op with
     | "ping" -> Ok Ping
     | "submit" -> submit_of_json ~max_netlist_bytes j
     | "status" -> Result.map (fun id -> Status id) (required_id j)
     | "result" -> Result.map (fun id -> Result id) (required_id j)
     | "diagnostics" -> Result.map (fun id -> Diagnostics id) (required_id j)
     | "cancel" -> Result.map (fun id -> Cancel id) (required_id j)
     | "metrics" -> Ok Metrics
     | "stream-spans" -> Ok Stream_spans
     | "shutdown" ->
       let drain = Option.value ~default:true (Json.mem_bool "drain" j) in
       Ok (Shutdown { drain })
     | other -> Error ("unknown-op", Printf.sprintf "unknown op %S" other))
