type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- printer ------------------------------------------------------------------------ *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_str f)
    | Str s ->
      Buffer.add_char buf '"';
      escape_into buf s;
      Buffer.add_char buf '"'
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          go x)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape_into buf k;
          Buffer.add_string buf "\":";
          go x)
        fields;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* --- parser ------------------------------------------------------------------------- *)

exception Bad of int * string

let max_depth = 64

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> error (Printf.sprintf "expected '%c', found '%c'" c c')
    | None -> error (Printf.sprintf "expected '%c', found end of input" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else error ("invalid literal (expected " ^ word ^ ")")
  in
  let utf8_encode buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then error "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let c = s.[!pos] in
      let d =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | _ -> error "bad hex digit in \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then error "unterminated escape";
         match s.[!pos] with
         | '"' -> Buffer.add_char buf '"'; advance ()
         | '\\' -> Buffer.add_char buf '\\'; advance ()
         | '/' -> Buffer.add_char buf '/'; advance ()
         | 'b' -> Buffer.add_char buf '\b'; advance ()
         | 'f' -> Buffer.add_char buf '\012'; advance ()
         | 'n' -> Buffer.add_char buf '\n'; advance ()
         | 'r' -> Buffer.add_char buf '\r'; advance ()
         | 't' -> Buffer.add_char buf '\t'; advance ()
         | 'u' ->
           advance ();
           utf8_encode buf (hex4 ())
         | c -> error (Printf.sprintf "bad escape '\\%c'" c));
        go ()
      | c when Char.code c < 0x20 -> error "raw control character in string"
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      let saw = ref false in
      while
        !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false
      do
        saw := true;
        advance ()
      done;
      if not !saw then error "malformed number"
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
     | Some ('e' | 'E') ->
       is_float := true;
       advance ();
       (match peek () with Some ('+' | '-') -> advance () | _ -> ());
       digits ()
     | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value depth =
    if depth > max_depth then error "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec elems () =
          items := parse_value (depth + 1) :: !items;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elems ()
          | Some ']' -> advance ()
          | _ -> error "expected ',' or ']' in array"
        in
        elems ();
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          fields := (key, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ()
          | Some '}' -> advance ()
          | _ -> error "expected ',' or '}' in object"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> error (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then error "trailing garbage after document";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) ->
    Error (Printf.sprintf "%s at byte %d" msg at)

(* --- accessors ---------------------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f && Float.abs f <= 1e15 ->
    Some (int_of_float f)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let opt_bind o f = match o with Some x -> f x | None -> None
let mem_str key j = opt_bind (member key j) to_str
let mem_int key j = opt_bind (member key j) to_int
let mem_bool key j = opt_bind (member key j) to_bool
let mem_float key j = opt_bind (member key j) to_float
