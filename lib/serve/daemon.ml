type endpoint =
  | Unix_socket of string
  | Tcp of string * int

let endpoint_to_string = function
  | Unix_socket path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let m_stream_dropped = Obs.Metrics.counter "serve.stream.dropped"
let m_connections = Obs.Metrics.counter "serve.connections"

type conn = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (* partial input line *)
  mutable streaming : bool;
  mutable sink_id : int option;
  mutable closed : bool;
}

(* --- writes ------------------------------------------------------------------------- *)

(* Event-loop writes: ordinary response lines on blocking fds. *)
let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then begin
      let w = Unix.write fd b off (n - off) in
      go (off + w)
    end
  in
  (try go 0 with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ())

(* Streaming-sink writes: called from whichever worker domain completes a
   span, so they must never block the pool.  The subscriber fd is
   nonblocking; once the kernel buffer fills, the rest of the line is
   dropped and counted — a slow span consumer costs spans, not throughput. *)
let write_nonblocking fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off >= n then true
    else
      match Unix.write fd b off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        false
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        false
  in
  go 0

(* --- listening sockets -------------------------------------------------------------- *)

let listen_on = function
  | Unix_socket path ->
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 16;
    fd
  | Tcp (host, port) ->
    let addr =
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found -> Unix.inet_addr_of_string host
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (addr, port));
    Unix.listen fd 16;
    fd

(* --- span streaming ----------------------------------------------------------------- *)

(* One lock orders all streaming writers (socket subscribers and the trace
   file): spans from concurrent domains interleave by line, never by byte. *)
let stream_lock = Mutex.create ()

let subscriber_sink fd =
  { Obs.Trace.on_span =
      (fun s ->
        let line = Obs.Export.span_json s ^ "\n" in
        Mutex.protect stream_lock (fun () ->
            if not (write_nonblocking fd line) then
              Obs.Metrics.incr m_stream_dropped));
    on_flush = (fun () -> ()) }

let file_sink oc =
  { Obs.Trace.on_span =
      (fun s ->
        Mutex.protect stream_lock (fun () ->
            output_string oc (Obs.Export.span_json s);
            output_char oc '\n';
            flush oc));
    on_flush = (fun () -> Mutex.protect stream_lock (fun () -> flush oc)) }

let enable_streaming () =
  Obs.Trace.enable ();
  (* a daemon lives long: deliver spans to sinks, never accumulate them *)
  Obs.Trace.set_buffering false

(* --- request handling --------------------------------------------------------------- *)

let publish_registries () =
  Bdd.publish_stats ();
  Techmap.publish_stats ();
  Sanitize.publish_stats ()

let http_metrics_response () =
  let body = publish_registries (); Obs.Export.prometheus_text () in
  Printf.sprintf
    "HTTP/1.0 200 OK\r\n\
     Content-Type: text/plain; version=0.0.4\r\n\
     Content-Length: %d\r\n\r\n%s"
    (String.length body) body

type loop_state = {
  mutable running : bool;
  mutable drain : bool;
}

let respond conn json = write_all conn.fd (Json.to_string json ^ "\n")

let close_conn conn =
  if not conn.closed then begin
    conn.closed <- true;
    (match conn.sink_id with
     | Some id -> Obs.Trace.remove_sink id
     | None -> ());
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

let handle_line eng state conn line =
  if conn.streaming then ()  (* a span stream is write-only past subscribe *)
  else if String.length line >= 4 && String.sub line 0 4 = "GET " then begin
    write_all conn.fd (http_metrics_response ());
    close_conn conn
  end
  else
    match Json.parse line with
    | Error msg -> respond conn (Protocol.error ~code:"bad-json" ~detail:msg)
    | Ok doc ->
      (match
         Protocol.request_of_json
           ~max_netlist_bytes:(Engine.config eng).Engine.max_netlist_bytes doc
       with
       | Error (code, detail) -> respond conn (Protocol.error ~code ~detail)
       | Ok req ->
         (match Engine.handle eng req with
          | Some resp -> respond conn resp
          | None ->
            (match req with
             | Protocol.Metrics ->
               publish_registries ();
               respond conn
                 (Protocol.ok
                    [ ("body", Json.Str (Obs.Export.prometheus_text ())) ])
             | Protocol.Stream_spans ->
               enable_streaming ();
               respond conn
                 (Protocol.ok [ ("streaming", Json.Bool true) ]);
               Unix.set_nonblock conn.fd;
               conn.streaming <- true;
               conn.sink_id <- Some (Obs.Trace.add_sink (subscriber_sink conn.fd))
             | Protocol.Shutdown { drain } ->
               respond conn
                 (Protocol.ok
                    [ ("shutting_down", Json.Bool true);
                      ("drain", Json.Bool drain) ]);
               state.running <- false;
               state.drain <- drain
             | Protocol.Ping | Protocol.Submit _ | Protocol.Status _
             | Protocol.Result _ | Protocol.Diagnostics _ | Protocol.Cancel _
               ->
               (* unreachable: Engine.handle owns these *)
               respond conn
                 (Protocol.error ~code:"internal"
                    ~detail:"request not dispatched"))))

let drain_lines eng state conn =
  let data = Buffer.contents conn.buf in
  Buffer.clear conn.buf;
  let rec go start =
    match String.index_from_opt data start '\n' with
    | None ->
      Buffer.add_substring conn.buf data start (String.length data - start)
    | Some nl ->
      let line = String.sub data start (nl - start) in
      let line =
        (* tolerate CRLF clients *)
        if line <> "" && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      if line <> "" then handle_line eng state conn line;
      if not conn.closed then go (nl + 1)
  in
  go 0

let read_conn eng state conn =
  let chunk = Bytes.create 65536 in
  match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
  | 0 -> close_conn conn
  | n ->
    Buffer.add_subbytes conn.buf chunk 0 n;
    drain_lines eng state conn
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
    close_conn conn

(* --- the event loop ----------------------------------------------------------------- *)

let event_loop eng ~listen_fd ~stop ~ready =
  let state = { running = true; drain = true } in
  let conns = ref [] in
  (match ready with Some f -> f () | None -> ());
  while
    state.running
    && not (match stop with Some s -> Atomic.get s | None -> false)
  do
    conns := List.filter (fun c -> not c.closed) !conns;
    let watched = listen_fd :: List.map (fun c -> c.fd) !conns in
    match Unix.select watched [] [] 0.2 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
      List.iter
        (fun fd ->
          if fd == listen_fd then begin
            match Unix.accept listen_fd with
            | client, _ ->
              Obs.Metrics.incr m_connections;
              conns :=
                { fd = client;
                  buf = Buffer.create 256;
                  streaming = false;
                  sink_id = None;
                  closed = false }
                :: !conns
            | exception Unix.Unix_error _ -> ()
          end
          else
            match List.find_opt (fun c -> c.fd == fd && not c.closed) !conns with
            | Some conn -> read_conn eng state conn
            | None -> ())
        readable
  done;
  if state.drain then Engine.drain eng;
  Obs.Trace.flush_sinks ();
  List.iter close_conn !conns

let run ?config ?(jobs = 2) ?stream_trace ?stop ?ready endpoint =
  (* a client vanishing mid-write must cost an EPIPE, not the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  Obs.Metrics.enable ();
  let eng = Engine.create ?config () in
  let trace_channel =
    match stream_trace with
    | None -> None
    | Some file ->
      enable_streaming ();
      let oc = open_out file in
      let id = Obs.Trace.add_sink (file_sink oc) in
      Some (id, oc)
  in
  let listen_fd = listen_on endpoint in
  let finish () =
    (try Unix.close listen_fd with Unix.Unix_error _ -> ());
    (match endpoint with
     | Unix_socket path ->
       (try Unix.unlink path with Unix.Unix_error _ -> ())
     | Tcp _ -> ());
    match trace_channel with
    | Some (id, oc) ->
      Obs.Trace.remove_sink id;
      flush oc;
      close_out oc
    | None -> ()
  in
  match
    Core.Parallel.run ~jobs (fun () -> event_loop eng ~listen_fd ~stop ~ready)
  with
  | () -> finish ()
  | exception e ->
    finish ();
    raise e
