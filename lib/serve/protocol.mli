(** The daemon's newline-delimited JSON request grammar.

    One request per line, one response line per request (span-stream
    subscriptions additionally receive unsolicited span lines).  Every
    response is a JSON object with an ["ok"] boolean; errors carry a
    stable ["error"] code plus a human ["detail"].  DESIGN.md §16 has the
    full grammar and the request state machine.

    This module only classifies and validates request documents — it holds
    no daemon state, so the unit tests can exercise the whole grammar
    without a socket. *)

type submit_options = {
  verify : bool;        (** sequential-equivalence check of flow results *)
  verify_each : bool;   (** static verifier at every pass boundary *)
  eqcheck_each : bool;  (** semantic equivalence analyzer at boundaries *)
  timeout_s : float option;
      (** per-request wall-clock budget, checked at pass boundaries *)
  cancel_after_passes : int option;
      (** test hook: self-cancel after N checkpoint crossings, exercising
          the mid-flow cancellation path deterministically *)
}

val default_submit_options : submit_options

type source =
  | Benchmark of string  (** a suite circuit, by name *)
  | Blif of string       (** an inline BLIF netlist *)

type request =
  | Ping
  | Submit of {
      id : string option;  (** client-chosen id; server assigns otherwise *)
      source : source;
      opts : submit_options;
    }
  | Status of string
  | Result of string
  | Diagnostics of string
  | Cancel of string
  | Metrics
  | Stream_spans
  | Shutdown of { drain : bool }

val request_of_json :
  max_netlist_bytes:int -> Json.t -> (request, string * string) result
(** Classify a parsed request document; [Error (code, detail)] uses the
    protocol error codes (["bad-request"], ["unknown-op"],
    ["netlist-too-large"], ...). *)

val error : code:string -> detail:string -> Json.t
(** [{"ok": false, "error": code, "detail": detail}]. *)

val error_retry : code:string -> detail:string -> retry_after_ms:int -> Json.t
(** {!error} plus a ["retry_after_ms"] backoff hint (queue-full
    rejection). *)

val ok : (string * Json.t) list -> Json.t
(** [{"ok": true, ...fields}]. *)
