(** Minimal JSON codec for the newline-delimited daemon protocol.

    Zero dependencies, by the same policy as the rest of the tree: the
    exporters in {!Obs.Export} print JSON by hand, and this is the reader
    side.  The printer emits compact single-line documents with object
    fields in the order given, so responses built from the same data are
    byte-identical — the protocol's determinism contract rests on that.

    The parser is a plain recursive-descent over the byte string with a
    nesting-depth cap, so adversarial input fails with a structured error
    instead of a stack overflow.  Unicode escapes decode to UTF-8;
    numbers without [.], [e] or [E] parse as [Int], everything else as
    [Float]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** [Error msg] carries a byte-offset-annotated reason.  Trailing
    whitespace is accepted; trailing garbage is an error. *)

val to_string : t -> string
(** Compact single-line rendering; no trailing newline.  Object field
    order is preserved. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on missing field or non-object. *)

val to_str : t -> string option
val to_int : t -> int option
(** [Int] directly; integral [Float]s convert. *)

val to_bool : t -> bool option
val to_float : t -> float option
(** [Float] or [Int]. *)

val mem_str : string -> t -> string option
val mem_int : string -> t -> int option
val mem_bool : string -> t -> bool option
val mem_float : string -> t -> float option
(** [mem_* f j] = accessor composed with {!member}. *)
