(** Socket-free serving core: request lifecycle over the fork-join pool.

    One engine serves many requests from warmed shared state — the parsed
    genlib, a keyed cache of pristine parsed/built networks (each request
    flows over its own {!Netlist.Network.copy}), and the process-wide shared
    BDD unique table.  Admission is bounded: past [queue_capacity] in-flight
    jobs a submit is rejected with a [retry_after_ms] hint instead of
    queueing unboundedly.  Each accepted job runs as one task on the ambient
    {!Core.Parallel} pool; cancellation and deadlines are cooperative,
    checked at every pass boundary through the {!Core.Flow.run_all} [?ins]
    instrument, so a cancelled flow stops at the next boundary without
    poisoning any shared state.

    The engine holds no socket and spawns no domain of its own, so the
    whole lifecycle is unit-testable in-process; {!Daemon} adds the wire. *)

type config = {
  queue_capacity : int;      (** max in-flight (queued + running) jobs *)
  max_netlist_bytes : int;   (** submit-side inline-BLIF size cap *)
  default_timeout_s : float option;
      (** deadline applied when a submit names none; [None] = unlimited *)
  retry_after_ms : int;      (** backoff hint on queue-full rejection *)
}

val default_config : config
(** capacity 8, 4 MiB netlists, no default timeout, retry after 100 ms. *)

type t

val create : ?config:config -> unit -> t

val config : t -> config

val handle : t -> Protocol.request -> Json.t option
(** Serve one classified request; [None] for the daemon-level ops
    ([Metrics], [Stream_spans], [Shutdown]) the engine does not own. *)

val submit :
  t -> id:string option -> Protocol.source -> Protocol.submit_options ->
  Json.t
(** Validate (benchmark name / BLIF parse / size), then either reject with
    [queue-full] + [retry_after_ms], fail with a structured error, or fork
    the job and answer [{"ok":true,"id":...,"state":"queued"}].  Admission
    must stay single-threaded (the daemon's event loop): the
    capacity check-then-fork is not atomic against concurrent submitters. *)

val submit_held : t -> id:string option -> release:bool Atomic.t -> Json.t
(** Test hook: a job that occupies an in-flight slot, spinning until
    [release] (or its own cancel flag) is set.  Deterministic backpressure
    without wall-clock sleeps; never produced by the wire protocol. *)

val status : t -> string -> Json.t
val result : t -> string -> Json.t
val diagnostics : t -> string -> Json.t
(** Nondeterministic per-request accounting — elapsed time, pass-boundary
    count, {!Obs.Metrics.delta} over the job's window — kept out of
    {!result} so result payloads stay byte-deterministic. *)

val cancel : t -> string -> Json.t
(** Sets the job's cancel flag; a queued or running job stops at its next
    pass boundary.  Terminal jobs are unaffected (the response reports the
    state either way). *)

val ping : t -> Json.t

val inflight : t -> int

val drain : t -> unit
(** Join every job ever forked (terminal joins are free).  Call from the
    daemon thread during graceful shutdown, never from a pool task. *)
