(** Blocking client for the daemon protocol: one request line out, one
    response line back.  Used by the [resynthd client] mode, the serve
    benchmark and the protocol tests; never call it from a pool task (it
    sleeps between polls). *)

type conn

val connect : Daemon.endpoint -> conn
(** Raises [Unix.Unix_error] when nothing is listening. *)

val close : conn -> unit

val request : conn -> Json.t -> (Json.t, string) result
(** Send one document, read one response line; [Error] on a dropped
    connection or an unparsable response. *)

val request_line : conn -> string -> (Json.t, string) result
(** {!request} with a raw preformatted line — the tests use it to send
    deliberately malformed documents. *)

val read_line : conn -> string option
(** Read one raw line without sending anything; [None] once the daemon
    closes the connection.  For consuming a span stream after a
    [stream-spans] subscription. *)

val wait : ?poll_s:float -> conn -> id:string -> (Json.t, string) result
(** Poll [status] until the request is terminal (default every 20 ms), then
    fetch and return the [result] response — which carries the job's own
    error code when the job failed, was cancelled or timed out. *)

val submit_and_wait :
  ?poll_s:float -> conn -> Json.t -> (Json.t, string) result
(** Submit (the document must be a [submit] op), then {!wait} on the id the
    daemon acknowledged.  A rejected submit returns the rejection
    response. *)
