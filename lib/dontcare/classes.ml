module N = Netlist.Network

(* Union-find keyed by latch node id. *)
type t = { parent : (int, int) Hashtbl.t }

let create () = { parent = Hashtbl.create 16 }

let rec find t id =
  match Hashtbl.find_opt t.parent id with
  | None | Some (-1) -> id
  | Some p ->
    let root = find t p in
    if root <> p then Hashtbl.replace t.parent id root;
    root

let union t a b =
  let ra = find t a and rb = find t b in
  if ra <> rb then begin
    let keep = min ra rb and other = max ra rb in
    if not (Hashtbl.mem t.parent keep) then Hashtbl.replace t.parent keep (-1);
    Hashtbl.replace t.parent other keep
  end
  else if not (Hashtbl.mem t.parent ra) then Hashtbl.replace t.parent ra (-1)

let declare_equal t a b =
  assert (N.is_latch a && N.is_latch b);
  union t a.N.id b.N.id

let declare_class t nodes =
  match nodes with
  | [] -> ()
  | first :: rest -> List.iter (fun n -> declare_equal t first n) rest

let are_equal t a b =
  a.N.id = b.N.id
  || (Hashtbl.mem t.parent a.N.id && find t a.N.id = find t b.N.id)

let representative t n = find t n.N.id

let classes t =
  let by_root = Hashtbl.create 16 in
  (* lint-waive: nondet/hashtbl-order — grouping is commutative: members
     accumulate per root in any order and each group is sorted below. *)
  Hashtbl.iter
    (fun id _ ->
      let root = find t id in
      let members =
        match Hashtbl.find_opt by_root root with Some m -> m | None -> []
      in
      Hashtbl.replace by_root root (id :: members))
    t.parent;
  (* lint-waive: nondet/hashtbl-order — each class is sorted; the class
     list itself follows the table layout, which is fixed for a fixed
     insertion sequence (unseeded hashing, deterministic node order) and
     pinned by the resynthesis suite results. *)
  Hashtbl.fold
    (fun _ members acc ->
      if List.length members > 1 then List.sort compare members :: acc else acc)
    by_root []

let dc_cover t ~nvars ~var_of_latch =
  let cubes = ref [] in
  let add_pair va vb =
    let xor_cube la lb =
      let c = Logic.Cube.universe nvars in
      Logic.Cube.set c va la;
      Logic.Cube.set c vb lb;
      c
    in
    cubes := xor_cube Logic.Cube.One Logic.Cube.Zero :: !cubes;
    cubes := xor_cube Logic.Cube.Zero Logic.Cube.One :: !cubes
  in
  List.iter
    (fun members ->
      let vars = List.filter_map var_of_latch members in
      let rec pairs = function
        | [] | [ _ ] -> ()
        | v :: rest ->
          List.iter (fun w -> add_pair v w) rest;
          pairs rest
      in
      pairs vars)
    (classes t);
  Logic.Cover.make nvars !cubes

let drop_dead t ~alive =
  let dead =
    (* lint-waive: nondet/hashtbl-order — only emptiness is consumed. *)
    Hashtbl.fold (fun id _ acc -> if alive id then acc else id :: acc) t.parent []
  in
  (* rebuild the table without dead members (roots may need re-election) *)
  if dead <> [] then begin
    let groups = classes t in
    Hashtbl.clear t.parent;
    List.iter
      (fun members ->
        let live = List.filter alive members in
        match live with
        | [] | [ _ ] -> ()
        | first :: rest ->
          Hashtbl.replace t.parent first (-1);
          List.iter (fun id -> Hashtbl.replace t.parent id first) rest)
      groups
  end
