module N = Netlist.Network

type collapsed = {
  root : N.node;
  leaves : N.node array;
  cover : Logic.Cover.t;
}

exception Cone_too_wide of int

let collapse ?(max_leaves = 14) net root =
  assert (N.is_logic root);
  let leaves = N.cone_leaves net root in
  let leaves =
    List.filter
      (fun n -> match n.N.kind with
         | N.Const _ -> false
         | N.Input | N.Latch _ -> true
         | N.Logic _ -> assert false)
      leaves
  in
  let nvars = List.length leaves in
  if nvars > max_leaves then raise (Cone_too_wide nvars);
  let leaves = Array.of_list leaves in
  let var_of = Hashtbl.create 16 in
  Array.iteri (fun i n -> Hashtbl.add var_of n.N.id i) leaves;
  (* Build the cone's function as a BDD over the leaf variables, then read a
     cover off the 1-paths.  The scope is per-cone (variable index [i] means
     a different leaf in every cone) but the nodes land in the process-wide
     shared table, so structurally equal cones — ubiquitous across windows
     and suite rows — cost probes instead of fresh allocations. *)
  let man = Bdd.create () in
  let values = Hashtbl.create 64 in
  let rec value_of id =
    match Hashtbl.find_opt values id with
    | Some v -> v
    | None ->
      let n = N.node net id in
      let v =
        match n.N.kind with
        | N.Input | N.Latch _ -> Bdd.var man (Hashtbl.find var_of id)
        | N.Const b -> if b then Bdd.btrue else Bdd.bfalse
        | N.Logic cover ->
          let fanins = Array.map value_of n.N.fanins in
          let cube_bdd cube =
            let acc = ref Bdd.btrue in
            Logic.Cube.iteri
              (fun i l ->
                match l with
                | Logic.Cube.One -> acc := Bdd.band man !acc fanins.(i)
                | Logic.Cube.Zero ->
                  acc := Bdd.band man !acc (Bdd.bnot man fanins.(i))
                | Logic.Cube.Both -> ())
              cube;
            !acc
          in
          List.fold_left
            (fun acc c -> Bdd.bor man acc (cube_bdd c))
            Bdd.bfalse cover.Logic.Cover.cubes
      in
      Hashtbl.add values id v;
      v
  in
  let cover = Bdd.to_cover man ~nvars (value_of root.N.id) in
  { root; leaves; cover }

let rebuild net collapsed new_cover =
  let leaf_list = Array.to_list collapsed.leaves in
  N.set_function net collapsed.root new_cover leaf_list;
  N.sweep net

let simplify_root ?(max_leaves = 14) ~dc_for net root =
  match collapse ~max_leaves net root with
  | exception Cone_too_wide _ -> false
  | collapsed ->
    let dc = dc_for ~leaves:collapsed.leaves in
    let minimized = Logic.Minimize.minimize ~dc collapsed.cover in
    let better =
      Logic.Cover.lit_count minimized < Logic.Cover.lit_count collapsed.cover
      || Logic.Cover.size minimized < Logic.Cover.size collapsed.cover
    in
    if better then begin
      rebuild net collapsed minimized;
      true
    end
    else false
