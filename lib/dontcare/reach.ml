module N = Netlist.Network

exception Too_large of string

type result = {
  latch_order : N.node list;
  reachable : Logic.Cover.t;
  unreachable : Logic.Cover.t;
  num_reachable : float;
}

(* Variable layout: primary inputs first, then present-state variables, then
   next-state variables. *)
let unreachable_states ?(max_latches = 24) ?(max_bdd_nodes = 2_000_000) net =
  let latches = N.latches net in
  let nlatch = List.length latches in
  if nlatch = 0 then
    raise (Too_large "no latches: no state space to enumerate");
  if nlatch > max_latches then
    raise (Too_large (Printf.sprintf "%d latches" nlatch));
  let pis = N.inputs net in
  let npi = List.length pis in
  (* a scope on the shared table: [Bdd.node_count] below charges only this
     traversal, so the node budget is independent of whatever other rows or
     domains have already built *)
  let man = Bdd.create () in
  let ps_var = Hashtbl.create 16 in
  List.iteri (fun j l -> Hashtbl.add ps_var l.N.id (npi + j)) latches;
  let pi_var = Hashtbl.create 16 in
  List.iteri (fun i p -> Hashtbl.add pi_var p.N.id i) pis;
  (* combinational node values *)
  let values = Hashtbl.create 256 in
  List.iter
    (fun p -> Hashtbl.add values p.N.id (Bdd.var man (Hashtbl.find pi_var p.N.id)))
    pis;
  List.iter
    (fun l -> Hashtbl.add values l.N.id (Bdd.var man (Hashtbl.find ps_var l.N.id)))
    latches;
  List.iter
    (fun n ->
      match n.N.kind with
      | N.Const b -> Hashtbl.add values n.N.id (if b then Bdd.btrue else Bdd.bfalse)
      | N.Input | N.Latch _ | N.Logic _ -> ())
    (N.all_nodes net);
  List.iter
    (fun n ->
      let fanins = Array.map (fun f -> Hashtbl.find values f) n.N.fanins in
      let cover = N.cover_of n in
      let cube_bdd cube =
        let acc = ref Bdd.btrue in
        Logic.Cube.iteri
          (fun i l ->
            match l with
            | Logic.Cube.One -> acc := Bdd.band man !acc fanins.(i)
            | Logic.Cube.Zero -> acc := Bdd.band man !acc (Bdd.bnot man fanins.(i))
            | Logic.Cube.Both -> ())
          cube;
        !acc
      in
      let v =
        List.fold_left
          (fun acc c -> Bdd.bor man acc (cube_bdd c))
          Bdd.bfalse cover.Logic.Cover.cubes
      in
      Hashtbl.add values n.N.id v;
      if Bdd.node_count man > max_bdd_nodes then
        raise (Too_large "BDD blow-up while building transition functions"))
    (N.topo_combinational net);
  (* transition relation over ns variables *)
  let ns_base = npi + nlatch in
  let transition = ref Bdd.btrue in
  List.iteri
    (fun j l ->
      let f = Hashtbl.find values (N.latch_data net l).N.id in
      transition :=
        Bdd.band man !transition
          (Bdd.bxnor man (Bdd.var man (ns_base + j)) f))
    latches;
  (* initial state set *)
  let init = ref Bdd.btrue in
  List.iter
    (fun l ->
      let v = Bdd.var man (Hashtbl.find ps_var l.N.id) in
      match N.latch_init l with
      | N.I0 -> init := Bdd.band man !init (Bdd.bnot man v)
      | N.I1 -> init := Bdd.band man !init v
      | N.Ix -> ())
    latches;
  let pi_vars = List.init npi Fun.id in
  let ps_vars = List.init nlatch (fun j -> npi + j) in
  let image r =
    let after = Bdd.and_exists man (pi_vars @ ps_vars) !transition r in
    Bdd.rename man after (fun v -> v - nlatch)
  in
  let rec fixpoint reached frontier =
    if Bdd.node_count man > max_bdd_nodes then
      raise (Too_large "BDD blow-up during reachability");
    let next = image frontier in
    let fresh = Bdd.band man next (Bdd.bnot man reached) in
    if Bdd.is_false fresh then reached
    else fixpoint (Bdd.bor man reached fresh) fresh
  in
  let reached = fixpoint !init !init in
  (* express over latch variables 0..nlatch-1 *)
  let shifted = Bdd.rename man reached (fun v -> v - npi) in
  let cover_of f =
    try Bdd.to_cover ~max_cubes:20_000 man ~nvars:nlatch f
    with Bdd.Cover_too_large ->
      raise (Too_large "reachable-set cover explosion")
  in
  let reachable = cover_of shifted in
  let unreachable = cover_of (Bdd.bnot man shifted) in
  { latch_order = latches;
    reachable;
    unreachable;
    num_reachable = Bdd.sat_count man ~nvars:nlatch shifted }

let simplify_with_unreachable ?(max_latches = 24) ?(max_leaves = 14) net =
  match unreachable_states ~max_latches net with
  | exception Too_large _ -> 0
  | r ->
    let latch_var = Hashtbl.create 16 in
    List.iteri (fun j l -> Hashtbl.add latch_var l.N.id j) r.latch_order;
    (* DC for a cone: unreachable patterns over the cone's latch leaves; we
       existentially project the unreachable set is NOT sound, so instead we
       keep only unreachable cubes whose support lies within the cone's
       leaves (those patterns never occur regardless of the other latches'
       values requires universal projection). *)
    let dc_for ~leaves =
      let nvars = Array.length leaves in
      let var_in_cone = Hashtbl.create 8 in
      Array.iteri
        (fun i leaf ->
          match Hashtbl.find_opt latch_var leaf.N.id with
          | Some j -> Hashtbl.add var_in_cone j i
          | None -> ())
        leaves;
      (* universal projection: a pattern over cone latches is impossible iff
         every completion is unreachable, i.e. it belongs to every cube? We
         approximate from the cube list: keep unreachable cubes whose
         support is within the cone's latch variables, rename to cone
         numbering.  Cube semantics make this sound: such a cube asserts
         unreachability for all completions. *)
      let usable =
        List.filter
          (fun cube ->
            let ok = ref true in
            Logic.Cube.iteri
              (fun v l ->
                if l <> Logic.Cube.Both && not (Hashtbl.mem var_in_cone v) then
                  ok := false)
              cube;
            !ok)
          r.unreachable.Logic.Cover.cubes
      in
      let renamed =
        List.map
          (fun cube ->
            let c = Logic.Cube.universe nvars in
            Logic.Cube.iteri
              (fun v l ->
                if l <> Logic.Cube.Both then
                  Logic.Cube.set c (Hashtbl.find var_in_cone v) l)
              cube;
            c)
          usable
      in
      Logic.Cover.make nvars renamed
    in
    let rebuilt = ref 0 in
    let targets =
      List.map (fun l -> N.latch_data net l) (N.latches net)
      @ List.map snd (N.outputs net)
    in
    let seen = Hashtbl.create 16 in
    List.iter
      (fun n ->
        match N.node_opt net n.N.id with
        | Some n when N.is_logic n && not (Hashtbl.mem seen n.N.id) ->
          Hashtbl.add seen n.N.id ();
          if Cone.simplify_root ~max_leaves ~dc_for net n then incr rebuilt
        | Some _ | None -> ())
      targets;
    !rebuilt
