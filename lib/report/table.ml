let header =
  let line = String.make 86 '-' in
  Printf.sprintf
    "%s\n%-8s | %21s | %21s | %21s\n%-8s | %6s %6s %7s | %6s %6s %7s | %6s %6s %7s\n%s"
    line "" "Script.delay" "+Retiming+Comb.Opt." "+Resynthesis" "Circuit"
    "Reg." "Clk." "Area" "Reg." "Clk." "Area" "Reg." "Clk." "Area" line

let stats_cells = function
  | Some s ->
    Printf.sprintf "%6d %6.2f %7.1f" s.Core.Flow.regs s.Core.Flow.clk
      s.Core.Flow.area
  | None -> Printf.sprintf "%6s %6s %7s" "-" "-" "-"

let row_to_string row =
  Printf.sprintf "%-8s | %s | %s | %s" row.Core.Flow.circuit
    (stats_cells (Some row.Core.Flow.base))
    (stats_cells row.Core.Flow.retimed.Core.Flow.stats)
    (stats_cells row.Core.Flow.resynthesized.Core.Flow.stats)

let render rows =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (row_to_string row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.add_string buf (String.make 86 '-');
  Buffer.add_char buf '\n';
  (* footnotes *)
  List.iter
    (fun row ->
      let note which (a : Core.Flow.attempt) =
        if a.Core.Flow.stats = None then
          Buffer.add_string buf
            (Printf.sprintf "  %s: %s failed/declined: %s\n"
               row.Core.Flow.circuit which a.Core.Flow.note)
        else if not a.Core.Flow.verified then
          Buffer.add_string buf
            (Printf.sprintf "  %s: %s NOT VERIFIED\n" row.Core.Flow.circuit
               which)
      in
      note "retiming" row.Core.Flow.retimed;
      note "resynthesis" row.Core.Flow.resynthesized;
      match row.Core.Flow.resynth_outcome with
      | Some o when o.Core.Resynth.applied ->
        Buffer.add_string buf
          (Printf.sprintf
             "  %s: resynthesis: %d stem splits, %d classes, %d moves, %d \
              cones simplified by DC_ret\n"
             row.Core.Flow.circuit o.Core.Resynth.stem_splits
             o.Core.Resynth.equivalence_classes o.Core.Resynth.forward_moves
             o.Core.Resynth.simplified_cones)
      | Some _ | None -> ())
    rows;
  Buffer.contents buf

let summary rows =
  let ratios field =
    List.filter_map
      (fun row ->
        match
          ( row.Core.Flow.retimed.Core.Flow.stats,
            row.Core.Flow.resynthesized.Core.Flow.stats )
        with
        | Some r, Some x ->
          let a = field x and b = field r in
          if b > 0.0 then Some (a /. b) else None
        | _, _ -> None)
      rows
  in
  let mean = function
    | [] -> nan
    | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
  in
  let count pred = List.length (List.filter pred rows) in
  let retime_failed =
    count (fun r -> r.Core.Flow.retimed.Core.Flow.stats = None)
  in
  let resynth_declined =
    count (fun r -> r.Core.Flow.resynthesized.Core.Flow.stats = None)
  in
  Printf.sprintf
    "rows: %d | retiming failed: %d | resynthesis declined: %d\n\
     on rows where both applied - resynthesis vs retiming:\n\
     mean register ratio: %.3f | mean clock ratio: %.3f | mean area ratio: \
     %.3f\n"
    (List.length rows) retime_failed resynth_declined
    (mean (ratios (fun s -> float_of_int s.Core.Flow.regs)))
    (mean (ratios (fun s -> s.Core.Flow.clk)))
    (mean (ratios (fun s -> s.Core.Flow.area)))

(* [jobs] > 1 runs the rows on a [jobs]-worker fork-join pool; every row
   builds its own network and timers from its entry's fixed seed, and its
   BDD scopes all point at the process-wide shared unique table, which dedups
   node structure across rows and domains.  Parallelism is no longer
   row-granular only: inside a row, eqcheck boundary checks, verify rule
   groups and the two verification lanes are forked as nested tasks that any
   idle worker steals — so extra workers help even on a single slow row.
   Rows stay independent — scope accounting makes node budgets blind to
   table warmth — so the joined output is byte-identical to a serial run.

   [run_suite_timed] additionally reports each row's wall-clock seconds (in
   entry order); timings never influence the rows themselves.  Benchmarks
   use them for slowest-row / critical-path accounting. *)
let run_suite_timed ?(verify = true) ?(verify_each = false)
    ?(eqcheck_each = false) ?eqcheck_options ?resynth_options ?names
    ?(jobs = 1) () =
  let entries =
    match names with
    | None -> Circuits.Suite.entries
    | Some ns -> List.map Circuits.Suite.find ns
  in
  let timed_rows =
    Core.Parallel.map_list ~jobs
      (fun e ->
        Obs.Trace.span ~cat:"suite"
          ~args:[ ("circuit", Obs.Trace.Str e.Circuits.Suite.name) ]
          ("row/" ^ e.Circuits.Suite.name)
          (fun () ->
            let t0 = Unix.gettimeofday () in (* lint-waive: nondet/wall-clock — per-row seconds feed only the bench timing report *)
            let net = e.Circuits.Suite.build () in
            let row =
              Core.Flow.run_all ~verify ~verify_each ~eqcheck_each
                ?eqcheck_options ?resynth_options ~name:e.Circuits.Suite.name
                net
            in
            (* lint-waive: nondet/wall-clock — measurement only, as above. *)
            (row, (e.Circuits.Suite.name, Unix.gettimeofday () -. t0))))
      entries
  in
  (List.map fst timed_rows, List.map snd timed_rows)

let run_suite ?verify ?verify_each ?eqcheck_each ?eqcheck_options
    ?resynth_options ?names ?jobs () =
  fst
    (run_suite_timed ?verify ?verify_each ?eqcheck_each ?eqcheck_options
       ?resynth_options ?names ?jobs ())

let eqcheck_records rows = List.concat_map (fun r -> r.Core.Flow.eqcheck) rows

let eqcheck_summary rows =
  let proved, refuted, unknown = Eqcheck.counts (eqcheck_records rows) in
  Printf.sprintf
    "eqcheck: %d pass verdicts - %d proved, %d refuted, %d unknown\n"
    (proved + refuted + unknown)
    proved refuted unknown
