(** Rendering of Table I and per-row annotations. *)

val header : string
(** Column header lines matching the paper's Table I layout. *)

val row_to_string : Core.Flow.row -> string

val render : Core.Flow.row list -> string
(** Full table plus footnote annotations (failures, guard events). *)

val summary : Core.Flow.row list -> string
(** Aggregate comparison: average ratios of the resynthesis flow vs. the
    retiming flow (the paper's headline claim). *)

val run_suite :
  ?verify:bool -> ?verify_each:bool -> ?eqcheck_each:bool ->
  ?eqcheck_options:Eqcheck.options ->
  ?resynth_options:Core.Resynth.options ->
  ?names:string list -> ?jobs:int -> unit -> Core.Flow.row list
(** Run the three flows over the benchmark suite (all entries by default).
    [jobs] (default 1) sizes the fork-join worker pool; each row builds
    its own network and BDD managers from a fixed per-entry seed, so the
    result list is identical for every [jobs] value.  Workers left idle by
    the row-level split steal intra-row tasks (eqcheck boundary checks,
    verify rule groups, verification lanes), so [jobs] larger than the row
    count still helps.  [verify_each] runs the netlist verifier after every
    named pass of every flow, failing fast with
    [Verify.Verification_failed] (see {!Core.Flow.run_all}).  [eqcheck_each]
    collects per-pass semantic equivalence verdicts in each row. *)

val run_suite_timed :
  ?verify:bool -> ?verify_each:bool -> ?eqcheck_each:bool ->
  ?eqcheck_options:Eqcheck.options ->
  ?resynth_options:Core.Resynth.options ->
  ?names:string list -> ?jobs:int -> unit ->
  Core.Flow.row list * (string * float) list
(** {!run_suite} plus per-row wall-clock seconds in entry order (benchmarks
    use them for slowest-row / critical-path accounting); the timings never
    influence the rows. *)

val eqcheck_records : Core.Flow.row list -> Eqcheck.record list
(** All per-pass eqcheck records of the rows, in row order. *)

val eqcheck_summary : Core.Flow.row list -> string
(** One line: verdict counts across all rows. *)
