module N = Netlist.Network

type error =
  | Not_retimable of string
  | No_initial_state of string

let error_message = function
  | Not_retimable msg -> "not retimable: " ^ msg
  | No_initial_state msg -> "no initial state: " ^ msg

let tri_of_init = function
  | N.I0 -> Sim.Simulate.T0
  | N.I1 -> Sim.Simulate.T1
  | N.Ix -> Sim.Simulate.Tx

let init_of_tri = function
  | Sim.Simulate.T0 -> N.I0
  | Sim.Simulate.T1 -> N.I1
  | Sim.Simulate.Tx -> N.Ix

(* 3-valued evaluation of a cover on a point of initial values. *)
let eval_inits cover inits =
  let eval_cube cube =
    let result = ref Sim.Simulate.T1 in
    Logic.Cube.iteri
      (fun v l ->
        match l, inits.(v) with
        | Logic.Cube.Both, _ -> ()
        | Logic.Cube.One, Sim.Simulate.T1 | Logic.Cube.Zero, Sim.Simulate.T0 ->
          ()
        | Logic.Cube.One, Sim.Simulate.T0 | Logic.Cube.Zero, Sim.Simulate.T1 ->
          result := Sim.Simulate.T0
        | (Logic.Cube.One | Logic.Cube.Zero), Sim.Simulate.Tx ->
          if !result = Sim.Simulate.T1 then result := Sim.Simulate.Tx)
      cube;
    !result
  in
  List.fold_left
    (fun acc cube ->
      match acc, eval_cube cube with
      | Sim.Simulate.T1, _ | _, Sim.Simulate.T1 -> Sim.Simulate.T1
      | Sim.Simulate.Tx, _ | _, Sim.Simulate.Tx -> Sim.Simulate.Tx
      | Sim.Simulate.T0, Sim.Simulate.T0 -> Sim.Simulate.T0)
    Sim.Simulate.T0 cover.Logic.Cover.cubes

let is_forward_retimable net v =
  N.is_logic v
  && Array.length v.N.fanins > 0
  && Array.for_all (fun f -> N.is_latch (N.node net f)) v.N.fanins

let consumers net v = List.map (N.node net) v.N.fanouts

let is_backward_retimable net v =
  N.is_logic v
  && v.N.fanouts <> []
  && (not (N.drives_output net v))
  && List.for_all N.is_latch (consumers net v)
  && (match consumers net v with
      | [] -> false
      | first :: rest ->
        List.for_all (fun l -> N.latch_init l = N.latch_init first) rest)

let forward_across_node net v =
  if not (is_forward_retimable net v) then
    Error (Not_retimable (v.N.name ^ ": some fanin is not a latch"))
  else begin
    let fanin_latches = Array.map (N.node net) v.N.fanins in
    let inits =
      Array.map (fun l -> tri_of_init (N.latch_init l)) fanin_latches
    in
    let new_init = init_of_tri (eval_inits (N.cover_of v) inits) in
    (* Remember the consumers before attaching the new latch. *)
    let old_consumers = v.N.fanouts in
    let drove_output = N.drives_output net v in
    let new_latch = N.add_latch net new_init v in
    (* Everything that read v now reads the latch (except the latch itself). *)
    List.iter
      (fun cid ->
        if cid <> new_latch.N.id then
          N.replace_fanin net (N.node net cid) ~old_fanin:v ~new_fanin:new_latch)
      (List.sort_uniq compare old_consumers);
    if drove_output then begin
      (* move output bindings from v to the latch *)
      List.iter
        (fun (name, driver) ->
          if driver.N.id = v.N.id then N.retarget_output net name new_latch)
        (N.outputs net)
    end;
    (* v now reads the latches' data inputs.  The target of every fanin slot
       is computed before any rewiring: one fanin latch's data may be another
       fanin latch, and slot-wise rewiring avoids aliasing them.  A latch on
       a self-loop (data driven by v itself) keeps its register on the
       cycle: that slot reads the freshly created output latch. *)
    let targets =
      Array.map
        (fun fid ->
          let l = N.node net fid in
          let data = N.latch_data net l in
          if data.N.id = v.N.id then new_latch else data)
        v.N.fanins
    in
    let binding = v.N.binding in
    N.set_function net v (N.cover_of v) (Array.to_list targets);
    N.set_binding net v binding;
    (* clean up latches that lost all consumers (deduplicate: a node may
       read the same latch in several fanin positions) *)
    List.iter
      (fun lid ->
        match N.node_opt net lid with
        | Some l when l.N.fanouts = [] && not (N.drives_output net l) ->
          N.delete net l
        | Some _ | None -> ())
      (List.sort_uniq compare
         (Array.to_list (Array.map (fun l -> l.N.id) fanin_latches)));
    Verify.debug_check ~label:"Moves.forward_across_node" net;
    Ok new_latch
  end

let backward_across_node net v =
  if not (is_backward_retimable net v) then
    Error (Not_retimable (v.N.name ^ ": consumers are not uniform latches"))
  else begin
    let out_latches = consumers net v in
    let target_init =
      match out_latches with
      | l :: _ -> N.latch_init l
      | [] -> assert false
    in
    let cover = N.cover_of v in
    let k = Array.length v.N.fanins in
    (* Find fanin initial values whose image is the target value.  Positions
       that read the same fanin node must receive equal values, so the search
       ranges over distinct fanins.  An [Ix] target is free. *)
    let distinct = List.sort_uniq compare (Array.to_list v.N.fanins) in
    let nd = List.length distinct in
    let slot_of = Hashtbl.create 4 in
    List.iteri (fun j fid -> Hashtbl.add slot_of fid j) distinct;
    let point_of slots =
      Array.map (fun fid -> slots.(Hashtbl.find slot_of fid)) v.N.fanins
    in
    let assignment =
      match target_init with
      | N.Ix -> Some (Array.make k N.Ix)
      | N.I0 | N.I1 ->
        let want = target_init = N.I1 in
        let rec search j slots =
          if j = nd then
            if Logic.Cover.eval cover (point_of slots) = want then Some slots
            else None
          else begin
            slots.(j) <- false;
            match search (j + 1) slots with
            | Some s -> Some s
            | None ->
              slots.(j) <- true;
              let r = search (j + 1) slots in
              if r = None then slots.(j) <- false;
              r
          end
        in
        (match search 0 (Array.make nd false) with
         | Some slots ->
           Some
             (Array.map
                (fun b -> if b then N.I1 else N.I0)
                (point_of slots))
         | None -> None)
    in
    match assignment with
    | None ->
      Error
        (No_initial_state
           (Printf.sprintf "%s: no preimage of initial value" v.N.name))
    | Some inits ->
      (* One new latch per distinct fanin; positions sharing a fanin share a
         latch (and therefore must receive the same initial value, which
         holds because the assignment is per-position on distinct nodes). *)
      let new_latch_for = Hashtbl.create 4 in
      Array.iteri
        (fun i fid ->
          if not (Hashtbl.mem new_latch_for fid) then begin
            let l = N.add_latch net inits.(i) (N.node net fid) in
            Hashtbl.add new_latch_for fid l
          end)
        v.N.fanins;
      (* rewire v to read the new latches *)
      let distinct_fanins = List.sort_uniq compare (Array.to_list v.N.fanins) in
      List.iter
        (fun fid ->
          N.replace_fanin net v ~old_fanin:(N.node net fid)
            ~new_fanin:(Hashtbl.find new_latch_for fid))
        distinct_fanins;
      (* old output latches disappear; their consumers read v directly *)
      List.iter
        (fun l ->
          N.transfer_fanouts net ~from:l ~to_:v;
          N.delete net l)
        (List.sort_uniq compare (List.map (fun l -> l.N.id) out_latches)
         |> List.map (N.node net));
      Verify.debug_check ~label:"Moves.backward_across_node" net;
      (* lint-waive: nondet/hashtbl-order — every caller discards this list
         (minarea: Result.map ignore; minperiod: matches Ok _). *)
      Ok (Hashtbl.fold (fun _ l acc -> l :: acc) new_latch_for [])
  end

let split_stem net latch =
  assert (N.is_latch latch);
  let consumer_ids = List.sort_uniq compare latch.N.fanouts in
  let data = N.latch_data net latch in
  let init = N.latch_init latch in
  match consumer_ids with
  | [] | [ _ ] -> [ latch ]
  | first :: rest ->
    ignore first;
    (* one copy per additional consumer; original keeps the first consumer
       and any primary outputs *)
    let copies =
      List.map
        (fun cid ->
          let copy =
            N.add_latch net ~name:(latch.N.name ^ "_s") init data
          in
          N.replace_fanin net (N.node net cid) ~old_fanin:latch ~new_fanin:copy;
          copy)
        rest
    in
    Verify.debug_check ~label:"Moves.split_stem" net;
    latch :: copies

let merge_siblings net latches =
  match latches with
  | [] -> Error (Not_retimable "merge_siblings: empty class")
  | [ only ] -> Ok only
  | keep :: others ->
    let data_id l = (N.latch_data net l).N.id in
    let compatible l =
      data_id l = data_id keep && N.latch_init l = N.latch_init keep
    in
    if not (List.for_all compatible others) then
      Error
        (Not_retimable
           "merge_siblings: latches disagree on data input or initial value")
    else begin
      List.iter
        (fun l ->
          (* transfer_fanouts also remaps primary outputs *)
          N.transfer_fanouts net ~from:l ~to_:keep;
          N.delete net l)
        others;
      Verify.debug_check ~label:"Moves.merge_siblings" net;
      Ok keep
    end

let siblings net latch =
  let data = N.latch_data net latch in
  List.filter N.is_latch (List.map (N.node net) data.N.fanouts)

(* The resynthesis engine loop: forward retiming across a fixed candidate id
   set, in order, repeated to a fixpoint.  The pass structure (re-scan the
   whole id list after any success) matters: an early node may become
   retimable only once a later one has moved its latches forward. *)
let forward_fixpoint net ids =
  let moves = ref 0 in
  let latches = ref [] in
  let changed = ref true in
  let iterations = ref 0 in
  let limit = 4 * List.length ids in
  while !changed && !iterations < limit do
    changed := false;
    incr iterations;
    List.iter
      (fun id ->
        match N.node_opt net id with
        | Some v when is_forward_retimable net v -> begin
            match forward_across_node net v with
            | Ok latch ->
              incr moves;
              latches := latch :: !latches;
              changed := true
            | Error _ -> ()
          end
        | Some _ | None -> ())
      ids
  done;
  Verify.debug_check ~label:"Moves.forward_fixpoint" net;
  (!moves, List.rev !latches)
