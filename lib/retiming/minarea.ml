module N = Netlist.Network

(* Merge every class of sibling latches (same driver, same init).  When
   DC_ret equivalence classes are supplied, sibling groups are partitioned by
   class first so a merge never straddles two classes — the merge-back
   legality condition checked by [Verify.merge_legal]. *)
let merge_all_siblings ?(classes = []) net =
  let class_of = Hashtbl.create 16 in
  List.iteri
    (fun ci cls -> List.iter (fun id -> Hashtbl.replace class_of id ci) cls)
    classes;
  let class_key id =
    match Hashtbl.find_opt class_of id with Some ci -> ci | None -> -1
  in
  let merged = ref 0 in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun l ->
      match N.node_opt net l.N.id with
      | None -> ()
      | Some l ->
        if (not (Hashtbl.mem seen l.N.id)) && N.is_latch l then begin
          let sibs =
            Moves.siblings net l
            |> List.filter (fun s -> N.latch_init s = N.latch_init l)
          in
          List.iter (fun s -> Hashtbl.replace seen s.N.id ()) sibs;
          let groups =
            List.sort_uniq compare (List.map (fun s -> class_key s.N.id) sibs)
            |> List.map (fun k ->
                   List.filter (fun s -> class_key s.N.id = k) sibs)
          in
          List.iter
            (fun group ->
              if List.length group > 1 then begin
                let ids = List.map (fun s -> s.N.id) group in
                match Verify.merge_legal ~equiv_classes:classes ids with
                | _ :: _ -> () (* unreachable after partitioning; be safe *)
                | [] -> (
                  match Moves.merge_siblings net group with
                  | Ok _ -> merged := !merged + List.length group - 1
                  | Error _ -> ())
              end)
            groups
        end)
    (N.latches net);
  !merged

(* A forward move across v is profitable when every distinct fanin latch of v
   has v as its only consumer: k latches collapse into one. *)
let forward_profit net v =
  if not (Moves.is_forward_retimable net v) then 0
  else begin
    let distinct =
      List.sort_uniq compare (Array.to_list v.N.fanins)
      |> List.map (N.node net)
    in
    let all_private =
      List.for_all
        (fun l ->
          (not (N.drives_output net l))
          && List.for_all (fun c -> c = v.N.id) l.N.fanouts)
        distinct
    in
    if all_private then List.length distinct - 1 else 0
  end

(* A backward move across v replaces its latched outputs by one latch per
   distinct fanin. *)
let backward_profit net v =
  if not (Moves.is_backward_retimable net v) then 0
  else begin
    let outs = List.length (List.sort_uniq compare v.N.fanouts) in
    let ins = List.length (List.sort_uniq compare (Array.to_list v.N.fanins)) in
    outs - ins
  end

let m_merged = Obs.Metrics.counter "minarea.latches_merged"
let m_moves_accepted = Obs.Metrics.counter "minarea.moves_accepted"
let m_moves_rejected = Obs.Metrics.counter "minarea.moves_rejected"
let m_eliminated = Obs.Metrics.counter "minarea.latches_eliminated"

let minimize_registers ?(classes = []) ?timer net ~model ~max_period =
  (* Every candidate move pays a period check; an incremental timer makes an
     accepted move cost only its affected cone.  A rejected move reverts via
     [N.restore], which journals the reverted ids, so the timer resyncs just
     the touched cone rather than falling back to a full analysis. *)
  let timer =
    match timer with
    | Some t when Sta.Incremental.network t == net -> t
    | Some _ | None -> Sta.Incremental.create net model
  in
  let eliminated = ref 0 in
  let improved = ref true in
  while !improved do
    improved := false;
    let merges = merge_all_siblings ~classes net in
    if merges > 0 then begin
      Obs.Metrics.add m_merged merges;
      eliminated := !eliminated + merges;
      improved := true
    end;
    (* candidate moves, most profitable first; re-check profit as the network
       changes under us *)
    let try_move v =
      match N.node_opt net v.N.id with
      | None -> ()
      | Some v ->
        let fwd = forward_profit net v and bwd = backward_profit net v in
        if fwd > 0 || bwd > 0 then begin
          let before = N.copy net in
          let latches_before = N.num_latches net in
          let apply =
            if fwd >= bwd then Moves.forward_across_node net v |> Result.map ignore
            else Moves.backward_across_node net v |> Result.map ignore
          in
          match apply with
          | Error _ -> ()
          | Ok () ->
            let period_ok =
              Sta.Incremental.period timer <= max_period +. 1e-9
            in
            let gained = latches_before - N.num_latches net in
            if period_ok && gained > 0 then begin
              Obs.Metrics.incr m_moves_accepted;
              eliminated := !eliminated + gained;
              improved := true
            end
            else begin
              Obs.Metrics.incr m_moves_rejected;
              (* revert: restore from the snapshot *)
              N.restore net before
            end
        end
    in
    List.iter try_move (N.logic_nodes net)
  done;
  Verify.debug_check ~label:"Minarea.minimize_registers" net;
  Obs.Metrics.add m_eliminated !eliminated;
  !eliminated
