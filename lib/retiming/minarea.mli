(** Constrained min-area retiming: greedy register-count reduction subject to
    a clock-period bound, used as the paper's post-processing step.

    Three move kinds are tried to a fixpoint, each kept only if the period
    stays within budget:
    - backward merges of sibling latches (same data input, same initial
      value) — the inverse of retiming across a fanout stem;
    - forward moves across nodes whose fanin latches would all die;
    - backward moves across nodes with more latched outputs than fanins. *)

val merge_all_siblings :
  ?classes:int list list -> Netlist.Network.t -> int
(** Merge every class of sibling latches (same data input, same initial
    value); the building block of the backward fanout-stem move.  Returns
    registers eliminated.  [classes] supplies the DC_ret register-equivalence
    classes: sibling groups are partitioned so no merge straddles two
    distinct classes (see {!Verify.merge_legal}); the default [[]] keeps the
    unpartitioned behavior. *)

val minimize_registers :
  ?classes:int list list ->
  ?timer:Sta.Incremental.t ->
  Netlist.Network.t -> model:Sta.model -> max_period:float -> int
(** Mutates the network; returns the number of registers eliminated.  The
    per-move period checks run on [timer] when it is a handle for this very
    network (a private handle is created otherwise), so callers already
    holding one avoid repeated full analyses.  [classes] constrains sibling
    merges as in {!merge_all_siblings}. *)
