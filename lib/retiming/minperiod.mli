(** Leiserson–Saxe minimum-period retiming.

    The retiming graph has one vertex per logic node plus a host vertex for
    the environment; edge weights count the latches between logic nodes.
    Feasibility of a target period uses the classical W/D-matrix difference
    constraints solved by Bellman–Ford; the minimum period is found by binary
    search over the distinct D values.

    A computed retiming vector is *realized* on the netlist as a sequence of
    atomic moves (so that initial states are computed move by move); this can
    fail when a backward move has no initial-state preimage — the same
    failure mode the paper reports for SIS retiming. *)

type failure =
  | Too_large of int  (** vertex count beyond the effort cap *)
  | Infeasible
  | Init_state of string
      (** a backward move could not compute an initial state *)
  | Stuck of string  (** move sequencing deadlocked *)

val failure_message : failure -> string

val min_feasible_period : ?max_vertices:int -> Netlist.Network.t -> Sta.model -> (float, failure) result
(** Best period any retiming can achieve (graph-level; ignores initial-state
    realizability).  Computed with the W/D-matrix difference constraints. *)

val min_feasible_period_feas :
  ?max_vertices:int -> Netlist.Network.t -> Sta.model -> (float, failure) result
(** The same quantity computed with Leiserson-Saxe's iterative FEAS
    algorithm (relax-and-increment, no W/D matrices) — an independent
    implementation cross-checked against {!min_feasible_period} by the test
    suite. *)

val retime :
  ?max_vertices:int ->
  Netlist.Network.t -> model:Sta.model -> target:float ->
  (Netlist.Network.t, failure) result
(** Retime a copy of the network to meet [target].  The input network is not
    modified. *)

val retime_min_period :
  ?max_vertices:int -> ?current_period:float ->
  Netlist.Network.t -> model:Sta.model ->
  (Netlist.Network.t * float, failure) result
(** Retime to the minimum feasible period.  When realization fails at the
    optimum the next achievable candidate periods are tried before giving
    up, mirroring practical retiming tools.  Candidate periods are filtered
    against [current_period] when given (e.g. from an incremental timer, see
    {!Sta.Incremental}), saving the full analysis otherwise needed here. *)

(**/**)

(** Shared infrastructure for other retiming objectives (used by
    {!Minregister}). *)
module Internal : sig
  type graph = {
    nv : int;                        (** vertex 0 is the host *)
    delay : float array;
    edges : (int * int * int) list;  (** (u, v, register count) *)
    node_of_vertex : int array;
  }

  val build_graph : Netlist.Network.t -> Sta.model -> graph

  val wd_matrices : graph -> int array array * float array array

  val realize :
    Netlist.Network.t -> graph -> int array -> (unit, failure) result
  (** Apply a retiming vector (indexed by vertex; host must be 0) to the
      network by atomic moves. *)
end

module Debug : sig
  val dump : Netlist.Network.t -> Sta.model -> string
end
