module N = Netlist.Network

type failure =
  | Too_large of int
  | Infeasible
  | Init_state of string
  | Stuck of string

let failure_message = function
  | Too_large n -> Printf.sprintf "retiming graph too large (%d vertices)" n
  | Infeasible -> "no retiming achieves the target period"
  | Init_state msg -> "initial state: " ^ msg
  | Stuck msg -> "move sequencing stuck: " ^ msg

(* --- retiming graph -------------------------------------------------------- *)

type graph = {
  nv : int;                          (* vertex count; vertex 0 is the host *)
  delay : float array;               (* per vertex *)
  edges : (int * int * int) list;    (* (u, v, weight) *)
  node_of_vertex : int array;        (* vertex -> node id; -1 for host *)
}

(* Walk back through a latch chain; return (source node, latch count).
   A pure register ring (latches forming a cycle with no logic) has no
   combinational source: report [None] and let the caller treat the signal
   as coming from the environment — its registers cannot be moved by any
   retiming of logic vertices anyway. *)
let chase net start count0 =
  let rec go node count seen =
    match node.N.kind with
    | N.Latch _ ->
      if List.mem node.N.id seen then (None, count)
      else go (N.latch_data net node) (count + 1) (node.N.id :: seen)
    | N.Input | N.Const _ | N.Logic _ -> (Some node, count)
  in
  go start count0 []

let build_graph net model =
  let logic = N.logic_nodes net in
  let nv = List.length logic + 1 in
  let vertex_of_node = Hashtbl.create 64 in
  let node_of_vertex = Array.make nv (-1) in
  List.iteri
    (fun i n ->
      Hashtbl.add vertex_of_node n.N.id (i + 1);
      node_of_vertex.(i + 1) <- n.N.id)
    logic;
  let delay = Array.make nv 0.0 in
  List.iter
    (fun n -> delay.(Hashtbl.find vertex_of_node n.N.id) <- model n)
    logic;
  let edges = ref [] in
  let vertex_of net_node =
    match net_node.N.kind with
    | N.Logic _ -> Hashtbl.find vertex_of_node net_node.N.id
    | N.Input | N.Const _ -> 0
    | N.Latch _ -> assert false
  in
  List.iter
    (fun v ->
      Array.iter
        (fun fid ->
          let source, w = chase net (N.node net fid) 0 in
          let u =
            match source with Some s -> vertex_of s | None -> 0
          in
          edges := (u, Hashtbl.find vertex_of_node v.N.id, w) :: !edges)
        v.N.fanins)
    logic;
  (* primary outputs back to the host *)
  List.iter
    (fun (_, driver) ->
      match chase net driver 0 with
      | Some ({ N.kind = N.Logic _; _ } as source), w ->
        edges := (vertex_of source, 0, w) :: !edges
      | Some _, _ | None, _ -> ())
    (N.outputs net);
  { nv; delay; edges = !edges; node_of_vertex }

(* --- W and D matrices ------------------------------------------------------ *)

let big = max_int / 4

(* Lexicographic shortest paths: W = min registers over paths, D = max delay
   among minimum-register paths (delays of both endpoints included).  The
   host (vertex 0) is never an intermediate vertex: a PO-to-PI hop through
   the environment is not a combinational timing path, so it must not
   generate period constraints. *)
let wd_matrices g =
  let w = Array.make_matrix g.nv g.nv big in
  let d = Array.make_matrix g.nv g.nv neg_infinity in
  List.iter
    (fun (u, v, wt) ->
      if wt < w.(u).(v) || (wt = w.(u).(v) && g.delay.(u) > d.(u).(v)) then begin
        w.(u).(v) <- wt;
        d.(u).(v) <- g.delay.(u)
      end)
    g.edges;
  for k = 1 to g.nv - 1 do
    for u = 0 to g.nv - 1 do
      if w.(u).(k) < big then
        for v = 0 to g.nv - 1 do
          if w.(k).(v) < big then begin
            let nw = w.(u).(k) + w.(k).(v) in
            let nd = d.(u).(k) +. d.(k).(v) in
            if nw < w.(u).(v) || (nw = w.(u).(v) && nd > d.(u).(v)) then begin
              w.(u).(v) <- nw;
              d.(u).(v) <- nd
            end
          end
        done
    done
  done;
  let dd = Array.make_matrix g.nv g.nv neg_infinity in
  for u = 0 to g.nv - 1 do
    for v = 0 to g.nv - 1 do
      if w.(u).(v) < big then dd.(u).(v) <- d.(u).(v) +. g.delay.(v)
    done
  done;
  (w, dd)

(* Solve r(u) - r(v) <= c_{uv} by Bellman-Ford; None on negative cycle. *)
let solve_constraints nv constraints =
  let r = Array.make nv 0 in
  let changed = ref true in
  let iterations = ref 0 in
  while !changed && !iterations <= nv + 2 do
    changed := false;
    incr iterations;
    List.iter
      (fun (u, v, c) ->
        if r.(u) > r.(v) + c then begin
          r.(u) <- r.(v) + c;
          changed := true
        end)
      constraints
  done;
  if !changed then None
  else begin
    let shift = r.(0) in
    Some (Array.map (fun x -> x - shift) r)
  end

let feasible_retiming g (w, d) target =
  let constraints = ref [] in
  List.iter (fun (u, v, wt) -> constraints := (u, v, wt) :: !constraints) g.edges;
  for u = 0 to g.nv - 1 do
    for v = 0 to g.nv - 1 do
      if d.(u).(v) > target +. 1e-9 && w.(u).(v) < big then
        constraints := (u, v, w.(u).(v) - 1) :: !constraints
    done
  done;
  solve_constraints g.nv !constraints

let candidate_periods g (_, d) =
  let set = Hashtbl.create 64 in
  for u = 0 to g.nv - 1 do
    for v = 0 to g.nv - 1 do
      if d.(u).(v) > neg_infinity then Hashtbl.replace set d.(u).(v) ()
    done
  done;
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) set [])

(* --- realization by atomic moves ------------------------------------------- *)

let realize net g r =
  (* remaining(v) > 0: v needs backward moves; < 0: forward moves *)
  let remaining = Hashtbl.create 64 in
  Array.iteri
    (fun vertex node_id ->
      if vertex > 0 && r.(vertex) <> 0 then
        Hashtbl.replace remaining node_id r.(vertex))
    g.node_of_vertex;
  (* lint-waive: nondet/hashtbl-order — scan order only schedules moves:
     every vertex performs exactly |r(v)| moves before the loop ends, so
     the final register placement is order-independent. *)
  let node_ids = Hashtbl.fold (fun id _ acc -> id :: acc) remaining [] in
  let total () = Hashtbl.fold (fun _ v acc -> acc + abs v) remaining 0 in (* lint-waive: nondet/hashtbl-order — commutative sum *)
  let budget = ref (4 * (total () + 1)) in
  let result = ref (Ok ()) in
  while total () > 0 && !result = Ok () && !budget > 0 do
    decr budget;
    let progress = ref false in
    List.iter
      (fun node_id ->
        let count =
          match Hashtbl.find_opt remaining node_id with Some c -> c | None -> 0
        in
        if !result = Ok () && count <> 0 then begin
          match N.node_opt net node_id with
          | None -> Hashtbl.replace remaining node_id 0
          | Some v ->
            if count < 0 && Moves.is_forward_retimable net v then begin
              match Moves.forward_across_node net v with
              | Ok _ ->
                Hashtbl.replace remaining node_id (count + 1);
                progress := true
              | Error e -> result := Error (Stuck (Moves.error_message e))
            end
            else if count > 0 && Moves.is_backward_retimable net v then begin
              match Moves.backward_across_node net v with
              | Ok _ ->
                Hashtbl.replace remaining node_id (count - 1);
                progress := true
              | Error (Moves.No_initial_state msg) ->
                result := Error (Init_state msg)
              | Error (Moves.Not_retimable msg) -> result := Error (Stuck msg)
            end
        end)
      node_ids;
    if (not !progress) && total () > 0 && !result = Ok () then
      result := Error (Stuck "no applicable atomic move")
  done;
  if !result = Ok () && total () > 0 then Error (Stuck "budget exhausted")
  else (match !result with Ok () -> Ok () | Error e -> Error e)

(* --- FEAS: the iterative feasibility algorithm -------------------------------- *)

(* FEAS(c): starting from r = 0, repeat |V| times: compute the combinational
   arrival times of the retimed graph (edges with w_r = 0 are wires) and
   increment r(v) for every vertex whose arrival exceeds c; c is feasible
   iff no violation remains.  The host's label stays 0. *)
let feas_feasible g target =
  let r = Array.make g.nv 0 in
  let arrivals () =
    (* longest-path over the 0-weight subgraph; None on a 0-weight cycle *)
    let adj = Array.make g.nv [] in
    let indeg = Array.make g.nv 0 in
    List.iter
      (fun (u, v, w) ->
        (* exactly-zero retimed weight = a wire; transiently negative
           weights are neither wires nor registers and are ignored here.
           The host never propagates arrivals (a PO-to-PI hop through the
           environment is not a combinational path): its outgoing wires
           contribute nothing beyond each gate's own delay, which the
           initialization covers. *)
        let wr = w + r.(v) - r.(u) in
        if wr = 0 && u <> v && u <> 0 then begin
          adj.(u) <- v :: adj.(u);
          indeg.(v) <- indeg.(v) + 1
        end)
      g.edges;
    let arrival = Array.copy g.delay in
    let queue = Queue.create () in
    for v = 0 to g.nv - 1 do
      if indeg.(v) = 0 then Queue.push v queue
    done;
    let processed = ref 0 in
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      incr processed;
      List.iter
        (fun v ->
          if arrival.(u) +. g.delay.(v) > arrival.(v) then
            arrival.(v) <- arrival.(u) +. g.delay.(v);
          indeg.(v) <- indeg.(v) - 1;
          if indeg.(v) = 0 then Queue.push v queue)
        adj.(u)
    done;
    if !processed < g.nv then None else Some arrival
  in
  (* The host is incrementable like any vertex: retimings only depend on
     label differences, so a host increment is a global decrement in
     disguise; labels are renormalized by the caller via r(v) - r(host). *)
  (* With the host participating, convergence can need more than the
     classical |V| - 1 rounds (each host increment re-normalizes the whole
     labeling); a quadratic bound is still cheap at our sizes. *)
  let rec iterate k =
    if k > (g.nv * g.nv) + 8 then false
    else
      match arrivals () with
      | None -> false (* a combinational (0-weight) cycle: infeasible here *)
      | Some arrival ->
        let violated = Array.make g.nv false in
        for v = 0 to g.nv - 1 do
          if arrival.(v) > target +. 1e-9 then violated.(v) <- true
        done;
        (* a negative retimed weight is a legality violation of the head
           vertex: incrementing it is the Bellman-Ford relaxation of the
           edge constraint r(v) >= r(u) - w *)
        List.iter
          (fun (u, v, w) -> if w + r.(v) - r.(u) < 0 then violated.(v) <- true)
          g.edges;
        let any = ref false in
        Array.iteri
          (fun v bad ->
            if bad then begin
              r.(v) <- r.(v) + 1;
              any := true
            end)
          violated;
        if not !any then
          List.for_all (fun (u, v, w) -> w + r.(v) - r.(u) >= 0) g.edges
        else iterate (k + 1)
  in
  iterate 0

let min_feasible_period_feas ?(max_vertices = 1200) net model =
  let g = build_graph net model in
  if g.nv > max_vertices then Error (Too_large g.nv)
  else begin
    let wd = wd_matrices g in
    let candidates = Array.of_list (candidate_periods g wd) in
    if Array.length candidates = 0 then Ok 0.0
    else begin
      let feasible i = feas_feasible g candidates.(i) in
      let n = Array.length candidates in
      if not (feasible (n - 1)) then Error Infeasible
      else begin
        let lo = ref 0 and hi = ref (n - 1) in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if feasible mid then hi := mid else lo := mid + 1
        done;
        Ok candidates.(!lo)
      end
    end
  end

(* --- public entry points ---------------------------------------------------- *)

let retime_with g wd net target =
  match feasible_retiming g wd target with
  | None -> Error Infeasible
  | Some r ->
    (* The copied network has identical node ids, so the graph tables remain
       valid for it. *)
    let copy = N.copy net in
    (match realize copy g r with
     | Ok () ->
       N.sweep copy;
       Ok copy
     | Error e -> Error e)

let min_feasible_period ?(max_vertices = 1200) net model =
  let g = build_graph net model in
  if g.nv > max_vertices then Error (Too_large g.nv)
  else begin
    let wd = wd_matrices g in
    let candidates = Array.of_list (candidate_periods g wd) in
    if Array.length candidates = 0 then Ok 0.0
    else begin
      let feasible c = feasible_retiming g wd c <> None in
      let lo = ref 0 and hi = ref (Array.length candidates - 1) in
      if not (feasible candidates.(!hi)) then Error Infeasible
      else begin
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if feasible candidates.(mid) then hi := mid else lo := mid + 1
        done;
        Ok candidates.(!lo)
      end
    end
  end

let retime ?(max_vertices = 1200) net ~model ~target =
  let g = build_graph net model in
  if g.nv > max_vertices then Error (Too_large g.nv)
  else retime_with g (wd_matrices g) net target

let retime_min_period ?(max_vertices = 1200) ?current_period net ~model =
  let g = build_graph net model in
  if g.nv > max_vertices then Error (Too_large g.nv)
  else begin
    let wd = wd_matrices g in
    let current =
      match current_period with
      | Some p -> p
      | None -> Sta.clock_period net model
    in
    let candidates =
      Array.of_list
        (List.filter (fun c -> c < current -. 1e-9) (candidate_periods g wd))
    in
    let n = Array.length candidates in
    if n = 0 then Error Infeasible
    else begin
      (* binary-search the smallest graph-feasible candidate, then walk
         upward until one is also realizable (initial states computable) *)
      let feasible i = feasible_retiming g wd candidates.(i) <> None in
      if not (feasible (n - 1)) then Error Infeasible
      else begin
        let lo = ref 0 and hi = ref (n - 1) in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if feasible mid then hi := mid else lo := mid + 1
        done;
        let rec walk_up i =
          if i >= n then Error Infeasible
          else
            match retime_with g wd net candidates.(i) with
            | Ok net' -> Ok (net', candidates.(i))
            | Error (Init_state _ | Stuck _ | Infeasible) -> walk_up (i + 1)
            | Error (Too_large _) as e -> e
        in
        walk_up !lo
      end
    end
  end

module Internal = struct
  type nonrec graph = graph = {
    nv : int;
    delay : float array;
    edges : (int * int * int) list;
    node_of_vertex : int array;
  }

  let build_graph = build_graph
  let wd_matrices = wd_matrices
  let realize = realize
end

module Debug = struct
  let dump net model =
    let g = build_graph net model in
    let buf = Buffer.create 256 in
    Buffer.add_string buf (Printf.sprintf "nv=%d\n" g.nv);
    Array.iteri
      (fun v id -> Buffer.add_string buf (Printf.sprintf "vertex %d = node %d (d=%.1f)\n" v id g.delay.(v)))
      g.node_of_vertex;
    List.iter
      (fun (u, v, w) -> Buffer.add_string buf (Printf.sprintf "edge %d -> %d w=%d\n" u v w))
      g.edges;
    let w, d = wd_matrices g in
    for u = 0 to g.nv - 1 do
      for v = 0 to g.nv - 1 do
        if w.(u).(v) < big then
          Buffer.add_string buf (Printf.sprintf "W(%d,%d)=%d D=%.1f\n" u v w.(u).(v) d.(u).(v))
      done
    done;
    List.iter
      (fun c ->
        Buffer.add_string buf
          (Printf.sprintf "candidate %.1f feasible=%b\n" c
             (feasible_retiming g (w, d) c <> None)))
      (candidate_periods g (w, d));
    Buffer.contents buf
end
