(** Atomic retiming moves on a network, with initial-state computation.

    Conventions follow the paper's Section II: forward retiming moves
    registers from the input edges to the output edge of a node (initial
    state [f(inits)]); backward retiming is the reverse and requires a
    preimage of the register's initial state under the node function.
    Retiming across a fanout stem replicates or merges registers. *)

type error =
  | Not_retimable of string
  | No_initial_state of string

val error_message : error -> string

val is_forward_retimable : Netlist.Network.t -> Netlist.Network.node -> bool
(** A logic node is forward-retimable when it has at least one fanin and
    every fanin is a latch. *)

val is_backward_retimable : Netlist.Network.t -> Netlist.Network.node -> bool
(** A logic node is backward-retimable when it has at least one consumer,
    every consumer is a latch, it drives no primary output, and all consumer
    latches agree on their initial value. *)

val forward_across_node :
  Netlist.Network.t -> Netlist.Network.node ->
  (Netlist.Network.node, error) result
(** Forward-retime the registers at the node's inputs to its output.
    Returns the new latch.  Fanin latches shared with other consumers are
    bypassed, not destroyed; latches left without consumers are deleted. *)

val backward_across_node :
  Netlist.Network.t -> Netlist.Network.node ->
  (Netlist.Network.node list, error) result
(** Backward-retime the registers at the node's outputs to its inputs
    (one latch per distinct fanin).  Fails when no input assignment maps to
    the required initial value under the node function. *)

val split_stem :
  Netlist.Network.t -> Netlist.Network.node -> Netlist.Network.node list
(** Forward retiming across a fanout stem: replicate a multiple-fanout latch
    so that each fanout edge gets a private copy with the same data input and
    the same initial value.  Returns all copies (the original serves the
    first edge).  Single-fanout latches are returned unchanged. *)

val merge_siblings :
  Netlist.Network.t -> Netlist.Network.node list ->
  (Netlist.Network.node, error) result
(** Backward retiming across a fanout stem: merge latches that share a data
    input and an initial value into the first of them. *)

val siblings : Netlist.Network.t -> Netlist.Network.node -> Netlist.Network.node list
(** All latches sharing this latch's data input (including itself). *)

val forward_fixpoint :
  Netlist.Network.t -> int list -> int * Netlist.Network.node list
(** Forward-retime across every retimable node of the id set, re-scanning the
    list until no move applies (bounded by [4 * length] passes).  Deleted or
    non-retimable ids are skipped.  Returns the move count and the created
    latches, oldest first. *)
