module N = Netlist.Network

(* Internal: a BDD build or fixpoint outgrew the node budget; callers fall
   back to SAT (combinational) or report Unknown (sequential). *)
exception Budget of string

type options = {
  max_state_bits : int;
  max_product_bits : int;
  max_comb_leaves : int;
  max_bdd_nodes : int;
  sat_conflicts : int;
}

let default_options =
  { max_state_bits = 22;
    max_product_bits = 26;
    max_comb_leaves = 96;
    max_bdd_nodes = 200_000;
    sat_conflicts = 50_000 }

(* Verdict tallies and cap-trip reasons, published to the process-wide
   registry so a suite run can report where the checker gave up. *)
let m_verdicts_proved = Obs.Metrics.counter "eqcheck.verdicts.proved"
let m_verdicts_refuted = Obs.Metrics.counter "eqcheck.verdicts.refuted"
let m_verdicts_unknown = Obs.Metrics.counter "eqcheck.verdicts.unknown"
let m_cap_comb_leaves = Obs.Metrics.counter "eqcheck.cap.comb_leaves"
let m_cap_product_bits = Obs.Metrics.counter "eqcheck.cap.product_bits"
let m_cap_state_bits = Obs.Metrics.counter "eqcheck.cap.state_bits"
let m_cap_bdd_nodes = Obs.Metrics.counter "eqcheck.cap.bdd_nodes"
let m_cap_sat_conflicts = Obs.Metrics.counter "eqcheck.cap.sat_conflicts"
let m_cone_rescued = Obs.Metrics.counter "eqcheck.seq.cone_rescued"
let m_bdd_reuse = Obs.Metrics.counter "eqcheck.bdd.reuse"

(* cone-memo outcome split: [hit] = recorded build served the pre side;
   [miss] = memo consulted but empty or unusable; [evict] = a recorded
   build displaced without ever being reused (stale net/frame/table).
   [eqcheck.bdd.reuse] above stays as the historical alias of [hit]. *)
let m_memo_hit = Obs.Metrics.counter "eqcheck.memo.hit"
let m_memo_miss = Obs.Metrics.counter "eqcheck.memo.miss"
let m_memo_evict = Obs.Metrics.counter "eqcheck.memo.evict"

type cex = {
  endpoint : string;
  leaves : (string * bool) list;
  init_pre : (string * bool) list;
  init_post : (string * bool) list;
  trace : (string * bool) list list;
  sim_confirmed : bool;
}

type verdict =
  | Proved
  | Refuted of cex
  | Unknown of string

type record = {
  label : string;
  pass : string;
  rule : string;
  verdict : verdict;
  seconds : float;
}

let verdict_name = function
  | Proved -> "proved"
  | Refuted _ -> "refuted"
  | Unknown _ -> "unknown"

(* --- shared helpers ---------------------------------------------------------- *)

(* DC_ret classes arrive as latch node ids of the resynthesis working copy;
   both sides of a pass carry the same latch names (the mapper and the editing
   kernels preserve them), so the don't-care condition is expressed over
   names.  Dead ids are tolerated — merge-back legitimately consumes class
   members. *)
let class_name_pairs nets classes =
  let name_of id =
    List.find_map
      (fun net ->
        match N.node_opt net id with
        | Some n when N.is_latch n -> Some n.N.name
        | Some _ | None -> None)
      nets
  in
  List.concat_map
    (fun cls ->
      let names =
        List.filter_map name_of (List.sort_uniq compare cls)
        |> List.sort_uniq compare
      in
      match names with
      | [] | [ _ ] -> []
      | rep :: rest -> List.map (fun m -> (rep, m)) rest)
    classes

let endpoints net =
  List.map (fun (name, n) -> (name, n.N.id)) (N.outputs net)
  @ List.map
      (fun l -> ("next:" ^ l.N.name, (N.latch_data net l).N.id))
      (N.latches net)

let comb_interface_matches pre post =
  Sim.Equiv.leaf_names pre = Sim.Equiv.leaf_names post
  && Sim.Equiv.endpoint_names pre = Sim.Equiv.endpoint_names post

(* Memo of the last cone-function build, keyed by network identity, revision
   and leaf frame.  In an instrumented flow the [pre] side of check k+1 is a
   snapshot of the [post] side of check k, so its cone BDDs can be reused
   instead of rebuilt: the shared unique table never frees or renumbers
   nodes, so the handles stay valid across checks.  Budget parity is kept by
   [Bdd.adopt]-ing the recorded build charge into the new check's scope. *)
type cone_memo = {
  me_net : N.t;
  me_rev : int;
  me_frame : string list;  (** the leaf list the variable frame was built on *)
  me_values : (int, Bdd.t) Hashtbl.t;
  me_man : Bdd.man;  (** sub-scope charged with exactly this build's nodes *)
}

type memo = cone_memo option ref

let memo () : memo = ref None

(* Node BDDs for every combinational value of [net], leaves resolved through
   [var_of_name]; raises [Budget] once [budget_man]'s charge passes the node
   cap ([budget_man] is the whole check's cumulative scope, so the cap trips
   exactly as it did when every check rebuilt from scratch). *)
let build_values man ~budget_man ~max_bdd_nodes net var_of_name =
  let values = Hashtbl.create 256 in
  List.iter
    (fun p -> Hashtbl.add values p.N.id (Bdd.var man (var_of_name p.N.name)))
    (N.inputs net);
  List.iter
    (fun l -> Hashtbl.add values l.N.id (Bdd.var man (var_of_name l.N.name)))
    (N.latches net);
  List.iter
    (fun n ->
      match n.N.kind with
      | N.Const b ->
        Hashtbl.add values n.N.id (if b then Bdd.btrue else Bdd.bfalse)
      | N.Input | N.Latch _ | N.Logic _ -> ())
    (N.all_nodes net);
  List.iter
    (fun n ->
      let fanins = Array.map (fun f -> Hashtbl.find values f) n.N.fanins in
      let cover = N.cover_of n in
      let cube_bdd cube =
        let acc = ref Bdd.btrue in
        Logic.Cube.iteri
          (fun i l ->
            match l with
            | Logic.Cube.One -> acc := Bdd.band man !acc fanins.(i)
            | Logic.Cube.Zero ->
              acc := Bdd.band man !acc (Bdd.bnot man fanins.(i))
            | Logic.Cube.Both -> ())
          cube;
        !acc
      in
      let v =
        List.fold_left
          (fun acc c -> Bdd.bor man acc (cube_bdd c))
          Bdd.bfalse cover.Logic.Cover.cubes
      in
      Hashtbl.add values n.N.id v;
      if Bdd.node_count budget_man > max_bdd_nodes then
        raise (Budget "bdd node budget exhausted building cone functions"))
    (N.topo_combinational net);
  values

(* Total assignment over [vars] extending a satisfying path of [f] (every
   completion of an [any_sat] partial assignment satisfies [f]). *)
let full_assign man f vars =
  let partial = Bdd.any_sat man f in
  List.map
    (fun v ->
      (v, match List.assoc_opt v partial with Some b -> b | None -> false))
    vars

(* --- combinational equivalence modulo DC_ret --------------------------------- *)

let make_comb_cex pre post leaves assign =
  let l = List.map (fun name -> (name, assign name)) leaves in
  let f name = List.assoc name l in
  let ea = Sim.Equiv.eval_endpoints pre f in
  let eb = Sim.Equiv.eval_endpoints post f in
  let diverging =
    List.find_opt
      (fun (name, va) ->
        match List.assoc_opt name eb with
        | Some vb -> vb <> va
        | None -> true)
      ea
  in
  let endpoint, confirmed =
    match diverging with
    | Some (name, _) -> (name, true)
    | None -> ("(none)", false)
  in
  { endpoint;
    leaves = l;
    init_pre = [];
    init_post = [];
    trace = [];
    sim_confirmed = confirmed }

let comb_check_bdd ~options ~pairs ?memo pre post leaves =
  let man = Bdd.create () in
  let var_idx = Hashtbl.create 64 in
  List.iteri (fun i name -> Hashtbl.add var_idx name i) leaves;
  let var_of_name name = Hashtbl.find var_idx name in
  let max_bdd_nodes = options.max_bdd_nodes in
  (* each side builds in a sub-scope so the memo can record exactly that
     side's node charge, while [man] keeps the cumulative count the budget
     tests against *)
  let build net =
    let scope = Bdd.sub_scope man in
    (build_values scope ~budget_man:man ~max_bdd_nodes net var_of_name, scope)
  in
  let values_pre =
    match memo with
    | Some r ->
      (match !r with
       | Some m
         when m.me_net == pre
              && m.me_rev = N.revision pre
              && m.me_frame = leaves
              (* in `Private mode each check owns a fresh table, so recorded
                 handles are meaningless here: fall through and rebuild *)
              && Bdd.same_table m.me_man man ->
         Obs.Metrics.incr m_bdd_reuse;
         Obs.Metrics.incr m_memo_hit;
         Bdd.adopt man m.me_man;
         m.me_values
       | Some _ ->
         (* recorded build can't serve this check and is displaced below
            without ever being reused *)
         Obs.Metrics.incr m_memo_miss;
         Obs.Metrics.incr m_memo_evict;
         fst (build pre)
       | None ->
         Obs.Metrics.incr m_memo_miss;
         fst (build pre))
    | None -> fst (build pre)
  in
  let values_post, post_scope = build post in
  (match memo with
   | Some r ->
     r :=
       Some
         { me_net = post;
           me_rev = N.revision post;
           me_frame = leaves;
           me_values = values_post;
           me_man = post_scope }
   | None -> ());
  (* care set: every pair of equivalent registers agrees *)
  let care =
    List.fold_left
      (fun acc (a, b) ->
        match (Hashtbl.find_opt var_idx a, Hashtbl.find_opt var_idx b) with
        | Some va, Some vb ->
          Bdd.band man acc (Bdd.bxnor man (Bdd.var man va) (Bdd.var man vb))
        | _, _ -> acc)
      Bdd.btrue pairs
  in
  let post_eps = endpoints post in
  let diff =
    List.find_map
      (fun (name, ida) ->
        match List.assoc_opt name post_eps with
        | None -> None (* interface already checked; defensive *)
        | Some idb ->
          let fa = Hashtbl.find values_pre ida in
          let fb = Hashtbl.find values_post idb in
          let d = Bdd.band man (Bdd.bxor man fa fb) care in
          if Bdd.node_count man > max_bdd_nodes then
            raise (Budget "bdd node budget exhausted on the miter");
          if Bdd.is_false d then None else Some d)
      (endpoints pre)
  in
  match diff with
  | None -> `Proved
  | Some d ->
    let witness = full_assign man d (List.init (List.length leaves) Fun.id) in
    let assign name =
      match List.assoc_opt (var_of_name name) witness with
      | Some b -> b
      | None -> false
    in
    `Diff assign

(* Tseitin encoding with one persistent memo per network, so shared cones are
   encoded once per check instead of once per endpoint. *)
let tseitin_encoder solver net ~leaf_var =
  let memo = Hashtbl.create 256 in
  let rec go id =
    match Hashtbl.find_opt memo id with
    | Some v -> v
    | None ->
      let n = N.node net id in
      let v =
        match n.N.kind with
        | N.Input | N.Latch _ -> leaf_var n.N.name
        | N.Const b ->
          let v = Sat_lite.new_var solver in
          Sat_lite.add_clause solver [ (if b then v + 1 else -(v + 1)) ];
          v
        | N.Logic cover ->
          let fanin_vars = Array.map go n.N.fanins in
          let out = Sat_lite.new_var solver in
          let cube_vars =
            List.map
              (fun cube ->
                let cv = Sat_lite.new_var solver in
                Logic.Cube.iteri
                  (fun i l ->
                    let fv = fanin_vars.(i) in
                    match l with
                    | Logic.Cube.One ->
                      Sat_lite.add_clause solver [ -(cv + 1); fv + 1 ]
                    | Logic.Cube.Zero ->
                      Sat_lite.add_clause solver [ -(cv + 1); -(fv + 1) ]
                    | Logic.Cube.Both -> ())
                  cube;
                let body = ref [] in
                Logic.Cube.iteri
                  (fun i l ->
                    let fv = fanin_vars.(i) in
                    match l with
                    | Logic.Cube.One -> body := -(fv + 1) :: !body
                    | Logic.Cube.Zero -> body := fv + 1 :: !body
                    | Logic.Cube.Both -> ())
                  cube;
                Sat_lite.add_clause solver ((cv + 1) :: List.rev !body);
                cv)
              cover.Logic.Cover.cubes
          in
          List.iter
            (fun cv -> Sat_lite.add_clause solver [ -(cv + 1); out + 1 ])
            cube_vars;
          Sat_lite.add_clause solver
            (-(out + 1) :: List.map (fun cv -> cv + 1) cube_vars);
          out
      in
      Hashtbl.add memo id v;
      v
  in
  go

let comb_check_sat ~options ~pairs pre post =
  let solver = Sat_lite.create () in
  let leaf_vars = Hashtbl.create 64 in
  let var_of_name name =
    match Hashtbl.find_opt leaf_vars name with
    | Some v -> v
    | None ->
      let v = Sat_lite.new_var solver in
      Hashtbl.add leaf_vars name v;
      v
  in
  let enc_pre = tseitin_encoder solver pre ~leaf_var:var_of_name in
  let enc_post = tseitin_encoder solver post ~leaf_var:var_of_name in
  (* DC_ret as satisfiability don't-cares: restrict the search to care states
     by asserting the class members equal *)
  List.iter
    (fun (a, b) ->
      let va = var_of_name a and vb = var_of_name b in
      Sat_lite.add_clause solver [ -(va + 1); vb + 1 ];
      Sat_lite.add_clause solver [ va + 1; -(vb + 1) ])
    pairs;
  let post_eps = endpoints post in
  let xor_vars =
    List.filter_map
      (fun (name, ida) ->
        match List.assoc_opt name post_eps with
        | None -> None
        | Some idb ->
          let va = enc_pre ida and vb = enc_post idb in
          let x = Sat_lite.new_var solver in
          Sat_lite.add_clause solver [ -(x + 1); va + 1; vb + 1 ];
          Sat_lite.add_clause solver [ -(x + 1); -(va + 1); -(vb + 1) ];
          Sat_lite.add_clause solver [ x + 1; -(va + 1); vb + 1 ];
          Sat_lite.add_clause solver [ x + 1; va + 1; -(vb + 1) ];
          Some x)
      (endpoints pre)
  in
  Sat_lite.add_clause solver (List.map (fun x -> x + 1) xor_vars);
  match Sat_lite.solve ~conflict_limit:options.sat_conflicts solver with
  | Sat_lite.Unsat -> `Proved
  | Sat_lite.Unknown ->
    Obs.Metrics.incr m_cap_sat_conflicts;
    `Unknown "sat_lite conflict budget exhausted"
  | Sat_lite.Sat model ->
    let assign name =
      match Hashtbl.find_opt leaf_vars name with
      | Some v when v < Array.length model -> model.(v)
      | Some _ | None -> false
    in
    `Diff assign

let comb_check ?(options = default_options) ?(classes = []) ?memo pre post =
  if not (comb_interface_matches pre post) then
    Unknown "interface mismatch (leaf or endpoint names differ)"
  else begin
    let leaves = Sim.Equiv.leaf_names pre in
    let pairs = class_name_pairs [ pre; post ] classes in
    if List.length leaves > options.max_comb_leaves then begin
      Obs.Metrics.incr m_cap_comb_leaves;
      Unknown
        (Printf.sprintf "leaf cap: %d leaves > %d" (List.length leaves)
           options.max_comb_leaves)
    end
    else begin
      let finish = function
        | `Proved -> Proved
        | `Unknown msg -> Unknown msg
        | `Diff assign -> Refuted (make_comb_cex pre post leaves assign)
      in
      match comb_check_bdd ~options ~pairs ?memo pre post leaves with
      | r -> finish r
      | exception Budget _ ->
        Obs.Metrics.incr m_cap_bdd_nodes;
        finish (comb_check_sat ~options ~pairs pre post)
    end
  end

(* --- sequential equivalence with counterexample traces ------------------------ *)

(* Latches that can influence some primary output: the transitive fanin of the
   output drivers, crossing latches through their data pins (fixpoint).  A
   latch outside this set never reaches an output in any number of cycles, so
   the product machine can drop it without changing the verdict. *)
let observable_latch_ids net =
  let seen = Hashtbl.create 256 in
  let obs = Hashtbl.create 64 in
  let rec walk id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      let n = N.node net id in
      match n.N.kind with
      | N.Input | N.Const _ -> ()
      | N.Logic _ -> Array.iter walk n.N.fanins
      | N.Latch _ ->
        Hashtbl.replace obs n.N.id ();
        walk (N.latch_data net n).N.id
    end
  in
  List.iter (fun (_, n) -> walk n.N.id) (N.outputs net);
  obs

(* Variable layout (as [Sim.Equiv.seq_equal_bdd]): shared primary inputs by
   sorted name, then present state of [pre], then of [post]; next-state
   variables follow, shifted by the total latch count. *)
let seq_check ?(options = default_options) pre post =
  let pi_names =
    List.sort compare (List.map (fun n -> n.N.name) (N.inputs pre))
  in
  let pi_names_b =
    List.sort compare (List.map (fun n -> n.N.name) (N.inputs post))
  in
  let po_names net = List.sort compare (List.map fst (N.outputs net)) in
  if pi_names <> pi_names_b then Unknown "primary-input name mismatch"
  else if po_names pre <> po_names post then
    Unknown "primary-output name mismatch"
  else begin
    let all_latches_a = N.latches pre and all_latches_b = N.latches post in
    (* shrink the product machine to output-observable registers before the
       state-bit cap; latches outside every output cone cannot change the
       verdict, and dropping them rescues checks the full register count
       would push past the cap *)
    let obs_a = observable_latch_ids pre
    and obs_b = observable_latch_ids post in
    let latches_a =
      List.filter (fun l -> Hashtbl.mem obs_a l.N.id) all_latches_a
    and latches_b =
      List.filter (fun l -> Hashtbl.mem obs_b l.N.id) all_latches_b
    in
    let n1 = List.length latches_a and n2 = List.length latches_b in
    let full_bits =
      List.length all_latches_a + List.length all_latches_b
    in
    if n1 + n2 > options.max_product_bits then begin
      Obs.Metrics.incr m_cap_product_bits;
      Unknown
        (Printf.sprintf "state-bit cap: %d product bits > %d" (n1 + n2)
           options.max_product_bits)
    end
    else begin
      if full_bits > options.max_product_bits then
        Obs.Metrics.incr m_cone_rescued;
      try
        let npi = List.length pi_names in
        let man = Bdd.create () in
        let budget () =
          if Bdd.node_count man > options.max_bdd_nodes then
            raise (Budget "bdd node budget exhausted")
        in
        let pi_idx = Hashtbl.create 16 in
        List.iteri (fun i name -> Hashtbl.add pi_idx name i) pi_names;
        let ps_var_a = Hashtbl.create 16 and ps_var_b = Hashtbl.create 16 in
        List.iteri
          (fun j l -> Hashtbl.add ps_var_a l.N.id (npi + j))
          latches_a;
        List.iteri
          (fun j l -> Hashtbl.add ps_var_b l.N.id (npi + n1 + j))
          latches_b;
        let ns_base = npi + n1 + n2 in
        let build net ps_var latches =
          (* combinational nodes feeding an output or a relevant next-state
             function; cones of dropped latches are never built (their latch
             leaves have no product variable anyway) *)
          let need = Hashtbl.create 256 in
          let rec mark id =
            if not (Hashtbl.mem need id) then begin
              Hashtbl.replace need id ();
              match (N.node net id).N.kind with
              | N.Logic _ -> Array.iter mark (N.node net id).N.fanins
              | N.Input | N.Const _ | N.Latch _ -> ()
            end
          in
          List.iter (fun (_, n) -> mark n.N.id) (N.outputs net);
          List.iter (fun l -> mark (N.latch_data net l).N.id) latches;
          let values = Hashtbl.create 256 in
          List.iter
            (fun n ->
              Hashtbl.add values n.N.id
                (Bdd.var man (Hashtbl.find pi_idx n.N.name)))
            (N.inputs net);
          List.iter
            (fun l ->
              Hashtbl.add values l.N.id
                (Bdd.var man (Hashtbl.find ps_var l.N.id)))
            latches;
          List.iter
            (fun n ->
              match n.N.kind with
              | N.Const v ->
                Hashtbl.add values n.N.id (if v then Bdd.btrue else Bdd.bfalse)
              | N.Input | N.Latch _ | N.Logic _ -> ())
            (N.all_nodes net);
          List.iter
            (fun n ->
              if Hashtbl.mem need n.N.id then begin
                let fanins =
                  Array.map (fun f -> Hashtbl.find values f) n.N.fanins
                in
                let cover = N.cover_of n in
                let cube_bdd cube =
                  let acc = ref Bdd.btrue in
                  Logic.Cube.iteri
                    (fun i l ->
                      match l with
                      | Logic.Cube.One -> acc := Bdd.band man !acc fanins.(i)
                      | Logic.Cube.Zero ->
                        acc := Bdd.band man !acc (Bdd.bnot man fanins.(i))
                      | Logic.Cube.Both -> ())
                    cube;
                  !acc
                in
                let v =
                  List.fold_left
                    (fun acc c -> Bdd.bor man acc (cube_bdd c))
                    Bdd.bfalse cover.Logic.Cover.cubes
                in
                Hashtbl.add values n.N.id v;
                budget ()
              end)
            (N.topo_combinational net);
          values
        in
        let values_a = build pre ps_var_a latches_a in
        let values_b = build post ps_var_b latches_b in
        let transition = ref Bdd.btrue in
        let add_latch values ps_var l net =
          let ns_var = ns_base + Hashtbl.find ps_var l.N.id - npi in
          let f = Hashtbl.find values (N.latch_data net l).N.id in
          transition :=
            Bdd.band man !transition (Bdd.bxnor man (Bdd.var man ns_var) f);
          budget ()
        in
        List.iter (fun l -> add_latch values_a ps_var_a l pre) latches_a;
        List.iter (fun l -> add_latch values_b ps_var_b l post) latches_b;
        let init = ref Bdd.btrue in
        let add_init ps_var l =
          let v = Bdd.var man (Hashtbl.find ps_var l.N.id) in
          match N.latch_init l with
          | N.I0 -> init := Bdd.band man !init (Bdd.bnot man v)
          | N.I1 -> init := Bdd.band man !init v
          | N.Ix -> ()
        in
        List.iter (add_init ps_var_a) latches_a;
        List.iter (add_init ps_var_b) latches_b;
        let outputs_equal = ref Bdd.btrue in
        List.iter
          (fun (name, na) ->
            let nb = List.assoc name (N.outputs post) in
            let va = Hashtbl.find values_a na.N.id in
            let vb = Hashtbl.find values_b nb.N.id in
            outputs_equal := Bdd.band man !outputs_equal (Bdd.bxnor man va vb))
          (N.outputs pre);
        let pi_vars = List.init npi Fun.id in
        let ps_vars = List.init (n1 + n2) (fun j -> npi + j) in
        let image r =
          let after = Bdd.and_exists man (pi_vars @ ps_vars) !transition r in
          Bdd.rename man after (fun v -> v - n1 - n2)
        in
        (* rings, oldest first: rings.(i) is the frontier reached in exactly
           [i] steps (minus earlier states) — the breadcrumbs for trace
           extraction *)
        let rec fixpoint reached frontier rings =
          budget ();
          let bad = Bdd.band man frontier (Bdd.bnot man !outputs_equal) in
          if not (Bdd.is_false bad) then `Bad (bad, List.rev rings)
          else begin
            let next = image frontier in
            let fresh = Bdd.band man next (Bdd.bnot man reached) in
            if Bdd.is_false fresh then `Proved
            else fixpoint (Bdd.bor man reached fresh) fresh (fresh :: rings)
          end
        in
        match fixpoint !init !init [ !init ] with
        | `Proved -> Proved
        | `Bad (bad, rings) ->
          let k = List.length rings - 1 in
          let w = full_assign man bad (pi_vars @ ps_vars) in
          let value_in asn v = List.assoc v asn in
          let pi_vector asn =
            List.mapi (fun i name -> (name, value_in asn i)) pi_names
          in
          (* walk the rings backwards: at step i pick a predecessor state in
             ring i-1 and an input that maps it onto the witness state *)
          let rec backwards i s_i inputs =
            if i = 0 then (inputs, s_i)
            else begin
              let ring = List.nth rings (i - 1) in
              let ns_cube =
                List.fold_left
                  (fun acc v ->
                    let nsv = Bdd.var man (ns_base + (v - npi)) in
                    let lit =
                      if value_in s_i v then nsv else Bdd.bnot man nsv
                    in
                    Bdd.band man acc lit)
                  Bdd.btrue ps_vars
              in
              let pred = Bdd.band man (Bdd.band man !transition ns_cube) ring in
              let asn = full_assign man pred (pi_vars @ ps_vars) in
              let s_prev = List.filter (fun (v, _) -> v >= npi) asn in
              budget ();
              backwards (i - 1) s_prev (pi_vector asn :: inputs)
            end
          in
          let s_k = List.filter (fun (v, _) -> v >= npi) w in
          let inputs, s_0 = backwards k s_k [] in
          let trace = inputs @ [ pi_vector w ] in
          (* diverging endpoint at the witness cycle, from the product BDDs *)
          let assign_fun v =
            match List.assoc_opt v w with Some b -> b | None -> false
          in
          let endpoint =
            match
              List.find_opt
                (fun (name, na) ->
                  let nb = List.assoc name (N.outputs post) in
                  Bdd.eval man (Hashtbl.find values_a na.N.id) assign_fun
                  <> Bdd.eval man (Hashtbl.find values_b nb.N.id) assign_fun)
                (N.outputs pre)
            with
            | Some (name, _) -> name
            | None -> "(none)"
          in
          (* replay states are total over ALL latches: registers dropped from
             the product machine cannot influence outputs, so their declared
             initial value (Ix resolved to 0) is as good as any *)
          let init_value_of l ps_var =
            match Hashtbl.find_opt ps_var l.N.id with
            | Some v -> value_in s_0 v
            | None ->
              (match N.latch_init l with N.I1 -> true | N.I0 | N.Ix -> false)
          in
          let state_of latches ps_var =
            List.map (fun l -> (l.N.id, init_value_of l ps_var)) latches
          in
          let named_init latches ps_var =
            List.map (fun l -> (l.N.name, init_value_of l ps_var)) latches
          in
          (* simulation confirmation (the cex-quality contract): replay the
             trace on both netlists from the extracted initial states and
             demand an actual output divergence *)
          let sa = ref (state_of all_latches_a ps_var_a) in
          let sb = ref (state_of all_latches_b ps_var_b) in
          let confirmed = ref None in
          List.iter
            (fun vector ->
              if !confirmed = None then begin
                let pi name = List.assoc name vector in
                let sa', oa = Sim.Simulate.step pre ~pi ~state:!sa in
                let sb', ob = Sim.Simulate.step post ~pi ~state:!sb in
                sa := sa';
                sb := sb';
                match
                  List.find_opt
                    (fun (name, va) -> List.assoc_opt name ob <> Some va)
                    oa
                with
                | Some (name, _) -> confirmed := Some name
                | None -> ()
              end)
            trace;
          (match !confirmed with
           | Some name ->
             Refuted
               { endpoint = name;
                 leaves = pi_vector w;
                 init_pre = named_init all_latches_a ps_var_a;
                 init_post = named_init all_latches_b ps_var_b;
                 trace;
                 sim_confirmed = true }
           | None ->
             (* never observed on a sound extraction; degrade rather than
                report a refutation simulation cannot reproduce *)
             Unknown
               (Printf.sprintf
                  "unconfirmed counterexample for %s (replay of %d cycle(s) \
                   did not diverge)"
                  endpoint (List.length trace)))
      with Budget msg ->
        Obs.Metrics.incr m_cap_bdd_nodes;
        Unknown msg
    end
  end

(* --- DC_ret invariant: bounded reachability ----------------------------------- *)

let dcret_check ?(options = default_options) net classes =
  let live_pairs =
    List.concat_map
      (fun cls ->
        let live =
          List.filter_map
            (fun id ->
              match N.node_opt net id with
              | Some n when N.is_latch n -> Some n
              | Some _ | None -> None)
            (List.sort_uniq compare cls)
        in
        match live with
        | [] | [ _ ] -> []
        | rep :: rest -> List.map (fun m -> (rep, m)) rest)
      classes
  in
  if live_pairs = [] then Proved
  else begin
    let latches = N.latches net in
    let nl = List.length latches in
    if nl > options.max_state_bits then begin
      Obs.Metrics.incr m_cap_state_bits;
      Unknown
        (Printf.sprintf "state-bit cap: %d latches > %d" nl
           options.max_state_bits)
    end
    else begin
      try
        let pis = N.inputs net in
        let npi = List.length pis in
        let man = Bdd.create () in
        let budget () =
          if Bdd.node_count man > options.max_bdd_nodes then
            raise (Budget "bdd node budget exhausted")
        in
        let ps_var = Hashtbl.create 16 in
        List.iteri (fun j l -> Hashtbl.add ps_var l.N.id (npi + j)) latches;
        let pi_names = List.map (fun p -> p.N.name) pis in
        let pi_idx = Hashtbl.create 16 in
        List.iteri (fun i name -> Hashtbl.add pi_idx name i) pi_names;
        let var_of_name name =
          match Hashtbl.find_opt pi_idx name with
          | Some i -> i
          | None ->
            (* latch leaves resolve through ps_var below; inputs only here *)
            invalid_arg "dcret_check: unknown leaf"
        in
        let values = Hashtbl.create 256 in
        List.iter
          (fun p ->
            Hashtbl.add values p.N.id (Bdd.var man (var_of_name p.N.name)))
          pis;
        List.iter
          (fun l ->
            Hashtbl.add values l.N.id
              (Bdd.var man (Hashtbl.find ps_var l.N.id)))
          latches;
        List.iter
          (fun n ->
            match n.N.kind with
            | N.Const b ->
              Hashtbl.add values n.N.id (if b then Bdd.btrue else Bdd.bfalse)
            | N.Input | N.Latch _ | N.Logic _ -> ())
          (N.all_nodes net);
        List.iter
          (fun n ->
            let fanins =
              Array.map (fun f -> Hashtbl.find values f) n.N.fanins
            in
            let cover = N.cover_of n in
            let cube_bdd cube =
              let acc = ref Bdd.btrue in
              Logic.Cube.iteri
                (fun i l ->
                  match l with
                  | Logic.Cube.One -> acc := Bdd.band man !acc fanins.(i)
                  | Logic.Cube.Zero ->
                    acc := Bdd.band man !acc (Bdd.bnot man fanins.(i))
                  | Logic.Cube.Both -> ())
                cube;
              !acc
            in
            let v =
              List.fold_left
                (fun acc c -> Bdd.bor man acc (cube_bdd c))
                Bdd.bfalse cover.Logic.Cover.cubes
            in
            Hashtbl.add values n.N.id v;
            budget ())
          (N.topo_combinational net);
        let ns_base = npi + nl in
        let transition = ref Bdd.btrue in
        List.iteri
          (fun j l ->
            let f = Hashtbl.find values (N.latch_data net l).N.id in
            transition :=
              Bdd.band man !transition
                (Bdd.bxnor man (Bdd.var man (ns_base + j)) f);
            budget ())
          latches;
        (* initial states: declared values; replicated copies of one register
           share its (possibly unknown) initial value, so class members are
           constrained pairwise equal even when the declared init is Ix *)
        let init = ref Bdd.btrue in
        List.iter
          (fun l ->
            let v = Bdd.var man (Hashtbl.find ps_var l.N.id) in
            match N.latch_init l with
            | N.I0 -> init := Bdd.band man !init (Bdd.bnot man v)
            | N.I1 -> init := Bdd.band man !init v
            | N.Ix -> ())
          latches;
        let pair_vars =
          List.map
            (fun (a, b) ->
              ( (a.N.name, Hashtbl.find ps_var a.N.id),
                (b.N.name, Hashtbl.find ps_var b.N.id) ))
            live_pairs
        in
        List.iter
          (fun ((_, va), (_, vb)) ->
            init :=
              Bdd.band man !init
                (Bdd.bxnor man (Bdd.var man va) (Bdd.var man vb)))
          pair_vars;
        let bad =
          List.fold_left
            (fun acc ((_, va), (_, vb)) ->
              Bdd.bor man acc
                (Bdd.bxor man (Bdd.var man va) (Bdd.var man vb)))
            Bdd.bfalse pair_vars
        in
        let pi_vars = List.init npi Fun.id in
        let ps_vars = List.init nl (fun j -> npi + j) in
        let image r =
          let after = Bdd.and_exists man (pi_vars @ ps_vars) !transition r in
          Bdd.rename man after (fun v -> v - nl)
        in
        let rec fixpoint reached frontier rings =
          budget ();
          let viol = Bdd.band man frontier bad in
          if not (Bdd.is_false viol) then `Bad (viol, List.rev rings)
          else begin
            let next = image frontier in
            let fresh = Bdd.band man next (Bdd.bnot man reached) in
            if Bdd.is_false fresh then `Proved
            else fixpoint (Bdd.bor man reached fresh) fresh (fresh :: rings)
          end
        in
        match fixpoint !init !init [ !init ] with
        | `Proved -> Proved
        | `Bad (viol, rings) ->
          let k = List.length rings - 1 in
          let s_k = full_assign man viol ps_vars in
          let value_in asn v = List.assoc v asn in
          let pi_vector asn =
            List.mapi (fun i name -> (name, value_in asn i)) pi_names
          in
          let rec backwards i s_i inputs =
            if i = 0 then (inputs, s_i)
            else begin
              let ring = List.nth rings (i - 1) in
              let ns_cube =
                List.fold_left
                  (fun acc v ->
                    let nsv = Bdd.var man (ns_base + (v - npi)) in
                    let lit =
                      if value_in s_i v then nsv else Bdd.bnot man nsv
                    in
                    Bdd.band man acc lit)
                  Bdd.btrue ps_vars
              in
              let pred = Bdd.band man (Bdd.band man !transition ns_cube) ring in
              let asn = full_assign man pred (pi_vars @ ps_vars) in
              let s_prev = List.filter (fun (v, _) -> v >= npi) asn in
              budget ();
              backwards (i - 1) s_prev (pi_vector asn :: inputs)
            end
          in
          let trace, s_0 = backwards k s_k [] in
          let violating_pair =
            List.find_opt
              (fun ((_, va), (_, vb)) ->
                value_in s_k va <> value_in s_k vb)
              pair_vars
          in
          let endpoint =
            match violating_pair with
            | Some ((na, _), (nb, _)) ->
              Printf.sprintf "dcret:%s<>%s" na nb
            | None -> "dcret:(none)"
          in
          let named_state asn =
            List.map
              (fun l -> (l.N.name, value_in asn (Hashtbl.find ps_var l.N.id)))
              latches
          in
          (* replay: drive the netlist through the trace and demand the two
             class members really disagree at the violation cycle *)
          let state0 =
            List.map
              (fun l -> (l.N.id, value_in s_0 (Hashtbl.find ps_var l.N.id)))
              latches
          in
          let final_state =
            List.fold_left
              (fun state vector ->
                let pi name = List.assoc name vector in
                fst (Sim.Simulate.step net ~pi ~state))
              state0 trace
          in
          let confirmed =
            List.exists
              (fun (a, b) ->
                match
                  ( List.assoc_opt a.N.id final_state,
                    List.assoc_opt b.N.id final_state )
                with
                | Some va, Some vb -> va <> vb
                | _, _ -> false)
              live_pairs
          in
          if confirmed then
            Refuted
              { endpoint;
                leaves = (match trace with [] -> [] | _ -> List.nth trace (k - 1));
                init_pre = named_state s_0;
                init_post = named_state s_k;
                trace;
                sim_confirmed = true }
          else
            Unknown
              (Printf.sprintf
                 "unconfirmed class violation %s (replay of %d cycle(s) did \
                  not diverge)"
                 endpoint (List.length trace))
      with Budget msg ->
        Obs.Metrics.incr m_cap_bdd_nodes;
        Unknown msg
    end
  end

(* --- per-pass driver ----------------------------------------------------------- *)

let timed f =
  let t0 = Unix.gettimeofday () in (* lint-waive: nondet/wall-clock — feeds only the record's seconds measurement field, never a verdict *)
  let v = f () in
  (v, Unix.gettimeofday () -. t0) (* lint-waive: nondet/wall-clock — measurement only, same as above *)

let check_pass ?(options = default_options) ?memo ~label ~pass ~classes pre post
    =
  (* the class-invariant certificate only reads [post] and owns its own BDD
     scope, so it runs as a sibling task of the comb/seq check.  [post]'s
     lazily cached topo order is computed before forking: both lanes read it
     concurrently afterwards. *)
  let dcret_fut =
    if classes = [] then None
    else begin
      ignore (N.topo_combinational post);
      Some
        (Sched.fork (fun () ->
             timed (fun () -> dcret_check ~options post classes)))
    end
  in
  let eq_record =
    if comb_interface_matches pre post then begin
      let v, secs =
        timed (fun () -> comb_check ~options ~classes ?memo pre post)
      in
      match v with
      | Proved ->
        { label; pass; rule = "eq-pass/comb"; verdict = Proved; seconds = secs }
      | Refuted _ | Unknown _ ->
        (* a combinational difference is not yet a refutation: passes such as
           unreachable-state simplification change cone functions only on
           unreachable states.  Escalate to the sequential product machine,
           which alone may refute. *)
        let v2, secs2 = timed (fun () -> seq_check ~options pre post) in
        { label;
          pass;
          rule = "eq-pass/seq";
          verdict = v2;
          seconds = secs +. secs2 }
    end
    else begin
      let v, secs = timed (fun () -> seq_check ~options pre post) in
      { label; pass; rule = "eq-pass/seq"; verdict = v; seconds = secs }
    end
  in
  let dcret_records =
    match dcret_fut with
    | None -> []
    | Some fut ->
      let v, secs = Sched.join fut in
      [ { label; pass; rule = "dcret-invariant"; verdict = v; seconds = secs } ]
  in
  let records = eq_record :: dcret_records in
  List.iter
    (fun r ->
      Obs.Metrics.incr
        (match r.verdict with
         | Proved -> m_verdicts_proved
         | Refuted _ -> m_verdicts_refuted
         | Unknown _ -> m_verdicts_unknown))
    records;
  records

(* --- flow instrumentation ------------------------------------------------------ *)

let instrument ?(options = default_options) ~label sink =
  let reference = ref None in
  let memo = memo () in
  (* Boundary checks run as scheduler tasks so a whole flow's checks overlap
     with the flow itself (and with each other's dcret lanes).  Both sides of
     every check are snapshots the flow never mutates again, so the tasks
     need no lock; they are *chained* — task k+1 first joins task k — because
     they share [memo] (check k's post cones are check k+1's pre cones).
     The chain also makes [eqcheck.bdd.reuse] and the memo hit sequence
     byte-identical at any [--jobs N].  [finish] joins the chain and fills
     [sink] in boundary order, exactly as the serial version appended. *)
  let chain = ref None in
  let pending = ref [] in
  let remember net =
    reference := Some (net, N.revision net, N.outputs_revision net, N.copy net)
  in
  let unchanged net =
    match !reference with
    | Some (src, rev, orev, _) ->
      src == net && N.revision net = rev && N.outputs_revision net = orev
    | None -> false
  in
  let boundary pass classes net =
    match !reference with
    | Some (_, _, _, pre_copy) when not (unchanged net) ->
      let post_copy = N.copy net in
      let prev = !chain in
      let fut =
        Sched.fork (fun () ->
            (match prev with
             | Some p -> ignore (Sched.join p)
             | None -> ());
            check_pass ~options ~memo ~label ~pass ~classes pre_copy post_copy)
      in
      chain := Some fut;
      pending := fut :: !pending;
      (* the snapshot (identical node ids, never mutated) is both the next
         boundary's [pre] side and the memo key under which [check_pass]
         records this check's post-side cone BDDs — so the next check reuses
         them instead of rebuilding *)
      reference :=
        Some (net, N.revision net, N.outputs_revision net, post_copy)
    | Some _ -> () (* unchanged: the existing snapshot still matches *)
    | None -> remember net
  in
  let finish () =
    let futs = List.rev !pending in
    pending := [];
    List.iter (fun fut -> sink := !sink @ Sched.join fut) futs
  in
  let ins =
    { Verify.checkpoint = boundary;
      audited =
        (fun pass classes net f ->
          (* an in-place pass: its input is the network as it stands now; a
             stale reference (another lineage) is replaced before running *)
          if not (unchanged net) then remember net;
          let result = f () in
          boundary pass classes net;
          result) }
  in
  (ins, remember, finish)

(* --- rendering ------------------------------------------------------------------ *)

let counts records =
  List.fold_left
    (fun (p, r, u) rec_ ->
      match rec_.verdict with
      | Proved -> (p + 1, r, u)
      | Refuted _ -> (p, r + 1, u)
      | Unknown _ -> (p, r, u + 1))
    (0, 0, 0) records

let render records =
  String.concat "\n"
    (List.map
       (fun r ->
         let detail =
           match r.verdict with
           | Proved -> ""
           | Refuted c ->
             Printf.sprintf " endpoint=%s trace=%d sim_confirmed=%b"
               c.endpoint (List.length c.trace) c.sim_confirmed
           | Unknown msg -> Printf.sprintf " (%s)" msg
         in
         Printf.sprintf "%-8s %s: %s [%s] %.3fs%s"
           (verdict_name r.verdict) r.label r.pass r.rule r.seconds detail)
       records)

let render_json records =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i r ->
      let extra =
        match r.verdict with
        | Proved -> ""
        | Refuted c ->
          Printf.sprintf
            ", \"endpoint\": %S, \"trace_length\": %d, \"sim_confirmed\": %b"
            c.endpoint (List.length c.trace) c.sim_confirmed
        | Unknown msg -> Printf.sprintf ", \"reason\": %S" msg
      in
      Buffer.add_string buf
        (Printf.sprintf
           "  { \"label\": %S, \"pass\": %S, \"rule\": %S, \"verdict\": %S, \
            \"seconds\": %.6f%s }%s\n"
           r.label r.pass r.rule
           (verdict_name r.verdict)
           r.seconds extra
           (if i = List.length records - 1 then "" else ",")))
    records;
  Buffer.add_string buf "]";
  Buffer.contents buf
