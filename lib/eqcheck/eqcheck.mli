(** Semantic equivalence analyzer: per-pass sequential equivalence checking
    modulo DC_ret.

    [lib/verify] proves structural invariants; this layer proves the
    {e semantic} claim the whole flow rests on — every pass preserves I/O
    behavior, and the retiming-induced register-equivalence classes really
    are invariants of the reachable state space.

    Three engines, one verdict lattice ({!Proved} > {!Unknown} > {!Refuted}):

    - {!comb_check} — combinational equivalence of pre/post-pass next-state
      and output cones over shared leaves (primary inputs and present-state
      registers, matched by name), via BDDs with a {!Sat_lite} fallback past
      the node budget.  DC_ret cubes are satisfiability don't-cares: states
      where replicated registers disagree are excluded from the comparison.
    - {!seq_check} — product-machine sequential equivalence from the
      preserved initial states, with a counterexample {e input trace}
      extracted by walking the reachability rings backwards and confirmed by
      replaying it through [Sim.Simulate] on both netlists.
    - {!dcret_check} — bounded reachability over the latch state space
      certifying each DC_ret class is an invariant: the XOR of replicated
      registers is 0 in every reachable state from the preserved initial
      state.

    Every engine is budgeted (state-bit caps, a BDD node cap, a SAT conflict
    cap) and degrades to an explicit {!Unknown} — never to silence and never
    to a spurious refutation.  A {!Refuted} verdict always carries a
    simulation-confirmed counterexample; a candidate the replay cannot
    reproduce is downgraded to {!Unknown}. *)

type options = {
  max_state_bits : int;
      (** latch cap for {!dcret_check} reachability; beyond it: Unknown *)
  max_product_bits : int;
      (** total latch cap (both machines) for {!seq_check}; beyond it:
          Unknown *)
  max_comb_leaves : int;
      (** shared-leaf cap for {!comb_check}; beyond it: Unknown *)
  max_bdd_nodes : int;
      (** manager node budget; {!comb_check} falls back to SAT, the
          sequential engines report Unknown *)
  sat_conflicts : int;  (** conflict budget of the SAT fallback *)
}

val default_options : options

type cex = {
  endpoint : string;
      (** diverging primary output / next-state function, or
          ["dcret:<a><><b>"] for a class violation *)
  leaves : (string * bool) list;
      (** combinational: the full leaf assignment; sequential: the input
          vector of the diverging cycle *)
  init_pre : (string * bool) list;  (** initial state, latch name -> value *)
  init_post : (string * bool) list;
  trace : (string * bool) list list;
      (** per-cycle primary-input vectors; [[]] for a purely combinational
          witness *)
  sim_confirmed : bool;
      (** the witness was replayed through [Sim.Simulate] and the divergence
          reproduced *)
}

type verdict =
  | Proved
  | Refuted of cex
  | Unknown of string  (** the reason: which cap or budget was exceeded *)

type record = {
  label : string;  (** circuit / flow name *)
  pass : string;
  rule : string;  (** ["eq-pass/comb"], ["eq-pass/seq"], ["dcret-invariant"] *)
  verdict : verdict;
  seconds : float;
}

val verdict_name : verdict -> string
(** ["proved"], ["refuted"], ["unknown"]. *)

type memo
(** Cone-BDD build memo for a sequence of checks over one pass lineage: when
    a check's [pre] network is (a snapshot of) the previous check's [post],
    its cone functions are taken from the shared BDD table instead of being
    rebuilt.  Reuses are counted by the [eqcheck.bdd.reuse] metric; node
    budgets still trip exactly as if each check rebuilt from scratch. *)

val memo : unit -> memo
(** A fresh (empty) memo. *)

val comb_check :
  ?options:options ->
  ?classes:int list list ->
  ?memo:memo ->
  Netlist.Network.t ->
  Netlist.Network.t ->
  verdict
(** [comb_check pre post] compares every next-state and output cone of the
    two networks as combinational functions of their shared leaves, treating
    the DC_ret [classes] (latch ids; dead ids tolerated) as don't-cares.
    A {!Refuted} here means the {e cone functions} differ on a care-set
    assignment — which refutes sequential equivalence only if that assignment
    is reachable; flow integration escalates to {!seq_check} instead of
    trusting it (unreachable-state simplification legally changes cones). *)

val seq_check :
  ?options:options -> Netlist.Network.t -> Netlist.Network.t -> verdict
(** Product-machine sequential equivalence from the declared initial states
    ([Ix] latches unconstrained).  {!Refuted} carries an input trace from the
    initial state to an output divergence, replayed and confirmed through
    [Sim.Simulate]. *)

val dcret_check :
  ?options:options -> Netlist.Network.t -> int list list -> verdict
(** Certify every register-equivalence class as a reachability invariant:
    from the preserved initial state (class members start equal, including
    [Ix] members, which share one unconstrained value), no reachable state
    lets two members of one class disagree. *)

val check_pass :
  ?options:options ->
  ?memo:memo ->
  label:string ->
  pass:string ->
  classes:int list list ->
  Netlist.Network.t ->
  Netlist.Network.t ->
  record list
(** One pass boundary: an [eq-pass/*] record ({!comb_check} first when the
    leaf/endpoint interfaces match, escalating to {!seq_check} on any
    combinational difference or doubt), plus a [dcret-invariant] record on
    the post-pass network when [classes] is non-empty. *)

val instrument :
  ?options:options ->
  label:string ->
  record list ref ->
  Verify.instrument * (Netlist.Network.t -> unit) * (unit -> unit)
(** An instrument for [Core.Flow] / [Core.Resynth] that runs {!check_pass}
    at every pass boundary against the network as of the previous boundary.
    Checks run as chained [Sched] tasks over snapshots (each joins its
    predecessor, so the shared cone memo — and the [eqcheck.bdd.reuse]
    count — stay byte-identical at any [--jobs N]), overlapping with the
    flow itself when a pool is active.  Returns [(ins, seed, finish)]:
    [seed] seeds (or re-seeds) the reference network — call it with a flow's
    input before the flow runs, and again whenever the pass lineage
    branches; [finish] joins all outstanding checks and appends their
    records to the sink in boundary order — call it before reading the
    sink. *)

val counts : record list -> int * int * int
(** (proved, refuted, unknown). *)

val render : record list -> string
(** One line per record. *)

val render_json : record list -> string
(** The records as a JSON array. *)
