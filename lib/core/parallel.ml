(* Domain-based deterministic parallel map (OCaml 5).

   Work items are claimed from a shared atomic counter, so domains stay busy
   regardless of per-item cost, but results land in a slot array indexed by
   item position: the caller observes the same ordering as a serial
   [Array.map], whatever the interleaving was.  Each worker runs the supplied
   function with no shared mutable state beyond the claim counter — callers
   must hand out per-item state (networks, BDD scopes, [Random.State]) inside
   [f] itself, which every suite builder already does by seeding from the
   item.  BDD nodes themselves live in the process-wide shared table
   ([lib/bdd]), so domains dedup structure automatically while their scopes
   keep per-item accounting independent. *)

let cores () = Domain.recommended_domain_count ()

let default_jobs () = max 1 (cores ())

(* More workers than cores measures scheduling overhead, not scaling;
   benchmark reporters use this to flag misleading speedup numbers. *)
let oversubscribed ~jobs = jobs > cores ()

exception Worker_failure of int * exn

(* [map ~jobs f items]: apply [f] to every element, using up to [jobs]
   domains (including the calling one).  Results are returned in item order.
   If any [f] raises, the exception of the lowest-indexed failing item is
   re-raised — also deterministically. *)
let map ?jobs f items =
  let n = Array.length items in
  let jobs =
    match jobs with Some j -> max 1 (min j n) | None -> min (default_jobs ()) n
  in
  if jobs <= 1 || n <= 1 then Array.map f items
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let r =
            match f items.(i) with
            | v -> Ok v
            | exception e -> Error e
          in
          results.(i) <- Some r;
          loop ()
        end
      in
      loop ()
    in
    (* each worker is one span: on a Chrome trace its domain renders as a
       distinct track holding the per-item spans taken inside [f] *)
    let traced_worker () = Obs.Trace.span ~cat:"parallel" "worker" worker in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn traced_worker) in
    traced_worker ();
    Array.iter Domain.join domains;
    Array.mapi
      (fun i r ->
        match r with
        | Some (Ok v) -> v
        | Some (Error e) -> raise (Worker_failure (i, e))
        | None -> assert false)
      results
  end

let map_list ?jobs f items = Array.to_list (map ?jobs f (Array.of_list items))
