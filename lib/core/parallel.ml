(* Re-export of the fork-join task scheduler.

   The scheduler itself lives in [lib/sched] so layers below [core] —
   [Eqcheck] boundary checks, [Verify] rule groups — can fork tasks onto
   the same pool; [Core.Parallel] stays the canonical name used by flows,
   reports and binaries. *)

include Sched
