module N = Netlist.Network

type stats = {
  regs : int;
  clk : float;
  area : float;
}

type attempt = {
  stats : stats option;
  note : string;
  verified : bool;
}

type row = {
  circuit : string;
  base : stats;
  retimed : attempt;
  resynthesized : attempt;
  resynth_outcome : Resynth.outcome option;
  eqcheck : Eqcheck.record list;
  verify_diags : Verify.diagnostic list;
}

let measure ?timer net ~lib =
  let clk =
    match timer with
    | Some t when Sta.Incremental.network t == net -> Sta.Incremental.period t
    | Some _ | None -> Sta.clock_period net (Sta.mapped_delay ~default:1.0 ())
  in
  { regs = N.num_latches net; clk; area = Techmap.Mapper.mapped_area net ~lib }

let script_delay_flow net ~lib = Synth_opt.Script.script_delay net ~lib

(* Baseline B: min-delay retiming, then external don't-cares from implicit
   state enumeration, per-node simplification, and a min-delay remap.

   [ins] instruments every named pass boundary: in-place rewrites run under
   the journal audit, net-producing passes get a static-rule checkpoint.
   The default instrument is free of cost. *)
let retiming_flow ?current_period ?(ins = Verify.no_instrument) net ~lib =
  let model = Sta.mapped_delay ~default:1.0 () in
  let pass name f = Obs.Trace.span ~cat:"retiming" name f in
  match
    pass "retiming/min-period" (fun () ->
        Retiming.Minperiod.retime_min_period ?current_period net ~model)
  with
  | Error failure -> Error (Retiming.Minperiod.failure_message failure)
  | Ok (retimed, _) ->
    ins.Verify.checkpoint "retiming/min-period" [] retimed;
    pass "retiming/unreachable-simplify" (fun () ->
        ins.Verify.audited "retiming/unreachable-simplify" [] retimed (fun () ->
            ignore (Dontcare.Reach.simplify_with_unreachable retimed)));
    pass "retiming/simplify-nodes" (fun () ->
        ins.Verify.audited "retiming/simplify-nodes" [] retimed (fun () ->
            ignore (Synth_opt.Script.simplify_nodes retimed)));
    pass "retiming/sweep" (fun () ->
        ins.Verify.audited "retiming/sweep" [] retimed (fun () ->
            N.sweep retimed));
    let remapped =
      pass "retiming/remap" (fun () ->
          Techmap.Mapper.map retimed ~lib ~objective:Techmap.Mapper.Min_delay)
    in
    ins.Verify.checkpoint "retiming/remap" [] remapped;
    Ok remapped

let resynthesis_flow ?(options = Resynth.default_options)
    ?(ins = Verify.no_instrument) net =
  let outcome = Resynth.resynthesize ~options ~ins net in
  if outcome.Resynth.applied then Ok (outcome.Resynth.network, outcome)
  else Error outcome.Resynth.note

let run_all ?(verify = true) ?(verify_each = false) ?(eqcheck_each = false)
    ?eqcheck_options ?(ins = Verify.no_instrument)
    ?(lib = Techmap.Genlib.mcnc_lite)
    ?(resynth_options = Resynth.default_options) ~name net =
  Obs.Trace.span ~cat:"flow"
    ~args:[ ("circuit", Obs.Trace.Str name) ]
    ("flow/" ^ name)
  @@ fun () ->
  let verify_ins =
    if verify_each then Verify.instrument ~label:name else Verify.no_instrument
  in
  let eq_records = ref [] in
  let eq_ins, eq_seed, eq_finish =
    if eqcheck_each then
      Eqcheck.instrument ?options:eqcheck_options ~label:name eq_records
    else (Verify.no_instrument, (fun _ -> ()), fun () -> ())
  in
  (* caller-supplied instrument first: the serving daemon injects its
     cancellation / deadline check here, so a cancel takes effect at the next
     pass boundary before any verifier work runs *)
  let ins = Verify.compose ins (Verify.compose verify_ins eq_ins) in
  eq_seed net;
  let mapped =
    Obs.Trace.span ~cat:"flow" "script.delay" (fun () ->
        script_delay_flow net ~lib)
  in
  N.set_name_of_model mapped name;
  ins.Verify.checkpoint "script.delay" [] mapped;
  (* one timer per network: the base measurement and the retiming flow's
     candidate filtering share this handle's analysis of [mapped] *)
  let timer = Sta.Incremental.create mapped (Sta.mapped_delay ~default:1.0 ()) in
  let base = measure ~timer mapped ~lib in
  let check result =
    if not verify then true
    else
      Obs.Trace.span ~cat:"verify" "verify/seq-equal" (fun () ->
          try Sim.Equiv.seq_equal mapped result
          with Failure _ -> Sim.Equiv.seq_equal_random ~seed:7 mapped result)
  in
  (* Each flow's result gets a verification lane — measurement, BDD/co-sim
     equivalence against [mapped], and the static verifier — forked as a
     task so it overlaps with the other flow (and, nested, with the verify
     rule groups and eqcheck boundary tasks).  Every lane input is owned by
     exactly one lane; [mapped] is shared read-only, its lazily cached topo
     order computed up front. *)
  ignore (N.topo_combinational mapped);
  let lane which net' =
    Parallel.fork (fun () ->
        Obs.Trace.span ~cat:"verify" ("lane/" ^ which) (fun () ->
            let stats = measure net' ~lib in
            let verified = check net' in
            let diags = if verify_each then Verify.run net' else [] in
            ({ stats = Some stats; note = ""; verified }, diags)))
  in
  let failed msg =
    Parallel.fork (fun () -> ({ stats = None; note = msg; verified = true }, []))
  in
  (* the two flows branch from [mapped]: re-seed the eqcheck reference so
     each flow's first pass is compared against its real input *)
  eq_seed mapped;
  let retimed_lane =
    match retiming_flow ~current_period:base.clk ~ins mapped ~lib with
    | Ok net' -> lane "retimed" net'
    | Error msg -> failed msg
  in
  eq_seed mapped;
  let resynth_outcome = ref None in
  let resynth_lane =
    match resynthesis_flow ~options:resynth_options ~ins mapped with
    | Ok (net', outcome) ->
      resynth_outcome := Some outcome;
      lane "resynthesized" net'
    | Error msg -> failed msg
  in
  (* joins in program order: attempt values, diagnostic order and the
     eqcheck record stream match the serial run byte for byte *)
  let retimed, retimed_diags = Parallel.join retimed_lane in
  let resynthesized, resynth_diags = Parallel.join resynth_lane in
  eq_finish ();
  { circuit = name;
    base;
    retimed;
    resynthesized;
    resynth_outcome = !resynth_outcome;
    eqcheck = !eq_records;
    verify_diags = retimed_diags @ resynth_diags }
