(** The paper's contribution: performance-driven resynthesis exploiting
    retiming-induced state register equivalence (Algorithm 1).

    Pipeline on the delay-critical path of a mapped sequential network:
    + make the critical path fanout-free by gate duplication;
    + forward-retime every state register feeding the path across its fanout
      stem, recording the induced register-equivalence classes (DC_ret);
    + run the retiming engine: forward retiming across every retimable path
      node to a fixpoint, computing initial states;
    + simplify the next-state logic of the retimed registers with DC_ret;
    + re-map locally and run constrained min-area retiming.

    The transformation requires feedback through the registers that feed the
    critical path; purely combinational paths and pipelines are returned
    unchanged (paper, Section IV). *)

type dc_mode =
  | Dc_cover
      (** minimize with the explicit [ri XOR rj] don't-care cover (the
          paper's formulation) *)
  | Substitution
      (** replace equivalent registers by class representatives before
          minimizing (fast path; same fixed point on the suite) *)

type options = {
  lib : Techmap.Genlib.t;
  model : Sta.model;
  max_cone_leaves : int;   (** simplification effort cap *)
  dc_mode : dc_mode;
  remap : bool;            (** re-map after simplification *)
  retime_post : bool;
      (** min-period retiming after restructuring, redistributing the
          registers the engine piled up at the path's end *)
  min_area_post : bool;    (** constrained min-area retiming post-pass *)
  guard_regression : bool;
      (** return the original network when the result's period regressed
          (the paper's open "how far should forward retiming go" question) *)
}

val default_options : options

type outcome = {
  network : Netlist.Network.t;
  applied : bool;  (** false: original returned *)
  note : string;
  stem_splits : int;       (** registers replicated across fanout stems *)
  equivalence_classes : int;
  forward_moves : int;     (** retiming-engine moves performed *)
  simplified_cones : int;  (** cones rebuilt using DC_ret *)
}

val resynthesize :
  ?options:options -> ?ins:Verify.instrument -> Netlist.Network.t -> outcome
(** The input network is never modified.  [ins] runs the netlist verifier at
    every pass boundary of Algorithm 1 — in-place rewrites under the journal
    audit, with the current DC_ret equivalence classes handed to the
    retiming-soundness rule (default: no checking). *)

val make_path_fanout_free :
  Netlist.Network.t -> Netlist.Network.node list -> int
(** Exposed for tests: duplicate gates so that each path node feeds only the
    next path node; returns the number of duplications. *)

val critical_path_from_timing :
  Netlist.Network.t -> Sta.model -> Sta.timing ->
  Netlist.Network.node list
(** The critical path the engine works on, preferring (among equally critical
    paths) one whose head gate reads only registers.  Takes precomputed
    timing — pass {!Sta.Incremental.timing} to avoid a fresh analysis. *)

val critical_path_for_engine :
  Netlist.Network.t -> Sta.model -> Netlist.Network.node list
(** {!critical_path_from_timing} on a one-shot full analysis. *)
