(** The three evaluation flows of the paper's Table I.

    Starting from an RTL-like network:
    - {!script_delay_flow} — performance optimization + min-delay mapping;
    - {!retiming_flow} — the above, then SIS-style min-delay retiming,
      implicit-state-enumeration external don't-cares, resimplification and
      remapping ("conventional retiming and resynthesis");
    - {!resynthesis_flow} — the above baseline plus the paper's technique.

    Every flow reports registers / clock period / mapped area and whether the
    result was verified sequentially equivalent to the flow input. *)

type stats = {
  regs : int;
  clk : float;
  area : float;
}

type attempt = {
  stats : stats option;  (** [None]: the flow could not transform the input *)
  note : string;         (** failure reason or remarks *)
  verified : bool;       (** sequential equivalence against the flow input *)
}

type row = {
  circuit : string;
  base : stats;                    (** script.delay *)
  retimed : attempt;               (** + retiming + comb. opt. *)
  resynthesized : attempt;         (** + resynthesis (the paper) *)
  resynth_outcome : Resynth.outcome option;
  eqcheck : Eqcheck.record list;
      (** per-pass semantic verdicts ([--eqcheck-each]); [[]] otherwise *)
  verify_diags : Verify.diagnostic list;
      (** static-rule diagnostics of the final flow outputs ([verify_each]);
          [[]] otherwise *)
}

val measure :
  ?timer:Sta.Incremental.t -> Netlist.Network.t -> lib:Techmap.Genlib.t ->
  stats
(** Clock period comes from [timer] when it is a handle for this very
    network; a one-shot full analysis otherwise. *)

val script_delay_flow :
  Netlist.Network.t -> lib:Techmap.Genlib.t -> Netlist.Network.t

val retiming_flow :
  ?current_period:float -> ?ins:Verify.instrument -> Netlist.Network.t ->
  lib:Techmap.Genlib.t -> (Netlist.Network.t, string) result
(** Input must already be mapped (the output of {!script_delay_flow}).
    [current_period], when known (e.g. from {!measure} with a timer), skips
    the full analysis inside the retiming candidate filter.  [ins] runs the
    netlist verifier at every pass boundary (default: no checking). *)

val resynthesis_flow :
  ?options:Resynth.options -> ?ins:Verify.instrument -> Netlist.Network.t ->
  (Netlist.Network.t * Resynth.outcome, string) result
(** Input must already be mapped. *)

val run_all :
  ?verify:bool -> ?verify_each:bool -> ?eqcheck_each:bool ->
  ?eqcheck_options:Eqcheck.options -> ?ins:Verify.instrument ->
  ?lib:Techmap.Genlib.t ->
  ?resynth_options:Resynth.options ->
  name:string -> Netlist.Network.t -> row
(** Run the three flows on one circuit and collect a Table I row.
    [verify_each] (default false) runs the netlist verifier — static rules
    plus the journal audit — after every named pass of every flow, failing
    fast with {!Verify.Verification_failed} naming the circuit, the pass and
    the diagnostics.  [eqcheck_each] (default false) additionally runs the
    semantic equivalence analyzer ({!Eqcheck.check_pass}) at every pass
    boundary, collecting per-pass Proved / Refuted / Unknown verdicts in the
    row instead of raising.  [ins] is an extra caller instrument composed
    {e before} the built-in ones; its checkpoint fires first at every pass
    boundary of every flow (the serving daemon uses this for cooperative
    cancellation and deadline checks). *)
