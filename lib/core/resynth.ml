module N = Netlist.Network

type dc_mode =
  | Dc_cover
  | Substitution

type options = {
  lib : Techmap.Genlib.t;
  model : Sta.model;
  max_cone_leaves : int;
  dc_mode : dc_mode;
  remap : bool;
  retime_post : bool;
  min_area_post : bool;
  guard_regression : bool;
}

let default_options =
  { lib = Techmap.Genlib.mcnc_lite;
    model = Sta.mapped_delay ~default:1.0 ();
    max_cone_leaves = 14;
    dc_mode = Dc_cover;
    remap = true;
    retime_post = true;
    min_area_post = true;
    guard_regression = true }

type outcome = {
  network : N.t;
  applied : bool;
  note : string;
  stem_splits : int;
  equivalence_classes : int;
  forward_moves : int;
  simplified_cones : int;
}

(* --- step 1: fanout-free critical path ------------------------------------- *)

(* Walking from the end of the path towards the registers, give every path
   node a private connection to its successor: all other consumers (and any
   primary outputs) move to a freshly duplicated gate.  Duplication cascades
   naturally because a clone re-reads the previous path node.  Returns the
   clones: they are path logic too and take part in the retiming engine
   (the paper's g1/g1' duplication). *)
let make_path_fanout_free_clones net path =
  let duplications = ref 0 in
  let clones = ref [] in
  let arr = Array.of_list path in
  for i = Array.length arr - 2 downto 0 do
    let node = arr.(i) and next = arr.(i + 1) in
    let other_consumers =
      List.sort_uniq compare node.N.fanouts
      |> List.filter (fun cid -> cid <> next.N.id)
    in
    let drives_po = N.drives_output net node in
    if other_consumers <> [] || drives_po then begin
      incr duplications;
      (* one clone serves every off-path consumer *)
      let clone =
        match other_consumers with
        | first :: rest ->
          let c = N.duplicate_for net node ~consumer:(N.node net first) in
          List.iter
            (fun cid ->
              N.replace_fanin net (N.node net cid) ~old_fanin:node ~new_fanin:c)
            rest;
          c
        | [] ->
          (* only primary outputs to move: clone manually *)
          let c = N.add_logic net (N.cover_of node)
              (List.map (N.node net) (Array.to_list node.N.fanins))
          in
          N.set_binding net c node.N.binding;
          c
      in
      if drives_po then
        List.iter
          (fun (name, driver) ->
            if driver.N.id = node.N.id then N.retarget_output net name clone)
          (N.outputs net);
      clones := clone :: !clones
    end
  done;
  (!duplications, !clones)

let make_path_fanout_free net path =
  fst (make_path_fanout_free_clones net path)

(* --- step 0: pick a critical path the engine can work on -------------------- *)

(* Among equally critical paths, prefer one whose head gate reads only
   registers: forward retiming needs a register-fed head (the paper's
   "retimable gates" precondition).  [good v] marks nodes from which walking
   further back along critical fanins can reach such a head. *)
let critical_path_from_timing net model timing =
  if timing.Sta.critical_end < 0 then []
  else begin
    let arrival = timing.Sta.arrival in
    let good = Hashtbl.create 64 in
    let rec is_good v =
      match Hashtbl.find_opt good v.N.id with
      | Some b -> b
      | None ->
        Hashtbl.add good v.N.id false (* cycles are broken pessimistically *)
        ;
        let result =
          match v.N.kind with
          | N.Input | N.Const _ | N.Latch _ -> false
          | N.Logic _ ->
            let head_arrival = model v in
            if abs_float (arrival.(v.N.id) -. head_arrival) < 1e-9 then
              Array.length v.N.fanins > 0
              && Array.for_all (fun f -> N.is_latch (N.node net f)) v.N.fanins
            else begin
              let need = arrival.(v.N.id) -. model v in
              Array.exists
                (fun f ->
                  abs_float (arrival.(f) -. need) < 1e-9
                  && is_good (N.node net f))
                v.N.fanins
            end
        in
        Hashtbl.replace good v.N.id result;
        result
    in
    let rec walk id acc =
      let v = N.node net id in
      match v.N.kind with
      | N.Input | N.Const _ | N.Latch _ -> acc
      | N.Logic _ ->
        let acc = v :: acc in
        let need = arrival.(v.N.id) -. model v in
        let critical_fanins =
          Array.to_list v.N.fanins
          |> List.filter (fun f -> abs_float (arrival.(f) -. need) < 1e-9)
        in
        let pick =
          let preferred =
            List.find_opt (fun f -> is_good (N.node net f)) critical_fanins
          in
          match preferred, critical_fanins with
          | Some f, _ -> Some f
          | None, f :: _ -> Some f
          | None, [] -> None
        in
        (match pick with
         | Some f when N.is_logic (N.node net f) -> walk f acc
         | Some _ | None -> acc)
    in
    (* several endpoints may be equally critical; prefer one whose path can
       reach a register-fed head *)
    let endpoints =
      List.map (fun l -> (N.latch_data net l).N.id) (N.latches net)
      @ List.map (fun (_, d) -> d.N.id) (N.outputs net)
    in
    let critical_endpoints =
      List.sort_uniq compare
        (List.filter
           (fun id -> abs_float (arrival.(id) -. timing.Sta.period) < 1e-9)
           endpoints)
    in
    let start =
      match
        List.find_opt (fun id -> is_good (N.node net id)) critical_endpoints
      with
      | Some id -> id
      | None -> timing.Sta.critical_end
    in
    walk start []
  end

let critical_path_for_engine net model =
  critical_path_from_timing net model (Sta.analyze net model)

(* --- step 4: DC_ret-driven cone simplification ------------------------------ *)

let simplify_cone net classes ~dc_mode ~max_cone_leaves root =
  match Dontcare.Cone.collapse ~max_leaves:max_cone_leaves net root with
  | exception Dontcare.Cone.Cone_too_wide _ -> (false, false)
  | collapsed ->
    let leaves = collapsed.Dontcare.Cone.leaves in
    let nvars = Array.length leaves in
    let base = collapsed.Dontcare.Cone.cover in
    let minimized_with_dc, dc_was_useful =
      match dc_mode with
      | Dc_cover ->
        let var_of_latch id =
          let found = ref None in
          Array.iteri
            (fun i leaf -> if leaf.N.id = id then found := Some i)
            leaves;
          !found
        in
        let dc = Dontcare.Classes.dc_cover classes ~nvars ~var_of_latch in
        (* the no-DC control minimization only scores [dc_was_useful]; it is
           independent of the DC run ([minimize] never mutates its input
           cover), so it runs as a sibling task *)
        let without_dc_lits =
          Parallel.fork (fun () ->
              Logic.Cover.lit_count (Logic.Minimize.minimize base))
        in
        let with_dc = Logic.Minimize.minimize ~dc base in
        ( with_dc,
          Logic.Cover.lit_count with_dc < Parallel.join without_dc_lits )
      | Substitution ->
        (* rename every latch leaf to the first leaf of its class; a cube
           carrying opposing literals on two equivalent registers denotes
           states ruled out by the equivalence (exactly DC_ret) and is
           dropped; same-phase literals merge *)
        let canon = Array.init nvars Fun.id in
        for i = 0 to nvars - 1 do
          if N.is_latch leaves.(i) then
            for j = 0 to i - 1 do
              if
                canon.(i) = i
                && N.is_latch leaves.(j)
                && Dontcare.Classes.are_equal classes leaves.(i) leaves.(j)
              then canon.(i) <- j
            done
        done;
        let substitute_cube cube =
          let out = Logic.Cube.universe nvars in
          let consistent = ref true in
          Logic.Cube.iteri
            (fun v l ->
              if l <> Logic.Cube.Both then begin
                let v' = canon.(v) in
                if Logic.Cube.get out v' = Logic.Cube.Both then
                  Logic.Cube.set out v' l
                else if Logic.Cube.get out v' <> l then consistent := false
              end)
            cube;
          if !consistent then Some out else None
        in
        let substituted =
          Logic.Cover.make nvars
            (List.filter_map substitute_cube base.Logic.Cover.cubes)
        in
        let m = Logic.Minimize.minimize substituted in
        let any_substitution = ref false in
        Array.iteri (fun i c -> if c <> i then any_substitution := true) canon;
        (m, !any_substitution)
    in
    (* Restrict the rebuilt node to its true support. *)
    let support = Logic.Cover.support minimized_with_dc in
    let support_map = Array.make nvars 0 in
    List.iteri (fun j v -> support_map.(v) <- j) support;
    let narrowed =
      Logic.Cover.rename minimized_with_dc (List.length support) support_map
    in
    let leaf_list = List.map (fun v -> leaves.(v)) support in
    N.set_function net root narrowed leaf_list;
    (true, dc_was_useful)

(* --- the full algorithm ------------------------------------------------------ *)

let stats_zero net note applied =
  { network = net;
    applied;
    note;
    stem_splits = 0;
    equivalence_classes = 0;
    forward_moves = 0;
    simplified_cones = 0 }

let m_applied = Obs.Metrics.counter "resynth.applied"
let m_guarded = Obs.Metrics.counter "resynth.guarded"
let m_skipped = Obs.Metrics.counter "resynth.skipped"
let m_stem_splits = Obs.Metrics.counter "resynth.stem_splits"
let m_classes = Obs.Metrics.counter "resynth.equivalence_classes"
let m_forward_moves = Obs.Metrics.counter "resynth.forward_moves"
let m_simplified = Obs.Metrics.counter "resynth.simplified_cones"
let m_period_ratio = Obs.Metrics.histogram "resynth.period_ratio_pct"
let m_register_ratio = Obs.Metrics.histogram "resynth.register_ratio_pct"
let m_area_ratio = Obs.Metrics.histogram "resynth.area_ratio_pct"

(* Per-pass spans share the checkpoint names, so a trace lines up with the
   --verify-each / --eqcheck-each reports. *)
let pass name f = Obs.Trace.span ~cat:"resynth" name f

let resynthesize_impl ~options ~ins original =
  let model = options.model in
  let original_period = Sta.clock_period original model in
  let net = N.copy original in
  (* one timer per network: it serves the path extraction here and, when the
     working copy survives to the post-passes unreplaced, the period checks
     at the end of the pipeline *)
  let timer = Sta.Incremental.create net model in
  let path = critical_path_from_timing net model (Sta.Incremental.timing timer) in
  match path with
  | [] -> stats_zero (N.copy original) "no combinational logic" false
  | _ :: _ ->
    let _, clones =
      pass "resynth/fanout-free" (fun () ->
          ins.Verify.audited "resynth/fanout-free" [] net (fun () ->
              make_path_fanout_free_clones net path))
    in
    let path_ids =
      List.map (fun n -> n.N.id) path @ List.map (fun n -> n.N.id) clones
    in
    let on_path id = List.mem id path_ids in
    (* registers that fan out to the critical path *)
    let critical_fanout_registers =
      List.filter
        (fun l -> List.exists on_path l.N.fanouts)
        (N.latches net)
    in
    let classes = Dontcare.Classes.create () in
    let class_ids () = Dontcare.Classes.classes classes in
    let stem_splits = ref 0 in
    pass "resynth/stem-split" (fun () ->
        ins.Verify.audited "resynth/stem-split" [] net (fun () ->
            List.iter
              (fun l ->
                let copies = Retiming.Moves.split_stem net l in
                match copies with
                | [] | [ _ ] -> ()
                | _ :: _ :: _ ->
                  incr stem_splits;
                  Dontcare.Classes.declare_class classes copies)
              critical_fanout_registers));
    ins.Verify.checkpoint "resynth/stem-split" (class_ids ()) net;
    if !stem_splits = 0 then
      stats_zero (N.copy original)
        "no multiple-fanout registers feed the critical path" false
    else begin
      (* retiming engine: forward retiming across path nodes to a fixpoint *)
      let forward_moves, new_latches =
        pass "resynth/forward-fixpoint" (fun () ->
            ins.Verify.audited "resynth/forward-fixpoint" (class_ids ()) net
              (fun () -> Retiming.Moves.forward_fixpoint net path_ids))
      in
      if forward_moves = 0 then
        stats_zero (N.copy original)
          "critical path has no retimable gates" false
      else begin
        (* Simplify the next-state logic of the retimed registers using
           DC_ret, then every other latch-data and output cone (the
           surviving register copies appear in those cones through the
           duplicated gates and the feedback logic). *)
        let simplified = ref 0 in
        let simplify_data_of_latch latch =
          match N.node_opt net latch.N.id with
          | Some latch when N.is_latch latch ->
            let data = N.latch_data net latch in
            if N.is_logic data then begin
              let rebuilt, useful =
                simplify_cone net classes ~dc_mode:options.dc_mode
                  ~max_cone_leaves:options.max_cone_leaves data
              in
              if rebuilt && useful then incr simplified
            end
          | Some _ | None -> ()
        in
        (* newest latches first, as the engine loop historically recorded *)
        pass "resynth/dc-simplify" (fun () ->
            ins.Verify.audited "resynth/dc-simplify" (class_ids ()) net
              (fun () ->
                List.iter simplify_data_of_latch (List.rev new_latches);
                List.iter simplify_data_of_latch (N.latches net);
                List.iter
                  (fun (_, driver) ->
                    match N.node_opt net driver.N.id with
                    | Some d when N.is_logic d ->
                      let rebuilt, useful =
                        simplify_cone net classes ~dc_mode:options.dc_mode
                          ~max_cone_leaves:options.max_cone_leaves d
                      in
                      if rebuilt && useful then incr simplified
                    | Some _ | None -> ())
                  (N.outputs net)));
        pass "resynth/sweep" (fun () ->
            ins.Verify.audited "resynth/sweep" (class_ids ()) net (fun () ->
                N.sweep net));
        (* duplicated gates frequently become identical again after the
           simplification; share them *)
        pass "resynth/strash" (fun () ->
            ins.Verify.audited "resynth/strash" (class_ids ()) net (fun () ->
                ignore (Netlist.Strash.run net)));
        (* local re-mapping.  The mapper builds a fresh network: the DC_ret
           class ids refer to the old one, so the retiming-soundness rule is
           dropped once the working copy is replaced ([classes_valid]). *)
        let net, classes_valid =
          if options.remap then begin
            let remapped =
              pass "resynth/remap" (fun () ->
                  Techmap.Mapper.map net ~lib:options.lib
                    ~objective:Techmap.Mapper.Min_delay)
            in
            ins.Verify.checkpoint "resynth/remap" [] remapped;
            (remapped, false)
          end
          else (net, true)
        in
        (* redistribute the registers accumulated at the path's end: the
           restructured logic usually admits a better placement (see
           DESIGN.md, ablation `postretime`) *)
        let net, classes_valid =
          if options.retime_post then begin
            let current_period =
              if Sta.Incremental.network timer == net then
                Some (Sta.Incremental.period timer)
              else None
            in
            match
              pass "resynth/post-retime" (fun () ->
                  Retiming.Minperiod.retime_min_period ?current_period net
                    ~model)
            with
            | Ok (better, _) ->
              ins.Verify.checkpoint "resynth/post-retime" [] better;
              (better, false)
            | Error _ -> (net, classes_valid)
          end
          else (net, classes_valid)
        in
        (* constrained min-area retiming, sharing one timer for the budget
           measurement, the per-move checks and the final verdict.  The
           rollback of every rejected move is journaled by [N.restore], so
           the audit covers reverts too; class-constrained sibling merging
           applies while the working copy still carries the class ids. *)
        let timer =
          if Sta.Incremental.network timer == net then timer
          else Sta.Incremental.create net model
        in
        let period_now = Sta.Incremental.period timer in
        if options.min_area_post then begin
          let min_area_classes = if classes_valid then class_ids () else [] in
          ignore
            (pass "resynth/min-area" (fun () ->
                 ins.Verify.audited "resynth/min-area" min_area_classes net
                   (fun () ->
                     Retiming.Minarea.minimize_registers
                       ~classes:min_area_classes ~timer net ~model
                       ~max_period:period_now)))
        end;
        let final_period = Sta.Incremental.period timer in
        (* Accept only genuine gains: a faster clock, or the same clock with
           fewer registers.  This is the paper's open "how far should forward
           retiming be performed such that our technique can be stopped from
           doing any harm" question, answered by construction. *)
        let regressed =
          final_period > original_period +. 1e-9
          || (final_period > original_period -. 1e-9
              && N.num_latches net >= N.num_latches original)
        in
        Verify.debug_check ~label:"Resynth.resynthesize" net;
        if options.guard_regression && regressed then
          { network = N.copy original;
            applied = false;
            note =
              Printf.sprintf
                "guarded: resynthesis would regress period %.2f -> %.2f"
                original_period final_period;
            stem_splits = !stem_splits;
            equivalence_classes =
              List.length (Dontcare.Classes.classes classes);
            forward_moves;
            simplified_cones = !simplified }
        else
          { network = net;
            applied = true;
            note = "";
            stem_splits = !stem_splits;
            equivalence_classes =
              List.length (Dontcare.Classes.classes classes);
            forward_moves;
            simplified_cones = !simplified }
      end
    end

let resynthesize ?(options = default_options) ?(ins = Verify.no_instrument)
    original =
  let outcome =
    Obs.Trace.span ~cat:"flow" "resynthesis" (fun () ->
        resynthesize_impl ~options ~ins original)
  in
  if Obs.Metrics.enabled () then begin
    if outcome.applied then begin
      Obs.Metrics.incr m_applied;
      Obs.Metrics.add m_stem_splits outcome.stem_splits;
      Obs.Metrics.add m_classes outcome.equivalence_classes;
      Obs.Metrics.add m_forward_moves outcome.forward_moves;
      Obs.Metrics.add m_simplified outcome.simplified_cones;
      let p0 = Sta.clock_period original options.model in
      let p1 = Sta.clock_period outcome.network options.model in
      if p0 > 0.0 then
        Obs.Metrics.observe m_period_ratio
          (int_of_float ((100.0 *. p1 /. p0) +. 0.5));
      let r0 = N.num_latches original and r1 = N.num_latches outcome.network in
      if r0 > 0 then
        Obs.Metrics.observe m_register_ratio (((100 * r1) + (r0 / 2)) / r0);
      let a0 = Techmap.Mapper.mapped_area original ~lib:options.lib in
      let a1 = Techmap.Mapper.mapped_area outcome.network ~lib:options.lib in
      if a0 > 0.0 then
        Obs.Metrics.observe m_area_ratio
          (int_of_float ((100.0 *. a1 /. a0) +. 0.5))
    end
    else if String.starts_with ~prefix:"guarded" outcome.note then
      Obs.Metrics.incr m_guarded
    else Obs.Metrics.incr m_skipped
  end;
  outcome
