(** Mutable Boolean networks in the SIS style.

    A network is a graph of nodes: primary inputs, constants, SOP logic nodes
    and latches (edge-triggered flip-flops with an initial value).  Latches
    have exactly one fanin (the data input); combinational cycles are
    forbidden but cycles through latches are the norm (FSM feedback).

    All structural edits maintain fanout lists.  Node ids are stable for the
    lifetime of the network (deleted ids are never reused). *)

type init = I0 | I1 | Ix

type binding = {
  gate_name : string;
  gate_area : float;
  gate_delay : float;
}
(** Technology binding attached to a mapped logic node. *)

type kind =
  | Input
  | Const of bool
  | Logic of Logic.Cover.t
      (** SOP over the node's fanins; [Cover.nvars] equals the fanin count. *)
  | Latch of init

type node = private {
  id : int;
  mutable name : string;
  mutable kind : kind;
  mutable fanins : int array;
  mutable fanouts : int list;  (** consumer ids, with multiplicity *)
  mutable binding : binding option;
}

type t

val create : ?name:string -> unit -> t

val model_name : t -> string

val capacity : t -> int
(** One more than the largest node id ever allocated ([next_id]); a valid
    length for arrays indexed by node id.  Deleted ids stay counted. *)

(** {1 Change journal}

    Every mutation that can affect timing or structure (node creation and
    deletion, fanin/fanout rewiring, kind, cover, binding, latch init and
    primary-output changes) appends the touched node ids to a journal and
    bumps a monotonic revision counter.  Incremental observers
    (e.g. {!Sta.Incremental}) record a {!journal_mark} cursor and later ask
    for {!journal_since} to learn the dirty region.  The journal is bounded:
    once it outgrows an internal cap it is compacted, after which older
    cursors return [None] and observers must resynchronize from scratch.
    {!restore} journals every id whose slot differs from the snapshot, so
    outstanding cursors survive a rollback. *)

val revision : t -> int
(** Monotonic mutation counter; equal revisions imply an unchanged network. *)

val outputs_revision : t -> int
(** Bumped whenever the primary-output list changes (new output, retarget,
    fanout transfer remapping an output, {!restore}); lets observers cache
    per-output state and detect staleness in O(1). *)

type cursor

val journal_mark : t -> cursor

val journal_since : t -> cursor -> int list option
(** Ids touched since the cursor, oldest first, possibly with duplicates;
    [None] when the journal no longer reaches back that far. *)

(** {1 Construction} *)

val add_input : t -> string -> node
val add_const : t -> bool -> node

val add_logic : t -> ?name:string -> Logic.Cover.t -> node list -> node
(** [add_logic net cover fanins]: [cover] is over the fanin positions. *)

val add_latch : t -> ?name:string -> init -> node -> node

val set_output : t -> string -> node -> unit
(** Register a primary output driven by the node.  A node may drive several
    outputs; an output name may be set only once. *)

val retarget_output : t -> string -> node -> unit
(** Point an existing primary output at a different driver. *)

(** {1 Access} *)

val node : t -> int -> node
(** Raises [Invalid_argument] on deleted or unknown ids. *)

val node_opt : t -> int -> node option
val fanin_nodes : t -> node -> node list
val fanout_nodes : t -> node -> node list
val inputs : t -> node list
val outputs : t -> (string * node) list

val input_ids : t -> int list
(** Raw primary-input id list in creation order, without resolving the nodes;
    unlike {!inputs} this never raises, so integrity checkers can inspect a
    corrupted network. *)

val output_ids : t -> (string * int) list
(** Raw primary-output (name, driver id) pairs in creation order, without
    resolving the nodes; never raises. *)

val latches : t -> node list
val logic_nodes : t -> node list
val all_nodes : t -> node list
val find_by_name : t -> string -> node option

val is_latch : node -> bool
val is_logic : node -> bool
val is_input : node -> bool

val cover_of : node -> Logic.Cover.t
(** The SOP of a logic node; constants and inputs raise. *)

val latch_init : node -> init
val latch_data : t -> node -> node

val num_latches : t -> int
val num_logic : t -> int

val drives_output : t -> node -> bool

(** {1 Edit} *)

val set_cover : t -> node -> Logic.Cover.t -> unit
(** Replace a logic node's function (same fanins). *)

val set_function : t -> node -> Logic.Cover.t -> node list -> unit
(** Replace a logic node's function and fanins. *)

val set_name : node -> string -> unit

val set_name_of_model : t -> string -> unit

val become_latch : t -> node -> init -> node -> unit
(** Convert a logic node in place into a latch with the given init and data
    fanin (used by the BLIF reader to resolve forward references). *)

val set_binding : t -> node -> binding option -> unit
val set_latch_init : t -> node -> init -> unit

val replace_fanin : t -> node -> old_fanin:node -> new_fanin:node -> unit
(** Rewire every occurrence of [old_fanin] in [node]'s fanin array. *)

val transfer_fanouts : t -> from:node -> to_:node -> unit
(** Every consumer of [from] (including primary outputs) now reads [to_]. *)

val delete : t -> node -> unit
(** The node must have no fanouts and drive no output. *)

val duplicate_for : t -> node -> consumer:node -> node
(** Clone a logic node so that [consumer] reads the clone instead; the clone
    shares the fanins of the original.  Returns the clone. *)

(** {1 Analysis} *)

val topo_combinational : t -> node list
(** Logic nodes in topological order, treating latches, inputs and constants
    as sources.  Raises [Failure] if a combinational cycle exists.

    The order is cached: allocating fresh nodes appends to the cache, while
    rewiring existing structure ([set_function], [replace_fanin] on a logic
    node, [become_latch], [transfer_fanouts], deleting a logic node)
    invalidates it, so repeated calls between structural edits are cheap.
    {!check} always re-derives the order from scratch. *)

val transitive_fanin_cone : t -> node -> node list
(** Logic nodes in the cone of the node, up to latches/inputs/constants,
    in topological order (inputs first); includes the node itself if logic. *)

val cone_leaves : t -> node -> node list
(** The latch/input/constant frontier of the node's combinational cone. *)

val eval_comb : t -> (int -> bool) -> int -> bool
(** [eval_comb net leaf_value id] evaluates node [id] combinationally, with
    latch outputs, inputs and constants supplied by [leaf_value] (constants
    may also be supplied as their value). *)

val check : t -> unit
(** Assert structural invariants (fanin/fanout symmetry, cover widths, latch
    arity, acyclicity); for tests and debugging. *)

val copy : t -> t
(** Deep copy with identical node ids. *)

val restore : t -> t -> unit
(** [restore net snapshot] reverts [net] in place to the state captured by an
    earlier {!copy}.  Node handles obtained before the snapshot are stale
    afterwards; re-fetch them by id.  Every id whose node record differs
    between the current network and the snapshot is journaled, so journal
    cursors taken before the rollback remain valid and see the revert as an
    ordinary batch of edits. *)

(** {1 Cleanup} *)

val sweep : t -> unit
(** Propagate constants, collapse single-input identity nodes (buffers) into
    their sources, and remove nodes that reach no primary output. *)

(** {1 Statistics} *)

val lit_count : t -> int
val area : t -> latch_area:float -> default_gate_area:float -> float

(** {1 Unsafe test hooks}

    Deliberate corruption of the representation, bypassing both the
    structural invariants and the change journal.  Exists solely so that
    verifier and journal-audit tests can seed defects a correct editing API
    can never produce; never call these from product code. *)
module Unsafe : sig
  val drop_fanout : t -> id:int -> consumer:int -> unit
  (** Remove one occurrence of [consumer] from node [id]'s fanout list
      without touching the consumer's fanins or the journal. *)

  val skew_cover : t -> id:int -> unit
  (** Widen the logic node's cover by one variable without adding a fanin. *)

  val redirect_fanin : t -> id:int -> slot:int -> target:int -> unit
  (** Overwrite one fanin slot without updating any fanout list. *)

  val set_latch_init_unjournaled : t -> id:int -> init -> unit
  (** Change a latch's initial value without journaling the mutation. *)
end

val stats_string : t -> string

val pp : Format.formatter -> t -> unit
