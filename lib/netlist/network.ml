type init = I0 | I1 | Ix

type binding = {
  gate_name : string;
  gate_area : float;
  gate_delay : float;
}

type kind =
  | Input
  | Const of bool
  | Logic of Logic.Cover.t
  | Latch of init

type node = {
  id : int;
  mutable name : string;
  mutable kind : kind;
  mutable fanins : int array;
  mutable fanouts : int list;
  mutable binding : binding option;
}

type t = {
  mutable nodes : node option array;
  mutable next_id : int;
  mutable model : string;
  mutable input_ids : int list;  (* reverse creation order *)
  mutable output_list : (string * int) list;  (* reverse creation order *)
  mutable name_counter : int;
  (* change journal: ids touched by mutations, consumed by incremental
     observers (Sta.Incremental).  [journal_base] is the global index of
     [journal.(0)]; compaction advances it, invalidating older cursors. *)
  mutable revision : int;
  mutable journal : int array;
  mutable journal_len : int;
  mutable journal_base : int;
  (* bumped whenever the primary-output list changes (add/retarget/remap);
     observers caching per-output state compare against it *)
  mutable outputs_revision : int;
  (* cached combinational topological order: patched (appended) when fresh
     logic nodes are allocated, invalidated when existing structure is
     rewired.  See DESIGN.md, "Timing engine". *)
  mutable topo_valid : bool;
  mutable topo_order : node list;
  mutable topo_appends : node list;  (* newest first; spliced on demand *)
}

let create ?(name = "network") () =
  { nodes = Array.make 64 None;
    next_id = 0;
    model = name;
    input_ids = [];
    output_list = [];
    name_counter = 0;
    revision = 0;
    journal = Array.make 256 0;
    journal_len = 0;
    journal_base = 0;
    outputs_revision = 0;
    topo_valid = false;
    topo_order = [];
    topo_appends = [] }

let model_name net = net.model

let capacity net = net.next_id

let revision net = net.revision
let outputs_revision net = net.outputs_revision

(* Beyond this size the journal is compacted (emptied, base advanced);
   observers holding older cursors fall back to a full resync. *)
let journal_cap = 1 lsl 20

let touch net id =
  net.revision <- net.revision + 1;
  if net.journal_len = Array.length net.journal then begin
    if net.journal_len >= journal_cap then begin
      net.journal_base <- net.journal_base + net.journal_len;
      net.journal_len <- 0
    end
    else begin
      let b = Array.make (2 * Array.length net.journal) 0 in
      Array.blit net.journal 0 b 0 net.journal_len;
      net.journal <- b
    end
  end;
  net.journal.(net.journal_len) <- id;
  net.journal_len <- net.journal_len + 1

type cursor = int

let journal_mark net = net.journal_base + net.journal_len

let journal_since net cursor =
  if cursor < net.journal_base then None
  else begin
    let ids = ref [] in
    for i = net.journal_len - 1 downto cursor - net.journal_base do
      ids := net.journal.(i) :: !ids
    done;
    Some !ids
  end

let topo_invalidate net =
  if net.topo_valid then begin
    net.topo_valid <- false;
    net.topo_order <- [];
    net.topo_appends <- []
  end

let fresh_name net prefix =
  net.name_counter <- net.name_counter + 1;
  Printf.sprintf "%s%d" prefix net.name_counter

let alloc net name kind fanins =
  if net.next_id >= Array.length net.nodes then begin
    let b = Array.make (2 * Array.length net.nodes) None in
    Array.blit net.nodes 0 b 0 net.next_id;
    net.nodes <- b
  end;
  let n =
    { id = net.next_id; name; kind; fanins; fanouts = []; binding = None }
  in
  net.nodes.(net.next_id) <- Some n;
  net.next_id <- net.next_id + 1;
  touch net n.id;
  (* a fresh node has no consumers yet and reads only pre-existing nodes, so
     the cached topological order extends by appending it *)
  (match kind with
   | Logic _ ->
     if net.topo_valid then net.topo_appends <- n :: net.topo_appends
   | Input | Const _ | Latch _ -> ());
  n

let node net id =
  match
    if id >= 0 && id < net.next_id then net.nodes.(id) else None
  with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Network.node: no node %d" id)

let node_opt net id =
  if id >= 0 && id < net.next_id then net.nodes.(id) else None

let add_fanout net producer_id consumer_id =
  let p = node net producer_id in
  p.fanouts <- consumer_id :: p.fanouts;
  touch net producer_id;
  touch net consumer_id

let remove_fanout net producer_id consumer_id =
  let p = node net producer_id in
  let rec remove_one acc = function
    | [] -> failwith "Network: fanout bookkeeping broken"
    | x :: rest ->
      if x = consumer_id then List.rev_append acc rest
      else remove_one (x :: acc) rest
  in
  p.fanouts <- remove_one [] p.fanouts;
  touch net producer_id;
  touch net consumer_id

let add_input net name =
  let n = alloc net name Input [||] in
  net.input_ids <- n.id :: net.input_ids;
  n

let add_const net value =
  alloc net (if value then "const1" else "const0") (Const value) [||]

let add_logic net ?name cover fanins =
  assert (cover.Logic.Cover.nvars = List.length fanins);
  let name = match name with Some s -> s | None -> fresh_name net "n" in
  let fanin_ids = Array.of_list (List.map (fun n -> n.id) fanins) in
  let n = alloc net name (Logic cover) fanin_ids in
  Array.iter (fun f -> add_fanout net f n.id) fanin_ids;
  n

let add_latch net ?name init data =
  let name = match name with Some s -> s | None -> fresh_name net "r" in
  let n = alloc net name (Latch init) [| data.id |] in
  add_fanout net data.id n.id;
  n

let set_output net name n =
  if List.mem_assoc name net.output_list then
    invalid_arg (Printf.sprintf "Network.set_output: duplicate output %s" name);
  net.output_list <- (name, n.id) :: net.output_list;
  net.outputs_revision <- net.outputs_revision + 1;
  touch net n.id

let retarget_output net name n =
  if not (List.mem_assoc name net.output_list) then
    invalid_arg (Printf.sprintf "Network.retarget_output: no output %s" name);
  touch net (List.assoc name net.output_list);
  net.output_list <-
    List.map
      (fun (nm, id) -> if nm = name then (nm, n.id) else (nm, id))
      net.output_list;
  net.outputs_revision <- net.outputs_revision + 1;
  touch net n.id

let fanin_nodes net n = Array.to_list n.fanins |> List.map (node net)

let fanout_nodes net n = List.map (node net) (List.sort_uniq compare n.fanouts)

let inputs net = List.rev_map (node net) net.input_ids

let outputs net =
  List.rev_map (fun (name, id) -> (name, node net id)) net.output_list

let input_ids net = List.rev net.input_ids

let output_ids net = List.rev net.output_list

let live_nodes net =
  let out = ref [] in
  for id = net.next_id - 1 downto 0 do
    match net.nodes.(id) with Some n -> out := n :: !out | None -> ()
  done;
  !out

let all_nodes = live_nodes

let is_latch n = match n.kind with Latch _ -> true | Input | Const _ | Logic _ -> false
let is_logic n = match n.kind with Logic _ -> true | Input | Const _ | Latch _ -> false
let is_input n = match n.kind with Input -> true | Const _ | Logic _ | Latch _ -> false

let latches net = List.filter is_latch (live_nodes net)
let logic_nodes net = List.filter is_logic (live_nodes net)

let find_by_name net name =
  List.find_opt (fun n -> n.name = name) (live_nodes net)

let cover_of n =
  match n.kind with
  | Logic c -> c
  | Input | Const _ | Latch _ ->
    invalid_arg (Printf.sprintf "Network.cover_of: %s is not a logic node" n.name)

let latch_init n =
  match n.kind with
  | Latch i -> i
  | Input | Const _ | Logic _ ->
    invalid_arg (Printf.sprintf "Network.latch_init: %s is not a latch" n.name)

let latch_data net n =
  match n.kind with
  | Latch _ -> node net n.fanins.(0)
  | Input | Const _ | Logic _ ->
    invalid_arg (Printf.sprintf "Network.latch_data: %s is not a latch" n.name)

let num_latches net = List.length (latches net)
let num_logic net = List.length (logic_nodes net)

let drives_output net n =
  List.exists (fun (_, id) -> id = n.id) net.output_list

let set_cover net n cover =
  match n.kind with
  | Logic old ->
    assert (cover.Logic.Cover.nvars = old.Logic.Cover.nvars);
    n.kind <- Logic cover;
    n.binding <- None;
    touch net n.id
  | Input | Const _ | Latch _ ->
    invalid_arg "Network.set_cover: not a logic node"

let set_function net n cover fanins =
  (match n.kind with
   | Logic _ -> ()
   | Input | Const _ | Latch _ ->
     invalid_arg "Network.set_function: not a logic node");
  assert (cover.Logic.Cover.nvars = List.length fanins);
  Array.iter (fun f -> remove_fanout net f n.id) n.fanins;
  n.fanins <- Array.of_list (List.map (fun m -> m.id) fanins);
  Array.iter (fun f -> add_fanout net f n.id) n.fanins;
  n.kind <- Logic cover;
  n.binding <- None;
  touch net n.id;
  topo_invalidate net

let set_name n name = n.name <- name

let set_name_of_model net name = net.model <- name

let become_latch net n init data =
  (match n.kind with
   | Logic _ -> ()
   | Input | Const _ | Latch _ ->
     invalid_arg "Network.become_latch: not a logic node");
  Array.iter (fun f -> remove_fanout net f n.id) n.fanins;
  n.kind <- Latch init;
  n.fanins <- [| data.id |];
  add_fanout net data.id n.id;
  n.binding <- None;
  touch net n.id;
  topo_invalidate net

let set_binding net n b =
  n.binding <- b;
  touch net n.id

let set_latch_init net n init =
  match n.kind with
  | Latch _ ->
    n.kind <- Latch init;
    touch net n.id
  | Input | Const _ | Logic _ ->
    invalid_arg "Network.set_latch_init: not a latch"

let replace_fanin net n ~old_fanin ~new_fanin =
  let changed = ref false in
  Array.iteri
    (fun i f ->
      if f = old_fanin.id then begin
        n.fanins.(i) <- new_fanin.id;
        remove_fanout net old_fanin.id n.id;
        add_fanout net new_fanin.id n.id;
        changed := true
      end)
    n.fanins;
  if not !changed then
    invalid_arg
      (Printf.sprintf "Network.replace_fanin: %s is not a fanin of %s"
         old_fanin.name n.name);
  (* rewiring a latch's data pin cannot reorder the combinational DAG *)
  (match n.kind with
   | Logic _ -> topo_invalidate net
   | Input | Const _ | Latch _ -> ())

let transfer_fanouts net ~from ~to_ =
  List.iter
    (fun consumer_id ->
      let consumer = node net consumer_id in
      Array.iteri
        (fun i f -> if f = from.id then consumer.fanins.(i) <- to_.id)
        consumer.fanins;
      (match consumer.kind with
       | Logic _ -> topo_invalidate net
       | Input | Const _ | Latch _ -> ()))
    from.fanouts;
  List.iter (fun cid -> add_fanout net to_.id cid) from.fanouts;
  from.fanouts <- [];
  touch net from.id;
  touch net to_.id;
  if List.exists (fun (_, id) -> id = from.id) net.output_list then begin
    net.output_list <-
      List.map
        (fun (name, id) -> if id = from.id then (name, to_.id) else (name, id))
        net.output_list;
    net.outputs_revision <- net.outputs_revision + 1
  end

let delete net n =
  if n.fanouts <> [] then
    invalid_arg (Printf.sprintf "Network.delete: %s still has fanouts" n.name);
  if drives_output net n then
    invalid_arg (Printf.sprintf "Network.delete: %s drives an output" n.name);
  Array.iter (fun f -> remove_fanout net f n.id) n.fanins;
  (match n.kind with
   | Input -> net.input_ids <- List.filter (fun id -> id <> n.id) net.input_ids
   | Const _ | Latch _ -> ()
   | Logic _ -> topo_invalidate net);
  net.nodes.(n.id) <- None;
  touch net n.id

let duplicate_for net n ~consumer =
  (match n.kind with
   | Logic _ -> ()
   | Input | Const _ | Latch _ ->
     invalid_arg "Network.duplicate_for: can only duplicate logic nodes");
  let clone =
    alloc net (fresh_name net (n.name ^ "_dup")) n.kind (Array.copy n.fanins)
  in
  clone.binding <- n.binding;
  Array.iter (fun f -> add_fanout net f clone.id) clone.fanins;
  (* Rewire one consumer edge set: every fanin slot of [consumer] reading [n]
     now reads the clone. *)
  replace_fanin net consumer ~old_fanin:n ~new_fanin:clone;
  clone

(* Topological order of logic nodes; latches/inputs/constants are sources.
   [topo_recompute] always re-derives the order; [topo_combinational] serves
   it from the cache maintained by the structural editors above. *)
let topo_recompute net =
  let state = Hashtbl.create 256 in (* 0 = visiting, 1 = done *)
  let order = ref [] in
  let rec visit n =
    match n.kind with
    | Input | Const _ | Latch _ -> ()
    | Logic _ ->
      (match Hashtbl.find_opt state n.id with
       | Some 1 -> ()
       | Some _ -> failwith "Network.topo_combinational: combinational cycle"
       | None ->
         Hashtbl.add state n.id 0;
         Array.iter (fun f -> visit (node net f)) n.fanins;
         Hashtbl.replace state n.id 1;
         order := n :: !order)
  in
  List.iter visit (logic_nodes net);
  List.rev !order

let topo_combinational net =
  if net.topo_valid then begin
    if net.topo_appends <> [] then begin
      net.topo_order <- net.topo_order @ List.rev net.topo_appends;
      net.topo_appends <- []
    end;
    net.topo_order
  end
  else begin
    let order = topo_recompute net in
    net.topo_valid <- true;
    net.topo_order <- order;
    net.topo_appends <- [];
    order
  end

let transitive_fanin_cone net root =
  let state = Hashtbl.create 64 in
  let order = ref [] in
  let rec visit n =
    match n.kind with
    | Input | Const _ | Latch _ -> ()
    | Logic _ ->
      (match Hashtbl.find_opt state n.id with
       | Some 1 -> ()
       | Some _ -> failwith "Network.transitive_fanin_cone: cycle"
       | None ->
         Hashtbl.add state n.id 0;
         Array.iter (fun f -> visit (node net f)) n.fanins;
         Hashtbl.replace state n.id 1;
         order := n :: !order)
  in
  visit root;
  List.rev !order

let cone_leaves net root =
  let seen = Hashtbl.create 64 in
  let leaves = ref [] in
  let rec visit n =
    if not (Hashtbl.mem seen n.id) then begin
      Hashtbl.add seen n.id ();
      match n.kind with
      | Input | Const _ | Latch _ -> leaves := n :: !leaves
      | Logic _ -> Array.iter (fun f -> visit (node net f)) n.fanins
    end
  in
  (match root.kind with
   | Logic _ -> Array.iter (fun f -> visit (node net f)) root.fanins
   | Input | Const _ | Latch _ -> ());
  (match root.kind with
   | Logic _ -> ()
   | Input | Const _ | Latch _ -> leaves := [ root ]);
  List.rev !leaves

let eval_comb net leaf_value id =
  let cache = Hashtbl.create 64 in
  let rec go id =
    match Hashtbl.find_opt cache id with
    | Some v -> v
    | None ->
      let n = node net id in
      let v =
        match n.kind with
        | Input | Latch _ -> leaf_value id
        | Const b -> b
        | Logic cover ->
          let point = Array.map go n.fanins in
          Logic.Cover.eval cover point
      in
      Hashtbl.add cache id v;
      v
  in
  go id

let check net =
  List.iter
    (fun n ->
      (* fanin/fanout symmetry *)
      Array.iter
        (fun f ->
          let producer = node net f in
          let count_in_fanins =
            Array.fold_left (fun acc x -> if x = f then acc + 1 else acc) 0 n.fanins
          in
          let count_in_fanouts =
            List.fold_left
              (fun acc x -> if x = n.id then acc + 1 else acc)
              0 producer.fanouts
          in
          if count_in_fanins <> count_in_fanouts then
            failwith
              (Printf.sprintf "Network.check: edge %s -> %s asymmetric (%d vs %d)"
                 producer.name n.name count_in_fanins count_in_fanouts))
        n.fanins;
      match n.kind with
      | Logic c ->
        if c.Logic.Cover.nvars <> Array.length n.fanins then
          failwith (Printf.sprintf "Network.check: %s cover width mismatch" n.name)
      | Latch _ ->
        if Array.length n.fanins <> 1 then
          failwith (Printf.sprintf "Network.check: latch %s arity" n.name)
      | Input | Const _ ->
        if Array.length n.fanins <> 0 then
          failwith (Printf.sprintf "Network.check: source %s has fanins" n.name))
    (live_nodes net);
  List.iter
    (fun (_, id) -> ignore (node net id))
    net.output_list;
  (* bypass the cache: [check] must verify acyclicity from scratch *)
  ignore (topo_recompute net)

let copy net =
  let out =
    { nodes = Array.make (Array.length net.nodes) None;
      next_id = net.next_id;
      model = net.model;
      input_ids = net.input_ids;
      output_list = net.output_list;
      name_counter = net.name_counter;
      revision = 0;
      journal = Array.make 256 0;
      journal_len = 0;
      journal_base = 0;
      outputs_revision = 0;
      topo_valid = false;
      topo_order = [];
      topo_appends = [] }
  in
  Array.iteri
    (fun i slot ->
      match slot with
      | None -> ()
      | Some n ->
        out.nodes.(i) <-
          Some
            { id = n.id;
              name = n.name;
              kind = n.kind;
              fanins = Array.copy n.fanins;
              fanouts = n.fanouts;
              binding = n.binding })
    net.nodes;
  out

let restore net snapshot =
  let fresh = copy snapshot in
  (* Journal every id whose slot differs from the snapshot instead of
     invalidating outstanding cursors: rollbacks then look like ordinary
     edits, so incremental observers stay incremental and the journal
     audit can check rejected-move reverts rather than going vacuous. *)
  let cap = max net.next_id fresh.next_id in
  for id = 0 to cap - 1 do
    let a = if id < Array.length net.nodes then net.nodes.(id) else None in
    let b = if id < Array.length fresh.nodes then fresh.nodes.(id) else None in
    let differs =
      match (a, b) with
      | None, None -> false
      | Some _, None | None, Some _ -> true
      | Some x, Some y ->
        x.kind <> y.kind || x.fanins <> y.fanins || x.fanouts <> y.fanouts
        || x.binding <> y.binding
    in
    if differs then touch net id
  done;
  net.nodes <- fresh.nodes;
  net.next_id <- fresh.next_id;
  net.model <- fresh.model;
  net.input_ids <- fresh.input_ids;
  net.output_list <- fresh.output_list;
  net.name_counter <- fresh.name_counter;
  net.revision <- net.revision + 1;
  net.outputs_revision <- net.outputs_revision + 1;
  topo_invalidate net

let sweep net =
  let alive n = node_opt net n.id <> None in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun n ->
        match n.kind with
        | _ when not (alive n) -> ()
        | Logic c when Array.length n.fanins > 0 ->
          (* constant fanin propagation *)
          let const_fanins =
            Array.to_list n.fanins
            |> List.mapi (fun i f -> (i, f))
            |> List.filter_map (fun (i, f) ->
                   match (node net f).kind with
                   | Const b -> Some (i, b)
                   | Input | Logic _ | Latch _ -> None)
          in
          if const_fanins <> [] then begin
            let c' =
              List.fold_left
                (fun acc (i, b) ->
                  Logic.Cover.cofactor acc i
                    (if b then Logic.Cube.One else Logic.Cube.Zero))
                c const_fanins
            in
            (* rebuild without the constant fanins *)
            let keep =
              Array.to_list n.fanins
              |> List.mapi (fun i f -> (i, f))
              |> List.filter (fun (i, _) -> not (List.mem_assoc i const_fanins))
            in
            let remap = Array.make (Array.length n.fanins) (-1) in
            List.iteri (fun j (i, _) -> remap.(i) <- j) keep;
            (* variables bound to constants do not appear in c' *)
            let safe_remap = Array.map (fun j -> max j 0) remap in
            let c'' =
              Logic.Cover.rename c' (List.length keep) safe_remap
            in
            set_function net n c'' (List.map (fun (_, f) -> node net f) keep);
            changed := true
          end
        | Input | Const _ | Latch _ | Logic _ -> ())
      (live_nodes net);
    (* fold logic nodes that became constant (including tautologous or empty
       covers that still list fanins) *)
    List.iter
      (fun n ->
        match n.kind with
        | _ when not (alive n) -> ()
        | Logic c when Logic.Cover.is_empty c || Logic.Cover.is_tautology c ->
          let value = Logic.Cover.is_tautology c in
          let replacement = add_const net value in
          transfer_fanouts net ~from:n ~to_:replacement;
          delete net n;
          changed := true
        | Logic c when Array.length n.fanins = 1 && Logic.Cover.equivalent c (Logic.Cover.var 1 0) ->
          (* buffer: forward consumers to the source *)
          let source = node net n.fanins.(0) in
          transfer_fanouts net ~from:n ~to_:source;
          delete net n;
          changed := true
        | Input | Const _ | Latch _ | Logic _ -> ())
      (live_nodes net);
    (* drop dangling nodes *)
    List.iter
      (fun n ->
        if alive n && n.fanouts = [] && not (drives_output net n)
           && not (is_input n)
        then begin
          delete net n;
          changed := true
        end)
      (live_nodes net)
  done

let lit_count net =
  List.fold_left
    (fun acc n ->
      match n.kind with
      | Logic c -> acc + Logic.Cover.lit_count c
      | Input | Const _ | Latch _ -> acc)
    0 (live_nodes net)

let area net ~latch_area ~default_gate_area =
  List.fold_left
    (fun acc n ->
      match n.kind with
      | Latch _ -> acc +. latch_area
      | Logic _ ->
        (match n.binding with
         | Some b -> acc +. b.gate_area
         | None -> acc +. default_gate_area)
      | Input | Const _ -> acc)
    0.0 (live_nodes net)

module Unsafe = struct
  let drop_fanout net ~id ~consumer =
    let n = node net id in
    let rec remove_one acc = function
      | [] -> List.rev acc
      | x :: rest ->
        if x = consumer then List.rev_append acc rest
        else remove_one (x :: acc) rest
    in
    n.fanouts <- remove_one [] n.fanouts

  let skew_cover net ~id =
    let n = node net id in
    match n.kind with
    | Logic c ->
      n.kind <- Logic { c with Logic.Cover.nvars = c.Logic.Cover.nvars + 1 }
    | Input | Const _ | Latch _ ->
      invalid_arg "Network.Unsafe.skew_cover: not a logic node"

  let redirect_fanin net ~id ~slot ~target =
    let n = node net id in
    n.fanins.(slot) <- target

  let set_latch_init_unjournaled net ~id init =
    let n = node net id in
    match n.kind with
    | Latch _ -> n.kind <- Latch init
    | Input | Const _ | Logic _ ->
      invalid_arg "Network.Unsafe.set_latch_init_unjournaled: not a latch"
end

let stats_string net =
  Printf.sprintf "%s: pi=%d po=%d latches=%d logic=%d lits=%d"
    net.model
    (List.length net.input_ids)
    (List.length net.output_list)
    (num_latches net) (num_logic net) (lit_count net)

let pp fmt net =
  Format.fprintf fmt "@[<v>%s@," (stats_string net);
  List.iter
    (fun n ->
      let kind_str =
        match n.kind with
        | Input -> "input"
        | Const b -> if b then "const1" else "const0"
        | Latch I0 -> "latch(0)"
        | Latch I1 -> "latch(1)"
        | Latch Ix -> "latch(x)"
        | Logic c -> Format.asprintf "logic[%a]" Logic.Cover.pp c
      in
      Format.fprintf fmt "  %s#%d = %s (%s)@," n.name n.id kind_str
        (String.concat ","
           (List.map (fun f -> (node net f).name) (Array.to_list n.fanins))))
    (live_nodes net);
  Format.fprintf fmt "@]"
