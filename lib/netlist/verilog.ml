let sanitize name =
  let ok c =
    match c with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
    | _ -> '_'
  in
  let s = String.map ok name in
  if s = "" || match s.[0] with '0' .. '9' -> true | _ -> false then "n_" ^ s
  else s

let to_string net =
  (* unique sanitized name per node id *)
  let names = Hashtbl.create 64 in
  let used = Hashtbl.create 64 in
  let name_of n =
    match Hashtbl.find_opt names n.Network.id with
    | Some s -> s
    | None ->
      let base = sanitize n.Network.name in
      let rec unique candidate k =
        if Hashtbl.mem used candidate then
          unique (Printf.sprintf "%s_%d" base k) (k + 1)
        else candidate
      in
      let s = unique base 0 in
      Hashtbl.add used s ();
      Hashtbl.add names n.Network.id s;
      s
  in
  let buf = Buffer.create 2048 in
  let inputs = Network.inputs net in
  let outputs = Network.outputs net in
  let latches = Network.latches net in
  let logic = Network.topo_combinational net in
  let port_names =
    ("clk" :: List.map name_of inputs)
    @ List.map (fun (po, _) -> sanitize ("po_" ^ po)) outputs
  in
  Buffer.add_string buf
    (Printf.sprintf "module %s(%s);\n"
       (sanitize (Network.model_name net))
       (String.concat ", " port_names));
  Buffer.add_string buf "  input clk;\n";
  List.iter
    (fun n -> Buffer.add_string buf (Printf.sprintf "  input %s;\n" (name_of n)))
    inputs;
  List.iter
    (fun (po, _) ->
      Buffer.add_string buf
        (Printf.sprintf "  output %s;\n" (sanitize ("po_" ^ po))))
    outputs;
  List.iter
    (fun l -> Buffer.add_string buf (Printf.sprintf "  reg %s;\n" (name_of l)))
    latches;
  List.iter
    (fun n -> Buffer.add_string buf (Printf.sprintf "  wire %s;\n" (name_of n)))
    logic;
  Buffer.add_char buf '\n';
  (* combinational logic: SOP expressions *)
  let literal n phase =
    if phase then name_of n else "~" ^ name_of n
  in
  List.iter
    (fun n ->
      let cover = Network.cover_of n in
      let fanins =
        Array.map (fun f -> Network.node net f) n.Network.fanins
      in
      let cube_expr cube =
        let lits = ref [] in
        Logic.Cube.iteri
          (fun v l ->
            match l with
            | Logic.Cube.One -> lits := literal fanins.(v) true :: !lits
            | Logic.Cube.Zero -> lits := literal fanins.(v) false :: !lits
            | Logic.Cube.Both -> ())
          cube;
        match !lits with
        | [] -> "1'b1"
        | ls -> String.concat " & " (List.rev ls)
      in
      let expr =
        match cover.Logic.Cover.cubes with
        | [] -> "1'b0"
        | cubes ->
          String.concat " | "
            (List.map (fun c -> "(" ^ cube_expr c ^ ")") cubes)
      in
      Buffer.add_string buf
        (Printf.sprintf "  assign %s = %s;\n" (name_of n) expr))
    logic;
  (* constants *)
  List.iter
    (fun n ->
      match n.Network.kind with
      | Network.Const b ->
        Buffer.add_string buf
          (Printf.sprintf "  wire %s;\n  assign %s = 1'b%d;\n" (name_of n)
             (name_of n) (if b then 1 else 0))
      | Network.Input | Network.Latch _ | Network.Logic _ -> ())
    (Network.all_nodes net);
  (* registers *)
  if latches <> [] then begin
    Buffer.add_string buf "\n  initial begin\n";
    List.iter
      (fun l ->
        match Network.latch_init l with
        | Network.I0 ->
          Buffer.add_string buf
            (Printf.sprintf "    %s = 1'b0;\n" (name_of l))
        | Network.I1 ->
          Buffer.add_string buf
            (Printf.sprintf "    %s = 1'b1;\n" (name_of l))
        | Network.Ix -> ())
      latches;
    Buffer.add_string buf "  end\n\n  always @(posedge clk) begin\n";
    List.iter
      (fun l ->
        Buffer.add_string buf
          (Printf.sprintf "    %s <= %s;\n" (name_of l)
             (name_of (Network.latch_data net l))))
      latches;
    Buffer.add_string buf "  end\n"
  end;
  (* output bindings *)
  Buffer.add_char buf '\n';
  List.iter
    (fun (po, driver) ->
      Buffer.add_string buf
        (Printf.sprintf "  assign %s = %s;\n"
           (sanitize ("po_" ^ po))
           (name_of driver)))
    outputs;
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let write_file path net =
  let oc = open_out path in
  output_string oc (to_string net);
  close_out oc
