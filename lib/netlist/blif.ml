let tokenize_lines text =
  (* Strip comments, join continuation lines, split into token lists. *)
  let raw = String.split_on_char '\n' text in
  let strip_comment line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let rec join acc pending lineno = function
    | [] ->
      let acc = if pending = "" then acc else (lineno, pending) :: acc in
      List.rev acc
    | line :: rest ->
      let line = strip_comment line in
      let trimmed = String.trim line in
      if String.length trimmed > 0 && trimmed.[String.length trimmed - 1] = '\\'
      then
        let chunk = String.sub trimmed 0 (String.length trimmed - 1) in
        join acc (pending ^ chunk ^ " ") lineno rest
      else begin
        let full = pending ^ trimmed in
        let acc = if full = "" then acc else (lineno, full) :: acc in
        join acc "" (lineno + 1) rest
      end
  in
  join [] "" 1 raw
  |> List.map (fun (lineno, line) ->
         ( lineno,
           String.split_on_char ' ' line
           |> List.concat_map (String.split_on_char '\t')
           |> List.filter (fun s -> s <> "") ))
  |> List.filter (fun (_, toks) -> toks <> [])

type pending_names = {
  output_name : string;
  input_names : string list;
  mutable lines : (string * char) list;  (* input part, output value *)
}

let parse_string text =
  let net = Network.create () in
  let lines = tokenize_lines text in
  let declared_outputs = ref [] in
  let pending_logic : pending_names list ref = ref [] in
  let pending_latches = ref [] in
  let current = ref None in
  let fail lineno msg = failwith (Printf.sprintf "blif:%d: %s" lineno msg) in
  let finish_current () =
    match !current with
    | Some p -> pending_logic := p :: !pending_logic; current := None
    | None -> ()
  in
  List.iter
    (fun (lineno, toks) ->
      match toks with
      | ".model" :: rest ->
        finish_current ();
        (match rest with
         | [ name ] -> Network.set_name_of_model net name
         | [] | _ :: _ -> ())
      | ".inputs" :: names ->
        finish_current ();
        List.iter (fun n -> ignore (Network.add_input net n)) names
      | ".outputs" :: names ->
        finish_current ();
        declared_outputs := !declared_outputs @ names
      | ".latch" :: rest ->
        finish_current ();
        (match rest with
         | [ input; output ] ->
           pending_latches := (lineno, input, output, Network.Ix) :: !pending_latches
         | [ input; output; init ] ->
           let init =
             match init with
             | "0" -> Network.I0
             | "1" -> Network.I1
             | "2" | "3" -> Network.Ix
             | _ -> fail lineno ("bad latch init " ^ init)
           in
           pending_latches := (lineno, input, output, init) :: !pending_latches
         | [ input; ttype; _clock; output; init ] when ttype = "re" || ttype = "fe" ->
           let init =
             match init with
             | "0" -> Network.I0
             | "1" -> Network.I1
             | _ -> Network.Ix
           in
           pending_latches := (lineno, input, output, init) :: !pending_latches
         | _ -> fail lineno ".latch expects 2, 3 or 5 arguments")
      | ".names" :: signals ->
        finish_current ();
        (match List.rev signals with
         | output_name :: rev_inputs ->
           current :=
             Some
               { output_name;
                 input_names = List.rev rev_inputs;
                 lines = [] }
         | [] -> fail lineno ".names needs at least an output")
      | ".end" :: _ -> finish_current ()
      | [ ".exdc" ] -> fail lineno ".exdc not supported"
      | word :: rest when String.length word > 0 && word.[0] <> '.' ->
        (match !current with
         | None -> fail lineno "cover line outside .names"
         | Some p ->
           let width = List.length p.input_names in
           (match rest with
            | [ out ] when String.length out = 1 ->
              if String.length word <> width then
                fail lineno
                  (Printf.sprintf
                     "cover line for %s has width %d, .names declares %d \
                      input(s)"
                     p.output_name (String.length word) width);
              p.lines <- (word, out.[0]) :: p.lines
            | [] when width = 0 ->
              if String.length word <> 1 then
                fail lineno
                  (Printf.sprintf
                     "constant cover line for %s must be a single output \
                      value"
                     p.output_name);
              p.lines <- ("", word.[0]) :: p.lines
            | _ -> fail lineno "malformed cover line"))
      | directive :: _ -> fail lineno ("unsupported directive " ^ directive)
      | [] -> ())
    lines;
  finish_current ();
  (* Create placeholder nodes for every named signal, then fill them in. *)
  let by_name : (string, Network.node) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun n -> Hashtbl.replace by_name n.Network.name n)
    (Network.inputs net);
  let placeholder name =
    match Hashtbl.find_opt by_name name with
    | Some n -> n
    | None ->
      (* temporary constant-0 node; will be turned into logic/latch *)
      let n = Network.add_logic net ~name (Logic.Cover.empty 0) [] in
      Hashtbl.replace by_name name n;
      n
  in
  (* declare all targets first *)
  List.iter (fun p -> ignore (placeholder p.output_name)) !pending_logic;
  List.iter
    (fun (_, _, output, _) -> ignore (placeholder output))
    !pending_latches;
  (* latches *)
  List.iter
    (fun (lineno, input, output, init) ->
      let data = placeholder input in
      let target = Hashtbl.find by_name output in
      if Network.is_input target then fail lineno (output ^ " is an input");
      Network.become_latch net target init data)
    !pending_latches;
  (* logic nodes *)
  List.iter
    (fun p ->
      let fanins = List.map placeholder p.input_names in
      let n = List.length fanins in
      let on_cubes, off_cubes =
        List.fold_left
          (fun (on, off) (pattern, out) ->
            let pattern = if n = 0 then "" else pattern in
            if String.length pattern <> n then
              failwith
                (Printf.sprintf "blif: cover width mismatch on %s" p.output_name);
            let cube = if n = 0 then Logic.Cube.universe 0 else Logic.Cube.of_string pattern in
            match out with
            | '1' -> (cube :: on, off)
            | '0' -> (on, cube :: off)
            | c -> failwith (Printf.sprintf "blif: bad output value %c" c))
          ([], []) p.lines
      in
      let cover =
        match on_cubes, off_cubes with
        | on, [] -> Logic.Cover.make n on
        | [], off -> Logic.Cover.complement (Logic.Cover.make n off)
        | _ :: _, _ :: _ ->
          failwith
            (Printf.sprintf "blif: mixed-phase cover on %s" p.output_name)
      in
      let target = Hashtbl.find by_name p.output_name in
      if Network.is_input target then
        failwith (Printf.sprintf "blif: %s redefines an input" p.output_name);
      if Network.is_latch target then
        failwith (Printf.sprintf "blif: %s redefines a latch" p.output_name);
      Network.set_function net target cover fanins)
    !pending_logic;
  (* outputs *)
  List.iter
    (fun name ->
      match Hashtbl.find_opt by_name name with
      | Some n -> Network.set_output net name n
      | None -> failwith (Printf.sprintf "blif: undriven output %s" name))
    !declared_outputs;
  net

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string text

let to_string net =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf ".model %s\n" (Network.model_name net));
  let input_names =
    List.map (fun n -> n.Network.name) (Network.inputs net)
  in
  Buffer.add_string buf (".inputs " ^ String.concat " " input_names ^ "\n");
  let output_names = List.map fst (Network.outputs net) in
  Buffer.add_string buf (".outputs " ^ String.concat " " output_names ^ "\n");
  (* Primary outputs whose BLIF name differs from the driver node get a
     buffer .names entry. *)
  List.iter
    (fun (po_name, driver) ->
      if driver.Network.name <> po_name then
        Buffer.add_string buf
          (Printf.sprintf ".names %s %s\n1 1\n" driver.Network.name po_name))
    (Network.outputs net);
  List.iter
    (fun n ->
      match n.Network.kind with
      | Network.Input -> ()
      | Network.Const b ->
        Buffer.add_string buf (Printf.sprintf ".names %s\n" n.Network.name);
        if b then Buffer.add_string buf "1\n"
      | Network.Latch init ->
        let data = Network.latch_data net n in
        let init_str =
          match init with Network.I0 -> "0" | Network.I1 -> "1" | Network.Ix -> "2"
        in
        Buffer.add_string buf
          (Printf.sprintf ".latch %s %s %s\n" data.Network.name n.Network.name
             init_str)
      | Network.Logic cover ->
        let fanin_names =
          List.map
            (fun f -> f.Network.name)
            (Network.fanin_nodes net n)
        in
        Buffer.add_string buf
          (Printf.sprintf ".names %s %s\n"
             (String.concat " " fanin_names)
             n.Network.name);
        List.iter
          (fun cube ->
            Buffer.add_string buf (Logic.Cube.to_string cube ^ " 1\n"))
          cover.Logic.Cover.cubes)
    (Network.all_nodes net);
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

let write_file path net =
  let oc = open_out path in
  output_string oc (to_string net);
  close_out oc
