(** Structured tracing: hierarchical spans with wall-clock durations, GC
    deltas and typed attributes.

    The tracer is an ambient, process-wide sink so instrumentation points do
    not need a handle threaded through every call chain.  When disabled (the
    default) the fast path of {!span} is one atomic load and a branch — no
    allocation, no clock read — so permanently instrumented hot paths cost
    nothing in production runs.

    Spans record the worker domain that produced them ({!span-type-span}
    [track] is the domain id), so a [--jobs N] suite run renders as one
    timeline track per domain in the Chrome exporter
    ({!Export.chrome_json}).  Recording is multi-domain safe: a global
    mutex guards the (pass-granularity) event buffer, and per-domain nesting
    depth lives in domain-local storage. *)

type attr =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool

type span = {
  name : string;
  cat : string;          (** Chrome trace category; defaults to ["span"] *)
  track : int;           (** id of the domain that ran the span *)
  depth : int;           (** nesting depth on that track at entry *)
  start_ns : int64;
  dur_ns : int64;
  minor_words : float;   (** GC allocation delta; approximate under domains *)
  major_words : float;
  args : (string * attr) list;
}

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Drop every recorded span; the enabled state is unchanged. *)

val span : ?cat:string -> ?args:(string * attr) list -> string ->
  (unit -> 'a) -> 'a
(** [span name f] runs [f] and, when tracing is enabled, records a complete
    span around it (duration, GC delta, domain track, nesting depth).
    Exceptions propagate; the span is still recorded.  When disabled this is
    [f ()] after one atomic load. *)

val instant : ?cat:string -> ?args:(string * attr) list -> string -> unit
(** A zero-duration mark on the current track. *)

val depth : unit -> int
(** Current nesting depth of the calling domain (0 outside any span). *)

val spans : unit -> span list
(** Everything recorded so far, sorted by (track, start, depth). *)

val set_clock : (unit -> int64) option -> unit
(** Override the time source (nanoseconds); [None] restores the default
    wall clock.  For deterministic exporter tests. *)

(** {1 Span streaming}

    In addition to (or instead of) the in-memory buffer, completed spans
    can stream to registered sinks as they finish.  The resynthesis daemon
    uses this to flush spans incrementally to a file or a subscribed
    client, so a fleet-scale run never has to hold its whole trace in
    memory.  Sinks are invoked serially under an internal mutex, on the
    domain that completed the span; a sink must be fast, must not raise,
    and must never call back into this module. *)

type sink = {
  on_span : span -> unit;   (** one completed span (or instant mark) *)
  on_flush : unit -> unit;  (** flush buffered output (shutdown, export) *)
}

val add_sink : sink -> int
(** Register a sink; returns a token for {!remove_sink}.  Sinks only fire
    while tracing is {!enabled}. *)

val remove_sink : int -> unit

val flush_sinks : unit -> unit
(** Run every registered sink's [on_flush]. *)

val set_buffering : bool -> unit
(** [set_buffering false] stops accumulating spans in the in-memory buffer
    ({!spans} returns only what was recorded while buffering); sinks still
    receive every span.  Default [true]. *)

val buffering_enabled : unit -> bool
