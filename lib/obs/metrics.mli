(** Process-wide metrics registry: counters, gauges, log-bucketed histograms
    and string infos, published by the flow subsystems (STA re-query counts,
    cube-kernel containment rates, eqcheck verdict tallies, verifier rule
    firings, resynthesis deltas, bench measurements).

    Instruments are registered by name ({b naming scheme}:
    [subsystem.topic[.detail]], e.g. [sta.syncs.incremental],
    [logic.scc.contains_calls], [eqcheck.cap.product_bits]).  Registration is
    idempotent — asking for an existing name returns the same instrument;
    asking with a different kind raises [Invalid_argument].

    Updates are gated on a process-wide enabled flag (default off): a
    disabled update is one atomic load and a branch, so hot kernels can stay
    permanently instrumented.  Enabled updates are atomic and multi-domain
    safe; totals are deterministic under [--jobs N] because counter addition
    commutes. *)

type counter
type gauge
type histogram

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Zero every instrument (registrations survive). *)

val counter : string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : string -> histogram

val observe : histogram -> int -> unit
(** Record a non-negative sample (negative samples clamp to 0).  Buckets are
    fixed powers of two: bucket 0 holds values 0..1, bucket [i >= 1] holds
    values in [2^i, 2^(i+1)). *)

val set_info : string -> string -> unit
(** Free-text metadata (benchmark titles, units) carried through exports. *)

type histogram_snapshot = {
  count : int;
  sum : int;
  max_value : int;
  buckets : (int * int) list;
      (** (bucket lower bound, samples); zero buckets omitted *)
}

val histogram_stats : histogram -> histogram_snapshot

type value =
  | Counter of int
  | Gauge of float
  | Histogram of histogram_snapshot
  | Info of string

val dump : unit -> (string * value) list
(** Every registered instrument, sorted by name. *)

type snapshot
(** A labeled point-in-time copy of the registry, for {!delta}. *)

val snapshot : unit -> snapshot

val delta : snapshot -> (string * value) list
(** Instruments that changed since the snapshot, sorted by name: counters
    and histograms are subtracted (histogram [max] is the current max when
    new samples arrived, else 0); gauges and infos report their current
    value when it differs.  Unchanged instruments are omitted.  This is how
    the serving daemon accounts per-request activity without a global
    {!reset} — note that under concurrent requests a delta covers
    {e everything} that ran in the window, not just one request. *)
