type counter = int Atomic.t

type gauge = float Atomic.t

(* 63 power-of-two buckets cover every non-negative int sample. *)
let nbuckets = 63

type histogram = {
  h_buckets : int Atomic.t array;
  h_sum : int Atomic.t;
  h_max : int Atomic.t;
}

type instrument =
  | C of counter
  | G of gauge
  | H of histogram
  | I of string Atomic.t

let on = Atomic.make false

let enabled () = Atomic.get on
let enable () = Atomic.set on true
let disable () = Atomic.set on false

let lock = Mutex.create ()
let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64

let register name make describe =
  Mutex.lock lock;
  let i =
    match Hashtbl.find_opt registry name with
    | Some existing -> existing
    | None ->
      let i = make () in
      Hashtbl.add registry name i;
      i
  in
  Mutex.unlock lock;
  match describe i with
  | Some v -> v
  | None ->
    invalid_arg
      (Printf.sprintf "Obs.Metrics: %s already registered with another kind"
         name)

let counter name =
  register name
    (fun () -> C (Atomic.make 0))
    (function C c -> Some c | G _ | H _ | I _ -> None)

let add c n = if Atomic.get on then ignore (Atomic.fetch_and_add c n)
let incr c = add c 1
let counter_value c = Atomic.get c

let gauge name =
  register name
    (fun () -> G (Atomic.make 0.0))
    (function G g -> Some g | C _ | H _ | I _ -> None)

let set_gauge g v = if Atomic.get on then Atomic.set g v
let gauge_value g = Atomic.get g

let histogram name =
  register name
    (fun () ->
      H
        { h_buckets = Array.init nbuckets (fun _ -> Atomic.make 0);
          h_sum = Atomic.make 0;
          h_max = Atomic.make 0 })
    (function H h -> Some h | C _ | G _ | I _ -> None)

let bucket_of v =
  if v <= 1 then 0
  else begin
    let i = ref 0 and x = ref v in
    while !x > 1 do
      x := !x lsr 1;
      Stdlib.incr i
    done;
    !i
  end

let rec raise_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then raise_max cell v

let observe h v =
  if Atomic.get on then begin
    let v = max v 0 in
    ignore (Atomic.fetch_and_add h.h_buckets.(bucket_of v) 1);
    ignore (Atomic.fetch_and_add h.h_sum v);
    raise_max h.h_max v
  end

let set_info name text =
  let i =
    register name
      (fun () -> I (Atomic.make ""))
      (function I i -> Some i | C _ | G _ | H _ -> None)
  in
  Atomic.set i text

type histogram_snapshot = {
  count : int;
  sum : int;
  max_value : int;
  buckets : (int * int) list;
}

let bucket_floor i = if i = 0 then 0 else 1 lsl i

let histogram_stats h =
  let count = ref 0 and buckets = ref [] in
  for i = nbuckets - 1 downto 0 do
    let n = Atomic.get h.h_buckets.(i) in
    if n > 0 then begin
      count := !count + n;
      buckets := (bucket_floor i, n) :: !buckets
    end
  done;
  { count = !count;
    sum = Atomic.get h.h_sum;
    max_value = Atomic.get h.h_max;
    buckets = !buckets }

type value =
  | Counter of int
  | Gauge of float
  | Histogram of histogram_snapshot
  | Info of string

let dump () =
  Mutex.lock lock;
  (* lint-waive: nondet/hashtbl-order — sorted by name before return. *)
  let items = Hashtbl.fold (fun name i acc -> (name, i) :: acc) registry [] in
  Mutex.unlock lock;
  items
  |> List.map (fun (name, i) ->
         let v =
           match i with
           | C c -> Counter (Atomic.get c)
           | G g -> Gauge (Atomic.get g)
           | H h -> Histogram (histogram_stats h)
           | I i -> Info (Atomic.get i)
         in
         (name, v))
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* --- labeled snapshots -------------------------------------------------------------- *)

(* A snapshot is just a dump; [delta] subtracts it from the current dump so
   per-request accounting in the serving daemon never needs a global
   [reset] (which would race with concurrent requests). *)
type snapshot = (string * value) list

let snapshot () = dump ()

let sub_histogram (cur : histogram_snapshot) (old : histogram_snapshot) =
  let old_buckets = old.buckets in
  let bucket_delta =
    List.filter_map
      (fun (floor, n) ->
        let o = try List.assoc floor old_buckets with Not_found -> 0 in
        if n - o > 0 then Some (floor, n - o) else None)
      cur.buckets
  in
  { count = cur.count - old.count;
    sum = cur.sum - old.sum;
    (* max is not invertible: report the current max when new samples
       arrived, 0 otherwise *)
    max_value = (if cur.count > old.count then cur.max_value else 0);
    buckets = bucket_delta }

let delta (snap : snapshot) =
  let old : (string, value) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun (name, v) -> Hashtbl.replace old name v) snap;
  List.filter_map
    (fun (name, v) ->
      match (v, Hashtbl.find_opt old name) with
      | Counter n, Some (Counter o) ->
        if n <> o then Some (name, Counter (n - o)) else None
      | Counter n, None -> if n <> 0 then Some (name, Counter n) else None
      | Gauge g, Some (Gauge o) ->
        if g <> o then Some (name, Gauge g) else None
      | Gauge g, None -> if g <> 0.0 then Some (name, Gauge g) else None
      | Histogram h, Some (Histogram o) ->
        if h.count <> o.count then Some (name, Histogram (sub_histogram h o))
        else None
      | Histogram h, None ->
        if h.count <> 0 then Some (name, Histogram h) else None
      | Info s, Some (Info o) -> if s <> o then Some (name, Info s) else None
      | Info s, None -> if s <> "" then Some (name, Info s) else None
      (* an instrument re-registered with a different kind is impossible
         ([register] raises), but stay total *)
      | v, Some _ -> Some (name, v))
    (dump ())

let reset () =
  Mutex.lock lock;
  (* lint-waive: nondet/hashtbl-order — zeroing every instrument commutes. *)
  Hashtbl.iter
    (fun _ i ->
      match i with
      | C c -> Atomic.set c 0
      | G g -> Atomic.set g 0.0
      | H h ->
        Array.iter (fun b -> Atomic.set b 0) h.h_buckets;
        Atomic.set h.h_sum 0;
        Atomic.set h.h_max 0
      | I i -> Atomic.set i "")
    registry;
  Mutex.unlock lock
