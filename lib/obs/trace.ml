type attr =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool

type span = {
  name : string;
  cat : string;
  track : int;
  depth : int;
  start_ns : int64;
  dur_ns : int64;
  minor_words : float;
  major_words : float;
  args : (string * attr) list;
}

(* One atomic load on the disabled fast path; flipped only at startup or
   around an export, never per event. *)
let on = Atomic.make false

let enabled () = Atomic.get on
let enable () = Atomic.set on true
let disable () = Atomic.set on false

let clock_override : (unit -> int64) option Atomic.t = Atomic.make None

let set_clock f = Atomic.set clock_override f

(* gettimeofday-based: the stdlib exposes no monotonic clock, so negative
   steps (NTP slew) are clamped per span instead. *)
let now_ns () =
  match Atomic.get clock_override with
  | Some f -> f ()
  | None -> Int64.of_float (Unix.gettimeofday () *. 1e9) (* lint-waive: nondet/wall-clock — span timestamps only, never results *)

let lock = Mutex.create ()
let recorded : span list ref = ref []

(* Completed spans can additionally stream to registered sinks (the
   resynthesis daemon flushes them to a file or a subscribed client as
   they finish, instead of holding the whole trace in memory).  Sinks run
   under [sink_lock], so deliveries are serialized; a sink must never call
   back into this module (the mutex is not reentrant). *)
type sink = {
  on_span : span -> unit;
  on_flush : unit -> unit;
}

let sink_lock = Mutex.create ()
let sinks : (int * sink) list ref = ref []
let next_sink_id = ref 1

(* [buffering] off drops the in-memory span list (sinks still fire): a
   long-running daemon would otherwise grow the buffer without bound. *)
let buffering = Atomic.make true

let set_buffering b = Atomic.set buffering b
let buffering_enabled () = Atomic.get buffering

let add_sink sink =
  Mutex.lock sink_lock;
  let id = !next_sink_id in
  next_sink_id := id + 1;
  sinks := !sinks @ [ (id, sink) ];
  Mutex.unlock sink_lock;
  id

let remove_sink id =
  Mutex.lock sink_lock;
  sinks := List.filter (fun (i, _) -> i <> id) !sinks;
  Mutex.unlock sink_lock

let flush_sinks () =
  Mutex.lock sink_lock;
  List.iter (fun (_, s) -> s.on_flush ()) !sinks;
  Mutex.unlock sink_lock

let deliver s =
  Mutex.lock sink_lock;
  List.iter (fun (_, k) -> k.on_span s) !sinks;
  Mutex.unlock sink_lock

let record s =
  if Atomic.get buffering then begin
    Mutex.lock lock;
    recorded := s :: !recorded;
    Mutex.unlock lock
  end;
  deliver s

let reset () =
  Mutex.lock lock;
  recorded := [];
  Mutex.unlock lock

let depth_key = Domain.DLS.new_key (fun () -> ref 0)

let depth () = !(Domain.DLS.get depth_key)

let finish_span ~name ~cat ~args ~my_depth ~t0 ~g0 =
  let t1 = now_ns () in
  let g1 = Gc.quick_stat () in
  record
    { name;
      cat;
      (* lint-waive: nondet/domain-id — the track id labels which worker
         ran the span on the trace timeline; spans never feed results. *)
      track = (Domain.self () :> int);
      depth = my_depth;
      start_ns = t0;
      dur_ns = (let d = Int64.sub t1 t0 in if Int64.compare d 0L < 0 then 0L else d);
      minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
      major_words = g1.Gc.major_words -. g0.Gc.major_words;
      args }

let span ?(cat = "span") ?(args = []) name f =
  if not (Atomic.get on) then f ()
  else begin
    let d = Domain.DLS.get depth_key in
    let my_depth = !d in
    d := my_depth + 1;
    let g0 = Gc.quick_stat () in
    let t0 = now_ns () in
    match f () with
    | v ->
      d := my_depth;
      finish_span ~name ~cat ~args ~my_depth ~t0 ~g0;
      v
    | exception e ->
      d := my_depth;
      finish_span ~name ~cat ~args ~my_depth ~t0 ~g0;
      raise e
  end

let instant ?(cat = "mark") ?(args = []) name =
  if Atomic.get on then begin
    let t0 = now_ns () in
    record
      { name;
        cat;
        (* lint-waive: nondet/domain-id — timeline track label only. *)
        track = (Domain.self () :> int);
        depth = depth ();
        start_ns = t0;
        dur_ns = 0L;
        minor_words = 0.0;
        major_words = 0.0;
        args }
  end

let spans () =
  Mutex.lock lock;
  let all = !recorded in
  Mutex.unlock lock;
  List.sort
    (fun a b ->
      let c = compare a.track b.track in
      if c <> 0 then c
      else
        let c = Int64.compare a.start_ns b.start_ns in
        if c <> 0 then c else compare a.depth b.depth)
    all
