type attr =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool

type span = {
  name : string;
  cat : string;
  track : int;
  depth : int;
  start_ns : int64;
  dur_ns : int64;
  minor_words : float;
  major_words : float;
  args : (string * attr) list;
}

(* One atomic load on the disabled fast path; flipped only at startup or
   around an export, never per event. *)
let on = Atomic.make false

let enabled () = Atomic.get on
let enable () = Atomic.set on true
let disable () = Atomic.set on false

let clock_override : (unit -> int64) option Atomic.t = Atomic.make None

let set_clock f = Atomic.set clock_override f

(* gettimeofday-based: the stdlib exposes no monotonic clock, so negative
   steps (NTP slew) are clamped per span instead. *)
let now_ns () =
  match Atomic.get clock_override with
  | Some f -> f ()
  | None -> Int64.of_float (Unix.gettimeofday () *. 1e9) (* lint-waive: nondet/wall-clock — span timestamps only, never results *)

let lock = Mutex.create ()
let recorded : span list ref = ref []

let record s =
  Mutex.lock lock;
  recorded := s :: !recorded;
  Mutex.unlock lock

let reset () =
  Mutex.lock lock;
  recorded := [];
  Mutex.unlock lock

let depth_key = Domain.DLS.new_key (fun () -> ref 0)

let depth () = !(Domain.DLS.get depth_key)

let finish_span ~name ~cat ~args ~my_depth ~t0 ~g0 =
  let t1 = now_ns () in
  let g1 = Gc.quick_stat () in
  record
    { name;
      cat;
      (* lint-waive: nondet/domain-id — the track id labels which worker
         ran the span on the trace timeline; spans never feed results. *)
      track = (Domain.self () :> int);
      depth = my_depth;
      start_ns = t0;
      dur_ns = (let d = Int64.sub t1 t0 in if Int64.compare d 0L < 0 then 0L else d);
      minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
      major_words = g1.Gc.major_words -. g0.Gc.major_words;
      args }

let span ?(cat = "span") ?(args = []) name f =
  if not (Atomic.get on) then f ()
  else begin
    let d = Domain.DLS.get depth_key in
    let my_depth = !d in
    d := my_depth + 1;
    let g0 = Gc.quick_stat () in
    let t0 = now_ns () in
    match f () with
    | v ->
      d := my_depth;
      finish_span ~name ~cat ~args ~my_depth ~t0 ~g0;
      v
    | exception e ->
      d := my_depth;
      finish_span ~name ~cat ~args ~my_depth ~t0 ~g0;
      raise e
  end

let instant ?(cat = "mark") ?(args = []) name =
  if Atomic.get on then begin
    let t0 = now_ns () in
    record
      { name;
        cat;
        (* lint-waive: nondet/domain-id — timeline track label only. *)
        track = (Domain.self () :> int);
        depth = depth ();
        start_ns = t0;
        dur_ns = 0L;
        minor_words = 0.0;
        major_words = 0.0;
        args }
  end

let spans () =
  Mutex.lock lock;
  let all = !recorded in
  Mutex.unlock lock;
  List.sort
    (fun a b ->
      let c = compare a.track b.track in
      if c <> 0 then c
      else
        let c = Int64.compare a.start_ns b.start_ns in
        if c <> 0 then c else compare a.depth b.depth)
    all
