(** Exporters over the ambient {!Trace} and {!Metrics} state.

    Three formats:
    - {!text_summary}: human-readable metric values plus a per-span-name
      rollup (calls / total time / allocation);
    - {!metrics_json} and {!spans_json}: machine-readable JSON;
    - {!chrome_json}: the Chrome [trace_event] format (JSON object with a
      [traceEvents] array of complete ["X"] events plus thread-name
      metadata), loadable in [chrome://tracing] and Perfetto.  Each worker
      domain renders as its own track. *)

val text_summary : unit -> string

val metrics_json : ?prefix:string -> unit -> string
(** The registry as one JSON object; [prefix] restricts to instruments whose
    name starts with it. *)

val spans_json : unit -> string
(** Recorded spans as a JSON array (native format: track, depth, start_ns,
    dur_ns, GC words, args). *)

val span_json : Trace.span -> string
(** One span as a single-line JSON object (the element format of
    {!spans_json}); streaming sinks emit one of these per line. *)

val prometheus_text : unit -> string
(** The registry in Prometheus exposition format (registry dots become
    underscores; histograms render cumulative [_bucket]/[_sum]/[_count]
    series; infos render as a labeled constant-1 gauge).  The daemon's
    live metrics endpoint serves this. *)

val chrome_json : unit -> string

val write_file : string -> string -> unit
(** [write_file path contents] with a trailing newline. *)
