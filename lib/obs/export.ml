(* %S is OCaml string syntax, which coincides with JSON escaping for the
   printable-ASCII names and messages produced here (same convention as
   Verify.render_json / Eqcheck.render_json). *)

let attr_json = function
  | Trace.Str s -> Printf.sprintf "%S" s
  | Trace.Int i -> string_of_int i
  | Trace.Float f -> Printf.sprintf "%.6g" f
  | Trace.Bool b -> string_of_bool b

let args_json args =
  String.concat ", "
    (List.map (fun (k, v) -> Printf.sprintf "%S: %s" k (attr_json v)) args)

let float_json f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

(* --- machine JSON ------------------------------------------------------------ *)

let histogram_json (h : Metrics.histogram_snapshot) =
  let buckets =
    String.concat ", "
      (List.map
         (fun (floor, n) -> Printf.sprintf "\"%d\": %d" floor n)
         h.Metrics.buckets)
  in
  Printf.sprintf
    "{ \"count\": %d, \"sum\": %d, \"max\": %d, \"buckets\": { %s } }"
    h.Metrics.count h.Metrics.sum h.Metrics.max_value buckets

let metrics_json ?(prefix = "") () =
  let items =
    List.filter
      (fun (name, _) -> String.starts_with ~prefix name)
      (Metrics.dump ())
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"metrics\": {\n";
  List.iteri
    (fun i (name, v) ->
      let rendered =
        match v with
        | Metrics.Counter n -> string_of_int n
        | Metrics.Gauge g -> float_json g
        | Metrics.Histogram h -> histogram_json h
        | Metrics.Info s -> Printf.sprintf "%S" s
      in
      Buffer.add_string buf
        (Printf.sprintf "    %S: %s%s\n" name rendered
           (if i = List.length items - 1 then "" else ",")))
    items;
  Buffer.add_string buf "  }\n}";
  Buffer.contents buf

let span_json (s : Trace.span) =
  let args =
    if s.Trace.args = [] then ""
    else Printf.sprintf ", \"args\": { %s }" (args_json s.Trace.args)
  in
  Printf.sprintf
    "{ \"name\": %S, \"cat\": %S, \"track\": %d, \"depth\": %d, \
     \"start_ns\": %Ld, \"dur_ns\": %Ld, \"gc_minor_words\": %.0f, \
     \"gc_major_words\": %.0f%s }"
    s.Trace.name s.Trace.cat s.Trace.track s.Trace.depth s.Trace.start_ns
    s.Trace.dur_ns s.Trace.minor_words s.Trace.major_words args

let spans_json () =
  let spans = Trace.spans () in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i (s : Trace.span) ->
      let args =
        if s.Trace.args = [] then ""
        else Printf.sprintf ", \"args\": { %s }" (args_json s.Trace.args)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "  { \"name\": %S, \"cat\": %S, \"track\": %d, \"depth\": %d, \
            \"start_ns\": %Ld, \"dur_ns\": %Ld, \"gc_minor_words\": %.0f, \
            \"gc_major_words\": %.0f%s }%s\n"
           s.Trace.name s.Trace.cat s.Trace.track s.Trace.depth
           s.Trace.start_ns s.Trace.dur_ns s.Trace.minor_words
           s.Trace.major_words args
           (if i = List.length spans - 1 then "" else ",")))
    spans;
  Buffer.add_string buf "]";
  Buffer.contents buf

(* --- Prometheus exposition text ------------------------------------------------ *)

(* The live "/metrics"-style endpoint of the resynthesis daemon serves this:
   one exposition-format block per instrument, with registry dots mapped to
   underscores (Prometheus metric names admit [a-zA-Z0-9_:] only).  Infos
   render as a labeled constant-1 gauge, the convention for build/run
   metadata. *)

let prom_name name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let prom_label_value s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let prometheus_text () =
  let buf = Buffer.create 2048 in
  List.iter
    (fun (name, v) ->
      let n = prom_name name in
      match v with
      | Metrics.Counter c ->
        Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" n);
        Buffer.add_string buf (Printf.sprintf "%s %d\n" n c)
      | Metrics.Gauge g ->
        Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" n);
        Buffer.add_string buf (Printf.sprintf "%s %s\n" n (float_json g))
      | Metrics.Histogram h ->
        Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" n);
        let cumulative = ref 0 in
        List.iter
          (fun (floor, count) ->
            cumulative := !cumulative + count;
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" n floor !cumulative))
          h.Metrics.buckets;
        Buffer.add_string buf
          (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n h.Metrics.count);
        Buffer.add_string buf (Printf.sprintf "%s_sum %d\n" n h.Metrics.sum);
        Buffer.add_string buf
          (Printf.sprintf "%s_count %d\n" n h.Metrics.count)
      | Metrics.Info s ->
        Buffer.add_string buf (Printf.sprintf "# TYPE %s_info gauge\n" n);
        Buffer.add_string buf
          (Printf.sprintf "%s_info{value=\"%s\"} 1\n" n (prom_label_value s)))
    (Metrics.dump ());
  Buffer.contents buf

(* --- Chrome trace_event ------------------------------------------------------- *)

let chrome_json () =
  let spans = Trace.spans () in
  let tracks =
    List.sort_uniq compare (List.map (fun s -> s.Trace.track) spans)
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\": [\n";
  Buffer.add_string buf
    "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, \
     \"args\": {\"name\": \"retiming-resynthesis\"}},\n";
  List.iter
    (fun t ->
      Buffer.add_string buf
        (Printf.sprintf
           "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \
            \"tid\": %d, \"args\": {\"name\": \"domain %d\"}},\n"
           t t))
    tracks;
  List.iteri
    (fun i (s : Trace.span) ->
      let gc_args =
        Printf.sprintf "\"gc_minor_words\": %.0f, \"gc_major_words\": %.0f"
          s.Trace.minor_words s.Trace.major_words
      in
      let args =
        if s.Trace.args = [] then gc_args
        else args_json s.Trace.args ^ ", " ^ gc_args
      in
      Buffer.add_string buf
        (Printf.sprintf
           "  {\"name\": %S, \"cat\": %S, \"ph\": \"X\", \"pid\": 1, \
            \"tid\": %d, \"ts\": %.3f, \"dur\": %.3f, \"args\": {%s}}%s\n"
           s.Trace.name s.Trace.cat s.Trace.track
           (Int64.to_float s.Trace.start_ns /. 1e3)
           (Int64.to_float s.Trace.dur_ns /. 1e3)
           args
           (if i = List.length spans - 1 then "" else ",")))
    spans;
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* --- human summary ------------------------------------------------------------- *)

let text_summary () =
  let buf = Buffer.create 2048 in
  let metrics = Metrics.dump () in
  if metrics <> [] then begin
    Buffer.add_string buf "metrics:\n";
    List.iter
      (fun (name, v) ->
        let line =
          match v with
          | Metrics.Counter n -> Printf.sprintf "  %-44s %d\n" name n
          | Metrics.Gauge g -> Printf.sprintf "  %-44s %.4g\n" name g
          | Metrics.Histogram h ->
            let mean =
              if h.Metrics.count = 0 then 0.0
              else float_of_int h.Metrics.sum /. float_of_int h.Metrics.count
            in
            Printf.sprintf "  %-44s count %d  sum %d  mean %.1f  max %d\n"
              name h.Metrics.count h.Metrics.sum mean h.Metrics.max_value
          | Metrics.Info s -> Printf.sprintf "  %-44s %s\n" name s
        in
        Buffer.add_string buf line)
      metrics
  end;
  let spans = Trace.spans () in
  if spans <> [] then begin
    (* rollup by span name: calls, wall total, allocation total *)
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun (s : Trace.span) ->
        let calls, ns, words =
          match Hashtbl.find_opt tbl s.Trace.name with
          | Some x -> x
          | None -> (0, 0L, 0.0)
        in
        Hashtbl.replace tbl s.Trace.name
          ( calls + 1,
            Int64.add ns s.Trace.dur_ns,
            words +. s.Trace.minor_words ))
      spans;
    let rows =
      (* lint-waive: nondet/hashtbl-order — fully sorted on the next line. *)
      Hashtbl.fold (fun name v acc -> (name, v) :: acc) tbl []
      |> List.sort (fun (_, (_, a, _)) (_, (_, b, _)) -> Int64.compare b a)
    in
    Buffer.add_string buf "spans (by total wall time):\n";
    List.iter
      (fun (name, (calls, ns, words)) ->
        Buffer.add_string buf
          (Printf.sprintf "  %-44s calls %-6d total %8.2f ms  alloc %.0f kw\n"
             name calls
             (Int64.to_float ns /. 1e6)
             (words /. 1e3)))
      rows
  end;
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  output_char oc '\n';
  close_out oc
