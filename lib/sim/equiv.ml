module N = Netlist.Network

exception Too_large of string

(* --- shared helpers -------------------------------------------------------- *)

let leaf_names net =
  let pis = List.map (fun n -> n.N.name) (N.inputs net) in
  let states = List.map (fun l -> l.N.name) (N.latches net) in
  List.sort_uniq compare (pis @ states)

let endpoint_names net =
  let pos = List.map fst (N.outputs net) in
  let nexts = List.map (fun l -> "next:" ^ l.N.name) (N.latches net) in
  List.sort_uniq compare (pos @ nexts)

(* Evaluate all endpoints of a network under an assignment of leaves given by
   name. *)
let eval_endpoints net assign =
  let leaf_value id =
    let n = N.node net id in
    assign n.N.name
  in
  let po =
    List.map
      (fun (name, n) -> (name, N.eval_comb net leaf_value n.N.id))
      (N.outputs net)
  in
  let next =
    List.map
      (fun l ->
        ("next:" ^ l.N.name, N.eval_comb net leaf_value (N.latch_data net l).N.id))
      (N.latches net)
  in
  po @ next

let comb_equal_exhaustive a b =
  let leaves = leaf_names a in
  if leaf_names b <> leaves then false
  else if endpoint_names a <> endpoint_names b then false
  else begin
    let n = List.length leaves in
    if n > 16 then raise (Too_large "comb_equal_exhaustive: > 16 leaves");
    let indexed = List.mapi (fun i name -> (name, i)) leaves in
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < 1 lsl n do
      let bits = !i in
      let assign name = bits land (1 lsl List.assoc name indexed) <> 0 in
      let ea = eval_endpoints a assign and eb = eval_endpoints b assign in
      let sort = List.sort compare in
      if sort ea <> sort eb then ok := false;
      incr i
    done;
    !ok
  end

(* --- SAT-based combinational equivalence ----------------------------------- *)

let node_cnf solver net ~leaf_var root_id =
  let memo = Hashtbl.create 64 in
  let rec go id =
    match Hashtbl.find_opt memo id with
    | Some v -> v
    | None ->
      let n = N.node net id in
      let v =
        match n.N.kind with
        | N.Input | N.Latch _ -> leaf_var id
        | N.Const b ->
          let v = Sat_lite.new_var solver in
          Sat_lite.add_clause solver [ (if b then v + 1 else -(v + 1)) ];
          v
        | N.Logic cover ->
          let fanin_vars = Array.map go n.N.fanins in
          let out = Sat_lite.new_var solver in
          (* Tseitin for an SOP: introduce a var per cube. *)
          let cube_vars =
            List.map
              (fun cube ->
                let cv = Sat_lite.new_var solver in
                (* cv -> each literal *)
                Logic.Cube.iteri
                  (fun i l ->
                    let fv = fanin_vars.(i) in
                    match l with
                    | Logic.Cube.One ->
                      Sat_lite.add_clause solver [ -(cv + 1); fv + 1 ]
                    | Logic.Cube.Zero ->
                      Sat_lite.add_clause solver [ -(cv + 1); -(fv + 1) ]
                    | Logic.Cube.Both -> ())
                  cube;
                (* literals -> cv *)
                let body = ref [] in
                Logic.Cube.iteri
                  (fun i l ->
                    let fv = fanin_vars.(i) in
                    match l with
                    | Logic.Cube.One -> body := -(fv + 1) :: !body
                    | Logic.Cube.Zero -> body := fv + 1 :: !body
                    | Logic.Cube.Both -> ())
                  cube;
                let body = List.rev !body in
                Sat_lite.add_clause solver ((cv + 1) :: body);
                cv)
              cover.Logic.Cover.cubes
          in
          (* out <-> OR of cubes *)
          List.iter
            (fun cv -> Sat_lite.add_clause solver [ -(cv + 1); out + 1 ])
            cube_vars;
          Sat_lite.add_clause solver
            (-(out + 1) :: List.map (fun cv -> cv + 1) cube_vars);
          out
      in
      Hashtbl.add memo id v;
      v
  in
  go root_id

let comb_equal_sat ?(conflict_limit = 500_000) a b =
  let leaves = leaf_names a in
  if leaf_names b <> leaves then false
  else if endpoint_names a <> endpoint_names b then false
  else begin
    let solver = Sat_lite.create () in
    let leaf_sat =
      List.map (fun name -> (name, Sat_lite.new_var solver)) leaves
    in
    let leaf_var_for net id =
      let n = N.node net id in
      List.assoc n.N.name leaf_sat
    in
    let endpoints net =
      List.map (fun (name, n) -> (name, n.N.id)) (N.outputs net)
      @ List.map
          (fun l -> ("next:" ^ l.N.name, (N.latch_data net l).N.id))
          (N.latches net)
    in
    (* miter: OR of XORs of matched endpoints must be unsat *)
    let xor_vars =
      List.map
        (fun (name, ida) ->
          let idb = List.assoc name (endpoints b) in
          let va = node_cnf solver a ~leaf_var:(leaf_var_for a) ida in
          let vb = node_cnf solver b ~leaf_var:(leaf_var_for b) idb in
          let x = Sat_lite.new_var solver in
          (* x <-> va xor vb *)
          Sat_lite.add_clause solver [ -(x + 1); va + 1; vb + 1 ];
          Sat_lite.add_clause solver [ -(x + 1); -(va + 1); -(vb + 1) ];
          Sat_lite.add_clause solver [ x + 1; -(va + 1); vb + 1 ];
          Sat_lite.add_clause solver [ x + 1; va + 1; -(vb + 1) ];
          x)
        (endpoints a)
    in
    Sat_lite.add_clause solver (List.map (fun x -> x + 1) xor_vars);
    match Sat_lite.solve ~conflict_limit solver with
    | Sat_lite.Unsat -> true
    | Sat_lite.Sat _ -> false
    | Sat_lite.Unknown -> raise (Too_large "comb_equal_sat: budget exhausted")
  end

(* --- BDD-based sequential equivalence --------------------------------------- *)

(* Variable layout for the product machine:
     0 .. npi-1                      shared primary inputs (by sorted name)
     npi .. npi+n1-1                 present-state of network A
     npi+n1 .. npi+n1+n2-1           present-state of network B
     then the same again, shifted, for next-state variables. *)
let seq_equal_bdd ?(max_latches = 28) ?(delay = 0) a b =
  let pi_names = List.sort compare (List.map (fun n -> n.N.name) (N.inputs a)) in
  let pi_names_b = List.sort compare (List.map (fun n -> n.N.name) (N.inputs b)) in
  if pi_names <> pi_names_b then false
  else if List.sort compare (List.map fst (N.outputs a))
          <> List.sort compare (List.map fst (N.outputs b))
  then false
  else begin
    let latches_a = N.latches a and latches_b = N.latches b in
    let n1 = List.length latches_a and n2 = List.length latches_b in
    if n1 + n2 > max_latches then
      raise (Too_large "seq_equal_bdd: too many latches");
    let npi = List.length pi_names in
    (* per-call scope; the product machines of different calls share node
       structure through the process-wide table *)
    let man = Bdd.create () in
    let pi_index name =
      let rec find i = function
        | [] -> invalid_arg "pi_index"
        | x :: rest -> if x = name then i else find (i + 1) rest
      in
      find 0 pi_names
    in
    let ps_var_a = Hashtbl.create 16 and ps_var_b = Hashtbl.create 16 in
    List.iteri (fun j l -> Hashtbl.add ps_var_a l.N.id (npi + j)) latches_a;
    List.iteri (fun j l -> Hashtbl.add ps_var_b l.N.id (npi + n1 + j)) latches_b;
    let ns_base = npi + n1 + n2 in
    (* build node BDDs for one network *)
    let build net ps_var =
      let values = Hashtbl.create 256 in
      List.iter
        (fun n ->
          Hashtbl.add values n.N.id (Bdd.var man (pi_index n.N.name)))
        (N.inputs net);
      List.iter
        (fun l ->
          Hashtbl.add values l.N.id (Bdd.var man (Hashtbl.find ps_var l.N.id)))
        (N.latches net);
      List.iter
        (fun n ->
          match n.N.kind with
          | N.Const v ->
            Hashtbl.add values n.N.id (if v then Bdd.btrue else Bdd.bfalse)
          | N.Input | N.Latch _ | N.Logic _ -> ())
        (N.all_nodes net);
      List.iter
        (fun n ->
          let fanins = Array.map (fun f -> Hashtbl.find values f) n.N.fanins in
          let cover = N.cover_of n in
          let cube_bdd cube =
            let acc = ref Bdd.btrue in
            Logic.Cube.iteri
              (fun i l ->
                match l with
                | Logic.Cube.One -> acc := Bdd.band man !acc fanins.(i)
                | Logic.Cube.Zero ->
                  acc := Bdd.band man !acc (Bdd.bnot man fanins.(i))
                | Logic.Cube.Both -> ())
              cube;
            !acc
          in
          let v =
            List.fold_left
              (fun acc c -> Bdd.bor man acc (cube_bdd c))
              Bdd.bfalse cover.Logic.Cover.cubes
          in
          Hashtbl.add values n.N.id v)
        (N.topo_combinational net);
      values
    in
    let values_a = build a ps_var_a and values_b = build b ps_var_b in
    (* transition relation *)
    let transition = ref Bdd.btrue in
    let add_latch values ps_var l net =
      let ns_var = ns_base + Hashtbl.find ps_var l.N.id - npi in
      let f = Hashtbl.find values (N.latch_data net l).N.id in
      transition :=
        Bdd.band man !transition (Bdd.bxnor man (Bdd.var man ns_var) f)
    in
    List.iter (fun l -> add_latch values_a ps_var_a l a) latches_a;
    List.iter (fun l -> add_latch values_b ps_var_b l b) latches_b;
    (* initial states *)
    let init = ref Bdd.btrue in
    let add_init ps_var l =
      let v = Bdd.var man (Hashtbl.find ps_var l.N.id) in
      match N.latch_init l with
      | N.I0 -> init := Bdd.band man !init (Bdd.bnot man v)
      | N.I1 -> init := Bdd.band man !init v
      | N.Ix -> ()
    in
    List.iter (add_init ps_var_a) latches_a;
    List.iter (add_init ps_var_b) latches_b;
    (* output miter *)
    let outputs_equal = ref Bdd.btrue in
    List.iter
      (fun (name, na) ->
        let nb = List.assoc name (N.outputs b) in
        let va = Hashtbl.find values_a na.N.id in
        let vb = Hashtbl.find values_b nb.N.id in
        outputs_equal := Bdd.band man !outputs_equal (Bdd.bxnor man va vb))
      (N.outputs a);
    (* reachability fixpoint *)
    let pi_vars = List.init npi Fun.id in
    let ps_vars = List.init (n1 + n2) (fun j -> npi + j) in
    let rename_ns_to_ps f = Bdd.rename man f (fun v -> v - n1 - n2) in
    let image r =
      let after =
        Bdd.and_exists man (pi_vars @ ps_vars) !transition r
      in
      rename_ns_to_ps after
    in
    let rec fixpoint reached frontier =
      (* check outputs on the frontier *)
      let bad =
        Bdd.band man frontier (Bdd.bnot man !outputs_equal)
      in
      if not (Bdd.is_false bad) then false
      else begin
        let next = image frontier in
        let new_states = Bdd.band man next (Bdd.bnot man reached) in
        if Bdd.is_false new_states then true
        else fixpoint (Bdd.bor man reached new_states) new_states
      end
    in
    (* delayed replacement: outputs are unconstrained for [delay] cycles, so
       start the agreement fixpoint from the states reachable in exactly
       [delay] steps *)
    let rec advance k s = if k = 0 then s else advance (k - 1) (image s) in
    let start = advance delay !init in
    fixpoint start start
  end

let seq_equal_delayed ?max_latches ~k a b =
  seq_equal_bdd ?max_latches ~delay:k a b

(* --- random co-simulation --------------------------------------------------- *)

let seq_equal_random ?(vectors = 64) ?(length = 128) ~seed a b =
  let pi_names = List.map (fun n -> n.N.name) (N.inputs a) in
  let rng = Random.State.make [| seed |] in
  let run_ok () =
    let sa = ref (Simulate.binary_initial_state a) in
    let sb = ref (Simulate.binary_initial_state b) in
    let ok = ref true in
    let cycle = ref 0 in
    while !ok && !cycle < length do
      let vector = List.map (fun nm -> (nm, Random.State.bool rng)) pi_names in
      let pi name = List.assoc name vector in
      let sa', oa = Simulate.step a ~pi ~state:!sa in
      let sb', ob = Simulate.step b ~pi ~state:!sb in
      sa := sa';
      sb := sb';
      if List.sort compare oa <> List.sort compare ob then ok := false;
      incr cycle
    done;
    !ok
  in
  let rec loop k = k = 0 || (run_ok () && loop (k - 1)) in
  loop vectors

let seq_equal ?(seed = 0xC0FFEE) a b =
  match seq_equal_bdd a b with
  | result -> result
  | exception Too_large _ -> seq_equal_random ~seed a b
