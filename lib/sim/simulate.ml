module N = Netlist.Network

type tri = T0 | T1 | Tx

let tri_of_bool b = if b then T1 else T0
let tri_equal (a : tri) b = a = b

type state = (int * bool) list
type tri_state = (int * tri) list

let initial_state net =
  List.map
    (fun l ->
      match N.latch_init l with
      | N.I0 -> (l.N.id, T0)
      | N.I1 -> (l.N.id, T1)
      | N.Ix -> (l.N.id, Tx))
    (N.latches net)

let binary_initial_state net =
  List.map
    (fun l ->
      match N.latch_init l with
      | N.I0 -> (l.N.id, false)
      | N.I1 -> (l.N.id, true)
      | N.Ix ->
        failwith
          (Printf.sprintf "Simulate: latch %s has no binary initial value"
             l.N.name))
    (N.latches net)

let capacity net =
  List.fold_left (fun acc n -> max acc n.N.id) 0 (N.all_nodes net) + 1

let eval_all net ~pi ~state =
  let values = Array.make (capacity net) false in
  List.iter (fun n -> values.(n.N.id) <- pi n.N.name) (N.inputs net);
  List.iter
    (fun n ->
      match n.N.kind with
      | N.Const b -> values.(n.N.id) <- b
      | N.Input | N.Latch _ | N.Logic _ -> ())
    (N.all_nodes net);
  List.iter
    (fun l ->
      match List.assoc_opt l.N.id state with
      | Some v -> values.(l.N.id) <- v
      | None -> failwith ("Simulate: missing state for latch " ^ l.N.name))
    (N.latches net);
  List.iter
    (fun n ->
      let point = Array.map (fun f -> values.(f)) n.N.fanins in
      values.(n.N.id) <- Logic.Cover.eval (N.cover_of n) point)
    (N.topo_combinational net);
  values

let step net ~pi ~state =
  let values = eval_all net ~pi ~state in
  let next =
    List.map
      (fun l -> (l.N.id, values.((N.latch_data net l).N.id)))
      (N.latches net)
  in
  let outs =
    List.map (fun (name, n) -> (name, values.(n.N.id))) (N.outputs net)
  in
  (next, outs)

let run net state vectors =
  let rec loop state acc = function
    | [] -> (state, List.rev acc)
    | pi :: rest ->
      let state', outs = step net ~pi ~state in
      loop state' (outs :: acc) rest
  in
  loop state [] vectors

(* --- 3-valued -------------------------------------------------------------- *)

(* SOP 3-valued evaluation: a cube is 1 if all its literals are 1, 0 if any
   literal is 0, else X; the sum is 1 if any cube is 1, 0 if all are 0,
   else X.  This is the standard conservative semantics. *)
let eval_cover3 cover point =
  let eval_cube cube =
    let result = ref T1 in
    Logic.Cube.iteri
      (fun v l ->
        match l, point.(v) with
        | Logic.Cube.Both, _ -> ()
        | Logic.Cube.One, T1 | Logic.Cube.Zero, T0 -> ()
        | Logic.Cube.One, T0 | Logic.Cube.Zero, T1 -> result := T0
        | (Logic.Cube.One | Logic.Cube.Zero), Tx ->
          if !result = T1 then result := Tx)
      cube;
    !result
  in
  List.fold_left
    (fun acc cube ->
      match acc, eval_cube cube with
      | T1, _ | _, T1 -> T1
      | Tx, _ | _, Tx -> Tx
      | T0, T0 -> T0)
    T0 cover.Logic.Cover.cubes

let eval_all3 net ~pi ~state =
  let values = Array.make (capacity net) Tx in
  List.iter (fun n -> values.(n.N.id) <- pi n.N.name) (N.inputs net);
  List.iter
    (fun n ->
      match n.N.kind with
      | N.Const b -> values.(n.N.id) <- tri_of_bool b
      | N.Input | N.Latch _ | N.Logic _ -> ())
    (N.all_nodes net);
  List.iter
    (fun l ->
      match List.assoc_opt l.N.id state with
      | Some v -> values.(l.N.id) <- v
      | None -> values.(l.N.id) <- Tx)
    (N.latches net);
  List.iter
    (fun n ->
      let point = Array.map (fun f -> values.(f)) n.N.fanins in
      values.(n.N.id) <- eval_cover3 (N.cover_of n) point)
    (N.topo_combinational net);
  values

let step3 net ~pi ~state =
  let values = eval_all3 net ~pi ~state in
  let next =
    List.map
      (fun l -> (l.N.id, values.((N.latch_data net l).N.id)))
      (N.latches net)
  in
  let outs =
    List.map (fun (name, n) -> (name, values.(n.N.id))) (N.outputs net)
  in
  (next, outs)

let synchronizing_sequence ?(max_len = 32) ?(attempts = 64) ~seed net =
  let rng = Random.State.make [| seed |] in
  let input_names = List.map (fun n -> n.N.name) (N.inputs net) in
  let all_x = List.map (fun l -> (l.N.id, Tx)) (N.latches net) in
  let all_binary state = List.for_all (fun (_, v) -> v <> Tx) state in
  let try_once () =
    let rec go state acc len =
      if all_binary state then Some (List.rev acc)
      else if len >= max_len then None
      else begin
        let vector =
          List.map (fun name -> (name, Random.State.bool rng)) input_names
        in
        let pi name = tri_of_bool (List.assoc name vector) in
        let state', _ = step3 net ~pi ~state in
        let pi_bool name = List.assoc name vector in
        go state' (pi_bool :: acc) (len + 1)
      end
    in
    go all_x [] 0
  in
  let rec search k = if k = 0 then None else
      match try_once () with Some s -> Some s | None -> search (k - 1)
  in
  search attempts
