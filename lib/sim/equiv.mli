(** Equivalence checking.

    Combinational checks compare networks as functions from (primary inputs +
    latch outputs) to (primary outputs + latch data inputs), matching signals
    by name.  Sequential checks compare input/output behaviour from the
    declared initial states. *)

exception Too_large of string

val leaf_names : Netlist.Network.t -> string list
(** Sorted names of the combinational leaves: primary inputs and latch
    outputs. *)

val endpoint_names : Netlist.Network.t -> string list
(** Sorted names of the combinational endpoints: primary outputs and latch
    data inputs (the latter prefixed ["next:"]). *)

val eval_endpoints :
  Netlist.Network.t -> (string -> bool) -> (string * bool) list
(** Evaluate every endpoint under a leaf assignment given by name. *)

val comb_equal_exhaustive : Netlist.Network.t -> Netlist.Network.t -> bool
(** Exhaustive over all leaf assignments; requires matching input and latch
    names and at most 16 leaves. *)

val comb_equal_sat : ?conflict_limit:int -> Netlist.Network.t -> Netlist.Network.t -> bool
(** Miter + SAT.  Raises {!Too_large} when the budget runs out. *)

val node_cnf :
  Sat_lite.t -> Netlist.Network.t -> leaf_var:(int -> int) -> int -> int
(** Tseitin-encode the combinational cone of a node.  [leaf_var] supplies the
    0-based SAT variable for each leaf (input/latch/const) node id; returns
    the SAT variable of the root.  Exposed for tests and other SAT users. *)

val seq_equal_bdd :
  ?max_latches:int -> ?delay:int -> Netlist.Network.t -> Netlist.Network.t -> bool
(** Product-machine reachability from the initial-state pair; verifies that
    every reachable state pair produces equal outputs under every input.
    X initial values range over both binary values.  Raises {!Too_large}
    beyond [max_latches] (default 28) total latches.

    [delay] (default 0) checks {e delayed replacement} in the sense of
    Singhal et al. [15], as used by the paper's Section II: outputs are
    unconstrained during the first [delay] cycles; from every state pair
    reachable in exactly [delay] steps onward the machines must agree. *)

val seq_equal_delayed :
  ?max_latches:int -> k:int -> Netlist.Network.t -> Netlist.Network.t -> bool
(** [seq_equal_bdd ~delay:k]. *)

val seq_equal_random :
  ?vectors:int -> ?length:int -> seed:int ->
  Netlist.Network.t -> Netlist.Network.t -> bool
(** Random co-simulation from the binary initial states: [vectors] runs of
    [length] cycles each. *)

val seq_equal :
  ?seed:int -> Netlist.Network.t -> Netlist.Network.t -> bool
(** BDD check when small enough, random co-simulation otherwise. *)
