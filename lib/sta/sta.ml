module N = Netlist.Network

type model = N.node -> float

let unit_delay (n : N.node) =
  match n.N.kind with
  | N.Logic _ -> 1.0
  | N.Input | N.Const _ | N.Latch _ -> 0.0

let mapped_delay ?(default = 1.0) () (n : N.node) =
  match n.N.kind with
  | N.Logic _ ->
    (match n.N.binding with Some b -> b.N.gate_delay | None -> default)
  | N.Input | N.Const _ | N.Latch _ -> 0.0

type timing = {
  arrival : float array;
  period : float;
  critical_end : int;
}

let node_capacity net = N.capacity net

let analyze net model =
  let arrival = Array.make (node_capacity net) neg_infinity in
  List.iter
    (fun n ->
      match n.N.kind with
      | N.Input | N.Const _ | N.Latch _ -> arrival.(n.N.id) <- 0.0
      | N.Logic _ -> ())
    (N.all_nodes net);
  List.iter
    (fun n ->
      let worst =
        Array.fold_left
          (fun acc f -> max acc arrival.(f))
          0.0 n.N.fanins
      in
      arrival.(n.N.id) <- worst +. model n)
    (N.topo_combinational net);
  (* end points: PO drivers and latch data inputs *)
  let period = ref 0.0 and critical_end = ref (-1) in
  let consider id =
    if !critical_end < 0 || arrival.(id) > arrival.(!critical_end) then
      critical_end := id;
    if arrival.(id) > !period then period := arrival.(id)
  in
  List.iter (fun (_, n) -> consider n.N.id) (N.outputs net);
  List.iter (fun l -> consider (N.latch_data net l).N.id) (N.latches net);
  { arrival; period = !period; critical_end = !critical_end }

let clock_period net model = (analyze net model).period

let critical_path net model =
  let t = analyze net model in
  if t.critical_end < 0 then []
  else begin
    let rec walk id acc =
      let n = N.node net id in
      match n.N.kind with
      | N.Input | N.Const _ | N.Latch _ -> acc
      | N.Logic _ ->
        let acc = n :: acc in
        if Array.length n.N.fanins = 0 then acc
        else begin
          let best = ref n.N.fanins.(0) in
          Array.iter
            (fun f -> if t.arrival.(f) > t.arrival.(!best) then best := f)
            n.N.fanins;
          walk !best acc
        end
    in
    walk t.critical_end []
  end

let slack net model ~required =
  let t = analyze net model in
  let cap = Array.length t.arrival in
  let required_at = Array.make cap infinity in
  let set_req id r = if r < required_at.(id) then required_at.(id) <- r in
  List.iter (fun (_, n) -> set_req n.N.id required) (N.outputs net);
  List.iter
    (fun l -> set_req (N.latch_data net l).N.id required)
    (N.latches net);
  let rev_topo = List.rev (N.topo_combinational net) in
  List.iter
    (fun n ->
      let req = required_at.(n.N.id) in
      let fanin_req = req -. model n in
      Array.iter (fun f -> set_req f fanin_req) n.N.fanins)
    rev_topo;
  Array.init cap (fun id ->
      if t.arrival.(id) = neg_infinity then infinity
      else required_at.(id) -. t.arrival.(id))

(* --- incremental timer ------------------------------------------------------- *)

module Incremental = struct
  (* Published into the process-wide registry in addition to the per-handle
     [stats], so a suite run attributes timing-engine work without anyone
     threading handles around. *)
  let m_full_syncs = Obs.Metrics.counter "sta.syncs.full"
  let m_incr_syncs = Obs.Metrics.counter "sta.syncs.incremental"
  let m_requeries = Obs.Metrics.counter "sta.requeries"
  let m_dirty_seeds = Obs.Metrics.histogram "sta.dirty_seeds"
  let m_dirty_cone = Obs.Metrics.histogram "sta.dirty_cone_nodes"

  type stats = {
    full_syncs : int;
    incremental_syncs : int;
    nodes_recomputed : int;
  }

  type t = {
    net : N.t;
    model : model;
    mutable cursor : N.cursor;
    mutable arrival : float array;
    mutable required : float array;
    mutable required_valid : bool;
    mutable required_target : float;
    mutable backlog : int list;
        (* dirty seeds applied to [arrival] but not yet to [required] *)
    latch_ids : (int, unit) Hashtbl.t;
    po_ids : (int, unit) Hashtbl.t;
    mutable ep_ids : int array;
        (* arrival indices of all endpoints, in [analyze]'s consideration
           order: PO drivers first (declaration order), then latch data
           pins (ascending latch id); rebuilt only when stale *)
    mutable ep_stale : bool;
    mutable po_rev : int;  (* Network.outputs_revision at last rebuild *)
    mutable period : float;
    mutable critical_end : int;
    mutable full_syncs : int;
    mutable incremental_syncs : int;
    mutable nodes_recomputed : int;
  }

  let network t = t.net

  (* The endpoint id sequence replicates [analyze]'s tie-breaking: primary
     outputs in declaration order, then latches in ascending id order (the
     order [live_nodes] yields them).  It is cached: binding/cover edits on
     logic nodes leave it untouched, so the common re-query only pays a flat
     scan over an int array. *)
  let rebuild_endpoints t =
    Hashtbl.reset t.po_ids;
    let outs = N.outputs t.net in
    List.iter (fun (_, n) -> Hashtbl.replace t.po_ids n.N.id ()) outs;
    let latch_data =
      (* lint-waive: nondet/hashtbl-order — sorted on the next line. *)
      Hashtbl.fold (fun id () acc -> id :: acc) t.latch_ids []
      |> List.sort compare
      |> List.map (fun lid -> (N.latch_data t.net (N.node t.net lid)).N.id)
    in
    t.ep_ids <-
      Array.of_list (List.map (fun (_, n) -> n.N.id) outs @ latch_data);
    t.po_rev <- N.outputs_revision t.net;
    t.ep_stale <- false

  let recompute_endpoints t =
    if t.ep_stale || t.po_rev <> N.outputs_revision t.net then
      rebuild_endpoints t;
    let period = ref 0.0 and critical_end = ref (-1) in
    let arr = t.arrival in
    Array.iter
      (fun id ->
        if !critical_end < 0 || arr.(id) > arr.(!critical_end) then
          critical_end := id;
        if arr.(id) > !period then period := arr.(id))
      t.ep_ids;
    t.period <- !period;
    t.critical_end <- !critical_end

  let full_sync t =
    let cap = N.capacity t.net in
    t.arrival <- Array.make cap neg_infinity;
    t.required <- Array.make cap infinity;
    t.required_valid <- false;
    t.backlog <- [];
    t.ep_stale <- true;
    Hashtbl.reset t.latch_ids;
    List.iter
      (fun n ->
        match n.N.kind with
        | N.Input | N.Const _ -> t.arrival.(n.N.id) <- 0.0
        | N.Latch _ ->
          t.arrival.(n.N.id) <- 0.0;
          Hashtbl.replace t.latch_ids n.N.id ()
        | N.Logic _ -> ())
      (N.all_nodes t.net);
    List.iter
      (fun n ->
        let worst =
          Array.fold_left (fun acc f -> max acc t.arrival.(f)) 0.0 n.N.fanins
        in
        t.arrival.(n.N.id) <- worst +. t.model n)
      (N.topo_combinational t.net);
    recompute_endpoints t;
    t.full_syncs <- t.full_syncs + 1;
    Obs.Metrics.incr m_full_syncs

  let ensure_capacity t =
    let cap = N.capacity t.net in
    let len = Array.length t.arrival in
    if cap > len then begin
      let grow a fill =
        let b = Array.make (max cap (2 * len)) fill in
        Array.blit a 0 b 0 len;
        b
      in
      t.arrival <- grow t.arrival neg_infinity;
      t.required <- grow t.required infinity
    end

  (* Forward update: mark the affected cone (dirty seeds plus everything
     downstream through logic, stopping at latches, whose output arrival is
     pinned to 0) and re-evaluate it by memoized descent over fanins. *)
  let forward_update t dirty =
    let stale = Hashtbl.create 64 in
    let visited = Hashtbl.create 64 in
    let queue = Queue.create () in
    List.iter (fun id -> Queue.push id queue) dirty;
    while not (Queue.is_empty queue) do
      let id = Queue.pop queue in
      if not (Hashtbl.mem visited id) then begin
        Hashtbl.add visited id ();
        match N.node_opt t.net id with
        | None -> t.arrival.(id) <- neg_infinity
        | Some n ->
          (match n.N.kind with
           | N.Input | N.Const _ | N.Latch _ ->
             if t.arrival.(id) <> 0.0 then begin
               t.arrival.(id) <- 0.0;
               List.iter (fun cid -> Queue.push cid queue) n.N.fanouts
             end
           | N.Logic _ ->
             Hashtbl.replace stale id ();
             List.iter (fun cid -> Queue.push cid queue) n.N.fanouts)
      end
    done;
    let rec value id =
      if Hashtbl.mem stale id then begin
        Hashtbl.remove stale id;
        t.nodes_recomputed <- t.nodes_recomputed + 1;
        match N.node_opt t.net id with
        | None -> t.arrival.(id) <- neg_infinity
        | Some n ->
          (match n.N.kind with
           | N.Input | N.Const _ | N.Latch _ -> t.arrival.(id) <- 0.0
           | N.Logic _ ->
             let worst =
               Array.fold_left (fun acc f -> max acc (value f)) 0.0 n.N.fanins
             in
             t.arrival.(id) <- worst +. t.model n)
      end;
      t.arrival.(id)
    in
    (* lint-waive: nondet/hashtbl-order — visit order only warms the memo:
       each arrival/required value is a pure function of the timing DAG. *)
    let pending = Hashtbl.fold (fun id () acc -> id :: acc) stale [] in
    List.iter (fun id -> ignore (value id)) pending

  let sync t =
    match N.journal_since t.net t.cursor with
    | None ->
      t.cursor <- N.journal_mark t.net;
      full_sync t
    | Some [] -> ()
    | Some dirty ->
      t.cursor <- N.journal_mark t.net;
      ensure_capacity t;
      (* membership maintenance for the endpoint sets: a dirty latch means
         its data pin may have been rewired, so the cache goes stale even
         when membership is unchanged *)
      List.iter
        (fun id ->
          let was = Hashtbl.mem t.latch_ids id in
          match N.node_opt t.net id with
          | Some n when N.is_latch n ->
            t.ep_stale <- true;
            if not was then Hashtbl.replace t.latch_ids id ()
          | Some _ | None ->
            if was then begin
              Hashtbl.remove t.latch_ids id;
              t.ep_stale <- true
            end)
        dirty;
      let recomputed_before = t.nodes_recomputed in
      forward_update t dirty;
      recompute_endpoints t;
      (* [required] is patched lazily from the backlog at the next slack
         query; it stays valid in the meantime *)
      t.backlog <- List.rev_append dirty t.backlog;
      t.incremental_syncs <- t.incremental_syncs + 1;
      if Obs.Metrics.enabled () then begin
        Obs.Metrics.incr m_incr_syncs;
        Obs.Metrics.observe m_dirty_seeds (List.length dirty);
        Obs.Metrics.observe m_dirty_cone
          (t.nodes_recomputed - recomputed_before)
      end

  let create net model =
    let t =
      { net;
        model;
        cursor = N.journal_mark net;
        arrival = [||];
        required = [||];
        required_valid = false;
        required_target = nan;
        backlog = [];
        latch_ids = Hashtbl.create 64;
        po_ids = Hashtbl.create 16;
        ep_ids = [||];
        ep_stale = true;
        po_rev = -1;
        period = 0.0;
        critical_end = -1;
        full_syncs = 0;
        incremental_syncs = 0;
        nodes_recomputed = 0 }
    in
    full_sync t;
    t

  let refresh t = sync t

  let period t =
    Obs.Metrics.incr m_requeries;
    sync t;
    t.period

  let timing t =
    sync t;
    { arrival = t.arrival; period = t.period; critical_end = t.critical_end }

  let arrival t (n : N.node) =
    sync t;
    if n.N.id < Array.length t.arrival then t.arrival.(n.N.id)
    else neg_infinity

  let critical_path t =
    sync t;
    if t.critical_end < 0 then []
    else begin
      let rec walk id acc =
        let n = N.node t.net id in
        match n.N.kind with
        | N.Input | N.Const _ | N.Latch _ -> acc
        | N.Logic _ ->
          let acc = n :: acc in
          if Array.length n.N.fanins = 0 then acc
          else begin
            let best = ref n.N.fanins.(0) in
            Array.iter
              (fun f -> if t.arrival.(f) > t.arrival.(!best) then best := f)
              n.N.fanins;
            walk !best acc
          end
      in
      walk t.critical_end []
    end

  (* Backward pass.  [full_backward] replays [slack]'s propagation over the
     cached topological order; [incremental_backward] re-derives only the
     region reachable backward from the accumulated dirty seeds, using the
    equivalent per-node formula
      req(n) = min( R if n drives a PO,
                    min over consumers c: R if c is a latch
                                          | req(c) - delay(c) if c is logic ). *)
  let full_backward t required =
    let cap = Array.length t.arrival in
    let required_at = Array.make cap infinity in
    let set_req id r = if r < required_at.(id) then required_at.(id) <- r in
    List.iter (fun (_, n) -> set_req n.N.id required) (N.outputs t.net);
    List.iter
      (fun l -> set_req (N.latch_data t.net l).N.id required)
      (N.latches t.net);
    let rev_topo = List.rev (N.topo_combinational t.net) in
    List.iter
      (fun n ->
        let req = required_at.(n.N.id) in
        let fanin_req = req -. t.model n in
        Array.iter (fun f -> set_req f fanin_req) n.N.fanins)
      rev_topo;
    t.required <- required_at;
    t.required_target <- required;
    t.required_valid <- true;
    t.backlog <- []

  let incremental_backward t =
    let stale = Hashtbl.create 64 in
    let visited = Hashtbl.create 64 in
    let queue = Queue.create () in
    List.iter (fun id -> Queue.push id queue) t.backlog;
    while not (Queue.is_empty queue) do
      let id = Queue.pop queue in
      if not (Hashtbl.mem visited id) then begin
        Hashtbl.add visited id ();
        match N.node_opt t.net id with
        | None -> t.required.(id) <- infinity
        | Some n ->
          Hashtbl.replace stale id ();
          (* only a logic node's required time flows into its fanins; a
             latch contributes the constant endpoint requirement to its
             data pin, and data-pin rewiring journals the data node *)
          (match n.N.kind with
           | N.Logic _ ->
             Array.iter (fun f -> Queue.push f queue) n.N.fanins
           | N.Input | N.Const _ | N.Latch _ -> ())
      end
    done;
    let rec value id =
      if Hashtbl.mem stale id then begin
        Hashtbl.remove stale id;
        t.nodes_recomputed <- t.nodes_recomputed + 1;
        match N.node_opt t.net id with
        | None -> t.required.(id) <- infinity
        | Some n ->
          let base =
            if Hashtbl.mem t.po_ids id then t.required_target else infinity
          in
          let req =
            List.fold_left
              (fun acc cid ->
                match N.node_opt t.net cid with
                | None -> acc
                | Some c ->
                  (match c.N.kind with
                   | N.Latch _ -> min acc t.required_target
                   | N.Logic _ -> min acc (value cid -. t.model c)
                   | N.Input | N.Const _ -> acc))
              base n.N.fanouts
          in
          t.required.(id) <- req
      end;
      t.required.(id)
    in
    (* lint-waive: nondet/hashtbl-order — visit order only warms the memo:
       each arrival/required value is a pure function of the timing DAG. *)
    let pending = Hashtbl.fold (fun id () acc -> id :: acc) stale [] in
    List.iter (fun id -> ignore (value id)) pending;
    t.backlog <- []

  let sync_required t required =
    sync t;
    if (not t.required_valid) || t.required_target <> required then
      full_backward t required
    else if t.backlog <> [] then incremental_backward t

  let slack t ~required (n : N.node) =
    sync_required t required;
    if n.N.id >= Array.length t.arrival || t.arrival.(n.N.id) = neg_infinity
    then infinity
    else t.required.(n.N.id) -. t.arrival.(n.N.id)

  let slacks t ~required =
    sync_required t required;
    Array.init (N.capacity t.net) (fun id ->
        if t.arrival.(id) = neg_infinity then infinity
        else t.required.(id) -. t.arrival.(id))

  let stats t =
    { full_syncs = t.full_syncs;
      incremental_syncs = t.incremental_syncs;
      nodes_recomputed = t.nodes_recomputed }
end
