(** Static timing analysis over a {!Netlist.Network.t}.

    Timing start points are primary inputs, constants and latch outputs;
    end points are primary outputs and latch data inputs.  The clock period
    of a sequential circuit is the maximum end-point arrival time. *)

type model = Netlist.Network.node -> float
(** Delay contributed by one logic node (sources and latches contribute 0). *)

val unit_delay : model
(** Every logic node costs 1.0. *)

val mapped_delay : ?default:float -> unit -> model
(** Delay from the technology binding; unbound logic nodes cost [default]
    (1.0). *)

type timing = {
  arrival : float array;       (** indexed by node id; -infinity if unused *)
  period : float;              (** max end-point arrival *)
  critical_end : int;          (** node id of the worst end point *)
}

val analyze : Netlist.Network.t -> model -> timing

val clock_period : Netlist.Network.t -> model -> float

val critical_path : Netlist.Network.t -> model -> Netlist.Network.node list
(** Logic nodes of one worst path, ordered from (closest to) inputs to the
    path's end point.  Empty when the network has no logic. *)

val slack : Netlist.Network.t -> model -> required:float -> float array
(** Per-node slack against a required time at every end point. *)

(** Persistent incremental timer.

    A handle caches arrival times, required times and the endpoint maximum
    for one network, and keeps them consistent with the network's change
    journal ({!Netlist.Network.journal_since}): a query after a local edit
    re-propagates only the affected cone — forward through fanouts for
    arrivals, backward through fanins for required times — instead of paying
    a full O(V+E) {!analyze}.  All queries are oracle-equivalent to running
    the full analysis from scratch (bit-exact, including tie-breaking).

    One handle should be shared by every consumer of a network's timing; it
    survives arbitrary edits, including {!Netlist.Network.restore}, falling
    back to a full resync when the journal has been compacted. *)
module Incremental : sig
  type t

  val create : Netlist.Network.t -> model -> t
  (** Runs one full analysis to seed the caches. *)

  val network : t -> Netlist.Network.t

  val refresh : t -> unit
  (** Force synchronization now; queries synchronize implicitly. *)

  val period : t -> float
  val timing : t -> timing
  (** The arrival array is the handle's live buffer (length >= node
      capacity); do not mutate, and do not use across further edits. *)

  val critical_path : t -> Netlist.Network.node list
  val arrival : t -> Netlist.Network.node -> float
  val slack : t -> required:float -> Netlist.Network.node -> float

  val slacks : t -> required:float -> float array
  (** Same contents as {!Sta.slack} on the current network. *)

  type stats = {
    full_syncs : int;         (** from-scratch resynchronizations *)
    incremental_syncs : int;  (** journal-driven partial updates *)
    nodes_recomputed : int;   (** node re-evaluations across all syncs *)
  }

  val stats : t -> stats
end
