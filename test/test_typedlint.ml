(* Typed-AST analyzer (semantic lint head).

   Each mutation test compiles a small self-contained source to a .cmt
   (ocamlc -bin-annot in a temp dir) with a stub [Core.Parallel] whose
   paths match the real scheduler re-export, seeds exactly one isolation
   violation — a forked thunk capturing a naked ref, a mutable field
   accessed under the wrong (or no) lock, a Condition.wait inside a task
   body, an entry-reachable module-level Hashtbl — and asserts the
   intended rule id fires.  Control twins route the same state through
   Atomic / Mutex.protect / a consistent lock and must scan clean.  The
   qcheck property generates random *pure* closures, forks them at jobs
   1/2/4, and asserts the analyzer never reports (no false positives).
   Waiver tests cover the shared justified-waiver discipline: trailing
   suppression, file-level LINT_WAIVERS entries, and staleness. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* compile [src] as mutant.ml in a fresh temp dir; return (dir, cmt path) *)
let compile src =
  let dir = Filename.temp_dir "typedlint_test" "" in
  let ml = Filename.concat dir "mutant.ml" in
  let oc = open_out ml in
  output_string oc src;
  close_out oc;
  let rc =
    Sys.command
      (Printf.sprintf
         "cd %s && ocamlc -c -bin-annot -w -a mutant.ml 2>mutant.err"
         (Filename.quote dir))
  in
  if rc <> 0 then
    Alcotest.failf "mutant failed to compile (rc %d):\n%s\n--- source ---\n%s"
      rc
      (read_file (Filename.concat dir "mutant.err"))
      src;
  (dir, Filename.concat dir "mutant.cmt")

let scan ?entry_points ?waivers src =
  let dir, cmt = compile src in
  let config =
    { Typedlint.default_config with
      source_root = dir;
      entry_points =
        (match entry_points with
         | Some eps -> eps
         | None -> Typedlint.default_config.entry_points) }
  in
  Typedlint.scan_cmt_files ~config ?waivers [ cmt ]

let rules r =
  List.sort_uniq compare
    (List.map (fun f -> f.Sanitize.rule_id) r.Typedlint.findings)

let check_rules msg expected r =
  Alcotest.(check (list string)) msg expected (rules r)

(* a fork/join stub whose dotted paths match the real Core.Parallel
   re-export, so mutants stay hermetic from the repo libraries *)
let stub =
  "module Core = struct\n\
  \  module Parallel = struct\n\
  \    let fork f = f\n\
  \    let join t = t ()\n\
  \    let map f a = Array.map f a\n\
  \    let map_list f l = List.map f l\n\
  \    let run ~jobs:_ f = f ()\n\
  \  end\n\
   end\n"

(* --- rule 1: capture / escape ------------------------------------------------------ *)

let test_capture_naked_ref () =
  let r =
    scan
      (stub
     ^ "let leak () =\n\
       \  let counter = ref 0 in\n\
       \  let t = Core.Parallel.fork (fun () -> incr counter) in\n\
       \  Core.Parallel.join t;\n\
       \  !counter\n")
  in
  check_rules "captured naked ref is caught" [ "typed/capture-escape" ] r;
  Alcotest.(check bool)
    "fired tally records the rule" true
    (List.mem_assoc "typed/capture-escape" r.Typedlint.rules_fired)

let test_capture_hashtbl_in_map () =
  let r =
    scan
      (stub
     ^ "let tally xs =\n\
       \  let seen = Hashtbl.create 16 in\n\
       \  Core.Parallel.map_list (fun x -> Hashtbl.replace seen x (); x) xs\n")
  in
  check_rules "captured Hashtbl in map_list thunk"
    [ "typed/capture-escape" ] r

let test_capture_field_write () =
  let r =
    scan
      (stub
     ^ "type cell = { mutable n : int }\n\
        let bump c =\n\
       \  let t = Core.Parallel.fork (fun () -> c.n <- c.n + 1) in\n\
       \  Core.Parallel.join t\n")
  in
  Alcotest.(check bool)
    "mutable field write of captured value is caught" true
    (List.mem "typed/capture-escape" (rules r))

let test_capture_controls_clean () =
  (* pure closure *)
  check_rules "pure closure" []
    (scan
       (stub
      ^ "let go () =\n\
        \  let t = Core.Parallel.fork (fun () -> 1 + 2) in\n\
        \  Core.Parallel.join t\n"));
  (* Atomic-routed counter *)
  check_rules "Atomic counter" []
    (scan
       (stub
      ^ "let go () =\n\
        \  let c = Atomic.make 0 in\n\
        \  let t = Core.Parallel.fork (fun () -> Atomic.incr c) in\n\
        \  Core.Parallel.join t;\n\
        \  Atomic.get c\n"));
  (* Mutex.protect-guarded section inside the thunk *)
  check_rules "Mutex.protect-guarded capture" []
    (scan
       (stub
      ^ "let go () =\n\
        \  let m = Mutex.create () in\n\
        \  let acc = ref 0 in\n\
        \  let t =\n\
        \    Core.Parallel.fork (fun () -> Mutex.protect m (fun () -> incr \
         acc))\n\
        \  in\n\
        \  Core.Parallel.join t\n"))

(* --- rule 2: lock discipline ------------------------------------------------------- *)

let test_lock_discipline_empty_set () =
  let r =
    scan
      (stub
     ^ "type s = { lock : Mutex.t; mutable v : int }\n\
        let bump s = Mutex.lock s.lock; s.v <- s.v + 1; Mutex.unlock s.lock\n\
        let sneak s = s.v <- s.v + 1\n")
  in
  check_rules "unlocked access to a guarded field"
    [ "typed/lock-discipline" ] r;
  Alcotest.(check bool)
    "the unlocked site is the primary site" true
    (match r.Typedlint.findings with
     | f :: _ ->
       List.exists
         (fun site -> site = "mutant.ml:12")
         f.Sanitize.sites
     | [] -> false)

let test_lock_discipline_wrong_lock () =
  let r =
    scan
      (stub
     ^ "type s = { l1 : Mutex.t; l2 : Mutex.t; mutable v : int }\n\
        let a s = Mutex.lock s.l1; s.v <- s.v + 1; Mutex.unlock s.l1\n\
        let b s = Mutex.lock s.l2; s.v <- s.v + 1; Mutex.unlock s.l2\n")
  in
  check_rules "disjoint lock sets on one field"
    [ "typed/lock-discipline" ] r

let test_lock_discipline_consistent_clean () =
  check_rules "consistently guarded field" []
    (scan
       (stub
      ^ "type s = { lock : Mutex.t; mutable v : int }\n\
         let bump s = Mutex.lock s.lock; s.v <- s.v + 1; Mutex.unlock s.lock\n\
         let read s = Mutex.protect s.lock (fun () -> s.v)\n"));
  (* never-locked fields are not the analyzer's business (no seed) *)
  check_rules "unseeded field stays quiet" []
    (scan
       (stub
      ^ "type s = { mutable v : int }\n\
         let bump s = s.v <- s.v + 1\n"))

(* --- rule 3: module-level escape --------------------------------------------------- *)

let test_module_escape_global_hashtbl () =
  let src =
    stub
    ^ "let cache : (int, int) Hashtbl.t = Hashtbl.create 16\n\
       let main () = Hashtbl.replace cache 1 2\n"
  in
  let r = scan ~entry_points:[ "Mutant.main" ] src in
  check_rules "entry-reachable global Hashtbl" [ "typed/module-escape" ] r;
  Alcotest.(check bool)
    "finding names the global" true
    (match r.Typedlint.findings with
     | f :: _ -> String.length f.Sanitize.message > 0
     | [] -> false);
  (* same unit, no entry point: unreachable state is not reported *)
  check_rules "unreachable unit stays quiet" [] (scan src)

let test_module_escape_guarded_clean () =
  check_rules "lock-guarded global is sanctioned" []
    (scan ~entry_points:[ "Mutant.main" ]
       (stub
      ^ "let gm = Mutex.create ()\n\
         let cache : (int, int) Hashtbl.t = Hashtbl.create 16\n\
         let main () =\n\
        \  Mutex.lock gm;\n\
        \  Hashtbl.replace cache 1 2;\n\
        \  Mutex.unlock gm\n"));
  check_rules "Atomic global is sanctioned" []
    (scan ~entry_points:[ "Mutant.main" ]
       (stub
      ^ "let total = Atomic.make 0\n\
         let main () = Atomic.incr total\n"));
  check_rules "DLS-keyed state is sanctioned" []
    (scan ~entry_points:[ "Mutant.main" ]
       (stub
      ^ "let buf = Domain.DLS.new_key (fun () -> Buffer.create 64)\n\
         let main () = Buffer.add_char (Domain.DLS.get buf) 'x'\n"))

(* --- rule 4: blocking call in a task body ------------------------------------------ *)

let test_blocking_condition_wait () =
  let r =
    scan
      (stub
     ^ "let m = Mutex.create ()\n\
        let cv = Condition.create ()\n\
        let go () =\n\
       \  let t =\n\
       \    Core.Parallel.fork (fun () ->\n\
       \        Mutex.lock m;\n\
       \        Condition.wait cv m;\n\
       \        Mutex.unlock m)\n\
       \  in\n\
       \  Core.Parallel.join t\n")
  in
  Alcotest.(check bool)
    "Condition.wait in a task is caught" true
    (List.mem "typed/blocking-in-task" (rules r));
  Alcotest.(check bool)
    "the message names the blocking call" true
    (List.exists
       (fun f ->
         f.Sanitize.rule_id = "typed/blocking-in-task"
         && String.length f.Sanitize.message > 0)
       r.Typedlint.findings)

let test_blocking_through_helper () =
  let r =
    scan
      (stub
     ^ "let helper () = ignore (read_line ())\n\
        let go () =\n\
       \  let t = Core.Parallel.fork (fun () -> helper ()) in\n\
       \  Core.Parallel.join t\n")
  in
  check_rules "blocking reached through a same-unit helper"
    [ "typed/blocking-in-task" ] r

let test_blocking_outside_task_clean () =
  (* blocking calls outside fork bodies are legitimate *)
  check_rules "blocking outside tasks is fine" []
    (scan
       (stub
      ^ "let m = Mutex.create ()\n\
         let go () = Mutex.lock m; Mutex.unlock m\n"))

(* --- waiver discipline -------------------------------------------------------------- *)

let capture_mutant_with mark =
  stub
  ^ "let leak () =\n\
    \  let counter = ref 0 in\n\
    \  let t = Core.Parallel.fork (fun () -> incr counter" ^ mark
  ^ ") in\n\
    \  Core.Parallel.join t\n"

let test_waiver_trailing_honored () =
  let r =
    scan
      (capture_mutant_with
         " (* lint-waive: typed/capture-escape -- test fixture: counter \
          is joined before any read *)")
  in
  check_rules "trailing waiver suppresses" [] r;
  Alcotest.(check bool) "honored tally counts it" true
    (r.Typedlint.waivers_honored > 0)

let test_waiver_stale () =
  let r =
    scan
      (stub
     ^ "(* lint-waive: typed/capture-escape -- leftover justification \
        kept after the fix landed *)\n\
        let pure () = 1 + 2\n")
  in
  check_rules "stale typed waiver is itself a finding"
    [ "lint/waiver-unused" ] r

let test_waiver_file_level () =
  let waivers =
    [ { Lint_common.w_rule = "typed/capture-escape";
        w_path = "mutant.ml";
        w_reason = "fixture: suppressed at file scope for the test" } ]
  in
  let r = scan ~waivers (capture_mutant_with "") in
  check_rules "file-level waiver suppresses" [] r;
  Alcotest.(check bool) "suppression recorded for staleness audit" true
    (r.Typedlint.suppressed <> [])

(* --- property: no false positives on pure closures --------------------------------- *)

(* random pure expressions: ints, + and *, let-bound locals, list folds *)
let gen_pure_expr =
  QCheck.Gen.(
    sized
    @@ fix (fun self n ->
           if n <= 0 then map string_of_int (int_range 0 99)
           else
             frequency
               [ (1, map string_of_int (int_range 0 99));
                 ( 2,
                   map2
                     (fun a b -> Printf.sprintf "(%s + %s)" a b)
                     (self (n / 2)) (self (n / 2)) );
                 ( 2,
                   map2
                     (fun a b -> Printf.sprintf "(%s * %s)" a b)
                     (self (n / 2)) (self (n / 2)) );
                 ( 1,
                   map2
                     (fun a b ->
                       Printf.sprintf "(let x = %s in x + %s)" a b)
                     (self (n / 2)) (self (n / 2)) );
                 ( 1,
                   map
                     (fun a ->
                       Printf.sprintf
                         "(List.fold_left ( + ) 0 [ %s; 1; 2 ])" a)
                     (self (n / 2)) ) ]))

let arb_pure_expr =
  QCheck.make ~print:(fun s -> s) (QCheck.Gen.map (fun s -> s) gen_pure_expr)

let qcheck_pure_closures_clean =
  QCheck.Test.make ~count:12 ~name:"typedlint: pure forked closures scan clean"
    arb_pure_expr (fun body ->
      List.for_all
        (fun jobs ->
          let src =
            stub
            ^ Printf.sprintf
                "let main () =\n\
                \  Core.Parallel.run ~jobs:%d (fun () ->\n\
                \      let t = Core.Parallel.fork (fun () -> %s) in\n\
                \      let a = Core.Parallel.map (fun i -> i + %s) [| 1; 2 \
                 |] in\n\
                \      Core.Parallel.join t + a.(0))\n"
                jobs body body
          in
          rules (scan ~entry_points:[ "Mutant.main" ] src) = [])
        [ 1; 2; 4 ])

(* --- plumbing ----------------------------------------------------------------------- *)

let test_rule_ids_and_stats () =
  Alcotest.(check (list string))
    "rule inventory"
    [ "typed/blocking-in-task"; "typed/capture-escape";
      "typed/lock-discipline"; "typed/module-escape" ]
    Typedlint.rule_ids;
  let r = scan (capture_mutant_with "") in
  Alcotest.(check int) "one unit scanned" 1 r.Typedlint.files_scanned;
  Obs.Metrics.enable ();
  Obs.Metrics.reset ();
  Typedlint.publish_stats r;
  Alcotest.(check (float 0.0))
    "files_scanned gauge" 1.0
    (Obs.Metrics.gauge_value (Obs.Metrics.gauge "typedlint.files_scanned"));
  Alcotest.(check bool) "findings gauge set" true
    (Obs.Metrics.gauge_value (Obs.Metrics.gauge "typedlint.findings") >= 1.0);
  Obs.Metrics.disable ()

let () =
  Alcotest.run "typedlint"
    [ ( "capture-escape",
        [ Alcotest.test_case "naked ref" `Quick test_capture_naked_ref;
          Alcotest.test_case "hashtbl in map_list" `Quick
            test_capture_hashtbl_in_map;
          Alcotest.test_case "field write" `Quick test_capture_field_write;
          Alcotest.test_case "controls clean" `Quick
            test_capture_controls_clean ] );
      ( "lock-discipline",
        [ Alcotest.test_case "empty lock set" `Quick
            test_lock_discipline_empty_set;
          Alcotest.test_case "wrong lock" `Quick
            test_lock_discipline_wrong_lock;
          Alcotest.test_case "consistent clean" `Quick
            test_lock_discipline_consistent_clean ] );
      ( "module-escape",
        [ Alcotest.test_case "global hashtbl" `Quick
            test_module_escape_global_hashtbl;
          Alcotest.test_case "guarded clean" `Quick
            test_module_escape_guarded_clean ] );
      ( "blocking-in-task",
        [ Alcotest.test_case "condition wait" `Quick
            test_blocking_condition_wait;
          Alcotest.test_case "through helper" `Quick
            test_blocking_through_helper;
          Alcotest.test_case "outside task clean" `Quick
            test_blocking_outside_task_clean ] );
      ( "waivers",
        [ Alcotest.test_case "trailing honored" `Quick
            test_waiver_trailing_honored;
          Alcotest.test_case "stale" `Quick test_waiver_stale;
          Alcotest.test_case "file level" `Quick test_waiver_file_level ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest qcheck_pure_closures_clean ] );
      ( "plumbing",
        [ Alcotest.test_case "rule ids + metrics" `Quick
            test_rule_ids_and_stats ] )
    ]
