(* lib/obs tests: span nesting (qcheck), the zero-allocation disabled path,
   a deterministic Chrome-export golden via the fake clock, metrics registry
   semantics, and flow determinism with tracing on vs off. *)

let reset_all () =
  Obs.Trace.disable ();
  Obs.Trace.reset ();
  Obs.Trace.set_clock None;
  Obs.Metrics.disable ();
  Obs.Metrics.reset ()

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

(* --- span nesting property ---------------------------------------------------- *)

type tree = Node of tree list

let gen_tree =
  QCheck.Gen.(
    sized_size (int_bound 3) (fix (fun self depth ->
        if depth = 0 then return (Node [])
        else
          list_size (int_bound 3) (self (depth - 1)) >|= fun kids -> Node kids)))

let rec tree_size (Node kids) =
  1 + List.fold_left (fun acc k -> acc + tree_size k) 0 kids

let rec print_tree (Node kids) =
  "(" ^ String.concat " " (List.map print_tree kids) ^ ")"

let arb_tree = QCheck.make ~print:print_tree gen_tree

let rec play (Node kids) =
  Obs.Trace.span "node" (fun () -> List.iter play kids)

let prop_nesting =
  QCheck.Test.make ~count:100 ~name:"span nesting is balanced and enclosed"
    arb_tree (fun tree ->
      reset_all ();
      Obs.Trace.enable ();
      play tree;
      let spans = Obs.Trace.spans () in
      let balanced = Obs.Trace.depth () = 0 in
      let counted = List.length spans = tree_size tree in
      let span_end (s : Obs.Trace.span) =
        Int64.add s.Obs.Trace.start_ns s.Obs.Trace.dur_ns
      in
      (* every nested span lies inside some span one level shallower *)
      let enclosed =
        List.for_all
          (fun (c : Obs.Trace.span) ->
            c.Obs.Trace.depth = 0
            || List.exists
                 (fun (p : Obs.Trace.span) ->
                   p.Obs.Trace.depth = c.Obs.Trace.depth - 1
                   && p.Obs.Trace.start_ns <= c.Obs.Trace.start_ns
                   && span_end c <= span_end p)
                 spans)
          spans
      in
      reset_all ();
      balanced && counted && enclosed)

(* --- disabled fast path -------------------------------------------------------- *)

let test_disabled_zero_alloc () =
  reset_all ();
  let body = fun () -> () in
  for _ = 1 to 1_000 do
    Obs.Trace.span "hot" body
  done;
  let w0 = Gc.minor_words () in
  for _ = 1 to 50_000 do
    Obs.Trace.span "hot" body
  done;
  let delta = Gc.minor_words () -. w0 in
  (* 50k disabled spans: any per-span allocation would cost >= 100k words;
     the slack covers the Gc.minor_words float boxing itself *)
  Alcotest.(check bool)
    (Printf.sprintf "no allocation on the disabled path (%.0f words)" delta)
    true (delta < 100.0);
  Alcotest.(check int) "nothing recorded" 0 (List.length (Obs.Trace.spans ()))

let test_span_exception () =
  reset_all ();
  Obs.Trace.enable ();
  (try Obs.Trace.span "boom" (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "depth restored after raise" 0 (Obs.Trace.depth ());
  Alcotest.(check int) "raising span still recorded" 1
    (List.length (Obs.Trace.spans ()));
  reset_all ()

(* --- Chrome exporter golden ---------------------------------------------------- *)

(* Fake clock ticking 1 ns per read makes timestamps deterministic: outer
   starts at 1, inner spans 2..3, outer ends at 4. *)
let test_chrome_golden () =
  reset_all ();
  let t = ref 0L in
  Obs.Trace.set_clock
    (Some
       (fun () ->
         t := Int64.add !t 1L;
         !t));
  Obs.Trace.enable ();
  Obs.Trace.span ~cat:"flow" "outer" (fun () ->
      Obs.Trace.span ~args:[ ("k", Obs.Trace.Str "v") ] "inner" (fun () -> ()));
  let out = Obs.Export.chrome_json () in
  reset_all ();
  Alcotest.(check bool) "object with traceEvents" true
    (String.starts_with ~prefix:"{\"traceEvents\": [" out
    && String.ends_with ~suffix:"]}" out);
  Alcotest.(check bool) "process metadata" true
    (contains out
       "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, \
        \"args\": {\"name\": \"retiming-resynthesis\"}}");
  Alcotest.(check bool) "track 0 named" true
    (contains out "\"args\": {\"name\": \"domain 0\"}");
  Alcotest.(check bool) "outer complete event" true
    (contains out
       "{\"name\": \"outer\", \"cat\": \"flow\", \"ph\": \"X\", \"pid\": 1, \
        \"tid\": 0, \"ts\": 0.001, \"dur\": 0.003, \"args\": {");
  Alcotest.(check bool) "inner complete event with args" true
    (contains out
       "{\"name\": \"inner\", \"cat\": \"span\", \"ph\": \"X\", \"pid\": 1, \
        \"tid\": 0, \"ts\": 0.002, \"dur\": 0.001, \"args\": {\"k\": \"v\", \
        \"gc_minor_words\"")

let test_spans_json_golden () =
  reset_all ();
  let t = ref 0L in
  Obs.Trace.set_clock
    (Some
       (fun () ->
         t := Int64.add !t 10L;
         !t));
  Obs.Trace.enable ();
  Obs.Trace.span "only" (fun () -> ());
  let out = Obs.Export.spans_json () in
  reset_all ();
  Alcotest.(check bool) "native span array" true
    (String.starts_with ~prefix:"[\n" out
    && contains out
         "\"name\": \"only\", \"cat\": \"span\", \"track\": 0, \"depth\": 0, \
          \"start_ns\": 10, \"dur_ns\": 10")

(* --- metrics registry ---------------------------------------------------------- *)

let test_metrics_counters () =
  reset_all ();
  let c = Obs.Metrics.counter "test.obs.counter" in
  Obs.Metrics.incr c;
  Alcotest.(check int) "disabled incr is a no-op" 0
    (Obs.Metrics.counter_value c);
  Obs.Metrics.enable ();
  Obs.Metrics.incr c;
  Obs.Metrics.add c 4;
  Alcotest.(check int) "incr + add" 5 (Obs.Metrics.counter_value c);
  let c' = Obs.Metrics.counter "test.obs.counter" in
  Obs.Metrics.incr c';
  Alcotest.(check int) "registration is idempotent" 6
    (Obs.Metrics.counter_value c);
  (match Obs.Metrics.gauge "test.obs.counter" with
   | _ -> Alcotest.fail "kind mismatch accepted"
   | exception Invalid_argument _ -> ());
  reset_all ()

let test_metrics_histogram () =
  reset_all ();
  Obs.Metrics.enable ();
  let h = Obs.Metrics.histogram "test.obs.hist" in
  List.iter (Obs.Metrics.observe h) [ 0; 1; 2; 3; 7; 1024 ];
  let s = Obs.Metrics.histogram_stats h in
  Alcotest.(check int) "count" 6 s.Obs.Metrics.count;
  Alcotest.(check int) "sum" 1037 s.Obs.Metrics.sum;
  Alcotest.(check int) "max" 1024 s.Obs.Metrics.max_value;
  Alcotest.(check (list (pair int int)))
    "power-of-two buckets: 0..1, [2,4), [4,8), [1024,2048)"
    [ (0, 2); (2, 2); (4, 1); (1024, 1) ]
    s.Obs.Metrics.buckets;
  reset_all ()

(* --- flow determinism under tracing -------------------------------------------- *)

(* The acceptance bar for the whole subsystem: enabling the tracer and the
   registry must not change a single byte of the flow results, serial or
   parallel. *)
let test_flow_determinism () =
  reset_all ();
  let render jobs =
    let rows =
      Report.Table.run_suite ~verify:false ~names:[ "s27" ] ~jobs ()
    in
    Report.Table.render rows ^ Report.Table.summary rows
  in
  let off = render 1 in
  Obs.Trace.enable ();
  Obs.Metrics.enable ();
  let on1 = render 1 in
  let on4 = render 4 in
  let traced = List.length (Obs.Trace.spans ()) in
  reset_all ();
  Alcotest.(check string) "tracing off vs on (jobs 1)" off on1;
  Alcotest.(check string) "tracing off vs on (jobs 4)" off on4;
  Alcotest.(check bool) "spans were actually recorded" true (traced > 0)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "obs"
    [ ("trace", q [ prop_nesting ]);
      ("trace-unit",
       [ Alcotest.test_case "disabled-zero-alloc" `Quick
           test_disabled_zero_alloc;
         Alcotest.test_case "span-exception" `Quick test_span_exception ]);
      ("export",
       [ Alcotest.test_case "chrome-golden" `Quick test_chrome_golden;
         Alcotest.test_case "spans-json-golden" `Quick test_spans_json_golden ]);
      ("metrics",
       [ Alcotest.test_case "counters" `Quick test_metrics_counters;
         Alcotest.test_case "histogram" `Quick test_metrics_histogram ]);
      ("determinism",
       [ Alcotest.test_case "table-rows-traced-vs-not" `Quick
           test_flow_determinism ]) ]
