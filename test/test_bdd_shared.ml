(* Shared-table BDD tests: differential agreement with private per-manager
   tables, scope accounting (sub_scope / adopt / node_count warmth
   independence), cross-domain determinism under concurrent inserts and
   stripe rehashes, and the eqcheck cone memo that rides on the shared
   table. *)

let all_points n =
  List.init (1 lsl n) (fun i -> Array.init n (fun v -> i land (1 lsl v) <> 0))

let gen_cover n =
  QCheck.Gen.(
    list_size (int_range 0 6)
      (array_repeat n (oneofl [ Logic.Cube.Zero; Logic.Cube.One; Logic.Cube.Both ])
       >|= Logic.Cube.of_lits)
    >|= fun cubes -> Logic.Cover.make n cubes)

let n_prop = 5

let arb_cover_pair =
  QCheck.make QCheck.Gen.(pair (gen_cover n_prop) (gen_cover n_prop))

let cover_string c = Format.asprintf "%a" Logic.Cover.pp c

(* The same op sequence through a scope on the (warm, process-wide) shared
   table and through a fresh private manager must agree on semantics
   (pointwise eval), on the extracted cover, and on node accounting —
   [node_count] of a shared scope is defined as what the fresh manager
   reports. *)
let prop_shared_matches_private =
  QCheck.Test.make ~count:150
    ~name:"shared scope = private manager (eval, cover, node_count)"
    arb_cover_pair
    (fun (f, g) ->
      let build man =
        let bf = Bdd.of_cover man f and bg = Bdd.of_cover man g in
        Bdd.bxor man (Bdd.band man bf bg)
          (Bdd.exists man [ 0; 2 ] (Bdd.bor man bf bg))
      in
      let sh = Bdd.create () in
      let pr = Bdd.create ~mode:`Private () in
      let hs = build sh and hp = build pr in
      List.for_all
        (fun p ->
          Bdd.eval sh hs (fun v -> p.(v)) = Bdd.eval pr hp (fun v -> p.(v)))
        (all_points n_prop)
      && String.equal
           (cover_string (Bdd.to_cover sh ~nvars:n_prop hs))
           (cover_string (Bdd.to_cover pr ~nvars:n_prop hp))
      && Bdd.node_count sh = Bdd.node_count pr)

(* Two scopes on the same table interning the same function get the same
   handle, and the second (warm) scope still reports the cold node count. *)
let test_warm_table_parity () =
  let build man =
    let v = Array.init 8 (Bdd.var man) in
    let f = ref v.(0) in
    for i = 1 to 7 do
      f := Bdd.bxor man !f (Bdd.band man v.(i) v.(i - 1))
    done;
    !f
  in
  let a = Bdd.create () in
  let ha = build a in
  let b = Bdd.create () in
  let hb = build b in
  Alcotest.(check bool) "same handle" true (Bdd.equal ha hb);
  Alcotest.(check int) "warm scope charges the cold count"
    (Bdd.node_count a) (Bdd.node_count b)

(* sub_scope charges the parent cumulatively; adopt replays one scope's
   charges into another. *)
let test_sub_scope_and_adopt () =
  let parent = Bdd.create () in
  let before = Bdd.node_count parent in
  let child = Bdd.sub_scope parent in
  let v = Array.init 6 (Bdd.var child) in
  let f = Array.fold_left (Bdd.band child) Bdd.btrue v in
  ignore f;
  let charged = Bdd.node_count child - 2 (* terminals *) in
  Alcotest.(check bool) "child consed something" true (charged > 0);
  Alcotest.(check int) "parent charged cumulatively"
    (before + charged) (Bdd.node_count parent);
  (* an unrelated scope adopting the child inherits exactly its charges *)
  let other = Bdd.create () in
  Bdd.adopt other child;
  Alcotest.(check int) "adopt replays the charge"
    (Bdd.node_count child) (Bdd.node_count other)

(* Two domains hammer the shared table concurrently with overlapping node
   families — enough distinct nodes to force stripe rehashes while both
   domains are inserting.  Hash-consing must stay canonical: both domains
   end up with identical handle arrays, and the run must have grown at
   least one stripe. *)
let test_two_domain_stress () =
  let build seed =
    let man = Bdd.create () in
    let nvars = 20 in
    let v = Array.init nvars (Bdd.var man) in
    let f = ref v.(seed mod nvars) in
    for i = 0 to 400 do
      let a = v.((i + seed) mod nvars)
      and b = v.((i * 7 + seed) mod nvars) in
      f := Bdd.bxor man !f (Bdd.band man a (Bdd.bor man b !f))
    done;
    (!f :> int)
  in
  let work () = Array.init 24 build in
  let d1 = Domain.spawn work and d2 = Domain.spawn work in
  let r1 = Domain.join d1 and r2 = Domain.join d2 in
  Alcotest.(check (array int)) "identical handles across domains" r1 r2;
  let s = Bdd.stats () in
  Alcotest.(check bool) "stripes rehashed under load" true
    (s.Bdd.stripe_grows > 0);
  Alcotest.(check bool) "single shared table" true
    (s.Bdd.shared_nodes > 0)

(* The eqcheck cone memo keeps the previous boundary check's post-side BDDs
   alive on the shared table and reuses them as the next check's pre side.
   On a real flow it must fire at least once and must not change verdicts. *)
let test_eqcheck_memo_reuse () =
  Obs.Metrics.enable ();
  let reuse = Obs.Metrics.counter "eqcheck.bdd.reuse" in
  let before = Obs.Metrics.counter_value reuse in
  let rows =
    Report.Table.run_suite ~verify:false ~eqcheck_each:true ~names:[ "s27" ] ()
  in
  let proved, refuted, _unknown =
    Eqcheck.counts (Report.Table.eqcheck_records rows)
  in
  Alcotest.(check bool) "memo reused at least once" true
    (Obs.Metrics.counter_value reuse - before >= 1);
  Alcotest.(check bool) "verdicts proved" true (proved > 0);
  Alcotest.(check int) "no refuted verdicts" 0 refuted

let () =
  Alcotest.run "bdd_shared"
    [ ("differential",
       [ QCheck_alcotest.to_alcotest prop_shared_matches_private ]);
      ("scopes",
       [ Alcotest.test_case "warm-table parity" `Quick test_warm_table_parity;
         Alcotest.test_case "sub_scope and adopt" `Quick
           test_sub_scope_and_adopt ]);
      ("parallel",
       [ Alcotest.test_case "two-domain stress" `Quick test_two_domain_stress ]);
      ("eqcheck-memo",
       [ Alcotest.test_case "memo reuse on s27" `Quick test_eqcheck_memo_reuse ])
    ]
