(* Netlist construction, editing, BLIF round-trips and invariants. *)

module N = Netlist.Network

let and_cover = Logic.Cover.of_strings 2 [ "11" ]
let or_cover = Logic.Cover.of_strings 2 [ "1-"; "-1" ]
let inv_cover = Logic.Cover.of_strings 1 [ "0" ]

(* A small FSM: toggle flip-flop with enable.
   r' = r xor en; out = r and en. *)
let toggle_circuit () =
  let net = N.create ~name:"toggle" () in
  let en = N.add_input net "en" in
  let r_placeholder = N.add_const net false in
  let r = N.add_latch net ~name:"r" N.I0 r_placeholder in
  let xor = Logic.Cover.of_strings 2 [ "10"; "01" ] in
  let next = N.add_logic net ~name:"next" xor [ en; r ] in
  N.replace_fanin net r ~old_fanin:r_placeholder ~new_fanin:next;
  let out = N.add_logic net ~name:"out" and_cover [ en; r ] in
  N.set_output net "out" out;
  N.sweep net;
  net

let test_build_and_check () =
  let net = toggle_circuit () in
  N.check net;
  Alcotest.(check int) "latches" 1 (N.num_latches net);
  Alcotest.(check int) "logic" 2 (N.num_logic net);
  Alcotest.(check int) "inputs" 1 (List.length (N.inputs net));
  Alcotest.(check int) "outputs" 1 (List.length (N.outputs net))

let test_fanout_maintenance () =
  let net = toggle_circuit () in
  let r =
    match N.find_by_name net "r" with Some n -> n | None -> assert false
  in
  (* r feeds the xor and the output AND *)
  Alcotest.(check int) "r fanouts" 2 (List.length r.N.fanouts)

let test_transfer_fanouts () =
  let net = N.create () in
  let a = N.add_input net "a" and b = N.add_input net "b" in
  let g1 = N.add_logic net ~name:"g1" and_cover [ a; b ] in
  let g2 = N.add_logic net ~name:"g2" or_cover [ a; g1 ] in
  N.set_output net "o" g1;
  N.transfer_fanouts net ~from:g1 ~to_:b;
  Alcotest.(check bool) "g1 has no fanouts" true (g1.N.fanouts = []);
  Alcotest.(check bool) "output moved" true
    ((List.assoc "o" (List.map (fun (n, x) -> (n, x.N.id)) (N.outputs net)))
     = b.N.id);
  Alcotest.(check bool) "g2 reads b twice" true
    (Array.for_all (fun f -> f = b.N.id || f = a.N.id) g2.N.fanins);
  N.delete net g1;
  N.check net

let test_duplicate_for () =
  let net = N.create () in
  let a = N.add_input net "a" and b = N.add_input net "b" in
  let g = N.add_logic net ~name:"g" and_cover [ a; b ] in
  let c1 = N.add_logic net ~name:"c1" inv_cover [ g ] in
  let c2 = N.add_logic net ~name:"c2" inv_cover [ g ] in
  N.set_output net "o1" c1;
  N.set_output net "o2" c2;
  let clone = N.duplicate_for net g ~consumer:c2 in
  N.check net;
  Alcotest.(check int) "g keeps one fanout" 1 (List.length g.N.fanouts);
  Alcotest.(check int) "clone has one fanout" 1 (List.length clone.N.fanouts);
  Alcotest.(check bool) "c2 reads clone" true (c2.N.fanins.(0) = clone.N.id)

let test_topo_cycle_detection () =
  let net = N.create () in
  let a = N.add_input net "a" in
  let g1 = N.add_logic net ~name:"g1" and_cover [ a; a ] in
  let g2 = N.add_logic net ~name:"g2" or_cover [ g1; a ] in
  (* create a combinational cycle g1 <- g2 *)
  N.replace_fanin net g1 ~old_fanin:a ~new_fanin:g2;
  N.set_output net "o" g2;
  Alcotest.check_raises "cycle detected"
    (Failure "Network.topo_combinational: combinational cycle") (fun () ->
      ignore (N.topo_combinational net))

let test_latch_cycle_is_fine () =
  let net = toggle_circuit () in
  let order = N.topo_combinational net in
  Alcotest.(check int) "both logic nodes ordered" 2 (List.length order)

let test_eval_comb () =
  let net = toggle_circuit () in
  let next =
    match N.find_by_name net "next" with Some n -> n | None -> assert false
  in
  let r =
    match N.find_by_name net "r" with Some n -> n | None -> assert false
  in
  let en =
    match N.find_by_name net "en" with Some n -> n | None -> assert false
  in
  let value en_v r_v id =
    N.eval_comb net
      (fun leaf -> if leaf = en.N.id then en_v else (assert (leaf = r.N.id); r_v))
      id
  in
  Alcotest.(check bool) "xor 10" true (value true false next.N.id);
  Alcotest.(check bool) "xor 11" false (value true true next.N.id);
  Alcotest.(check bool) "xor 01" true (value false true next.N.id)

let test_sweep_constants () =
  let net = N.create () in
  let a = N.add_input net "a" in
  let c1 = N.add_const net true in
  let g = N.add_logic net ~name:"g" and_cover [ a; c1 ] in
  N.set_output net "o" g;
  N.sweep net;
  N.check net;
  (* g should have collapsed to a buffer of a and then into a itself *)
  let o = List.assoc "o" (N.outputs net) in
  Alcotest.(check bool) "output is input a" true (o.N.id = a.N.id)

let test_sweep_dangling () =
  let net = N.create () in
  let a = N.add_input net "a" in
  let g1 = N.add_logic net ~name:"g1" inv_cover [ a ] in
  let _dangling = N.add_logic net ~name:"g2" inv_cover [ g1 ] in
  N.set_output net "o" g1;
  N.sweep net;
  Alcotest.(check int) "only g1 left" 1 (N.num_logic net)

let test_cone () =
  let net = toggle_circuit () in
  let next =
    match N.find_by_name net "next" with Some n -> n | None -> assert false
  in
  let leaves = N.cone_leaves net next in
  Alcotest.(check int) "two leaves" 2 (List.length leaves);
  let cone = N.transitive_fanin_cone net next in
  Alcotest.(check int) "cone is just the node" 1 (List.length cone)

(* --- BLIF ------------------------------------------------------------------ *)

let sample_blif =
  {|# sample circuit
.model sample
.inputs a b
.outputs f g
.latch nf r 0
.names a b t
11 1
.names t r nf
1- 1
-1 1
.names nf f
1 1
.names r g
0 1
.end
|}

let test_blif_parse () =
  let net = Netlist.Blif.parse_string sample_blif in
  N.check net;
  Alcotest.(check string) "model" "sample" (N.model_name net);
  Alcotest.(check int) "inputs" 2 (List.length (N.inputs net));
  Alcotest.(check int) "latches" 1 (N.num_latches net);
  let r = match N.find_by_name net "r" with Some n -> n | None -> assert false in
  Alcotest.(check bool) "init 0" true (N.latch_init r = N.I0)

let test_blif_roundtrip () =
  let net = Netlist.Blif.parse_string sample_blif in
  let text = Netlist.Blif.to_string net in
  let net2 = Netlist.Blif.parse_string text in
  N.check net2;
  Alcotest.(check bool) "same behaviour" true
    (Sim.Equiv.comb_equal_exhaustive net net2);
  Alcotest.(check int) "same latches" (N.num_latches net) (N.num_latches net2)

let test_blif_complemented_cover () =
  let text = ".model m\n.inputs a b\n.outputs o\n.names a b o\n11 0\n.end\n" in
  let net = Netlist.Blif.parse_string text in
  let o = List.assoc "o" (N.outputs net) in
  (* output is nand(a,b) *)
  let eval av bv =
    N.eval_comb net
      (fun id -> if (N.node net id).N.name = "a" then av else bv)
      o.N.id
  in
  Alcotest.(check bool) "nand 11" false (eval true true);
  Alcotest.(check bool) "nand 10" true (eval true false)

let test_blif_width_mismatch () =
  (* cube width must match the .names fanin count, caught at parse time with
     the offending line number in the diagnostic *)
  let text = ".model m\n.inputs a b\n.outputs o\n.names a b o\n1-1 1\n.end\n" in
  (match Netlist.Blif.parse_string text with
   | _ -> Alcotest.fail "expected parse failure"
   | exception Failure msg ->
     Alcotest.(check bool) "names line number" true
       (String.length msg >= 7 && String.sub msg 0 7 = "blif:5:");
     Alcotest.(check bool) "names widths" true
       (let has sub =
          let n = String.length sub and m = String.length msg in
          let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
          go 0
        in
        has "width 3" && has "declares 2"));
  (* constant covers: the single line must be one output value *)
  let const = ".model m\n.outputs o\n.names o\n11\n.end\n" in
  match Netlist.Blif.parse_string const with
  | _ -> Alcotest.fail "expected constant-cover failure"
  | exception Failure msg ->
    Alcotest.(check bool) "constant line number" true
      (String.length msg >= 7 && String.sub msg 0 7 = "blif:4:")

let test_copy_independent () =
  let net = toggle_circuit () in
  let dup = N.copy net in
  let next =
    match N.find_by_name dup "next" with Some n -> n | None -> assert false
  in
  N.set_cover dup next (Logic.Cover.of_strings 2 [ "11" ]);
  let orig_next =
    match N.find_by_name net "next" with Some n -> n | None -> assert false
  in
  Alcotest.(check bool) "original unchanged" true
    (Logic.Cover.equivalent (N.cover_of orig_next)
       (Logic.Cover.of_strings 2 [ "10"; "01" ]))

(* --- Verilog writer --------------------------------------------------------- *)

let test_verilog_writer () =
  let net = toggle_circuit () in
  let text = Netlist.Verilog.to_string net in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "module header" true (contains "module toggle(");
  Alcotest.(check bool) "endmodule" true (contains "endmodule");
  Alcotest.(check bool) "register block" true
    (contains "always @(posedge clk)");
  Alcotest.(check bool) "initial value" true (contains "r = 1'b0");
  Alcotest.(check bool) "nonblocking update" true (contains "r <= next");
  Alcotest.(check bool) "output binding" true (contains "assign po_out = ")

let test_verilog_sanitizes_names () =
  let net = N.create ~name:"weird.model" () in
  let a = N.add_input net "sig[3]" in
  let g = N.add_logic net ~name:"1bad" inv_cover [ a ] in
  N.set_output net "o-ut" g;
  let text = Netlist.Verilog.to_string net in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "sanitized module" true (contains "module weird_model(");
  Alcotest.(check bool) "sanitized input" true (contains "input sig_3_;");
  Alcotest.(check bool) "no bare brackets" false (contains "sig[3]")

let prop_generator_valid =
  QCheck.Test.make ~count:60 ~name:"random circuits pass invariants"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let net =
        Circuits.Generators.random_sequential ~seed
          { Circuits.Generators.default_profile with ngates = 20; nlatch = 4 }
      in
      N.check net;
      (* blif round-trip preserves structure counts *)
      let net2 = Netlist.Blif.parse_string (Netlist.Blif.to_string net) in
      N.check net2;
      N.num_latches net = N.num_latches net2)

let prop_blif_roundtrip_behaviour =
  QCheck.Test.make ~count:40 ~name:"blif round-trip preserves behaviour"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let net =
        Circuits.Generators.random_sequential ~seed
          { Circuits.Generators.default_profile with
            ngates = 10;
            nlatch = 3;
            npi = 3 }
      in
      let net2 = Netlist.Blif.parse_string (Netlist.Blif.to_string net) in
      Sim.Equiv.comb_equal_exhaustive net net2)

(* --- change journal and topo cache ------------------------------------------ *)

let test_journal_records_edits () =
  let net = toggle_circuit () in
  let r0 = N.revision net in
  let mark = N.journal_mark net in
  (match N.journal_since net mark with
   | Some [] -> ()
   | Some _ | None -> Alcotest.fail "fresh cursor must see an empty journal");
  let out = match N.find_by_name net "out" with Some n -> n | None -> assert false in
  N.set_cover net out or_cover;
  Alcotest.(check bool) "revision bumped" true (N.revision net > r0);
  (match N.journal_since net mark with
   | Some ids -> Alcotest.(check bool) "edit recorded" true (List.mem out.N.id ids)
   | None -> Alcotest.fail "cursor must still be reachable");
  (* a second observer marking now sees only subsequent edits *)
  let mark2 = N.journal_mark net in
  let next = match N.find_by_name net "next" with Some n -> n | None -> assert false in
  N.set_binding net next None;
  (match N.journal_since net mark2 with
   | Some ids ->
     Alcotest.(check bool) "only the new edit" true
       (List.mem next.N.id ids && not (List.mem out.N.id ids))
   | None -> Alcotest.fail "second cursor must be reachable")

let test_journal_survives_restore () =
  let net = toggle_circuit () in
  let snapshot = N.copy net in
  let mark = N.journal_mark net in
  let out = match N.find_by_name net "out" with Some n -> n | None -> assert false in
  N.set_cover net out or_cover;
  N.restore net snapshot;
  (match N.journal_since net mark with
   | None -> Alcotest.fail "restore must keep outstanding cursors valid"
   | Some ids ->
     Alcotest.(check bool) "reverted node journaled" true
       (List.mem out.N.id ids));
  (* a rollback to an identical state journals nothing new *)
  let mark2 = N.journal_mark net in
  N.restore net snapshot;
  (match N.journal_since net mark2 with
   | None -> Alcotest.fail "no-op restore must keep cursors valid"
   | Some ids -> Alcotest.(check (list int)) "no-op restore journals nothing" [] ids)

let test_journal_compaction () =
  let net = toggle_circuit () in
  let mark = N.journal_mark net in
  let out = match N.find_by_name net "out" with Some n -> n | None -> assert false in
  (* overflow the bounded journal; each set_binding touches one id *)
  for _ = 1 to 2_000_000 do N.set_binding net out None done;
  (match N.journal_since net mark with
   | None -> ()
   | Some _ -> Alcotest.fail "compaction must invalidate old cursors");
  (* a fresh cursor works again *)
  let mark2 = N.journal_mark net in
  N.set_binding net out None;
  (match N.journal_since net mark2 with
   | Some ids -> Alcotest.(check bool) "fresh cursor sees edit" true (List.mem out.N.id ids)
   | None -> Alcotest.fail "fresh cursor must be reachable")

let assert_topo_valid net order =
  (* every logic node appears exactly once, after all its logic fanins *)
  let logic = N.logic_nodes net in
  Alcotest.(check int) "all logic nodes present" (List.length logic)
    (List.length order);
  let seen = Hashtbl.create 16 in
  List.iter
    (fun n ->
      Array.iter
        (fun f ->
          if N.is_logic (N.node net f) then
            Alcotest.(check bool) "fanin ordered before node" true
              (Hashtbl.mem seen f))
        n.N.fanins;
      Hashtbl.replace seen n.N.id ())
    order

let test_topo_cache_tracks_edits () =
  let net = toggle_circuit () in
  assert_topo_valid net (N.topo_combinational net);
  (* append: fresh logic nodes extend the cached order *)
  let en = match N.find_by_name net "en" with Some n -> n | None -> assert false in
  let g = N.add_logic net ~name:"g" inv_cover [ en ] in
  let h = N.add_logic net ~name:"h" and_cover [ g; en ] in
  N.set_output net "g_out" h;
  assert_topo_valid net (N.topo_combinational net);
  (* rewire: invalidates and re-derives *)
  let out = match N.find_by_name net "out" with Some n -> n | None -> assert false in
  N.replace_fanin net out ~old_fanin:en ~new_fanin:h;
  assert_topo_valid net (N.topo_combinational net);
  N.set_function net g inv_cover [ en ];
  assert_topo_valid net (N.topo_combinational net);
  N.check net

let test_deep_fanout_edit () =
  (* remove_fanout must handle very long fanout lists (tail recursion) *)
  let net = N.create ~name:"deep" () in
  let a = N.add_input net "a" in
  let consumers =
    List.init 200_000 (fun i ->
        N.add_logic net ~name:(Printf.sprintf "b%d" i) inv_cover [ a ])
  in
  let last = List.nth consumers (200_000 - 1) in
  N.set_output net "o" last;
  Alcotest.(check int) "fanout count" 200_000 (List.length a.N.fanouts);
  (* deleting a consumer walks a's 200k-entry fanout list *)
  let victim = List.hd consumers in
  N.delete net victim;
  Alcotest.(check int) "fanout removed" 199_999 (List.length a.N.fanouts)

let () =
  Alcotest.run "netlist"
    [ ( "network",
        [ Alcotest.test_case "build and check" `Quick test_build_and_check;
          Alcotest.test_case "fanout maintenance" `Quick test_fanout_maintenance;
          Alcotest.test_case "transfer fanouts" `Quick test_transfer_fanouts;
          Alcotest.test_case "duplicate for consumer" `Quick test_duplicate_for;
          Alcotest.test_case "cycle detection" `Quick test_topo_cycle_detection;
          Alcotest.test_case "latch cycles allowed" `Quick
            test_latch_cycle_is_fine;
          Alcotest.test_case "eval_comb" `Quick test_eval_comb;
          Alcotest.test_case "sweep constants" `Quick test_sweep_constants;
          Alcotest.test_case "sweep dangling" `Quick test_sweep_dangling;
          Alcotest.test_case "cones" `Quick test_cone;
          Alcotest.test_case "copy independence" `Quick test_copy_independent ] );
      ( "journal",
        [ Alcotest.test_case "records edits" `Quick test_journal_records_edits;
          Alcotest.test_case "survives restore" `Quick
            test_journal_survives_restore;
          Alcotest.test_case "compaction" `Quick test_journal_compaction;
          Alcotest.test_case "topo cache tracks edits" `Quick
            test_topo_cache_tracks_edits;
          Alcotest.test_case "deep fanout edit" `Quick test_deep_fanout_edit ] );
      ( "verilog",
        [ Alcotest.test_case "writer" `Quick test_verilog_writer;
          Alcotest.test_case "sanitization" `Quick
            test_verilog_sanitizes_names ] );
      ( "blif",
        [ Alcotest.test_case "parse" `Quick test_blif_parse;
          Alcotest.test_case "roundtrip" `Quick test_blif_roundtrip;
          Alcotest.test_case "complemented cover" `Quick
            test_blif_complemented_cover;
          Alcotest.test_case "width mismatch" `Quick
            test_blif_width_mismatch ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [ prop_generator_valid; prop_blif_roundtrip_behaviour ] ) ]
