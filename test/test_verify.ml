(* Netlist verifier tests: clean networks stay clean, each seeded corruption
   is caught by the intended rule id, and the journal audit catches a
   mutation that bypasses the change journal. *)

module N = Netlist.Network

let and_cover = Logic.Cover.of_strings 2 [ "11" ]
let inv_cover = Logic.Cover.of_strings 1 [ "0" ]

(* in -> and -> latch -> inv -> out, plus a second latch *)
let seq_circuit () =
  let net = N.create ~name:"vt" () in
  let a = N.add_input net "a" and b = N.add_input net "b" in
  let g1 = N.add_logic net ~name:"g1" and_cover [ a; b ] in
  let r1 = N.add_latch net ~name:"r1" N.I0 g1 in
  let r2 = N.add_latch net ~name:"r2" N.I0 g1 in
  let h = N.add_logic net ~name:"h" and_cover [ r1; r2 ] in
  N.set_output net "o" h;
  (net, g1, r1, r2, h)

let has_rule id diags =
  List.exists (fun d -> d.Verify.rule_id = id) diags

let rule_ids diags =
  String.concat "," (List.map (fun d -> d.Verify.rule_id) diags)

let check_caught ?at ~corruption ~rule diags =
  Alcotest.(check bool)
    (Printf.sprintf "%s caught by %s (got: %s)" corruption rule
       (rule_ids diags))
    true (has_rule rule diags);
  (* the diagnostic must locate the corruption: the offending node id *)
  match at with
  | None -> ()
  | Some id ->
    Alcotest.(check bool)
      (Printf.sprintf "%s names node %d" rule id)
      true
      (List.exists
         (fun d -> d.Verify.rule_id = rule && List.mem id d.Verify.node_ids)
         diags)

let test_clean () =
  let net, _, r1, r2, _ = seq_circuit () in
  let diags = Verify.run ~equiv_classes:[ [ r1.N.id; r2.N.id ] ] net in
  Alcotest.(check int)
    (Printf.sprintf "no diagnostics (got: %s)" (rule_ids diags))
    0 (List.length diags)

let test_drop_fanout () =
  let net, g1, r1, _, _ = seq_circuit () in
  N.Unsafe.drop_fanout net ~id:g1.N.id ~consumer:r1.N.id;
  check_caught ~at:g1.N.id ~corruption:"drop_fanout"
    ~rule:"graph/edge-asymmetric" (Verify.run net)

let test_skew_cover () =
  let net, g1, _, _, _ = seq_circuit () in
  N.Unsafe.skew_cover net ~id:g1.N.id;
  check_caught ~at:g1.N.id ~corruption:"skew_cover" ~rule:"graph/cover-arity"
    (Verify.run net)

let test_redirect_fanin () =
  let net, _, _, _, h = seq_circuit () in
  N.Unsafe.redirect_fanin net ~id:h.N.id ~slot:0 ~target:9999;
  check_caught ~at:h.N.id ~corruption:"redirect_fanin"
    ~rule:"graph/fanin-dangling" (Verify.run net)

let test_comb_cycle () =
  (* g1 -> h -> g1 with no latch in between, through the rewiring API *)
  let net, g1, r1, _, h = seq_circuit () in
  N.set_function net h and_cover [ g1; r1 ];
  N.set_function net g1 and_cover [ h; h ];
  check_caught ~corruption:"rewire cycle" ~rule:"loop/combinational-cycle"
    (Verify.run ~rules:[ Verify.Loop ] net)

let test_bad_binding () =
  let net, g1, _, _, _ = seq_circuit () in
  N.set_binding net g1
    (Some { N.gate_name = "and2"; gate_area = -3.0; gate_delay = 1.0 });
  check_caught ~at:g1.N.id ~corruption:"negative area" ~rule:"binding/area"
    (Verify.run net)

let test_init_mismatch () =
  let net, _, r1, r2, _ = seq_circuit () in
  N.set_latch_init net r2 N.I1;
  check_caught ~corruption:"class init skew" ~rule:"retiming/init-mismatch"
    (Verify.run ~equiv_classes:[ [ r1.N.id; r2.N.id ] ] net)

let test_cone_mismatch () =
  let net, _, r1, r2, _ = seq_circuit () in
  (* retarget r2's data input onto a structurally different cone *)
  let a = match N.find_by_name net "a" with Some n -> n | None -> assert false in
  let inv = N.add_logic net ~name:"inv_a" inv_cover [ a ] in
  let g1 = match N.find_by_name net "g1" with Some n -> n | None -> assert false in
  N.replace_fanin net r2 ~old_fanin:g1 ~new_fanin:inv;
  check_caught ~corruption:"cone divergence" ~rule:"retiming/cone-mismatch"
    (Verify.run ~equiv_classes:[ [ r1.N.id; r2.N.id ] ] net)

let test_class_not_latch () =
  let net, g1, r1, _, _ = seq_circuit () in
  check_caught ~corruption:"logic node in class" ~rule:"retiming/class-not-latch"
    (Verify.run ~equiv_classes:[ [ r1.N.id; g1.N.id ] ] net)

let test_audit_catches_unjournaled () =
  let net, _, r1, _, _ = seq_circuit () in
  match
    Verify.audited ~label:"vt" ~pass:"rogue" net (fun () ->
        N.Unsafe.set_latch_init_unjournaled net ~id:r1.N.id N.I1)
  with
  | () -> Alcotest.fail "unjournaled mutation not detected"
  | exception Verify.Verification_failed msg ->
    Alcotest.(check bool)
      (Printf.sprintf "audit names journal/unjournaled (got: %s)" msg)
      true
      (let has sub =
         let n = String.length sub and m = String.length msg in
         let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
         go 0
       in
       has "journal/unjournaled")

let test_audit_clean_pass () =
  (* a journaled edit through the public API passes the audit *)
  let net, _, r1, _, _ = seq_circuit () in
  Verify.audited ~label:"vt" ~pass:"legal" net (fun () ->
      N.set_latch_init net r1 N.I1);
  Alcotest.(check pass) "journaled edit audited clean" () ()

let test_render_json () =
  let net, g1, r1, _, _ = seq_circuit () in
  N.Unsafe.drop_fanout net ~id:g1.N.id ~consumer:r1.N.id;
  let json = Verify.render_json (Verify.run net) in
  Alcotest.(check bool) "json mentions rule id" true
    (let has sub =
       let n = String.length sub and m = String.length json in
       let rec go i = i + n <= m && (String.sub json i n = sub || go (i + 1)) in
       go 0
     in
     has "\"rule_id\"" && has "graph/edge-asymmetric")

(* --- properties ------------------------------------------------------------ *)

let random_cover st nvars =
  let cube () =
    String.init nvars (fun _ ->
        match Random.State.int st 3 with 0 -> '0' | 1 -> '1' | _ -> '-')
  in
  Logic.Cover.of_strings nvars
    (List.init (1 + Random.State.int st 3) (fun _ -> cube ()))

(* One random edit through the public mutation API; every case preserves the
   network contract (in particular acyclicity: rewiring targets only
   non-logic sources, fresh nodes have no fanouts yet). *)
let apply_random_edit st net fresh_po =
  let live = N.all_nodes net in
  let logic = List.filter N.is_logic live in
  let latches = List.filter N.is_latch live in
  let pick lst = List.nth lst (Random.State.int st (List.length lst)) in
  match Random.State.int st 9 with
  | 0 ->
    (match logic with
     | [] -> ()
     | _ ->
       let v = pick logic in
       N.set_cover net v (random_cover st (Array.length v.N.fanins)))
  | 1 ->
    (match logic with
     | [] -> ()
     | _ ->
       N.set_binding net (pick logic)
         (Some { N.gate_name = "g"; gate_area = 1.0; gate_delay = 0.5 }))
  | 2 ->
    (match List.filter (Retiming.Moves.is_forward_retimable net) logic with
     | [] -> ()
     | cands -> ignore (Retiming.Moves.forward_across_node net (pick cands)))
  | 3 ->
    (match List.filter (Retiming.Moves.is_backward_retimable net) logic with
     | [] -> ()
     | cands -> ignore (Retiming.Moves.backward_across_node net (pick cands)))
  | 4 ->
    (match latches with
     | [] -> ()
     | _ -> ignore (Retiming.Moves.split_stem net (pick latches)))
  | 5 ->
    (match latches with
     | [] -> ()
     | _ -> N.set_latch_init net (pick latches) (pick [ N.I0; N.I1; N.Ix ]))
  | 6 ->
    let k = 1 + Random.State.int st 3 in
    let fanins = List.init k (fun _ -> pick live) in
    let g = N.add_logic net (random_cover st k) fanins in
    incr fresh_po;
    N.set_output net (Printf.sprintf "vpo%d" !fresh_po) g
  | 7 ->
    (match logic, List.filter (fun n -> not (N.is_logic n)) live with
     | [], _ | _, [] -> ()
     | _, sources ->
       let v = pick logic in
       let k = 1 + Random.State.int st 3 in
       N.set_function net v (random_cover st k)
         (List.init k (fun _ -> pick sources)))
  | _ -> N.sweep net

let prop_legal_edits_stay_clean =
  QCheck.Test.make ~count:40 ~name:"random legal edit sequences verify clean"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let net =
        Circuits.Generators.random_sequential ~seed
          { Circuits.Generators.default_profile with
            ngates = 25; nlatch = 4; npi = 4; npo = 3 }
      in
      let fresh_po = ref 0 in
      let ok = ref (Verify.errors (Verify.run net) = []) in
      for _ = 1 to 25 do
        if !ok then begin
          apply_random_edit st net fresh_po;
          ok := Verify.errors (Verify.run net) = []
        end
      done;
      !ok)

let prop_seeded_corruption_caught =
  QCheck.Test.make ~count:40 ~name:"seeded corruption caught by matching rule"
    QCheck.(pair (int_range 0 10_000) (int_range 0 2))
    (fun (seed, kind) ->
      let net =
        Circuits.Generators.random_sequential ~seed
          { Circuits.Generators.default_profile with
            ngates = 25; nlatch = 4; npi = 4; npo = 3 }
      in
      let logic = List.filter N.is_logic (N.all_nodes net) in
      let with_fanout = List.filter (fun n -> n.N.fanouts <> []) logic in
      let st = Random.State.make [| seed; kind |] in
      let pick lst = List.nth lst (Random.State.int st (List.length lst)) in
      match kind with
      | 0 ->
        (match with_fanout with
         | [] -> QCheck.assume_fail ()
         | _ ->
           let v = pick with_fanout in
           N.Unsafe.drop_fanout net ~id:v.N.id ~consumer:(List.hd v.N.fanouts);
           has_rule "graph/edge-asymmetric" (Verify.run net))
      | 1 ->
        (match logic with
         | [] -> QCheck.assume_fail ()
         | _ ->
           N.Unsafe.skew_cover net ~id:(pick logic).N.id;
           has_rule "graph/cover-arity" (Verify.run net))
      | _ ->
        (match List.filter (fun n -> Array.length n.N.fanins > 0) logic with
         | [] -> QCheck.assume_fail ()
         | cands ->
           let v = pick cands in
           N.Unsafe.redirect_fanin net ~id:v.N.id ~slot:0 ~target:(-7);
           has_rule "graph/fanin-dangling" (Verify.run net)))

let () =
  Alcotest.run "verify"
    [ ( "rules",
        [ Alcotest.test_case "clean network" `Quick test_clean;
          Alcotest.test_case "drop fanout" `Quick test_drop_fanout;
          Alcotest.test_case "skew cover" `Quick test_skew_cover;
          Alcotest.test_case "redirect fanin" `Quick test_redirect_fanin;
          Alcotest.test_case "combinational cycle" `Quick test_comb_cycle;
          Alcotest.test_case "bad binding" `Quick test_bad_binding;
          Alcotest.test_case "init mismatch" `Quick test_init_mismatch;
          Alcotest.test_case "cone mismatch" `Quick test_cone_mismatch;
          Alcotest.test_case "class not latch" `Quick test_class_not_latch;
          Alcotest.test_case "render json" `Quick test_render_json ] );
      ( "audit",
        [ Alcotest.test_case "unjournaled caught" `Quick
            test_audit_catches_unjournaled;
          Alcotest.test_case "journaled clean" `Quick test_audit_clean_pass ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [ prop_legal_edits_stay_clean; prop_seeded_corruption_caught ] ) ]
