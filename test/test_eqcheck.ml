(* Semantic equivalence analyzer tests.

   Clean pairs are Proved, each seeded semantic mutation is Refuted with a
   simulation-confirmed counterexample (replayed again here, independently of
   the engine, per the counterexample-quality requirement), budget caps yield
   explicit Unknown, and the flow integration reports zero Refuted on a real
   suite circuit. *)

module N = Netlist.Network
module M = Retiming.Moves
module E = Eqcheck

let buf = Logic.Cover.of_strings 1 [ "1" ]
let inv = Logic.Cover.of_strings 1 [ "0" ]
let and2 = Logic.Cover.of_strings 2 [ "11" ]
let or2 = Logic.Cover.of_strings 2 [ "1-"; "-1" ]

let check_verdict msg expected v =
  Alcotest.(check string) msg expected (E.verdict_name v)

let get_cex = function
  | E.Refuted c -> c
  | E.Proved -> Alcotest.fail "expected Refuted, got Proved"
  | E.Unknown why -> Alcotest.fail ("expected Refuted, got Unknown: " ^ why)

(* Independent replay of a sequential counterexample: drive both nets with the
   reported input trace from the reported initial states and require the
   primary outputs to diverge at some cycle. *)
let replay_diverges pre post (c : E.cex) =
  let state_of net inits =
    List.filter_map
      (fun (name, v) ->
        match N.find_by_name net name with
        | Some n -> Some (n.N.id, v)
        | None -> None)
      inits
  in
  let outs o = List.sort compare o in
  let rec go sa sb = function
    | [] -> false
    | vec :: rest ->
      let pi name = match List.assoc_opt name vec with Some v -> v | None -> false in
      let sa', oa = Sim.Simulate.step pre ~pi ~state:sa in
      let sb', ob = Sim.Simulate.step post ~pi ~state:sb in
      outs oa <> outs ob || go sa' sb' rest
  in
  go (state_of pre c.E.init_pre) (state_of post c.E.init_post) c.E.trace

(* Two sibling latches of the same data input: genuinely equivalent, so
   [o = r1 AND r2] may be rewritten to [o = r1] — but only modulo DC_ret. *)
let sibling_pair () =
  let pre = N.create ~name:"sib" () in
  let a = N.add_input pre "a" in
  let r1 = N.add_latch pre ~name:"r1" N.I0 a in
  let r2 = N.add_latch pre ~name:"r2" N.I0 a in
  let o = N.add_logic pre ~name:"o" and2 [ r1; r2 ] in
  N.set_output pre "o" o;
  let post = N.copy pre in
  let o' = Option.get (N.find_by_name post "o") in
  N.set_function post o' buf [ Option.get (N.find_by_name post "r1") ];
  (pre, post, [ r1.N.id; r2.N.id ])

let test_comb_identical () =
  let pre, _, _ = sibling_pair () in
  check_verdict "identical nets" "proved" (E.comb_check pre (N.copy pre))

let test_comb_dcret_dontcare () =
  let pre, post, cls = sibling_pair () in
  check_verdict "proved modulo DC_ret" "proved"
    (E.comb_check ~classes:[ cls ] pre post)

let test_comb_refutes_without_dc () =
  let pre, post, _ = sibling_pair () in
  let c = get_cex (E.comb_check pre post) in
  Alcotest.(check bool) "comb cex confirmed" true c.E.sim_confirmed;
  (* replay the leaf assignment through both cone evaluators ourselves *)
  let pi name =
    match List.assoc_opt name c.E.leaves with Some v -> v | None -> false
  in
  Alcotest.(check bool) "endpoints really differ" true
    (Sim.Equiv.eval_endpoints pre pi <> Sim.Equiv.eval_endpoints post pi)

(* The pair above is sequentially equivalent (r1 = r2 in every reachable
   state), so the escalation must land on Proved even without the classes:
   a combinational difference alone is never reported as Refuted. *)
let test_escalation_soundness () =
  let pre, post, _ = sibling_pair () in
  let recs =
    E.check_pass ~label:"t" ~pass:"rewrite" ~classes:[] pre post
  in
  let r = List.hd recs in
  Alcotest.(check string) "escalated" "eq-pass/seq" r.E.rule;
  check_verdict "sequentially proved" "proved" r.E.verdict

(* Mutation 1: forward-retime across an inverter, then corrupt the new
   latch's initial value.  The very first cycle diverges. *)
let test_mutation_wrong_retimed_init () =
  let pre = N.create ~name:"mi" () in
  let a = N.add_input pre "a" in
  let r = N.add_latch pre ~name:"r" N.I1 a in
  let g = N.add_logic pre ~name:"g" inv [ r ] in
  N.set_output pre "o" g;
  let post = N.copy pre in
  let g' = Option.get (N.find_by_name post "g") in
  let r' =
    match M.forward_across_node post g' with
    | Ok l -> l
    | Error e -> Alcotest.fail (M.error_message e)
  in
  (* the legal move is first checked to preserve equivalence... *)
  check_verdict "correct retime proved" "proved" (E.seq_check pre post);
  (* ...then the init is flipped: inv(I1) = I0 becomes I1 *)
  N.set_latch_init post r' N.I1;
  let c = get_cex (E.seq_check pre post) in
  Alcotest.(check bool) "wrong-init cex confirmed" true c.E.sim_confirmed;
  Alcotest.(check bool) "wrong-init cex replays" true
    (replay_diverges pre post c)

(* Mutation 2: over-widened don't-care — r1 and r2 latch different inputs,
   yet the cone is simplified as if they formed a DC_ret class. *)
let over_widened () =
  let pre = N.create ~name:"ow" () in
  let a = N.add_input pre "a" and b = N.add_input pre "b" in
  let r1 = N.add_latch pre ~name:"r1" N.I0 a in
  let r2 = N.add_latch pre ~name:"r2" N.I0 b in
  let o = N.add_logic pre ~name:"o" and2 [ r1; r2 ] in
  N.set_output pre "o" o;
  let post = N.copy pre in
  let o' = Option.get (N.find_by_name post "o") in
  N.set_function post o' buf [ Option.get (N.find_by_name post "r1") ];
  (pre, post, [ r1.N.id; r2.N.id ])

let test_mutation_over_widened_dc () =
  let pre, post, cls = over_widened () in
  (* the bogus class makes the combinational check pass; the sequential
     engine refutes the rewrite... *)
  let c = get_cex (E.seq_check pre post) in
  Alcotest.(check bool) "over-widened cex confirmed" true c.E.sim_confirmed;
  Alcotest.(check bool) "over-widened cex replays" true
    (replay_diverges pre post c);
  (* ...and the dcret-invariant record exposes the class itself as a lie *)
  let recs =
    E.check_pass ~label:"t" ~pass:"dc-simplify" ~classes:[ cls ] pre post
  in
  let dc = List.find (fun r -> r.E.rule = "dcret-invariant") recs in
  let c2 = get_cex dc.E.verdict in
  Alcotest.(check bool) "class violation confirmed" true c2.E.sim_confirmed;
  Alcotest.(check bool) "names the class" true
    (String.length c2.E.endpoint >= 6
     && String.sub c2.E.endpoint 0 6 = "dcret:")

(* Mutation 3: drop a cube from a latch-data cover (OR loses its "-1" cube). *)
let test_mutation_dropped_cube () =
  let pre = N.create ~name:"dc" () in
  let a = N.add_input pre "a" and b = N.add_input pre "b" in
  let g = N.add_logic pre ~name:"g" or2 [ a; b ] in
  let r = N.add_latch pre ~name:"r" N.I0 g in
  let o = N.add_logic pre ~name:"o" buf [ r ] in
  N.set_output pre "o" o;
  let post = N.copy pre in
  let g' = Option.get (N.find_by_name post "g") in
  N.set_function post g' (Logic.Cover.of_strings 2 [ "1-" ]) [
    Option.get (N.find_by_name post "a");
    Option.get (N.find_by_name post "b") ];
  let recs = E.check_pass ~label:"t" ~pass:"simplify" ~classes:[] pre post in
  let r0 = List.hd recs in
  Alcotest.(check string) "comb diff escalated" "eq-pass/seq" r0.E.rule;
  let c = get_cex r0.E.verdict in
  Alcotest.(check bool) "dropped-cube cex confirmed" true c.E.sim_confirmed;
  Alcotest.(check bool) "dropped-cube cex replays" true
    (replay_diverges pre post c)

let test_dcret_proved () =
  let pre, _, cls = sibling_pair () in
  check_verdict "sibling class invariant" "proved"
    (E.dcret_check pre [ cls ])

let test_dcret_refuted () =
  let pre, _, cls = over_widened () in
  let c = get_cex (E.dcret_check pre [ cls ]) in
  Alcotest.(check bool) "violation confirmed" true c.E.sim_confirmed

let test_unknown_on_caps () =
  let pre, post, cls = sibling_pair () in
  let tiny cap = { E.default_options with E.max_product_bits = cap } in
  check_verdict "seq cap" "unknown" (E.seq_check ~options:(tiny 1) pre post);
  check_verdict "dcret cap" "unknown"
    (E.dcret_check
       ~options:{ E.default_options with E.max_state_bits = 0 }
       pre [ cls ]);
  check_verdict "comb leaf cap" "unknown"
    (E.comb_check
       ~options:{ E.default_options with E.max_comb_leaves = 0 }
       pre post)

(* Full-flow integration on a real suite circuit: every pass boundary gets a
   verdict and none is Refuted. *)
let test_flow_s27 () =
  let e = Circuits.Suite.find "s27" in
  let row =
    Core.Flow.run_all ~verify:false ~eqcheck_each:true ~name:"s27"
      (e.Circuits.Suite.build ())
  in
  let proved, refuted, unknown = E.counts row.Core.Flow.eqcheck in
  Alcotest.(check bool) "has verdicts" true (proved + refuted + unknown > 0);
  Alcotest.(check int)
    (Printf.sprintf "no refuted pass (records:\n%s)"
       (E.render row.Core.Flow.eqcheck))
    0 refuted

let test_merge_legal () =
  let classes = [ [ 1; 2; 3 ]; [ 4; 5 ] ] in
  Alcotest.(check int) "within one class" 0
    (List.length (Verify.merge_legal ~equiv_classes:classes [ 1; 3 ]));
  Alcotest.(check int) "outside every class" 0
    (List.length (Verify.merge_legal ~equiv_classes:classes [ 7; 8 ]));
  let diags = Verify.merge_legal ~equiv_classes:classes [ 2; 4 ] in
  Alcotest.(check bool) "straddling classes flagged" true
    (List.exists (fun d -> d.Verify.rule_id = "retiming/merge-back") diags)

let test_render_json () =
  let pre, post, _ = sibling_pair () in
  let recs = E.check_pass ~label:"l" ~pass:"p" ~classes:[] pre post in
  let json = E.render_json recs in
  Alcotest.(check bool) "json has verdict" true
    (let n = String.length json in
     let rec find i =
       i + 8 <= n && (String.sub json i 8 = "\"verdict" || find (i + 1))
     in
     find 0)

let () =
  Alcotest.run "eqcheck"
    [ ( "comb",
        [ Alcotest.test_case "identical nets" `Quick test_comb_identical;
          Alcotest.test_case "dcret dontcare" `Quick test_comb_dcret_dontcare;
          Alcotest.test_case "refutes without dc" `Quick
            test_comb_refutes_without_dc;
          Alcotest.test_case "escalation soundness" `Quick
            test_escalation_soundness ] );
      ( "mutations",
        [ Alcotest.test_case "wrong retimed init" `Quick
            test_mutation_wrong_retimed_init;
          Alcotest.test_case "over-widened dc" `Quick
            test_mutation_over_widened_dc;
          Alcotest.test_case "dropped cube" `Quick test_mutation_dropped_cube ] );
      ( "dcret",
        [ Alcotest.test_case "proved" `Quick test_dcret_proved;
          Alcotest.test_case "refuted" `Quick test_dcret_refuted ] );
      ( "budgets",
        [ Alcotest.test_case "unknown on caps" `Quick test_unknown_on_caps ] );
      ( "integration",
        [ Alcotest.test_case "flow s27" `Quick test_flow_s27;
          Alcotest.test_case "merge legal" `Quick test_merge_legal;
          Alcotest.test_case "render json" `Quick test_render_json ] ) ]
