(* Differential tests: every packed {!Logic.Cube} operation against the
   legacy array reference {!Logic.Cube_ref}, on random cubes across widths
   1-200 with extra weight on the packing boundaries (31 variables per word:
   30/31/32, 61/62/63/64/65, 93/94).  Cover operations are checked at wide
   widths by evaluating on sampled points, where enumeration is impossible.

   The widest widths (>= 93 variables, i.e. 4+ packed words) dominate the
   run time of the differential suite for no extra packing-boundary
   coverage beyond the three-word case; they run only when the QCHECK_LONG
   environment variable is set to a non-empty value other than "0". *)

module C = Logic.Cube
module R = Logic.Cube_ref

(* --- generators --------------------------------------------------------- *)

let long_run =
  match Sys.getenv_opt "QCHECK_LONG" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let boundary_widths =
  let base = [ 1; 2; 30; 31; 32; 33; 61; 62; 63; 64; 65 ] in
  if long_run then base @ [ 93; 94; 127; 128; 200 ] else base

let width_cap = if long_run then 200 else 65

let gen_width =
  QCheck.Gen.(
    frequency [ (3, oneofl boundary_widths); (2, int_range 1 width_cap) ])

let gen_lit =
  QCheck.Gen.(
    frequency
      [ (1, return C.Zero); (1, return C.One); (2, return C.Both) ])

let gen_lits n = QCheck.Gen.(array_size (return n) gen_lit)

(* a pair of same-width literal arrays (the reference representation) *)
let gen_pair = QCheck.Gen.(gen_width >>= fun n -> pair (gen_lits n) (gen_lits n))

let print_pair (a, b) =
  Printf.sprintf "%s / %s" (R.to_string a) (R.to_string b)

let arb_pair = QCheck.make ~print:print_pair gen_pair

let arb_single =
  QCheck.make ~print:R.to_string QCheck.Gen.(gen_width >>= gen_lits)

let diff name prop = QCheck.Test.make ~count:500 ~name prop

let lits_opt = function None -> None | Some c -> Some (C.to_lits c)

(* --- cube ops ----------------------------------------------------------- *)

let prop_roundtrip =
  diff "of_lits/to_lits/of_string/to_string roundtrip" arb_single (fun a ->
      let p = C.of_lits a in
      C.to_lits p = a
      && C.to_string p = R.to_string a
      && C.equal (C.of_string (R.to_string a)) p
      && C.nvars p = Array.length a)

let prop_unary =
  diff "lit_count/is_minterm/get/depends_on agree" arb_single (fun a ->
      let p = C.of_lits a in
      C.lit_count p = R.lit_count a
      && C.is_minterm p = R.is_minterm a
      && Array.for_all
           (fun v -> C.get p v = a.(v) && C.depends_on p v = R.depends_on a v)
           (Array.init (Array.length a) Fun.id))

let prop_iteri =
  diff "iteri visits every variable in order" arb_single (fun a ->
      let seen = ref [] in
      C.iteri (fun i l -> seen := (i, l) :: !seen) (C.of_lits a);
      List.rev !seen = Array.to_list (Array.mapi (fun i l -> (i, l)) a))

let prop_equal_compare =
  diff "equal/compare match the legacy array order" arb_pair (fun (a, b) ->
      let pa = C.of_lits a and pb = C.of_lits b in
      C.equal pa pb = (a = b)
      && Stdlib.compare (C.compare pa pb) 0
         = Stdlib.compare (R.compare a b) 0)

let prop_contains =
  diff "contains agrees" arb_pair (fun (a, b) ->
      let pa = C.of_lits a and pb = C.of_lits b in
      C.contains pa pb = R.contains a b
      && C.contains pa pa
      && C.contains (C.universe (Array.length a)) pa)

let prop_signature_prefilter =
  diff "signature prefilter is sound for containment" arb_pair (fun (a, b) ->
      let pa = C.of_lits a and pb = C.of_lits b in
      (not (C.contains pa pb))
      || C.signature pb land lnot (C.signature pa) = 0)

let prop_intersect =
  diff "intersect/intersects agree" arb_pair (fun (a, b) ->
      let pa = C.of_lits a and pb = C.of_lits b in
      lits_opt (C.intersect pa pb) = R.intersect a b
      && C.intersects pa pb = R.intersects a b)

let prop_distance_consensus =
  diff "distance/consensus agree" arb_pair (fun (a, b) ->
      let pa = C.of_lits a and pb = C.of_lits b in
      C.distance pa pb = R.distance a b
      && lits_opt (C.consensus pa pb) = R.consensus a b)

let prop_supercube =
  diff "supercube agrees" arb_pair (fun (a, b) ->
      C.to_lits (C.supercube (C.of_lits a) (C.of_lits b)) = R.supercube a b)

let prop_cofactor =
  diff "cofactor agrees on every variable/phase" arb_single (fun a ->
      let p = C.of_lits a in
      let ok v =
        lits_opt (C.cofactor p v C.Zero) = R.cofactor a v C.Zero
        && lits_opt (C.cofactor p v C.One) = R.cofactor a v C.One
      in
      Array.for_all ok (Array.init (Array.length a) Fun.id))

let prop_cube_cofactor =
  diff "cube_cofactor agrees" arb_pair (fun (a, b) ->
      lits_opt (C.cube_cofactor (C.of_lits a) (C.of_lits b))
      = R.cube_cofactor a b)

let prop_eval_minterm =
  diff "eval and minterm agree" arb_single (fun a ->
      let n = Array.length a in
      let st = Random.State.make [| Hashtbl.hash a |] in
      let point = Array.init n (fun _ -> Random.State.bool st) in
      let p = C.of_lits a in
      C.eval p point = R.eval a point
      && C.to_lits (C.minterm n point) = R.minterm n point
      && C.eval (C.minterm n point) point)

let prop_mutation =
  diff "set/copy/raise_var/set_var agree" arb_single (fun a ->
      let n = Array.length a in
      let st = Random.State.make [| Hashtbl.hash a; 17 |] in
      let v = Random.State.int st n in
      let l = [| C.Zero; C.One; C.Both |].(Random.State.int st 3) in
      (* in-place set on copies must not disturb the originals *)
      let p = C.of_lits a in
      let pc = C.copy p and ac = R.copy a in
      C.set pc v l;
      R.set ac v l;
      C.to_lits pc = ac
      && C.to_lits p = a
      && C.to_lits (C.raise_var p v) = R.raise_var a v
      && C.to_lits (C.set_var p v l) = R.set_var a v l)

(* --- cover ops at wide widths (sampled points) --------------------------- *)

let gen_wide_cover =
  QCheck.Gen.(
    oneofl (if long_run then [ 62; 63; 64; 65; 100; 200 ] else [ 62; 63; 64; 65 ])
    >>= fun n ->
    (* mostly-Both cubes so random points have a chance to hit the cover *)
    let sparse_lit =
      frequency [ (1, return C.Zero); (1, return C.One); (10, return C.Both) ]
    in
    list_size (int_range 1 8) (array_size (return n) sparse_lit)
    >|= fun cubes -> (n, cubes))

let arb_wide_cover =
  QCheck.make
    ~print:(fun (n, cubes) ->
      Printf.sprintf "n=%d [%s]" n
        (String.concat "; " (List.map R.to_string cubes)))
    gen_wide_cover

let cover_of (n, cubes) = Logic.Cover.make n (List.map C.of_lits cubes)

let sample_points n seed k =
  let st = Random.State.make [| seed; n |] in
  List.init k (fun _ -> Array.init n (fun _ -> Random.State.bool st))

let prop_cover_wide_semantics =
  QCheck.Test.make ~count:100 ~name:"wide-cover ops are pointwise correct"
    arb_wide_cover (fun ((n, _) as input) ->
      let f = cover_of input in
      let fc = Logic.Cover.complement f in
      let scc = Logic.Cover.single_cube_containment f in
      let d = Logic.Cover.sharp f scc in
      List.for_all
        (fun pt ->
          (* each cube of f lands points inside it; use them too *)
          Logic.Cover.eval fc pt = not (Logic.Cover.eval f pt)
          && Logic.Cover.eval scc pt = Logic.Cover.eval f pt
          && not (Logic.Cover.eval d pt))
        (sample_points n (Hashtbl.hash input) 64
        @ List.filter_map
            (fun c ->
              let pt =
                Array.init n (fun v ->
                    match C.get c v with
                    | C.One -> true
                    | C.Zero | C.Both -> false)
              in
              if C.eval c pt then Some pt else None)
            f.Logic.Cover.cubes))

let prop_cover_wide_union_intersect =
  QCheck.Test.make ~count:100 ~name:"wide union/intersect are pointwise and/or"
    (QCheck.pair arb_wide_cover arb_wide_cover)
    (fun (((n1, _) as i1), (n2, cubes2)) ->
      (* rebuild the second input over the first input's width *)
      let resize c =
        Array.init n1 (fun v -> if v < Array.length c then c.(v) else C.Both)
      in
      let f = cover_of i1 and g = cover_of (n1, List.map resize cubes2) in
      ignore n2;
      let u = Logic.Cover.union f g and x = Logic.Cover.intersect f g in
      List.for_all
        (fun pt ->
          Logic.Cover.eval u pt
          = (Logic.Cover.eval f pt || Logic.Cover.eval g pt)
          && Logic.Cover.eval x pt
             = (Logic.Cover.eval f pt && Logic.Cover.eval g pt))
        (sample_points n1 (Hashtbl.hash (i1, cubes2)) 64))

let prop_cover_covers_cube =
  QCheck.Test.make ~count:100 ~name:"wide covers_cube agrees with sharp"
    arb_wide_cover (fun ((n, _) as input) ->
      match cover_of input with
      | { Logic.Cover.cubes = []; _ } -> true
      | { Logic.Cover.cubes = c :: _; _ } as f ->
        let by_sharp =
          Logic.Cover.is_empty
            (Logic.Cover.sharp (Logic.Cover.make n [ c ]) f)
        in
        Logic.Cover.covers_cube f c = by_sharp && Logic.Cover.covers_cube f c)

(* --- minimize on packed covers stays a cover of the same function -------- *)

let prop_minimize_wide =
  QCheck.Test.make ~count:40 ~name:"minimize preserves wide functions"
    arb_wide_cover (fun ((n, _) as input) ->
      let f = cover_of input in
      let m = Logic.Minimize.minimize f in
      List.for_all
        (fun pt -> Logic.Cover.eval m pt = Logic.Cover.eval f pt)
        (sample_points n (Hashtbl.hash input) 64))

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "logic_packed"
    [ ("cube-differential",
       q
         [ prop_roundtrip; prop_unary; prop_iteri; prop_equal_compare;
           prop_contains; prop_signature_prefilter; prop_intersect;
           prop_distance_consensus; prop_supercube; prop_cofactor;
           prop_cube_cofactor; prop_eval_minterm; prop_mutation ]);
      ("cover-wide",
       q
         [ prop_cover_wide_semantics; prop_cover_wide_union_intersect;
           prop_cover_covers_cube; prop_minimize_wide ]) ]
