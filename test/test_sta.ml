(* Static timing analysis tests on hand-built circuits. *)

module N = Netlist.Network

let and_cover = Logic.Cover.of_strings 2 [ "11" ]
let inv_cover = Logic.Cover.of_strings 1 [ "0" ]

(* chain: in -> g1 -> g2 -> g3 -> out, plus a short side path *)
let chain_circuit () =
  let net = N.create ~name:"chain" () in
  let a = N.add_input net "a" and b = N.add_input net "b" in
  let g1 = N.add_logic net ~name:"g1" and_cover [ a; b ] in
  let g2 = N.add_logic net ~name:"g2" inv_cover [ g1 ] in
  let g3 = N.add_logic net ~name:"g3" and_cover [ g2; b ] in
  let side = N.add_logic net ~name:"side" inv_cover [ a ] in
  N.set_output net "o" g3;
  N.set_output net "s" side;
  net

let test_unit_delay_period () =
  let net = chain_circuit () in
  Alcotest.(check (float 1e-9)) "period 3" 3.0
    (Sta.clock_period net Sta.unit_delay)

let test_critical_path () =
  let net = chain_circuit () in
  let path = Sta.critical_path net Sta.unit_delay in
  Alcotest.(check (list string)) "path g1 g2 g3"
    [ "g1"; "g2"; "g3" ]
    (List.map (fun n -> n.N.name) path)

let test_sequential_period () =
  (* r -> g1 -> g2 -> r (latch data): period = 2 *)
  let net = N.create ~name:"seq" () in
  let a = N.add_input net "a" in
  let r = N.add_latch net ~name:"r" N.I0 a in
  let g1 = N.add_logic net ~name:"g1" and_cover [ r; a ] in
  let g2 = N.add_logic net ~name:"g2" inv_cover [ g1 ] in
  N.replace_fanin net r ~old_fanin:a ~new_fanin:g2;
  N.set_output net "o" r;
  Alcotest.(check (float 1e-9)) "period 2" 2.0
    (Sta.clock_period net Sta.unit_delay);
  let path = Sta.critical_path net Sta.unit_delay in
  Alcotest.(check (list string)) "path" [ "g1"; "g2" ]
    (List.map (fun n -> n.N.name) path)

let test_mapped_delay () =
  let net = chain_circuit () in
  let g1 = match N.find_by_name net "g1" with Some n -> n | None -> assert false in
  N.set_binding net g1
    (Some { N.gate_name = "and2"; gate_area = 3.0; gate_delay = 2.5 });
  let model = Sta.mapped_delay ~default:1.0 () in
  Alcotest.(check (float 1e-9)) "period with binding" 4.5
    (Sta.clock_period net model)

let test_slack () =
  let net = chain_circuit () in
  let slacks = Sta.slack net Sta.unit_delay ~required:3.0 in
  let g3 = match N.find_by_name net "g3" with Some n -> n | None -> assert false in
  let side = match N.find_by_name net "side" with Some n -> n | None -> assert false in
  Alcotest.(check (float 1e-9)) "critical slack 0" 0.0 slacks.(g3.N.id);
  Alcotest.(check (float 1e-9)) "side slack 2" 2.0 slacks.(side.N.id)

let test_no_logic () =
  let net = N.create () in
  let a = N.add_input net "a" in
  N.set_output net "o" a;
  Alcotest.(check (float 1e-9)) "period 0" 0.0
    (Sta.clock_period net Sta.unit_delay);
  Alcotest.(check (list string)) "no path" []
    (List.map (fun n -> n.N.name) (Sta.critical_path net Sta.unit_delay))

let prop_critical_path_matches_period =
  QCheck.Test.make ~count:50 ~name:"critical path length equals unit period"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let net =
        Circuits.Generators.random_sequential ~seed
          { Circuits.Generators.default_profile with ngates = 25; nlatch = 4 }
      in
      let period = Sta.clock_period net Sta.unit_delay in
      let path = Sta.critical_path net Sta.unit_delay in
      abs_float (float_of_int (List.length path) -. period) < 1e-9)

let prop_path_is_connected =
  QCheck.Test.make ~count:50 ~name:"critical path nodes form a chain"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let net =
        Circuits.Generators.random_sequential ~seed
          { Circuits.Generators.default_profile with ngates = 25; nlatch = 4 }
      in
      let path = Sta.critical_path net Sta.unit_delay in
      let rec chained = function
        | [] | [ _ ] -> true
        | a :: b :: rest ->
          Array.exists (fun f -> f = a.N.id) b.N.fanins && chained (b :: rest)
      in
      chained path)

(* --- incremental timer ------------------------------------------------------ *)

(* The incremental timer must agree bit-for-bit with a from-scratch analysis
   after every edit: same arrivals, same period, same critical endpoint and
   path, same slacks. *)
let oracle_agrees net model timer =
  let full = Sta.analyze net model in
  let ti = Sta.Incremental.timing timer in
  let cap = Array.length full.Sta.arrival in
  let arrivals_ok = ref true in
  for id = 0 to cap - 1 do
    if ti.Sta.arrival.(id) <> full.Sta.arrival.(id) then arrivals_ok := false
  done;
  let path_full =
    List.map (fun n -> n.N.id) (Sta.critical_path net model)
  in
  let path_incr =
    List.map (fun n -> n.N.id) (Sta.Incremental.critical_path timer)
  in
  let slack_full = Sta.slack net model ~required:10.0 in
  let slack_incr = Sta.Incremental.slacks timer ~required:10.0 in
  let slacks_ok = ref (Array.length slack_full = Array.length slack_incr) in
  if !slacks_ok then
    Array.iteri
      (fun id s -> if s <> slack_incr.(id) then slacks_ok := false)
      slack_full;
  !arrivals_ok
  && ti.Sta.period = full.Sta.period
  && ti.Sta.critical_end = full.Sta.critical_end
  && path_full = path_incr
  && !slacks_ok

let random_cover st nvars =
  let cube () =
    String.init nvars (fun _ ->
        match Random.State.int st 3 with 0 -> '0' | 1 -> '1' | _ -> '-')
  in
  Logic.Cover.of_strings nvars
    (List.init (1 + Random.State.int st 3) (fun _ -> cube ()))

let random_binding st =
  Some
    { N.gate_name = "g";
      gate_area = 1.0;
      gate_delay = float_of_int (1 + Random.State.int st 4) /. 2.0 }

(* One random edit through the public mutation API: function/binding changes,
   duplication, forward/backward latch moves, stem splits, init flips, node
   creation, output retargeting, rewiring, sweep. *)
let apply_random_edit st net fresh_po =
  let live = N.all_nodes net in
  let logic = List.filter N.is_logic live in
  let latches = List.filter N.is_latch live in
  let pick lst = List.nth lst (Random.State.int st (List.length lst)) in
  match Random.State.int st 11 with
  | 0 ->
    (match logic with
     | [] -> ()
     | _ ->
       let v = pick logic in
       N.set_cover net v (random_cover st (Array.length v.N.fanins)))
  | 1 -> (match logic with [] -> () | _ -> N.set_binding net (pick logic) (random_binding st))
  | 2 ->
    (match List.filter (fun v -> v.N.fanouts <> []) logic with
     | [] -> ()
     | cands ->
       let v = pick cands in
       ignore (N.duplicate_for net v ~consumer:(N.node net (List.hd v.N.fanouts))))
  | 3 ->
    (match List.filter (Retiming.Moves.is_forward_retimable net) logic with
     | [] -> ()
     | cands -> ignore (Retiming.Moves.forward_across_node net (pick cands)))
  | 4 ->
    (match List.filter (Retiming.Moves.is_backward_retimable net) logic with
     | [] -> ()
     | cands -> ignore (Retiming.Moves.backward_across_node net (pick cands)))
  | 5 ->
    (match latches with
     | [] -> ()
     | _ -> ignore (Retiming.Moves.split_stem net (pick latches)))
  | 6 ->
    (match latches with
     | [] -> ()
     | _ -> N.set_latch_init net (pick latches) (pick [ N.I0; N.I1; N.Ix ]))
  | 7 ->
    let k = 1 + Random.State.int st 3 in
    let fanins = List.init k (fun _ -> pick live) in
    let g = N.add_logic net (random_cover st k) fanins in
    incr fresh_po;
    N.set_output net (Printf.sprintf "tpo%d" !fresh_po) g
  | 8 ->
    (match N.outputs net with
     | [] -> ()
     | outs ->
       let name, _ = pick outs in
       N.retarget_output net name (pick live))
  | 9 ->
    (* rewire a logic node onto source nodes only: cannot create a cycle *)
    (match logic, List.filter (fun n -> not (N.is_logic n)) live with
     | [] , _ | _, [] -> ()
     | _, sources ->
       let v = pick logic in
       let k = 1 + Random.State.int st 3 in
       N.set_function net v (random_cover st k)
         (List.init k (fun _ -> pick sources)))
  | _ -> N.sweep net

let prop_incremental_matches_full =
  QCheck.Test.make ~count:40
    ~name:"incremental timer replays edits oracle-equivalently"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let net =
        Circuits.Generators.random_sequential ~seed
          { Circuits.Generators.default_profile with
            ngates = 30; nlatch = 5; npi = 4; npo = 3 }
      in
      let model = Sta.mapped_delay ~default:1.0 () in
      let timer = Sta.Incremental.create net model in
      let fresh_po = ref 0 in
      let ok = ref (oracle_agrees net model timer) in
      for step = 1 to 40 do
        if !ok then begin
          apply_random_edit st net fresh_po;
          N.check net;
          ok := oracle_agrees net model timer;
          (* every few steps, change the slack target: exercises the full
             backward rebuild next to the incremental patching path *)
          if step mod 5 = 0 then begin
            let p = Sta.clock_period net model in
            let full = Sta.slack net model ~required:p in
            let incr_ = Sta.Incremental.slacks timer ~required:p in
            ok := !ok && full = incr_
          end
        end
      done;
      (* the run must actually have exercised the incremental machinery *)
      let s = Sta.Incremental.stats timer in
      !ok && s.Sta.Incremental.incremental_syncs > 0)

let test_incremental_basic () =
  let net = chain_circuit () in
  let model = Sta.mapped_delay ~default:1.0 () in
  let timer = Sta.Incremental.create net model in
  Alcotest.(check (float 1e-9)) "initial period" 3.0
    (Sta.Incremental.period timer);
  let g1 = match N.find_by_name net "g1" with Some n -> n | None -> assert false in
  N.set_binding net g1
    (Some { N.gate_name = "and2"; gate_area = 3.0; gate_delay = 2.5 });
  Alcotest.(check (float 1e-9)) "period after binding edit" 4.5
    (Sta.Incremental.period timer);
  Alcotest.(check bool) "agrees with full analysis" true
    (oracle_agrees net model timer);
  let s = Sta.Incremental.stats timer in
  Alcotest.(check bool) "used the incremental path" true
    (s.Sta.Incremental.incremental_syncs >= 1)

let test_incremental_latch_move () =
  (* forward-retime a gate and check the timer tracks the latch move *)
  let net = N.create ~name:"m" () in
  let a = N.add_input net "a" in
  let r1 = N.add_latch net ~name:"r1" N.I0 a in
  let r2 = N.add_latch net ~name:"r2" N.I1 a in
  let g = N.add_logic net ~name:"g" and_cover [ r1; r2 ] in
  let h = N.add_logic net ~name:"h" inv_cover [ g ] in
  N.set_output net "o" h;
  let model = Sta.unit_delay in
  let timer = Sta.Incremental.create net model in
  Alcotest.(check (float 1e-9)) "before move" 2.0 (Sta.Incremental.period timer);
  (match Retiming.Moves.forward_across_node net g with
   | Ok _ -> ()
   | Error _ -> Alcotest.fail "move refused");
  (* the latch now sits at g's output: worst endpoint is g's data input *)
  Alcotest.(check (float 1e-9)) "after move" 1.0 (Sta.Incremental.period timer);
  Alcotest.(check bool) "agrees with full analysis" true
    (oracle_agrees net model timer)

let test_incremental_restore () =
  (* restore invalidates the journal cursor: the timer must fall back to a
     full resync and still answer bit-exactly against Sta.analyze *)
  let net = chain_circuit () in
  let model = Sta.mapped_delay ~default:1.0 () in
  let timer = Sta.Incremental.create net model in
  Alcotest.(check (float 1e-9)) "initial period" 3.0
    (Sta.Incremental.period timer);
  let snap = N.copy net in
  let g2 = match N.find_by_name net "g2" with Some n -> n | None -> assert false in
  N.set_binding net g2
    (Some { N.gate_name = "inv"; gate_area = 1.0; gate_delay = 5.0 });
  Alcotest.(check (float 1e-9)) "period after edit" 7.0
    (Sta.Incremental.period timer);
  N.restore net snap;
  (* edit again after the rollback, then query: the answer must be bit-exact
     against a from-scratch analysis of the restored-and-edited network *)
  let g1 = match N.find_by_name net "g1" with Some n -> n | None -> assert false in
  N.set_binding net g1
    (Some { N.gate_name = "and2"; gate_area = 3.0; gate_delay = 2.5 });
  Alcotest.(check bool) "bit-exact after restore + edit" true
    (oracle_agrees net model timer);
  Alcotest.(check (float 1e-9)) "period after restore + edit" 4.5
    (Sta.Incremental.period timer)

let () =
  Alcotest.run "sta"
    [ ( "basic",
        [ Alcotest.test_case "unit period" `Quick test_unit_delay_period;
          Alcotest.test_case "critical path" `Quick test_critical_path;
          Alcotest.test_case "sequential period" `Quick test_sequential_period;
          Alcotest.test_case "mapped delay" `Quick test_mapped_delay;
          Alcotest.test_case "slack" `Quick test_slack;
          Alcotest.test_case "no logic" `Quick test_no_logic ] );
      ( "incremental",
        [ Alcotest.test_case "basic" `Quick test_incremental_basic;
          Alcotest.test_case "latch move" `Quick test_incremental_latch_move;
          Alcotest.test_case "restore then edit" `Quick
            test_incremental_restore ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [ prop_critical_path_matches_period;
            prop_path_is_connected;
            prop_incremental_matches_full ] ) ]
