(* Tests for the two-level logic package: cubes, covers, minimization and
   factoring, checked against dense truth tables as reference semantics. *)

let cube = Alcotest.testable Logic.Cube.pp Logic.Cube.equal
let cover_t = Alcotest.testable Logic.Cover.pp Logic.Cover.equivalent

(* --- generators ---------------------------------------------------------- *)

let gen_cube n =
  QCheck.Gen.(
    array_repeat n (oneofl [ Logic.Cube.Zero; Logic.Cube.One; Logic.Cube.Both ])
    >|= Logic.Cube.of_lits)

let gen_cover n =
  QCheck.Gen.(
    list_size (int_range 0 6) (gen_cube n) >|= fun cubes ->
    Logic.Cover.make n cubes)

let arb_cover n =
  QCheck.make
    ~print:(fun f -> Format.asprintf "%a" Logic.Cover.pp f)
    (gen_cover n)

let arb_cover_pair n =
  QCheck.make
    ~print:(fun (f, g) ->
      Format.asprintf "%a | %a" Logic.Cover.pp f Logic.Cover.pp g)
    QCheck.Gen.(pair (gen_cover n) (gen_cover n))

let all_points n =
  List.init (1 lsl n) (fun i -> Array.init n (fun v -> i land (1 lsl v) <> 0))

let same_function n f g =
  List.for_all
    (fun p -> Logic.Cover.eval f p = Logic.Cover.eval g p)
    (all_points n)

(* --- cube unit tests ------------------------------------------------------ *)

let test_cube_string () =
  let c = Logic.Cube.of_string "01-1" in
  Alcotest.(check string) "roundtrip" "01-1" (Logic.Cube.to_string c);
  Alcotest.(check int) "lit count" 3 (Logic.Cube.lit_count c);
  Alcotest.(check bool) "depends 0" true (Logic.Cube.depends_on c 0);
  Alcotest.(check bool) "depends 2" false (Logic.Cube.depends_on c 2)

let test_cube_contains () =
  let big = Logic.Cube.of_string "1--" and small = Logic.Cube.of_string "101" in
  Alcotest.(check bool) "big contains small" true (Logic.Cube.contains big small);
  Alcotest.(check bool) "small contains big" false (Logic.Cube.contains small big);
  Alcotest.(check bool) "self" true (Logic.Cube.contains big big)

let test_cube_intersect () =
  let a = Logic.Cube.of_string "1-0" and b = Logic.Cube.of_string "-10" in
  (match Logic.Cube.intersect a b with
   | Some c -> Alcotest.check cube "product" (Logic.Cube.of_string "110") c
   | None -> Alcotest.fail "expected intersection");
  let c = Logic.Cube.of_string "0--" in
  Alcotest.(check bool) "disjoint" true (Logic.Cube.intersect a c = None)

let test_cube_distance_consensus () =
  let a = Logic.Cube.of_string "10-" and b = Logic.Cube.of_string "11-" in
  Alcotest.(check int) "distance 1" 1 (Logic.Cube.distance a b);
  (match Logic.Cube.consensus a b with
   | Some c -> Alcotest.check cube "consensus" (Logic.Cube.of_string "1--") c
   | None -> Alcotest.fail "expected consensus");
  let c = Logic.Cube.of_string "01-" in
  Alcotest.(check int) "distance 2" 2 (Logic.Cube.distance a c);
  Alcotest.(check bool) "no consensus" true (Logic.Cube.consensus a c = None)

let test_cube_supercube () =
  let a = Logic.Cube.of_string "101" and b = Logic.Cube.of_string "111" in
  Alcotest.check cube "supercube" (Logic.Cube.of_string "1-1")
    (Logic.Cube.supercube a b)

let test_cube_cofactor () =
  let a = Logic.Cube.of_string "1-0" in
  (match Logic.Cube.cofactor a 0 Logic.Cube.One with
   | Some c -> Alcotest.check cube "cofactor" (Logic.Cube.of_string "--0") c
   | None -> Alcotest.fail "cofactor should exist");
  Alcotest.(check bool) "opposing literal" true
    (Logic.Cube.cofactor a 0 Logic.Cube.Zero = None)

(* --- cover unit tests ----------------------------------------------------- *)

let test_cover_tautology () =
  (* x + x' is a tautology. *)
  let f = Logic.Cover.of_strings 1 [ "1"; "0" ] in
  Alcotest.(check bool) "x + x'" true (Logic.Cover.is_tautology f);
  let g = Logic.Cover.of_strings 2 [ "1-"; "01" ] in
  Alcotest.(check bool) "not tautology" false (Logic.Cover.is_tautology g);
  let h = Logic.Cover.of_strings 2 [ "1-"; "01"; "00" ] in
  Alcotest.(check bool) "full cover" true (Logic.Cover.is_tautology h)

let test_cover_complement_xor () =
  (* complement of xor is xnor *)
  let xor = Logic.Cover.of_strings 2 [ "10"; "01" ] in
  let xnor = Logic.Cover.of_strings 2 [ "11"; "00" ] in
  Alcotest.check cover_t "xnor" xnor (Logic.Cover.complement xor)

let test_cover_sharp () =
  let f = Logic.Cover.of_strings 2 [ "1-" ] in
  let g = Logic.Cover.of_strings 2 [ "11" ] in
  let d = Logic.Cover.sharp f g in
  Alcotest.check cover_t "a and not b" (Logic.Cover.of_strings 2 [ "10" ]) d

let test_cover_covers () =
  let f = Logic.Cover.of_strings 3 [ "1--"; "-1-" ] in
  let g = Logic.Cover.of_strings 3 [ "11-"; "1-0" ] in
  Alcotest.(check bool) "covers" true (Logic.Cover.covers f g);
  Alcotest.(check bool) "not covers" false (Logic.Cover.covers g f)

let test_cover_scc () =
  let f = Logic.Cover.of_strings 2 [ "1-"; "11"; "1-" ] in
  let r = Logic.Cover.single_cube_containment f in
  Alcotest.(check int) "one cube survives" 1 (Logic.Cover.size r)

let test_cover_support () =
  let f = Logic.Cover.of_strings 4 [ "1--0"; "-0--" ] in
  Alcotest.(check (list int)) "support" [ 0; 1; 3 ] (Logic.Cover.support f)

let test_cover_rename () =
  let f = Logic.Cover.of_strings 2 [ "10" ] in
  let g = Logic.Cover.rename f 3 [| 2; 0 |] in
  Alcotest.check cover_t "renamed" (Logic.Cover.of_strings 3 [ "0-1" ]) g

(* --- cover properties ----------------------------------------------------- *)

let n_prop = 4

let prop_complement =
  QCheck.Test.make ~count:200 ~name:"complement is pointwise negation"
    (arb_cover n_prop) (fun f ->
      let fc = Logic.Cover.complement f in
      List.for_all
        (fun p -> Logic.Cover.eval fc p = not (Logic.Cover.eval f p))
        (all_points n_prop))

let prop_sharp =
  QCheck.Test.make ~count:200 ~name:"sharp is set difference"
    (arb_cover_pair n_prop) (fun (f, g) ->
      let d = Logic.Cover.sharp f g in
      List.for_all
        (fun p ->
          Logic.Cover.eval d p
          = (Logic.Cover.eval f p && not (Logic.Cover.eval g p)))
        (all_points n_prop))

let prop_tautology =
  QCheck.Test.make ~count:200 ~name:"tautology agrees with evaluation"
    (arb_cover n_prop) (fun f ->
      Logic.Cover.is_tautology f
      = List.for_all (Logic.Cover.eval f) (all_points n_prop))

let prop_covers =
  QCheck.Test.make ~count:200 ~name:"covers agrees with implication"
    (arb_cover_pair n_prop) (fun (f, g) ->
      Logic.Cover.covers f g
      = List.for_all
          (fun p -> (not (Logic.Cover.eval g p)) || Logic.Cover.eval f p)
          (all_points n_prop))

let prop_intersect =
  QCheck.Test.make ~count:200 ~name:"intersect is conjunction"
    (arb_cover_pair n_prop) (fun (f, g) ->
      let h = Logic.Cover.intersect f g in
      List.for_all
        (fun p ->
          Logic.Cover.eval h p = (Logic.Cover.eval f p && Logic.Cover.eval g p))
        (all_points n_prop))

(* --- minimization --------------------------------------------------------- *)

let test_minimize_simple () =
  (* ab + ab' = a *)
  let f = Logic.Cover.of_strings 2 [ "11"; "10" ] in
  let m = Logic.Minimize.minimize f in
  Alcotest.check cover_t "merged" (Logic.Cover.of_strings 2 [ "1-" ]) m;
  Alcotest.(check int) "one cube" 1 (Logic.Cover.size m)

let test_minimize_with_dc () =
  (* f = ab, dc = ab' : minimizer may absorb the DC minterm, giving a. *)
  let f = Logic.Cover.of_strings 2 [ "11" ] in
  let dc = Logic.Cover.of_strings 2 [ "10" ] in
  let m = Logic.Minimize.minimize ~dc f in
  Alcotest.(check int) "one literal" 1 (Logic.Cover.lit_count m)

let test_minimize_xor_dc () =
  (* The paper's mechanism: f = r1 * r2 with DC = r1 xor r2 simplifies to a
     single literal because the disagreeing points never occur. *)
  let f = Logic.Cover.of_strings 2 [ "11" ] in
  let dc = Logic.Cover.of_strings 2 [ "10"; "01" ] in
  let m = Logic.Minimize.minimize ~dc f in
  Alcotest.(check int) "single literal" 1 (Logic.Cover.lit_count m)

let prop_minimize_preserves =
  QCheck.Test.make ~count:200 ~name:"minimize preserves the care function"
    (arb_cover_pair n_prop) (fun (f, dc) ->
      let m = Logic.Minimize.minimize ~dc f in
      List.for_all
        (fun p ->
          Logic.Cover.eval dc p
          || Logic.Cover.eval m p = Logic.Cover.eval f p)
        (all_points n_prop))

let prop_minimize_within_dc =
  QCheck.Test.make ~count:200 ~name:"minimize stays inside on+dc"
    (arb_cover_pair n_prop) (fun (f, dc) ->
      let m = Logic.Minimize.minimize ~dc f in
      List.for_all
        (fun p ->
          (not (Logic.Cover.eval m p))
          || Logic.Cover.eval f p || Logic.Cover.eval dc p)
        (all_points n_prop))

let prop_minimize_no_growth =
  QCheck.Test.make ~count:200 ~name:"minimize never increases cube count"
    (arb_cover n_prop) (fun f ->
      Logic.Cover.size (Logic.Minimize.minimize f) <= Logic.Cover.size f)

let prop_exact_preserves =
  QCheck.Test.make ~count:100 ~name:"exact minimization preserves care function"
    (arb_cover_pair n_prop) (fun (f, dc) ->
      let m = Logic.Minimize.minimize_exact_small ~dc f in
      List.for_all
        (fun p ->
          Logic.Cover.eval dc p
          || Logic.Cover.eval m p = Logic.Cover.eval f p)
        (all_points n_prop))

let prop_heuristic_close_to_exact =
  QCheck.Test.make ~count:100 ~name:"espresso-lite within 2x of exact cubes"
    (arb_cover n_prop) (fun f ->
      let h = Logic.Minimize.minimize f in
      let e = Logic.Minimize.minimize_exact_small f in
      Logic.Cover.size h <= (2 * Logic.Cover.size e) + 1)

let prop_minimize_irredundant =
  QCheck.Test.make ~count:150 ~name:"minimized cover is irredundant"
    (arb_cover_pair n_prop) (fun (f, dc) ->
      let m = Logic.Minimize.minimize ~dc f in
      (* no cube is covered by the remaining cubes plus the DC set *)
      let rec check kept = function
        | [] -> true
        | c :: rest ->
          let others =
            Logic.Cover.union (Logic.Cover.make n_prop (kept @ rest)) dc
          in
          (not (Logic.Cover.covers_cube others c)) && check (c :: kept) rest
      in
      Logic.Cover.is_empty m || check [] m.Logic.Cover.cubes)

let prop_minimize_prime =
  QCheck.Test.make ~count:150 ~name:"minimized cubes are prime"
    (arb_cover_pair n_prop) (fun (f, dc) ->
      let m = Logic.Minimize.minimize ~dc f in
      if Logic.Cover.is_empty m then true
      else begin
        let on_dc = Logic.Cover.union f dc in
        (* raising any literal of any cube must leave the care ON-set *)
        List.for_all
          (fun cube ->
            List.for_all
              (fun v ->
                (not (Logic.Cube.depends_on cube v))
                || not
                     (Logic.Cover.covers_cube on_dc (Logic.Cube.raise_var cube v)))
              (List.init n_prop Fun.id))
          m.Logic.Cover.cubes
      end)

let prop_kernels_divide =
  QCheck.Test.make ~count:150 ~name:"kernels are cube-free and divide f"
    (arb_cover n_prop) (fun f ->
      List.for_all
        (fun (_, k) ->
          Logic.Factor.cube_free k
          &&
          let q, _ = Logic.Factor.divide f k in
          (* kernel must divide f algebraically unless it IS f *)
          Logic.Cover.equivalent k f || not (Logic.Cover.is_empty q))
        (Logic.Factor.kernels f))

let prop_supercube_contains =
  QCheck.Test.make ~count:200 ~name:"supercube contains both cubes"
    (QCheck.make QCheck.Gen.(pair (gen_cube n_prop) (gen_cube n_prop)))
    (fun (a, b) ->
      let s = Logic.Cube.supercube a b in
      Logic.Cube.contains s a && Logic.Cube.contains s b)

(* --- truth tables --------------------------------------------------------- *)

let test_tt_roundtrip () =
  let f = Logic.Cover.of_strings 3 [ "1-0"; "01-" ] in
  let t = Logic.Truthtab.of_cover f in
  let back = Logic.Truthtab.to_cover t in
  Alcotest.check cover_t "roundtrip" f back

let test_tt_ops () =
  let a = Logic.Truthtab.var 2 0 and b = Logic.Truthtab.var 2 1 in
  let xor = Logic.Truthtab.bxor a b in
  Alcotest.(check int) "xor ones" 2 (Logic.Truthtab.count_ones xor);
  Alcotest.(check bool) "depends" true (Logic.Truthtab.depends_on xor 0);
  let const = Logic.Truthtab.bxor xor xor in
  Alcotest.(check bool) "no depend" false (Logic.Truthtab.depends_on const 0)

let test_tt_cofactor () =
  let a = Logic.Truthtab.var 2 0 and b = Logic.Truthtab.var 2 1 in
  let f = Logic.Truthtab.band a b in
  let c = Logic.Truthtab.cofactor f 0 true in
  Alcotest.(check bool) "cofactor = b" true (Logic.Truthtab.equal c b)

(* --- factoring ------------------------------------------------------------ *)

let prop_quick_factor =
  QCheck.Test.make ~count:200 ~name:"quick_factor preserves function"
    (arb_cover n_prop) (fun f ->
      let e = Logic.Factor.quick_factor f in
      List.for_all
        (fun p -> Logic.Factor.eval e p = Logic.Cover.eval f p)
        (all_points n_prop))

let prop_good_factor =
  QCheck.Test.make ~count:200 ~name:"good_factor preserves function"
    (arb_cover n_prop) (fun f ->
      let e = Logic.Factor.good_factor f in
      List.for_all
        (fun p -> Logic.Factor.eval e p = Logic.Cover.eval f p)
        (all_points n_prop))

let test_factor_example () =
  (* ab + ac factors as a(b + c): 3 literals instead of 4. *)
  let f = Logic.Cover.of_strings 3 [ "11-"; "1-1" ] in
  let e = Logic.Factor.quick_factor f in
  Alcotest.(check int) "3 literals" 3 (Logic.Factor.literal_count e)

let test_divide_by_cube () =
  let f = Logic.Cover.of_strings 3 [ "11-"; "1-1"; "-01" ] in
  let c = Logic.Cube.of_string "1--" in
  let q, r = Logic.Factor.divide_by_cube f c in
  Alcotest.(check int) "quotient size" 2 (Logic.Cover.size q);
  Alcotest.(check int) "remainder size" 1 (Logic.Cover.size r)

let test_kernels () =
  (* f = ab + ac: kernel b + c with co-kernel a. *)
  let f = Logic.Cover.of_strings 3 [ "11-"; "1-1" ] in
  let ks = Logic.Factor.kernels f in
  let expected = Logic.Cover.of_strings 3 [ "-1-"; "--1" ] in
  Alcotest.(check bool) "kernel found" true
    (List.exists (fun (_, k) -> Logic.Cover.equivalent k expected) ks)

let prop_divide_reconstruct =
  QCheck.Test.make ~count:200 ~name:"f = c*q + r after cube division"
    (QCheck.make
       QCheck.Gen.(pair (gen_cover n_prop) (gen_cube n_prop)))
    (fun (f, c) ->
      let q, r = Logic.Factor.divide_by_cube f c in
      let cq =
        Logic.Cover.intersect (Logic.Cover.make n_prop [ c ]) q
      in
      let rebuilt = Logic.Cover.union cq r in
      same_function n_prop f rebuilt)

let () =
  let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests) in
  Alcotest.run "logic"
    [ ( "cube",
        [ Alcotest.test_case "string roundtrip" `Quick test_cube_string;
          Alcotest.test_case "containment" `Quick test_cube_contains;
          Alcotest.test_case "intersection" `Quick test_cube_intersect;
          Alcotest.test_case "distance/consensus" `Quick
            test_cube_distance_consensus;
          Alcotest.test_case "supercube" `Quick test_cube_supercube;
          Alcotest.test_case "cofactor" `Quick test_cube_cofactor ] );
      ( "cover",
        [ Alcotest.test_case "tautology" `Quick test_cover_tautology;
          Alcotest.test_case "complement xor" `Quick test_cover_complement_xor;
          Alcotest.test_case "sharp" `Quick test_cover_sharp;
          Alcotest.test_case "covers" `Quick test_cover_covers;
          Alcotest.test_case "single cube containment" `Quick test_cover_scc;
          Alcotest.test_case "support" `Quick test_cover_support;
          Alcotest.test_case "rename" `Quick test_cover_rename ] );
      qsuite "cover-props"
        [ prop_complement; prop_sharp; prop_tautology; prop_covers;
          prop_intersect ];
      ( "minimize",
        [ Alcotest.test_case "merge adjacent" `Quick test_minimize_simple;
          Alcotest.test_case "absorb dc" `Quick test_minimize_with_dc;
          Alcotest.test_case "xor dc collapses to literal" `Quick
            test_minimize_xor_dc ] );
      qsuite "minimize-props"
        [ prop_minimize_preserves; prop_minimize_within_dc;
          prop_minimize_no_growth; prop_exact_preserves;
          prop_heuristic_close_to_exact; prop_minimize_irredundant;
          prop_minimize_prime ];
      qsuite "algebra-props" [ prop_kernels_divide; prop_supercube_contains ];
      ( "truthtab",
        [ Alcotest.test_case "roundtrip" `Quick test_tt_roundtrip;
          Alcotest.test_case "bit ops" `Quick test_tt_ops;
          Alcotest.test_case "cofactor" `Quick test_tt_cofactor ] );
      ( "factor",
        [ Alcotest.test_case "ab+ac" `Quick test_factor_example;
          Alcotest.test_case "divide by cube" `Quick test_divide_by_cube;
          Alcotest.test_case "kernels" `Quick test_kernels ] );
      qsuite "factor-props"
        [ prop_quick_factor; prop_good_factor; prop_divide_reconstruct ] ]
